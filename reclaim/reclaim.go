// Package reclaim provides index-based epoch reclamation in the style the
// paper adapts from Yang & Mellor-Crummey (Algorithm 7): threads announce
// the oldest node they might touch in a per-thread protector slot, retired
// nodes carry monotonically increasing indices, and a collector frees
// every retired node whose index lies strictly below the minimum announced
// index.
//
// Native Go code does not strictly need manual reclamation — the garbage
// collector already prevents use-after-free — but high-churn structures
// benefit from recycling nodes through freelists, and recycling re-creates
// the ABA hazards manual memory management has. This package provides the
// paper's protection discipline for that use. The simulated track
// implements Algorithm 7 verbatim inside SBQ (repro/internal/simqueue),
// where memory really is manual.
//
// Like all epoch schemes, reclamation stalls (but safety holds) if a
// thread parks forever between Protect and Unprotect.
package reclaim

import (
	"math"
	"sync/atomic"
)

// Domain manages reclamation for one data structure. The type parameter
// is the node type; nodes must expose a monotonically increasing index
// through the indexOf function supplied at construction.
type Domain[T any] struct {
	indexOf func(*T) uint64
	recycle func(*T)

	slots []pslot[T]

	// retired is a Treiber list of retired nodes awaiting collection,
	// linked through retiredLink records to keep T itself intrusive-free.
	retired atomic.Pointer[retiredNode[T]]
	// collecting provides the mutual exclusion of Algorithm 7's SWAP.
	collecting atomic.Bool

	// Freed counts nodes handed to recycle, for observability.
	Freed atomic.Uint64
}

type pslot[T any] struct {
	p atomic.Pointer[T]
	_ [56]byte
}

type retiredNode[T any] struct {
	n    *T
	next *retiredNode[T]
}

// NewDomain creates a domain for up to threads participants. indexOf maps
// a node to its index; recycle receives nodes that are safe to reuse (it
// may push them onto a freelist or simply drop them for the GC).
func NewDomain[T any](threads int, indexOf func(*T) uint64, recycle func(*T)) *Domain[T] {
	if threads <= 0 {
		panic("reclaim: threads must be positive")
	}
	if indexOf == nil {
		panic("reclaim: indexOf is required")
	}
	if recycle == nil {
		recycle = func(*T) {}
	}
	return &Domain[T]{
		indexOf: indexOf,
		recycle: recycle,
		slots:   make([]pslot[T], threads),
	}
}

// Protect announces and returns the node load yields, re-reading until the
// announcement is visible before the load's result changed — the
// announce-and-verify loop of Algorithm 7's protect. load must read the
// shared pointer (e.g. the queue head) with an atomic load.
func (d *Domain[T]) Protect(tid int, load func() *T) *T {
	s := &d.slots[tid]
	for {
		n := load()
		s.p.Store(n)
		if load() == n {
			return n
		}
	}
}

// Unprotect clears thread tid's announcement.
func (d *Domain[T]) Unprotect(tid int) {
	d.slots[tid].p.Store(nil)
}

// Retire hands a node to the domain for eventual recycling. The caller
// must guarantee the node is unreachable to new Protect calls (e.g. the
// queue head has moved past it).
func (d *Domain[T]) Retire(n *T) {
	rn := &retiredNode[T]{n: n}
	for {
		head := d.retired.Load()
		rn.next = head
		//lint:ignore casloop Treiber push onto the retired list; off the queues' hot path, so no §3 accounting
		if d.retired.CompareAndSwap(head, rn) {
			return
		}
	}
}

// minProtected returns the smallest announced index, or MaxUint64 when
// nothing is protected.
func (d *Domain[T]) minProtected() uint64 {
	min := uint64(math.MaxUint64)
	for i := range d.slots {
		if n := d.slots[i].p.Load(); n != nil {
			if idx := d.indexOf(n); idx < min {
				min = idx
			}
		}
	}
	return min
}

// Collect recycles every retired node whose index is strictly below the
// minimum protected index. At most one collector runs at a time (others
// return immediately), mirroring Algorithm 7's SWAP-guarded free_nodes.
// It returns the number of nodes recycled.
func (d *Domain[T]) Collect() int {
	if !d.collecting.CompareAndSwap(false, true) {
		return 0
	}
	defer d.collecting.Store(false)

	// Detach the whole retired list; survivors are re-retired below.
	head := d.retired.Swap(nil)
	if head == nil {
		return 0
	}
	min := d.minProtected()
	freed := 0
	var survivors *retiredNode[T]
	for rn := head; rn != nil; {
		next := rn.next
		if d.indexOf(rn.n) < min {
			d.recycle(rn.n)
			freed++
		} else {
			rn.next = survivors
			survivors = rn
		}
		rn = next
	}
	// Push survivors back.
	for survivors != nil {
		next := survivors.next
		for {
			h := d.retired.Load()
			survivors.next = h
			//lint:ignore casloop Treiber push-back of survivors; off the queues' hot path, so no §3 accounting
			if d.retired.CompareAndSwap(h, survivors) {
				break
			}
		}
		survivors = next
	}
	d.Freed.Add(uint64(freed))
	return freed
}
