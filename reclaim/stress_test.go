package reclaim_test

// -race stress tests of the pooled reuse pattern, one per protection
// discipline: a Michael-Scott queue under announce-and-verify with
// structural stamps (the sbq/msq/baskets scheme) and a Treiber stack
// under clock announcements with retire-time stamps (the lcrq scheme).
// Both are exercised by concurrent producers and consumers exactly the
// way the queues' WithNodePool mode uses reclaim. The race detector
// proves reuse never overlaps a protected reader; the poison/
// exactly-once checks prove the epoch ordering itself.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/reclaim"
)

type snode struct {
	stamp atomic.Uint64
	v     uint64
	next  atomic.Pointer[snode]
	// pooled marks nodes sitting in the freelist; readers observing a
	// poisoned node under protection indicate a reclamation bug.
	pooled atomic.Bool
}

type pooledMSQ struct {
	epoch *reclaim.Epoch
	pool  *reclaim.Pool[snode]
	head  atomic.Pointer[snode]
	tail  atomic.Pointer[snode]
}

func newPooledMSQ() *pooledMSQ {
	e := reclaim.NewEpoch()
	q := &pooledMSQ{
		epoch: e,
		pool:  reclaim.NewPool(e, func() *snode { return new(snode) }, func(n *snode) { n.pooled.Store(true) }),
	}
	sentinel := new(snode)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// protect runs the announce-and-verify loop against src.
func protect(g *reclaim.Guard, src *atomic.Pointer[snode]) *snode {
	for {
		n := src.Load()
		g.Protect(n.stamp.Load())
		if src.Load() == n {
			return n
		}
	}
}

func (q *pooledMSQ) enqueue(v uint64) bool {
	n := q.pool.Get()
	wasPooled := n.pooled.Swap(false)
	_ = wasPooled
	n.v = v
	n.next.Store(nil)
	g := q.epoch.Acquire()
	defer q.epoch.Release(g)
	for {
		t := protect(g, &q.tail)
		n.stamp.Store(t.stamp.Load() + 1)
		next := t.next.Load()
		if next != nil {
			//lint:ignore casloop test-harness MSQ; helping swing a lagging tail, failure implies another's progress
			q.tail.CompareAndSwap(t, next)
			continue
		}
		if t.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(t, n)
			return true
		}
	}
}

func (q *pooledMSQ) dequeue() (uint64, bool, bool) {
	g := q.epoch.Acquire()
	defer q.epoch.Release(g)
	for {
		h := protect(g, &q.head)
		next := h.next.Load()
		if next == nil {
			return 0, false, false
		}
		if t := q.tail.Load(); h == t {
			//lint:ignore casloop test-harness MSQ; helping swing a lagging tail, failure implies another's progress
			q.tail.CompareAndSwap(t, next)
			continue
		}
		poisoned := next.pooled.Load() // must be false while protected
		v := next.v
		if q.head.CompareAndSwap(h, next) {
			stamp := h.stamp.Load()
			q.pool.Retire(stamp, h)
			return v, true, poisoned
		}
	}
}

// clockStack is a pooled Treiber stack protected by the CLOCK
// discipline (Epoch.Now announcements + NextStamp-at-retire-time
// stamps) — the scheme queue/lcrq uses — rather than the structural
// stamps pooledMSQ exercises. One announcement made before any shared
// load covers everything the operation can reach; no per-item
// re-announce, no verify loop.
type clockStack struct {
	epoch *reclaim.Epoch
	pool  *reclaim.Pool[snode]
	top   atomic.Pointer[snode]
}

func newClockStack() *clockStack {
	e := reclaim.NewEpoch()
	return &clockStack{
		epoch: e,
		pool:  reclaim.NewPool(e, func() *snode { return new(snode) }, func(n *snode) { n.pooled.Store(true) }),
	}
}

func (s *clockStack) push(v uint64) {
	n := s.pool.Get()
	n.pooled.Store(false)
	n.v = v
	g := s.epoch.Acquire()
	g.Protect(s.epoch.Now()) // announce BEFORE the first shared load
	defer s.epoch.Release(g)
	for {
		top := s.top.Load()
		n.next.Store(top)
		//lint:ignore casloop test-harness Treiber push; the stress test wants raw contention, not pacing
		if s.top.CompareAndSwap(top, n) {
			return
		}
	}
}

func (s *clockStack) pop() (uint64, bool, bool) {
	g := s.epoch.Acquire()
	g.Protect(s.epoch.Now())
	defer s.epoch.Release(g)
	for {
		top := s.top.Load()
		if top == nil {
			return 0, false, false
		}
		poisoned := top.pooled.Load() // must be false while protected
		next := top.next.Load()
		v := top.v
		//lint:ignore casloop test-harness Treiber pop; the stress test wants raw contention, not pacing
		if s.top.CompareAndSwap(top, next) {
			// Stamp at retire time, strictly after unlinking: every
			// guard that can still reach top announced before now, so
			// its announcement is below this stamp.
			s.pool.Retire(s.epoch.NextStamp(), top)
			return v, true, poisoned
		}
	}
}

// TestClockDisciplineStress races pushers against poppers over the
// clock-protected stack under -race: reuse overlapping a protected
// reader is a detector report, a poisoned read under protection or a
// lost/duplicated value is an explicit failure.
func TestClockDisciplineStress(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	perWorker := 20000
	if testing.Short() {
		perWorker = 2000
	}

	s := newClockStack()
	total := workers * perWorker
	delivered := make([]atomic.Uint32, total)
	var poison atomic.Uint32

	var wg, pushWG sync.WaitGroup
	pushWG.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pushWG.Done()
			for i := 0; i < perWorker; i++ {
				s.push(uint64(w*perWorker + i))
			}
		}()
	}
	done := make(chan struct{})
	go func() { pushWG.Wait(); close(done) }()

	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok, poisoned := s.pop()
				if ok {
					if poisoned {
						poison.Add(1)
					}
					delivered[v].Add(1)
					continue
				}
				select {
				case <-done:
					if _, ok, _ := s.pop(); !ok {
						return
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()

	if n := poison.Load(); n != 0 {
		t.Fatalf("%d reads of pooled (reclaimed) nodes under clock protection", n)
	}
	for v := range delivered {
		if n := delivered[v].Load(); n != 1 {
			t.Fatalf("value %d delivered %d times, want exactly once", v, n)
		}
	}
	s.pool.Collect()
	if s.pool.Freed.Load() == 0 {
		t.Fatalf("pool never recycled a node; stress exercised nothing")
	}
}

func TestPooledReuseStress(t *testing.T) {
	producers := runtime.GOMAXPROCS(0)
	if producers < 2 {
		producers = 2
	}
	consumers := producers
	perProducer := 20000
	if testing.Short() {
		perProducer = 2000
	}

	q := newPooledMSQ()
	total := producers * perProducer
	delivered := make([]atomic.Uint32, total)
	var poison atomic.Uint32

	var wg, prodWG sync.WaitGroup
	prodWG.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				q.enqueue(uint64(p*perProducer + i))
			}
		}()
	}
	done := make(chan struct{})
	go func() { prodWG.Wait(); close(done) }()

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok, poisoned := q.dequeue()
				if ok {
					if poisoned {
						poison.Add(1)
					}
					delivered[v].Add(1)
					continue
				}
				select {
				case <-done:
					if _, ok, _ := q.dequeue(); !ok {
						return
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()

	if n := poison.Load(); n != 0 {
		t.Fatalf("%d reads of pooled (reclaimed) nodes under protection", n)
	}
	for v := range delivered {
		if n := delivered[v].Load(); n != 1 {
			t.Fatalf("value %d delivered %d times, want exactly once", v, n)
		}
	}
	// The pool must actually have cycled nodes, or the test proves nothing.
	q.pool.Collect()
	if q.pool.Freed.Load() == 0 {
		t.Fatalf("pool never recycled a node; stress exercised nothing")
	}
}
