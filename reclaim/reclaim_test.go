package reclaim

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

type tnode struct {
	idx  uint64
	next atomic.Pointer[tnode]
}

func idxOf(n *tnode) uint64 { return n.idx }

func TestCollectFreesBelowMin(t *testing.T) {
	var freed []uint64
	d := NewDomain[tnode](2, idxOf, func(n *tnode) { freed = append(freed, n.idx) })
	for i := uint64(0); i < 5; i++ {
		d.Retire(&tnode{idx: i})
	}
	// Protect a node with index 3: 0,1,2 may go; 3,4 must stay.
	guard := &tnode{idx: 3}
	var cur atomic.Pointer[tnode]
	cur.Store(guard)
	d.Protect(0, cur.Load)
	if n := d.Collect(); n != 3 {
		t.Fatalf("Collect freed %d, want 3", n)
	}
	for _, f := range freed {
		if f >= 3 {
			t.Fatalf("freed protected-range index %d", f)
		}
	}
	// After unprotecting, the rest goes.
	d.Unprotect(0)
	if n := d.Collect(); n != 2 {
		t.Fatalf("second Collect freed %d, want 2", n)
	}
	if got := d.Freed.Load(); got != 5 {
		t.Fatalf("Freed = %d, want 5", got)
	}
}

func TestCollectNothingRetired(t *testing.T) {
	d := NewDomain[tnode](1, idxOf, nil)
	if n := d.Collect(); n != 0 {
		t.Fatalf("Collect on empty domain freed %d", n)
	}
}

func TestUnprotectedFreesEverything(t *testing.T) {
	count := 0
	d := NewDomain[tnode](4, idxOf, func(*tnode) { count++ })
	for i := uint64(0); i < 10; i++ {
		d.Retire(&tnode{idx: i})
	}
	if n := d.Collect(); n != 10 || count != 10 {
		t.Fatalf("freed %d/%d, want 10", n, count)
	}
}

func TestProtectAnnounceVerify(t *testing.T) {
	d := NewDomain[tnode](1, idxOf, nil)
	a := &tnode{idx: 1}
	b := &tnode{idx: 2}
	var cur atomic.Pointer[tnode]
	cur.Store(a)
	calls := 0
	// The pointer changes between the announce-load and the verify-load
	// exactly once; Protect must retry and return the stable value.
	got := d.Protect(0, func() *tnode {
		calls++
		if calls == 2 {
			cur.Store(b)
		}
		return cur.Load()
	})
	if got != b {
		t.Fatalf("Protect returned %v, want the post-change node", got.idx)
	}
	if d.slots[0].p.Load() != b {
		t.Fatal("announcement does not match returned node")
	}
}

func TestBadArgsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"zero threads": func() { NewDomain[tnode](0, idxOf, nil) },
		"nil indexOf":  func() { NewDomain[tnode](1, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// The core safety property under concurrency: a node is never recycled
// while any thread's announcement covers it (announced index <= node
// index ... protection means index >= announced min is retained).
func TestConcurrentSafety(t *testing.T) {
	const threads = 8
	const perThread = 2000
	type shared struct {
		head atomic.Pointer[tnode]
	}
	var s shared
	first := &tnode{idx: 0}
	s.head.Store(first)

	var inUse sync.Map // *tnode -> true while some thread holds it protected
	var violation atomic.Bool

	d := NewDomain[tnode](threads, idxOf, func(n *tnode) {
		if _, held := inUse.Load(n); held {
			violation.Store(true)
		}
	})

	var next atomic.Uint64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		tid := tid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				n := d.Protect(tid, s.head.Load)
				inUse.Store(n, true)
				// Advance the shared head to a fresh node and retire the
				// old one (only the thread that wins the CAS retires).
				fresh := &tnode{idx: next.Add(1)}
				if s.head.CompareAndSwap(n, fresh) {
					inUse.Delete(n)
					d.Unprotect(tid)
					d.Retire(n)
				} else {
					inUse.Delete(n)
					d.Unprotect(tid)
				}
				if i%64 == 0 {
					d.Collect()
				}
			}
		}()
	}
	wg.Wait()
	d.Collect()
	if violation.Load() {
		t.Fatal("a node was recycled while protected")
	}
	if d.Freed.Load() == 0 {
		t.Fatal("nothing was ever freed")
	}
}

// Property: Collect never frees an index >= the minimum announced index,
// for arbitrary retire/protect configurations.
func TestPropertyCollectRespectsMin(t *testing.T) {
	f := func(retired []uint16, protected []uint16) bool {
		if len(protected) > 8 {
			protected = protected[:8]
		}
		var freed []uint64
		d := NewDomain[tnode](8+1, idxOf, func(n *tnode) { freed = append(freed, n.idx) })
		for _, r := range retired {
			d.Retire(&tnode{idx: uint64(r)})
		}
		min := uint64(1 << 40)
		for i, pr := range protected {
			n := &tnode{idx: uint64(pr)}
			var cur atomic.Pointer[tnode]
			cur.Store(n)
			d.Protect(i, cur.Load)
			if uint64(pr) < min {
				min = uint64(pr)
			}
		}
		d.Collect()
		for _, fidx := range freed {
			if fidx >= min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
