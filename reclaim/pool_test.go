package reclaim

import "testing"

type item struct {
	stamp uint64
	v     int
}

func TestPoolRecyclesWhenUnprotected(t *testing.T) {
	e := NewEpoch()
	p := NewPool(e, func() *item { return &item{} }, func(it *item) { it.v = -1 })

	a := p.Get()
	a.stamp, a.v = e.NextStamp(), 1
	p.Retire(a.stamp, a)
	if freed := p.Collect(); freed != 1 {
		t.Fatalf("Collect freed %d, want 1 (nothing protected)", freed)
	}
	if got := p.Get(); got != a {
		t.Fatalf("Get returned a fresh item, want the recycled one")
	} else if got.v != -1 {
		t.Fatalf("recycled item not reset: v=%d, want -1", got.v)
	}
	if p.Freed.Load() != 1 {
		t.Fatalf("Freed=%d, want 1", p.Freed.Load())
	}
}

func TestPoolDefersWhileProtected(t *testing.T) {
	e := NewEpoch()
	p := NewPool(e, func() *item { return &item{} }, nil)

	it := p.Get()
	it.stamp = e.NextStamp()
	g := e.Acquire()
	g.Protect(it.stamp) // an in-flight reader announced this stamp
	p.Retire(it.stamp, it)
	if freed := p.Collect(); freed != 0 {
		t.Fatalf("Collect freed %d under an active announcement, want 0", freed)
	}
	// A later announcement does not resurrect protection for older stamps.
	e.Release(g)
	g2 := e.Acquire()
	g2.Protect(e.NextStamp())
	if freed := p.Collect(); freed != 1 {
		t.Fatalf("Collect freed %d after release, want 1", freed)
	}
	e.Release(g2)
}

func TestEpochGuardReuseAndMinStamp(t *testing.T) {
	e := NewEpoch()
	if min := e.MinStamp(); min != NoStamp {
		t.Fatalf("MinStamp with no guards = %d, want NoStamp", min)
	}
	g := e.Acquire()
	g.Protect(7)
	h := e.Acquire()
	h.Protect(3)
	if min := e.MinStamp(); min != 3 {
		t.Fatalf("MinStamp = %d, want 3", min)
	}
	e.Release(h)
	if min := e.MinStamp(); min != 7 {
		t.Fatalf("MinStamp after release = %d, want 7", min)
	}
	e.Release(g)
	// Released guards recycle through the freelist.
	if again := e.Acquire(); again != g && again != h {
		t.Fatalf("Acquire after release returned a fresh guard, want a recycled one")
	}
}

func TestPoolAmortizedCollect(t *testing.T) {
	e := NewEpoch()
	p := NewPool(e, func() *item { return &item{} }, nil)
	// collectEvery retires trigger a collection without an explicit call.
	for i := 0; i < collectEvery; i++ {
		it := p.Get()
		it.stamp = e.NextStamp()
		p.Retire(it.stamp, it)
	}
	if p.Freed.Load() == 0 {
		t.Fatalf("no automatic collection after %d retires", collectEvery)
	}
}
