// Epoch, Guard and Pool implement the package's protection discipline in
// the form the queues' pooled-node mode needs: items recycle through
// per-P freelists (sync.Pool) and reuse is deferred until no in-flight
// operation can still touch the retired item.
//
// The scheme announces *stamps* (monotonically increasing uint64s
// carried by the protected items) rather than pointers, which keeps one
// announcement enough to protect an item and everything reachable
// forward of it: every queue orders its items so that anything a
// traversal can reach from an item carries a stamp >= that item's.
// A retired item is reusable once its stamp lies strictly below every
// active announcement.
//
// The announce-and-verify protocol at a source pointer src is:
//
//	for {
//		t := src.Load()
//		g.Protect(t.stamp.Load())   // stamp fields are atomic
//		if src.Load() == t {
//			break                   // t (and its successors) pinned
//		}
//	}
//
// Stamp fields must be atomic because a stale loader may read a node
// the pool has already handed to a new owner; the value it reads is
// then either the old stamp (strictly smaller — the announcement is
// merely more conservative) or the new one (the verify re-load only
// passes if the node really is installed at src again, making the
// announcement exact). Either way the protocol over-protects, never
// under-protects.
package reclaim

import (
	"math"
	"sync"
	"sync/atomic"
)

// NoStamp is the announcement value of an inactive guard: larger than
// every real stamp, so it never constrains collection.
const NoStamp = math.MaxUint64

// collectEvery is the retire-count period of the amortized collection
// trigger: one list scan per this many retires.
const collectEvery = 64

// Guard is one announcement slot. Guards are acquired per operation
// from an Epoch, announce at most one stamp at a time, and occupy a
// full cache line so announcements do not false-share.
type Guard struct {
	//lf:contended
	stamp atomic.Uint64
	_     [56]byte
}

// Protect announces stamp. Callers follow the announce-and-verify
// protocol documented at the top of this file.
//
//lf:hotpath
func (g *Guard) Protect(stamp uint64) { g.stamp.Store(stamp) }

// Release clears the announcement.
//
//lf:hotpath
func (g *Guard) Release() { g.stamp.Store(NoStamp) }

// Epoch is the shared state of one pooled data structure: a global
// stamp source, the registry of every guard ever issued (append-only;
// MinStamp scans it lock-free), and a freelist of inactive guards.
// One Epoch can back several Pools — rings and their slots, nodes and
// their edges — as long as all stamps come from one order.
type Epoch struct {
	//lf:contended
	stamp atomic.Uint64
	_     [56]byte

	// guards is copy-on-write: newGuard swaps in an extended copy under
	// mu; MinStamp loads the current slice without locking.
	guards atomic.Pointer[[]*Guard]
	mu     sync.Mutex
	gpool  sync.Pool
}

// NewEpoch creates an empty epoch domain.
func NewEpoch() *Epoch {
	e := &Epoch{}
	e.guards.Store(new([]*Guard))
	return e
}

// NextStamp returns the next stamp in the epoch's global order, for
// structures whose items carry no structural index of their own.
//
//lf:hotpath
func (e *Epoch) NextStamp() uint64 { return e.stamp.Add(1) }

// Now returns the epoch clock's current position without advancing it:
// the announcement value of the clock discipline, the alternative to
// per-item structural stamps. A guard that announces Now() before
// loading any shared pointer protects every item those loads can reach,
// provided items are retired with NextStamp() AT RETIRE TIME and only
// after becoming unreachable from shared locations: a pointer loaded
// after the announce necessarily refers to a then-live item, whose
// later retire stamp exceeds the announcement. One announcement per
// operation covers an arbitrary traversal (see queue/lcrq).
//
//lf:hotpath
func (e *Epoch) Now() uint64 { return e.stamp.Load() }

// Acquire returns an inactive guard: a freelist hit on the steady
// state, a registered allocation on first use.
//
//lf:hotpath
func (e *Epoch) Acquire() *Guard {
	if g, ok := e.gpool.Get().(*Guard); ok {
		return g
	}
	return e.newGuard()
}

// Release deactivates g and returns it to the freelist.
//
//lf:hotpath
func (e *Epoch) Release(g *Guard) {
	g.Release()
	e.gpool.Put(g)
}

// newGuard allocates and registers a guard. The registry only ever
// grows; guards dropped by the freelist stay registered but announce
// NoStamp, so they cost MinStamp one load each and nothing else.
//
//lf:coldpath
func (e *Epoch) newGuard() *Guard {
	g := &Guard{}
	g.stamp.Store(NoStamp)
	e.mu.Lock()
	old := *e.guards.Load()
	gs := make([]*Guard, len(old)+1)
	copy(gs, old)
	gs[len(old)] = g
	e.guards.Store(&gs)
	e.mu.Unlock()
	return g
}

// MinStamp returns the smallest announced stamp, or NoStamp when no
// guard is active.
//
//lf:hotpath
func (e *Epoch) MinStamp() uint64 {
	min := uint64(NoStamp)
	for _, g := range *e.guards.Load() {
		if s := g.stamp.Load(); s < min {
			min = s
		}
	}
	return min
}

// Pool is an epoch-guarded freelist of *T. Get pops a recycled item or
// falls back to the constructor; Retire defers an item until every
// announcement precedes its stamp, then resets and recycles it. The
// steady state allocates nothing: items, and the link records the
// retired list is threaded through, both cycle through sync.Pool (Go's
// per-P freelist).
type Pool[T any] struct {
	epoch *Epoch
	newFn func() *T
	reset func(*T)

	free  sync.Pool
	links sync.Pool

	retired    atomic.Pointer[plink[T]]
	retires    atomic.Uint64
	collecting atomic.Bool

	// Freed counts items recycled through the freelist, for tests and
	// observability.
	Freed atomic.Uint64
}

type plink[T any] struct {
	n     *T
	stamp uint64
	next  *plink[T]
}

// NewPool creates a pool over e. newFn constructs fresh items on
// freelist misses; reset (optional) scrubs an item before reuse.
func NewPool[T any](e *Epoch, newFn func() *T, reset func(*T)) *Pool[T] {
	if e == nil {
		panic("reclaim: NewPool requires an epoch")
	}
	if newFn == nil {
		panic("reclaim: NewPool requires a constructor")
	}
	return &Pool[T]{epoch: e, newFn: newFn, reset: reset}
}

// Get returns a recycled or fresh item.
//
//lf:hotpath
func (p *Pool[T]) Get() *T {
	if n, ok := p.free.Get().(*T); ok {
		return n
	}
	return p.newItem()
}

//lf:coldpath
func (p *Pool[T]) newItem() *T { return p.newFn() }

// Put recycles an item that was NEVER published: one obtained from Get
// whose installation lost its race, so no other thread can hold a
// reference. Published items must go through Retire instead.
//
//lf:hotpath
func (p *Pool[T]) Put(n *T) {
	if p.reset != nil {
		p.reset(n)
	}
	p.free.Put(n)
}

// Retire defers item n, which carries the given stamp, for recycling
// once safe. The caller must guarantee n is unreachable to new
// announce-and-verify loops (e.g. the queue head moved past it).
// Every collectEvery-th retire triggers a collection, amortizing the
// scan without a background goroutine.
//
//lf:hotpath
func (p *Pool[T]) Retire(stamp uint64, n *T) {
	l, ok := p.links.Get().(*plink[T])
	if !ok {
		l = p.newLink()
	}
	l.n, l.stamp = n, stamp
	for {
		head := p.retired.Load()
		l.next = head
		//lint:ignore casloop Treiber push onto the retired list; amortized off the queues' §3-accounted word
		if p.retired.CompareAndSwap(head, l) {
			break
		}
	}
	if p.retires.Add(1)%collectEvery == 0 {
		p.Collect()
	}
}

//lf:coldpath
func (p *Pool[T]) newLink() *plink[T] { return new(plink[T]) }

// Collect recycles every retired item whose stamp lies strictly below
// the minimum announcement. At most one collector runs at a time;
// survivors are pushed back for the next pass. Returns the number of
// items recycled.
func (p *Pool[T]) Collect() int {
	if !p.collecting.CompareAndSwap(false, true) {
		return 0
	}
	defer p.collecting.Store(false)

	head := p.retired.Swap(nil)
	if head == nil {
		return 0
	}
	min := p.epoch.MinStamp()
	freed := 0
	var survivors *plink[T]
	for l := head; l != nil; {
		next := l.next
		if l.stamp < min {
			if p.reset != nil {
				p.reset(l.n)
			}
			p.free.Put(l.n)
			l.n = nil
			p.links.Put(l)
			freed++
		} else {
			l.next = survivors
			survivors = l
		}
		l = next
	}
	for survivors != nil {
		next := survivors.next
		for {
			h := p.retired.Load()
			survivors.next = h
			//lint:ignore casloop Treiber push-back of survivors; amortized off the queues' §3-accounted word
			if p.retired.CompareAndSwap(h, survivors) {
				break
			}
		}
		survivors = next
	}
	p.Freed.Add(uint64(freed))
	return freed
}
