package reclaim_test

import (
	"fmt"
	"sync/atomic"

	"repro/reclaim"
)

type node struct {
	index uint64
	value string
}

// The Algorithm 7 discipline: protect before reading, retire after the
// structure's head moves past a node, collect to recycle.
func ExampleDomain() {
	freed := 0
	d := reclaim.NewDomain[node](2,
		func(n *node) uint64 { return n.index },
		func(*node) { freed++ },
	)

	var head atomic.Pointer[node]
	head.Store(&node{index: 0, value: "first"})

	// Reader: announce, then use.
	n := d.Protect(0, head.Load)
	_ = n.value

	// Writer: replace the head and retire the old node.
	old := head.Swap(&node{index: 1, value: "second"})
	d.Retire(old)

	// Nothing can be freed while the reader's announcement stands.
	fmt.Println(d.Collect())
	d.Unprotect(0)
	fmt.Println(d.Collect(), freed)
	// Output:
	// 0
	// 1 1
}
