// Package repro reproduces Ostrovsky & Morrison, "Scaling Concurrent
// Queues by Using HTM to Profit from Failed Atomic Operations"
// (PPoPP 2020) in Go.
//
// The module carries two tracks. The simulated track (internal/machine,
// internal/core, internal/simqueue, driven by cmd/sbqsim and cmd/cohtrace)
// rebuilds the paper's hardware substrate — a directory-based MSI
// coherence protocol with an Intel-RTM-style HTM layer — because Go has
// no HTM intrinsics; TxCAS and every evaluated queue run on it and all
// figures of the paper regenerate from the same protocol dynamics the
// paper argues from. The native track (queue, basket, reclaim) is the
// adoptable Go library: generic MPMC queues on sync/atomic, including the
// modular baskets queue with pluggable baskets.
//
// This package itself holds only the repository-level benchmarks: one
// testing.B family per paper figure (see bench_test.go).
//
// See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
