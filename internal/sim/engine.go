// Package sim provides a deterministic discrete-event simulation engine.
//
// Events are ordered by (time, sequence) so that executions are fully
// reproducible: scheduling the same events in the same order always yields
// the same execution, independent of map iteration order or goroutine
// scheduling. Time is an abstract uint64 cycle count.
package sim

import "container/heap"

// Time is simulated time, in cycles.
type Time = uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events scheduled for the same cycle
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// all scheduling must happen from the goroutine that calls Step or Run
// (or from callbacks it invokes).
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
	// MaxSteps, if nonzero, bounds the number of events Run will process
	// before panicking. It guards against livelocked simulations in tests.
	MaxSteps uint64
}

// New returns a new Engine starting at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay cycles (possibly zero). Events scheduled for
// the same cycle run in scheduling order.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// At schedules fn at absolute time t. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step runs the next event, advancing time to its timestamp.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.steps++
	if e.MaxSteps != 0 && e.steps > e.MaxSteps {
		panic("sim: exceeded MaxSteps; simulation is likely livelocked")
	}
	ev.fn()
	return true
}

// Run processes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances time to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
