package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events ran out of scheduling order at %d: %v", i, got[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(1, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "a0") })
		e.Schedule(5, func() { got = append(got, "a5") })
	})
	e.Schedule(3, func() { got = append(got, "b") })
	e.Run()
	want := []string{"a", "a0", "b", "a5"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(15, func() { ran++ })
	e.RunUntil(10)
	if ran != 1 {
		t.Fatalf("RunUntil(10) ran %d events, want 1", ran)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("Run ran %d events total, want 2", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine reported work")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	e := New()
	e.MaxSteps = 10
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("livelocked engine did not panic at MaxSteps")
		}
	}()
	e.Run()
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine's clock ends at the max delay.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var last Time
		mono := true
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() {
				if e.Now() < last {
					mono = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return mono && (len(delays) == 0 || e.Now() == max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := New()
		var out []Time
		for i := 0; i < 50; i++ {
			d := Time(i * 37 % 13)
			e.Schedule(d, func() {
				out = append(out, e.Now())
				if len(out) < 200 {
					e.Schedule(Time(len(out)%7), func() { out = append(out, e.Now()) })
				}
			})
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic timestamps at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
