package stats

import (
	"math"
	"testing"
)

// TestHistogramMergeEmpty covers the degenerate merge shapes: two empties,
// an empty into a populated histogram, and a populated one into an empty.
func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Merge(b)
	if a.Count != 0 || a.Sum != 0 {
		t.Fatalf("empty+empty => count=%d sum=%d", a.Count, a.Sum)
	}

	var pop Histogram
	for _, v := range []uint64{1, 2, 4, 1000} {
		pop.Observe(v)
	}
	before := pop
	pop.Merge(Histogram{}) // empty into populated: identity
	if pop != before {
		t.Fatalf("merge with empty changed histogram: %+v != %+v", pop, before)
	}

	var empty Histogram
	empty.Merge(before) // populated into empty: copy
	if empty != before {
		t.Fatalf("merge into empty not a copy: %+v != %+v", empty, before)
	}
	if empty.Mean() != before.Mean() || empty.Quantile(0.5) != before.Quantile(0.5) {
		t.Fatal("derived stats differ after merge into empty")
	}
}

// TestHistogramMergeZeroBucket verifies that zero observations (bucket 0)
// survive merging and keep the mean exact.
func TestHistogramMergeZeroBucket(t *testing.T) {
	var a, b Histogram
	a.Observe(0)
	a.Observe(0)
	b.Observe(0)
	b.Observe(8)
	a.Merge(b)
	if a.Buckets[0] != 3 {
		t.Fatalf("zero bucket = %d, want 3", a.Buckets[0])
	}
	if a.Count != 4 || a.Sum != 8 {
		t.Fatalf("count=%d sum=%d", a.Count, a.Sum)
	}
	if got := a.Mean(); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

// TestHistogramMergeOverflowBucket verifies values beyond the histogram's
// span: they clamp into the last bucket, merge there, and a Sum that
// exceeds 64 bits wraps (documented uint64 arithmetic) without disturbing
// bucket counts.
func TestHistogramMergeOverflowBucket(t *testing.T) {
	var a, b Histogram
	huge := uint64(1) << 50 // beyond the 2^39 span
	a.Observe(huge)
	b.Observe(math.MaxUint64)
	a.Merge(b)
	if a.Buckets[HistBuckets-1] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", a.Buckets[HistBuckets-1])
	}
	if lo, hi := BucketBounds(HistBuckets - 1); lo != uint64(1)<<(HistBuckets-2) || hi != math.MaxUint64 {
		t.Fatalf("last bucket bounds = [%d, %d)", lo, hi)
	}
	// Sum wrapped: huge + MaxUint64 ≡ huge - 1 (mod 2^64).
	if a.Sum != huge-1 {
		t.Fatalf("sum = %d, want wrapped %d", a.Sum, huge-1)
	}
	if a.Count != 2 {
		t.Fatalf("count = %d", a.Count)
	}
	// Quantiles stay within the last bucket despite the wrapped sum.
	if q := a.Quantile(0.99); q < float64(uint64(1)<<(HistBuckets-2)) {
		t.Fatalf("p99 = %v fell below the last bucket", q)
	}
}

// TestHistogramMergeAdditive checks that merging two disjoint populations
// is exactly equivalent to observing the union.
func TestHistogramMergeAdditive(t *testing.T) {
	var a, b, want Histogram
	for v := uint64(1); v <= 64; v *= 2 {
		a.Observe(v)
		want.Observe(v)
	}
	for v := uint64(100); v <= 100000; v *= 10 {
		b.Observe(v)
		want.Observe(v)
	}
	a.Merge(b)
	if a != want {
		t.Fatalf("merge not additive:\n got %+v\nwant %+v", a, want)
	}
}
