package stats

import (
	"math"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxUint64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundsCoverValues(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 3, 100, 1 << 20, 1 << 38} {
		i := BucketOf(v)
		lo, hi := BucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %d in bucket %d outside bounds [%d, %d)", v, i, lo, hi)
		}
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count != 1000 {
		t.Fatalf("count = %d", h.Count)
	}
	if got, want := h.Mean(), 500.5; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Power-of-two buckets are coarse: the median of 1..1000 must land in
	// the right order of magnitude, not exactly on 500.
	if p50 := h.Quantile(0.5); p50 < 250 || p50 > 1024 {
		t.Errorf("p50 = %v, outside the containing buckets", p50)
	}
	if p0 := h.Quantile(0); p0 > 2 {
		t.Errorf("p0 = %v", p0)
	}
	if p100 := h.Quantile(1); p100 < 512 {
		t.Errorf("p100 = %v", p100)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	a.Observe(100)
	b.Observe(7)
	a.Merge(b)
	if a.Count != 3 || a.Sum != 112 {
		t.Fatalf("after merge count=%d sum=%d", a.Count, a.Sum)
	}
}

func TestHistogramStringEmpty(t *testing.T) {
	var h Histogram
	if got := h.String(); got != "n=0" {
		t.Errorf("empty String() = %q", got)
	}
	h.Observe(1500)
	if got := h.String(); got == "" {
		t.Error("non-empty String() is empty")
	}
}
