package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); !approx(got, 2.5, 1e-12) {
		t.Fatalf("p50 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 1 || xs[3] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty sample")
		}
	}()
	Percentile(nil, 50)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 5 + 2x
	f := LinearFit(xs, ys)
	if !approx(f.Slope, 2, 1e-12) || !approx(f.Intercept, 5, 1e-12) || !approx(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitFlat(t *testing.T) {
	f := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !approx(f.Slope, 0, 1e-12) || !approx(f.Intercept, 4, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitDegenerateX(t *testing.T) {
	f := LinearFit([]float64{2, 2}, []float64{1, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("degenerate fit = %+v", f)
	}
}

// Property: the fit of y = a + b*x recovers a and b for any sane inputs.
func TestLinearFitProperty(t *testing.T) {
	f := func(a, b int8, n uint8) bool {
		if n < 2 {
			return true
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = float64(a) + float64(b)*float64(i)
		}
		fit := LinearFit(xs, ys)
		return approx(fit.Slope, float64(b), 1e-9) && approx(fit.Intercept, float64(a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] and stddev is nonnegative.
func TestSummaryProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip inputs whose sums or squares overflow float64; the
			// statistics themselves are then meaningless.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
