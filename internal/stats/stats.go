// Package stats provides the small set of statistics the benchmark harness
// and the shape-asserting tests need: summary statistics, percentiles, and
// least-squares linear fits (used to assert that a latency curve is "flat"
// or "linear" without pinning exact numbers).
package stats

import (
	"math"
	"sort"
)

// Summary holds summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is a least-squares line y = Intercept + Slope*x.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination; near 1 means the line
	// explains the data well.
	R2 float64
}

// LinearFit fits a least-squares line through (xs[i], ys[i]). It panics if
// the slices differ in length or have fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: linear fit needs >= 2 paired points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	f := Fit{}
	if sxx == 0 {
		f.Slope = 0
		f.Intercept = my
		f.R2 = 0
		return f
	}
	f.Slope = sxy / sxx
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f
}
