package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// HistBuckets is the bucket count of the power-of-two histograms used by
// the observability layer (repro/internal/obs). Bucket 0 holds the value 0
// and bucket i (i >= 1) holds values in [2^(i-1), 2^i). With 40 buckets the
// histogram spans [0, 2^39) — about nine minutes at nanosecond resolution —
// which comfortably covers any per-operation queue latency.
const HistBuckets = 40

// BucketOf returns the histogram bucket index for v: 0 for zero, otherwise
// the bit length of v, clamped to the last bucket.
func BucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketBounds returns the half-open value range [lo, hi) covered by bucket
// i. The last bucket's hi is MaxUint64 (it absorbs all larger values).
func BucketBounds(i int) (lo, hi uint64) {
	switch {
	case i <= 0:
		return 0, 1
	case i >= HistBuckets-1:
		return uint64(1) << (HistBuckets - 2), math.MaxUint64
	default:
		return uint64(1) << (i - 1), uint64(1) << i
	}
}

// Histogram is a fixed-shape power-of-two histogram snapshot: bucket counts
// plus the exact count and sum of observed values. It is a plain value type
// (no atomics); the concurrent recording front-end lives in
// repro/internal/obs, which aggregates into this type.
type Histogram struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Observe records v. Not safe for concurrent use; this is the aggregation
// backend, not the lock-free front-end.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[BucketOf(v)]++
	h.Count++
	h.Sum += v
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Mean returns the exact mean of observed values (zero when empty).
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an estimate of the q-th quantile (0..1), interpolating
// linearly within the containing bucket. It returns zero when empty.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo, hi := BucketBounds(i)
			if i == HistBuckets-1 {
				return float64(lo) // unbounded bucket: report its floor
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - seen) / float64(c)
			}
			return float64(lo) + frac*float64(hi-lo)
		}
		seen += float64(c)
	}
	lo, _ := BucketBounds(HistBuckets - 1)
	return float64(lo)
}

// String renders a compact one-line summary, with durations scaled from
// nanoseconds (the unit every histogram in this repository observes).
func (h Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max<=%s",
		h.Count, fmtNS(h.Mean()), fmtNS(h.Quantile(0.5)), fmtNS(h.Quantile(0.99)), fmtNS(h.maxBound()))
}

func (h Histogram) maxBound() float64 {
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.Buckets[i] != 0 {
			_, hi := BucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}

func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return strings.TrimSuffix(fmt.Sprintf("%.3g", ns/1e3), ".0") + "µs"
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
