package cliflag

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
)

// LogConfig is the structured-logging configuration shared by commands
// that emit log/slog records (cmd/sbqd). Format selects the slog handler
// ("text", "json") or disables logging entirely ("off"); Level is the
// minimum record level; Every is the 1-in-N sampling rate the service
// applies to high-rate job-lifecycle records (submit, lease, ack, nack,
// expire) — rare high-signal records (dead-letter, reject, restore,
// shutdown) are never sampled regardless.
type LogConfig struct {
	Format string
	Level  string
	Every  int
}

// LogFlags registers the shared -log, -log-level, and -log-every flags on
// fs with the given defaults and returns the bound struct. Values are
// validated by Logger, not at flag-parse time, so commands control how a
// bad value is reported.
func LogFlags(fs *flag.FlagSet, def LogConfig) *LogConfig {
	c := &LogConfig{}
	fs.StringVar(&c.Format, "log", def.Format,
		"structured log format: text, json, or off")
	fs.StringVar(&c.Level, "log-level", def.Level,
		"minimum log level: debug, info, warn, or error")
	fs.IntVar(&c.Every, "log-every", def.Every,
		"sample 1 in N high-rate job records (submit/lease/ack/nack/expire); warnings are never sampled")
	return c
}

// Logger builds the configured *slog.Logger writing to w. A "off" (or
// empty) format returns a nil logger, which the service treats as
// logging disabled; unknown formats or levels are errors.
func (c *LogConfig) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch c.Level {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (have debug, info, warn, error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch c.Format {
	case "off", "":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (have text, json, off)", c.Format)
	}
}
