package cliflag

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

func TestLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := LogFlags(fs, LogConfig{Format: "text", Level: "info", Every: 100})
	if err := fs.Parse([]string{"-log", "json", "-log-level", "warn", "-log-every", "7"}); err != nil {
		t.Fatal(err)
	}
	if c.Format != "json" || c.Level != "warn" || c.Every != 7 {
		t.Fatalf("parsed config = %+v", c)
	}

	var b bytes.Buffer
	l, err := c.Logger(&b)
	if err != nil {
		t.Fatalf("Logger: %v", err)
	}
	l.Info("hidden")
	l.Warn("shown", "k", "v")
	line := strings.TrimSpace(b.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("level filter leaked the info record:\n%s", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json handler emitted non-JSON %q: %v", line, err)
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Fatalf("record = %v", rec)
	}
}

func TestLogConfigOffAndErrors(t *testing.T) {
	var b bytes.Buffer
	if l, err := (&LogConfig{Format: "off"}).Logger(&b); err != nil || l != nil {
		t.Fatalf("off: logger=%v err=%v, want nil/nil", l, err)
	}
	if _, err := (&LogConfig{Format: "xml"}).Logger(&b); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := (&LogConfig{Format: "text", Level: "loud"}).Logger(&b); err == nil {
		t.Fatal("unknown level accepted")
	}
}
