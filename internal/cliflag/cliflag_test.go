package cliflag

import (
	"flag"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/machine"
)

func TestThreadListSet(t *testing.T) {
	var l ThreadList
	if err := l.Set("1, 8,44"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Counts, []int{1, 8, 44}) {
		t.Fatalf("Counts = %v", l.Counts)
	}
	if got := l.String(); got != "1,8,44" {
		t.Fatalf("String = %q", got)
	}
	// A second Set replaces, like a scalar flag.
	if err := l.Set("2"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Counts, []int{2}) {
		t.Fatalf("Counts after replace = %v", l.Counts)
	}
	for _, bad := range []string{"", "0", "-3", "4,x", "4,,8"} {
		if err := l.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestBatchListSet(t *testing.T) {
	var l BatchList
	if err := l.Set("0, 1,8,64"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Sizes, []int{0, 1, 8, 64}) {
		t.Fatalf("Sizes = %v", l.Sizes)
	}
	if got := l.String(); got != "0,1,8,64" {
		t.Fatalf("String = %q", got)
	}
	// A second Set replaces, like a scalar flag. Zero (single-op path) is
	// legal; negatives and junk are not.
	if err := l.Set("16"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Sizes, []int{16}) {
		t.Fatalf("Sizes after replace = %v", l.Sizes)
	}
	for _, bad := range []string{"", "-1", "8,x", "8,,16"} {
		if err := l.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	if got := PowersOfTwo(44); !reflect.DeepEqual(got, []int{1, 2, 4, 8, 16, 32}) {
		t.Fatalf("PowersOfTwo(44) = %v", got)
	}
	if got := PowersOfTwo(0); got != nil {
		t.Fatalf("PowersOfTwo(0) = %v", got)
	}
}

func TestFaultPlanSet(t *testing.T) {
	var f FaultPlan
	if err := f.Set("p=0.2, cap=8, disable-after=5000,jitter=40,seed=7"); err != nil {
		t.Fatal(err)
	}
	want := machine.FaultPlan{
		SpuriousAbortProb: 0.2, CapacityLines: 8,
		DisableHTMAfter: 5000, CrossSocketJitter: 40, Seed: 7,
	}
	if f.Plan != want {
		t.Fatalf("Plan = %+v", f.Plan)
	}
	// String renders back in Set syntax and round-trips.
	var g FaultPlan
	if err := g.Set(f.String()); err != nil {
		t.Fatal(err)
	}
	if g.Plan != f.Plan {
		t.Fatalf("round trip: %+v != %+v", g.Plan, f.Plan)
	}

	if err := f.Set("disable"); err != nil {
		t.Fatal(err)
	}
	// Setting again replaces the whole plan.
	if f.Plan != (machine.FaultPlan{DisableHTM: true}) {
		t.Fatalf("Plan after disable = %+v", f.Plan)
	}

	for _, bad := range []string{
		"p", "p=", "p=2", "p=-0.1", "p=x",
		"cap=0", "cap=-1", "disable=1", "disable-after=0",
		"jitter=-1", "seed=x", "bogus=1", "bogus",
	} {
		var h FaultPlan
		if err := h.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted: %+v", bad, h.Plan)
		}
	}
}

func TestRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	tl := Threads(fs, "thread counts")
	fp := Faults(fs)
	bl := Batches(fs, "batch sizes")
	if err := fs.Parse([]string{"-threads", "4,8", "-faults", "disable", "-batch", "1,8"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl.Counts, []int{4, 8}) {
		t.Fatalf("Counts = %v", tl.Counts)
	}
	if !reflect.DeepEqual(bl.Sizes, []int{1, 8}) {
		t.Fatalf("Sizes = %v", bl.Sizes)
	}
	if !fp.Plan.DisableHTM {
		t.Fatalf("Plan = %+v", fp.Plan)
	}
	if err := fs.Parse([]string{"-threads", "4,no"}); err == nil {
		t.Fatal("bad -threads accepted")
	}
}

func TestDurationListSet(t *testing.T) {
	cases := []struct {
		in      string
		want    []time.Duration
		wantErr bool
	}{
		{"50ms", []time.Duration{50 * time.Millisecond}, false},
		{"50ms,1s, 2m ", []time.Duration{50 * time.Millisecond, time.Second, 2 * time.Minute}, false},
		{"0s", []time.Duration{0}, false}, // zero is a valid point: "the command default"
		{"0,270ns,5us", []time.Duration{0, 270 * time.Nanosecond, 5 * time.Microsecond}, false},
		{"", nil, true},
		{"abc", nil, true},
		{"-1s", nil, true},    // negative durations rejected
		{"1s,,2s", nil, true}, // empty field rejected
		{"10", nil, true},     // bare numbers are not durations
	}
	for _, tc := range cases {
		var l DurationList
		err := l.Set(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Set(%q) = nil error, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Set(%q) = %v", tc.in, err)
			continue
		}
		if len(l.Durations) != len(tc.want) {
			t.Errorf("Set(%q) = %v, want %v", tc.in, l.Durations, tc.want)
			continue
		}
		for i := range tc.want {
			if l.Durations[i] != tc.want[i] {
				t.Errorf("Set(%q)[%d] = %v, want %v", tc.in, i, l.Durations[i], tc.want[i])
			}
		}
	}
}

func TestDurationListReplacesOnRepeat(t *testing.T) {
	var l DurationList
	if err := l.Set("1s,2s"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("3s"); err != nil {
		t.Fatal(err)
	}
	if len(l.Durations) != 1 || l.Durations[0] != 3*time.Second {
		t.Fatalf("repeated Set did not replace: %v", l.Durations)
	}
}

func TestDurationListString(t *testing.T) {
	var l DurationList
	if s := l.String(); s != "" {
		t.Fatalf("empty list String() = %q, want \"\"", s)
	}
	if err := l.Set("50ms,1s"); err != nil {
		t.Fatal(err)
	}
	if s := l.String(); s != "50ms,1s" {
		t.Fatalf("String() = %q, want \"50ms,1s\"", s)
	}
}

func TestServiceTimings(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tm := ServiceTimings(fs, Timings{
		LeaseTTL: 30 * time.Second, DrainTimeout: 10 * time.Second,
	})
	if err := fs.Parse([]string{"-lease-ttl", "250ms", "-scan-interval", "50ms"}); err != nil {
		t.Fatal(err)
	}
	if tm.LeaseTTL != 250*time.Millisecond {
		t.Fatalf("LeaseTTL = %v", tm.LeaseTTL)
	}
	if tm.ScanInterval != 50*time.Millisecond {
		t.Fatalf("ScanInterval = %v", tm.ScanInterval)
	}
	if tm.DrainTimeout != 10*time.Second {
		t.Fatalf("DrainTimeout = %v (default must survive)", tm.DrainTimeout)
	}
	// Malformed durations fail at parse time with the flag name in the
	// message, like every other cliflag value.
	fs2 := flag.NewFlagSet("x", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	ServiceTimings(fs2, Timings{})
	if err := fs2.Parse([]string{"-lease-ttl", "nonsense"}); err == nil {
		t.Fatal("parse of -lease-ttl nonsense succeeded")
	}
}
