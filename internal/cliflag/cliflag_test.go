package cliflag

import (
	"flag"
	"io"
	"reflect"
	"testing"

	"repro/internal/machine"
)

func TestThreadListSet(t *testing.T) {
	var l ThreadList
	if err := l.Set("1, 8,44"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Counts, []int{1, 8, 44}) {
		t.Fatalf("Counts = %v", l.Counts)
	}
	if got := l.String(); got != "1,8,44" {
		t.Fatalf("String = %q", got)
	}
	// A second Set replaces, like a scalar flag.
	if err := l.Set("2"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Counts, []int{2}) {
		t.Fatalf("Counts after replace = %v", l.Counts)
	}
	for _, bad := range []string{"", "0", "-3", "4,x", "4,,8"} {
		if err := l.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestBatchListSet(t *testing.T) {
	var l BatchList
	if err := l.Set("0, 1,8,64"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Sizes, []int{0, 1, 8, 64}) {
		t.Fatalf("Sizes = %v", l.Sizes)
	}
	if got := l.String(); got != "0,1,8,64" {
		t.Fatalf("String = %q", got)
	}
	// A second Set replaces, like a scalar flag. Zero (single-op path) is
	// legal; negatives and junk are not.
	if err := l.Set("16"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Sizes, []int{16}) {
		t.Fatalf("Sizes after replace = %v", l.Sizes)
	}
	for _, bad := range []string{"", "-1", "8,x", "8,,16"} {
		if err := l.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	if got := PowersOfTwo(44); !reflect.DeepEqual(got, []int{1, 2, 4, 8, 16, 32}) {
		t.Fatalf("PowersOfTwo(44) = %v", got)
	}
	if got := PowersOfTwo(0); got != nil {
		t.Fatalf("PowersOfTwo(0) = %v", got)
	}
}

func TestFaultPlanSet(t *testing.T) {
	var f FaultPlan
	if err := f.Set("p=0.2, cap=8, disable-after=5000,jitter=40,seed=7"); err != nil {
		t.Fatal(err)
	}
	want := machine.FaultPlan{
		SpuriousAbortProb: 0.2, CapacityLines: 8,
		DisableHTMAfter: 5000, CrossSocketJitter: 40, Seed: 7,
	}
	if f.Plan != want {
		t.Fatalf("Plan = %+v", f.Plan)
	}
	// String renders back in Set syntax and round-trips.
	var g FaultPlan
	if err := g.Set(f.String()); err != nil {
		t.Fatal(err)
	}
	if g.Plan != f.Plan {
		t.Fatalf("round trip: %+v != %+v", g.Plan, f.Plan)
	}

	if err := f.Set("disable"); err != nil {
		t.Fatal(err)
	}
	// Setting again replaces the whole plan.
	if f.Plan != (machine.FaultPlan{DisableHTM: true}) {
		t.Fatalf("Plan after disable = %+v", f.Plan)
	}

	for _, bad := range []string{
		"p", "p=", "p=2", "p=-0.1", "p=x",
		"cap=0", "cap=-1", "disable=1", "disable-after=0",
		"jitter=-1", "seed=x", "bogus=1", "bogus",
	} {
		var h FaultPlan
		if err := h.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted: %+v", bad, h.Plan)
		}
	}
}

func TestRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	tl := Threads(fs, "thread counts")
	fp := Faults(fs)
	bl := Batches(fs, "batch sizes")
	if err := fs.Parse([]string{"-threads", "4,8", "-faults", "disable", "-batch", "1,8"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl.Counts, []int{4, 8}) {
		t.Fatalf("Counts = %v", tl.Counts)
	}
	if !reflect.DeepEqual(bl.Sizes, []int{1, 8}) {
		t.Fatalf("Sizes = %v", bl.Sizes)
	}
	if !fp.Plan.DisableHTM {
		t.Fatalf("Plan = %+v", fp.Plan)
	}
	if err := fs.Parse([]string{"-threads", "4,no"}); err == nil {
		t.Fatal("bad -threads accepted")
	}
}
