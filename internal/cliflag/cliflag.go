// Package cliflag holds the flag types shared by the repository's
// commands. cmd/sbqsim, cmd/sbqbench, and cmd/sbqtrace used to hand-roll
// their own comma-separated thread-list parsing (with subtly different
// error behavior); they now register the same flag.Value implementations
// from this package, so `-threads 1,2,8` and `-faults p=0.2,jitter=40`
// mean the same thing — and fail the same way — everywhere.
package cliflag

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
)

// ThreadList is a flag.Value accepting a comma-separated list of positive
// thread counts ("1,2,8"). An unset flag leaves Counts nil; commands
// interpret that as their own default sweep.
type ThreadList struct {
	Counts []int
}

// String implements flag.Value.
func (l *ThreadList) String() string {
	if l == nil || len(l.Counts) == 0 {
		return ""
	}
	parts := make([]string, len(l.Counts))
	for i, n := range l.Counts {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value. It replaces (not appends to) the current
// list, so a repeated flag takes the last value like scalar flags do.
func (l *ThreadList) Set(s string) error {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad thread count %q", strings.TrimSpace(f))
		}
		counts = append(counts, n)
	}
	l.Counts = counts
	return nil
}

// Threads registers a "-threads" ThreadList on fs and returns it.
func Threads(fs *flag.FlagSet, usage string) *ThreadList {
	l := &ThreadList{}
	fs.Var(l, "threads", usage)
	return l
}

// BatchList is a flag.Value accepting a comma-separated list of batch
// sizes ("1,8,64") for the batch-capable queue surface. Size 0 selects the
// single-operation path (plain Enqueue/Dequeue, no batch API); positive
// sizes drive EnqueueBatch/DequeueBatch with that k. An unset flag leaves
// Sizes nil; commands interpret that as their own default (typically the
// single-operation path, so records stay comparable with pre-batch
// baselines).
type BatchList struct {
	Sizes []int
}

// String implements flag.Value.
func (l *BatchList) String() string {
	if l == nil || len(l.Sizes) == 0 {
		return ""
	}
	parts := make([]string, len(l.Sizes))
	for i, n := range l.Sizes {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value. Like ThreadList, a repeated flag replaces the
// list rather than appending.
func (l *BatchList) Set(s string) error {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return fmt.Errorf("bad batch size %q", strings.TrimSpace(f))
		}
		sizes = append(sizes, n)
	}
	l.Sizes = sizes
	return nil
}

// Batches registers a "-batch" BatchList on fs and returns it.
func Batches(fs *flag.FlagSet, usage string) *BatchList {
	l := &BatchList{}
	fs.Var(l, "batch", usage)
	return l
}

// PowersOfTwo returns 1, 2, 4, ... up to and including at most max — the
// native benchmark's default sweep shape.
func PowersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// FaultPlan is a flag.Value parsing a machine.FaultPlan from a compact
// comma-separated spec of key[=value] fields:
//
//	p=0.2              spurious-abort probability per transaction
//	cap=8              speculative capacity override, in cache lines
//	disable            HTM off from the first transaction
//	disable-after=5000 HTM off once 5000 transactions have started
//	jitter=40          0..40 extra cycles per cross-socket message hop
//	seed=7             injector stream seed (default derives from Config.Seed)
//
// Example: -faults p=0.05,disable-after=5000,jitter=40. Setting the flag
// replaces the whole plan, so later occurrences win.
type FaultPlan struct {
	Plan machine.FaultPlan
}

// FaultUsage is the shared usage string for a "-faults" flag.
const FaultUsage = "fault-injection spec: comma-separated p=<prob>, cap=<lines>, disable, disable-after=<txs>, jitter=<cycles>, seed=<n>"

// String implements flag.Value, rendering the plan back in Set's syntax.
func (f *FaultPlan) String() string {
	if f == nil {
		return ""
	}
	var parts []string
	p := f.Plan
	if p.SpuriousAbortProb > 0 {
		parts = append(parts, fmt.Sprintf("p=%g", p.SpuriousAbortProb))
	}
	if p.CapacityLines > 0 {
		parts = append(parts, fmt.Sprintf("cap=%d", p.CapacityLines))
	}
	if p.DisableHTM {
		parts = append(parts, "disable")
	}
	if p.DisableHTMAfter > 0 {
		parts = append(parts, fmt.Sprintf("disable-after=%d", p.DisableHTMAfter))
	}
	if p.CrossSocketJitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%d", p.CrossSocketJitter))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (f *FaultPlan) Set(s string) error {
	var p machine.FaultPlan
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		needVal := func() error {
			if !hasVal || val == "" {
				return fmt.Errorf("fault field %q needs a value", key)
			}
			return nil
		}
		switch key {
		case "disable":
			if hasVal {
				return fmt.Errorf("fault field %q takes no value", key)
			}
			p.DisableHTM = true
		case "p":
			if err := needVal(); err != nil {
				return err
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 || v > 1 {
				return fmt.Errorf("bad abort probability %q (want 0..1)", val)
			}
			p.SpuriousAbortProb = v
		case "cap":
			if err := needVal(); err != nil {
				return err
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad capacity %q (want a positive line count)", val)
			}
			p.CapacityLines = n
		case "disable-after":
			if err := needVal(); err != nil {
				return err
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("bad disable-after %q (want a positive transaction count)", val)
			}
			p.DisableHTMAfter = n
		case "jitter":
			if err := needVal(); err != nil {
				return err
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bad jitter %q (want cycles)", val)
			}
			p.CrossSocketJitter = n
		case "seed":
			if err := needVal(); err != nil {
				return err
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q", val)
			}
			p.Seed = n
		default:
			return fmt.Errorf("unknown fault field %q (have p, cap, disable, disable-after, jitter, seed)", key)
		}
	}
	f.Plan = p
	return nil
}

// Faults registers a "-faults" FaultPlan on fs and returns it.
func Faults(fs *flag.FlagSet) *FaultPlan {
	f := &FaultPlan{}
	fs.Var(f, "faults", FaultUsage)
	return f
}

// DurationList is a flag.Value accepting a comma-separated list of
// non-negative Go durations ("50ms,200ms,1s") — sweep axes like
// sbqbench's TxCAS speculation-window sweep. Zero is a valid point:
// sweeps use it to mean "the command's own default for this axis"
// (sbqbench -txcas 0,270ns,5us measures the entry default alongside
// explicit windows). An unset flag leaves Durations nil; commands
// interpret that as their own default.
type DurationList struct {
	Durations []time.Duration
}

// String implements flag.Value.
func (l *DurationList) String() string {
	if l == nil || len(l.Durations) == 0 {
		return ""
	}
	parts := make([]string, len(l.Durations))
	for i, d := range l.Durations {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value. Like ThreadList, a repeated flag replaces the
// list rather than appending.
func (l *DurationList) Set(s string) error {
	var ds []time.Duration
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		d, err := time.ParseDuration(f)
		if err != nil || d < 0 {
			return fmt.Errorf("bad duration %q (want a non-negative Go duration like 50ms)", f)
		}
		ds = append(ds, d)
	}
	l.Durations = ds
	return nil
}

// Durations registers a DurationList flag with the given name on fs and
// returns it.
func Durations(fs *flag.FlagSet, name, usage string) *DurationList {
	l := &DurationList{}
	fs.Var(l, name, usage)
	return l
}

// Timings is the trio of service timing knobs shared by cmd/sbqd and the
// chaos harness: how long a lease lives, how often the deadline scanner
// runs, and how long a graceful shutdown may drain.
type Timings struct {
	LeaseTTL     time.Duration
	ScanInterval time.Duration // 0 lets the service derive it from the TTL
	DrainTimeout time.Duration
}

// ServiceTimings registers the shared -lease-ttl, -scan-interval, and
// -drain-timeout duration flags on fs with the given defaults and returns
// the bound struct. Both sbqd's serve mode and its chaos mode parse these
// through here, so the two surfaces cannot drift.
func ServiceTimings(fs *flag.FlagSet, def Timings) *Timings {
	t := &Timings{}
	fs.DurationVar(&t.LeaseTTL, "lease-ttl", def.LeaseTTL,
		"lease time-to-live; unacked jobs are redelivered after this long")
	fs.DurationVar(&t.ScanInterval, "scan-interval", def.ScanInterval,
		"deadline-scanner period (0 derives it from the lease TTL)")
	fs.DurationVar(&t.DrainTimeout, "drain-timeout", def.DrainTimeout,
		"graceful-shutdown drain budget before in-flight leases are force-expired")
	return t
}
