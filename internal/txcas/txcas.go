// Package txcas defines the repository's unified CAS-primitive surface —
// Primitive and its structured failure report, Outcome — and provides the
// native software-TxCAS engine that implements it over real Go atomics.
//
// The paper's core trick (§3) is that a CAS built from a hardware
// transaction turns *failure* into information: a losing TxCAS learns that
// it lost, who beat it, and does so without serializing through the cache
// coherence protocol. The simulated track reproduces that literally
// (repro/internal/core over repro/internal/machine); Go exposes no HTM, so
// the native track approximates it in software, in the spirit of
// Zhang/Chabbi et al.'s optimistic-concurrency-for-Go work and Brown's
// bounded-speculation HTM template (both in PAPERS.md): a per-location
// version/last-writer publication word plays the role of the read set, a
// calibrated speculation window plays the role of the transaction body
// (and of the §4.1 intra-transaction delay), and a bounded number of
// speculative attempts falls back to a single plain CAS so every operation
// is wait-free.
//
// Both tracks implement Primitive:
//
//   - the native Engine in this package (over Words it registers), and
//   - repro/internal/core.Bound (per-thread TxCAS executors over simulated
//     machine addresses),
//
// so an experiment can drive the same policy-paced CAS through either and
// compare the failure reports shape-for-shape.
package txcas

// Loc identifies one CAS target within a Primitive's location space: a
// Word index for the native Engine, a machine.Addr for the simulated
// track (machine.Addr is an alias of uint64, so the conversion is free).
type Loc = uint64

// NoWriter is the LastWriter value of an Outcome that carries no sharer
// identity (no conflict, or the winner had not published yet).
const NoWriter = -1

// Outcome is the structured result of one TxCAS operation. Where a plain
// CompareAndSwap answers only true/false, an Outcome reports how the
// operation went: how hard it had to try, whether it was resolved on the
// guaranteed software path, and — on failure — what it learned about the
// contention that beat it. That last part is the paper's profit-from-
// failure signal (§3): retry policies and the baskets queue act on it
// instead of blindly re-issuing doomed atomics.
type Outcome struct {
	// OK reports whether the CAS took effect (the location held the
	// expected value and was swung to the new one).
	OK bool
	// Fallback reports that the operation was resolved by the wait-free
	// plain-CAS slow path (speculation budget exhausted, or the policy
	// diverted it), per Brown's fast-path/fallback template.
	Fallback bool
	// Attempts is the spin depth: how many speculative attempts the
	// operation consumed (transactional attempts on the simulated track,
	// guarded windows natively). At least 1 for any operation that ran.
	Attempts int
	// SoftAborts counts attempts abandoned *before* issuing the CAS
	// because a conflicting winner was detected mid-window — the cheap
	// failures the paper's TxCAS gets from read-step aborts. A soft abort
	// never puts a doomed atomic on the contended line.
	SoftAborts int
	// VersionDelta is a lower bound on the number of winning writes to the
	// location observed during the operation: exact under the native
	// engine's published version word when winners have published, at
	// least 1 on any genuine failure (the value demonstrably changed).
	// Zero on an uncontended success.
	VersionDelta uint64
	// LastWriter is the identity (thread/handle id) of the most recent
	// winning writer the operation observed, or NoWriter when none was
	// captured. Natively it is read from the location's publication word;
	// on the simulated track it is the conflicting requester core reported
	// by the HTM abort status.
	LastWriter int
}

// Contended reports whether the operation observed any competing winner
// (via a soft abort or a published version advance).
func (o Outcome) Contended() bool { return o.SoftAborts > 0 || o.VersionDelta > 0 }

// SharerKnown reports whether the Outcome carries a concrete sharer
// identity — the paper's "failure identifies the contender" property.
func (o Outcome) SharerKnown() bool { return o.LastWriter != NoWriter }

// Primitive is the unified CAS-primitive interface: a compare-and-set
// whose result is a structured failure report rather than a bare bool.
// thread identifies the calling thread (a handle id natively, a simulated
// thread id on the machine track) and must be stable per goroutine;
// implementations use it for sharer attribution and per-thread state.
//
// Implementations: *Engine (native, this package) and *core.Bound
// (simulated track).
type Primitive interface {
	TxCAS(thread int, loc Loc, old, new uint64) Outcome
}
