package txcas

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/spin"
)

// This file is the native software-TxCAS engine. The design maps the
// paper's TxCAS (Algorithm 1) onto plain Go atomics:
//
//   hardware read set        → a published version word polled mid-window
//   §4.1 intra-tx delay      → a calibrated speculation window (no clock
//                              reads on the hot path; see repro/internal/spin)
//   read-step abort          → a soft abort: the doomed CAS is never issued
//   "who aborted me"         → the winner's published identity (last-writer
//                              word), harvested into the Outcome
//   wait-free fallback (§4)  → a single plain CAS after the speculation
//                              budget, per Brown's template
//
// Crucially the version/writer words are advisory publication channels,
// not locks: the linearization point is always the plain CompareAndSwap on
// the value itself, so lock-freedom (and, with the budget, wait-freedom)
// is inherited from the underlying atomic rather than argued separately.
// Winners publish *after* winning; contenders that observe the publication
// during their window abandon the attempt before putting a doomed atomic
// on the contended line.

// DefaultWindow is the default speculation window, matching the paper's
// empirically tuned ~270ns delayed-CAS/intra-transaction delay (§4.1,
// §6.1) that the SBQ-DCAS entry also uses.
const DefaultWindow = 270 * time.Nanosecond

// DefaultBudget bounds speculative attempts per operation before the
// wait-free plain-CAS resolution (Brown's bounded-speculation template;
// the simulated track's analogue is core.DefaultMaxRetries, sized for HTM
// retry storms — the software engine converges much faster).
const DefaultBudget = 4

// watchChecks is how many times a speculation window polls the version
// word: the window is spun in slices with one poll between slices, so the
// final poll lands immediately before the CAS would be issued.
const watchChecks = 8

// cyclesPerNS converts the simulated track's cycle-denominated policy
// delays to wall time (the 2.5 GHz convention shared with repro/queue/sbq),
// so one policy value means the same delay on both tracks.
const cyclesPerNS = 2.5

// Word is one native TxCAS location: the value word plus its publication
// line. Each field owns a cache line — the value is swung by every
// contender's CAS, and the version/writer words are rewritten by every
// winner while losers poll them, so sharing lines would manufacture
// exactly the coherence storms the engine exists to avoid (§4.3).
type Word struct {
	//lf:contended every contender's CAS lands on the value word
	val atomic.Uint64
	_   [56]byte
	//lf:contended winners publish here; losers poll it during their window
	ver atomic.Uint64
	_   [56]byte
	//lf:contended the last winner's identity, rewritten on every win
	writer atomic.Int64
	_      [56]byte
}

// publish records a win: identity first, then the version bump, so any
// thread that observes the new version also observes a writer at least as
// fresh (Go atomics are sequentially consistent).
func (w *Word) publish(thread int) {
	w.writer.Store(int64(thread) + 1)
	w.ver.Add(1)
}

// Load returns the location's current value.
func (w *Word) Load() uint64 { return w.val.Load() }

// Version returns the number of wins published so far.
func (w *Word) Version() uint64 { return w.ver.Load() }

// Writer returns the identity of the last published winner, or NoWriter
// when the location has never been won.
func (w *Word) Writer() int { return int(w.writer.Load()) - 1 }

// Gate is the publication half of a Word alone: an advisory version/
// last-writer channel guarding CASes the engine cannot own — typed
// pointer links like repro/queue/sbq's try_append, where the value word
// must remain a GC-visible atomic.Pointer.
//
// A Gate's contract is that every guarded location is one-shot: it is
// CASed away from its initial value at most once (queue link fields are
// the canonical case — nil until linked, then never nil again), and every
// winner publishes through the Gate. Under that contract a version
// advance observed during a contender's window *proves* its pending CAS
// can no longer succeed, so soft-aborting is exactly as correct as
// issuing the CAS and failing — minus the coherence traffic.
type Gate struct {
	//lf:contended winners publish here; contenders poll during their window
	ver atomic.Uint64
	_   [56]byte
	//lf:contended the last winner's identity, rewritten on every win
	writer atomic.Int64
	_      [56]byte
}

// Version returns the number of wins published through the gate.
func (g *Gate) Version() uint64 { return g.ver.Load() }

// Writer returns the identity of the last published winner, or NoWriter.
func (g *Gate) Writer() int { return int(g.writer.Load()) - 1 }

// publish mirrors Word.publish: identity first, then the version bump.
func (g *Gate) publish(thread int) {
	g.writer.Store(int64(thread) + 1)
	g.ver.Add(1)
}

// Option configures an Engine.
type Option func(*options)

type options struct {
	window time.Duration // <0 = DefaultWindow sentinel
	budget int
	pol    policy.RetryPolicy
	rec    obs.Recorder
}

// WithWindow sets the speculation window: how long a contender watches the
// publication word before issuing its CAS, playing the role of the §4.1
// intra-transaction delay. The spin is calibrated (no clock reads on the
// hot path). Zero disables speculation — every attempt issues its CAS
// immediately, which degenerates to plain CAS plus failure harvesting.
// The default is DefaultWindow.
func WithWindow(d time.Duration) Option {
	return func(o *options) { o.window = d }
}

// WithBudget bounds speculative attempts per operation before the
// wait-free plain-CAS resolution. Non-positive values select
// DefaultBudget.
func WithBudget(n int) Option {
	return func(o *options) { o.budget = n }
}

// WithPolicy paces the engine with a retry policy from
// repro/internal/machine/policy — the same policy values that pace the
// simulated track's TxCAS, now fed real failure signal: after a soft
// abort the policy's Abort carries Conflict and the published winner's
// identity in Requester. A non-fallback Decision.Delay (simulated cycles,
// converted at 2.5 cycles/ns) replaces the engine window for that
// attempt; a Fallback decision diverts the operation to the plain-CAS
// path after the decided delay — policy.DelayedCAS therefore reproduces
// the classic §4.1 delayed CAS exactly, with no speculation.
func WithPolicy(p policy.RetryPolicy) Option {
	return func(o *options) { o.pol = p }
}

// WithRecorder attaches telemetry (see repro/internal/obs): issued CAS
// attempts/failures land in CASAttempts/CASFailures, plain-path
// resolutions in CASFallbacks, abandoned attempts in TxSoftAborts, and
// failure reports that captured a sharer identity in TxSharerHints. Soft
// aborts also emit EvTxAbort timeline events (reason AbortConflict,
// requester = the published winner) when the recorder is a flight
// recorder, so sbqtrace renders the native profit-from-failure effect
// with the same event vocabulary as the simulated machine.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}

// Engine is the native software-TxCAS executor. One Engine serves any
// number of threads; per-location state lives in the Words it registers
// (value CAS via the Primitive interface) or in caller-owned Gates
// (pointer CAS via GuardedCAS).
type Engine struct {
	window        uint64 // speculation window, calibrated spin iterations
	budget        int
	pol           policy.RetryPolicy
	itersPerCycle float64
	randN         func(uint64) uint64
	rec           obs.Recorder
	ev            obs.EventRecorder
	_             [48]byte
	//lf:contended policy randomness stream shared by every thread
	rng atomic.Uint64
	_   [56]byte

	mu    sync.Mutex
	words []*Word
}

var _ Primitive = (*Engine)(nil)

// NewEngine returns an engine configured by opts. Construction calibrates
// the spin rate once; the hot paths then run integer math only.
func NewEngine(opts ...Option) *Engine {
	o := options{window: -1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.window < 0 {
		o.window = DefaultWindow
	}
	if o.budget <= 0 {
		o.budget = DefaultBudget
	}
	e := &Engine{
		window:        spin.ItersFor(o.window),
		budget:        o.budget,
		pol:           o.pol,
		itersPerCycle: spin.PerNS() / cyclesPerNS,
		rec:           o.rec,
		ev:            obs.Events(o.rec),
	}
	e.rng.Store(0x9E3779B97F4A7C15)
	// The policy randomness stream: a queue-local xorshift mix, same
	// symmetry-breaking scheme the sbq append policies use — the native
	// track makes no determinism promise, it just needs cheap jitter
	// without clock reads.
	e.randN = func(n uint64) uint64 {
		x := e.rng.Add(0xBF58476D1CE4E5B9)
		x ^= x >> 30
		x *= 0x94D049BB133111EB
		x ^= x >> 27
		return x % n
	}
	return e
}

// Register adds a location holding initial and returns its Loc. Register
// is not synchronized against concurrent TxCAS calls on the same engine:
// register every location before handing the engine to worker threads
// (the same discipline as sizing a queue's baskets up front).
func (e *Engine) Register(initial uint64) Loc {
	w := &Word{}
	w.val.Store(initial)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.words = append(e.words, w)
	return Loc(len(e.words) - 1)
}

// WordAt returns the registered Word backing loc, for inspection.
func (e *Engine) WordAt(loc Loc) *Word { return e.words[loc] }

// Load returns the current value at loc.
func (e *Engine) Load(loc Loc) uint64 { return e.words[loc].val.Load() }

// event emits one timeline event if a flight recorder is attached.
func (e *Engine) event(k obs.EventKind, thread int, arg uint64) {
	if ev := e.ev; ev != nil {
		ev.Event(k, int32(thread), arg)
	}
}

// softAborted records one abandoned attempt: the native read-step abort.
func (e *Engine) softAborted(thread, winner int) {
	if r := e.rec; r != nil {
		r.Inc(obs.TxSoftAborts)
	}
	if ev := e.ev; ev != nil {
		ev.Event(obs.EvTxAbort, int32(thread), obs.AbortArg(obs.AbortConflict, winner, 0))
	}
}

// fail finalizes a losing Outcome: harvest the version delta published
// since v0 and the identity of the last published winner, and count the
// sharer hint. The delta is a lower bound — a winner that has CASed but
// not yet published is invisible, so a demonstrably changed value still
// reports at least 1. The writer hint is whoever most recently published
// a win at the location: on a failure that is by definition a thread that
// beat the caller there, which is exactly the §3 sharer identity.
func (e *Engine) fail(w *Word, v0 uint64, out Outcome) Outcome {
	now := w.ver.Load()
	out.VersionDelta = now - v0
	if now > 0 {
		out.LastWriter = w.Writer()
	}
	if out.VersionDelta == 0 {
		out.VersionDelta = 1
	}
	if r := e.rec; r != nil && out.LastWriter != NoWriter {
		r.Inc(obs.TxSharerHints)
	}
	return out
}

// watch spins the window in slices, polling ver between slices; it
// reports whether ver left v0 before the window elapsed. The final poll
// is immediately before the caller would issue its CAS, so a winner that
// published at any point during the window is never raced pointlessly.
func watch(ver *atomic.Uint64, v0, iters uint64) bool {
	slice := iters / watchChecks
	if slice == 0 {
		slice = 1
	}
	for spent := uint64(0); spent < iters; spent += slice {
		spin.Iters(slice)
		if ver.Load() != v0 {
			return true
		}
	}
	return false
}

// spinCycles busy-waits a cycle-denominated policy delay.
func spinCycles(cycles uint64, itersPerCycle float64) {
	n := float64(cycles) * itersPerCycle
	if n < 1 {
		n = 1
	}
	spin.Iters(uint64(n))
}

// cyclesToIters converts a cycle-denominated policy delay to calibrated
// window iterations.
func cyclesToIters(cycles uint64, itersPerCycle float64) uint64 {
	n := float64(cycles) * itersPerCycle
	if n < 1 {
		n = 1
	}
	return uint64(n)
}

// TxCAS implements Primitive over a registered Word: if the word holds
// old, swing it to new. The failure report carries the published version
// delta and last-writer identity observed during the operation.
//
// Structure mirrors Algorithm 1: a read step that fails only if the value
// actually changed (§4.2), a speculation window in place of the
// intra-transaction delay (§4.1) during which a published win soft-aborts
// the attempt, the write step as a real CAS, and — after the budget or on
// the policy's word — a single plain CAS for wait-freedom.
//
//lf:hotpath
func (e *Engine) TxCAS(thread int, loc Loc, old, new uint64) Outcome {
	w := e.words[loc]
	out := Outcome{LastWriter: NoWriter}
	v0 := w.ver.Load()
	a := policy.Abort{Requester: NoWriter}
	for {
		window := e.window
		if e.pol != nil {
			d := e.pol.Decide(a, e.randN)
			if d.Fallback {
				if d.Delay > 0 {
					spinCycles(d.Delay, e.itersPerCycle)
				}
				break
			}
			if d.Delay > 0 {
				window = cyclesToIters(d.Delay, e.itersPerCycle)
			}
		}
		if out.Attempts >= e.budget {
			break
		}
		out.Attempts++
		// Read step: fail only if the value actually changed (§4.2). No
		// CAS was issued, so this is a soft abort — the cheap failure.
		if w.val.Load() != old {
			out.SoftAborts++
			e.softAborted(thread, w.Writer())
			return e.fail(w, v0, out)
		}
		// Speculation window: poll the publication word like a read set.
		vpre := w.ver.Load()
		if window > 0 && watch(&w.ver, vpre, window) {
			// A winner published mid-window: abandon the write before it
			// reaches the line and re-run the read step — the value may
			// now differ (fail) or have returned to old (retry).
			out.SoftAborts++
			hint := w.Writer()
			e.softAborted(thread, hint)
			a = policy.Abort{Attempt: out.Attempts, Conflict: true, Nested: true, Requester: hint}
			continue
		}
		if r := e.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		e.event(obs.EvCASAttempt, thread, 0)
		if w.val.CompareAndSwap(old, new) {
			w.publish(thread)
			out.OK = true
			return out
		}
		// The write step lost a photo-finish race the window missed.
		if r := e.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		e.event(obs.EvCASFailure, thread, 0)
		if w.val.Load() != old {
			return e.fail(w, v0, out)
		}
		// The value is back to old (ABA on the value, not on our CAS —
		// the version word still counts every win): retry under policy.
		hint := NoWriter
		if w.ver.Load() != vpre {
			hint = w.Writer()
		}
		a = policy.Abort{Attempt: out.Attempts, Conflict: true, Requester: hint}
	}
	// Wait-free resolution: one plain CAS, no speculation, no retry.
	out.Fallback = true
	if r := e.rec; r != nil {
		r.Inc(obs.CASAttempts)
		r.Inc(obs.CASFallbacks)
	}
	e.event(obs.EvCASFallback, thread, 0)
	if w.val.CompareAndSwap(old, new) {
		w.publish(thread)
		out.OK = true
		return out
	}
	if r := e.rec; r != nil {
		r.Inc(obs.CASFailures)
	}
	e.event(obs.EvCASFailure, thread, 0)
	return e.fail(w, v0, out)
}

// gateFail finalizes a losing guarded Outcome, mirroring Engine.fail for
// Gate-guarded one-shot locations (where any failure implies at least one
// win, published or not).
func (e *Engine) gateFail(g *Gate, v0 uint64, out Outcome) Outcome {
	now := g.ver.Load()
	out.VersionDelta = now - v0
	if now > 0 {
		out.LastWriter = g.Writer()
	}
	if out.VersionDelta == 0 {
		out.VersionDelta = 1
	}
	if r := e.rec; r != nil && out.LastWriter != NoWriter {
		r.Inc(obs.TxSharerHints)
	}
	return out
}

// GuardedCAS is the engine's one-shot pointer form: attempt
// ptr.CompareAndSwap(old, new) under g's advisory publication channel.
// The location must obey the Gate contract (one-shot, winners publish);
// repro/queue/sbq's try_append links are the canonical caller. thread is
// the caller's identity for publication and sharer attribution.
//
// Unlike Engine.TxCAS there is no retry loop: a failed try_append is
// permanent for the baskets queue (it profits from the failure instead of
// retrying), so the operation is a single speculative attempt — watch the
// gate for the window, soft-abort without issuing the CAS if a winner
// published, otherwise issue it and on failure harvest the report. A
// policy Fallback decision (e.g. policy.DelayedCAS) skips the watch:
// delay, then one plain CAS, the classic §4.1 software baseline.
//
//lf:hotpath invoked by every TxCAS-mode try_append in repro/queue/sbq
func GuardedCAS[T any](e *Engine, g *Gate, thread int, ptr *atomic.Pointer[T], old, new *T) Outcome {
	out := Outcome{Attempts: 1, LastWriter: NoWriter}
	v0 := g.ver.Load()
	window := e.window
	if e.pol != nil {
		d := e.pol.Decide(policy.Abort{Requester: NoWriter}, e.randN)
		if d.Fallback {
			out.Fallback = true
			if d.Delay > 0 {
				spinCycles(d.Delay, e.itersPerCycle)
			}
			window = 0
		} else if d.Delay > 0 {
			window = cyclesToIters(d.Delay, e.itersPerCycle)
		}
	}
	if window > 0 && watch(&g.ver, v0, window) {
		// A winner published during our window; under the Gate contract
		// the pending CAS can no longer succeed, so abandon it before it
		// ever reaches the line and report the failure with the winner's
		// identity attached.
		out.SoftAborts = 1
		e.softAborted(thread, g.Writer())
		return e.gateFail(g, v0, out)
	}
	if r := e.rec; r != nil {
		r.Inc(obs.CASAttempts)
		if out.Fallback {
			r.Inc(obs.CASFallbacks)
		}
	}
	e.event(obs.EvCASAttempt, thread, 0)
	if ptr.CompareAndSwap(old, new) {
		g.publish(thread)
		out.OK = true
		return out
	}
	if r := e.rec; r != nil {
		r.Inc(obs.CASFailures)
	}
	e.event(obs.EvCASFailure, thread, 0)
	return e.gateFail(g, v0, out)
}
