package txcas_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/txcas"
	"repro/queue/queuetest"
)

// TestSequentialChurnHarvest forces a known amount of version churn and
// checks that a stale TxCAS's failure report carries exactly that
// information: the full version delta and the identity of the last winner.
// This is the deterministic half of the ISSUE's "failure Outcomes carry
// non-trivial sharer/version info" acceptance test.
func TestSequentialChurnHarvest(t *testing.T) {
	for _, churn := range []int{1, 3, 8} {
		e := txcas.NewEngine(txcas.WithWindow(0))
		loc := e.Register(0)
		// Threads 1..churn win in sequence: value goes 0 → 1 → ... → churn.
		for i := 1; i <= churn; i++ {
			out := e.TxCAS(i, loc, uint64(i-1), uint64(i))
			if !out.OK || out.Contended() || out.SharerKnown() {
				t.Fatalf("churn=%d: uncontended win %d reported %+v", churn, i, out)
			}
		}
		// Thread 99 still expects the initial value: it must fail without
		// issuing a CAS (read-step soft abort) and harvest the full story.
		out := e.TxCAS(99, loc, 0, 100)
		if out.OK {
			t.Fatalf("churn=%d: stale TxCAS succeeded", churn)
		}
		if out.VersionDelta == 0 {
			t.Errorf("churn=%d: failed TxCAS reported VersionDelta=0", churn)
		}
		if v := e.WordAt(loc).Version(); v != uint64(churn) {
			t.Errorf("churn=%d: published version = %d, want %d (one bump per win)", churn, v, churn)
		}
		if out.LastWriter != churn {
			t.Errorf("churn=%d: LastWriter = %d, want %d (the last winner)", churn, out.LastWriter, churn)
		}
		if out.SoftAborts != 1 {
			t.Errorf("churn=%d: SoftAborts = %d, want 1 (read-step abort)", churn, out.SoftAborts)
		}
		if !out.Contended() || !out.SharerKnown() {
			t.Errorf("churn=%d: Contended=%v SharerKnown=%v, want true/true", churn, out.Contended(), out.SharerKnown())
		}
		if got := e.Load(loc); got != uint64(churn) {
			t.Errorf("churn=%d: value = %d after failed stale CAS, want %d", churn, got, churn)
		}
	}
}

// TestSeededInterleavings drives seeded pseudo-random TxCAS schedules
// against a plain compare-and-swap model and checks the engine agrees
// step for step — CAS semantics hold under arbitrary version churn, and
// every failure report is consistent with the model's history.
func TestSeededInterleavings(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		e := txcas.NewEngine(txcas.WithWindow(0), txcas.WithBudget(2))
		const locs = 4
		model := make([]uint64, locs)
		lastWin := make([]int, locs)
		ids := make([]txcas.Loc, locs)
		for i := range ids {
			ids[i] = e.Register(0)
			lastWin[i] = txcas.NoWriter
		}
		for step := 0; step < 2000; step++ {
			l := rng.Intn(locs)
			thread := rng.Intn(8)
			old := uint64(rng.Intn(3))
			new := uint64(rng.Intn(3))
			want := model[l] == old
			out := e.TxCAS(thread, ids[l], old, new)
			if out.OK != want {
				t.Fatalf("seed=%d step=%d: TxCAS(%d, old=%d, new=%d) OK=%v, model value %d wants %v",
					seed, step, l, old, new, out.OK, model[l], want)
			}
			if want {
				model[l] = new
				lastWin[l] = thread
			} else {
				if out.VersionDelta == 0 {
					t.Fatalf("seed=%d step=%d: failed TxCAS reported VersionDelta=0", seed, step)
				}
				if out.SharerKnown() && out.LastWriter != lastWin[l] {
					t.Fatalf("seed=%d step=%d: LastWriter=%d, model's last winner is %d",
						seed, step, out.LastWriter, lastWin[l])
				}
			}
			if got := e.Load(ids[l]); got != model[l] {
				t.Fatalf("seed=%d step=%d: value=%d, model=%d", seed, step, got, model[l])
			}
		}
	}
}

// TestConcurrentSingleWinner races N threads at one location and checks
// exactly one wins, the value is the winner's, and every loser's Outcome
// reports the contention it lost to.
func TestConcurrentSingleWinner(t *testing.T) {
	for round := 0; round < 50; round++ {
		e := txcas.NewEngine()
		loc := e.Register(0)
		const n = 8
		outs := make([]txcas.Outcome, n)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(n)
		for i := 0; i < n; i++ {
			go func(id int) {
				defer done.Done()
				start.Wait()
				outs[id] = e.TxCAS(id, loc, 0, uint64(id)+1)
			}(i)
		}
		start.Done()
		done.Wait()
		winner := -1
		for i, out := range outs {
			if out.OK {
				if winner != -1 {
					t.Fatalf("round %d: threads %d and %d both won", round, winner, i)
				}
				winner = i
			}
		}
		if winner == -1 {
			t.Fatalf("round %d: no thread won", round)
		}
		if got := e.Load(loc); got != uint64(winner)+1 {
			t.Fatalf("round %d: value=%d, winner %d wrote %d", round, got, winner, winner+1)
		}
		for i, out := range outs {
			if i == winner {
				continue
			}
			if !out.Contended() {
				t.Errorf("round %d: loser %d reported no contention: %+v", round, i, out)
			}
			if out.SharerKnown() && out.LastWriter != winner {
				t.Errorf("round %d: loser %d blames %d, winner was %d", round, i, out.LastWriter, winner)
			}
		}
	}
}

// TestGuardedCASOneShot exercises the Gate form on a pointer link: the
// winner publishes, a stale contender fails and harvests the winner's
// identity from the gate.
func TestGuardedCASOneShot(t *testing.T) {
	e := txcas.NewEngine(txcas.WithWindow(0))
	var g txcas.Gate
	var link atomic.Pointer[int]
	a, b := new(int), new(int)

	out := txcas.GuardedCAS(e, &g, 3, &link, nil, a)
	if !out.OK || out.Contended() {
		t.Fatalf("uncontended guarded CAS reported %+v", out)
	}
	if g.Version() != 1 || g.Writer() != 3 {
		t.Fatalf("gate after win: version=%d writer=%d, want 1/3", g.Version(), g.Writer())
	}

	out = txcas.GuardedCAS(e, &g, 5, &link, nil, b)
	if out.OK {
		t.Fatal("guarded CAS on a taken one-shot location succeeded")
	}
	if out.VersionDelta != 1 || out.LastWriter != 3 {
		t.Errorf("loser harvest: delta=%d writer=%d, want 1/3", out.VersionDelta, out.LastWriter)
	}
	if link.Load() != a {
		t.Error("link no longer points at the winner's node")
	}
}

// TestGuardedCASSoftAbort holds a contender inside a long speculation
// window while a winner publishes through the shared gate, and checks the
// contender abandons its CAS (soft abort) instead of issuing it.
func TestGuardedCASSoftAbort(t *testing.T) {
	rec := obs.New()
	// The winner and contender drive the same gate/link through different
	// engines so only the contender speculates.
	fast := txcas.NewEngine(txcas.WithWindow(0))
	slow := txcas.NewEngine(txcas.WithWindow(200*time.Millisecond), txcas.WithRecorder(rec))
	var g txcas.Gate
	var link atomic.Pointer[int]
	a, b := new(int), new(int)

	started := make(chan struct{})
	outc := make(chan txcas.Outcome, 1)
	go func() {
		close(started)
		outc <- txcas.GuardedCAS(slow, &g, 7, &link, nil, b)
	}()
	<-started
	// Win while the contender is (with overwhelming probability) still
	// inside its 200ms window.
	if out := txcas.GuardedCAS(fast, &g, 2, &link, nil, a); !out.OK {
		t.Fatal("winner's guarded CAS failed")
	}
	out := <-outc
	if out.OK {
		// The contender ran its whole window before the winner's CAS —
		// can't happen with these timings, but it would mean b won.
		t.Fatal("contender won despite the winner publishing")
	}
	if out.SoftAborts != 1 {
		t.Errorf("contender SoftAborts=%d, want 1 (CAS never issued)", out.SoftAborts)
	}
	if out.LastWriter != 2 {
		t.Errorf("contender LastWriter=%d, want 2", out.LastWriter)
	}
	snap := rec.Snapshot()
	if snap.Counter(obs.TxSoftAborts) != 1 {
		t.Errorf("TxSoftAborts=%d, want 1", snap.Counter(obs.TxSoftAborts))
	}
	if snap.Counter(obs.CASAttempts) != 0 {
		t.Errorf("CASAttempts=%d, want 0: the doomed CAS must never be issued", snap.Counter(obs.CASAttempts))
	}
	if snap.Counter(obs.TxSharerHints) != 1 {
		t.Errorf("TxSharerHints=%d, want 1", snap.Counter(obs.TxSharerHints))
	}
}

// TestPolicyFallback checks the policy plumbing: DelayedCAS (always
// Fallback) resolves on the plain path, and the engine counts it.
func TestPolicyFallback(t *testing.T) {
	rec := obs.New()
	e := txcas.NewEngine(
		txcas.WithPolicy(policy.DelayedCAS{Delay: 10}),
		txcas.WithRecorder(rec),
	)
	loc := e.Register(0)
	out := e.TxCAS(1, loc, 0, 5)
	if !out.OK || !out.Fallback {
		t.Fatalf("policy-diverted TxCAS: %+v, want OK fallback", out)
	}
	if out.Attempts != 0 {
		t.Errorf("Attempts=%d, want 0 (no speculative attempt ran)", out.Attempts)
	}
	snap := rec.Snapshot()
	if snap.Counter(obs.CASFallbacks) != 1 {
		t.Errorf("CASFallbacks=%d, want 1", snap.Counter(obs.CASFallbacks))
	}

	var g txcas.Gate
	var link atomic.Pointer[int]
	out = txcas.GuardedCAS(e, &g, 1, &link, nil, new(int))
	if !out.OK || !out.Fallback {
		t.Fatalf("policy-diverted guarded CAS: %+v, want OK fallback", out)
	}
}

// TestBudgetBound checks the wait-free bound: however hostile the churn,
// an operation runs at most budget speculative attempts and then resolves
// with one plain CAS.
func TestBudgetBound(t *testing.T) {
	e := txcas.NewEngine(txcas.WithWindow(50*time.Microsecond), txcas.WithBudget(3))
	loc := e.Register(0)
	var stop atomic.Bool
	done := make(chan struct{})
	// An adversary flips the value 0↔1, publishing churn nonstop.
	go func() {
		defer close(done)
		v := uint64(0)
		for !stop.Load() {
			//lint:ignore casloop adversary churn is deliberately unbounded; stop flag bounds it
			if e.TxCAS(0, loc, v, 1-v).OK {
				v = 1 - v
			} else {
				v = e.Load(loc)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		out := e.TxCAS(1, loc, 0, 0)
		if out.Attempts > 3 {
			t.Fatalf("op %d ran %d attempts, budget is 3", i, out.Attempts)
		}
		if !out.OK && !out.Fallback && out.SoftAborts == 0 {
			t.Fatalf("op %d failed without fallback or soft abort: %+v", i, out)
		}
	}
	stop.Store(true)
	<-done
}

// TestRecorderAccounting checks the engine-side counter discipline on the
// word path: a read-step abort is a soft abort (no CAS issued), a
// genuine lost race is a CAS failure.
func TestRecorderAccounting(t *testing.T) {
	rec := obs.New()
	e := txcas.NewEngine(txcas.WithWindow(0), txcas.WithRecorder(rec))
	loc := e.Register(0)
	if !e.TxCAS(1, loc, 0, 1).OK {
		t.Fatal("setup win failed")
	}
	if e.TxCAS(2, loc, 0, 2).OK {
		t.Fatal("stale CAS won")
	}
	snap := rec.Snapshot()
	if got := snap.Counter(obs.CASAttempts); got != 1 {
		t.Errorf("CASAttempts=%d, want 1 (only the winner issued a CAS)", got)
	}
	if got := snap.Counter(obs.CASFailures); got != 0 {
		t.Errorf("CASFailures=%d, want 0 (the loser soft-aborted)", got)
	}
	if got := snap.Counter(obs.TxSoftAborts); got != 1 {
		t.Errorf("TxSoftAborts=%d, want 1", got)
	}
	if got := snap.Counter(obs.TxSharerHints); got != 1 {
		t.Errorf("TxSharerHints=%d, want 1", got)
	}
}

// TestOutcomeMethods pins the Outcome helper semantics.
func TestOutcomeMethods(t *testing.T) {
	var o txcas.Outcome
	o.LastWriter = txcas.NoWriter
	if o.Contended() || o.SharerKnown() {
		t.Error("zero-ish Outcome reports contention or a sharer")
	}
	o.SoftAborts = 1
	if !o.Contended() {
		t.Error("SoftAborts>0 must imply Contended")
	}
	o = txcas.Outcome{VersionDelta: 2, LastWriter: 4}
	if !o.Contended() || !o.SharerKnown() {
		t.Error("delta>0 with writer must imply Contended and SharerKnown")
	}
}

// TestAllocFreeHotPaths gates the engine's hot paths at zero heap
// allocations per operation, success and failure alike.
func TestAllocFreeHotPaths(t *testing.T) {
	if queuetest.RaceEnabled {
		t.Skip("race-detector instrumentation distorts allocation accounting")
	}
	rec := obs.New()
	e := txcas.NewEngine(txcas.WithWindow(time.Microsecond), txcas.WithRecorder(rec))
	loc := e.Register(0)
	v := uint64(0)
	if avg := testing.AllocsPerRun(200, func() {
		if e.TxCAS(1, loc, v, v+1).OK {
			v++
		}
		e.TxCAS(2, loc, 0, 1) // stale after the first win: failure path
	}); avg != 0 {
		t.Errorf("word TxCAS allocates %.2f objects/op, want 0", avg)
	}

	var g txcas.Gate
	var link atomic.Pointer[int]
	n := new(int)
	if avg := testing.AllocsPerRun(200, func() {
		txcas.GuardedCAS(e, &g, 1, &link, nil, n) // wins once, then fails
	}); avg != 0 {
		t.Errorf("GuardedCAS allocates %.2f objects/op, want 0", avg)
	}
}
