// Package core implements the paper's primary contribution on the simulated
// machine: TxCAS, a compare-and-set built from a hardware transaction whose
// failures are not serialized by the cache coherence protocol (paper §3–§4).
//
// A TxCAS executes the CAS read in a nested transaction and the CAS write
// in the main transaction, with a tuned delay in between. The delay raises
// the chance that losing TxCASs abort before issuing their write (keeping
// pending GetM requests off the line) and lets one successful write abort
// many concurrent readers at once. After an abort, TxCAS fails only if the
// target location actually changed; otherwise it retries.
package core

import (
	"repro/internal/machine"
	"repro/internal/machine/policy"
	"repro/internal/txcas"
)

// DefaultDelay is the intra-transaction delay (paper §4.1), in cycles.
// The paper empirically tunes ~270ns on its platform; at the simulator's
// 2.5 cycles/ns scale that is ~675 cycles.
const DefaultDelay = 675

// DefaultPostAbortDelay is the wait before re-reading the target location
// after a conflict abort (paper §4.2), sized to let an in-flight writer
// finish its GetM so the check does not trip it. Intra-socket, the window
// is a few message delays.
const DefaultPostAbortDelay = 150

// DefaultMaxRetries bounds transactional retries before TxCAS falls back to
// a standard CAS, making it wait-free (paper §4, "Progress"). The paper
// reports the fallback never fires in practice; ours exists and is counted.
const DefaultMaxRetries = 64

// DefaultRetryJitter is the randomized pre-retry delay bound (see
// Options.RetryJitter).
const DefaultRetryJitter = 32

// DefaultDelayJitter is the randomized intra-transaction delay spread (see
// Options.DelayJitter), ~10% of DefaultDelay.
const DefaultDelayJitter = 64

// abortCodeValueMismatch is the explicit-abort code used when the read step
// observes a value different from the expected one.
const abortCodeValueMismatch = 1

// Options tunes a TxCAS instance.
type Options struct {
	// Delay is the intra-transaction delay in cycles (§4.1). Zero means
	// no delay (which serializes successful TxCASs like standard CAS at
	// low concurrency).
	Delay uint64
	// PostAbortDelay is the pre-check delay after a conflict abort (§4.2).
	PostAbortDelay uint64
	// MaxRetries bounds transactional attempts before the standard-CAS
	// fallback. Zero means DefaultMaxRetries.
	MaxRetries int
	// RetryJitter adds up to this many cycles of randomized delay before
	// a transactional retry. Real hardware gets this symmetry-breaking
	// for free from timing noise; the simulator is perfectly symmetric,
	// so without jitter simultaneous writers can re-abort each other in
	// lockstep indefinitely.
	RetryJitter uint64
	// DelayJitter randomizes the intra-transaction delay by up to this
	// many cycles. It models the timing noise of a real delay loop
	// (cache effects, frequency scaling); with none, contending TxCASs
	// that were aborted by the same invalidation wave re-issue their
	// writes in the same cycle forever.
	DelayJitter uint64
	// Policy, if non-nil, replaces the built-in retry pacing: it is
	// consulted before every transactional attempt (including the first)
	// and decides retry-now / backoff / software-fallback per abort (see
	// repro/internal/machine/policy). MaxRetries remains a hard cap for
	// wait-freedom regardless of what the policy answers. When Policy is
	// nil the loop behaves exactly as before this field existed, with
	// RetryJitter pacing and the MaxRetries-then-fallback progression.
	Policy policy.RetryPolicy
}

// DefaultOptions returns the tuning used throughout the evaluation.
func DefaultOptions() Options {
	return Options{
		Delay:          DefaultDelay,
		PostAbortDelay: DefaultPostAbortDelay,
		MaxRetries:     DefaultMaxRetries,
		RetryJitter:    DefaultRetryJitter,
		DelayJitter:    DefaultDelayJitter,
	}
}

// CAS is a TxCAS executor bound to tuning options. The zero value uses
// no delays; use New(DefaultOptions()) for the evaluated configuration.
type CAS struct {
	opt Options
	// Fallbacks counts operations resolved by the standard-CAS fallback.
	Fallbacks uint64
	// Attempts counts transactional attempts across all operations.
	Attempts uint64
	// Ops counts completed TxCAS operations.
	Ops uint64
}

// New returns a TxCAS executor with the given options.
func New(opt Options) *CAS {
	if opt.MaxRetries == 0 {
		opt.MaxRetries = DefaultMaxRetries
	}
	return &CAS{opt: opt}
}

// Do performs TxCAS(ptr, old, new) on proc p: if the word at ptr equals
// old, store new and return true; otherwise return false. Fails only if
// the location's value actually changed (CAS semantics), per paper §4.2.
//
// Do is DoTx reduced to the legacy boolean; callers that can act on the
// failure report (retry policies, the baskets queue) should use DoTx.
//
//lf:hotpath
func (c *CAS) Do(p *machine.Proc, ptr machine.Addr, old, new uint64) bool {
	return c.DoTx(p, ptr, old, new).OK
}

// DoTx performs TxCAS(ptr, old, new) on proc p and returns the structured
// failure report (see repro/internal/txcas.Outcome): spin depth, soft
// aborts (attempts that died before the write step issued), and — when the
// HTM abort status attributed the conflict — the conflicting requester
// core as the sharer hint. This is Algorithm 1 of the paper with its
// byproduct information surfaced instead of discarded (§3).
//
//lf:hotpath
func (c *CAS) DoTx(p *machine.Proc, ptr machine.Addr, old, new uint64) txcas.Outcome {
	c.Ops++
	if c.opt.Policy != nil {
		return c.doPolicy(p, ptr, old, new)
	}
	out := txcas.Outcome{LastWriter: txcas.NoWriter}
	for attempt := 0; attempt < c.opt.MaxRetries; attempt++ {
		c.Attempts++
		out.Attempts++
		delay := c.opt.Delay
		if c.opt.DelayJitter > 0 {
			delay += p.RandN(c.opt.DelayJitter)
		}
		//lint:ignore allocfree the transaction body closure is the machine API's shape; the simulated track prices operations in simulated cycles, so Go-allocator cost is outside its measurement (the native queues are the zero-alloc surface)
		committed, st := p.Transaction(func(tx *machine.Tx) {
			//lint:ignore allocfree nested read-step closure, same machine-API shape as the transaction body above
			tx.Nested(func(tx *machine.Tx) {
				value := tx.Read(ptr) // CAS read step
				if value != old {
					tx.Abort(abortCodeValueMismatch)
				}
				tx.Delay(delay) // intra-transaction delay (§4.1)
			})
			tx.Write(ptr, new) // CAS write step
		})
		if committed {
			out.OK = true
			return out
		}
		if st.Requester >= 0 {
			out.LastWriter = st.Requester
		}
		if st.Explicit && st.Code == abortCodeValueMismatch {
			// Read step saw a different value: the cheap failure — the
			// write step never issued its GetM.
			out.SoftAborts++
			out.VersionDelta = 1
			return out
		}
		if st.Disabled {
			break // HTM is off for good; retrying cannot succeed
		}
		if !(st.Conflict && st.Nested) {
			// Conflict at/after the write step (we may be the tripped
			// writer), or a non-conflict abort: retry immediately, with
			// a touch of jitter to break simulator lockstep.
			if c.opt.RetryJitter > 0 {
				p.Delay(p.RandN(c.opt.RetryJitter))
			}
			continue
		}
		// Conflict during the read step: another TxCAS's write is in
		// flight — this attempt died before issuing its own write. Wait
		// for the winner's GetM to complete — so our check does not trip
		// it — then fail if the location indeed changed.
		out.SoftAborts++
		p.Delay(c.opt.PostAbortDelay)
		if p.Read(ptr) != old {
			out.VersionDelta = 1
			return out
		}
	}
	// Fallback to a standard CAS for wait-freedom.
	c.Fallbacks++
	out.Fallback = true
	out.OK = p.FallbackCAS(ptr, old, new)
	if !out.OK {
		out.VersionDelta = 1
	}
	return out
}

// doPolicy is the policy-paced variant of DoTx: Options.Policy is consulted
// before every transactional attempt and can retry, delay, or divert to the
// software fallback; the transactional body itself (nested read step,
// intra-transaction delay, write step) and the CAS-semantics checks are
// identical to the legacy loop. MaxRetries still caps attempts so a policy
// that never answers Fallback cannot cost wait-freedom. Each consult's
// Abort carries the conflicting requester from the HTM abort status, so
// contention-aware policies get the same sharer signal the Outcome does.
func (c *CAS) doPolicy(p *machine.Proc, ptr machine.Addr, old, new uint64) txcas.Outcome {
	out := txcas.Outcome{LastWriter: txcas.NoWriter}
	a := policy.Abort{Requester: policy.NoRequester}
	for attempt := 0; ; attempt++ {
		a.Attempt = attempt
		d := c.opt.Policy.Decide(a, p.RandN)
		if d.Delay > 0 {
			p.Delay(d.Delay)
		}
		if d.Fallback || attempt >= c.opt.MaxRetries {
			c.Fallbacks++
			out.Fallback = true
			out.OK = p.FallbackCAS(ptr, old, new)
			if !out.OK {
				out.VersionDelta = 1
			}
			return out
		}
		c.Attempts++
		out.Attempts++
		delay := c.opt.Delay
		if c.opt.DelayJitter > 0 {
			delay += p.RandN(c.opt.DelayJitter)
		}
		//lint:ignore allocfree the transaction body closure is the machine API's shape; the simulated track prices operations in simulated cycles, so Go-allocator cost is outside its measurement (the native queues are the zero-alloc surface)
		committed, st := p.Transaction(func(tx *machine.Tx) {
			//lint:ignore allocfree nested read-step closure, same machine-API shape as the transaction body above
			tx.Nested(func(tx *machine.Tx) {
				value := tx.Read(ptr) // CAS read step
				if value != old {
					tx.Abort(abortCodeValueMismatch)
				}
				tx.Delay(delay) // intra-transaction delay (§4.1)
			})
			tx.Write(ptr, new) // CAS write step
		})
		if committed {
			out.OK = true
			return out
		}
		if st.Requester >= 0 {
			out.LastWriter = st.Requester
		}
		if st.Explicit && st.Code == abortCodeValueMismatch {
			// Read step saw a different value: fail without ever having
			// issued the write step's GetM.
			out.SoftAborts++
			out.VersionDelta = 1
			return out
		}
		a = policy.Abort{
			Conflict:  st.Conflict,
			Explicit:  st.Explicit,
			Capacity:  st.Capacity,
			Disabled:  st.Disabled,
			Nested:    st.Nested,
			Code:      st.Code,
			Requester: st.Requester,
		}
		if st.Conflict && st.Nested {
			// Conflict during the read step: another TxCAS's write is in
			// flight and this attempt died before issuing its own. Wait
			// for the winner's GetM to complete — so our check does not
			// trip it — then fail if the location indeed changed (§4.2).
			// This check is CAS semantics, not pacing, so it stays in the
			// executor under every policy.
			out.SoftAborts++
			p.Delay(c.opt.PostAbortDelay)
			if p.Read(ptr) != old {
				out.VersionDelta = 1
				return out
			}
		}
	}
}

// TxCAS performs a one-shot TxCAS with the default options.
func TxCAS(p *machine.Proc, ptr machine.Addr, old, new uint64) bool {
	return New(DefaultOptions()).Do(p, ptr, old, new)
}
