package core

import (
	"repro/internal/machine"
	"repro/internal/txcas"
)

// Bound adapts the simulated track's TxCAS executors to the unified
// txcas.Primitive interface, so the same policy-paced CAS can be driven
// against the simulated machine or the native engine and compared
// report-for-report.
//
// A Bound holds one CAS executor per simulated thread (the executors keep
// per-thread telemetry and the simulator's cooperative scheduler runs one
// thread at a time, so they are never shared). Simulated operations need
// the calling thread's *machine.Proc, which only exists once the machine
// has started the thread body — so procs attach lazily: each thread calls
// Attach(tid, p) once before its first TxCAS (repro/internal/simqueue's
// PrimitiveAppend does this automatically).
type Bound struct {
	casers []*CAS
	procs  []*machine.Proc
}

var _ txcas.Primitive = (*Bound)(nil)

// Bind returns a Bound for the given number of simulated threads, each
// with its own executor built from opt.
func Bind(threads int, opt Options) *Bound {
	b := &Bound{
		casers: make([]*CAS, threads),
		procs:  make([]*machine.Proc, threads),
	}
	for i := range b.casers {
		b.casers[i] = New(opt)
	}
	return b
}

// Attach registers thread tid's proc. It must be called from tid's thread
// body before its first TxCAS; re-attaching the same proc is a no-op.
// Attachment is not synchronized — it relies on the simulator's
// cooperative, single-threaded scheduling, like all machine-track state.
func (b *Bound) Attach(tid int, p *machine.Proc) { b.procs[tid] = p }

// Caser returns thread tid's executor, exposing its telemetry counters
// (Ops, Attempts, Fallbacks).
func (b *Bound) Caser(tid int) *CAS { return b.casers[tid] }

// TxCAS implements txcas.Primitive: run one simulated-track TxCAS on
// thread's proc against machine address loc (machine.Addr is an alias of
// uint64, so the Loc conversion is free).
//
//lf:hotpath
func (b *Bound) TxCAS(thread int, loc txcas.Loc, old, new uint64) txcas.Outcome {
	return b.casers[thread].DoTx(b.procs[thread], machine.Addr(loc), old, new)
}
