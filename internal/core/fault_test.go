package core

import (
	"testing"

	"repro/internal/machine"
)

// TxCAS must keep CAS semantics when the HTM aborts transactions for
// non-conflict reasons (the §4.2 requirement: fail only if the target
// location actually changed).
func TestTxCASUnderSpuriousAborts(t *testing.T) {
	cfg := machine.Default()
	cfg.SpuriousAbortEvery = 4
	m := machine.New(cfg)
	a := m.AllocLine(8, 0)
	const threads, rounds = 12, 25
	var succ uint64
	for i := 0; i < threads; i++ {
		m.Go(i, func(p *machine.Proc) {
			c := New(DefaultOptions())
			for r := 0; r < rounds; r++ {
				old := p.Read(a)
				if c.Do(p, a, old, old+1) {
					succ++
				}
			}
		})
	}
	m.Run()
	if m.Stats.TxAbortSpurious == 0 {
		t.Fatal("injection never fired")
	}
	if m.Peek(a) != succ {
		t.Fatalf("value %d != successes %d: spurious aborts broke CAS semantics", m.Peek(a), succ)
	}
	if succ == 0 {
		t.Fatal("no TxCAS succeeded under injected aborts")
	}
}

// With injection on every transaction, TxCAS's bounded retries exhaust and
// the wait-free standard-CAS fallback completes the operation.
func TestTxCASFallbackUnderTotalAborts(t *testing.T) {
	cfg := machine.Default()
	cfg.SpuriousAbortEvery = 1
	m := machine.New(cfg)
	a := m.AllocLine(8, 0)
	var ok bool
	var fallbacks uint64
	m.Go(0, func(p *machine.Proc) {
		opt := DefaultOptions()
		opt.MaxRetries = 4
		// A long delay guarantees the injected abort lands every attempt.
		opt.Delay = 1000
		c := New(opt)
		ok = c.Do(p, a, 0, 7)
		fallbacks = c.Fallbacks
	})
	m.Run()
	if !ok || m.Peek(a) != 7 {
		t.Fatalf("fallback CAS failed: ok=%v value=%d", ok, m.Peek(a))
	}
	if fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", fallbacks)
	}
}
