package core

import (
	"testing"

	"repro/internal/machine"
)

func newMachine() *machine.Machine {
	cfg := machine.Default()
	return machine.New(cfg)
}

func TestTxCASBasicSemantics(t *testing.T) {
	m := newMachine()
	a := m.AllocLine(8, 0)
	m.Poke(a, 5)
	var r1, r2, r3 bool
	m.Go(0, func(p *machine.Proc) {
		c := New(DefaultOptions())
		r1 = c.Do(p, a, 5, 6)  // matches -> succeeds
		r2 = c.Do(p, a, 5, 7)  // stale expected -> fails
		r3 = c.Do(p, a, 6, 10) // matches again
	})
	m.Run()
	if !r1 || r2 || !r3 {
		t.Fatalf("TxCAS results = %v,%v,%v; want true,false,true", r1, r2, r3)
	}
	if m.Peek(a) != 10 {
		t.Fatalf("final value = %d, want 10", m.Peek(a))
	}
}

func TestTxCASFailsOnlyIfChanged(t *testing.T) {
	// CAS semantics (§4.2): a false return implies the location changed.
	m := newMachine()
	a := m.AllocLine(8, 0)
	const threads = 16
	const rounds = 30
	results := make([][]bool, threads)
	seen := make([][]uint64, threads)
	for i := 0; i < threads; i++ {
		i := i
		m.Go(i, func(p *machine.Proc) {
			c := New(DefaultOptions())
			for r := 0; r < rounds; r++ {
				old := p.Read(a)
				ok := c.Do(p, a, old, old+1)
				results[i] = append(results[i], ok)
				seen[i] = append(seen[i], old)
			}
		})
	}
	m.Run()
	var succ uint64
	for i := range results {
		for range results[i] {
			// counted below
		}
		for _, ok := range results[i] {
			if ok {
				succ++
			}
		}
	}
	if m.Peek(a) != succ {
		t.Fatalf("final value %d != successful TxCAS count %d: a failed TxCAS mutated memory or a success was lost", m.Peek(a), succ)
	}
	if succ == 0 {
		t.Fatal("no TxCAS ever succeeded under contention")
	}
}

func TestTxCASSuccessSerialization(t *testing.T) {
	// All successes on the same word must form a chain old->old+1: no two
	// TxCASs may succeed from the same expected value.
	m := newMachine()
	a := m.AllocLine(8, 0)
	const threads = 24
	winners := make(map[uint64]int)
	for i := 0; i < threads; i++ {
		m.Go(i, func(p *machine.Proc) {
			c := New(DefaultOptions())
			for r := 0; r < 20; r++ {
				old := p.Read(a)
				if c.Do(p, a, old, old+1) {
					winners[old]++
				}
			}
		})
	}
	m.Run()
	for v, n := range winners {
		if n != 1 {
			t.Fatalf("value %d won by %d TxCASs; atomicity violated", v, n)
		}
	}
}

func TestTxCASWaitFreeFallback(t *testing.T) {
	// With zero retries allowed... MaxRetries floor is 1; instead verify
	// the fallback path works by making transactions always lose: a tiny
	// retry budget under heavy contention.
	m := newMachine()
	a := m.AllocLine(8, 0)
	var fallbacks uint64
	const threads = 32
	for i := 0; i < threads; i++ {
		m.Go(i, func(p *machine.Proc) {
			c := New(Options{Delay: 400, PostAbortDelay: 0, MaxRetries: 1})
			for r := 0; r < 10; r++ {
				old := p.Read(a)
				c.Do(p, a, old, old+1)
			}
			fallbacks += c.Fallbacks
		})
	}
	m.Run()
	if fallbacks == 0 {
		t.Skip("contention did not exhaust the retry budget (timing-sensitive)")
	}
	// The run completed: the fallback guarantees termination.
}

func TestTxCASStatsAccounting(t *testing.T) {
	m := newMachine()
	a := m.AllocLine(8, 0)
	var ops, attempts uint64
	m.Go(0, func(p *machine.Proc) {
		c := New(DefaultOptions())
		for i := 0; i < 5; i++ {
			old := p.Read(a)
			c.Do(p, a, old, old+1)
		}
		ops, attempts = c.Ops, c.Attempts
	})
	m.Run()
	if ops != 5 {
		t.Fatalf("Ops = %d, want 5", ops)
	}
	if attempts < ops {
		t.Fatalf("Attempts = %d < Ops = %d", attempts, ops)
	}
}

// measureLatency runs `threads` procs hammering one word with op and
// returns the mean per-operation latency in cycles.
func measureLatency(t *testing.T, threads int, op func(p *machine.Proc, a machine.Addr)) float64 {
	t.Helper()
	m := newMachine()
	if threads > m.Config().CoresPerSocket {
		t.Fatalf("test wants %d threads on one socket", threads)
	}
	a := m.AllocLine(8, 0)
	const ops = 40
	var cycles uint64
	for i := 0; i < threads; i++ {
		m.Go(i, func(p *machine.Proc) {
			p.Delay(p.RandN(200)) // desynchronize starts
			start := p.Now()
			for r := 0; r < ops; r++ {
				op(p, a)
			}
			cycles += p.Now() - start
		})
	}
	m.Run()
	return float64(cycles) / float64(threads*ops)
}

// The paper's Figure 1: FAA latency grows linearly with contention while
// TxCAS latency is roughly constant beyond ~10 threads, with a crossover.
func TestFigure1Shape(t *testing.T) {
	faa := func(p *machine.Proc, a machine.Addr) { p.FAA(a, 1) }
	txcasOp := func() func(p *machine.Proc, a machine.Addr) {
		return func(p *machine.Proc, a machine.Addr) {
			c := New(DefaultOptions())
			old := p.Read(a)
			c.Do(p, a, old, old+1)
		}
	}

	faa4 := measureLatency(t, 4, faa)
	faa40 := measureLatency(t, 40, faa)
	tx4 := measureLatency(t, 4, txcasOp())
	tx16 := measureLatency(t, 16, txcasOp())
	tx40 := measureLatency(t, 40, txcasOp())

	t.Logf("FAA:   4thr=%.0fcy 40thr=%.0fcy", faa4, faa40)
	t.Logf("TxCAS: 4thr=%.0fcy 16thr=%.0fcy 40thr=%.0fcy", tx4, tx16, tx40)

	// FAA grows strongly with contention.
	if faa40 < 4*faa4 {
		t.Errorf("FAA latency did not grow ~linearly: 4thr=%.0f 40thr=%.0f", faa4, faa40)
	}
	// TxCAS is roughly flat from 16 to 40 threads (allow 2x slack).
	if tx40 > 2*tx16 {
		t.Errorf("TxCAS latency not flat at high contention: 16thr=%.0f 40thr=%.0f", tx16, tx40)
	}
	// At low concurrency TxCAS pays its delay: slower than FAA.
	if tx4 < faa4 {
		t.Errorf("TxCAS unexpectedly faster than FAA at low concurrency: %.0f vs %.0f", tx4, faa4)
	}
	// At high concurrency TxCAS wins.
	if tx40 > faa40 {
		t.Errorf("TxCAS (%.0fcy) did not beat FAA (%.0fcy) at 40 threads", tx40, faa40)
	}
}

// Without the intra-transaction delay, successful TxCASs serialize like
// standard CAS; the delay is what buys scalability (paper §4.1).
func TestDelayImprovesHighContention(t *testing.T) {
	mk := func(delay uint64) func(p *machine.Proc, a machine.Addr) {
		return func(p *machine.Proc, a machine.Addr) {
			c := New(Options{Delay: delay, PostAbortDelay: DefaultPostAbortDelay, RetryJitter: DefaultRetryJitter})
			old := p.Read(a)
			c.Do(p, a, old, old+1)
		}
	}
	noDelay := measureLatency(t, 40, mk(0))
	withDelay := measureLatency(t, 40, mk(DefaultDelay))
	t.Logf("40 threads: no-delay=%.0fcy with-delay=%.0fcy", noDelay, withDelay)
	if withDelay > noDelay*2 {
		t.Errorf("delay made high-contention TxCAS much worse: %.0f vs %.0f", withDelay, noDelay)
	}
}

func TestTxCASDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := newMachine()
		a := m.AllocLine(8, 0)
		for i := 0; i < 12; i++ {
			m.Go(i, func(p *machine.Proc) {
				c := New(DefaultOptions())
				for r := 0; r < 15; r++ {
					old := p.Read(a)
					c.Do(p, a, old, old+1)
				}
			})
		}
		m.Run()
		return m.Peek(a), m.Now()
	}
	v1, t1 := run()
	v2, t2 := run()
	if v1 != v2 || t1 != t2 {
		t.Fatalf("nondeterministic TxCAS run: (%d,%d) vs (%d,%d)", v1, t1, v2, t2)
	}
}
