package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/machine/policy"
)

// Tests for TxCAS under a pluggable retry/fallback policy (Options.Policy):
// the policy path must preserve CAS semantics, divert to the software
// fallback when HTM is disabled, honor attempt budgets, and let DelayedCAS
// skip the transactional path entirely.

func policyOptions(p policy.RetryPolicy) Options {
	o := DefaultOptions()
	o.Policy = p
	return o
}

func faultCfg(plan machine.FaultPlan) machine.Config {
	cfg := machine.Default()
	cfg.Faults = plan
	return cfg
}

// With HTM disabled outright, a policy-paced TxCAS must complete every
// operation on the software fallback — one fallback per op, no retries
// burned on refused transactions beyond the first.
func TestPolicyFallbackWhenDisabled(t *testing.T) {
	m := machine.New(faultCfg(machine.FaultPlan{DisableHTM: true}))
	a := m.AllocLine(8, 0)
	c := New(policyOptions(policy.ImmediateRetry{Jitter: DefaultRetryJitter}))
	var results []bool
	m.Go(0, func(p *machine.Proc) {
		results = append(results, c.Do(p, a, 0, 1)) // succeeds
		results = append(results, c.Do(p, a, 0, 2)) // stale old: must fail
		results = append(results, c.Do(p, a, 1, 2)) // succeeds
	})
	m.Run()
	want := []bool{true, false, true}
	for i, r := range results {
		if r != want[i] {
			t.Fatalf("op %d = %v, want %v (CAS semantics broken on fallback path)", i, r, want[i])
		}
	}
	if m.Peek(a) != 2 {
		t.Fatalf("a = %d, want 2", m.Peek(a))
	}
	// Each op: attempt 0 tries HTM (refused, Disabled), attempt 1 falls
	// back. The first Decide sees no flags so one attempt is burned.
	if c.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (one refused _xbegin per op)", c.Attempts)
	}
	if c.Fallbacks != 3 {
		t.Fatalf("Fallbacks = %d, want 3", c.Fallbacks)
	}
	if m.Stats.CASFallbacks != 3 {
		t.Fatalf("machine CASFallbacks = %d, want 3", m.Stats.CASFallbacks)
	}
}

// DelayedCAS never touches HTM: zero transactional attempts, every op a
// delayed software CAS, and the delay actually elapses.
func TestPolicyDelayedCASSkipsHTM(t *testing.T) {
	const delay = 500
	m := machine.New(machine.Default())
	a := m.AllocLine(8, 0)
	c := New(policyOptions(policy.DelayedCAS{Delay: delay}))
	var ok bool
	var elapsed uint64
	m.Go(0, func(p *machine.Proc) {
		start := p.Now()
		ok = c.Do(p, a, 0, 7)
		elapsed = p.Now() - start
	})
	m.Run()
	if !ok || m.Peek(a) != 7 {
		t.Fatalf("ok=%v a=%d, want true/7", ok, m.Peek(a))
	}
	if c.Attempts != 0 {
		t.Fatalf("Attempts = %d, want 0 (DelayedCAS must skip HTM)", c.Attempts)
	}
	if c.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", c.Fallbacks)
	}
	if m.Stats.TxStarted != 0 {
		t.Fatalf("TxStarted = %d, want 0", m.Stats.TxStarted)
	}
	if elapsed < delay {
		t.Fatalf("op took %d cycles, want >= %d (the policy delay)", elapsed, delay)
	}
}

// AbortBudget ends the fast path after its budget: with every transaction
// spuriously aborted, attempts stop at the budget and the fallback
// completes the op.
func TestPolicyAbortBudgetBoundsAttempts(t *testing.T) {
	const budget = 5
	m := machine.New(faultCfg(machine.FaultPlan{SpuriousAbortProb: 1}))
	a := m.AllocLine(8, 0)
	c := New(policyOptions(policy.AbortBudget{Budget: budget, Inner: policy.ImmediateRetry{}}))
	var ok bool
	m.Go(0, func(p *machine.Proc) {
		ok = c.Do(p, a, 0, 1)
	})
	m.Run()
	if !ok || m.Peek(a) != 1 {
		t.Fatalf("ok=%v a=%d, want true/1", ok, m.Peek(a))
	}
	if c.Attempts != budget {
		t.Fatalf("Attempts = %d, want exactly the budget %d", c.Attempts, budget)
	}
	if c.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", c.Fallbacks)
	}
}

// MaxRetries stays a hard cap under a policy that never answers Fallback,
// preserving wait-freedom.
func TestPolicyMaxRetriesHardCap(t *testing.T) {
	cfg := faultCfg(machine.FaultPlan{SpuriousAbortProb: 1})
	m := machine.New(cfg)
	a := m.AllocLine(8, 0)
	o := policyOptions(stubbornPolicy{})
	o.MaxRetries = 7
	c := New(o)
	var ok bool
	m.Go(0, func(p *machine.Proc) {
		ok = c.Do(p, a, 0, 1)
	})
	m.Run()
	if !ok {
		t.Fatal("op did not complete")
	}
	if c.Attempts != 7 {
		t.Fatalf("Attempts = %d, want the MaxRetries cap 7", c.Attempts)
	}
	if c.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", c.Fallbacks)
	}
}

// stubbornPolicy always retries immediately and never falls back.
type stubbornPolicy struct{}

func (stubbornPolicy) Decide(policy.Abort, func(uint64) uint64) policy.Decision {
	return policy.Decision{}
}

// Contended policy-paced TxCAS keeps CAS semantics: the final value equals
// the number of reported successes, under every built-in policy, faults or
// not.
func TestPolicyContendedSemantics(t *testing.T) {
	policies := map[string]policy.RetryPolicy{
		"immediate":   policy.ImmediateRetry{Jitter: DefaultRetryJitter},
		"backoff":     policy.ExponentialBackoff{Base: 64, Max: 4096},
		"budget":      policy.AbortBudget{Budget: 8, Inner: policy.ImmediateRetry{Jitter: DefaultRetryJitter}},
		"delayed-cas": policy.DelayedCAS{Delay: DefaultDelay, Jitter: DefaultDelayJitter},
	}
	plans := map[string]machine.FaultPlan{
		"fault-free": {},
		"spurious":   {SpuriousAbortProb: 0.3},
		"disabled":   {DisableHTM: true},
		"mid-run":    {DisableHTMAfter: 50, CrossSocketJitter: 20},
	}
	for pname, pol := range policies {
		for fname, plan := range plans {
			t.Run(pname+"/"+fname, func(t *testing.T) {
				m := machine.New(faultCfg(plan))
				a := m.AllocLine(8, 0)
				const threads, rounds = 10, 20
				var succ uint64
				for i := 0; i < threads; i++ {
					i := i
					m.Go(i, func(p *machine.Proc) {
						c := New(policyOptions(pol))
						for r := 0; r < rounds; r++ {
							old := p.Read(a)
							if c.Do(p, a, old, old+1) {
								succ++
							}
							p.Delay(p.RandN(50))
						}
						_ = i
					})
				}
				m.Run()
				if m.Peek(a) != succ {
					t.Fatalf("value %d != successes %d: policy %s broke CAS semantics under %s",
						m.Peek(a), succ, pname, fname)
				}
				if succ == 0 {
					t.Fatal("no TxCAS succeeded")
				}
			})
		}
	}
}
