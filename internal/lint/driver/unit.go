package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for a
// vet tool (x/tools' unitchecker.Config). One invocation analyzes one
// package unit; dependencies arrive as compiler export data files.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers the go command's `-V=full` tool handshake. The
// output format is prescribed: "<name> version devel ... buildID=<hash>"
// (the hash keys go vet's result cache, so it must change whenever the
// tool binary does).
func printVersion() {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

// unitCheck runs the analyzers on the single package unit described by
// cfgFile, per the go vet tool protocol, and returns the exit code
// (0 ok, 1 tool failure, 2 diagnostics reported).
func unitCheck(analyzers []*analysis.Analyzer, cfgFile string) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfcheck:", err)
		return 1
	}
	// The go command expects a facts file for every unit, including
	// fact-only dependency visits. lfcheck's analyzers are fact-free, so
	// the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lfcheck:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := typeCheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "lfcheck: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := Analyze(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfcheck: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Category)
	}
	return 2
}

func readVetConfig(cfgFile string) (*vetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}
	return cfg, nil
}

// typeCheckUnit parses and type-checks the unit's Go files, importing
// dependencies through the export data files named in the config.
func typeCheckUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     TargetSizes(),
	}
	info := newInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info, Sizes: conf.Sizes}, nil
}
