// Package driver runs repro/internal/lint analyzers over type-checked
// packages. It provides the two entry points cmd/lfcheck needs:
//
//   - a standalone mode that loads packages itself via `go list` and
//     type-checks them from source (no export data, no network), and
//   - the `go vet -vettool` unit-checker protocol (see unit.go), in which
//     the go command supplies one package per invocation together with
//     compiler export data for its dependencies.
//
// Both modes share Analyze, which applies the analyzers to one package
// and filters findings through //lint:ignore directives.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Package bundles everything a Pass needs for one package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Analyze applies the analyzers to pkg and returns the surviving
// diagnostics (Category filled in, //lint:ignore directives applied,
// malformed directives reported) sorted by position.
//
// Analyzers named in a Requires graph run before their requirers and
// feed them through Pass.ResultOf; requirements pulled in implicitly
// (not in the analyzers argument) contribute results only — their
// diagnostics are dropped, so a test or a trimmed command line can run
// one analyzer without also surfacing its dependencies' findings.
func Analyze(pkg *Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	ignores := analysis.NewIgnoreSet(pkg.Fset, pkg.Files)
	requested := make(map[*analysis.Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}
	order, err := depOrder(analyzers)
	if err != nil {
		return nil, err
	}
	results := make(map[*analysis.Analyzer]interface{}, len(order))
	var diags []analysis.Diagnostic
	for _, a := range order {
		a := a
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: pkg.Sizes,
		}
		if len(a.Requires) > 0 {
			pass.ResultOf = make(map[*analysis.Analyzer]interface{}, len(a.Requires))
			for _, req := range a.Requires {
				pass.ResultOf[req] = results[req]
			}
		}
		pass.Report = func(d analysis.Diagnostic) {
			d.Category = a.Name
			if !requested[a] {
				return
			}
			if ignores.Suppressed(pkg.Fset, a.Name, d.Pos) {
				return
			}
			diags = append(diags, d)
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		results[a] = res
	}
	for _, d := range ignores.Malformed {
		d.Category = "lintdirective"
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// depOrder expands the analyzer set with its transitive requirements
// and returns a topological order (requirements first). It rejects
// cycles, which would be a programming error in analyzer wiring.
func depOrder(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var (
		order   []*analysis.Analyzer
		done    = map[*analysis.Analyzer]bool{}
		visit   func(a *analysis.Analyzer) error
		onStack = map[*analysis.Analyzer]bool{}
	)
	visit = func(a *analysis.Analyzer) error {
		if done[a] {
			return nil
		}
		if onStack[a] {
			return fmt.Errorf("analyzer requirement cycle through %s", a.Name)
		}
		onStack[a] = true
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		onStack[a] = false
		done[a] = true
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// TargetSizes returns the std sizes for the platform selected by the
// GOARCH environment variable, defaulting to the host.
func TargetSizes() types.Sizes {
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	if s := types.SizesFor("gc", goarch); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// loader type-checks a `go list -deps` package graph from source, in
// dependency order, caching type-checked packages by import path.
type loader struct {
	fset  *token.FileSet
	sizes types.Sizes
	list  map[string]*listPackage
	pkgs  map[string]*Package
	stack []string // cycle detection (should never trigger: go list rejects cycles)
}

// Load lists patterns with the go command and type-checks every listed
// package plus its dependencies from source. It returns the in-module
// (non-standard-library) packages, sorted by import path.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	ld := &loader{
		fset:  token.NewFileSet(),
		sizes: TargetSizes(),
		list:  make(map[string]*listPackage),
		pkgs:  make(map[string]*Package),
	}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		ld.list[lp.ImportPath] = &lp
		order = append(order, lp.ImportPath)
	}
	var targets []*Package
	for _, path := range order {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if !ld.list[path].Standard {
			targets = append(targets, pkg)
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].Types.Path() < targets[j].Types.Path()
	})
	return targets, nil
}

func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	lp, ok := ld.list[path]
	if !ok {
		return nil, fmt.Errorf("import %q: not in go list graph", path)
	}
	for _, p := range ld.stack {
		if p == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			dep, err := ld.load(p)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}),
		Sizes: ld.sizes,
	}
	if lp.Standard {
		// Tolerate soft errors in the standard library: we only need its
		// exported type information, and source-checking std across Go
		// releases can hit benign version skew.
		conf.Error = func(error) {}
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil && !lp.Standard {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &Package{Fset: ld.fset, Files: files, Types: tpkg, Info: info, Sizes: ld.sizes}
	ld.pkgs[path] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Main is cmd/lfcheck's entry point: it dispatches between the version
// and flag handshakes the go command performs on vet tools, the
// unit-checker protocol (a single *.cfg argument), and the standalone
// pattern mode. It returns the process exit code.
func Main(analyzers []*analysis.Analyzer, args []string) int {
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		usage(analyzers)
		return 0
	}
	for _, arg := range args {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return 0
		case "-flags", "--flags":
			// The go command queries a vet tool's flags to validate the
			// command line. lfcheck defines none beyond the protocol.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitCheck(analyzers, args[0])
	}
	if len(args) == 0 {
		usage(analyzers)
		return 2
	}
	pkgs, err := Load(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfcheck:", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := Analyze(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfcheck: %s: %v\n", pkg.Types.Path(), err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Category)
			exit = 2
		}
	}
	return exit
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintln(os.Stderr, "lfcheck is this repository's lock-free-code lint suite.")
	fmt.Fprintln(os.Stderr, "\nusage:")
	fmt.Fprintln(os.Stderr, "  lfcheck ./...                      # standalone")
	fmt.Fprintln(os.Stderr, "  go vet -vettool=$(which lfcheck) ./...  # as a vet tool")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
	}
	fmt.Fprintln(os.Stderr, "\nsuppress a finding with: //lint:ignore <analyzer> <reason>")
}
