// Package a exercises the atomicmix analyzer.
package a

import "sync/atomic"

type counter struct {
	hits   uint64
	misses uint64
	name   string
}

func inc(c *counter) {
	atomic.AddUint64(&c.hits, 1)
}

func load(c *counter) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func badRead(c *counter) uint64 {
	return c.hits // want `plain access of field hits, which is accessed atomically`
}

func badWrite(c *counter) {
	c.hits = 0 // want `plain access of field hits, which is accessed atomically`
}

func badOpAssign(c *counter) {
	c.hits++ // want `plain access of field hits, which is accessed atomically`
}

func okNeverAtomic(c *counter) uint64 {
	c.misses = 1 // misses is never accessed atomically
	return c.misses
}

func okOtherField(c *counter) string { return c.name }

// Address-taking aliases the word but is not itself a plain load/store.
func okAlias(c *counter) *uint64 { return &c.hits }

func okSuppressed(c *counter) uint64 {
	//lint:ignore atomicmix value not yet shared, construction-time read
	return c.hits
}

// Typed atomics cannot be accessed non-atomically: never reported.
type typed struct {
	n atomic.Uint64
}

func useTyped(t *typed) uint64 {
	t.n.Add(1)
	return t.n.Load()
}
