// Package atomicmix defines an Analyzer that flags struct fields
// accessed both through sync/atomic operations and through plain
// loads/stores in the same package.
//
// # Analyzer atomicmix
//
// atomicmix: report struct fields that mix atomic and plain access.
//
// A field that any code reads or writes with a sync/atomic operation is
// a synchronization variable: every other access must also be atomic, or
// the program has a data race the race detector may never schedule
// (paper §3 — the cost model of CAS/FAA only holds if the contended word
// is accessed through the atomic API everywhere). Initialization before
// the value is shared is the idiomatic exception; suppress those sites
// with
//
//	//lint:ignore atomicmix not yet shared
//
// Fields of the typed atomics (atomic.Uint64, atomic.Pointer[T], ...)
// cannot be accessed non-atomically and are therefore never reported;
// migrating a flagged field to a typed atomic is the preferred fix.
package atomicmix

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags mixed atomic/plain access to struct fields.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "report struct fields accessed both atomically and with plain loads/stores",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: find fields passed by address to legacy sync/atomic calls,
	// remembering the selector nodes so pass 2 can skip them.
	atomicFields := make(map[*types.Var]ast.Expr) // field -> one atomic-use site
	addrSels := make(map[*ast.SelectorExpr]bool)  // &x.f sites (atomic args and aliasing)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				// Address-taking is not a plain load/store; &x.f handed to
				// helpers is the aliasing idiom and stays out of scope.
				if _, sel, _, ok := lintutil.FieldAddrArg(pass.TypesInfo, n); ok {
					addrSels[sel] = true
				}
			case *ast.CallExpr:
				fn := lintutil.Callee(pass.TypesInfo, n)
				if _, _, isAtomic := lintutil.LegacyAtomic(fn); !isAtomic || len(n.Args) == 0 {
					return true
				}
				field, sel, _, ok := lintutil.FieldAddrArg(pass.TypesInfo, n.Args[0])
				if !ok {
					return true
				}
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = sel
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}
	// Pass 2: every other selection of those fields is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || addrSels[sel] {
				return true
			}
			field, _, _, ok := lintutil.FieldSel(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			first, isAtomic := atomicFields[field]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access of field %s, which is accessed atomically at %s; use sync/atomic everywhere or migrate the field to a typed atomic",
				field.Name(), pass.Fset.Position(first.Pos()))
			return true
		})
	}
	return nil, nil
}
