package casloop_test

import (
	"testing"

	"repro/internal/lint/casloop"
	"repro/internal/lint/linttest"
)

func TestCasloop(t *testing.T) {
	linttest.Run(t, "testdata", casloop.Analyzer, "a")
}
