// Package casloop defines an Analyzer that flags unbounded
// compare-and-swap retry loops that neither bound their retries, back
// off, nor account the failures in telemetry.
//
// # Analyzer casloop
//
// casloop: report unaccounted unbounded CAS retry loops.
//
// The paper's core observation (§3, §6.1) is that failed CAS operations
// are not free — they are the dominant cost on contended queues — so a
// retry loop that silently spins on CompareAndSwap hides exactly the
// signal this repository exists to measure. Every CAS loop must do at
// least one of:
//
//   - bound its iterations (a three-clause for with init, condition and
//     post),
//   - back off between attempts (runtime.Gosched, time.Sleep, or any
//     callee whose name mentions spin/backoff/yield/pause/sleep), or
//   - record the retry in telemetry (a call to Inc/Add/Observe on a
//     repro/internal/obs recorder inside the loop).
//
// Genuinely convergent helping loops — monotonic advance CASes where a
// failure proves another thread made progress — may be suppressed with
//
//	//lint:ignore casloop failure implies anothers progress (monotonic)
//
// The loop examined is the innermost for statement enclosing the CAS; a
// CompareAndSwap in a loop's condition expression counts too. Both the
// legacy sync/atomic functions and the CompareAndSwap methods of typed
// atomics are recognized.
package casloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags unbounded, unaccounted CAS retry loops.
var Analyzer = &analysis.Analyzer{
	Name: "casloop",
	Doc:  "report unbounded CompareAndSwap retry loops with no bound, backoff, or telemetry",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkLoop(pass, loop)
			return true
		})
	}
	return nil, nil
}

func checkLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	// A fully-specified three-clause for is considered bounded.
	if loop.Init != nil && loop.Cond != nil && loop.Post != nil {
		return
	}
	casPos, hasCAS := findCAS(pass, loop)
	if !hasCAS {
		return
	}
	if hasMitigation(pass, loop) {
		return
	}
	pass.Reportf(casPos,
		"unbounded CAS retry loop with no bound, backoff, or telemetry: bound the retries, back off, or count the failure through an obs.Recorder (the paper's §3 failed-CAS accounting)")
}

// findCAS returns the position of a CompareAndSwap call whose innermost
// enclosing for statement is loop (the condition counts as inside).
func findCAS(pass *analysis.Pass, loop *ast.ForStmt) (pos token.Pos, found bool) {
	walkLoopBody(loop, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if isCAS(pass.TypesInfo, call) {
			pos, found = call.Pos(), true
		}
	})
	return pos, found
}

func isCAS(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return false
	}
	if op, _, ok := lintutil.LegacyAtomic(fn); ok {
		return op == "CompareAndSwap"
	}
	// Methods: typed atomics' CompareAndSwap, and any in-repo CAS-shaped
	// method (the simulated machine exposes CAS/TxCAS words).
	name := fn.Name()
	return name == "CompareAndSwap" || name == "CAS" || name == "TxCAS"
}

// hasMitigation reports whether the loop body contains a bounding,
// backoff, or telemetry call.
func hasMitigation(pass *analysis.Pass, loop *ast.ForStmt) bool {
	found := false
	walkLoopBody(loop, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		if isBackoff(fn) || isTelemetry(fn) {
			found = true
		}
	})
	return found
}

func isBackoff(fn *types.Func) bool {
	if pkg := fn.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "runtime" && fn.Name() == "Gosched":
			return true
		case pkg.Path() == "time" && fn.Name() == "Sleep":
			return true
		}
	}
	name := strings.ToLower(fn.Name())
	for _, hint := range []string{"spin", "backoff", "yield", "pause", "sleep", "gosched"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

// isTelemetry recognizes recorder calls from repro/internal/obs (or any
// package named obs): Inc, Add, Observe.
func isTelemetry(fn *types.Func) bool {
	switch fn.Name() {
	case "Inc", "Add", "Observe":
	default:
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && (pkg.Name() == "obs" || strings.HasSuffix(pkg.Path(), "/obs"))
}

// walkLoopBody visits the loop's condition and body without descending
// into nested for statements or function literals: a CAS in a nested
// loop belongs to that loop's analysis, and mitigation in a nested scope
// does not pace this one.
func walkLoopBody(loop *ast.ForStmt, visit func(ast.Node)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n != loop {
				return false
			}
		case *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		visit(n)
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, walk)
	}
	ast.Inspect(loop.Body, walk)
}
