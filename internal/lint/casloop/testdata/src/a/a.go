// Package a exercises the casloop analyzer.
package a

import (
	"runtime"
	"sync/atomic"
	"time"

	"obs"
)

func bareLoop(p *atomic.Uint64) {
	for {
		v := p.Load()
		if p.CompareAndSwap(v, v+1) { // want `unbounded CAS retry loop`
			return
		}
	}
}

func condLoop(p *atomic.Uint32) {
	for !p.CompareAndSwap(0, 1) { // want `unbounded CAS retry loop`
	}
}

func legacyLoop(p *uint64) {
	for {
		v := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, v, v+1) { // want `unbounded CAS retry loop`
			return
		}
	}
}

// A three-clause for is considered bounded.
func boundedLoop(p *atomic.Uint64) bool {
	for i := 0; i < 8; i++ {
		v := p.Load()
		if p.CompareAndSwap(v, v+1) {
			return true
		}
	}
	return false
}

func goschedLoop(p *atomic.Uint64) {
	for {
		v := p.Load()
		if p.CompareAndSwap(v, v+1) {
			return
		}
		runtime.Gosched()
	}
}

func sleepLoop(p *atomic.Uint64) {
	for {
		v := p.Load()
		if p.CompareAndSwap(v, v+1) {
			return
		}
		time.Sleep(time.Microsecond)
	}
}

func spinWait() {}

func spinLoop(p *atomic.Uint64) {
	for {
		v := p.Load()
		if p.CompareAndSwap(v, v+1) {
			return
		}
		spinWait()
	}
}

func telemetryLoop(p *atomic.Uint64, r obs.Recorder) {
	for {
		v := p.Load()
		if p.CompareAndSwap(v, v+1) {
			return
		}
		r.Inc(1)
	}
}

// The CAS belongs to the innermost loop: the outer loop's telemetry
// does not pace the inner one.
func nestedLoop(p *atomic.Uint64, r obs.Recorder) {
	for {
		r.Inc(1)
		for {
			v := p.Load()
			if p.CompareAndSwap(v, v+1) { // want `unbounded CAS retry loop`
				return
			}
		}
	}
}

func suppressedLoop(p *atomic.Uint64) {
	for {
		v := p.Load()
		//lint:ignore casloop monotonic helping loop, failure implies progress
		if p.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// A CAS outside any loop is fine.
func single(p *atomic.Uint64) bool { return p.CompareAndSwap(0, 1) }

// Loops without CAS are not candidates.
func plainSpin(p *atomic.Uint64) {
	for p.Load() == 0 {
	}
}
