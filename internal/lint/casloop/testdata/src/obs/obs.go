// Package obs is a stand-in for repro/internal/obs: casloop recognizes
// Inc/Add/Observe calls on any package named obs as CAS accounting.
package obs

type Counter uint8

type Recorder interface {
	Inc(c Counter)
	Add(c Counter, d uint64)
	Observe(s Counter, v uint64)
}
