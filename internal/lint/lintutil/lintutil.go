// Package lintutil holds the type- and AST-query helpers shared by the
// repro/internal/lint analyzers: resolving call targets, classifying
// sync/atomic operations, mapping selector expressions to struct fields,
// finding //lf:* field annotations, and computing struct layouts without
// tripping over generic type parameters.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CacheLine is the cache-line granularity padcheck enforces. 64 bytes
// matches every platform this repository targets (and the paper's §4.3
// measurements).
const CacheLine = 64

// Callee resolves the function or method a call statically invokes, or
// nil (indirect call through a function value, type conversion, ...).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// LegacyAtomic reports whether fn is one of the package-level sync/atomic
// functions, returning the operation ("Load", "Store", "Add", "Swap",
// "CompareAndSwap") and the operand bit width (32, 64, or 0 for
// word-sized Uintptr/Pointer).
func LegacyAtomic(fn *types.Func) (op string, width int, ok bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", 0, false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", 0, false // method on a typed atomic, not a legacy call
	}
	name := fn.Name()
	for _, p := range []string{"CompareAndSwap", "Load", "Store", "Swap", "Add", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			suffix := strings.TrimPrefix(name, p)
			switch suffix {
			case "Int32", "Uint32":
				return p, 32, true
			case "Int64", "Uint64":
				return p, 64, true
			case "Uintptr", "Pointer":
				return p, 0, true
			}
			return "", 0, false
		}
	}
	return "", 0, false
}

// IsTypedAtomic reports whether t (after unwrapping aliases) is one of
// the typed atomics of sync/atomic: Bool, Int32, Int64, Uint32, Uint64,
// Uintptr, Pointer[T], or Value. These carry their own alignment and
// no-copy guarantees.
func IsTypedAtomic(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

// FieldAddrArg interprets expr (a call argument) as &x.f and returns the
// struct field f denotes, the selector, and the type of x (pointers
// removed), or ok=false.
func FieldAddrArg(info *types.Info, expr ast.Expr) (field *types.Var, sel *ast.SelectorExpr, recv types.Type, ok bool) {
	un, isUnary := ast.Unparen(expr).(*ast.UnaryExpr)
	if !isUnary || un.Op != token.AND {
		return nil, nil, nil, false
	}
	return FieldSel(info, un.X)
}

// FieldSel interprets expr as a selection x.f of a struct field and
// returns the field, the selector, and x's type (pointers removed).
func FieldSel(info *types.Info, expr ast.Expr) (field *types.Var, sel *ast.SelectorExpr, recv types.Type, ok bool) {
	s, isSel := ast.Unparen(expr).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, nil, false
	}
	selection, found := info.Selections[s]
	if !found || selection.Kind() != types.FieldVal {
		return nil, nil, nil, false
	}
	f, isVar := selection.Obj().(*types.Var)
	if !isVar || !f.IsField() {
		return nil, nil, nil, false
	}
	return f, s, Deref(selection.Recv()), true
}

// Deref removes one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// HasDirective reports whether any comment in the groups is the given
// //-directive (exact prefix match, e.g. "//lf:contended").
func HasDirective(directive string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := c.Text
			if text == directive ||
				strings.HasPrefix(text, directive+" ") ||
				strings.HasPrefix(text, directive+"\t") {
				return true
			}
		}
	}
	return false
}

// SizeInfo computes sizes/offsets under a given platform size model,
// refusing (ok=false) when the answer depends on an uninstantiated type
// parameter — generic structs are handled as long as the type parameter
// only appears behind pointers, slices, maps, channels or functions.
type SizeInfo struct {
	Sizes types.Sizes
}

// Sizeof returns t's size, with ok=false if it depends on a type param.
func (s SizeInfo) Sizeof(t types.Type) (int64, bool) {
	if !sizeKnown(t, nil) {
		return 0, false
	}
	return s.Sizes.Sizeof(t), true
}

// FieldOffset returns the byte offset of field index i within struct st.
func (s SizeInfo) FieldOffset(st *types.Struct, i int) (int64, bool) {
	// Only the prefix up to and including i determines the offset; later
	// fields must not be touched (they may be type-parameter sized).
	fields := make([]*types.Var, i+1)
	for j := range fields {
		f := st.Field(j)
		if !sizeKnown(f.Type(), nil) {
			return 0, false
		}
		fields[j] = f
	}
	return s.Sizes.Offsetsof(fields)[i], true
}

// sizeKnown reports whether t's size is independent of type parameters.
func sizeKnown(t types.Type, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	// A type parameter's Underlying is its constraint interface, so it
	// must be caught before the underlying switch.
	if _, isParam := t.(*types.TypeParam); isParam {
		return false
	}
	if seen[t] {
		return true // cycles go through pointers; treat as known
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !sizeKnown(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || sizeKnown(u.Elem(), seen)
	case *types.Basic, *types.Pointer, *types.Slice, *types.Map,
		*types.Chan, *types.Signature, *types.Interface:
		return true
	default:
		return false
	}
}
