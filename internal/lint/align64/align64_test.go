package align64_test

import (
	"testing"

	"repro/internal/lint/align64"
	"repro/internal/lint/linttest"
)

func TestAlign64(t *testing.T) {
	linttest.Run(t, "testdata", align64.Analyzer, "a")
}
