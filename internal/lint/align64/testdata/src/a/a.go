// Package a exercises the align64 analyzer.
package a

import "sync/atomic"

type good struct {
	count uint64 // first word: 8-byte aligned even on 386
	flags uint32
}

type bad struct {
	flags uint32
	count uint64
}

// Even an 8-byte offset is unsafe: on 386 the struct itself is only
// guaranteed 4-byte alignment, so only the first word qualifies.
type padded struct {
	flags uint32
	_     uint32
	count uint64
}

type outer struct {
	pre uint32
	in  inner
}

type inner struct {
	n uint64
}

func f(g *good, b *bad, p *padded, o *outer) {
	atomic.AddUint64(&g.count, 1)
	atomic.AddUint64(&b.count, 1) // want `64-bit atomic access to field count at offset 4`
	atomic.LoadUint64(&p.count)   // want `64-bit atomic access to field count at offset 8`
	atomic.AddUint64(&o.in.n, 1)  // want `64-bit atomic access to field n at offset 4`
}

type generic[T any] struct {
	v T
	n uint64
}

func g[T any](h *generic[T]) {
	atomic.AddUint64(&h.n, 1) // want `offset depends on a type parameter`
}

// A type parameter behind a pointer has a known size: no finding.
type genericOK[T any] struct {
	n uint64
	p *T
}

func h[T any](x *genericOK[T]) {
	atomic.AddUint64(&x.n, 1)
}

// Typed atomics carry their own alignment guarantee: never reported.
type typed struct {
	flags uint32
	count atomic.Uint64
}

func useTyped(t *typed) { t.count.Add(1) }

// 32-bit atomics have no 8-byte requirement.
func ok32(b *bad) { atomic.AddUint32(&b.flags, 1) }

type suppressed struct {
	flags uint32
	count uint64
}

func sup(s *suppressed) {
	//lint:ignore align64 this struct is only ever embedded 8-aligned
	atomic.AddUint64(&s.count, 1)
}
