// Package align64 defines an Analyzer that flags 64-bit fields used with
// legacy sync/atomic operations whose 8-byte alignment is not guaranteed
// on 32-bit platforms.
//
// # Analyzer align64
//
// align64: report 64-bit atomic fields that may be misaligned on 32-bit
// platforms.
//
// On 386, arm and other 32-bit ports, int64/uint64 fields are only
// 4-byte aligned, and the 64-bit sync/atomic functions panic on a
// misaligned address. The runtime guarantees 8-byte alignment only for
// the first word of an allocated struct, so a raw 64-bit field operated
// on by atomic.AddUint64 and friends must sit at offset 0 of its struct
// under 32-bit layout rules. The analyzer computes the field's offset
// with GOARCH=386 sizes (including nested selections like x.hdr.count)
// and reports any field that cannot be proven aligned — including fields
// of generic structs whose offset depends on a type parameter.
//
// The preferred fix is migrating the field to atomic.Uint64/atomic.Int64:
// the typed atomics carry a compiler-enforced alignment guarantee on all
// platforms. Reordering the field to the front of the struct also works.
package align64

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags 32-bit-unsafe 64-bit atomic fields.
var Analyzer = &analysis.Analyzer{
	Name: "align64",
	Doc:  "report 64-bit atomic fields not guaranteed 8-byte alignment on 32-bit platforms",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	sizes32 := lintutil.SizeInfo{Sizes: types.SizesFor("gc", "386")}
	reported := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			_, width, isAtomic := lintutil.LegacyAtomic(fn)
			if !isAtomic || width != 64 || len(call.Args) == 0 {
				return true
			}
			field, sel, _, ok := lintutil.FieldAddrArg(pass.TypesInfo, call.Args[0])
			if !ok || reported[field] {
				return true
			}
			off, known := selectionOffset(pass, sizes32, sel)
			switch {
			case !known:
				reported[field] = true
				pass.Reportf(call.Pos(),
					"64-bit atomic access to field %s whose offset depends on a type parameter; cannot guarantee 8-byte alignment on 32-bit platforms, use atomic.Uint64/atomic.Int64 instead",
					field.Name())
			case off != 0:
				reported[field] = true
				pass.Reportf(call.Pos(),
					"64-bit atomic access to field %s at offset %d (GOARCH=386): only offset 0 is guaranteed 8-byte aligned on 32-bit platforms; move the field first or use atomic.Uint64/atomic.Int64",
					field.Name(), off)
			}
			return true
		})
	}
	return nil, nil
}

// selectionOffset computes the byte offset of the field denoted by sel
// within its enclosing allocation, under the given size model. It
// follows the selection's (possibly promoted) field path and then walks
// outward through enclosing x.a.b selector chains, stopping where a
// pointer indirection starts a fresh allocation (whose first word the
// runtime 8-aligns).
func selectionOffset(pass *analysis.Pass, sizes lintutil.SizeInfo, sel *ast.SelectorExpr) (int64, bool) {
	var total int64
	for {
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return 0, false
		}
		recv := selection.Recv()
		t := lintutil.Deref(recv)
		// local is this selection's contribution, relative to the most
		// recent allocation boundary within its field path.
		var local int64
		crossedPointer := false
		for _, idx := range selection.Index() {
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				return 0, false
			}
			off, known := sizes.FieldOffset(st, idx)
			if !known {
				return 0, false
			}
			local += off
			t = st.Field(idx).Type()
			if p, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
				// Promotion through an embedded pointer: alignment
				// restarts at the pointee allocation; offsets selected
				// above the pointer no longer matter.
				t = p.Elem()
				local = 0
				crossedPointer = true
			}
		}
		total += local
		if crossedPointer {
			return total, true
		}
		if _, isPtr := types.Unalias(recv).(*types.Pointer); isPtr {
			return total, true // p.f: offset within *p's allocation
		}
		// x is a struct value; if it is itself a field selection, the
		// allocation extends outward — keep accumulating.
		if outer, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if s := pass.TypesInfo.Selections[outer]; s != nil && s.Kind() == types.FieldVal {
				sel = outer
				continue
			}
		}
		return total, true
	}
}
