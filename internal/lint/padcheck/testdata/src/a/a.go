// Package a exercises the padcheck analyzer (layout under GOARCH=amd64,
// 64-byte cache lines).
package a

import "sync/atomic"

// Properly isolated: each contended field owns its line.
type okQueue struct {
	//lf:contended
	head atomic.Uint64
	_    [56]byte
	//lf:contended
	tail atomic.Uint64
	_    [56]byte
	size int
}

// head (bytes 0-7) and tail (bytes 8-15) share line 0.
type badQueue struct {
	//lf:contended
	head atomic.Uint64 // want `field head \(bytes 0-7\) shares a cache line with field tail \(bytes 8-15\)`
	tail atomic.Uint64
}

// A read-mostly neighbor on the counter's line is exactly the §4.3
// false-sharing pattern.
type badCounter struct {
	//lf:contended
	n    atomic.Uint64 // want `field n \(bytes 0-7\) shares a cache line with field name`
	_    [48]byte
	name string
}

// Unannotated structs are never checked.
type unannotated struct {
	head atomic.Uint64
	tail atomic.Uint64
}

// A contended field spanning multiple lines must own all of them.
type spanning struct {
	//lf:contended
	counters [15]atomic.Uint64 // want `field counters \(bytes 0-119\) shares a cache line with field trailing \(bytes 120-127\)`
	trailing atomic.Uint64
	_        [64]byte
}

type zeroSized struct {
	//lf:contended
	marker struct{} // want `field marker is zero-sized`
	_      [64]byte
}

// Layouts depending on a type parameter cannot be verified.
type generic[T any] struct {
	//lf:contended
	counter atomic.Uint64 // want `size of neighboring field v depends on a type parameter`
	v       T
}

// A type parameter behind a pointer is fine.
type genericOK[T any] struct {
	//lf:contended
	head *T
	_    [56]byte
	n    int
}

type suppressed struct {
	//lf:contended
	//lint:ignore padcheck packed deliberately, cold struct kept for layout docs
	head atomic.Uint64
	tail atomic.Uint64
}
