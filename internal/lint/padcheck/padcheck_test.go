package padcheck_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/padcheck"
)

func TestPadcheck(t *testing.T) {
	linttest.Run(t, "testdata", padcheck.Analyzer, "a")
}
