// Package padcheck defines an Analyzer that verifies //lf:contended
// field annotations: a contended field must own its cache line(s).
//
// # Analyzer padcheck
//
// padcheck: verify that //lf:contended fields are isolated on their own
// cache line.
//
// The paper's §4.3 shows that false sharing between a queue's contended
// words (head, tail, extraction counters) and anything else — including
// each other — costs more than the atomic operations themselves: every
// CAS or FAA invalidates the line in all other caches, so a read-mostly
// neighbor field turns into a coherence-miss generator. Hot fields are
// annotated in the source:
//
//	type Queue[T any] struct {
//		//lf:contended
//		head atomic.Pointer[node[T]]
//		_    [56]byte
//		//lf:contended
//		tail atomic.Pointer[node[T]]
//		...
//	}
//
// and the analyzer computes the struct layout (64-byte lines, the
// target's size model) and reports any annotated field that shares a
// cache line with a non-padding field. Padding fields are blank ("_")
// fields. Zero-sized annotated fields and fields whose layout depends on
// an uninstantiated type parameter are reported as unverifiable: keep
// type-parameter-sized fields (plain T cells) out of contended structs,
// or suppress with //lint:ignore padcheck <reason>.
package padcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

const directive = "//lf:contended"

// Analyzer verifies //lf:contended cache-line isolation annotations.
var Analyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc:  "verify that //lf:contended struct fields are isolated on their own cache line",
	Run:  run,
}

type fieldInfo struct {
	name      string
	node      *ast.Field
	contended bool
	padding   bool // blank field, inert layout filler
}

func run(pass *analysis.Pass) (interface{}, error) {
	sizes := lintutil.SizeInfo{Sizes: pass.TypesSizes}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			checkStruct(pass, sizes, st)
			return true
		})
	}
	return nil, nil
}

func checkStruct(pass *analysis.Pass, sizes lintutil.SizeInfo, st *ast.StructType) {
	// Expand the AST field list to one entry per types.Struct field.
	var fields []fieldInfo
	anyContended := false
	for _, f := range st.Fields.List {
		contended := lintutil.HasDirective(directive, f.Doc, f.Comment)
		anyContended = anyContended || contended
		names := f.Names
		if len(names) == 0 { // embedded field
			fields = append(fields, fieldInfo{name: embeddedName(f.Type), node: f, contended: contended})
			continue
		}
		for _, name := range names {
			fields = append(fields, fieldInfo{
				name:      name.Name,
				node:      f,
				contended: contended,
				padding:   name.Name == "_",
			})
		}
	}
	if !anyContended {
		return
	}
	tv, ok := pass.TypesInfo.Types[st]
	if !ok {
		return
	}
	tst, ok := tv.Type.Underlying().(*types.Struct)
	if !ok || tst.NumFields() != len(fields) {
		return
	}
	// Compute each field's byte extent; unknown layouts fail loudly.
	type extent struct {
		lo, hi int64 // [lo, hi), hi==lo for zero-sized
		known  bool
	}
	extents := make([]extent, len(fields))
	for i := range fields {
		off, okOff := sizes.FieldOffset(tst, i)
		sz, okSz := sizes.Sizeof(tst.Field(i).Type())
		extents[i] = extent{off, off + sz, okOff && okSz}
	}
	for i, f := range fields {
		if !f.contended || f.padding {
			continue
		}
		e := extents[i]
		if !e.known {
			pass.Reportf(f.node.Pos(),
				"cannot verify %s field %s: struct layout depends on a type parameter",
				directive, f.name)
			continue
		}
		if e.hi == e.lo {
			pass.Reportf(f.node.Pos(), "%s field %s is zero-sized", directive, f.name)
			continue
		}
		loLine, hiLine := e.lo/lintutil.CacheLine, (e.hi-1)/lintutil.CacheLine
		for j, g := range fields {
			if j == i || g.padding {
				continue
			}
			ge := extents[j]
			if !ge.known {
				pass.Reportf(f.node.Pos(),
					"cannot verify %s field %s: size of neighboring field %s depends on a type parameter",
					directive, f.name, g.name)
				break
			}
			if ge.hi == ge.lo {
				continue // zero-sized neighbor occupies no line
			}
			gLo, gHi := ge.lo/lintutil.CacheLine, (ge.hi-1)/lintutil.CacheLine
			if gHi < loLine || gLo > hiLine {
				continue
			}
			pass.Reportf(f.node.Pos(),
				"%s field %s (bytes %d-%d) shares a cache line with field %s (bytes %d-%d); isolate it with _ [N]byte padding",
				directive, f.name, e.lo, e.hi-1, g.name, ge.lo, ge.hi-1)
		}
	}
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(t.X)
	default:
		return "?"
	}
}
