// Package a uses the deprecated repro surface from outside the defining
// packages; every use must be flagged unless suppressed.
package a

import (
	"time"

	"repro/basket"
	"repro/internal/harness"
	"repro/internal/simqueue"
	"repro/queue/registry"
	"repro/queue/sbq"
)

func figures() {
	o := harness.Options{}
	_ = harness.RunFig1(o)                       // want `repro/internal/harness\.RunFig1 is deprecated: use Run\(Fig1\{\}, o\)\.Results`
	_ = harness.RunEnqueueOnly(nil, o)           // want `RunEnqueueOnly is deprecated`
	_ = harness.RunDequeueOnly(nil, o)           // want `RunDequeueOnly is deprecated`
	_ = harness.RunMixed(nil, o)                 // want `RunMixed is deprecated`
	_ = harness.RunDelaySweep(nil, nil, o)       // want `RunDelaySweep is deprecated`
	_ = harness.RunBasketSweep(nil, 8, o)        // want `RunBasketSweep is deprecated`
	_ = harness.RunFixAblation(o)                // want `RunFixAblation is deprecated`
	_ = harness.RunTelemetry(nil, o)             // want `RunTelemetry is deprecated`
	_ = harness.RunTrace(harness.Variant(""), o) // want `RunTrace is deprecated`
	_ = harness.RunTraceTxCAS(o)                 // want `RunTraceTxCAS is deprecated`
}

func queues() {
	_ = sbq.NewDelayedCAS[uint64](2, time.Nanosecond) // want `repro/queue/sbq\.NewDelayedCAS is deprecated: use New with WithEnqueuers and WithAppendDelay`
	_ = sbq.NewWithOptions[uint64](2, 0, nil)         // want `NewWithOptions is deprecated`
	_ = sbq.WithAppendPolicy(nil)                     // want `repro/queue/sbq\.WithAppendPolicy is deprecated: use WithTxCAS\(txcas\.WithPolicy\(p\), txcas\.WithWindow\(0\)\)`
	_ = basket.NewScalable[int](4, 2)                 // want `NewScalable is deprecated`
	_ = basket.NewPartitioned[int](4, 4, 2)           // want `NewPartitioned is deprecated`

	// The modern forms draw no diagnostic.
	_ = sbq.New[uint64]()
	_ = sbq.WithTxCAS()
	_ = basket.New[int]()

	// A referenced (not called) wrapper is still a use.
	f := harness.RunFig1 // want `RunFig1 is deprecated`
	_ = f

	// The simulated track's executor-slice appends migrated to the shared
	// primitive surface.
	_ = simqueue.TxCASAppend(nil)          // want `repro/internal/simqueue\.TxCASAppend is deprecated: use PrimitiveAppend with a core\.Bound`
	_, _ = simqueue.NewTxCASAppend(2, nil) // want `repro/internal/simqueue\.NewTxCASAppend is deprecated: use PrimitiveAppend\(core\.Bind\(threads, opt\)\)`
	_ = simqueue.PrimitiveAppend(nil)      // the modern form draws no diagnostic

	//lint:ignore deprecated exercising the legacy surface on purpose
	_ = basket.NewScalable[int](4, 2)
}

func views() {
	inst := registry.Shared(7) // want `repro/queue/registry\.Shared is deprecated: use Batched\(queue\.AsBatch\(q\)\)`
	_ = inst.Producer(0)       // want `repro/queue/registry\.Instance\.Producer is deprecated: use ProducerView`
	_ = inst.Consumer(0)       // want `Instance\.Consumer is deprecated`

	// The modern method surface draws no diagnostic.
	inst = registry.Batched(7)
	_ = inst.ProducerView(0)
	_ = inst.ConsumerView(0)

	// A method value (not called) is still a use.
	f := inst.Producer // want `Instance\.Producer is deprecated`
	_ = f
}
