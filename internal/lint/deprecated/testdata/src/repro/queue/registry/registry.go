// Package registry is a stub of repro/queue/registry: the deprecated
// view methods and Shared constructor plus the batch-capable surface they
// delegate to.
package registry

type Instance struct {
	producer func(i int) int
	consumer func(i int) int
}

func Views(producer, consumer func(i int) int) Instance {
	return Instance{producer: producer, consumer: consumer}
}

func (in Instance) ProducerView(i int) int { return in.producer(i) }

func (in Instance) ConsumerView(i int) int { return in.consumer(i) }

// Deprecated: use ProducerView.
func (in Instance) Producer(i int) int { return in.producer(i) }

// Deprecated: use ConsumerView.
func (in Instance) Consumer(i int) int { return in.consumer(i) }

func Batched(q int) Instance {
	view := func(int) int { return q }
	return Views(view, view)
}

// Deprecated: use Batched.
func Shared(q int) Instance { return Batched(q) }

// Defining-package delegation stays legal (the wrapper bodies live here).
func selfUse() int {
	inst := Shared(7)
	return inst.Producer(0) + inst.Consumer(0)
}
