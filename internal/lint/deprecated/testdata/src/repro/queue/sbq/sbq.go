// Package sbq is a stub of repro/queue/sbq: the deprecated positional
// constructors plus the options form they delegate to.
package sbq

import (
	"time"

	"repro/basket"
)

type Queue[T any] struct{}

type Option func()

func New[T any](opts ...Option) *Queue[T] { return &Queue[T]{} }

func NewDelayedCAS[T any](enqueuers int, delay time.Duration) *Queue[T] { return New[T]() }

func NewWithOptions[T any](enqueuers int, delay time.Duration, nb func() basket.Basket[T]) *Queue[T] {
	return New[T]()
}

func WithTxCAS(opts ...any) Option { return nil }

func WithAppendPolicy(p any) Option { return WithTxCAS() }
