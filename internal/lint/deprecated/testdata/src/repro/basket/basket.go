// Package basket is a stub of repro/basket: the deprecated positional
// constructors plus the options form they delegate to.
package basket

type Basket[T any] interface{ Put(T) bool }

type Option func()

type Scalable[T any] struct{}

func (*Scalable[T]) Put(T) bool { return true }

type Partitioned[T any] struct{}

func (*Partitioned[T]) Put(T) bool { return true }

func New[T any](opts ...Option) Basket[T] { return &Scalable[T]{} }

func NewScalable[T any](capacity, bound int) *Scalable[T] { return &Scalable[T]{} }

func NewPartitioned[T any](capacity, bound, k int) *Partitioned[T] { return &Partitioned[T]{} }

// Defining-package delegation stays legal (basket.New routes here).
func build() Basket[int] { return NewPartitioned[int](4, 4, 2) }
