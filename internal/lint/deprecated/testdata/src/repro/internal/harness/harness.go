// Package harness is a stub of repro/internal/harness: the deprecated
// wrapper surface plus just enough types to use it.
package harness

type Options struct{}

type Result struct{}

type FixResult struct{}

type TelemetrySnapshot struct{}

type Trace struct{}

type Variant string

func RunFig1(o Options) []Result { return nil }

func RunEnqueueOnly(v []Variant, o Options) []Result { return nil }

func RunDequeueOnly(v []Variant, o Options) []Result { return nil }

func RunMixed(v []Variant, o Options) []Result { return nil }

func RunDelaySweep(delaysNS []float64, threadCounts []int, o Options) []Result { return nil }

func RunBasketSweep(basketSizes []int, threads int, o Options) []Result { return nil }

func RunFixAblation(o Options) []FixResult { return nil }

func RunTelemetry(v []Variant, o Options) []TelemetrySnapshot { return nil }

func RunTrace(v Variant, o Options) *Trace { return nil }

func RunTraceTxCAS(o Options) *Trace { return nil }

// The defining package may keep calling its own wrappers.
func all(o Options) []Result { return RunFig1(o) }
