// Package simqueue is a stub of repro/internal/simqueue: the deprecated
// executor-slice append constructors plus the primitive form they
// delegate to. The self-uses below must draw no diagnostic (defining
// package exemption).
package simqueue

type AppendFunc func()

type CAS struct{}

func PrimitiveAppend(prim any) AppendFunc { return nil }

func TxCASAppend(casers []*CAS) AppendFunc { return nil }

func NewTxCASAppend(threads int, opt any) (AppendFunc, []*CAS) {
	return TxCASAppend(nil), nil
}
