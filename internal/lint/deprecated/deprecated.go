// Package deprecated defines an Analyzer that flags in-repo calls to this
// repository's own deprecated entry points.
//
// # Analyzer deprecated
//
// deprecated: report uses of superseded repro APIs outside their home
// package.
//
// The repository keeps old entry points alive as thin wrappers so
// downstream users migrate on their own schedule: the harness's
// per-figure Run* functions now delegate to harness.Run over typed
// workloads, and the positional queue/basket constructors delegate to the
// variadic options form. First-party code gets no such grace period — a
// wrapper that the repo itself still calls never finishes migrating, and
// the wrappers' byte-for-byte conformance tests only stay meaningful
// while the wrappers stay leaf nodes. The analyzer keeps a curated table
// of deprecated symbols (asserted against the source's Deprecated: doc
// markers by its tests) and flags every use outside the symbol's defining
// package and that package's own tests, where the wrapper bodies and
// their direct coverage legitimately live.
//
// Suppress a finding (e.g. an intentional compatibility check) with
//
//	//lint:ignore deprecated exercising the legacy surface
package deprecated

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags in-repo uses of deprecated repro APIs.
var Analyzer = &analysis.Analyzer{
	Name: "deprecated",
	Doc:  "report uses of superseded repro APIs outside their home package",
	Run:  run,
}

// Symbol is one deprecated entry point: a package-level function — or a
// method, written "Type.Method" — and the replacement to name in the
// diagnostic.
type Symbol struct {
	Pkg  string // defining package import path
	Name string // function name, or "Type.Method" for methods
	Use  string // replacement, phrased to follow "use "
}

// Table lists every deprecated symbol the analyzer knows. Tests assert
// each entry resolves to a function whose doc carries the standard
// "Deprecated:" marker, so the table cannot drift from the source. (The
// stdlib-only analysis core has no export-data Facts, so the table is
// curated rather than derived.)
var Table = []Symbol{
	{"repro/internal/harness", "RunFig1", "Run(Fig1{}, o).Results"},
	{"repro/internal/harness", "RunEnqueueOnly", "Run(EnqueueOnly{Variants: v}, o).Results"},
	{"repro/internal/harness", "RunDequeueOnly", "Run(DequeueOnly{Variants: v}, o).Results"},
	{"repro/internal/harness", "RunMixed", "Run(Mixed{Variants: v}, o).Results"},
	{"repro/internal/harness", "RunDelaySweep", "Run(DelaySweep{...}, o).Results"},
	{"repro/internal/harness", "RunBasketSweep", "Run(BasketSweep{...}, o).Results"},
	{"repro/internal/harness", "RunFixAblation", "Run(FixAblation{}, o).Fix"},
	{"repro/internal/harness", "RunTelemetry", "Run(Telemetry{Variants: v}, o).Telemetry"},
	{"repro/internal/harness", "RunTrace", "Run(TraceQueue{Variant: v}, o).Trace"},
	{"repro/internal/harness", "RunTraceTxCAS", "Run(TraceTxCAS{}, o).Trace"},
	{"repro/queue/sbq", "NewDelayedCAS", "New with WithEnqueuers and WithAppendDelay"},
	{"repro/queue/sbq", "NewWithOptions", "New with WithEnqueuers, WithAppendDelay and WithBasket"},
	{"repro/queue/sbq", "WithAppendPolicy", "WithTxCAS(txcas.WithPolicy(p), txcas.WithWindow(0))"},
	{"repro/internal/simqueue", "TxCASAppend", "PrimitiveAppend with a core.Bound"},
	{"repro/internal/simqueue", "NewTxCASAppend", "PrimitiveAppend(core.Bind(threads, opt))"},
	{"repro/basket", "NewScalable", "New with WithCapacity and WithBound"},
	{"repro/basket", "NewPartitioned", "New with WithCapacity, WithBound and WithPartitions"},
	{"repro/queue/registry", "Shared", "Batched(queue.AsBatch(q))"},
	{"repro/queue/registry", "Instance.Producer", "ProducerView"},
	{"repro/queue/registry", "Instance.Consumer", "ConsumerView"},
}

func run(pass *analysis.Pass) (interface{}, error) {
	index := make(map[string]Symbol, len(Table))
	for _, s := range Table {
		index[s.Pkg+"."+s.Name] = s
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sym, ok := index[fn.Pkg().Path()+"."+symbolName(fn)]
			if !ok || exempt(pass.Pkg.Path(), sym.Pkg) {
				return true
			}
			pass.Reportf(id.Pos(), "%s.%s is deprecated: use %s", sym.Pkg, sym.Name, sym.Use)
			return true
		})
	}
	return nil, nil
}

// symbolName renders fn the way Table spells it: the bare name for
// package-level functions, "Type.Method" for methods (qualified by the
// receiver's type name so a method and a function sharing a name — or two
// types' same-named methods — never collide in the table).
func symbolName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fn.Name() // interface methods and other receivers stay unqualified
	}
	return named.Obj().Name() + "." + fn.Name()
}

// exempt reports whether a use from the pass's package of a symbol
// defined in defPkg is allowed: the defining package itself, its internal
// test variant, and its external _test package (that is where the wrapper
// bodies and their direct coverage live). go vet presents test variants
// as `path [path.test]` and external test packages as `path_test`.
func exempt(passPkg, defPkg string) bool {
	if i := strings.Index(passPkg, " ["); i >= 0 {
		passPkg = passPkg[:i]
	}
	passPkg = strings.TrimSuffix(passPkg, "_test")
	return passPkg == defPkg
}
