package deprecated

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/linttest"
)

func TestDeprecated(t *testing.T) {
	// Package a uses the surface from outside; the stub packages check the
	// defining-package exemption (they contain self-uses and no // want).
	linttest.Run(t, "testdata", Analyzer, "a", "repro/internal/harness", "repro/internal/simqueue", "repro/basket", "repro/queue/registry")
}

func TestExempt(t *testing.T) {
	cases := []struct {
		pass, def string
		want      bool
	}{
		{"repro/internal/harness", "repro/internal/harness", true},
		{"repro/internal/harness [repro/internal/harness.test]", "repro/internal/harness", true},
		{"repro/queue/sbq_test", "repro/queue/sbq", true},
		{"repro/queue/sbq_test [repro/queue/sbq.test]", "repro/queue/sbq", true},
		{"repro/queue/sbq", "repro/basket", false},
		{"repro/queue/sbq_test", "repro/basket", false},
		{"repro", "repro/internal/harness", false},
	}
	for _, c := range cases {
		if got := exempt(c.pass, c.def); got != c.want {
			t.Errorf("exempt(%q, %q) = %v, want %v", c.pass, c.def, got, c.want)
		}
	}
}

// TestTableMatchesSource asserts every Table entry names a real exported
// function or method in this repository whose doc comment carries the
// standard "Deprecated:" marker — the curated table cannot drift from the
// source. Method entries are spelled "Type.Method" and matched against
// declarations with the corresponding receiver type.
func TestTableMatchesSource(t *testing.T) {
	const module = "repro"
	repoRoot := filepath.Join("..", "..", "..")
	fset := token.NewFileSet()
	for _, sym := range Table {
		rel := strings.TrimPrefix(sym.Pkg, module+"/")
		if rel == sym.Pkg {
			t.Errorf("%s.%s: package not under module %s", sym.Pkg, sym.Name, module)
			continue
		}
		recv, name, isMethod := strings.Cut(sym.Name, ".")
		if !isMethod {
			name, recv = recv, ""
		}
		dir := filepath.Join(repoRoot, filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("%s.%s: %v", sym.Pkg, sym.Name, err)
			continue
		}
		found := false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", e.Name(), err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != name || receiverName(fd) != recv {
					continue
				}
				found = true
				if fd.Doc == nil || !strings.Contains(fd.Doc.Text(), "Deprecated:") {
					t.Errorf("%s.%s is in the deprecated table but its doc has no Deprecated: marker", sym.Pkg, sym.Name)
				}
			}
		}
		if !found {
			t.Errorf("%s.%s is in the deprecated table but not in the source", sym.Pkg, sym.Name)
		}
	}
}

// receiverName returns the type name of fd's receiver ("" for functions),
// unwrapping pointers and generic instantiations the way symbolName does
// for type-checked objects.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
