package hotpath_test

import (
	"go/ast"
	"go/types"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/linttest"
)

func TestHotpathDiagnostics(t *testing.T) {
	linttest.Run(t, "testdata", hotpath.Analyzer, "a")
}

// TestHotpathResult checks the exported reachability facts directly: a
// probe analyzer requiring hotpath reports every hot function, and the
// testdata file asserts the expected set via // want lines.
func TestHotpathResult(t *testing.T) {
	probe := &analysis.Analyzer{
		Name:     "hotprobe",
		Doc:      "report every hot-path-reachable function (test only)",
		Requires: []*analysis.Analyzer{hotpath.Analyzer},
		Run: func(pass *analysis.Pass) (interface{}, error) {
			hot := pass.ResultOf[hotpath.Analyzer].(*hotpath.Result)
			for _, file := range pass.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					if seed, ok := hot.Hot(fn); ok {
						pass.Reportf(fd.Name.Pos(), "hot via %s", seed)
					}
				}
			}
			for lit, seed := range hot.Lits {
				pass.Reportf(lit.Pos(), "hot literal via %s", seed)
			}
			return nil, nil
		},
	}
	linttest.Run(t, "testdata", probe, "probe")
}
