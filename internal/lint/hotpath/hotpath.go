// Package hotpath computes which functions of a package can execute on
// an operation hot path, seeded by //lf:hotpath annotations.
//
// The paper's cost model (§3) prices an operation by its shared-word
// atomics; anything else on the path — in Go, above all a heap
// allocation — dilutes the claimed scaling. The hotpath analyzer is the
// fact layer of that discipline: it produces no findings of its own
// (beyond directive hygiene) but exports a Result mapping every
// hot-path-reachable function to the seed it is reachable from, which
// the allocfree analyzer consumes through Pass.ResultOf.
//
// Seeding and propagation:
//
//   - A //lf:hotpath line in a function declaration's doc comment seeds
//     that function (Enqueue/Dequeue and friends).
//   - A //lf:hotpath comment on the same line as a func literal's func
//     keyword, or on the line directly above it, seeds the literal —
//     the escape hatch for hot code reached only through stored
//     function values (e.g. sbq's try_append variants, built once in
//     New and invoked per enqueue).
//   - Hotness propagates through statically-resolvable calls to
//     functions declared in the same package, and into func literals
//     nested in hot bodies. Cross-package propagation is deliberately
//     out of scope: each package annotates its own hot entry points, so
//     a pass never needs facts from outside its unit.
//   - A //lf:coldpath line in a declaration's doc comment stops
//     propagation into that function: the annotation for intentional
//     slow paths (pool-miss refill, error reporting) called from hot
//     code. Using both directives on one declaration is an error.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

const (
	hotDirective  = "//lf:hotpath"
	coldDirective = "//lf:coldpath"
)

// Analyzer seeds hot-path reachability from //lf:hotpath annotations and
// propagates it through the package call graph.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "compute //lf:hotpath-seeded hot-path reachability (fact layer for allocfree)",
	Run:  run,
}

// Result maps each hot-path-reachable function body to a description of
// the seed it is reachable from. Funcs holds declared functions and
// methods (keyed by their generic origin object), Lits holds function
// literals that are themselves seeds or appear inside hot bodies.
type Result struct {
	Funcs map[*types.Func]string
	Lits  map[*ast.FuncLit]string
}

// Hot reports whether fn is hot-path reachable, and from which seed.
func (r *Result) Hot(fn *types.Func) (seed string, ok bool) {
	if fn == nil {
		return "", false
	}
	seed, ok = r.Funcs[fn.Origin()]
	return seed, ok
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := &Result{
		Funcs: map[*types.Func]string{},
		Lits:  map[*ast.FuncLit]string{},
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	cold := map[*types.Func]bool{}
	consumed := map[*ast.Comment]bool{}
	var seedFuncs []*types.Func

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			hc := directive(fd.Doc, hotDirective)
			cc := directive(fd.Doc, coldDirective)
			if hc != nil {
				consumed[hc] = true
			}
			if cc != nil {
				consumed[cc] = true
			}
			switch {
			case hc != nil && cc != nil:
				pass.Reportf(hc.Pos(), "%s is annotated both //lf:hotpath and //lf:coldpath", funcName(fn))
			case hc != nil:
				res.Funcs[fn] = funcName(fn)
				seedFuncs = append(seedFuncs, fn)
			case cc != nil:
				cold[fn] = true
			}
		}
	}

	// Loose //lf:hotpath comments (outside declaration docs) seed the
	// func literal starting on the same or the following line.
	type lineKey struct {
		file string
		line int
	}
	loose := map[lineKey]*ast.Comment{}
	for _, file := range pass.Files {
		for _, g := range file.Comments {
			for _, c := range g.List {
				if consumed[c] || !isDirective(c.Text, hotDirective) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				loose[lineKey{p.Filename, p.Line}] = c
			}
		}
	}
	var seedLits []*ast.FuncLit
	if len(loose) > 0 {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				p := pass.Fset.Position(lit.Pos())
				for _, line := range []int{p.Line, p.Line - 1} {
					c, ok := loose[lineKey{p.Filename, line}]
					if !ok {
						continue
					}
					delete(loose, lineKey{p.Filename, line})
					consumed[c] = true
					res.Lits[lit] = fmt.Sprintf("func literal at %s:%d", filepath.Base(p.Filename), p.Line)
					seedLits = append(seedLits, lit)
					break
				}
				return true
			})
		}
	}
	for _, c := range loose {
		pass.Reportf(c.Pos(), "//lf:hotpath directive is not attached to a function declaration or literal")
	}

	// Propagate: a worklist of hot bodies; every statically-resolvable
	// in-package callee and every nested func literal becomes hot with
	// the same seed. Nested literals are cut out of the enclosing walk
	// (return false) so each body is visited exactly once.
	type work struct {
		body *ast.BlockStmt
		seed string
	}
	var queue []work
	for _, fn := range seedFuncs {
		if d := decls[fn]; d.Body != nil {
			queue = append(queue, work{d.Body, res.Funcs[fn]})
		}
	}
	for _, lit := range seedLits {
		queue = append(queue, work{lit.Body, res.Lits[lit]})
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		ast.Inspect(w.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if _, seen := res.Lits[n]; !seen {
					res.Lits[n] = w.seed
					queue = append(queue, work{n.Body, w.seed})
				}
				return false
			case *ast.CallExpr:
				fn := lintutil.Callee(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				fn = fn.Origin()
				if cold[fn] {
					return true
				}
				d, ok := decls[fn]
				if !ok || d.Body == nil {
					return true
				}
				if _, seen := res.Funcs[fn]; !seen {
					res.Funcs[fn] = w.seed
					queue = append(queue, work{d.Body, w.seed})
				}
			}
			return true
		})
	}
	return res, nil
}

// directive returns the comment in g carrying the given //-directive.
func directive(g *ast.CommentGroup, d string) *ast.Comment {
	if g == nil {
		return nil
	}
	for _, c := range g.List {
		if isDirective(c.Text, d) {
			return c
		}
	}
	return nil
}

func isDirective(text, d string) bool {
	return text == d ||
		strings.HasPrefix(text, d+" ") ||
		strings.HasPrefix(text, d+"\t")
}

// funcName renders fn for diagnostics: "(Recv).Name" for methods,
// "Name" for functions, with package qualifiers dropped.
func funcName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok {
		if r := sig.Recv(); r != nil {
			return "(" + types.TypeString(r.Type(), func(*types.Package) string { return "" }) + ")." + fn.Name()
		}
	}
	return fn.Name()
}
