package probe

// Annotation-free helpers first, so reachability (not file order) is
// what the probe observes.

func helper() { leaf() } // want `hot via Enqueue`

func leaf() {} // want `hot via Enqueue`

//lf:hotpath
func Enqueue() { // want `hot via Enqueue`
	helper()
	cold()
}

//lf:coldpath
func cold() { missed() }

func missed() {}

// Methods propagate like functions, keyed by their generic origin.
type Q[T any] struct{ v T }

//lf:hotpath
func (q *Q[T]) Push(v T) { // want `hot via \(\*Q\[T\]\).Push`
	q.step()
}

func (q *Q[T]) step() {} // want `hot via \(\*Q\[T\]\).Push`

// Literals nested in hot bodies are hot with the same seed; the
// loose-directive form seeds a stored literal.
//
//lf:hotpath
func Drive() { // want `hot via Drive`
	f := func() { leaf2() } // want `hot literal via Drive`
	f()
}

func leaf2() {} // want `hot via Drive`

func install() func() {
	//lf:hotpath
	return func() { stored() } // want `hot literal via func literal at probe.go:\d+`
}

var fn = install()

func stored() {} // want `hot via func literal at probe.go:\d+`
