package a

// Enqueue is a seed; hotness must flow into helper and leaf but not
// into Refill (coldpath) or Unrelated.
//
//lf:hotpath
func Enqueue() {
	helper()
	Refill()
}

func helper() { leaf() }

func leaf() {}

// Refill is an intentional slow path: propagation stops here.
//
//lf:coldpath
func Refill() { Unrelated() }

func Unrelated() {}

// Both directives on one declaration is a wiring error.
//
//lf:hotpath // want `annotated both //lf:hotpath and //lf:coldpath`
//lf:coldpath
func Both() {}

// A loose directive seeds the func literal starting on the next line —
// the stored-function-value escape hatch.
func makeHot() func() {
	//lf:hotpath
	return func() { litHelper() }
}

var hotFn = makeHot()

func litHelper() {}

// A directive attached to nothing callable is reported.
//
//lf:hotpath // want `not attached to a function`
var X int
