// Package a exercises the nocopy analyzer.
package a

import (
	"sync"
	"sync/atomic"
)

// Queue carries typed atomics: must not be copied.
type Queue struct {
	head atomic.Uint64
	n    int
}

// RawQueue's synchronization words are raw; the annotation opts it in.
//
//lf:nocopy
type RawQueue struct {
	head uint64
}

// Plain is freely copyable.
type Plain struct{ n int }

// Nesting propagates: an array of Queues is as uncopyable as a Queue.
type holder struct {
	qs [2]Queue
}

type locked struct{ mu sync.Mutex }

func byValue(q Queue) {} // want `by-value parameter copies Queue`

func byPtr(q *Queue) {}

func (q Queue) valMethod() {} // want `by-value receiver copies Queue`

func (q *Queue) ptrMethod() {}

func rawByValue(r RawQueue) {} // want `by-value parameter copies RawQueue`

func holderByValue(h holder) {} // want `by-value parameter copies holder`

func lockedByValue(l locked) {} // want `by-value parameter copies locked`

func plainByValue(p Plain) {}

func result(p *Queue) Queue { // want `by-value result copies Queue`
	return *p // want `return copies Queue`
}

func assigns(p *Queue) int {
	q := *p // want `assignment copies Queue`
	q.n = 1
	var r Queue = *p // want `variable initialization copies Queue`
	r.n = 2
	s := Queue{n: 3} // composite literal construction: allowed
	return q.n + r.n + s.n
}

func sink(interface{}) {}

func args(p *Queue) {
	sink(*p) // want `call argument copies Queue`
	sink(p)  // passing the pointer is fine
}

func iterate(qs []Queue) {
	for i := range qs { // index-only range: fine
		qs[i].n = i
	}
	for _, q := range qs { // want `range copies Queue`
		_ = q.n
	}
}

func literals(p *Queue) {
	type box struct{ q Queue }
	_ = box{q: *p} // want `composite literal copies Queue`
}

//lint:ignore nocopy snapshot taken before the queue is shared
func snapshot(q Queue) {}

func suppressedAssign(p *Queue) int {
	//lint:ignore nocopy construction-time copy, not yet shared
	q := *p
	q.n = 1
	return q.n
}
