// Package nocopy defines an Analyzer that flags by-value copies of
// lock-free queue/basket structs.
//
// # Analyzer nocopy
//
// nocopy: report by-value copies of structs carrying synchronization
// state.
//
// Copying a struct that embeds atomic state (a queue's head/tail words,
// a basket's cells) forks the synchronization variables: the copy and
// the original silently diverge, and every invariant the algorithms rely
// on is void. A type must not be copied after first use if it
//
//   - contains (recursively, through fields and arrays) a typed atomic
//     (atomic.Uint64, atomic.Pointer[T], ...), a sync lock type (Mutex,
//     RWMutex, WaitGroup, Cond, Once, Pool, Map), or a field of a type
//     named noCopy; or
//   - is declared with a //lf:nocopy directive on its type declaration
//     (the escape hatch for structs whose atomics are raw words).
//
// Reported copy sites: by-value parameters, receivers and results;
// assignments and variable initializations; call arguments; returns;
// range clauses; and composite-literal elements. Initialization from a
// composite literal or a function call is allowed — construction happens
// before sharing.
package nocopy

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

const directive = "//lf:nocopy"

// Analyzer flags by-value copies of lock-free structs.
var Analyzer = &analysis.Analyzer{
	Name: "nocopy",
	Doc:  "report by-value copies of structs carrying atomic synchronization state",
	Run:  run,
}

type checker struct {
	pass      *analysis.Pass
	annotated map[*types.TypeName]bool
	memo      map[types.Type]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:      pass,
		annotated: make(map[*types.TypeName]bool),
		memo:      make(map[types.Type]bool),
	}
	// Collect //lf:nocopy type declarations first.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !lintutil.HasDirective(directive, gd.Doc, ts.Doc, ts.Comment) {
					continue
				}
				if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					c.annotated[tn] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, c.visit)
	}
	return nil, nil
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		c.checkFuncType(n.Type, n.Recv)
	case *ast.FuncLit:
		c.checkFuncType(n.Type, nil)
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			c.checkCopyExpr(rhs, "assignment")
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			c.checkCopyExpr(v, "variable initialization")
		}
	case *ast.CallExpr:
		if _, isConv := c.pass.TypesInfo.Types[n.Fun]; isConv && c.pass.TypesInfo.Types[n.Fun].IsType() {
			break // conversion, checked as its operand's use
		}
		for _, arg := range n.Args {
			c.checkCopyExpr(arg, "call argument")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkCopyExpr(r, "return")
		}
	case *ast.RangeStmt:
		if n.Value != nil {
			if t := c.pass.TypesInfo.TypeOf(n.Value); t != nil && c.mustNotCopy(t) {
				c.report(n.Value.Pos(), t, "range copies")
			}
		}
	case *ast.CompositeLit:
		for _, elt := range n.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			c.checkCopyExpr(elt, "composite literal")
		}
	}
	return true
}

func (c *checker) checkFuncType(ft *ast.FuncType, recv *ast.FieldList) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := c.pass.TypesInfo.TypeOf(f.Type)
			if t != nil && c.mustNotCopy(t) {
				c.report(f.Type.Pos(), t, what)
			}
		}
	}
	check(recv, "by-value receiver copies")
	check(ft.Params, "by-value parameter copies")
	check(ft.Results, "by-value result copies")
}

// checkCopyExpr reports expr when evaluating it copies a must-not-copy
// value out of an existing variable: a plain identifier/selector/index
// or a pointer dereference. Composite literals and calls construct fresh
// values and are allowed.
func (c *checker) checkCopyExpr(expr ast.Expr, context string) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	// Only value expressions copy; type operands (new(T), conversions,
	// type arguments) and package names do not.
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if !c.mustNotCopy(tv.Type) {
		return
	}
	c.report(e.Pos(), tv.Type, context+" copies")
}

func (c *checker) report(pos token.Pos, t types.Type, what string) {
	c.pass.Reportf(pos, "%s %s, which holds atomic synchronization state and must not be copied; pass a pointer", what, types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
}

// mustNotCopy reports whether t transitively carries synchronization
// state or an //lf:nocopy annotation.
func (c *checker) mustNotCopy(t types.Type) bool {
	t = types.Unalias(t)
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // break cycles; pointers stop recursion anyway
	result := c.mustNotCopyUncached(t)
	c.memo[t] = result
	return result
}

func (c *checker) mustNotCopyUncached(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if c.annotated[obj] || (named.Origin() != nil && c.annotated[named.Origin().Obj()]) {
			return true
		}
		if obj.Name() == "noCopy" {
			return true
		}
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync/atomic":
				if lintutil.IsTypedAtomic(named) {
					return true
				}
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
					return true
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.mustNotCopy(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.mustNotCopy(u.Elem())
	}
	return false
}
