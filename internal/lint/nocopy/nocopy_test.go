package nocopy_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nocopy"
)

func TestNocopy(t *testing.T) {
	linttest.Run(t, "testdata", nocopy.Analyzer, "a")
}
