// Package analysis is a self-contained, stdlib-only re-implementation of
// the core golang.org/x/tools/go/analysis API surface used by this
// repository's lint suite (repro/internal/lint/...).
//
// The build environment for this repository is hermetic — no module proxy
// — so the real x/tools module cannot be depended on. The types here keep
// the same names, fields and semantics as their x/tools counterparts so
// that the analyzers can be ported to the real framework by changing one
// import path if the dependency ever becomes available.
//
// An Analyzer names one invariant and provides a Run function over a
// Pass. A Pass presents one type-checked package; Run reports findings
// through Pass.Report/Reportf. Drivers (repro/internal/lint/driver for
// the command line and go vet, repro/internal/lint/linttest for tests)
// construct passes and collect diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then detail. The first line is shown in usage listings.
	Doc string

	// Requires lists analyzers that must run on the package first.
	// Their results are available through Pass.ResultOf. The graph
	// must be acyclic; drivers run requirements before the requirer
	// and report diagnostics only for the analyzers they were asked
	// to run (a requirement pulled in implicitly contributes its
	// result, not its findings).
	Requires []*Analyzer

	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// TypesSizes gives the sizes/alignments of the target build
	// platform (the platform the package was type-checked for).
	TypesSizes types.Sizes

	// ResultOf maps each analyzer in Analyzer.Requires to the value
	// its Run returned for this same package.
	ResultOf map[*Analyzer]interface{}

	// Report records one diagnostic. Drivers install it; analyzers
	// usually call Reportf instead.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) String() string {
	return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path())
}

// Diagnostic is one finding: a position and a message. Category is the
// reporting analyzer's name; drivers fill it in so suppression and
// output formatting need no extra plumbing.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string
	Message  string
}
