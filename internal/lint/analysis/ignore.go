package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// An IgnoreSet holds the //lint:ignore directives of one package and
// answers whether a diagnostic is suppressed. A directive has the form
//
//	//lint:ignore analyzer1[,analyzer2...] reason
//
// and suppresses findings from the named analyzers (or all of them, for
// the name "all") on the directive's own source line and on the next
// source line — so it works both trailing the offending line and as a
// standalone comment above it. A reason is mandatory: a bare
// //lint:ignore directive is itself reported by drivers so that
// suppressions stay auditable.
type IgnoreSet struct {
	// byLine maps file:line to the analyzer names suppressed there.
	byLine map[lineKey][]string
	// Malformed records directives with no analyzer list or no reason.
	Malformed []Diagnostic
}

type lineKey struct {
	file string
	line int
}

const ignorePrefix = "//lint:ignore"

// NewIgnoreSet scans the files' comments for //lint:ignore directives.
func NewIgnoreSet(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{byLine: make(map[lineKey][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignoreXXX — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //lint:ignore directive: want //lint:ignore <analyzers> <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey{pos.Filename, line}
					s.byLine[key] = append(s.byLine[key], names...)
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, name := range s.byLine[lineKey{p.Filename, p.Line}] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}
