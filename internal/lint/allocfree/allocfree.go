// Package allocfree flags heap-allocation constructs inside hot-path
// code, as computed by the hotpath analyzer (its Requires dependency).
//
// The paper's scaling argument (§3) prices a queue operation by its
// shared-word atomic; a heap allocation on that path hands the budget
// to the allocator instead, and every GC pause it eventually causes
// acts as a failed-operation multiplier across all threads. allocfree
// enforces the repository's zero-alloc hot-path invariant statically —
// the dynamic half is queuetest's AllocsPerRun gates.
//
// Inside every hot-path-reachable function it reports:
//
//   - composite literals whose address is taken, and slice/map literals
//     (heap-escaping or growing storage);
//   - new(T), and make with a non-constant size or a map/chan kind;
//   - append (backing-array growth);
//   - conversions of non-pointer-shaped values to interface types, and
//     interface-elem variadic calls (boxing — the obs/trace emit paths
//     must stay monomorphic);
//   - calls into fmt, string concatenation, and string<->[]byte/[]rune
//     conversions;
//   - func literals capturing outer variables (closure allocation);
//   - map assignments (growth).
//
// The analysis is deliberately more conservative than the compiler's
// escape analysis: a flagged site that provably does not escape (or is
// a pool-miss cold branch) is suppressed in place with
// //lint:ignore allocfree <reason>, keeping the justification next to
// the code it excuses.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/lintutil"
)

// Analyzer reports heap-allocation constructs in hot-path code.
var Analyzer = &analysis.Analyzer{
	Name:     "allocfree",
	Doc:      "flag heap allocations, boxing and closures in //lf:hotpath-reachable code",
	Requires: []*analysis.Analyzer{hotpath.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	hot := pass.ResultOf[hotpath.Analyzer].(*hotpath.Result)
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if seed, ok := hot.Hot(fn); ok {
				c.body(fd.Body, seed)
			}
		}
	}
	// Hot literals include both annotated seeds and literals nested in
	// hot bodies; c.body skips nested literals, so each is checked once.
	for lit, seed := range hot.Lits {
		c.body(lit.Body, seed)
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) report(pos token.Pos, seed, format string, args ...interface{}) {
	args = append(args, seed)
	c.pass.Reportf(pos, format+" on the hot path (via %s)", args...)
}

func (c *checker) typeString(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(c.pass.Pkg))
}

func (c *checker) body(body *ast.BlockStmt, seed string) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if v := c.captured(n); v != "" {
				c.report(n.Pos(), seed, "closure captures %s and allocates", v)
			}
			return false // its body is a hot literal of its own
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				if !isSliceOrMapLit(info, lit) { // those report at the literal itself
					c.report(n.Pos(), seed, "address of composite literal escapes")
				}
			}
		case *ast.CompositeLit:
			if isSliceOrMapLit(info, n) {
				c.report(n.Pos(), seed, "%s literal allocates", c.typeString(info.TypeOf(n)))
			}
		case *ast.CallExpr:
			c.call(n, seed)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				c.report(n.Pos(), seed, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMap(info.TypeOf(ix.X)) {
					c.report(lhs.Pos(), seed, "map assignment may allocate")
				}
			}
			if n.Tok == token.ADD_ASSIGN && isString(info.TypeOf(n.Lhs[0])) {
				c.report(n.Pos(), seed, "string concatenation allocates")
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					c.boxing(n.Rhs[i].Pos(), info.TypeOf(n.Lhs[i]), info.TypeOf(n.Rhs[i]), seed)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dt := info.TypeOf(n.Type)
				for _, rhs := range n.Values {
					c.boxing(rhs.Pos(), dt, info.TypeOf(rhs), seed)
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMap(info.TypeOf(ix.X)) {
				c.report(n.Pos(), seed, "map assignment may allocate")
			}
		}
		return true
	})
}

// call classifies one call expression: allocation builtins, conversions,
// fmt, and interface boxing of arguments.
func (c *checker) call(call *ast.CallExpr, seed string) {
	info := c.pass.TypesInfo

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				c.report(call.Pos(), seed, "new(%s) allocates", c.typeString(info.TypeOf(call)))
			case "make":
				c.makeCall(call, seed)
			case "append":
				c.report(call.Pos(), seed, "append may grow its backing array")
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		c.conversion(call.Pos(), dst, src, seed)
		return
	}

	// fmt on a hot path is both an allocation and a formatting walk.
	if fn := lintutil.Callee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call.Pos(), seed, "call into fmt allocates")
	}

	// Interface boxing through parameters.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // spread call passes an existing slice: no boxing, no new slice
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if isInterface(pt) && i == params.Len()-1 {
				c.report(arg.Pos(), seed, "variadic interface call allocates its argument slice")
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if src := info.TypeOf(arg); pt != nil {
			c.boxing(arg.Pos(), pt, src, seed)
		}
	}
}

// makeCall flags make of maps and chans, and of slices with a
// non-constant length (a constant-size make can stay on the stack; a
// dynamic one is an allocation whose size the hot path cannot bound).
func (c *checker) makeCall(call *ast.CallExpr, seed string) {
	info := c.pass.TypesInfo
	t := info.TypeOf(call)
	switch types.Unalias(t).Underlying().(type) {
	case *types.Map, *types.Chan:
		c.report(call.Pos(), seed, "make(%s) allocates", c.typeString(t))
	case *types.Slice:
		for _, sz := range call.Args[1:] {
			if tv, ok := info.Types[sz]; !ok || tv.Value == nil {
				c.report(call.Pos(), seed, "make(%s) with non-constant size allocates", c.typeString(t))
				return
			}
		}
	}
}

// conversion flags interface boxing and string<->byte/rune-slice copies.
func (c *checker) conversion(pos token.Pos, dst, src types.Type, seed string) {
	c.boxing(pos, dst, src, seed)
	if isString(dst) && isByteOrRuneSlice(src) {
		c.report(pos, seed, "conversion from %s to string allocates", c.typeString(src))
	}
	if isByteOrRuneSlice(dst) && isString(src) {
		c.report(pos, seed, "conversion from string to %s allocates", c.typeString(dst))
	}
}

// boxing reports a conversion of src into interface type dst unless src
// is itself an interface or pointer-shaped (fits an iface data word
// without an allocation).
func (c *checker) boxing(pos token.Pos, dst, src types.Type, seed string) {
	if !isInterface(dst) || src == nil || isInterface(src) || pointerShaped(src) {
		return
	}
	if b, ok := types.Unalias(src).(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		if b.Kind() == types.UntypedNil {
			return
		}
	}
	c.report(pos, seed, "conversion of %s to %s boxes its operand", c.typeString(src), c.typeString(dst))
}

// captured returns the name of a variable the literal captures from an
// enclosing function scope, or "" if it captures nothing (a capture-free
// literal compiles to a singleton and does not allocate).
func (c *checker) captured(lit *ast.FuncLit) string {
	info := c.pass.TypesInfo
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Parent() == c.pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true // package-level: referenced, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isParam := types.Unalias(t).(*types.TypeParam); isParam {
		return false // a type param converts per-instantiation; not flagged
	}
	return types.IsInterface(t)
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isSliceOrMapLit reports whether lit builds a slice or map (storage on
// the heap), as opposed to a struct/array value.
func isSliceOrMapLit(info *types.Info, lit *ast.CompositeLit) bool {
	t := info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// pointerShaped reports whether values of t occupy one pointer word and
// convert to an interface without allocating.
func pointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := types.Unalias(t).Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
