package allocfree_test

import (
	"testing"

	"repro/internal/lint/allocfree"
	"repro/internal/lint/linttest"
)

func TestAllocfree(t *testing.T) {
	linttest.Run(t, "testdata", allocfree.Analyzer, "a")
}
