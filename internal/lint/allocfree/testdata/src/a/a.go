package a

import "fmt"

type node struct {
	v    int
	next *node
}

func sink(v interface{}) { _ = v }

//lf:hotpath
func Enqueue(v int, s1, s2 string, bs []byte) {
	n := &node{v: v} // want `address of composite literal escapes`
	_ = n
	sl := []int{1, 2} // want `\[\]int literal allocates`
	_ = sl
	m := map[int]int{} // want `map\[int\]int literal allocates`
	m[v] = 1           // want `map assignment may allocate`
	m[v]++             // want `map assignment may allocate`
	p := new(node)     // want `new\(\*node\) allocates`
	_ = p

	d1 := make([]int, v) // want `make\(\[\]int\) with non-constant size allocates`
	_ = d1
	d2 := make([]int, 8) // constant size: stack-allocatable, not flagged
	_ = d2
	d3 := make(map[int]int, 8) // want `make\(map\[int\]int\) allocates`
	_ = d3
	ch := make(chan int) // want `make\(chan int\) allocates`
	_ = ch
	d2 = append(d2, v) // want `append may grow its backing array`

	_ = fmt.Sprintln() // want `call into fmt allocates`
	_ = s1 + s2        // want `string concatenation allocates`
	s1 += "x"          // want `string concatenation allocates`
	_ = []byte(s1)     // want `conversion from string to \[\]byte allocates`
	_ = string(bs)     // want `conversion from \[\]byte to string allocates`

	sink(v)  // want `conversion of int to interface\{\} boxes its operand`
	sink(&v) // pointer-shaped: fits the iface word, not flagged
	var i interface{}
	i = v // want `conversion of int to interface\{\} boxes its operand`
	_ = i
	var j interface{} = v // want `conversion of int to interface\{\} boxes its operand`
	_ = j

	x := v
	f := func() int { return x } // want `closure captures x and allocates`
	_ = f()
	g := func() int { return 7 } // capture-free literal: a singleton, not flagged
	_ = g()

	//lint:ignore allocfree pool-miss refill modeled cold for this test
	suppressed := &node{}
	_ = suppressed

	helper()
	refill()
}

// helper is hot by reachability, not annotation.
func helper() *node {
	return &node{} // want `address of composite literal escapes`
}

// refill is an annotated slow path: its allocation is intentional.
//
//lf:coldpath
func refill() *node {
	return &node{}
}

// NotHot is outside the hot set: nothing here is flagged.
func NotHot() *node {
	_ = fmt.Sprintln()
	return &node{next: &node{}}
}
