// Package linttest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest for the repro/internal/lint
// suite: it type-checks packages under a testdata directory, runs one
// analyzer (with //lint:ignore filtering, so suppression is testable),
// and compares the diagnostics against // want expectations.
//
// Expectations annotate the offending line:
//
//	x.count = 1 // want `plain access of field count`
//
// Each backquoted or double-quoted string after // want is a regular
// expression; the line must produce exactly one diagnostic per
// expectation (order-independent), and every diagnostic must be
// expected. Layout-dependent analyzers see a fixed GOARCH=amd64 size
// model so expectations are host-independent.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

// Run checks analyzer a against the packages (directories under
// testdata/src) and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		std:      importer.ForCompiler(token.NewFileSet(), "source", nil),
		pkgs:     make(map[string]*driver.Package),
	}
	for _, pkg := range pkgs {
		p, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		diags, err := driver.Analyze(p, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg, err)
		}
		check(t, p, diags)
	}
}

type loader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*driver.Package
}

func (ld *loader) load(path string) (*driver.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	sizes := types.SizesFor("gc", "amd64")
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			if _, err := os.Stat(filepath.Join(ld.testdata, "src", p)); err == nil {
				dep, err := ld.load(p)
				if err != nil {
					return nil, err
				}
				return dep.Types, nil
			}
			return ld.std.Import(p)
		}),
		Sizes: sizes,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &driver.Package{Fset: ld.fset, Files: files, Types: tpkg, Info: info, Sizes: sizes}
	ld.pkgs[path] = p
	return p, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (.*)$")

// check compares diagnostics against the // want comments of the
// package's files.
func check(t *testing.T, p *driver.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, pat := range parsePatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad // want pattern %q: %v", pos, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Category)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, exp.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

// parsePatterns splits the remainder of a // want comment into its
// quoted regular expressions (double-quoted Go strings or backquoted
// literals).
func parsePatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Errorf("%s: unterminated // want string", pos)
				return pats
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Errorf("%s: bad // want string %q: %v", pos, s[:end+1], err)
				return pats
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Errorf("%s: unterminated // want backquote", pos)
				return pats
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Errorf("%s: malformed // want remainder %q", pos, s)
			return pats
		}
	}
	return pats
}
