// Package lint assembles the repository's lock-free lint suite: custom
// go/analysis-style analyzers enforcing the low-level invariants the
// paper's argument rests on (§3 CAS accounting, §4.3 false sharing,
// 32-bit atomic alignment, copy and mixed-access discipline) plus the
// repo's own API hygiene (no first-party use of deprecated entry points).
//
// Run them via cmd/lfcheck; see each analyzer package for its invariant.
package lint

import (
	"repro/internal/lint/align64"
	"repro/internal/lint/allocfree"
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicmix"
	"repro/internal/lint/casloop"
	"repro/internal/lint/deprecated"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/nocopy"
	"repro/internal/lint/padcheck"
)

// Analyzers returns the full suite in reporting order. hotpath precedes
// allocfree, its requirer; the driver would order them anyway, but
// listing both keeps hotpath's own directive-hygiene diagnostics on.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		align64.Analyzer,
		padcheck.Analyzer,
		casloop.Analyzer,
		nocopy.Analyzer,
		deprecated.Analyzer,
		hotpath.Analyzer,
		allocfree.Analyzer,
	}
}
