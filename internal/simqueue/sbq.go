package simqueue

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/txcas"
)

// SBQ is the scalable baskets queue (paper §5): a modular baskets queue
// (Algorithms 2-6) instantiated with the scalable basket (Algorithms 8-9)
// and a pluggable try_append CAS — TxCAS for SBQ-HTM, plain or delayed CAS
// for SBQ-CAS — plus the epoch-based memory reclamation of Algorithm 7.
//
// Simulated node layout (hot fields on distinct cache lines):
//
//	+0    next            (line 0, the try_append target)
//	+8    index
//	+64   basket.counter  (line 1, the dequeuers' FAA target)
//	+128  basket.empty    (line 2)
//	+192  basket.cells[B] (8 cells per line, one per inserter)
type SBQ struct {
	m *Machine

	basketSize int // B: cells per basket
	enqueuers  int // E: emptiness bound (paper fixes B=44, E=actual enqueuers)
	threads    int // protector slots
	partitions int // K extraction partitions (1 = the paper's basket)

	headA    machine.Addr
	tailA    machine.Addr
	retiredA machine.Addr
	protA    machine.Addr // protectors[threads], one per cache line

	tryAppend AppendFunc
	name      string
	rec       obs.Recorder // nil unless SBQOptions.Rec attached telemetry
	// ev is the timeline extension of rec (nil unless Rec is a flight-
	// recorder collector). Queue-layer events land on lane=tid, matching
	// the harness's thread numbering; the analyzer joins them with the
	// machine layer's core lanes through the lane_cores trace metadata.
	ev obs.EventRecorder

	enq  []enqState // per-enqueuer node reuse + freelists (indexed by tid)
	free [][]uint64 // per-thread freelists of retired node addresses

	// FreeNodeCalls and FreedNodes count reclamation activity.
	FreeNodeCalls uint64
	FreedNodes    uint64
}

// Machine aliases machine.Machine to keep constructor signatures short.
type Machine = machine.Machine

type enqState struct {
	reserved uint64 // node kept from a previous enqueue that did not append it
}

// AppendFunc attempts CAS(addr, old, new) on behalf of thread tid and
// reports success. SBQ uses it for the single contended CAS of try_append.
type AppendFunc func(p *machine.Proc, tid int, addr machine.Addr, old, new uint64) bool

// Node field offsets (bytes). With K extraction partitions (an extension
// implementing the paper's §8 future work; K=1 is the paper's basket),
// the layout is:
//
//	+0            next, index          (line 0)
//	+64+64k       counter[k]           (one line per partition)
//	+64+64K       empty bit, exhausted (one line)
//	+128+64K      cells                (8 per line)
const (
	offNext  = 0
	offIndex = 8
	offPart  = 64
)

func (q *SBQ) offCounter(k int) uint64 { return offPart + 64*uint64(k) }
func (q *SBQ) offEmpty() uint64        { return offPart + 64*uint64(q.partitions) }
func (q *SBQ) offExhausted() uint64    { return q.offEmpty() + 8 }
func (q *SBQ) offCells() uint64        { return q.offEmpty() + 64 }

// try_append status values (Algorithm 4).
type appendStatus int

const (
	appendSuccess appendStatus = iota
	appendFailure
	appendBadTail
)

// SBQOptions configures an SBQ instance.
type SBQOptions struct {
	// BasketSize is B, the basket's cell count. The paper's evaluation
	// fixes it at 44.
	BasketSize int
	// Enqueuers is the number of enqueuer threads; basket emptiness is
	// judged against it (paper §6.1). Must be <= BasketSize.
	Enqueuers int
	// Threads is the total number of threads (protector slots).
	Threads int
	// Append is the try_append CAS. Defaults to plain CAS (or to
	// PrimitiveAppend(Primitive) when Primitive is set).
	Append AppendFunc
	// Primitive, when non-nil and Append is nil, drives try_append through
	// the unified CAS-primitive interface (repro/internal/txcas) — e.g. a
	// core.Bound of per-thread TxCAS executors. Equivalent to setting
	// Append to PrimitiveAppend(Primitive).
	Primitive txcas.Primitive
	// Socket homes the queue's memory.
	Socket int
	// Name labels the variant in output.
	Name string
	// Partitions splits basket extraction across this many counters
	// (clamped to [1, Enqueuers]). 1 reproduces the paper's basket;
	// higher values implement its §8 future work of scalable dequeues.
	Partitions int
	// Rec, when non-nil, receives queue-level telemetry (operation counts,
	// try_append CAS outcomes, basket insert/extract outcomes). Machine-
	// level telemetry (HTM aborts, coherence traffic) attaches to the
	// Machine via SetRecorder instead, so the two layers stay separable.
	Rec obs.Recorder
}

// NewSBQ allocates an SBQ on m.
func NewSBQ(m *Machine, opt SBQOptions) *SBQ {
	if opt.BasketSize <= 0 {
		opt.BasketSize = 44
	}
	if opt.Enqueuers <= 0 {
		opt.Enqueuers = opt.BasketSize
	}
	if opt.Enqueuers > opt.BasketSize {
		panic("simqueue: more enqueuers than basket cells")
	}
	if opt.Threads <= 0 {
		opt.Threads = opt.Enqueuers
	}
	if opt.Append == nil && opt.Primitive != nil {
		opt.Append = PrimitiveAppend(opt.Primitive)
	}
	if opt.Append == nil {
		opt.Append = PlainCAS
	}
	if opt.Name == "" {
		opt.Name = "SBQ"
	}
	if opt.Partitions < 1 {
		opt.Partitions = 1
	}
	if opt.Partitions > opt.Enqueuers {
		opt.Partitions = opt.Enqueuers
	}
	q := &SBQ{
		m:          m,
		basketSize: opt.BasketSize,
		enqueuers:  opt.Enqueuers,
		threads:    opt.Threads,
		partitions: opt.Partitions,
		tryAppend:  opt.Append,
		name:       opt.Name,
		rec:        obs.Normalize(opt.Rec),
		ev:         obs.Events(opt.Rec),
		enq:        make([]enqState, opt.Threads),
		free:       make([][]uint64, opt.Threads),
	}
	q.headA = m.AllocLine(8, opt.Socket)
	q.tailA = m.AllocLine(8, opt.Socket)
	q.retiredA = m.AllocLine(8, opt.Socket)
	q.protA = m.AllocLine(machine.LineSize*opt.Threads, opt.Socket)
	sentinel := q.newNode(opt.Socket)
	m.Poke(q.headA, sentinel)
	m.Poke(q.tailA, sentinel)
	m.Poke(q.retiredA, sentinel)
	// The sentinel's basket must read as empty.
	m.Poke(sentinel+q.offEmpty(), 1)
	return q
}

// event records one timeline event on thread tid's lane, if a flight
// recorder is attached.
func (q *SBQ) event(k obs.EventKind, tid int, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, int32(tid), arg)
	}
}

// partBounds returns partition k's cell range [lo, hi).
func (q *SBQ) partBounds(k int) (lo, hi int) {
	return q.enqueuers * k / q.partitions, q.enqueuers * (k + 1) / q.partitions
}

// Name implements Queue.
func (q *SBQ) Name() string { return q.name }

func (q *SBQ) nodeBytes() int { return int(q.offCells()) + 8*q.basketSize }

// newNode carves a fresh zeroed node out of simulated memory (allocator
// backdoor: allocation metadata is not part of the coherence experiment).
func (q *SBQ) newNode(socket int) uint64 {
	return q.m.AllocLine(q.nodeBytes(), socket)
}

func (q *SBQ) protAddr(tid int) machine.Addr {
	return q.protA + machine.Addr(tid)*machine.LineSize
}

func (q *SBQ) cellAddr(node uint64, i int) machine.Addr {
	return node + q.offCells() + 8*uint64(i)
}

// allocNode returns a node ready for appending: from the thread's freelist
// (re-zeroed via the allocator backdoor, playing the role of calloc) or
// fresh memory. Either way the caller pays an initialization delay
// proportional to the basket size — the O(B) cost whose O(B/T)
// amortization §5.3.4 analyzes (initialization writes hit the local cache
// at one line per 8 cells).
func (q *SBQ) allocNode(p *machine.Proc, tid int) uint64 {
	if p != nil {
		p.Delay(uint64(q.basketSize/8+2) * q.m.Config().HitCycles)
	}
	if fl := q.free[tid]; len(fl) > 0 {
		n := fl[len(fl)-1]
		q.free[tid] = fl[:len(fl)-1]
		q.m.Poke(n+offNext, 0)
		q.m.Poke(n+offIndex, 0)
		for k := 0; k < q.partitions; k++ {
			q.m.Poke(n+q.offCounter(k), 0)
		}
		q.m.Poke(n+q.offEmpty(), 0)
		q.m.Poke(n+q.offExhausted(), 0)
		for i := 0; i < q.basketSize; i++ {
			q.m.Poke(q.cellAddr(n, i), sentinelInsert)
		}
		return n
	}
	return q.newNode(p.Socket())
}

// ---------------------------------------------------------------------------
// The scalable basket (Algorithm 9).

// basketInsert attempts to publish v in inserter eid's private cell.
func (q *SBQ) basketInsert(p *machine.Proc, node uint64, eid int, v uint64) bool {
	ok := p.CAS(q.cellAddr(node, eid), sentinelInsert, v)
	if r := q.rec; r != nil {
		if ok {
			r.Inc(obs.BasketInserts)
		} else {
			r.Inc(obs.BasketInsertFails)
		}
	}
	return ok
}

// basketExtract removes some element, or fails if the basket is (or is
// about to become) empty. tid selects the extractor's home partition when
// partitioned extraction is enabled.
func (q *SBQ) basketExtract(p *machine.Proc, node uint64, tid int) (uint64, bool) {
	v, ok := q.basketExtractInner(p, node, tid)
	if r := q.rec; r != nil {
		if ok {
			r.Inc(obs.BasketExtracts)
		} else {
			r.Inc(obs.BasketExtractFails)
		}
	}
	return v, ok
}

func (q *SBQ) basketExtractInner(p *machine.Proc, node uint64, tid int) (uint64, bool) {
	if p.Read(node+q.offEmpty()) != 0 {
		return 0, false
	}
	if q.partitions == 1 {
		// The paper's Algorithm 9, verbatim.
		for {
			idx := p.FAA(node+q.offCounter(0), 1)
			if idx >= uint64(q.enqueuers) {
				return 0, false
			}
			if idx == uint64(q.enqueuers)-1 {
				p.Write(node+q.offEmpty(), 1)
				q.event(obs.EvBasketClose, tid, node)
			}
			v := p.Swap(q.cellAddr(node, int(idx)), sentinelEmpty)
			if v != sentinelInsert {
				return v, true
			}
		}
	}
	// Partitioned extension (§8 future work): claim indices from the home
	// partition, falling over to others only when it is exhausted. The
	// extractor that exhausts the last partition sets the empty bit, so
	// emptiness stays monotone — the property queue linearizability needs.
	home := tid % q.partitions
	for off := 0; off < q.partitions; off++ {
		k := (home + off) % q.partitions
		lo, hi := q.partBounds(k)
		n := uint64(hi - lo)
		for {
			// Probe with a (scalable, shared) read before paying for an
			// exclusive RMW on a foreign partition's counter.
			if off > 0 && p.Read(node+q.offCounter(k)) >= n {
				break
			}
			idx := p.FAA(node+q.offCounter(k), 1)
			if idx >= n {
				break
			}
			if idx == n-1 {
				if p.FAA(node+q.offExhausted(), 1)+1 == uint64(q.partitions) {
					p.Write(node+q.offEmpty(), 1)
					q.event(obs.EvBasketClose, tid, node)
				}
			}
			v := p.Swap(q.cellAddr(node, lo+int(idx)), sentinelEmpty)
			if v != sentinelInsert {
				return v, true
			}
		}
	}
	return 0, false
}

func (q *SBQ) basketEmpty(p *machine.Proc, node uint64) bool {
	return p.Read(node+q.offEmpty()) != 0
}

// ---------------------------------------------------------------------------
// Modular queue operations (Algorithms 3-6).

// tryAppendNode is Algorithm 4 with the pluggable CAS.
func (q *SBQ) tryAppendNode(p *machine.Proc, tid int, tail, newNode uint64) appendStatus {
	if p.Read(tail+offNext) != 0 {
		return appendBadTail
	}
	if r := q.rec; r != nil {
		r.Inc(obs.CASAttempts)
	}
	q.event(obs.EvCASAttempt, tid, machine.LineOf(tail+offNext))
	if q.tryAppend(p, tid, tail+offNext, 0, newNode) {
		return appendSuccess
	}
	if r := q.rec; r != nil {
		r.Inc(obs.CASFailures)
	}
	q.event(obs.EvCASFailure, tid, machine.LineOf(tail+offNext))
	return appendFailure
}

// Enqueue is Algorithm 3. tid doubles as the enqueuer id and must be below
// the configured Enqueuers count.
func (q *SBQ) Enqueue(p *machine.Proc, tid int, v uint64) {
	checkValue(v)
	if tid >= q.enqueuers {
		panic("simqueue: enqueuer tid out of range")
	}
	q.event(obs.EvEnqStart, tid, 0)
	t := q.protect(p, q.tailA, tid)
	n := q.enq[tid].reserved
	if n == 0 {
		n = q.allocNode(p, tid)
	} else {
		// Reuse the node kept from the previous enqueue; undo its single
		// basket insertion (constant time, paper §5.2.2).
		p.Write(q.cellAddr(n, tid), sentinelInsert)
	}
	q.basketInsert(p, n, tid, v)
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		p.Write(n+offIndex, p.Read(t+offIndex)+1)
		status := q.tryAppendNode(p, tid, t, n)
		if status == appendSuccess {
			// The node is linked: its basket is now open for insertion.
			q.event(obs.EvBasketOpen, tid, n)
			p.CAS(q.tailA, t, n)
			q.enq[tid].reserved = 0
			break
		}
		if status == appendFailure {
			t = p.Read(t + offNext)
			if q.basketInsert(p, t, tid, v) {
				q.enq[tid].reserved = n
				break
			}
		}
		// BAD_TAIL, or the freshly appended basket refused us: find the
		// real tail and make sure the queue's tail pointer catches up.
		for {
			nx := p.Read(t + offNext)
			if nx == 0 {
				break
			}
			t = nx
		}
		q.advanceNode(p, q.tailA, t)
	}
	q.unprotect(p, tid)
	q.event(obs.EvEnqEnd, tid, 1)
}

// Dequeue is Algorithm 5.
func (q *SBQ) Dequeue(p *machine.Proc, tid int) (uint64, bool) {
	q.event(obs.EvDeqStart, tid, 0)
	h := q.protect(p, q.headA, tid)
	var elem uint64
	var ok bool
	for rounds := 0; ; rounds++ {
		if rounds > 0 {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		for q.basketEmpty(p, h) {
			nx := p.Read(h + offNext)
			if nx == 0 {
				break
			}
			h = nx
		}
		elem, ok = q.basketExtract(p, h, tid)
		if ok || p.Read(h+offNext) == 0 {
			break
		}
	}
	q.advanceNode(p, q.headA, h)
	q.freeNodes(p, tid)
	q.unprotect(p, tid)
	if r := q.rec; r != nil {
		if ok {
			r.Inc(obs.DeqOps)
		} else {
			r.Inc(obs.DeqEmpty)
		}
	}
	var okArg uint64
	if ok {
		okArg = 1
	}
	q.event(obs.EvDeqEnd, tid, okArg)
	return elem, ok
}

// advanceNode is Algorithm 6: move *ptr forward to at least newNode.
func (q *SBQ) advanceNode(p *machine.Proc, ptr machine.Addr, newNode uint64) {
	for {
		old := p.Read(ptr)
		if p.Read(old+offIndex) >= p.Read(newNode+offIndex) {
			return
		}
		//lint:ignore casloop monotonic catch-up accounted by the machine's recorder; a failed CAS means the pointer advanced
		if p.CAS(ptr, old, newNode) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Epoch-based memory reclamation (Algorithm 7).

func (q *SBQ) protect(p *machine.Proc, ptr machine.Addr, tid int) uint64 {
	pa := q.protAddr(tid)
	for {
		v := p.Read(ptr)
		p.Write(pa, v)
		if p.Read(ptr) == v {
			return v
		}
	}
}

func (q *SBQ) unprotect(p *machine.Proc, tid int) {
	p.Write(q.protAddr(tid), 0)
}

// freeNodes advances the retired pointer to the earliest protected node and
// recycles everything it passes. Mutual exclusion comes from the SWAP.
func (q *SBQ) freeNodes(p *machine.Proc, tid int) {
	retired := p.Swap(q.retiredA, 0)
	if retired == 0 {
		return
	}
	q.FreeNodeCalls++
	minIdx := ^uint64(0)
	for i := 0; i < q.threads; i++ {
		pr := p.Read(q.protAddr(i))
		if pr != 0 {
			if idx := p.Read(pr + offIndex); idx < minIdx {
				minIdx = idx
			}
		}
	}
	for retired != p.Read(q.headA) && p.Read(retired+offIndex) < minIdx {
		tmp := p.Read(retired + offNext)
		q.free[tid] = append(q.free[tid], retired)
		q.FreedNodes++
		retired = tmp
	}
	p.Write(q.retiredA, retired)
}

// ---------------------------------------------------------------------------
// try_append CAS flavors.

// PlainCAS is the standard atomic CAS (SBQ-CAS without delay).
func PlainCAS(p *machine.Proc, _ int, addr machine.Addr, old, new uint64) bool {
	return p.CAS(addr, old, new)
}

// DelayedCAS returns an AppendFunc that waits like TxCAS before the CAS —
// the SBQ-CAS variant of the paper's evaluation (§6.1), which isolates the
// contribution of TxCAS from that of the scalable basket.
func DelayedCAS(delay uint64) AppendFunc {
	return func(p *machine.Proc, _ int, addr machine.Addr, old, new uint64) bool {
		p.Delay(delay)
		return p.CAS(addr, old, new)
	}
}

// procAttacher is implemented by primitives that need the simulated
// thread's *machine.Proc registered before use (core.Bound). The proc only
// exists once the machine has started the thread body, so PrimitiveAppend
// attaches it at call time rather than construction time.
type procAttacher interface {
	Attach(tid int, p *machine.Proc)
}

// PrimitiveAppend returns an AppendFunc that drives try_append through the
// unified CAS-primitive interface (repro/internal/txcas.Primitive) — the
// simulated track's half of the shared surface: the same Primitive value
// can be handed to the native queues. The structured Outcome is reduced to
// the boolean try_append needs; callers wanting the full failure reports
// keep their own handle on the primitive (e.g. core.Bound's executors).
func PrimitiveAppend(prim txcas.Primitive) AppendFunc {
	at, _ := prim.(procAttacher)
	return func(p *machine.Proc, tid int, addr machine.Addr, old, new uint64) bool {
		if at != nil {
			at.Attach(tid, p)
		}
		return prim.TxCAS(tid, txcas.Loc(addr), old, new).OK
	}
}

// TxCASAppend returns an AppendFunc backed by per-thread TxCAS executors.
// casers must have one entry per thread id.
//
// Deprecated: use PrimitiveAppend with a core.Bound — the unified
// CAS-primitive surface shared with the native track. TxCASAppend remains
// as a thin wrapper for callers that already built their own executors.
func TxCASAppend(casers []*core.CAS) AppendFunc {
	return func(p *machine.Proc, tid int, addr machine.Addr, old, new uint64) bool {
		return casers[tid].Do(p, addr, old, new)
	}
}

// NewTxCASAppend builds per-thread TxCAS executors with opt and returns the
// AppendFunc along with the executors (for stats inspection).
//
// Deprecated: use PrimitiveAppend(core.Bind(threads, opt)); the Bound's
// Caser method exposes the same per-thread executors.
func NewTxCASAppend(threads int, opt core.Options) (AppendFunc, []*core.CAS) {
	b := core.Bind(threads, opt)
	casers := make([]*core.CAS, threads)
	for i := range casers {
		casers[i] = b.Caser(i)
	}
	return PrimitiveAppend(b), casers
}
