package simqueue

import "repro/internal/machine"

// MSQ is the classic Michael-Scott lock-free queue: the baseline the
// baskets queue improves on. Its enqueue retries a contended CAS on the
// tail node's next pointer until it wins, which is precisely the blind
// retry behavior the paper's §1 identifies as non-scalable.
type MSQ struct {
	m     *Machine
	headA machine.Addr
	tailA machine.Addr
}

const (
	msqNextOff  = 0
	msqValueOff = 64
	msqNodeLen  = 128
)

// NewMSQ allocates a Michael-Scott queue on m.
func NewMSQ(m *Machine, socket int) *MSQ {
	q := &MSQ{m: m}
	q.headA = m.AllocLine(8, socket)
	q.tailA = m.AllocLine(8, socket)
	s := m.AllocLine(msqNodeLen, socket)
	m.Poke(q.headA, s)
	m.Poke(q.tailA, s)
	return q
}

// Name implements Queue.
func (q *MSQ) Name() string { return "MS-Queue" }

// Enqueue appends v, retrying its linking CAS until it succeeds.
func (q *MSQ) Enqueue(p *machine.Proc, tid int, v uint64) {
	checkValue(v)
	n := q.m.AllocLine(msqNodeLen, p.Socket())
	p.Write(n+msqValueOff, v)
	for {
		tail := p.Read(q.tailA)
		next := p.Read(tail + msqNextOff)
		if next != 0 {
			//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder; blind retry is MSQ's defining behavior (§1)
			p.CAS(q.tailA, tail, next)
			continue
		}
		if p.CAS(tail+msqNextOff, 0, n) {
			p.CAS(q.tailA, tail, n)
			return
		}
	}
}

// Dequeue removes the oldest element by swinging head forward.
func (q *MSQ) Dequeue(p *machine.Proc, tid int) (uint64, bool) {
	for {
		head := p.Read(q.headA)
		tail := p.Read(q.tailA)
		next := p.Read(head + msqNextOff)
		if next == 0 {
			return 0, false
		}
		if head == tail {
			//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder; blind retry is MSQ's defining behavior (§1)
			p.CAS(q.tailA, tail, next)
			continue
		}
		v := p.Read(next + msqValueOff)
		if p.CAS(q.headA, head, next) {
			return v, true
		}
	}
}
