package simqueue

import "repro/internal/machine"

// BQ is the original baskets queue of Hoffman, Shalev, and Shavit (the
// paper's BQ-Original baseline): a Michael-Scott-style linked queue whose
// enqueuers, on a failed CAS, push their node into an implicit LIFO basket
// hanging off the same predecessor instead of chasing the new tail.
// Further insertions into a basket are cut off by a "deleted" bit that a
// dequeuer sets in the predecessor's next pointer — the property that makes
// the queue linearizable (paper §5.2.2's discussion of the original design).
//
// Node layout:
//
//	+0   next (tagged pointer: low bit = deleted)   (line 0)
//	+8   index (unused; kept for layout symmetry)
//	+64  value                                       (line 1)
type BQ struct {
	m     *Machine
	headA machine.Addr
	tailA machine.Addr
}

const (
	bqOffNext  = 0
	bqOffValue = 64
	bqNodeSize = 128
)

// NewBQ allocates an original baskets queue on m.
func NewBQ(m *Machine, socket int) *BQ {
	q := &BQ{m: m}
	q.headA = m.AllocLine(8, socket)
	q.tailA = m.AllocLine(8, socket)
	sentinel := m.AllocLine(bqNodeSize, socket)
	m.Poke(q.headA, sentinel)
	m.Poke(q.tailA, sentinel)
	return q
}

// Name implements Queue.
func (q *BQ) Name() string { return "BQ-Original" }

func (q *BQ) newNode(p *machine.Proc, v uint64) uint64 {
	n := q.m.AllocLine(bqNodeSize, p.Socket())
	p.Write(n+bqOffValue, v)
	return n
}

// Enqueue appends v, joining the current tail's basket if its linking CAS
// fails.
func (q *BQ) Enqueue(p *machine.Proc, tid int, v uint64) {
	checkValue(v)
	n := q.newNode(p, v)
	for {
		tail := p.Read(q.tailA)
		next := p.Read(tail + bqOffNext)
		if isDeleted(next) {
			// This tail is already consumed; catch the tail pointer up.
			q.fixTail(p, tail)
			continue
		}
		if ptrOf(next) == 0 {
			//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder (§3 accounting at the simulation layer)
			if p.CAS(tail+bqOffNext, next, tag(n, false)) {
				p.CAS(q.tailA, tail, n)
				return
			}
			// CAS failed: a winner linked concurrently. Join the basket:
			// push our node between tail and its (growing) suffix. All
			// basket members are concurrent with the winner, so any
			// internal order is linearizable.
			for {
				next = p.Read(tail + bqOffNext)
				if isDeleted(next) || ptrOf(next) == 0 {
					break // basket closed by a dequeuer; start over
				}
				p.Write(n+bqOffNext, tag(ptrOf(next), false))
				//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder (§3 accounting at the simulation layer)
				if p.CAS(tail+bqOffNext, next, tag(n, false)) {
					return
				}
			}
		} else {
			// Tail is stale; help it forward and retry.
			q.fixTail(p, tail)
		}
	}
}

// fixTail advances the queue's tail pointer to the last linked node.
func (q *BQ) fixTail(p *machine.Proc, tail uint64) {
	last := tail
	for {
		nx := p.Read(last + bqOffNext)
		if ptrOf(nx) == 0 {
			break
		}
		last = ptrOf(nx)
	}
	if last != tail {
		p.CAS(q.tailA, tail, last)
	}
}

// Dequeue claims the node after head by setting the deleted bit in head's
// next pointer — which simultaneously closes head's basket to inserters —
// then swings head forward.
func (q *BQ) Dequeue(p *machine.Proc, tid int) (uint64, bool) {
	for {
		head := p.Read(q.headA)
		next := p.Read(head + bqOffNext)
		if isDeleted(next) {
			// Someone claimed this successor; help advance head.
			//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder (§3 accounting at the simulation layer)
			p.CAS(q.headA, head, ptrOf(next))
			continue
		}
		if ptrOf(next) == 0 {
			return 0, false // empty
		}
		// Keep tail from lagging behind head.
		if p.Read(q.tailA) == head {
			p.CAS(q.tailA, head, ptrOf(next))
		}
		if p.CAS(head+bqOffNext, next, tag(ptrOf(next), true)) {
			v := p.Read(ptrOf(next) + bqOffValue)
			p.CAS(q.headA, head, ptrOf(next))
			return v, true
		}
	}
}
