package simqueue

import "repro/internal/machine"

// LCRQ is a simulated LCRQ-style queue (Morrison & Afek, PPoPP 2013): a
// linked list of bounded concurrent ring queues whose slots are claimed
// with FAA. It is the related-work predecessor of the paper's WF-Queue
// baseline; the harness exposes it as an optional extra variant.
//
// The original uses a double-width CAS on a cell's (index, value) pair;
// the simulator's memory is single-word, so each cell holds a pointer to
// an immutable two-word slot record, replaced with a single-word CAS —
// the same translation the native port uses for Go's lack of DWCAS.
type LCRQ struct {
	m        *Machine
	ringSize int

	headRingA machine.Addr
	tailRingA machine.Addr
}

const (
	lcrqHeadOff  = 0
	lcrqTailOff  = 64
	lcrqNextOff  = 128
	lcrqCellsOff = 192

	lcrqClosedBit = uint64(1) << 63
)

// slot record layout: +0 index, +8 value (0 = empty).

// LCRQOptions configures a simulated LCRQ.
type LCRQOptions struct {
	// RingSize is the number of cells per ring (default 64).
	RingSize int
	// Socket homes the queue's control words and initial ring.
	Socket int
}

// NewLCRQ allocates an LCRQ on m.
func NewLCRQ(m *Machine, opt LCRQOptions) *LCRQ {
	if opt.RingSize <= 0 {
		opt.RingSize = 64
	}
	q := &LCRQ{m: m, ringSize: opt.RingSize}
	q.headRingA = m.AllocLine(8, opt.Socket)
	q.tailRingA = m.AllocLine(8, opt.Socket)
	r := q.newRing(opt.Socket)
	m.Poke(q.headRingA, r)
	m.Poke(q.tailRingA, r)
	return q
}

// Name implements Queue.
func (q *LCRQ) Name() string { return "LCRQ" }

// newRing allocates a ring with every cell pointing at an empty slot for
// its first-lap index.
func (q *LCRQ) newRing(socket int) uint64 {
	r := q.m.AllocLine(lcrqCellsOff+8*q.ringSize, socket)
	for i := 0; i < q.ringSize; i++ {
		s := q.m.Alloc(16, socket)
		q.m.Poke(s, uint64(i)) // index
		q.m.Poke(s+8, 0)       // empty
		q.m.Poke(r+lcrqCellsOff+8*uint64(i), s)
	}
	return r
}

func (q *LCRQ) newSlot(p *machine.Proc, idx, val uint64) uint64 {
	s := q.m.Alloc(16, p.Socket())
	// Initialization writes are local-cache stores before publication.
	p.Write(s, idx)
	p.Write(s+8, val)
	return s
}

func (q *LCRQ) cellAddrOf(ring uint64, idx uint64) machine.Addr {
	return ring + lcrqCellsOff + 8*(idx%uint64(q.ringSize))
}

// ringEnqueue attempts to place v in ring r; false means the ring closed.
func (q *LCRQ) ringEnqueue(p *machine.Proc, r uint64, v uint64) bool {
	for tries := 0; ; tries++ {
		t := p.FAA(r+lcrqTailOff, 1)
		if t&lcrqClosedBit != 0 {
			return false
		}
		cell := q.cellAddrOf(r, t)
		s := p.Read(cell)
		idx := p.Read(s)
		val := p.Read(s + 8)
		if val == 0 && idx <= t {
			ns := q.newSlot(p, t, v)
			//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder; the tries counter closes the ring after 2*size
			if p.CAS(cell, s, ns) {
				return true
			}
		}
		if t-p.Read(r+lcrqHeadOff) >= uint64(q.ringSize) || tries > 2*q.ringSize {
			q.closeRing(p, r)
			return false
		}
	}
}

func (q *LCRQ) closeRing(p *machine.Proc, r uint64) {
	for {
		t := p.Read(r + lcrqTailOff)
		if t&lcrqClosedBit != 0 {
			return
		}
		//lint:ignore casloop monotonic flag-set accounted by the machine's recorder; a failed CAS means tail moved or the bit is set
		if p.CAS(r+lcrqTailOff, t, t|lcrqClosedBit) {
			return
		}
	}
}

// ringDequeue attempts to take the oldest element of ring r.
func (q *LCRQ) ringDequeue(p *machine.Proc, r uint64) (uint64, bool) {
	for {
		h := p.FAA(r+lcrqHeadOff, 1)
		cell := q.cellAddrOf(r, h)
		for {
			s := p.Read(cell)
			idx := p.Read(s)
			val := p.Read(s + 8)
			if val != 0 && idx == h {
				ns := q.newSlot(p, h+uint64(q.ringSize), 0)
				//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder (§3 accounting at the simulation layer)
				if p.CAS(cell, s, ns) {
					return val, true
				}
				continue
			}
			if val == 0 && idx <= h {
				// The enqueuer for h has not arrived: re-arm the cell
				// past h so a late enqueuer cannot publish into a slot
				// we have logically passed.
				ns := q.newSlot(p, h+uint64(q.ringSize), 0)
				if !p.CAS(cell, s, ns) {
					continue
				}
			}
			break
		}
		if t := p.Read(r+lcrqTailOff) &^ lcrqClosedBit; t <= h+1 {
			q.fixState(p, r)
			return 0, false
		}
	}
}

// fixState repairs head > tail after empty dequeue bursts.
func (q *LCRQ) fixState(p *machine.Proc, r uint64) {
	for {
		h := p.Read(r + lcrqHeadOff)
		t := p.Read(r + lcrqTailOff)
		if t&lcrqClosedBit != 0 || t >= h {
			return
		}
		//lint:ignore casloop monotonic repair accounted by the machine's recorder; a failed CAS means another thread advanced tail
		if p.CAS(r+lcrqTailOff, t, h) {
			return
		}
	}
}

// Enqueue appends v, opening a fresh ring when the current one closes.
func (q *LCRQ) Enqueue(p *machine.Proc, tid int, v uint64) {
	checkValue(v)
	for {
		r := p.Read(q.tailRingA)
		if next := p.Read(r + lcrqNextOff); next != 0 {
			//lint:ignore casloop helping CAS accounted by the machine's recorder; catches the tail-ring pointer up
			p.CAS(q.tailRingA, r, next)
			continue
		}
		if q.ringEnqueue(p, r, v) {
			return
		}
		nr := q.newRing(p.Socket())
		q.ringEnqueue(p, nr, v) // trivially succeeds on a private ring
		if p.CAS(r+lcrqNextOff, 0, nr) {
			p.CAS(q.tailRingA, r, nr)
			return
		}
		// Lost the race to append a ring; the abandoned one is garbage.
	}
}

// Dequeue removes the oldest element.
func (q *LCRQ) Dequeue(p *machine.Proc, tid int) (uint64, bool) {
	for {
		r := p.Read(q.headRingA)
		if v, ok := q.ringDequeue(p, r); ok {
			return v, true
		}
		next := p.Read(r + lcrqNextOff)
		if next == 0 {
			return 0, false
		}
		if v, ok := q.ringDequeue(p, r); ok {
			return v, true
		}
		//lint:ignore casloop helping CAS accounted by the machine's recorder; advances the head-ring pointer past a drained ring
		p.CAS(q.headRingA, r, next)
	}
}
