package simqueue

import (
	"testing"

	"repro/internal/machine"
)

// A dequeuer that overtakes its enqueuer poisons the cell; the enqueuer
// must fall forward to a fresh index and the element must still arrive.
func TestFAAQPoisonedCellRecovery(t *testing.T) {
	m := testMachine(1)
	q := NewFAAQ(m, FAAQOptions{SegSize: 8, Threads: 1})
	m.Go(0, func(p *machine.Proc) {
		// Manually play an overtaking dequeuer: claim index 0 and poison
		// its cell before any enqueuer arrives.
		idx := p.FAA(q.deqA, 1)
		cell := q.findCell(p, 0, idx)
		if got := p.Swap(cell, sentinelEmpty); got != 0 {
			t.Errorf("expected to poison an empty cell, found %#x", got)
		}
		// The enqueuer now claims index 0, finds it poisoned, retries at 1.
		q.Enqueue(p, 0, 42)
		if got := p.Read(q.enqA); got != 2 {
			t.Errorf("enqueue counter = %d, want 2 (one poisoned attempt)", got)
		}
		// The next dequeue claims index 1 and finds the element.
		v, ok := q.Dequeue(p, 0)
		if !ok || v != 42 {
			t.Errorf("dequeue got %d,%v; want 42,true", v, ok)
		}
	})
	m.Run()
}

// With CombineLimit 1 the combiner role is handed over constantly; all
// elements still arrive exactly once.
func TestCCQTinyCombineLimit(t *testing.T) {
	const threads, per = 6, 20
	m := testMachine(threads)
	q := NewCCQ(m, threads, 0)
	q.CombineLimit = 1
	for c := 0; c < threads; c++ {
		c := c
		m.Go(c, func(p *machine.Proc) {
			for i := 0; i < per; i++ {
				q.Enqueue(p, c, value(c, i))
			}
		})
	}
	m.Run()
	seen := map[uint64]bool{}
	m.Go(0, func(p *machine.Proc) {
		for {
			v, ok := q.Dequeue(p, 0)
			if !ok {
				return
			}
			if seen[v] {
				t.Errorf("duplicate %#x", v)
			}
			seen[v] = true
		}
	})
	m.Run()
	if len(seen) != threads*per {
		t.Fatalf("drained %d of %d", len(seen), threads*per)
	}
}

// The BQ tail pointer may lag arbitrarily; enqueues must find the real
// tail and repair it.
func TestBQTailLagRepair(t *testing.T) {
	m := testMachine(2)
	q := NewBQ(m, 0)
	m.Go(0, func(p *machine.Proc) {
		for i := 0; i < 30; i++ {
			q.Enqueue(p, 0, value(0, i))
		}
		// Drag the tail pointer all the way back to the head sentinel.
		head := p.Read(q.headA)
		p.Write(q.tailA, head)
		// Enqueues must recover by walking to the real tail.
		for i := 30; i < 40; i++ {
			q.Enqueue(p, 0, value(0, i))
		}
		for i := 0; i < 40; i++ {
			v, ok := q.Dequeue(p, 0)
			if !ok || v != value(0, i) {
				t.Errorf("index %d: got %#x,%v", i, v, ok)
				return
			}
		}
	})
	m.Run()
}

// Dequeue on a drained-then-refilled SBQ keeps working across node
// boundaries (head passes retired nodes, reclamation recycles them).
func TestSBQDrainRefillCycles(t *testing.T) {
	m := testMachine(2)
	q := NewSBQ(m, SBQOptions{BasketSize: 2, Enqueuers: 2, Threads: 2})
	m.Go(0, func(p *machine.Proc) {
		for round := 0; round < 6; round++ {
			for i := 0; i < 10; i++ {
				q.Enqueue(p, 0, value(round, i))
			}
			for i := 0; i < 10; i++ {
				v, ok := q.Dequeue(p, 0)
				if !ok || v != value(round, i) {
					t.Errorf("round %d index %d: got %#x,%v", round, i, v, ok)
					return
				}
			}
			if _, ok := q.Dequeue(p, 0); ok {
				t.Errorf("round %d: drained queue not empty", round)
				return
			}
		}
	})
	m.Run()
	if q.FreedNodes == 0 {
		t.Error("reclamation never recycled a node across drain cycles")
	}
}

// The WF-Queue stand-in reports emptiness without claiming an index when
// the counters say the queue is drained.
func TestFAAQEmptyDoesNotClaim(t *testing.T) {
	m := testMachine(1)
	q := NewFAAQ(m, FAAQOptions{SegSize: 8, Threads: 1})
	m.Go(0, func(p *machine.Proc) {
		if _, ok := q.Dequeue(p, 0); ok {
			t.Error("fresh queue returned an element")
		}
		if got := p.Read(q.deqA); got != 0 {
			t.Errorf("empty dequeue advanced the counter to %d", got)
		}
	})
	m.Run()
}
