package simqueue

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/machine"
)

// mk builds a queue of the named flavor for a machine with the given
// thread counts (enqueuer tids 0..enq-1, total tids 0..threads-1).
func mk(m *Machine, flavor string, enq, threads int) Queue {
	switch flavor {
	case "sbq-htm":
		return NewSBQ(m, SBQOptions{BasketSize: max(enq, 1), Enqueuers: max(enq, 1), Threads: threads, Primitive: core.Bind(threads, core.DefaultOptions()), Name: "SBQ-HTM"})
	case "sbq-cas":
		return NewSBQ(m, SBQOptions{BasketSize: max(enq, 1), Enqueuers: max(enq, 1), Threads: threads, Append: PlainCAS, Name: "SBQ-CAS"})
	case "sbq-dcas":
		return NewSBQ(m, SBQOptions{BasketSize: max(enq, 1), Enqueuers: max(enq, 1), Threads: threads, Append: DelayedCAS(core.DefaultDelay), Name: "SBQ-DCAS"})
	case "bq":
		return NewBQ(m, 0)
	case "faaq":
		return NewFAAQ(m, FAAQOptions{SegSize: 64, Threads: threads})
	case "ccq":
		return NewCCQ(m, threads, 0)
	case "msq":
		return NewMSQ(m, 0)
	case "lcrq":
		return NewLCRQ(m, LCRQOptions{RingSize: 16})
	}
	panic("unknown flavor " + flavor)
}

var flavors = []string{"sbq-htm", "sbq-cas", "sbq-dcas", "bq", "faaq", "ccq", "msq", "lcrq"}

func testMachine(threads int) *Machine {
	cfg := machine.Default()
	for cfg.NumCores() < threads {
		cfg.CoresPerSocket *= 2
	}
	return machine.New(cfg)
}

// value encodes a unique element per (thread, seq).
func value(tid, seq int) uint64 { return uint64(tid+1)<<32 | uint64(seq+1) }

func TestSequentialFIFO(t *testing.T) {
	for _, f := range flavors {
		t.Run(f, func(t *testing.T) {
			m := testMachine(1)
			q := mk(m, f, 1, 1)
			const n = 50
			var got []uint64
			var emptyBefore, emptyAfter bool
			m.Go(0, func(p *machine.Proc) {
				_, ok := q.Dequeue(p, 0)
				emptyBefore = !ok
				for i := 0; i < n; i++ {
					q.Enqueue(p, 0, value(0, i))
				}
				for i := 0; i < n; i++ {
					v, ok := q.Dequeue(p, 0)
					if !ok {
						t.Errorf("dequeue %d reported empty", i)
						return
					}
					got = append(got, v)
				}
				_, ok = q.Dequeue(p, 0)
				emptyAfter = !ok
			})
			m.Run()
			if !emptyBefore || !emptyAfter {
				t.Errorf("emptiness: before=%v after=%v, want true,true", emptyBefore, emptyAfter)
			}
			for i, v := range got {
				if v != value(0, i) {
					t.Fatalf("position %d: got %#x want %#x (FIFO order broken)", i, v, value(0, i))
				}
			}
		})
	}
}

// runConcurrent drives P producers and C consumers, collects the complete
// history, and returns it along with the per-value delivery counts.
func runConcurrent(t *testing.T, f string, producers, consumers, perProducer int) []linearize.Op {
	t.Helper()
	threads := producers + consumers
	m := testMachine(threads)
	q := mk(m, f, producers, threads)
	histories := make([][]linearize.Op, threads)
	producersLeft := producers
	for pi := 0; pi < producers; pi++ {
		pi := pi
		m.Go(pi, func(p *machine.Proc) {
			p.Delay(p.RandN(300))
			for i := 0; i < perProducer; i++ {
				start := p.Now()
				q.Enqueue(p, pi, value(pi, i))
				histories[pi] = append(histories[pi], linearize.Op{
					Kind: linearize.Enq, Value: value(pi, i), Start: start, End: p.Now(), Thread: pi,
				})
			}
			producersLeft--
		})
	}
	want := producers * perProducer
	delivered := 0
	for ci := 0; ci < consumers; ci++ {
		tid := producers + ci
		m.Go(tid, func(p *machine.Proc) {
			p.Delay(p.RandN(300))
			for {
				if delivered >= want && producersLeft == 0 {
					return
				}
				start := p.Now()
				v, ok := q.Dequeue(p, tid)
				op := linearize.Op{Kind: linearize.Deq, Start: start, End: p.Now(), Thread: tid}
				if ok {
					op.Value = v
					delivered++
				} else {
					op.Empty = true
					p.Delay(200)
				}
				histories[tid] = append(histories[tid], op)
			}
		})
	}
	m.Run()
	if delivered != want {
		t.Fatalf("%s: delivered %d of %d elements", f, delivered, want)
	}
	var all []linearize.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	return all
}

func TestConcurrentDeliveryAndLinearizability(t *testing.T) {
	shapes := []struct{ p, c, n int }{
		{4, 4, 40},
		{8, 2, 30},
		{2, 8, 30},
		{1, 6, 40},
		{6, 1, 30},
	}
	for _, f := range flavors {
		for _, s := range shapes {
			t.Run(fmt.Sprintf("%s/p%dc%d", f, s.p, s.c), func(t *testing.T) {
				h := runConcurrent(t, f, s.p, s.c, s.n)
				if v := linearize.Check(h); v != nil {
					t.Fatalf("%s: %v", f, v)
				}
			})
		}
	}
}

func TestProducerOnlyThenDrain(t *testing.T) {
	for _, f := range flavors {
		t.Run(f, func(t *testing.T) {
			const producers, per = 10, 25
			m := testMachine(producers + 1)
			q := mk(m, f, producers, producers+1)
			for pi := 0; pi < producers; pi++ {
				pi := pi
				m.Go(pi, func(p *machine.Proc) {
					for i := 0; i < per; i++ {
						q.Enqueue(p, pi, value(pi, i))
					}
				})
			}
			m.Run()
			// Drain sequentially and verify the multiset.
			m2 := 0
			seen := make(map[uint64]bool)
			m.Go(producers, func(p *machine.Proc) {
				for {
					v, ok := q.Dequeue(p, producers)
					if !ok {
						return
					}
					if seen[v] {
						t.Errorf("duplicate element %#x", v)
					}
					seen[v] = true
					m2++
				}
			})
			m.Run()
			if m2 != producers*per {
				t.Fatalf("drained %d of %d", m2, producers*per)
			}
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, f := range flavors {
		t.Run(f, func(t *testing.T) {
			run := func() uint64 {
				m := testMachine(8)
				q := mk(m, f, 4, 8)
				for pi := 0; pi < 4; pi++ {
					pi := pi
					m.Go(pi, func(p *machine.Proc) {
						for i := 0; i < 15; i++ {
							q.Enqueue(p, pi, value(pi, i))
						}
					})
				}
				got := 0
				for ci := 4; ci < 8; ci++ {
					ci := ci
					m.Go(ci, func(p *machine.Proc) {
						for got < 60 {
							if _, ok := q.Dequeue(p, ci); ok {
								got++
							} else {
								p.Delay(100)
							}
						}
					})
				}
				m.Run()
				return m.Now()
			}
			if a, b := run(), run(); a != b {
				t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// SBQ-specific unit tests.

func TestSBQBasketInsertExtract(t *testing.T) {
	m := testMachine(4)
	q := NewSBQ(m, SBQOptions{BasketSize: 4, Enqueuers: 4, Threads: 4})
	node := q.newNode(0)
	m.Go(0, func(p *machine.Proc) {
		if !q.basketInsert(p, node, 0, 100) {
			t.Error("insert into fresh cell failed")
		}
		if q.basketInsert(p, node, 0, 200) {
			t.Error("second insert into same cell succeeded")
		}
		if !q.basketInsert(p, node, 2, 300) {
			t.Error("insert into other cell failed")
		}
		got := map[uint64]bool{}
		for {
			v, ok := q.basketExtract(p, node, 0)
			if !ok {
				break
			}
			got[v] = true
		}
		if !got[100] || !got[300] || len(got) != 2 {
			t.Errorf("extracted %v, want {100,300}", got)
		}
		if !q.basketEmpty(p, node) {
			t.Error("basket not empty after exhaustion")
		}
		if q.basketInsert(p, node, 1, 400) {
			// Inserter 1's cell was poisoned by the extractor sweep.
			t.Error("insert succeeded after basket exhausted")
		}
	})
	m.Run()
}

func TestSBQBasketExtractorClosesBasket(t *testing.T) {
	// Once extraction exhausts the index space, the empty bit must be set
	// so later extractors fail fast without touching the counter.
	m := testMachine(2)
	q := NewSBQ(m, SBQOptions{BasketSize: 2, Enqueuers: 2, Threads: 2})
	node := q.newNode(0)
	m.Go(0, func(p *machine.Proc) {
		q.basketInsert(p, node, 0, 11)
		q.basketExtract(p, node, 0) // takes 11 at index 0
		q.basketExtract(p, node, 0) // hits index 1 (INSERT), then exhausts
		before := p.Read(node + q.offCounter(0))
		if _, ok := q.basketExtract(p, node, 0); ok {
			t.Error("extract from exhausted basket succeeded")
		}
		if p.Read(node+q.offCounter(0)) != before {
			t.Error("failed extract after empty bit still did FAA")
		}
	})
	m.Run()
}

func TestSBQNodeReuseAndReclamation(t *testing.T) {
	const producers, consumers, per = 6, 2, 40
	threads := producers + consumers
	m := testMachine(threads)
	q := NewSBQ(m, SBQOptions{BasketSize: producers, Enqueuers: producers, Threads: threads, Name: "SBQ"})
	for pi := 0; pi < producers; pi++ {
		pi := pi
		m.Go(pi, func(p *machine.Proc) {
			for i := 0; i < per; i++ {
				q.Enqueue(p, pi, value(pi, i))
			}
		})
	}
	got := 0
	for ci := producers; ci < threads; ci++ {
		ci := ci
		m.Go(ci, func(p *machine.Proc) {
			for got < producers*per {
				if _, ok := q.Dequeue(p, ci); ok {
					got++
				} else {
					p.Delay(150)
				}
			}
		})
	}
	m.Run()
	if got != producers*per {
		t.Fatalf("delivered %d of %d", got, producers*per)
	}
	if q.FreedNodes == 0 {
		t.Error("epoch reclamation never freed a node")
	}
}

func TestSBQEnqueuerIDBound(t *testing.T) {
	m := testMachine(2)
	q := NewSBQ(m, SBQOptions{BasketSize: 1, Enqueuers: 1, Threads: 2})
	m.Go(0, func(p *machine.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range enqueuer id did not panic")
			}
		}()
		q.Enqueue(p, 1, 5)
	})
	m.Run()
}

func TestSBQMoreEnqueuersThanCellsPanics(t *testing.T) {
	m := testMachine(2)
	defer func() {
		if recover() == nil {
			t.Error("Enqueuers > BasketSize did not panic")
		}
	}()
	NewSBQ(m, SBQOptions{BasketSize: 2, Enqueuers: 3})
}

func TestInvalidValuePanics(t *testing.T) {
	m := testMachine(1)
	q := NewMSQ(m, 0)
	m.Go(0, func(p *machine.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("sentinel-colliding value did not panic")
			}
		}()
		q.Enqueue(p, 0, sentinelEmpty)
	})
	m.Run()
}

func TestFAAQSegmentGrowth(t *testing.T) {
	m := testMachine(1)
	q := NewFAAQ(m, FAAQOptions{SegSize: 8, Threads: 1})
	const n = 100 // forces many segments
	m.Go(0, func(p *machine.Proc) {
		for i := 0; i < n; i++ {
			q.Enqueue(p, 0, value(0, i))
		}
		for i := 0; i < n; i++ {
			v, ok := q.Dequeue(p, 0)
			if !ok || v != value(0, i) {
				t.Errorf("dequeue %d: got %#x,%v", i, v, ok)
				return
			}
		}
	})
	m.Run()
}

func TestTaggedPointerHelpers(t *testing.T) {
	p := uint64(0x1000)
	if isDeleted(tag(p, false)) {
		t.Error("clean pointer reads deleted")
	}
	if !isDeleted(tag(p, true)) {
		t.Error("deleted pointer reads clean")
	}
	if ptrOf(tag(p, true)) != p {
		t.Error("ptrOf lost bits")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
