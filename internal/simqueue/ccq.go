package simqueue

import "repro/internal/machine"

// CCQ is a combining queue in the style of Fatourou & Kallimanis's
// CC-Queue (CC-Synch combining over a sequential two-lock-free queue): a
// thread SWAPs its request node onto a global combining list and spins
// locally; the thread at the head of the list becomes the combiner and
// serially applies a batch of pending operations.
//
// Per-thread request node layout (each on its own lines):
//
//	+0   wait      (spun on locally; cleared by the combiner)
//	+8   completed (1 if the combiner applied the op)
//	+16  isEnqueue
//	+24  arg       (enqueue value)
//	+32  ret       (dequeue result; sentinelEmpty = queue empty)
//	+64  next      (combining-list link, separate line)
type CCQ struct {
	m *Machine

	lockA machine.Addr // combining-list tail (SWAP target)
	headA machine.Addr // sequential queue head (combiner-only)
	tailA machine.Addr // sequential queue tail (combiner-only)

	// nodes holds each thread's spare request node. CC-Synch rotates node
	// ownership: an op leaves its spare at the combining-list tail and
	// takes ownership of the node it announced its request in.
	nodes []uint64

	// CombineLimit bounds how many requests one combiner serves.
	CombineLimit int
}

const (
	ccWait    = 0
	ccDone    = 8
	ccIsEnq   = 16
	ccArg     = 24
	ccRet     = 32
	ccNext    = 64
	ccNodeLen = 128

	// Sequential queue node layout.
	ccqValOff  = 0
	ccqNextOff = 8
	ccqNodeLen = 64
)

// NewCCQ allocates a combining queue for the given number of threads.
func NewCCQ(m *Machine, threads, socket int) *CCQ {
	q := &CCQ{m: m, nodes: make([]uint64, threads), CombineLimit: 3 * threads}
	if q.CombineLimit == 0 {
		q.CombineLimit = 1
	}
	q.lockA = m.AllocLine(8, socket)
	q.headA = m.AllocLine(8, socket)
	q.tailA = m.AllocLine(8, socket)
	for i := range q.nodes {
		q.nodes[i] = m.AllocLine(ccNodeLen, socket)
	}
	// Dummy node at the combining-list tail: its owner-to-be is the first
	// arriving thread, which becomes the combiner immediately.
	dummy := m.AllocLine(ccNodeLen, socket)
	m.Poke(q.lockA, dummy)
	// Sequential queue sentinel.
	s := m.AllocLine(ccqNodeLen, socket)
	m.Poke(q.headA, s)
	m.Poke(q.tailA, s)
	return q
}

// Name implements Queue.
func (q *CCQ) Name() string { return "CC-Queue" }

// apply runs the CC-Synch protocol for one operation and returns the
// request's result word.
func (q *CCQ) apply(p *machine.Proc, tid int, isEnq bool, arg uint64) uint64 {
	// Leave our spare node at the list tail; we get the previous node to
	// announce our request in, and keep it as next op's spare.
	mine := q.nodes[tid]
	p.Write(mine+ccWait, 1)
	p.Write(mine+ccDone, 0)
	p.Write(mine+ccNext, 0)

	prev := p.Swap(q.lockA, mine)
	q.nodes[tid] = prev
	if isEnq {
		p.Write(prev+ccIsEnq, 1)
	} else {
		p.Write(prev+ccIsEnq, 0)
	}
	p.Write(prev+ccArg, arg)
	p.Write(prev+ccNext, mine)

	// Spin locally until the combiner either serves us or hands us the
	// combiner role.
	for p.Read(prev+ccWait) != 0 {
		p.Delay(32)
	}
	if p.Read(prev+ccDone) != 0 {
		return p.Read(prev + ccRet)
	}

	// We are the combiner: serve pending requests starting at our node.
	cur := prev
	served := 0
	for served < q.CombineLimit {
		next := p.Read(cur + ccNext)
		if next == 0 {
			break
		}
		q.applySequential(p, cur)
		p.Write(cur+ccDone, 1)
		p.Write(cur+ccWait, 0)
		cur = next
		served++
	}
	// Hand the combiner role to cur's owner (or, if cur is the list tail,
	// to whichever thread swaps in next and finds wait already clear).
	p.Write(cur+ccWait, 0)
	return p.Read(prev + ccRet)
}

// applySequential executes one announced operation against the sequential
// queue. Only the combiner calls it, so plain reads/writes suffice.
func (q *CCQ) applySequential(p *machine.Proc, req uint64) {
	if p.Read(req+ccIsEnq) != 0 {
		n := q.m.AllocLine(ccqNodeLen, p.Socket())
		p.Write(n+ccqValOff, p.Read(req+ccArg))
		tail := p.Read(q.tailA)
		p.Write(tail+ccqNextOff, n)
		p.Write(q.tailA, n)
		p.Write(req+ccRet, 0)
		return
	}
	head := p.Read(q.headA)
	next := p.Read(head + ccqNextOff)
	if next == 0 {
		p.Write(req+ccRet, sentinelEmpty)
		return
	}
	p.Write(q.headA, next)
	p.Write(req+ccRet, p.Read(next+ccqValOff))
}

// Enqueue appends v through the combiner.
func (q *CCQ) Enqueue(p *machine.Proc, tid int, v uint64) {
	checkValue(v)
	q.apply(p, tid, true, v)
}

// Dequeue removes the oldest element through the combiner.
func (q *CCQ) Dequeue(p *machine.Proc, tid int) (uint64, bool) {
	r := q.apply(p, tid, false, 0)
	if r == sentinelEmpty {
		return 0, false
	}
	return r, true
}
