package simqueue

import (
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/machine"
	"repro/internal/machine/policy"
)

// The ISSUE's HTM-disabled gate: SBQ built on policy-paced TxCAS must stay
// linearizable and deliver every element when the injector refuses every
// _xbegin (the TSX-microcode-disabled scenario) — every append resolved by
// the software-fallback CAS.

// runSBQFaulty runs the mixed producer/consumer workload on an SBQ-HTM
// whose TxCAS is paced by pol, under the given fault plan, and checks
// delivery and linearizability.
func runSBQFaulty(t *testing.T, plan machine.FaultPlan, pol policy.RetryPolicy) *machine.Machine {
	t.Helper()
	const producers, consumers, per = 6, 3, 25
	threads := producers + consumers
	cfg := machine.Default()
	cfg.Faults = plan
	m := machine.New(cfg)
	opt := core.DefaultOptions()
	opt.Policy = pol
	q := NewSBQ(m, SBQOptions{
		BasketSize: producers, Enqueuers: producers, Threads: threads,
		Primitive: core.Bind(threads, opt),
	})
	histories := make([][]linearize.Op, threads)
	left := producers
	for pi := 0; pi < producers; pi++ {
		pi := pi
		m.Go(pi, func(p *machine.Proc) {
			p.Delay(p.RandN(200))
			for i := 0; i < per; i++ {
				start := p.Now()
				q.Enqueue(p, pi, value(pi, i))
				histories[pi] = append(histories[pi], linearize.Op{
					Kind: linearize.Enq, Value: value(pi, i), Start: start, End: p.Now(),
				})
			}
			left--
		})
	}
	want := producers * per
	got := 0
	for ci := 0; ci < consumers; ci++ {
		tid := producers + ci
		m.Go(tid, func(p *machine.Proc) {
			for got < want || left > 0 {
				start := p.Now()
				v, ok := q.Dequeue(p, tid)
				op := linearize.Op{Kind: linearize.Deq, Start: start, End: p.Now()}
				if ok {
					op.Value = v
					got++
				} else {
					op.Empty = true
					p.Delay(200)
				}
				histories[tid] = append(histories[tid], op)
			}
		})
	}
	m.Run()
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	var all []linearize.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	if v := linearize.Check(all); v != nil {
		t.Fatal(v)
	}
	return m
}

func TestSBQHTMLinearizableWithHTMDisabled(t *testing.T) {
	pol := policy.ImmediateRetry{Jitter: core.DefaultRetryJitter}
	m := runSBQFaulty(t, machine.FaultPlan{DisableHTM: true}, pol)
	if m.Stats.TxCommits != 0 {
		t.Fatalf("TxCommits = %d with HTM disabled, want 0", m.Stats.TxCommits)
	}
	if m.Stats.CASFallbacks == 0 {
		t.Fatal("no software fallbacks recorded: appends resolved by what?")
	}
	if m.Stats.TxAbortDisabled == 0 {
		t.Fatal("no disabled aborts recorded")
	}
}

// The legacy loop (nil policy) also survives disablement: its MaxRetries
// progression breaks on the first Disabled abort and falls back.
func TestSBQHTMLegacyLoopWithHTMDisabled(t *testing.T) {
	m := runSBQFaulty(t, machine.FaultPlan{DisableHTM: true}, nil)
	if m.Stats.CASFallbacks == 0 {
		t.Fatal("legacy loop recorded no software fallbacks under disablement")
	}
}

// The microcode update landing mid-run: HTM commits early, is disabled at
// the trip point, and the queue keeps delivering on the fallback path.
func TestSBQHTMSurvivesMidRunDisablement(t *testing.T) {
	pol := policy.ImmediateRetry{Jitter: core.DefaultRetryJitter}
	m := runSBQFaulty(t, machine.FaultPlan{DisableHTMAfter: 40, CrossSocketJitter: 20}, pol)
	if !m.HTMDisabled() {
		t.Fatal("run finished before the DisableHTMAfter trip point; raise the workload size")
	}
	if m.Stats.TxCommits == 0 {
		t.Fatal("no transactional commits before the trip point")
	}
	if m.Stats.CASFallbacks == 0 {
		t.Fatal("no software fallbacks after the trip point")
	}
}

// Stress the same shape under heavy spurious aborts plus cross-socket
// jitter, through each remaining built-in policy.
func TestSBQHTMPolicyStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	policies := map[string]policy.RetryPolicy{
		"backoff":     policy.ExponentialBackoff{Base: 64, Max: 4096},
		"budget8":     policy.AbortBudget{Budget: 8, Inner: policy.ImmediateRetry{Jitter: core.DefaultRetryJitter}},
		"delayed-cas": policy.DelayedCAS{Delay: core.DefaultDelay, Jitter: core.DefaultDelayJitter},
	}
	for name, pol := range policies {
		t.Run(name, func(t *testing.T) {
			runSBQFaulty(t, machine.FaultPlan{SpuriousAbortProb: 0.4, CrossSocketJitter: 30}, pol)
		})
	}
}
