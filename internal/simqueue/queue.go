// Package simqueue implements the concurrent queues evaluated in the paper
// on the simulated machine: SBQ (the scalable baskets queue, Algorithms 2-9,
// with TxCAS or CAS try_append), the original baskets queue, an FAA-based
// queue standing in for Yang & Mellor-Crummey's wait-free queue, the
// CC-Synch combining queue, and the Michael-Scott queue.
//
// Every queue operates on simulated memory through machine.Proc operations,
// so its performance emerges from the simulated coherence protocol exactly
// as the paper's analysis predicts.
//
// Thread-id convention: callers pass a dense global thread id. Queues with
// per-thread state (protector slots, basket cells, combiner nodes) size it
// from the Threads/Enqueuers constructor parameters; enqueuer threads must
// use ids 0..Enqueuers-1.
package simqueue

import "repro/internal/machine"

// Queue is an MPMC FIFO queue living in simulated memory.
type Queue interface {
	// Enqueue appends v. v must be a valid element value (see ValidValue).
	Enqueue(p *machine.Proc, tid int, v uint64)
	// Dequeue removes and returns the oldest element, or ok=false if the
	// queue appeared empty.
	Dequeue(p *machine.Proc, tid int) (v uint64, ok bool)
	// Name identifies the implementation in benchmark output.
	Name() string
}

// Element sentinels. Queues reserve a couple of values for internal use;
// elements must avoid them.
const (
	// sentinelInsert marks a basket cell not yet written by its inserter.
	sentinelInsert = 0
	// sentinelEmpty marks a basket or ring cell claimed by an extractor.
	sentinelEmpty = ^uint64(0)
)

// MinValue and MaxValue bound the element values accepted by every queue in
// this package.
const (
	MinValue = uint64(1)
	MaxValue = ^uint64(0) - 1
)

// ValidValue reports whether v may be stored in the queues of this package.
func ValidValue(v uint64) bool { return v >= MinValue && v <= MaxValue }

func checkValue(v uint64) {
	if !ValidValue(v) {
		panic("simqueue: element value collides with an internal sentinel")
	}
}

// Tagged pointers: the original baskets queue stores a "deleted" mark in the
// low bit of a next pointer. Simulated nodes are 64-byte aligned, so the
// bit is free, exactly as in the paper's C implementation.

func tag(ptr uint64, deleted bool) uint64 {
	if deleted {
		return ptr | 1
	}
	return ptr
}

func ptrOf(w uint64) uint64 { return w &^ 1 }

func isDeleted(w uint64) bool { return w&1 != 0 }
