package simqueue

import (
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/machine"
)

// SBQ-HTM must stay linearizable when the HTM spuriously aborts
// transactions (TxCAS retries them; the queue never observes a difference).
func TestSBQHTMLinearizableUnderSpuriousAborts(t *testing.T) {
	const producers, consumers, per = 6, 3, 25
	threads := producers + consumers
	cfg := machine.Default()
	cfg.SpuriousAbortEvery = 3
	m := machine.New(cfg)
	app, _ := NewTxCASAppend(threads, core.DefaultOptions())
	q := NewSBQ(m, SBQOptions{
		BasketSize: producers, Enqueuers: producers, Threads: threads, Append: app,
	})
	histories := make([][]linearize.Op, threads)
	left := producers
	for pi := 0; pi < producers; pi++ {
		pi := pi
		m.Go(pi, func(p *machine.Proc) {
			p.Delay(p.RandN(200))
			for i := 0; i < per; i++ {
				start := p.Now()
				q.Enqueue(p, pi, value(pi, i))
				histories[pi] = append(histories[pi], linearize.Op{
					Kind: linearize.Enq, Value: value(pi, i), Start: start, End: p.Now(),
				})
			}
			left--
		})
	}
	want := producers * per
	got := 0
	for ci := 0; ci < consumers; ci++ {
		tid := producers + ci
		m.Go(tid, func(p *machine.Proc) {
			for got < want || left > 0 {
				start := p.Now()
				v, ok := q.Dequeue(p, tid)
				op := linearize.Op{Kind: linearize.Deq, Start: start, End: p.Now()}
				if ok {
					op.Value = v
					got++
				} else {
					op.Empty = true
					p.Delay(200)
				}
				histories[tid] = append(histories[tid], op)
			}
		})
	}
	m.Run()
	if m.Stats.TxAbortSpurious == 0 {
		t.Fatal("injection never fired")
	}
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	var all []linearize.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	if v := linearize.Check(all); v != nil {
		t.Fatal(v)
	}
}
