package simqueue

import "repro/internal/machine"

// FAAQ is an FAA-based "infinite array" queue: enqueuers and dequeuers
// claim cells with one fetch-and-add each on a pair of global counters, and
// resolve enqueue/dequeue races on a cell with a CAS/SWAP protocol.
//
// It stands in for Yang & Mellor-Crummey's WF-Queue, the paper's fastest
// baseline: this is exactly WF-Queue's fast path, whose contended-FAA cost
// profile is what the paper compares SBQ against (§6.1 notes the slow path
// never runs in practice). The wait-free helping machinery is omitted, so
// the progress guarantee here is lock-free rather than wait-free; see
// DESIGN.md for the substitution rationale.
//
// Layout: the queue holds enqueue/dequeue counters on separate lines and a
// linked list of fixed-size segments of cells.
type FAAQ struct {
	m       *Machine
	segSize int

	enqA   machine.Addr // enqueue counter
	deqA   machine.Addr // dequeue counter
	firstA machine.Addr // pointer to the first segment

	// per-thread cached segment pointer to avoid rewalking the list
	lastSeg []uint64
}

const (
	faaqSegID    = 0  // segment's first cell index
	faaqSegNext  = 8  // next segment pointer
	faaqSegCells = 64 // cells start on their own line
)

// FAAQOptions configures an FAAQ.
type FAAQOptions struct {
	// SegSize is the number of cells per segment (default 1024).
	SegSize int
	// Threads sizes the per-thread segment caches.
	Threads int
	// Socket homes the queue's memory.
	Socket int
}

// NewFAAQ allocates an FAA-based queue on m.
func NewFAAQ(m *Machine, opt FAAQOptions) *FAAQ {
	if opt.SegSize <= 0 {
		opt.SegSize = 1024
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	q := &FAAQ{m: m, segSize: opt.SegSize, lastSeg: make([]uint64, opt.Threads)}
	q.enqA = m.AllocLine(8, opt.Socket)
	q.deqA = m.AllocLine(8, opt.Socket)
	q.firstA = m.AllocLine(8, opt.Socket)
	seg := q.newSeg(opt.Socket, 0)
	m.Poke(q.firstA, seg)
	for i := range q.lastSeg {
		q.lastSeg[i] = seg
	}
	return q
}

// Name implements Queue.
func (q *FAAQ) Name() string { return "FAA-Queue" }

func (q *FAAQ) newSeg(socket int, firstIdx uint64) uint64 {
	s := q.m.AllocLine(faaqSegCells+8*q.segSize, socket)
	q.m.Poke(s+faaqSegID, firstIdx)
	return s
}

// findCell walks (and extends) the segment list to the cell with global
// index idx, caching the segment per thread.
func (q *FAAQ) findCell(p *machine.Proc, tid int, idx uint64) machine.Addr {
	seg := q.lastSeg[tid]
	segFirst := p.Read(seg + faaqSegID)
	if segFirst > idx {
		// Cached segment is past idx (stale cache after wraparound never
		// happens — indices are monotonic — but a fresh thread may cache
		// a later segment than a lagging dequeuer needs).
		seg = p.Read(q.firstA)
		segFirst = p.Read(seg + faaqSegID)
	}
	for idx >= segFirst+uint64(q.segSize) {
		next := p.Read(seg + faaqSegNext)
		if next == 0 {
			n := q.newSeg(p.Socket(), segFirst+uint64(q.segSize))
			//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder; a failed extend means another thread appended
			if !p.CAS(seg+faaqSegNext, 0, n) {
				next = p.Read(seg + faaqSegNext)
			} else {
				next = n
			}
		}
		seg = next
		segFirst = p.Read(seg + faaqSegID)
	}
	q.lastSeg[tid] = seg
	return seg + faaqSegCells + 8*machine.Addr(idx-segFirst)
}

// Enqueue claims a cell with one FAA and publishes v in it; if a racing
// dequeuer already poisoned the cell, it retries with a fresh index.
func (q *FAAQ) Enqueue(p *machine.Proc, tid int, v uint64) {
	checkValue(v)
	for {
		idx := p.FAA(q.enqA, 1)
		cell := q.findCell(p, tid, idx)
		//lint:ignore casloop p.CAS accounts attempts and failures in the machine's recorder; each retry claims a fresh FAA index
		if p.CAS(cell, 0, v) {
			return
		}
		// Cell was taken by a dequeuer that overtook us; try the next.
	}
}

// Dequeue claims a cell with one FAA and takes its value, poisoning cells
// whose enqueuer has not arrived yet.
func (q *FAAQ) Dequeue(p *machine.Proc, tid int) (uint64, bool) {
	for {
		if p.Read(q.deqA) >= p.Read(q.enqA) {
			return 0, false // empty
		}
		idx := p.FAA(q.deqA, 1)
		cell := q.findCell(p, tid, idx)
		v := p.Swap(cell, sentinelEmpty)
		if v != 0 {
			return v, true
		}
		// The enqueuer assigned this cell has not written yet; it will
		// see the poison and retry elsewhere. Claim the next cell.
	}
}
