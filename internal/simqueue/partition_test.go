package simqueue

import (
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/machine"
)

// mkPart builds an SBQ with partitioned extraction (the §8 future-work
// extension) over TxCAS append.
func mkPart(m *Machine, enq, threads, parts int) *SBQ {
	return NewSBQ(m, SBQOptions{
		BasketSize: enq, Enqueuers: enq, Threads: threads,
		Primitive: core.Bind(threads, core.DefaultOptions()),
		Name:      "SBQ-HTM-PB", Partitions: parts,
	})
}

func TestPartitionedSBQSequentialFIFOish(t *testing.T) {
	// With one enqueuer, partitioning degenerates to K=1 and strict FIFO
	// must hold.
	m := testMachine(1)
	q := mkPart(m, 1, 1, 4)
	m.Go(0, func(p *machine.Proc) {
		for i := 0; i < 40; i++ {
			q.Enqueue(p, 0, value(0, i))
		}
		for i := 0; i < 40; i++ {
			v, ok := q.Dequeue(p, 0)
			if !ok || v != value(0, i) {
				t.Errorf("index %d: got %#x,%v", i, v, ok)
				return
			}
		}
	})
	m.Run()
}

func TestPartitionedSBQLinearizable(t *testing.T) {
	for _, parts := range []int{2, 4, 8} {
		parts := parts
		t.Run(map[int]string{2: "K=2", 4: "K=4", 8: "K=8"}[parts], func(t *testing.T) {
			const producers, consumers, per = 8, 4, 25
			threads := producers + consumers
			m := testMachine(threads)
			q := mkPart(m, producers, threads, parts)
			histories := make([][]linearize.Op, threads)
			left := producers
			for pi := 0; pi < producers; pi++ {
				pi := pi
				m.Go(pi, func(p *machine.Proc) {
					p.Delay(p.RandN(200))
					for i := 0; i < per; i++ {
						start := p.Now()
						q.Enqueue(p, pi, value(pi, i))
						histories[pi] = append(histories[pi], linearize.Op{
							Kind: linearize.Enq, Value: value(pi, i), Start: start, End: p.Now(),
						})
					}
					left--
				})
			}
			want := producers * per
			got := 0
			for ci := 0; ci < consumers; ci++ {
				tid := producers + ci
				m.Go(tid, func(p *machine.Proc) {
					for got < want || left > 0 {
						start := p.Now()
						v, ok := q.Dequeue(p, tid)
						op := linearize.Op{Kind: linearize.Deq, Start: start, End: p.Now()}
						if ok {
							op.Value = v
							got++
						} else {
							op.Empty = true
							p.Delay(200)
						}
						histories[tid] = append(histories[tid], op)
					}
				})
			}
			m.Run()
			if got != want {
				t.Fatalf("delivered %d of %d", got, want)
			}
			var all []linearize.Op
			for _, h := range histories {
				all = append(all, h...)
			}
			if v := linearize.Check(all); v != nil {
				t.Fatal(v)
			}
		})
	}
}

// The extension's point: extraction contention splits across partitions,
// so concurrent dequeues finish faster than with the single-FAA basket.
func TestPartitionedSBQReducesDequeueContention(t *testing.T) {
	run := func(parts int) uint64 {
		const consumers, per = 22, 60
		m := testMachine(2 * consumers)
		q := mkPart(m, consumers, 2*consumers, parts)
		// Prefill.
		for pi := 0; pi < consumers; pi++ {
			pi := pi
			m.Go(pi, func(p *machine.Proc) {
				for i := 0; i < per+8; i++ {
					q.Enqueue(p, pi, value(pi, i))
				}
			})
		}
		m.Run()
		start := m.Now()
		for ci := 0; ci < consumers; ci++ {
			tid := consumers + ci
			m.Go(ci, func(p *machine.Proc) {
				for i := 0; i < per; i++ {
					q.Dequeue(p, tid)
				}
			})
		}
		m.Run()
		return m.Now() - start
	}
	single := run(1)
	part := run(2)
	t.Logf("dequeue phase: K=1 %d cycles, K=2 %d cycles", single, part)
	// K=2 halves the per-counter chain without fragmenting the small
	// (B = enqueuers) baskets; higher K loses to fall-over probing — the
	// tradeoff EXPERIMENTS.md documents for this future-work extension.
	if part >= single {
		t.Errorf("partitioned extraction (%d cycles) not faster than single-FAA (%d cycles)", part, single)
	}
}

func TestPartitionsClamped(t *testing.T) {
	m := testMachine(2)
	q := NewSBQ(m, SBQOptions{BasketSize: 4, Enqueuers: 4, Threads: 4, Partitions: 100})
	if q.partitions != 4 {
		t.Fatalf("partitions = %d, want clamped to 4", q.partitions)
	}
	q2 := NewSBQ(m, SBQOptions{BasketSize: 4, Enqueuers: 4, Threads: 4, Partitions: -3})
	if q2.partitions != 1 {
		t.Fatalf("partitions = %d, want clamped to 1", q2.partitions)
	}
}

func TestPartitionBoundsCoverCells(t *testing.T) {
	m := testMachine(2)
	q := NewSBQ(m, SBQOptions{BasketSize: 10, Enqueuers: 10, Threads: 10, Partitions: 3})
	covered := make([]bool, 10)
	for k := 0; k < 3; k++ {
		lo, hi := q.partBounds(k)
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("cell %d in two partitions", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("cell %d uncovered", i)
		}
	}
}
