// Package linearize checks complete queue histories for linearizability
// using the aspect-oriented method the paper uses for SBQ's proof (§5.3.2,
// after Henzinger, Sezgin & Vafeiadis): assuming enqueued values are
// unique, a complete history is linearizable iff it is free of four
// violation patterns — VFresh, VRepeat, VOrd, and VWit.
//
// The checker runs in O(n log n), so it is cheap enough to run on every
// concurrent test's history, simulated or native.
package linearize

import (
	"fmt"
	"math"
	"sort"
)

// Kind distinguishes history operations.
type Kind uint8

// Operation kinds.
const (
	Enq Kind = iota
	Deq
)

// Op is one completed queue operation in a history. Start/End timestamps
// must come from a single total order (the simulator's clock, or an atomic
// counter shared by native threads).
type Op struct {
	Kind  Kind
	Value uint64 // enqueued value, or dequeued value when Empty is false
	Empty bool   // for Deq: the operation returned "queue empty"
	Start uint64
	End   uint64
	// Thread optionally records the executing thread for diagnostics.
	Thread int
}

// Violation describes a linearizability violation found in a history.
type Violation struct {
	// Aspect is one of "VFresh", "VRepeat", "VOrd", "VWit", or
	// "malformed" for histories that break the checker's preconditions.
	Aspect string
	Detail string
}

// Error implements error.
func (v *Violation) Error() string { return v.Aspect + ": " + v.Detail }

// Check scans a complete history for queue-semantics violations and
// returns the first violation found, or nil if the history is linearizable
// as a FIFO queue. Enqueued values must be unique.
func Check(hist []Op) *Violation {
	type enqInfo struct {
		start, end uint64
		// deqStart/deqEnd of the dequeue that returned this value;
		// deqStart is +inf when never dequeued.
		deqStart, deqEnd uint64
		dequeued         bool
	}
	const inf = math.MaxUint64

	enqs := make(map[uint64]*enqInfo, len(hist))
	for i := range hist {
		op := &hist[i]
		if op.Start > op.End {
			return &Violation{"malformed", fmt.Sprintf("op %+v ends before it starts", *op)}
		}
		if op.Kind == Enq {
			if _, dup := enqs[op.Value]; dup {
				return &Violation{"malformed", fmt.Sprintf("value %d enqueued twice; the checker requires unique values", op.Value)}
			}
			enqs[op.Value] = &enqInfo{start: op.Start, end: op.End, deqStart: inf}
		}
	}

	// VFresh and VRepeat.
	seen := make(map[uint64]bool, len(hist))
	for i := range hist {
		op := &hist[i]
		if op.Kind != Deq || op.Empty {
			continue
		}
		e, ok := enqs[op.Value]
		if !ok {
			return &Violation{"VFresh", fmt.Sprintf("dequeue returned %d, which was never enqueued", op.Value)}
		}
		if op.End < e.start {
			return &Violation{"VFresh", fmt.Sprintf("dequeue of %d completed at %d before its enqueue started at %d", op.Value, op.End, e.start)}
		}
		if seen[op.Value] {
			return &Violation{"VRepeat", fmt.Sprintf("value %d dequeued twice", op.Value)}
		}
		seen[op.Value] = true
		e.dequeued = true
		e.deqStart, e.deqEnd = op.Start, op.End
	}

	// Sort enqueue records by completion time for the sweeps below.
	byEnd := make([]*enqInfo, 0, len(enqs))
	for _, e := range enqs {
		byEnd = append(byEnd, e)
	}
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].end < byEnd[j].end })

	// prefixMaxDeqStart(t) = max deqStart over all enqueues with end < t.
	// A value of inf means some such element is never dequeued.
	prefix := func() func(t uint64) uint64 {
		i := 0
		cur := uint64(0)
		return func(t uint64) uint64 {
			for i < len(byEnd) && byEnd[i].end < t {
				if byEnd[i].deqStart > cur {
					cur = byEnd[i].deqStart
				}
				i++
			}
			return cur
		}
	}

	// VOrd: exists a,b with enq(a) preceding enq(b), b dequeued, and a's
	// dequeue missing or starting after b's dequeue completed. With the
	// prefix maximum of dequeue-start times (inf for never-dequeued) over
	// all a enqueued strictly before b, the condition collapses to
	// pm(b.enqStart) > b.deqEnd.
	{
		type q struct {
			value        uint64
			start, dqEnd uint64
		}
		var qs []q
		for v, e := range enqs {
			if e.dequeued {
				qs = append(qs, q{v, e.start, e.deqEnd})
			}
		}
		sort.Slice(qs, func(i, j int) bool { return qs[i].start < qs[j].start })
		pm := prefix()
		for _, b := range qs {
			if pm(b.start) > b.dqEnd {
				return &Violation{"VOrd", fmt.Sprintf("some element was enqueued strictly before %d yet dequeued after %d's dequeue completed (or never)", b.value, b.value)}
			}
		}
	}

	// VWit: a dequeue returned empty although some element was enqueued
	// before it started and not dequeued until after it completed.
	{
		pm := prefix()
		type nullDeq struct{ start, end uint64 }
		var nulls []nullDeq
		for i := range hist {
			if hist[i].Kind == Deq && hist[i].Empty {
				nulls = append(nulls, nullDeq{hist[i].Start, hist[i].End})
			}
		}
		sort.Slice(nulls, func(i, j int) bool { return nulls[i].start < nulls[j].start })
		for _, d := range nulls {
			if m := pm(d.start); m > d.end {
				return &Violation{"VWit", fmt.Sprintf("a dequeue over [%d,%d] returned empty although an element enqueued before %d stayed in the queue past %d", d.start, d.end, d.start, d.end)}
			}
		}
	}

	return nil
}

// Complete turns a history that may contain pending (unfinished)
// operations into a complete one the checker accepts, per the completion
// step of the aspect-oriented framework: pending enqueues whose value was
// dequeued are completed (their effect is visible), all other pending
// operations are dropped. A pending op is one with End == 0.
func Complete(hist []Op) []Op {
	dequeued := make(map[uint64]bool)
	var maxT uint64
	for i := range hist {
		op := &hist[i]
		if op.Kind == Deq && !op.Empty && op.End != 0 {
			dequeued[op.Value] = true
		}
		if op.End > maxT {
			maxT = op.End
		}
	}
	out := make([]Op, 0, len(hist))
	for _, op := range hist {
		if op.End != 0 {
			out = append(out, op)
			continue
		}
		if op.Kind == Enq && dequeued[op.Value] {
			op.End = maxT + 1 // took effect; close its interval
			out = append(out, op)
		}
	}
	return out
}
