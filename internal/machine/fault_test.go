package machine

import "testing"

// Spurious aborts must carry neither the conflict nor the explicit flag,
// and an aborted transaction's writes must not leak.
func TestSpuriousAbortStatus(t *testing.T) {
	cfg := small()
	cfg.SpuriousAbortEvery = 1 // every transaction
	m := New(cfg)
	a := m.AllocLine(8, 0)
	var st AbortStatus
	var ok bool
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			tx.Read(a)
			tx.Delay(1000) // give the injected interrupt time to land
			tx.Write(a, 1)
		})
	})
	m.Run()
	if ok {
		t.Fatal("transaction survived guaranteed spurious abort")
	}
	if st.Conflict || st.Explicit {
		t.Fatalf("spurious abort mislabeled: %+v", st)
	}
	if m.Stats.TxAbortSpurious == 0 {
		t.Fatal("spurious abort not counted")
	}
	if m.Peek(a) != 0 {
		t.Fatal("aborted write leaked")
	}
}

// A transaction whose footprint exceeds the configured capacity aborts
// with the Capacity flag and leaks nothing.
func TestCapacityAbortOnRead(t *testing.T) {
	cfg := small()
	cfg.TxCapacityLines = 4
	m := New(cfg)
	addrs := make([]Addr, 8)
	for i := range addrs {
		addrs[i] = m.AllocLine(8, 0)
	}
	var ok bool
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			for _, a := range addrs {
				tx.Read(a)
			}
		})
	})
	m.Run()
	if ok {
		t.Fatal("over-capacity transaction committed")
	}
	if !st.Capacity {
		t.Fatalf("status = %+v, want capacity", st)
	}
	if m.Stats.TxAbortCapacity != 1 {
		t.Fatalf("TxAbortCapacity = %d", m.Stats.TxAbortCapacity)
	}
}

func TestCapacityAbortOnWrite(t *testing.T) {
	cfg := small()
	cfg.TxCapacityLines = 2
	m := New(cfg)
	addrs := make([]Addr, 4)
	for i := range addrs {
		addrs[i] = m.AllocLine(8, 0)
	}
	var ok bool
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			for _, a := range addrs {
				tx.Write(a, 1)
			}
		})
	})
	m.Run()
	if ok || !st.Capacity {
		t.Fatalf("ok=%v status=%+v, want capacity abort", ok, st)
	}
	for _, a := range addrs {
		if m.Peek(a) != 0 {
			t.Fatal("aborted write leaked")
		}
	}
}

func TestWithinCapacityCommits(t *testing.T) {
	cfg := small()
	cfg.TxCapacityLines = 8
	m := New(cfg)
	addrs := make([]Addr, 4)
	for i := range addrs {
		addrs[i] = m.AllocLine(8, 0)
	}
	var ok bool
	m.Go(0, func(p *Proc) {
		ok, _ = p.Transaction(func(tx *Tx) {
			for _, a := range addrs {
				tx.Write(a, tx.Read(a)+1) // read+write same lines: 4 lines total
			}
		})
	})
	m.Run()
	if !ok {
		t.Fatal("within-capacity transaction aborted")
	}
	for _, a := range addrs {
		if m.Peek(a) != 1 {
			t.Fatal("committed write missing")
		}
	}
}

// Under a steady rate of injected aborts, retried transactions still make
// progress and atomicity holds.
func TestSpuriousAbortRetryProgress(t *testing.T) {
	cfg := small()
	cfg.SpuriousAbortEvery = 3
	m := New(cfg)
	a := m.AllocLine(8, 0)
	const threads, perThread = 6, 20
	for c := 0; c < threads; c++ {
		m.Go(c, func(p *Proc) {
			done := 0
			for done < perThread {
				ok, _ := p.Transaction(func(tx *Tx) {
					v := tx.Read(a)
					tx.Delay(50)
					tx.Write(a, v+1)
				})
				if ok {
					done++
				}
			}
		})
	}
	m.Run()
	if got, want := m.Peek(a), uint64(threads*perThread); got != want {
		t.Fatalf("counter = %d, want %d (lost or duplicated increments)", got, want)
	}
	if m.Stats.TxAbortSpurious == 0 {
		t.Fatal("injection never fired")
	}
}
