// Package machine implements a deterministic, cycle-level simulation of a
// multi-socket multicore: per-core private caches kept coherent by a
// directory-based MSI protocol, atomic read-modify-write operations that
// acquire exclusive line ownership, and a hardware-transactional-memory
// layer with requester-wins conflict resolution.
//
// The simulator exists because Go exposes no HTM intrinsics and the Go
// runtime would abort hardware transactions anyway. The paper's argument is
// a cache-coherence argument (which messages serialize, which fan out), so
// a protocol-level simulation reproduces the phenomena of interest — the
// linear latency of contended RMWs, the concurrent aborts of transactional
// CAS failures, and the tripped-writer problem — from the same mechanisms
// the paper describes.
//
// Determinism: the machine is driven by a single discrete-event engine and
// simulated threads rendezvous with it on every memory operation, so only
// one goroutine ever runs at a time. Equal seeds yield identical
// executions.
package machine

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Addr is a simulated 64-bit physical address. The machine is word (8-byte)
// addressed for data and line (64-byte) granular for coherence.
type Addr = uint64

// LineShift and LineSize describe the cache-line geometry.
const (
	LineShift = 6
	LineSize  = 1 << LineShift
)

// LineOf returns the cache line number containing addr.
func LineOf(a Addr) uint64 { return a >> LineShift }

// Machine is a simulated multicore system.
type Machine struct {
	cfg Config
	eng *sim.Engine

	caches []*cache
	dirs   []*directory // one per socket; lines are homed by allocation site
	procs  []*Proc

	mem      map[Addr]uint64
	lineHome map[uint64]int // line -> socket of its home directory
	brk      []Addr         // per-socket bump-allocator cursor

	// inj is the fault injector; nil when Config.Faults is empty, so the
	// fault-free path costs one nil check per injection point.
	inj *injector

	// txnIDs issues this machine's transaction ids. Per-machine (not
	// process-global) so equal seeds replay identical ids and the legacy
	// SpuriousAbortEvery schedule is independent of process history.
	txnIDs uint64

	running int // procs started and not yet finished

	// Stats accumulates counters for the whole run.
	Stats Stats
	// Tracer, if non-nil, receives a protocol-level event stream.
	Tracer *Tracer
	// rec, if non-nil, additionally streams the counters into the shared
	// telemetry layer (repro/internal/obs): coherence-message kinds, HTM
	// starts/commits and per-reason aborts, and CAS outcomes. Set it with
	// SetRecorder before Run.
	rec obs.Recorder
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector): coherence GetS/GetM requests, HTM
	// begin/commit/abort-with-code, each on the issuing core's lane.
	ev obs.EventRecorder
}

// SetRecorder attaches a telemetry recorder; nil (or obs.Nop) detaches.
// When r also implements obs.EventRecorder (e.g. a trace.Collector), the
// machine additionally emits per-core timeline events.
func (m *Machine) SetRecorder(r obs.Recorder) {
	m.rec = obs.Normalize(r)
	m.ev = obs.Events(r)
}

// obsInc forwards one event to the attached recorder, if any.
func (m *Machine) obsInc(c obs.Counter) {
	if r := m.rec; r != nil {
		r.Inc(c)
	}
}

// obsEvent records one timeline event on core's machine lane, if a flight
// recorder is attached. Timestamps come from the recorder's own clock;
// harnesses wire that to this machine's cycle clock (see trace.WithClock).
func (m *Machine) obsEvent(k obs.EventKind, core int, arg uint64) {
	if ev := m.ev; ev != nil {
		ev.Event(k, obs.MachineLane(core), arg)
	}
}

// cohCounter maps a coherence message kind to its obs counter. The array
// is explicit (not arithmetic on the enums) so reordering either side
// cannot silently misattribute traffic.
var cohCounter = [numMsgKinds]obs.Counter{
	MsgGetS:    obs.CohGetS,
	MsgGetM:    obs.CohGetM,
	MsgFwdGetS: obs.CohFwdGetS,
	MsgFwdGetM: obs.CohFwdGetM,
	MsgInv:     obs.CohInv,
	MsgInvAck:  obs.CohInvAck,
	MsgData:    obs.CohData,
	MsgDownAck: obs.CohDownAck,
}

// New creates a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.Sockets <= 0 || cfg.CoresPerSocket <= 0 {
		panic("machine: invalid topology")
	}
	if cfg.CyclesPerNS == 0 {
		cfg.CyclesPerNS = 2.5
	}
	m := &Machine{
		cfg:      cfg,
		eng:      sim.New(),
		mem:      make(map[Addr]uint64),
		lineHome: make(map[uint64]int),
		brk:      make([]Addr, cfg.Sockets),
	}
	for s := 0; s < cfg.Sockets; s++ {
		// Socket s owns the address region [(s+1)<<40, (s+2)<<40).
		m.brk[s] = Addr(s+1) << 40
		m.dirs = append(m.dirs, newDirectory(m, s))
	}
	for c := 0; c < cfg.NumCores(); c++ {
		m.caches = append(m.caches, newCache(m, c))
	}
	m.inj = newInjector(m, cfg.Faults)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine exposes the underlying event engine (for tests and harnesses).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Now returns the current simulated time in cycles.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// homeOf returns the socket whose directory owns line.
func (m *Machine) homeOf(line uint64) int {
	if s, ok := m.lineHome[line]; ok {
		return s
	}
	// Addresses not from the allocator (e.g. raw test addresses) are
	// homed by their top bits, defaulting to socket 0.
	s := int(line>>(40-LineShift)) - 1
	if s < 0 || s >= m.cfg.Sockets {
		return 0
	}
	return s
}

// Alloc carves size bytes (8-byte aligned) out of socket's memory region
// and returns the base address. The backing store is zeroed.
func (m *Machine) Alloc(size int, socket int) Addr {
	if socket < 0 || socket >= m.cfg.Sockets {
		panic("machine: bad socket")
	}
	if size <= 0 {
		panic("machine: bad alloc size")
	}
	sz := Addr((size + 7) &^ 7)
	a := m.brk[socket]
	m.brk[socket] += sz
	for l := LineOf(a); l <= LineOf(a+sz-1); l++ {
		m.lineHome[l] = socket
	}
	return a
}

// AllocLine allocates size bytes starting on a fresh cache line, so that
// distinct allocations never false-share.
func (m *Machine) AllocLine(size int, socket int) Addr {
	m.brk[socket] = (m.brk[socket] + LineSize - 1) &^ (LineSize - 1)
	a := m.Alloc(size, socket)
	// Pad to a line boundary so the next allocation starts fresh too.
	m.brk[socket] = (m.brk[socket] + LineSize - 1) &^ (LineSize - 1)
	return a
}

// Peek reads simulated memory without coherence traffic (harness backdoor).
func (m *Machine) Peek(a Addr) uint64 { return m.mem[a] }

// Poke writes simulated memory without coherence traffic (harness backdoor).
// It must only be used before the simulation starts or between phases when
// no line is cached dirty.
func (m *Machine) Poke(a Addr, v uint64) { m.mem[a] = v }

// hop returns the message latency between two endpoints. Endpoint ids are
// core ids; directories are addressed by socket via dirEndpoint. When the
// fault injector configures cross-socket jitter, remote hops additionally
// pay a random 0..CrossSocketJitter-cycle congestion penalty.
func (m *Machine) hopCores(socketA, socketB int) uint64 {
	if socketA == socketB {
		return m.cfg.HopCycles
	}
	lat := m.cfg.HopCycles * m.cfg.NUMAFactor
	if j := m.inj; j != nil {
		lat += j.hopJitter(socketA, socketB)
	}
	return lat
}

// sendToCache delivers msg to core dst after the appropriate hop latency.
// fromSocket identifies the sender's socket for NUMA accounting.
func (m *Machine) sendToCache(fromSocket, dst int, msg Msg) {
	m.Stats.Msgs[msg.Kind]++
	m.obsInc(cohCounter[msg.Kind])
	lat := m.hopCores(fromSocket, m.cfg.SocketOf(dst))
	m.trace(msg, endpointName(dst))
	m.eng.Schedule(lat, func() { m.caches[dst].receive(msg) })
}

// sendToDir delivers msg to the home directory of msg.Line.
func (m *Machine) sendToDir(fromSocket int, msg Msg) {
	m.Stats.Msgs[msg.Kind]++
	m.obsInc(cohCounter[msg.Kind])
	// Ownership-transfer requests are timeline events: the analyzer
	// attributes abort cascades to the GetM that triggered them (§3.3).
	if msg.From >= 0 {
		switch msg.Kind {
		case MsgGetS:
			m.obsEvent(obs.EvCohGetS, msg.From, msg.Line)
		case MsgGetM:
			m.obsEvent(obs.EvCohGetM, msg.From, msg.Line)
		}
	}
	home := m.homeOf(msg.Line)
	lat := m.hopCores(fromSocket, home)
	m.trace(msg, fmt.Sprintf("Dir%d", home))
	m.eng.Schedule(lat, func() { m.dirs[home].receive(msg) })
}

func (m *Machine) trace(msg Msg, to string) {
	if m.Tracer != nil {
		m.Tracer.record(m.eng.Now(), msg, to)
	}
}

// Go starts a simulated thread running body on the given core. Threads
// must be created before Run is called (or from within running threads).
func (m *Machine) Go(core int, body func(p *Proc)) *Proc {
	if core < 0 || core >= m.cfg.NumCores() {
		panic("machine: bad core id")
	}
	p := newProc(m, core, len(m.procs))
	m.procs = append(m.procs, p)
	m.running++
	p.start(body)
	return p
}

// Run drives the simulation until all threads have finished. It panics if
// the event queue drains while threads are still blocked, which indicates
// a deadlock in the simulated program or a protocol bug.
func (m *Machine) Run() {
	m.eng.Run()
	if m.running != 0 {
		panic(fmt.Sprintf("machine: deadlock: %d simulated threads still blocked at t=%d", m.running, m.eng.Now()))
	}
}

// MOwners returns the set of cores holding line in Modified state. The
// coherence invariant says this never exceeds one; tests assert it.
func (m *Machine) MOwners(line uint64) []int {
	var owners []int
	for id, c := range m.caches {
		if c.lines[line] == stateM {
			owners = append(owners, id)
		}
	}
	return owners
}

func endpointName(core int) string { return fmt.Sprintf("C%d", core) }

// Stats aggregates machine-wide counters.
type Stats struct {
	Msgs [numMsgKinds]uint64

	RMWs      uint64 // atomic RMWs executed
	Loads     uint64
	Stores    uint64
	LoadHits  uint64
	StoreHits uint64

	TxStarted       uint64
	TxCommits       uint64
	TxAborts        uint64
	TxAbortConflict uint64
	TxAbortExplicit uint64
	TxAbortNested   uint64 // conflict aborts that hit inside a nested region
	TxAbortSpurious uint64 // injected non-conflict aborts (interrupts etc.)
	TxAbortCapacity uint64 // speculative-state overflow aborts
	TxAbortDisabled uint64 // _xbegin refused because HTM is disabled
	TrippedWriters  uint64 // aborts caused by Fwd-GetS while draining xend
	FixStalls       uint64 // Fwd-GetS stalls avoided by the §3.4.1 fix

	CASFallbacks   uint64 // software-fallback CASes (Proc.FallbackCAS)
	FaultsInjected uint64 // injector-produced aborts (spurious + disabled)
	JitteredHops   uint64 // cross-socket hops that drew nonzero jitter
	JitterCycles   uint64 // total injected cross-socket jitter, in cycles
}
