package machine

import (
	"testing"
	"testing/quick"
)

func small() Config {
	cfg := Default()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 8
	return cfg
}

func TestReadWriteSingleProc(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	var got uint64
	m.Go(0, func(p *Proc) {
		p.Write(a, 42)
		got = p.Read(a)
	})
	m.Run()
	if got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
	if m.Peek(a) != 42 {
		t.Fatalf("memory = %d, want 42", m.Peek(a))
	}
}

func TestAllocSeparatesLines(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	b := m.AllocLine(8, 0)
	if LineOf(a) == LineOf(b) {
		t.Fatalf("AllocLine returned addresses on the same line: %#x %#x", a, b)
	}
	c := m.Alloc(8, 1)
	if m.homeOf(LineOf(c)) != 1 {
		t.Fatalf("socket-1 allocation homed at %d", m.homeOf(LineOf(c)))
	}
	if m.homeOf(LineOf(a)) != 0 {
		t.Fatalf("socket-0 allocation homed at %d", m.homeOf(LineOf(a)))
	}
}

func TestCASSemantics(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	m.Poke(a, 5)
	var ok1, ok2 bool
	m.Go(0, func(p *Proc) {
		ok1 = p.CAS(a, 5, 6)
		ok2 = p.CAS(a, 5, 7)
	})
	m.Run()
	if !ok1 || ok2 {
		t.Fatalf("CAS results = %v,%v; want true,false", ok1, ok2)
	}
	if m.Peek(a) != 6 {
		t.Fatalf("memory = %d, want 6", m.Peek(a))
	}
}

func TestFAAAndSwap(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	var old1, old2, old3 uint64
	m.Go(0, func(p *Proc) {
		old1 = p.FAA(a, 3)
		old2 = p.FAA(a, 4)
		old3 = p.Swap(a, 100)
	})
	m.Run()
	if old1 != 0 || old2 != 3 || old3 != 7 {
		t.Fatalf("FAA/Swap olds = %d,%d,%d; want 0,3,7", old1, old2, old3)
	}
	if m.Peek(a) != 100 {
		t.Fatalf("memory = %d, want 100", m.Peek(a))
	}
}

// FAA from many cores must produce every value exactly once: atomicity.
func TestConcurrentFAAAtomicity(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	const perProc = 50
	n := m.Config().NumCores()
	for c := 0; c < n; c++ {
		m.Go(c, func(p *Proc) {
			for i := 0; i < perProc; i++ {
				p.FAA(a, 1)
			}
		})
	}
	m.Run()
	if got, want := m.Peek(a), uint64(n*perProc); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
}

// Contended CAS: exactly one of a wave of CASs on the same old value wins.
func TestConcurrentCASOneWinner(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	wins := 0
	n := m.Config().NumCores()
	for c := 0; c < n; c++ {
		c := c
		m.Go(c, func(p *Proc) {
			p.Read(a) // warm to Shared so all start poised
			if p.CAS(a, 0, uint64(c)+1) {
				wins++
			}
		})
	}
	m.Run()
	if wins != 1 {
		t.Fatalf("CAS winners = %d, want 1", wins)
	}
	if m.Peek(a) == 0 {
		t.Fatal("no CAS took effect")
	}
}

// Single-writer invariant: at no quiescent point may two caches hold the
// same line in M.
func TestSingleWriterInvariant(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	line := LineOf(a)
	n := m.Config().NumCores()
	var violation []int
	for c := 0; c < n; c++ {
		m.Go(c, func(p *Proc) {
			for i := 0; i < 30; i++ {
				switch p.RandN(4) {
				case 0:
					p.Read(a)
				case 1:
					p.Write(a, p.RandN(100))
				case 2:
					p.FAA(a, 1)
				case 3:
					p.CAS(a, p.RandN(10), p.RandN(10))
				}
				if owners := m.MOwners(line); len(owners) > 1 && violation == nil {
					violation = owners
				}
			}
		})
	}
	m.Run()
	if violation != nil {
		t.Fatalf("coherence violation: M owners = %v", violation)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, Stats, uint64) {
		m := New(small())
		a := m.AllocLine(8, 0)
		for c := 0; c < m.Config().NumCores(); c++ {
			m.Go(c, func(p *Proc) {
				for i := 0; i < 20; i++ {
					p.FAA(a, p.RandN(7)+1)
					p.Read(a)
				}
			})
		}
		m.Run()
		return m.Peek(a), m.Stats, m.Now()
	}
	v1, s1, t1 := run()
	v2, s2, t2 := run()
	if v1 != v2 || s1 != s2 || t1 != t2 {
		t.Fatalf("nondeterministic execution: (%d,%v,%d) vs (%d,%v,%d)", v1, s1, t1, v2, s2, t2)
	}
}

// Contended FAA latency must grow with the number of contenders (paper
// §3.2: average cost ~ C/2 handoffs), while a single thread stays fast.
func TestFAALatencyGrowsWithContention(t *testing.T) {
	avg := func(threads int) float64 {
		cfg := Default()
		m := New(cfg)
		a := m.AllocLine(8, 0)
		const ops = 60
		var total uint64
		for c := 0; c < threads; c++ {
			m.Go(c, func(p *Proc) {
				start := p.Now()
				for i := 0; i < ops; i++ {
					p.FAA(a, 1)
				}
				total += p.Now() - start
			})
		}
		m.Run()
		return float64(total) / float64(threads*ops)
	}
	l1, l8, l32 := avg(1), avg(8), avg(32)
	if !(l1 < l8 && l8 < l32) {
		t.Fatalf("FAA latency not increasing: 1->%.0f 8->%.0f 32->%.0f cycles", l1, l8, l32)
	}
	if l32 < 8*l1 {
		t.Fatalf("FAA latency at 32 threads (%.0f) not dominated by serialization (1 thread: %.0f)", l32, l1)
	}
}

// Reads of a line another core keeps modified still observe latest values.
func TestReaderSeesWriterValues(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	stop := m.AllocLine(8, 0)
	var lastSeen uint64
	m.Go(0, func(p *Proc) {
		for i := uint64(1); i <= 100; i++ {
			p.Write(a, i)
		}
		p.Write(stop, 1)
	})
	m.Go(1, func(p *Proc) {
		mono := true
		var prev uint64
		for p.Read(stop) == 0 {
			v := p.Read(a)
			if v < prev {
				mono = false
			}
			prev = v
		}
		lastSeen = prev
		if !mono {
			t.Error("reader observed non-monotonic values of a monotonically written word")
		}
	})
	m.Run()
	if lastSeen > 100 {
		t.Fatalf("reader saw impossible value %d", lastSeen)
	}
}

func TestNUMAHopCost(t *testing.T) {
	cfg := small()
	m := New(cfg)
	if got := m.hopCores(0, 0); got != cfg.HopCycles {
		t.Fatalf("intra-socket hop = %d, want %d", got, cfg.HopCycles)
	}
	if got := m.hopCores(0, 1); got != cfg.HopCycles*cfg.NUMAFactor {
		t.Fatalf("cross-socket hop = %d, want %d", got, cfg.HopCycles*cfg.NUMAFactor)
	}
}

// Cross-socket RMW traffic must be slower than intra-socket.
func TestNUMALatencyPenalty(t *testing.T) {
	run := func(core int) uint64 {
		m := New(small())
		a := m.AllocLine(8, 0) // homed on socket 0
		var dur uint64
		m.Go(core, func(p *Proc) {
			start := p.Now()
			for i := 0; i < 20; i++ {
				p.FAA(a, 1)
				// Hand the line away so every FAA re-acquires it.
				p.Delay(1)
			}
			dur = p.Now() - start
		})
		// A socket-0 thread keeps taking the line back.
		m.Run()
		return dur
	}
	local := run(0)
	remote := run(small().CoresPerSocket) // first core of socket 1
	if remote <= local {
		t.Fatalf("remote FAA loop (%d cycles) not slower than local (%d)", remote, local)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) {
		for p.Read(a) == 0 { // spins forever; no writer exists
			p.Delay(10)
			if p.Now() > 1_000_000 {
				return // give up: not a protocol deadlock, just bounded
			}
		}
	})
	m.Run() // must terminate via the proc's own bound, not hang
}

// Property: any interleaving of single-proc writes then reads round-trips.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 32 {
			vals = vals[:32]
		}
		m := New(small())
		addrs := make([]Addr, len(vals))
		for i := range vals {
			addrs[i] = m.Alloc(8, i%2)
		}
		ok := true
		m.Go(0, func(p *Proc) {
			for i, v := range vals {
				p.Write(addrs[i], v)
			}
			for i, v := range vals {
				if p.Read(addrs[i]) != v {
					ok = false
				}
			}
		})
		m.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekPoke(t *testing.T) {
	m := New(small())
	a := m.Alloc(8, 0)
	m.Poke(a, 77)
	if m.Peek(a) != 77 {
		t.Fatal("Poke/Peek round trip failed")
	}
}

func TestBadTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero cores did not panic")
		}
	}()
	New(Config{})
}

func TestBadCorePanics(t *testing.T) {
	m := New(small())
	defer func() {
		if recover() == nil {
			t.Error("Go on out-of-range core did not panic")
		}
	}()
	m.Go(10_000, func(*Proc) {})
}
