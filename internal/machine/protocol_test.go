package machine

import (
	"strings"
	"testing"
)

// Upgrade path: a sharer that writes must go through GetM and collect an
// invalidation ack from the other sharer.
func TestSharedToModifiedUpgrade(t *testing.T) {
	m := New(small())
	tr := &Tracer{}
	m.Tracer = tr
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) { p.Read(a) })
	m.Go(1, func(p *Proc) { p.Read(a) })
	m.Run()
	m.Go(0, func(p *Proc) { p.Write(a, 7) })
	m.Run()
	if tr.Count(MsgInv) != 1 {
		t.Fatalf("Inv count = %d, want 1 (one other sharer)", tr.Count(MsgInv))
	}
	if tr.Count(MsgInvAck) != 1 {
		t.Fatalf("Inv-Ack count = %d, want 1", tr.Count(MsgInvAck))
	}
	if m.Peek(a) != 7 {
		t.Fatalf("value = %d", m.Peek(a))
	}
}

// Owner-to-owner handoff: a second writer's GetM is forwarded to the
// first, which hands the line over with a Data message.
func TestOwnerHandoff(t *testing.T) {
	m := New(small())
	tr := &Tracer{}
	m.Tracer = tr
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) { p.Write(a, 1) })
	m.Run()
	m.Go(1, func(p *Proc) { p.Write(a, 2) })
	m.Run()
	if tr.Count(MsgFwdGetM) != 1 {
		t.Fatalf("Fwd-GetM count = %d, want 1", tr.Count(MsgFwdGetM))
	}
	if m.Peek(a) != 2 {
		t.Fatalf("value = %d", m.Peek(a))
	}
}

// Read of a modified line: the directory forwards the read, the owner
// downgrades and confirms with DownAck, and the reader gets the data.
func TestFwdGetSDowngrade(t *testing.T) {
	m := New(small())
	tr := &Tracer{}
	m.Tracer = tr
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) { p.Write(a, 9) })
	m.Run()
	var got uint64
	m.Go(1, func(p *Proc) { got = p.Read(a) })
	m.Run()
	if got != 9 {
		t.Fatalf("reader got %d, want 9", got)
	}
	if tr.Count(MsgFwdGetS) != 1 || tr.Count(MsgDownAck) != 1 {
		t.Fatalf("FwdGetS=%d DownAck=%d, want 1 and 1", tr.Count(MsgFwdGetS), tr.Count(MsgDownAck))
	}
	// The ex-owner can still read without traffic (it kept Shared).
	before := m.Stats.Msgs[MsgGetS]
	m.Go(0, func(p *Proc) { _ = p.Read(a) })
	m.Run()
	if m.Stats.Msgs[MsgGetS] != before {
		t.Fatal("downgraded owner lost its Shared copy")
	}
}

// Requests arriving while the directory is in the transient downgrade
// state must queue and then complete.
func TestTransientQueueing(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) { p.Write(a, 1) })
	m.Run()
	// Burst of readers and a writer while the first Fwd-GetS is in flight.
	var sum uint64
	for c := 1; c < 6; c++ {
		m.Go(c, func(p *Proc) { sum += p.Read(a) })
	}
	m.Go(6, func(p *Proc) { p.Write(a, 2) })
	m.Go(7, func(p *Proc) { p.FAA(a, 10) })
	m.Run() // must not deadlock
	if v := m.Peek(a); v != 12 && v != 2 && v != 11 {
		// Final value depends on interleaving of the write and FAA, but
		// the FAA's +10 must never be lost.
		t.Logf("final value %d", v)
	}
}

// An RMW holds the line and defers forwarded requests until it finishes;
// the deferred request then completes.
func TestRMWDefersForwards(t *testing.T) {
	cfg := small()
	cfg.RMWHold = 200 // widen the hold window
	m := New(cfg)
	a := m.AllocLine(8, 0)
	var readerVal uint64
	var readerDone uint64
	m.Go(0, func(p *Proc) {
		p.FAA(a, 5)
	})
	m.Go(1, func(p *Proc) {
		p.Delay(30) // land mid-hold
		readerVal = p.Read(a)
		readerDone = p.Now()
	})
	m.Run()
	if readerVal != 5 {
		t.Fatalf("reader saw %d, want 5 (post-RMW value)", readerVal)
	}
	if readerDone < 200 {
		t.Fatalf("reader finished at %d, inside the RMW hold window", readerDone)
	}
}

func TestTraceFormat(t *testing.T) {
	m := New(small())
	tr := &Tracer{}
	m.Tracer = tr
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) { p.Write(a, 1) })
	m.Run()
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "GetM") || !strings.Contains(out, "Dir0") {
		t.Errorf("trace missing expected records:\n%s", out)
	}
	if !strings.Contains(out, "Data") {
		t.Errorf("trace missing Data grant:\n%s", out)
	}
}

func TestTracerFilter(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	b := m.AllocLine(8, 0)
	tr := &Tracer{Filter: LineOf(a)}
	m.Tracer = tr
	m.Go(0, func(p *Proc) {
		p.Write(a, 1)
		p.Write(b, 2)
	})
	m.Run()
	for _, e := range tr.Events {
		if e.Msg.Line != LineOf(a) {
			t.Fatalf("filtered trace contains foreign line %#x", e.Msg.Line)
		}
	}
	if len(tr.Events) == 0 {
		t.Fatal("filter dropped everything")
	}
}

// Messages counted in Stats must match what the tracer saw.
func TestStatsMatchTrace(t *testing.T) {
	m := New(small())
	tr := &Tracer{}
	m.Tracer = tr
	a := m.AllocLine(8, 0)
	for c := 0; c < 6; c++ {
		m.Go(c, func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.FAA(a, 1)
				p.Read(a)
			}
		})
	}
	m.Run()
	var total uint64
	for _, n := range m.Stats.Msgs {
		total += n
	}
	if int(total) != len(tr.Events) {
		t.Fatalf("stats total %d != trace events %d", total, len(tr.Events))
	}
}

// Hyperthread-style interleaving on one core is forbidden by design (one
// proc per core keeps the model simple); two procs on one core would
// corrupt the cache's single-txn assumption, so Go on the same core twice
// is the caller's responsibility — document by testing current behavior:
// both procs run, sharing the cache, which is exactly two hyperthreads
// sharing a private cache.
func TestTwoProcsShareACore(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.FAA(a, 1)
		}
	})
	m.Go(0, func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.FAA(a, 1)
		}
	})
	m.Run()
	if m.Peek(a) != 40 {
		t.Fatalf("value = %d, want 40", m.Peek(a))
	}
}

func TestSwapReturnsPrevious(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	vals := make([]uint64, 0, 8)
	for c := 0; c < 4; c++ {
		c := c
		m.Go(c, func(p *Proc) {
			old := p.Swap(a, uint64(c)+1)
			vals = append(vals, old)
		})
	}
	m.Run()
	// The four swaps plus the final memory value form a permutation of
	// {0, 1, 2, 3, 4}: each value handed off exactly once.
	seen := map[uint64]bool{m.Peek(a): true}
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("value %d seen twice across swap chain", v)
		}
		seen[v] = true
	}
	for want := uint64(0); want < 5; want++ {
		if !seen[want] {
			t.Fatalf("value %d lost in swap chain", want)
		}
	}
}

func TestAllocSocketHoming(t *testing.T) {
	m := New(small())
	tr := &Tracer{}
	m.Tracer = tr
	// A line homed on socket 1, accessed from socket 0, pays cross-socket
	// latency to the directory.
	a := m.AllocLine(8, 1)
	var dur0, dur1 uint64
	m.Go(0, func(p *Proc) {
		start := p.Now()
		p.Read(a)
		dur0 = p.Now() - start
	})
	m.Run()
	b := m.AllocLine(8, 0)
	m.Go(1, func(p *Proc) { _ = b }) // placate; measure socket-local below
	m.Run()
	m2 := New(small())
	c := m2.AllocLine(8, 0)
	m2.Go(0, func(p *Proc) {
		start := p.Now()
		p.Read(c)
		dur1 = p.Now() - start
	})
	m2.Run()
	if dur0 <= dur1 {
		t.Fatalf("remote-homed read (%d) not slower than local-homed (%d)", dur0, dur1)
	}
}
