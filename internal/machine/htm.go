package machine

import "repro/internal/obs"

// This file implements the hardware-transactional-memory layer of the
// simulated machine, modeled on Intel RTM as described in paper §2 and §3.3:
// transactional accesses mark lines in the private cache, conflicts are
// resolved requester-wins by aborting the core that receives a conflicting
// coherence message, transactional writes are store-buffered and drained by
// xend, and flat nesting is supported with an abort flag that records
// whether the conflict hit inside a nested region.

// AbortStatus describes why a transaction aborted, mirroring the abort
// reason bit mask that _xbegin returns on Intel hardware.
type AbortStatus struct {
	// Explicit is set when the transaction aborted itself (_xabort);
	// Code carries the argument.
	Explicit bool
	Code     uint8
	// Conflict is set when a conflicting coherence message caused the abort.
	Conflict bool
	// Capacity is set when the transaction's footprint overflowed the
	// configured speculative-state capacity (Config.TxCapacityLines or
	// FaultPlan.CapacityLines).
	Capacity bool
	// Disabled is set when _xbegin refused to start the transaction
	// because HTM is disabled (FaultPlan.DisableHTM / DisableHTMAfter —
	// the TSX-killed-by-microcode scenario). Real RTM reports these as
	// zero-status aborts; the simulator additionally labels them so
	// policies and tests can distinguish persistent disablement from a
	// transient spurious abort without a CPUID round trip.
	Disabled bool
	// Nested is set when the abort hit while execution was inside a
	// nested transaction. TxCAS uses this to tell read-step conflicts
	// from write-step conflicts (paper §4.2).
	Nested bool
	// Requester is the core id of the conflicting requester whose
	// coherence message killed the transaction, or -1 when the abort had
	// no attributable requester (capacity, explicit, spurious, disabled).
	// This is the sharer identity a failed TxCAS profits from (§3): real
	// RTM does not report it, but the conflicting line's requester is
	// architecturally known at abort time and the simulator surfaces it.
	Requester int
}

// txn is an active hardware transaction on one core.
type txn struct {
	id    uint64
	proc  *Proc
	depth int // 1 = top level; >=2 inside a nested region

	readSet  map[uint64]struct{}
	writeSet map[uint64]struct{}
	writeBuf map[Addr]uint64

	// pendingW counts transactional writes whose GetM has not completed.
	// xend blocks until it reaches zero — the store-buffer drain that
	// opens the tripped-writer window.
	pendingW   int
	committing bool
	commitFn   func() // wake the proc blocked in xend

	// stalledFwd holds Fwd-GetS requests stalled by the §3.4.1 fix; they
	// are serviced after commit (or on abort).
	stalledFwd []Msg
}

func (t *txn) reads(line uint64) bool {
	_, ok := t.readSet[line]
	return ok
}

func (t *txn) writes(line uint64) bool {
	_, ok := t.writeSet[line]
	return ok
}

// beginTx starts a transaction on this core. The simulator supports one
// hardware thread per core, so at most one transaction per cache.
func (c *cache) beginTx(p *Proc) {
	if c.txn != nil {
		panic("machine: nested Transaction call (use Tx.Nested for flat nesting)")
	}
	c.m.txnIDs++
	c.txn = &txn{
		id:       c.m.txnIDs,
		proc:     p,
		depth:    1,
		readSet:  make(map[uint64]struct{}),
		writeSet: make(map[uint64]struct{}),
		writeBuf: make(map[Addr]uint64),
	}
	c.m.Stats.TxStarted++
	c.m.obsInc(obs.TxStarts)
	c.m.obsEvent(obs.EvTxBegin, c.core, c.txn.id)
	if n := c.m.cfg.SpuriousAbortEvery; n > 0 && c.m.txnIDs%uint64(n) == 0 {
		// Legacy deterministic injection: an "interrupt" lands somewhere
		// inside every Nth transaction's window and aborts it for a
		// non-conflict reason.
		id := c.txn.id
		delay := 5 + (id*2654435761)%150
		c.m.eng.Schedule(delay, func() {
			if t := c.txn; t != nil && t.id == id {
				c.m.Stats.TxAbortSpurious++
				c.m.obsInc(obs.TxAbortsSpurious)
				c.abortTx(AbortStatus{Nested: t.depth >= 2}, false, -1, 0)
			}
		})
	}
	if j := c.m.inj; j != nil {
		j.onTxBegin(c)
	}
}

func (c *cache) txnID() uint64 {
	if c.txn == nil {
		return 0
	}
	return c.txn.id
}

// txOverCapacity reports whether adding line would overflow the
// transaction's speculative-state capacity.
func (c *cache) txOverCapacity(t *txn, line uint64) bool {
	capLines := c.m.cfg.TxCapacityLines
	if j := c.m.inj; j != nil {
		capLines = j.capacityLines()
	}
	if capLines <= 0 {
		return false
	}
	if t.reads(line) || t.writes(line) {
		return false
	}
	return len(t.readSet)+len(t.writeSet) >= capLines
}

// txStore buffers a transactional write and issues the GetM for the line
// without blocking the core (store-buffer semantics). The written value
// becomes globally visible only at commit.
func (c *cache) txStore(addr Addr, v uint64) {
	t := c.txn
	if t == nil {
		panic("machine: txStore outside transaction")
	}
	c.m.Stats.Stores++
	line := LineOf(addr)
	t.writeSet[line] = struct{}{}
	t.writeBuf[addr] = v
	if c.lines[line] == stateM {
		c.m.Stats.StoreHits++
		return
	}
	id := t.id
	t.pendingW++
	c.request(line, true, func() {
		cur := c.txn
		if cur == nil || cur.id != id {
			return // transaction already aborted; ownership arrives anyway
		}
		cur.pendingW--
		if cur.committing && cur.pendingW == 0 {
			c.commitTx()
		}
	})
}

// tryCommit is called when the proc executes xend. If stores are still
// draining, the proc blocks until the last GetM completes.
func (c *cache) tryCommit(wake func()) {
	t := c.txn
	if t == nil {
		panic("machine: commit outside transaction")
	}
	t.commitFn = wake
	if t.pendingW == 0 {
		c.commitTx()
		return
	}
	t.committing = true
}

// commitTx makes the transaction's writes globally visible and clears the
// transactional state.
func (c *cache) commitTx() {
	t := c.txn
	for a, v := range t.writeBuf {
		c.m.mem[a] = v
	}
	c.txn = nil
	c.m.Stats.TxCommits++
	c.m.obsInc(obs.TxCommits)
	c.m.obsEvent(obs.EvTxCommit, c.core, t.id)
	// Service reads stalled by the §3.4.1 fix: they now observe the
	// committed value.
	for _, msg := range t.stalledFwd {
		c.handleNow(msg)
	}
	if t.commitFn != nil {
		fn := t.commitFn
		c.m.eng.Schedule(c.m.cfg.CommitCycles, fn)
	}
}

// abortEvent emits the EvTxAbort timeline event for this core. requester is
// the core whose coherence request caused the abort (-1 when none), line the
// conflicting cache line (0 when none); together with the reason bits they
// let the trace analyzer build abort-cascade trees and the §4.3 intra- vs
// cross-socket conflict split.
func (c *cache) abortEvent(st AbortStatus, tripped bool, requester int, line uint64) {
	if c.m.ev == nil {
		return
	}
	var reason uint8
	if st.Conflict {
		reason |= obs.AbortConflict
	}
	if st.Explicit {
		reason |= obs.AbortExplicit
	}
	if st.Nested {
		reason |= obs.AbortNested
	}
	if st.Capacity {
		reason |= obs.AbortCapacity
	}
	if st.Disabled {
		reason |= obs.AbortDisabled
	}
	// No cause bit means an injected interrupt-style abort (RTM returns a
	// zero status for those too).
	if reason&(obs.AbortConflict|obs.AbortExplicit|obs.AbortCapacity|obs.AbortDisabled) == 0 {
		reason |= obs.AbortSpurious
	}
	if tripped {
		reason |= obs.AbortTripped
	}
	c.m.obsEvent(obs.EvTxAbort, c.core, obs.AbortArg(reason, requester, line))
}

// abortTx discards the transaction and resumes the proc at its abort
// handler. tripped records whether the abort hit a writer that was already
// draining its xend (the tripped-writer problem, §3.4). requester and line
// attribute the abort for the event timeline (see abortEvent).
func (c *cache) abortTx(st AbortStatus, tripped bool, requester int, line uint64) {
	t := c.txn
	if t == nil {
		return
	}
	c.txn = nil
	// Attribute the abort: conflict aborts carry the requester core that
	// the coherence protocol identified; everything else reports -1.
	st.Requester = requester
	c.m.Stats.TxAborts++
	c.m.obsInc(obs.TxAborts)
	if st.Conflict {
		c.m.Stats.TxAbortConflict++
		c.m.obsInc(obs.TxAbortsConflict)
	}
	if st.Explicit {
		c.m.Stats.TxAbortExplicit++
		c.m.obsInc(obs.TxAbortsExplicit)
	}
	if st.Nested {
		c.m.Stats.TxAbortNested++
		c.m.obsInc(obs.TxAbortsNested)
	}
	if tripped {
		c.m.Stats.TrippedWriters++
		c.m.obsInc(obs.TxTrippedWriters)
	}
	c.abortEvent(st, tripped, requester, line)
	for _, msg := range t.stalledFwd {
		c.handleNow(msg)
	}
	t.proc.abortWake(st)
}
