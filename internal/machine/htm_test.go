package machine

import "testing"

func TestTransactionCommitVisibility(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	b := m.AllocLine(8, 0)
	var ok bool
	m.Go(0, func(p *Proc) {
		ok, _ = p.Transaction(func(tx *Tx) {
			tx.Write(a, 1)
			tx.Write(b, 2)
		})
	})
	m.Run()
	if !ok {
		t.Fatal("uncontended transaction aborted")
	}
	if m.Peek(a) != 1 || m.Peek(b) != 2 {
		t.Fatalf("commit not visible: a=%d b=%d", m.Peek(a), m.Peek(b))
	}
	if m.Stats.TxCommits != 1 {
		t.Fatalf("TxCommits = %d, want 1", m.Stats.TxCommits)
	}
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	var ok bool
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			tx.Write(a, 99)
			tx.Abort(7)
		})
	})
	m.Run()
	if ok {
		t.Fatal("aborted transaction reported committed")
	}
	if !st.Explicit || st.Code != 7 {
		t.Fatalf("abort status = %+v, want explicit code 7", st)
	}
	if m.Peek(a) != 0 {
		t.Fatalf("aborted write leaked: a=%d", m.Peek(a))
	}
}

func TestReadOwnWrite(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	m.Poke(a, 10)
	var inside, after uint64
	m.Go(0, func(p *Proc) {
		p.Transaction(func(tx *Tx) {
			tx.Write(a, 20)
			inside = tx.Read(a)
		})
		after = p.Read(a)
	})
	m.Run()
	if inside != 20 {
		t.Fatalf("transactional read-own-write = %d, want 20", inside)
	}
	if after != 20 {
		t.Fatalf("post-commit read = %d, want 20", after)
	}
}

// A writer's GetM must abort readers holding the line transactionally, and
// the aborted transaction's writes must not appear.
func TestConflictAbortsReader(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	out := m.AllocLine(8, 0)
	var st AbortStatus
	var ok bool
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			tx.Read(a)
			tx.Delay(10_000) // park inside the transaction
			tx.Write(out, 1)
		})
	})
	m.Go(1, func(p *Proc) {
		p.Delay(500)
		p.Write(a, 5)
	})
	m.Run()
	if ok {
		t.Fatal("conflicted transaction committed")
	}
	if !st.Conflict {
		t.Fatalf("abort status = %+v, want conflict", st)
	}
	if m.Peek(out) != 0 {
		t.Fatal("aborted transaction's write leaked")
	}
}

// Nested flag: a conflict that hits inside Tx.Nested must be flagged.
func TestNestedConflictFlag(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		_, st = p.Transaction(func(tx *Tx) {
			tx.Nested(func(tx *Tx) {
				tx.Read(a)
				tx.Delay(10_000)
			})
			tx.Write(a, 1)
		})
	})
	m.Go(1, func(p *Proc) {
		p.Delay(500)
		p.Write(a, 9)
	})
	m.Run()
	if !st.Conflict || !st.Nested {
		t.Fatalf("abort status = %+v, want nested conflict", st)
	}
	if m.Stats.TxAbortNested != 1 {
		t.Fatalf("TxAbortNested = %d, want 1", m.Stats.TxAbortNested)
	}
}

// A conflict after the nested region must NOT set the nested flag: TxCAS
// relies on this to distinguish read-step from write-step conflicts.
func TestPostNestedConflictNotFlagged(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	b := m.AllocLine(8, 0)
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		_, st = p.Transaction(func(tx *Tx) {
			tx.Nested(func(tx *Tx) {
				tx.Read(b)
			})
			tx.Read(a)
			tx.Delay(10_000) // conflict arrives here, outside the nested region
		})
	})
	m.Go(1, func(p *Proc) {
		p.Delay(500)
		p.Write(a, 9)
	})
	m.Run()
	if !st.Conflict || st.Nested {
		t.Fatalf("abort status = %+v, want non-nested conflict", st)
	}
}

// Two transactions racing to write the same line: exactly one commits.
func TestRequesterWins(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	commits := 0
	for c := 0; c < 6; c++ {
		c := c
		m.Go(c, func(p *Proc) {
			// Stagger starts: perfectly synchronized writers all abort each
			// other (no winner), which real hardware's timing skew prevents.
			p.Delay(uint64(c) * 100)
			ok, _ := p.Transaction(func(tx *Tx) {
				v := tx.Read(a)
				if v != 0 {
					tx.Abort(1)
				}
				tx.Delay(300)
				tx.Write(a, uint64(c)+1)
			})
			if ok {
				commits++
			}
		})
	}
	m.Run()
	if commits != 1 {
		t.Fatalf("commits = %d, want exactly 1", commits)
	}
	if m.Peek(a) == 0 {
		t.Fatal("winning write not applied")
	}
}

// The tripped-writer scenario of paper Figure 3: a writer in its xend drain
// gets aborted by a concurrent remote read.
func TestTrippedWriter(t *testing.T) {
	cfg := small()
	cfg.TrippedWriterFix = false
	m := New(cfg)
	a := m.AllocLine(8, 0)
	// Seed sharers so the writer's GetM needs invalidation acks (a drain
	// window long enough for the read to land in).
	for c := 2; c < 8; c++ {
		m.Go(c, func(p *Proc) { p.Read(a) })
	}
	var ok bool
	m.Go(0, func(p *Proc) {
		p.Delay(2_000) // let sharers settle
		ok, _ = p.Transaction(func(tx *Tx) {
			tx.Read(a)
			tx.Write(a, 1)
			// xend now drains the GetM; the remote read below lands in
			// that window.
		})
	})
	m.Go(1, func(p *Proc) {
		p.Delay(2_000)
		p.Delay(cfg.HitCycles + cfg.HopCycles) // arrive mid-drain
		p.Read(a)
	})
	m.Run()
	if ok {
		t.Skip("scheduling did not produce the tripped-writer window (timing-sensitive)")
	}
	if m.Stats.TrippedWriters == 0 {
		t.Fatalf("writer aborted but not counted as tripped: %+v", m.Stats)
	}
}

// With the §3.4.1 fix the same schedule commits: the Fwd-GetS is stalled
// until the transaction commits.
func TestTrippedWriterFix(t *testing.T) {
	for _, fix := range []bool{false, true} {
		cfg := small()
		cfg.TrippedWriterFix = fix
		m := New(cfg)
		a := m.AllocLine(8, 0)
		for c := 2; c < 8; c++ {
			m.Go(c, func(p *Proc) { p.Read(a) })
		}
		var ok bool
		var reader uint64
		m.Go(0, func(p *Proc) {
			p.Delay(2_000)
			ok, _ = p.Transaction(func(tx *Tx) {
				tx.Read(a)
				tx.Write(a, 42)
			})
		})
		m.Go(1, func(p *Proc) {
			p.Delay(2_000 + cfg.HitCycles + cfg.HopCycles)
			reader = p.Read(a)
		})
		m.Run()
		if fix {
			if !ok {
				t.Fatal("with fix enabled, the tripped writer still aborted")
			}
			if m.Stats.FixStalls == 0 {
				t.Skip("schedule did not exercise the stall window")
			}
			if reader != 42 {
				t.Fatalf("stalled reader observed %d, want committed 42", reader)
			}
		}
	}
}

// Aborts must not leak into subsequent transactions on the same core.
func TestAbortThenRetrySucceeds(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	var attempts, committed int
	m.Go(0, func(p *Proc) {
		for {
			attempts++
			ok, _ := p.Transaction(func(tx *Tx) {
				v := tx.Read(a)
				tx.Delay(200)
				tx.Write(a, v+1)
			})
			if ok {
				committed++
				return
			}
			if attempts > 100 {
				t.Error("transaction never committed")
				return
			}
		}
	})
	m.Go(1, func(p *Proc) {
		// One interfering write early on.
		p.Delay(50)
		p.Write(a, 100)
	})
	m.Run()
	if committed != 1 {
		t.Fatalf("committed = %d", committed)
	}
	if m.Peek(a) != 101 {
		t.Fatalf("final value = %d, want 101", m.Peek(a))
	}
}

func TestNonTxOpInsideTransactionPanics(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	m.Go(0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("plain Read inside transaction did not panic")
			}
			// Unwind cleanly so the machine can finish.
			p.m.caches[p.core].txn = nil
		}()
		p.Transaction(func(tx *Tx) {
			p.Read(a)
		})
	})
	m.Run()
}

func TestTransactionStatsConsistent(t *testing.T) {
	m := New(small())
	a := m.AllocLine(8, 0)
	n := 6
	for c := 0; c < n; c++ {
		m.Go(c, func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Transaction(func(tx *Tx) {
					v := tx.Read(a)
					tx.Delay(100)
					tx.Write(a, v+1)
				})
			}
		})
	}
	m.Run()
	if m.Stats.TxStarted != m.Stats.TxCommits+m.Stats.TxAborts {
		t.Fatalf("started %d != commits %d + aborts %d",
			m.Stats.TxStarted, m.Stats.TxCommits, m.Stats.TxAborts)
	}
	if m.Peek(a) != uint64(m.Stats.TxCommits) {
		t.Fatalf("value %d != commits %d (lost or duplicated increments)", m.Peek(a), m.Stats.TxCommits)
	}
}
