package machine

import (
	"fmt"
	"io"
)

// TraceEvent records one protocol message send, for reproducing the
// message-dynamics diagrams of paper Figures 2 and 3.
type TraceEvent struct {
	Time uint64
	Msg  Msg
	To   string
}

// From names the sending endpoint.
func (e TraceEvent) From() string {
	if e.Msg.From < 0 {
		return fmt.Sprintf("Dir%d", -1-e.Msg.From)
	}
	return fmt.Sprintf("C%d", e.Msg.From)
}

// String formats the event as a one-line trace record.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("t=%-6d %-8s %s -> %s  line=%#x", e.Time, e.Msg.Kind, e.From(), e.To, e.Msg.Line)
	if e.Msg.Kind == MsgData {
		s += fmt.Sprintf(" acks=%d excl=%v", e.Msg.NeedAcks, e.Msg.Excl)
	}
	return s
}

// Tracer collects protocol events. Attach one to Machine.Tracer to record;
// Filter, if nonzero, restricts recording to a single line.
type Tracer struct {
	Filter uint64
	Events []TraceEvent
}

func (t *Tracer) record(now uint64, msg Msg, to string) {
	if t.Filter != 0 && msg.Line != t.Filter {
		return
	}
	t.Events = append(t.Events, TraceEvent{Time: now, Msg: msg, To: to})
}

// Dump writes the trace to w, one event per line.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events {
		fmt.Fprintln(w, e.String())
	}
}

// Count returns how many recorded events have the given kind.
func (t *Tracer) Count(kind MsgKind) int {
	n := 0
	for _, e := range t.Events {
		if e.Msg.Kind == kind {
			n++
		}
	}
	return n
}
