package machine

// MsgKind identifies a coherence protocol message type.
type MsgKind uint8

// Coherence message kinds, per the MSI directory protocol of Sorin et al.
// (the protocol the paper's §3 analysis is phrased in).
const (
	// MsgGetS asks the directory for Shared (read) permission.
	MsgGetS MsgKind = iota
	// MsgGetM asks the directory for Modified (write) permission.
	MsgGetM
	// MsgFwdGetS tells the current owner to downgrade to Shared and send
	// the line to the requester.
	MsgFwdGetS
	// MsgFwdGetM tells the current owner to invalidate and hand the line
	// to the requester.
	MsgFwdGetM
	// MsgInv tells a sharer to invalidate its copy and acknowledge to the
	// requester.
	MsgInv
	// MsgInvAck acknowledges an invalidation to the requesting core.
	MsgInvAck
	// MsgData grants the line to the requester. NeedAcks tells the
	// requester how many invalidation acknowledgments to wait for.
	MsgData
	// MsgDownAck confirms to the directory that an owner downgraded
	// Modified->Shared in response to a Fwd-GetS. The directory holds the
	// line in a transient state until this arrives, so that a read cannot
	// fork a second ownership chain while an exclusive handoff chain is
	// still draining.
	MsgDownAck

	numMsgKinds
)

var msgKindNames = [...]string{
	MsgGetS:    "GetS",
	MsgGetM:    "GetM",
	MsgFwdGetS: "Fwd-GetS",
	MsgFwdGetM: "Fwd-GetM",
	MsgInv:     "Inv",
	MsgInvAck:  "Inv-Ack",
	MsgData:    "Data",
	MsgDownAck: "DownAck",
}

// String returns the protocol name of the message kind.
func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return "?"
}

// Msg is a coherence message in flight.
type Msg struct {
	Kind MsgKind
	Line uint64 // cache line number (address >> 6)
	// From is the sending endpoint (core id, or -1 for a directory).
	From int
	// Requester is the core on whose behalf the transaction runs: the
	// destination of Data and Inv-Ack, and the final owner for forwards.
	Requester int
	// NeedAcks is meaningful for MsgData: invalidation acks the requester
	// must collect before the line is granted.
	NeedAcks int
	// Excl reports whether Data grants Modified (true) or Shared (false)
	// permission.
	Excl bool
}
