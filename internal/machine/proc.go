package machine

import "repro/internal/obs"

// Proc is a simulated hardware thread. Simulated programs are ordinary Go
// functions that call Proc methods for every shared-memory access; each
// call suspends the goroutine until the simulated operation completes, so
// computation between calls takes zero simulated time.
//
// A Proc's goroutine and the event engine hand control back and forth over
// a pair of unbuffered channels, so exactly one goroutine runs at any
// moment and the simulation is deterministic.
type Proc struct {
	m    *Machine
	core int
	idx  int

	wake  chan opResult
	yield chan struct{}

	waiter  *waiter
	rng     uint64
	running bool

	opStart uint64 // Now() when the current blocking op began (for latency probes)
}

type opResult struct {
	val     uint64
	aborted bool
	st      AbortStatus
}

// waiter represents one blocking operation; completion and abort paths race
// benignly through the done flag.
type waiter struct {
	done bool
}

func newProc(m *Machine, core, idx int) *Proc {
	seed := 0x9E3779B97F4A7C15 ^ (uint64(idx+1) * 0xBF58476D1CE4E5B9) ^ (m.cfg.Seed * 0x94D049BB133111EB)
	if seed == 0 {
		seed = 1
	}
	return &Proc{
		m:     m,
		core:  core,
		idx:   idx,
		wake:  make(chan opResult),
		yield: make(chan struct{}),
		rng:   seed,
	}
}

func (p *Proc) start(body func(*Proc)) {
	go func() {
		<-p.wake // wait for the engine to start us
		body(p)
		p.m.running--
		p.yield <- struct{}{} // hand control back; goroutine exits
	}()
	p.m.eng.Schedule(0, func() { p.resume(opResult{}) })
}

// resume transfers control to the proc goroutine and blocks the engine
// until the proc parks again or finishes. Engine context only.
func (p *Proc) resume(res opResult) {
	if p.running {
		panic("machine: resume of a proc that is not parked")
	}
	p.running = true
	p.wake <- res
	<-p.yield
}

// park transfers control back to the engine and blocks until resumed.
// Proc-goroutine context only.
func (p *Proc) park() opResult {
	p.running = false
	p.yield <- struct{}{}
	return <-p.wake
}

// blockOn registers w as the current waiter and parks.
func (p *Proc) blockOn(w *waiter) opResult {
	p.waiter = w
	p.opStart = p.m.eng.Now()
	return p.park()
}

// complete is called from engine context when the op a proc is blocked on
// finishes.
func (p *Proc) complete(w *waiter, res opResult) {
	if w.done {
		return // superseded by an abort
	}
	w.done = true
	p.waiter = nil
	p.resume(res)
}

// abortWake resumes a proc whose transaction was just aborted while it was
// blocked (on a transactional access, a delay, or an xend drain).
func (p *Proc) abortWake(st AbortStatus) {
	w := p.waiter
	if w == nil || w.done {
		// The proc is not blocked; this can only happen for self-aborts,
		// which are handled synchronously on the proc goroutine.
		return
	}
	w.done = true
	p.waiter = nil
	p.resume(opResult{aborted: true, st: st})
}

func (p *Proc) cache() *cache { return p.m.caches[p.core] }

// Core returns the hardware thread (core) this proc is pinned to.
func (p *Proc) Core() int { return p.core }

// Index returns the proc's creation index (a dense thread id).
func (p *Proc) Index() int { return p.idx }

// Socket returns the NUMA node of the proc's core.
func (p *Proc) Socket() int { return p.m.cfg.SocketOf(p.core) }

// Machine returns the machine this proc runs on.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the current simulated time in cycles.
func (p *Proc) Now() uint64 { return p.m.eng.Now() }

// RandN returns a deterministic pseudo-random number in [0, n).
func (p *Proc) RandN(n uint64) uint64 {
	// xorshift64*
	x := p.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.rng = x
	return (x * 0x2545F4914F6CDD1D) % n
}

func (p *Proc) checkNoTx(op string) {
	if p.cache().txn != nil {
		panic("machine: " + op + " inside a transaction; use Tx methods")
	}
}

// Read performs a coherent load of the 64-bit word at a.
func (p *Proc) Read(a Addr) uint64 {
	p.checkNoTx("Read")
	w := &waiter{}
	var out uint64
	p.cache().load(a, false, func(v uint64) {
		out = v
		p.complete(w, opResult{val: v})
	})
	p.blockOn(w)
	return out
}

// Write performs a coherent store of v to the word at a.
func (p *Proc) Write(a Addr, v uint64) {
	p.checkNoTx("Write")
	w := &waiter{}
	p.cache().store(a, v, func() { p.complete(w, opResult{}) })
	p.blockOn(w)
}

// CAS atomically compares the word at a with old and, if equal, stores new.
// It reports whether the swap happened. Like hardware CAS, it acquires
// exclusive ownership of the line whether it succeeds or fails.
func (p *Proc) CAS(a Addr, old, new uint64) bool {
	p.checkNoTx("CAS")
	p.m.obsInc(obs.CASAttempts)
	p.m.obsEvent(obs.EvCASAttempt, p.Core(), LineOf(a))
	w := &waiter{}
	ok := false
	p.cache().rmw(a, func(cur uint64) (uint64, bool) {
		if cur == old {
			ok = true
			return new, true
		}
		return 0, false
	}, func(uint64) { p.complete(w, opResult{}) })
	p.blockOn(w)
	if !ok {
		p.m.obsInc(obs.CASFailures)
		p.m.obsEvent(obs.EvCASFailure, p.Core(), LineOf(a))
	}
	return ok
}

// FallbackCAS is CAS plus fallback accounting: retry policies direct TxCAS
// here when they give up on the transactional path (HTM disabled, abort
// budget exhausted), and the counters let experiments separate fallback
// traffic from first-class CAS traffic.
func (p *Proc) FallbackCAS(a Addr, old, new uint64) bool {
	p.m.Stats.CASFallbacks++
	p.m.obsInc(obs.CASFallbacks)
	p.m.obsEvent(obs.EvCASFallback, p.Core(), LineOf(a))
	return p.CAS(a, old, new)
}

// FAA atomically adds delta to the word at a and returns the previous value.
func (p *Proc) FAA(a Addr, delta uint64) uint64 {
	p.checkNoTx("FAA")
	w := &waiter{}
	var out uint64
	p.cache().rmw(a, func(cur uint64) (uint64, bool) {
		return cur + delta, true
	}, func(old uint64) {
		out = old
		p.complete(w, opResult{})
	})
	p.blockOn(w)
	return out
}

// Swap atomically stores v to the word at a and returns the previous value.
func (p *Proc) Swap(a Addr, v uint64) uint64 {
	p.checkNoTx("Swap")
	w := &waiter{}
	var out uint64
	p.cache().rmw(a, func(uint64) (uint64, bool) {
		return v, true
	}, func(old uint64) {
		out = old
		p.complete(w, opResult{})
	})
	p.blockOn(w)
	return out
}

// Delay stalls the proc for the given number of cycles. Inside a
// transaction, use Tx.Delay instead so conflicts can preempt the wait.
func (p *Proc) Delay(cycles uint64) {
	if cycles == 0 {
		return
	}
	w := &waiter{}
	p.m.eng.Schedule(cycles, func() { p.complete(w, opResult{}) })
	p.blockOn(w)
}

// ---------------------------------------------------------------------------
// Transactions.

// txAbortPanic unwinds the proc goroutine to the enclosing Transaction call,
// playing the role of the hardware checkpoint restore.
type txAbortPanic struct{ st AbortStatus }

// Tx provides memory operations inside a hardware transaction. All methods
// may abort, in which case control transfers to the enclosing Transaction
// call and the body does not continue.
type Tx struct{ p *Proc }

// Transaction runs body inside a hardware transaction and attempts to
// commit it when body returns. It reports whether the commit succeeded;
// on abort, st describes the reason. Like real HTM, there is no guarantee
// a transaction ever commits; callers must implement their own retry or
// fallback policy.
func (p *Proc) Transaction(body func(*Tx)) (committed bool, st AbortStatus) {
	c := p.cache()
	if j := p.m.inj; j != nil && j.htmDisabled() {
		// HTM is disabled (FaultPlan.DisableHTM / DisableHTMAfter):
		// _xbegin refuses to start the transaction, which software sees
		// as an immediate zero-status abort. This path runs before
		// beginTx — no transactional state ever exists — but counts as a
		// started-and-aborted transaction, as real RTM reports it.
		j.txSeen++
		st = AbortStatus{Disabled: true, Requester: -1}
		p.m.Stats.TxStarted++
		p.m.obsInc(obs.TxStarts)
		p.m.obsEvent(obs.EvTxBegin, p.core, 0)
		p.m.Stats.TxAborts++
		p.m.obsInc(obs.TxAborts)
		p.m.Stats.TxAbortDisabled++
		p.m.obsInc(obs.TxAbortsDisabled)
		j.noteInjected(FaultDisabled, p.core)
		c.abortEvent(st, false, -1, 0)
		p.Delay(p.m.cfg.AbortCycles)
		return false, st
	}
	c.beginTx(p)
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(txAbortPanic)
			if !ok {
				panic(r)
			}
			committed = false
			st = ab.st
			// Checkpoint restore cost.
			p.Delay(p.m.cfg.AbortCycles)
		}
	}()
	body(&Tx{p})
	// xend: drain the store buffer, then commit.
	w := &waiter{}
	c.tryCommit(func() { p.complete(w, opResult{}) })
	res := p.blockOn(w)
	if res.aborted {
		committed = false
		st = res.st
		p.Delay(p.m.cfg.AbortCycles)
		return
	}
	return true, AbortStatus{Requester: -1}
}

func (t *Tx) check(res opResult) uint64 {
	if res.aborted {
		panic(txAbortPanic{st: res.st})
	}
	return res.val
}

// Read loads the word at a transactionally, adding its line to the read set.
func (t *Tx) Read(a Addr) uint64 {
	p := t.p
	w := &waiter{}
	p.cache().load(a, true, func(v uint64) { p.complete(w, opResult{val: v}) })
	return t.check(p.blockOn(w))
}

// Write buffers a transactional store to a, adding its line to the write
// set and issuing the ownership request without blocking (store-buffer
// semantics; the write drains at commit). It aborts if the write set
// would overflow the speculative-state capacity.
func (t *Tx) Write(a Addr, v uint64) {
	c := t.p.cache()
	if tn := c.txn; tn != nil && c.txOverCapacity(tn, LineOf(a)) {
		c.m.Stats.TxAbortCapacity++
		c.m.obsInc(obs.TxAbortsCapacity)
		st := AbortStatus{Capacity: true, Nested: tn.depth >= 2, Requester: -1}
		c.txn = nil
		c.m.Stats.TxAborts++
		c.m.obsInc(obs.TxAborts)
		c.abortEvent(st, false, -1, LineOf(a))
		for _, msg := range tn.stalledFwd {
			c.handleNow(msg)
		}
		panic(txAbortPanic{st: st})
	}
	c.txStore(a, v)
}

// Delay stalls for the given number of cycles, aborting early if a conflict
// arrives — this implements the intra-transaction delay of paper §4.1.
func (t *Tx) Delay(cycles uint64) {
	if cycles == 0 {
		return
	}
	p := t.p
	w := &waiter{}
	p.m.eng.Schedule(cycles, func() { p.complete(w, opResult{}) })
	t.check(p.blockOn(w))
}

// Abort aborts the transaction explicitly with the given code (_xabort).
// It does not return.
func (t *Tx) Abort(code uint8) {
	c := t.p.cache()
	st := AbortStatus{Explicit: true, Code: code, Nested: c.txn != nil && c.txn.depth >= 2, Requester: -1}
	// Self-abort: tear down state synchronously, then unwind.
	tn := c.txn
	c.txn = nil
	c.m.Stats.TxAborts++
	c.m.obsInc(obs.TxAborts)
	c.m.Stats.TxAbortExplicit++
	c.m.obsInc(obs.TxAbortsExplicit)
	if st.Nested {
		c.m.Stats.TxAbortNested++
		c.m.obsInc(obs.TxAbortsNested)
	}
	c.abortEvent(st, false, -1, 0)
	for _, msg := range tn.stalledFwd {
		c.handleNow(msg)
	}
	panic(txAbortPanic{st: st})
}

// Nested runs body inside a nested transaction. The simulated HTM uses flat
// nesting (like Intel RTM): the nested transaction does not commit
// independently, but aborts that hit inside it are flagged Nested in the
// AbortStatus, which is the facility TxCAS exploits (paper §4.2).
func (t *Tx) Nested(body func(*Tx)) {
	c := t.p.cache()
	if c.txn == nil {
		panic("machine: Nested outside transaction")
	}
	c.txn.depth++
	defer func() {
		// On abort the panic unwinds through here; the txn is already
		// gone, so only decrement when it survives.
		if c.txn != nil {
			c.txn.depth--
		}
	}()
	body(t)
}
