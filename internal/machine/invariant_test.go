package machine

import "testing"

// checkQuiescentCoherence asserts protocol bookkeeping invariants that
// must hold once the machine is quiescent (no events pending):
//   - at most one cache holds any line in M;
//   - if some cache holds a line in M, its home directory records state M
//     with that cache as owner;
//   - no directory line is stuck in the transient downgrade state;
//   - no cache has an outstanding miss or a deferred message.
func checkQuiescentCoherence(t *testing.T, m *Machine) {
	t.Helper()
	type key struct{ line uint64 }
	owners := map[key][]int{}
	for id, c := range m.caches {
		for line, st := range c.lines {
			if st == stateM {
				owners[key{line}] = append(owners[key{line}], id)
			}
		}
		if len(c.mshr) != 0 {
			t.Errorf("C%d has %d outstanding misses at quiescence", id, len(c.mshr))
		}
		for line, msgs := range c.deferred {
			if len(msgs) != 0 {
				t.Errorf("C%d holds %d deferred messages for line %#x", id, len(msgs), line)
			}
		}
		if c.txn != nil {
			t.Errorf("C%d has a live transaction at quiescence", id)
		}
	}
	for k, own := range owners {
		if len(own) > 1 {
			t.Errorf("line %#x in M at multiple caches: %v", k.line, own)
		}
		d := m.dirs[m.homeOf(k.line)]
		dl, ok := d.lines[k.line]
		if !ok || dl.state != stateM || dl.owner != own[0] {
			t.Errorf("line %#x: cache C%d in M but directory disagrees (%+v)", k.line, own[0], dl)
		}
	}
	for s, d := range m.dirs {
		for line, dl := range d.lines {
			if dl.trans {
				t.Errorf("Dir%d line %#x stuck in transient downgrade", s, line)
			}
			if len(dl.pend) != 0 {
				t.Errorf("Dir%d line %#x has %d queued requests at quiescence", s, line, len(dl.pend))
			}
		}
	}
}

// Random mixed workloads across sockets, lines, and op types must leave
// the protocol in a consistent quiescent state.
func TestQuiescentInvariantsMixedWorkload(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := small()
		cfg.Seed = seed
		m := New(cfg)
		lines := []Addr{
			m.AllocLine(8, 0), m.AllocLine(8, 0),
			m.AllocLine(8, 1), m.AllocLine(8, 1),
		}
		for c := 0; c < m.Config().NumCores(); c++ {
			m.Go(c, func(p *Proc) {
				for i := 0; i < 40; i++ {
					a := lines[p.RandN(uint64(len(lines)))]
					switch p.RandN(6) {
					case 0:
						p.Read(a)
					case 1:
						p.Write(a, p.RandN(1000))
					case 2:
						p.FAA(a, 1)
					case 3:
						p.CAS(a, p.RandN(8), p.RandN(8))
					case 4:
						p.Swap(a, p.RandN(1000))
					case 5:
						p.Transaction(func(tx *Tx) {
							v := tx.Read(a)
							tx.Delay(p.RandN(150))
							tx.Write(a, v+1)
						})
					}
				}
			})
		}
		m.Run()
		checkQuiescentCoherence(t, m)
	}
}

// The same invariants must hold under HTM fault injection and with the
// tripped-writer fix enabled.
func TestQuiescentInvariantsWithFaultsAndFix(t *testing.T) {
	cfg := small()
	cfg.Seed = 3
	cfg.SpuriousAbortEvery = 5
	cfg.TrippedWriterFix = true
	m := New(cfg)
	a := m.AllocLine(8, 0)
	b := m.AllocLine(8, 1)
	for c := 0; c < m.Config().NumCores(); c++ {
		m.Go(c, func(p *Proc) {
			for i := 0; i < 30; i++ {
				p.Transaction(func(tx *Tx) {
					v := tx.Read(a)
					tx.Delay(p.RandN(200))
					tx.Write(a, v+1)
				})
				p.Read(b)
				p.FAA(b, 1)
			}
		})
	}
	m.Run()
	checkQuiescentCoherence(t, m)
}
