package machine

import "repro/internal/obs"

// lstate is a cache line's stable coherence state.
type lstate uint8

const (
	stateI lstate = iota // Invalid: not present / no permissions
	stateS               // Shared: read permission
	stateM               // Modified: read/write permission, exclusive
)

func (s lstate) String() string {
	switch s {
	case stateS:
		return "S"
	case stateM:
		return "M"
	default:
		return "I"
	}
}

// mshrEntry tracks one outstanding coherence request (at most one per line
// per cache). The line is granted once the Data response has arrived and
// all invalidation acknowledgments have been collected.
type mshrEntry struct {
	wantM       bool
	dataArrived bool
	needAcks    int // valid once dataArrived
	gotAcks     int
	onGrant     []func()
	// deferred holds forwarded requests that arrived while this request
	// was in flight; they are serviced once the line is granted. This is
	// the owner-side stall that serializes RMW handoff chains.
	deferred []Msg
}

// cache is a core's private cache controller.
type cache struct {
	m    *Machine
	core int

	lines map[uint64]lstate
	mshr  map[uint64]*mshrEntry

	// locked marks lines held exclusively for the duration of an atomic
	// RMW; incoming coherence requests for them are deferred.
	locked   map[uint64]bool
	deferred map[uint64][]Msg

	txn *txn // active hardware transaction, if any

	inbox     []Msg
	busyUntil uint64
	draining  bool
}

func newCache(m *Machine, core int) *cache {
	return &cache{
		m:        m,
		core:     core,
		lines:    make(map[uint64]lstate),
		mshr:     make(map[uint64]*mshrEntry),
		locked:   make(map[uint64]bool),
		deferred: make(map[uint64][]Msg),
	}
}

func (c *cache) proc() *Proc { return c.m.procs[c.core] }

func (c *cache) socket() int { return c.m.cfg.SocketOf(c.core) }

// ---------------------------------------------------------------------------
// Requests initiated by the local core.

// request ensures an outstanding GetS/GetM for line and registers a grant
// callback. If the line already has sufficient permission the callback runs
// after a hit latency instead.
func (c *cache) request(line uint64, wantM bool, onGrant func()) {
	st := c.lines[line]
	if st == stateM || (st == stateS && !wantM) {
		c.m.eng.Schedule(c.m.cfg.HitCycles, onGrant)
		return
	}
	if e, ok := c.mshr[line]; ok {
		if wantM && !e.wantM {
			// Upgrade desired while a GetS is in flight: chain a fresh
			// request after the grant.
			e.onGrant = append(e.onGrant, func() { c.request(line, true, onGrant) })
			return
		}
		e.onGrant = append(e.onGrant, onGrant)
		return
	}
	e := &mshrEntry{wantM: wantM, needAcks: -1}
	e.onGrant = append(e.onGrant, onGrant)
	c.mshr[line] = e
	kind := MsgGetS
	if wantM {
		kind = MsgGetM
	}
	c.m.sendToDir(c.socket(), Msg{Kind: kind, Line: line, From: c.core, Requester: c.core})
}

func (c *cache) tryComplete(line uint64, e *mshrEntry) {
	if !e.dataArrived || e.gotAcks < e.needAcks {
		return
	}
	delete(c.mshr, line)
	if e.wantM {
		c.lines[line] = stateM
	} else if c.lines[line] != stateM {
		c.lines[line] = stateS
	}
	for _, f := range e.onGrant {
		f()
	}
	// Service requests that stalled behind this miss. The grant callbacks
	// above may have started an RMW hold, in which case handleNow defers
	// them again until the hold releases.
	pend := e.deferred
	e.deferred = nil
	for _, msg := range pend {
		c.handleNow(msg)
	}
}

// load performs a (possibly transactional) read of addr. done receives the
// loaded value; it runs in engine context at completion time.
func (c *cache) load(addr Addr, tx bool, done func(val uint64)) {
	c.m.Stats.Loads++
	line := LineOf(addr)
	if tx && c.txn != nil {
		if v, ok := c.txn.writeBuf[addr]; ok {
			c.m.eng.Schedule(c.m.cfg.HitCycles, func() { done(v) })
			return
		}
	}
	txid := c.txnID()
	if st := c.lines[line]; st == stateS || st == stateM {
		c.m.Stats.LoadHits++
	}
	c.request(line, false, func() {
		if tx && c.txn != nil && c.txn.id == txid {
			if c.txOverCapacity(c.txn, line) {
				c.m.Stats.TxAbortCapacity++
				c.m.obsInc(obs.TxAbortsCapacity)
				c.abortTx(AbortStatus{Capacity: true, Nested: c.txn.depth >= 2}, false, -1, line)
				return
			}
			c.txn.readSet[line] = struct{}{}
		}
		done(c.m.mem[addr])
	})
}

// store performs a non-transactional write of addr.
func (c *cache) store(addr Addr, v uint64, done func()) {
	c.m.Stats.Stores++
	line := LineOf(addr)
	if c.lines[line] == stateM {
		c.m.Stats.StoreHits++
	}
	c.request(line, true, func() {
		c.m.mem[addr] = v
		done()
	})
}

// rmw performs an atomic read-modify-write: acquire Modified ownership,
// hold the line (stalling incoming requests) for RMWHold cycles while the
// update is applied, then release. apply returns the new value and whether
// to write it back; done receives the old value.
func (c *cache) rmw(addr Addr, apply func(old uint64) (uint64, bool), done func(old uint64)) {
	c.m.Stats.RMWs++
	line := LineOf(addr)
	c.request(line, true, func() {
		c.locked[line] = true
		c.m.eng.Schedule(c.m.cfg.RMWHold, func() {
			old := c.m.mem[addr]
			if nv, wb := apply(old); wb {
				c.m.mem[addr] = nv
			}
			c.locked[line] = false
			c.releaseDeferred(line)
			done(old)
		})
	})
}

func (c *cache) releaseDeferred(line uint64) {
	pend := c.deferred[line]
	if len(pend) == 0 {
		return
	}
	delete(c.deferred, line)
	for _, msg := range pend {
		c.handleNow(msg)
	}
}

// ---------------------------------------------------------------------------
// Incoming coherence traffic.

// receive enqueues an incoming message; the controller handles one message
// per CacheOccupancy cycles.
func (c *cache) receive(msg Msg) {
	c.inbox = append(c.inbox, msg)
	if !c.draining {
		c.draining = true
		start := c.m.eng.Now()
		if c.busyUntil > start {
			start = c.busyUntil
		}
		c.m.eng.At(start, c.drain)
	}
}

func (c *cache) drain() {
	msg := c.inbox[0]
	c.inbox = c.inbox[1:]
	c.busyUntil = c.m.eng.Now() + c.m.cfg.CacheOccupancy
	c.handleNow(msg)
	if len(c.inbox) > 0 {
		c.m.eng.At(c.busyUntil, c.drain)
	} else {
		c.draining = false
	}
}

func (c *cache) handleNow(msg Msg) {
	line := msg.Line
	switch msg.Kind {
	case MsgData:
		if e, ok := c.mshr[line]; ok {
			e.dataArrived = true
			e.needAcks = msg.NeedAcks
			c.tryComplete(line, e)
		} else if c.lines[line] != stateM {
			// Stale grant (e.g. the waiting transaction aborted and the
			// entry was serviced through another path); keep permissions.
			if msg.Excl {
				c.lines[line] = stateM
			} else if c.lines[line] == stateI {
				c.lines[line] = stateS
			}
		}
	case MsgInvAck:
		if e, ok := c.mshr[line]; ok {
			e.gotAcks++
			c.tryComplete(line, e)
		}
	case MsgInv:
		// Requester-wins: an invalidation of a transactionally accessed
		// line aborts the transaction. This is the concurrent-abort path
		// that makes TxCAS failures scale (paper §3.3).
		c.conflict(line, msg.Requester)
		if c.lines[line] != stateM {
			c.lines[line] = stateI
		}
		c.m.sendToCache(c.socket(), msg.Requester, Msg{Kind: MsgInvAck, Line: line, From: c.core, Requester: msg.Requester})
	case MsgFwdGetS:
		if c.locked[line] {
			c.deferred[line] = append(c.deferred[line], msg)
			return
		}
		if e, ok := c.mshr[line]; ok && e.wantM {
			// We are in the window between issuing our GetM and having it
			// complete: the tripped-writer window of paper §3.4.
			if c.txn != nil && c.txn.writes(line) {
				if c.m.cfg.TrippedWriterFix && c.txn.committing && c.txn.pendingW == 1 {
					c.m.Stats.FixStalls++
					c.m.obsInc(obs.TxFixStalls)
					c.txn.stalledFwd = append(c.txn.stalledFwd, msg)
					return
				}
				c.abortTx(AbortStatus{Conflict: true, Nested: c.txn.depth >= 2}, c.txn.committing, msg.Requester, line)
			}
			e.deferred = append(e.deferred, msg)
			return
		}
		if c.txn != nil && c.txn.writes(line) {
			// Remote read of a transactionally written line we already own.
			if c.m.cfg.TrippedWriterFix && c.txn.committing {
				c.m.Stats.FixStalls++
				c.m.obsInc(obs.TxFixStalls)
				c.txn.stalledFwd = append(c.txn.stalledFwd, msg)
				return
			}
			c.abortTx(AbortStatus{Conflict: true, Nested: c.txn.depth >= 2}, c.txn.committing, msg.Requester, line)
		}
		if c.lines[line] == stateM {
			c.lines[line] = stateS
		}
		c.m.sendToCache(c.socket(), msg.Requester, Msg{Kind: MsgData, Line: line, From: c.core, Requester: msg.Requester, NeedAcks: 0, Excl: false})
		c.m.sendToDir(c.socket(), Msg{Kind: MsgDownAck, Line: line, From: c.core, Requester: msg.Requester})
	case MsgFwdGetM:
		if c.locked[line] {
			c.deferred[line] = append(c.deferred[line], msg)
			return
		}
		if c.txn != nil && (c.txn.writes(line) || c.txn.reads(line)) {
			c.abortTx(AbortStatus{Conflict: true, Nested: c.txn.depth >= 2}, false, msg.Requester, line)
		}
		if e, ok := c.mshr[line]; ok && e.wantM {
			// Ownership is being handed to us but has not completed;
			// stall the forward until it does.
			e.deferred = append(e.deferred, msg)
			return
		}
		c.lines[line] = stateI
		c.m.sendToCache(c.socket(), msg.Requester, Msg{Kind: MsgData, Line: line, From: c.core, Requester: msg.Requester, NeedAcks: 0, Excl: true})
	default:
		panic("machine: cache received " + msg.Kind.String())
	}
}

// conflict aborts the active transaction if it has accessed line. An
// invalidation means another *write* won the line — a normal requester-wins
// failure, never a tripped writer (those are read-triggered, §3.4).
// requester is the winning core, recorded for abort attribution.
func (c *cache) conflict(line uint64, requester int) {
	if c.txn == nil {
		return
	}
	if c.txn.writes(line) || c.txn.reads(line) {
		c.abortTx(AbortStatus{Conflict: true, Nested: c.txn.depth >= 2}, false, requester, line)
	}
}
