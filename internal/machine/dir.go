package machine

import "sort"

// directory is the per-socket home agent for the lines allocated on that
// socket. It tracks, per line, who shares or owns it, and turns GetS/GetM
// requests into grants, forwards, and invalidations.
//
// The directory is pipelined rather than blocking: it updates its notion of
// the owner as soon as it processes a GetM and immediately moves on to the
// next request, producing the back-to-back Fwd-GetM chains that paper §3.2
// identifies as the source of the (C+1)/2 serialization, and the
// back-to-back invalidations that §3.3 identifies as the source of
// concurrent transactional aborts. Races that pipelining admits are
// resolved tolerantly at the caches (see cache.receive); data values are
// held in an authoritative store, so races affect timing only.
type directory struct {
	m      *Machine
	socket int

	lines map[uint64]*dirLine

	inbox     []Msg
	busyUntil uint64
	draining  bool
}

type dirLine struct {
	state   lstate
	owner   int
	sharers map[int]struct{}
	// trans marks the transient MS_W state: a Fwd-GetS is outstanding and
	// the line is blocked until the (eventual) owner confirms its
	// downgrade with DownAck. Requests arriving meanwhile queue in pend.
	trans bool
	// reader is the GetS requester that caused the downgrade.
	reader int
	pend   []Msg
}

func newDirectory(m *Machine, socket int) *directory {
	return &directory{m: m, socket: socket, lines: make(map[uint64]*dirLine)}
}

func (d *directory) line(l uint64) *dirLine {
	dl, ok := d.lines[l]
	if !ok {
		dl = &dirLine{state: stateI, sharers: make(map[int]struct{})}
		d.lines[l] = dl
	}
	return dl
}

// receive enqueues a message; the directory handles one message per
// DirOccupancy cycles, which is the serialization point of the protocol.
func (d *directory) receive(msg Msg) {
	d.inbox = append(d.inbox, msg)
	if !d.draining {
		d.draining = true
		start := d.m.eng.Now()
		if d.busyUntil > start {
			start = d.busyUntil
		}
		d.m.eng.At(start, d.drain)
	}
}

func (d *directory) drain() {
	msg := d.inbox[0]
	d.inbox = d.inbox[1:]
	d.busyUntil = d.m.eng.Now() + d.m.cfg.DirOccupancy
	d.handle(msg)
	if len(d.inbox) > 0 {
		d.m.eng.At(d.busyUntil, d.drain)
	} else {
		d.draining = false
	}
}

func (d *directory) handle(msg Msg) {
	dl := d.line(msg.Line)
	req := msg.Requester
	if msg.Kind == MsgDownAck {
		// The downgrade completed: the previous owner and the reader now
		// share the line; drain requests that queued behind the transient.
		dl.state = stateS
		clear(dl.sharers)
		dl.sharers[msg.From] = struct{}{}
		dl.sharers[dl.reader] = struct{}{}
		dl.trans = false
		for len(dl.pend) > 0 && !dl.trans {
			next := dl.pend[0]
			dl.pend = dl.pend[1:]
			d.handle(next)
		}
		return
	}
	if dl.trans {
		dl.pend = append(dl.pend, msg)
		return
	}
	switch msg.Kind {
	case MsgGetS:
		switch dl.state {
		case stateI:
			dl.state = stateS
			dl.sharers[req] = struct{}{}
			d.grant(req, msg.Line, 0, false)
		case stateS:
			dl.sharers[req] = struct{}{}
			d.grant(req, msg.Line, 0, false)
		case stateM:
			// Enter the transient MS_W state until the owner confirms the
			// downgrade; the Fwd-GetS may land in the owner's xend drain
			// window — the tripped-writer scenario of paper §3.4.
			dl.trans = true
			dl.reader = req
			d.m.sendToCache(d.socket, dl.owner, Msg{Kind: MsgFwdGetS, Line: msg.Line, From: -1 - d.socket, Requester: req})
		}
	case MsgGetM:
		switch dl.state {
		case stateI:
			dl.state = stateM
			dl.owner = req
			d.grant(req, msg.Line, 0, true)
		case stateS:
			n := 0
			for s := range dl.sharers {
				if s != req {
					n++
				}
			}
			// Grant first, then fan the invalidations out back-to-back.
			d.grant(req, msg.Line, n, true)
			for _, s := range sortedSet(dl.sharers) {
				if s != req {
					d.m.sendToCache(d.socket, s, Msg{Kind: MsgInv, Line: msg.Line, From: -1 - d.socket, Requester: req})
				}
			}
			dl.state = stateM
			dl.owner = req
			clear(dl.sharers)
		case stateM:
			if dl.owner == req {
				// Stale request after a raced handoff; re-grant.
				d.grant(req, msg.Line, 0, true)
				return
			}
			owner := dl.owner
			dl.owner = req
			d.m.sendToCache(d.socket, owner, Msg{Kind: MsgFwdGetM, Line: msg.Line, From: -1 - d.socket, Requester: req})
		}
	default:
		panic("machine: directory received " + msg.Kind.String())
	}
}

func (d *directory) grant(req int, line uint64, needAcks int, excl bool) {
	d.m.sendToCache(d.socket, req, Msg{Kind: MsgData, Line: line, From: -1 - d.socket, Requester: req, NeedAcks: needAcks, Excl: excl})
}

// sortedSet returns the sharer set in ascending core order so that
// invalidation fan-out order — and therefore the whole simulation — is
// deterministic despite map storage.
func sortedSet(set map[int]struct{}) []int {
	ids := make([]int, 0, len(set))
	for s := range set {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	return ids
}
