package policy

import "testing"

// fixedRand returns a randN that always yields v (clamped below n) and
// counts draws.
func fixedRand(v uint64) (func(uint64) uint64, *int) {
	calls := new(int)
	return func(n uint64) uint64 {
		*calls++
		if v >= n {
			return n - 1
		}
		return v
	}, calls
}

func TestAbortSpurious(t *testing.T) {
	cases := []struct {
		a    Abort
		want bool
	}{
		{Abort{}, false}, // attempt 0: nothing aborted yet
		{Abort{Attempt: 1}, true},
		{Abort{Attempt: 1, Conflict: true}, false},
		{Abort{Attempt: 1, Explicit: true, Code: 1}, false},
		{Abort{Attempt: 1, Capacity: true}, false},
		{Abort{Attempt: 1, Disabled: true}, false},
	}
	for _, c := range cases {
		if got := c.a.Spurious(); got != c.want {
			t.Errorf("Spurious(%+v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestImmediateRetry(t *testing.T) {
	rand, calls := fixedRand(3)
	p := ImmediateRetry{Jitter: 10}

	if d := p.Decide(Abort{}, rand); d != (Decision{}) {
		t.Errorf("first attempt: %+v, want immediate try", d)
	}
	if *calls != 0 {
		t.Error("first attempt drew randomness")
	}
	if d := p.Decide(Abort{Attempt: 2, Conflict: true}, rand); d != (Decision{Delay: 3}) {
		t.Errorf("retry: %+v, want jittered delay 3", d)
	}
	if d := p.Decide(Abort{Attempt: 1, Disabled: true}, rand); !d.Fallback {
		t.Errorf("disabled: %+v, want fallback", d)
	}
	// No jitter configured: pure immediate retry, no randomness drawn.
	rand2, calls2 := fixedRand(3)
	if d := (ImmediateRetry{}).Decide(Abort{Attempt: 5}, rand2); d != (Decision{}) {
		t.Errorf("jitterless retry: %+v", d)
	}
	if *calls2 != 0 {
		t.Error("jitterless policy drew randomness")
	}
}

func TestExponentialBackoffWindowGrowth(t *testing.T) {
	p := ExponentialBackoff{Base: 8, Max: 64}
	// randN receives the window bound; capture it per attempt.
	var windows []uint64
	rand := func(n uint64) uint64 {
		windows = append(windows, n)
		return n - 1
	}
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.Decide(Abort{Attempt: attempt, Conflict: true}, rand)
		if d.Fallback {
			t.Fatalf("attempt %d fell back", attempt)
		}
	}
	want := []uint64{8, 16, 32, 64, 64, 64}
	for i, w := range want {
		if windows[i] != w {
			t.Fatalf("windows = %v, want %v", windows, want)
		}
	}
}

func TestExponentialBackoffEdges(t *testing.T) {
	rand, calls := fixedRand(0)
	if d := (ExponentialBackoff{Base: 8}).Decide(Abort{}, rand); d != (Decision{}) {
		t.Errorf("attempt 0: %+v, want no delay", d)
	}
	if *calls != 0 {
		t.Error("attempt 0 drew randomness")
	}
	if d := (ExponentialBackoff{}).Decide(Abort{Attempt: 3}, rand); d != (Decision{}) {
		t.Errorf("zero base: %+v, want no delay", d)
	}
	if d := (ExponentialBackoff{Base: 8}).Decide(Abort{Attempt: 1, Disabled: true}, rand); !d.Fallback {
		t.Errorf("disabled: %+v, want fallback", d)
	}
	// Default Max = Base<<6.
	var bound uint64
	(ExponentialBackoff{Base: 2}).Decide(Abort{Attempt: 60}, func(n uint64) uint64 {
		bound = n
		return 0
	})
	if bound != 2<<6 {
		t.Errorf("default max window = %d, want %d", bound, 2<<6)
	}
}

func TestAbortBudget(t *testing.T) {
	rand, _ := fixedRand(2)
	p := AbortBudget{Budget: 3, Inner: ImmediateRetry{Jitter: 10}}

	for attempt := 0; attempt < 3; attempt++ {
		if d := p.Decide(Abort{Attempt: attempt, Conflict: attempt > 0}, rand); d.Fallback {
			t.Fatalf("attempt %d within budget fell back", attempt)
		}
	}
	if d := p.Decide(Abort{Attempt: 3, Conflict: true}, rand); !d.Fallback {
		t.Errorf("budget exhausted: %+v, want fallback", d)
	}
	if d := p.Decide(Abort{Attempt: 1, Disabled: true}, rand); !d.Fallback {
		t.Errorf("disabled inside budget: %+v, want fallback", d)
	}
	// Zero budget is a pure software-path policy.
	if d := (AbortBudget{}).Decide(Abort{}, rand); !d.Fallback {
		t.Errorf("zero budget first attempt: %+v, want fallback", d)
	}
	// The inner policy paces but cannot end the fast path early.
	early := AbortBudget{Budget: 4, Inner: DelayedCAS{Delay: 9}}
	d := early.Decide(Abort{Attempt: 1, Conflict: true}, rand)
	if d.Fallback {
		t.Errorf("inner fallback leaked through the budget: %+v", d)
	}
	if d.Delay != 9 {
		t.Errorf("inner delay lost: %+v", d)
	}
}

func TestDelayedCAS(t *testing.T) {
	rand, calls := fixedRand(4)
	if d := (DelayedCAS{Delay: 675}).Decide(Abort{}, rand); d != (Decision{Fallback: true, Delay: 675}) {
		t.Errorf("Decide = %+v", d)
	}
	if *calls != 0 {
		t.Error("jitterless DelayedCAS drew randomness")
	}
	if d := (DelayedCAS{Delay: 675, Jitter: 100}).Decide(Abort{}, rand); d != (Decision{Fallback: true, Delay: 679}) {
		t.Errorf("jittered Decide = %+v", d)
	}
}
