// Package policy makes the TxCAS retry/fallback decision pluggable.
//
// The paper's TxCAS (§4) assumes HTM that always eventually commits and
// hides its retry loop inside the algorithm. Real deployments cannot: RTM
// aborts spuriously, loses capacity, and — since Intel's microcode updates
// that disable TSX — may refuse to start transactions at all. Brown's
// "Template for Implementing Fast Lock-free Trees Using HTM" (PAPERS.md)
// shows that the fallback-path design dominates behaviour in exactly these
// regimes, and Alistarh et al. show the hybrid boundary must be explicit.
// This package is that boundary: a RetryPolicy decides, before every
// transactional attempt, whether to try HTM now, wait and then try, or
// abandon HTM for the guaranteed software path (a plain CAS).
//
// Policies are pure decision procedures: they never touch memory and draw
// randomness only through the randN stream handed to Decide, so a policy on
// the simulated machine preserves the machine's determinism (equal seeds,
// equal executions) and the same policy values can pace the native queues.
//
// The built-ins cover the design space the literature names:
//
//   - ImmediateRetry — retry instantly while the hardware says retrying can
//     help; fall back once it says it cannot (Disabled).
//   - ExponentialBackoff — randomized exponential delay between attempts,
//     the classic contention-control middle ground.
//   - AbortBudget — Brown's template: bounded attempts on the fast path,
//     then the fallback path unconditionally.
//   - DelayedCAS — the paper's §4.1 software baseline expressed as a
//     policy: skip HTM entirely, wait the tuned delay, CAS.
package policy

// Abort describes the state of one TxCAS operation when a retry decision is
// needed. It deliberately mirrors machine.AbortStatus with plain fields
// instead of importing it, so policies compile for the native track too.
type Abort struct {
	// Attempt is the number of transactional attempts completed so far.
	// Policies are consulted before every attempt, so the first call of an
	// operation sees Attempt == 0 with no reason flags set — which is how
	// DelayedCAS can divert an operation before it ever touches HTM.
	Attempt int

	// Reason flags of the most recent abort (all false when Attempt == 0).
	// They carry the same meaning as machine.AbortStatus.
	Conflict bool
	Explicit bool
	Capacity bool
	Disabled bool
	Nested   bool
	// Code is the explicit-abort code when Explicit is set.
	Code uint8

	// Requester is the identity of the conflicting thread/core the failure
	// report attributed the abort to, or -1 (txcas.NoWriter) when unknown.
	// On the simulated track it is the requester core from the HTM abort
	// status; on the native track it is the last winner published through
	// the location's version word. It is the sharer hint contention-aware
	// policies can act on — the paper's profit-from-failure signal (§3).
	// Executors that have no hint must set NoRequester explicitly: thread 0
	// is a valid identity, so the zero value is not a safe "unknown".
	Requester int
}

// NoRequester is the Requester value of an Abort carrying no sharer
// identity. It equals txcas.NoWriter (this package cannot import
// repro/internal/txcas without a cycle).
const NoRequester = -1

// Spurious reports whether the last abort carried no cause flag — the
// zero-status abort an interrupt produces through _xbegin.
func (a Abort) Spurious() bool {
	return a.Attempt > 0 && !a.Conflict && !a.Explicit && !a.Capacity && !a.Disabled
}

// Decision is a policy's verdict for the upcoming attempt.
type Decision struct {
	// Fallback abandons the transactional path: the executor resolves the
	// operation with its guaranteed software fallback (a plain CAS).
	Fallback bool
	// Delay stalls the thread this many cycles before acting (before the
	// transactional attempt, or before the fallback CAS when Fallback is
	// set). On the native track cycles convert at the usual 2.5 cycles/ns.
	Delay uint64
}

// RetryPolicy decides, before every transactional attempt of an operation,
// whether to proceed, wait, or take the software fallback.
//
// randN returns a deterministic pseudo-random number in [0, n) drawn from
// the calling thread's stream; policies must use it for any randomness so
// simulated runs stay replayable. Implementations must be stateless or
// immutable: one policy value is shared by every thread of an experiment.
type RetryPolicy interface {
	Decide(a Abort, randN func(n uint64) uint64) Decision
}

// ImmediateRetry retries instantly after every abort for which retrying can
// help, and falls back only when the hardware reports HTM disabled. Jitter
// adds up to that many cycles of randomized delay before each retry; the
// simulated machine is perfectly symmetric, so some jitter is needed to
// break retry lockstep (the role Options.RetryJitter plays in the legacy
// loop).
type ImmediateRetry struct {
	Jitter uint64
}

// Decide implements RetryPolicy.
func (p ImmediateRetry) Decide(a Abort, randN func(uint64) uint64) Decision {
	if a.Disabled {
		return Decision{Fallback: true}
	}
	if a.Attempt > 0 && p.Jitter > 0 {
		return Decision{Delay: randN(p.Jitter)}
	}
	return Decision{}
}

// ExponentialBackoff waits a randomized, exponentially growing delay before
// each retry: attempt k (k >= 1) draws uniformly from [0, min(Base<<(k-1),
// Max)). It falls back when the hardware reports HTM disabled.
type ExponentialBackoff struct {
	// Base is the bound of the first backoff window, in cycles.
	Base uint64
	// Max caps the window; zero means 64*Base.
	Max uint64
}

// Decide implements RetryPolicy.
func (p ExponentialBackoff) Decide(a Abort, randN func(uint64) uint64) Decision {
	if a.Disabled {
		return Decision{Fallback: true}
	}
	if a.Attempt == 0 || p.Base == 0 {
		return Decision{}
	}
	max := p.Max
	if max == 0 {
		max = p.Base << 6
	}
	w := p.Base
	// Grow the window without overflowing on large attempt counts.
	for i := 1; i < a.Attempt && w < max; i++ {
		w <<= 1
	}
	if w > max {
		w = max
	}
	return Decision{Delay: randN(w)}
}

// AbortBudget is Brown's HTM template: at most Budget transactional
// attempts, then the software fallback unconditionally. Until the budget is
// spent, Inner paces the retries (nil means ImmediateRetry{} with no
// jitter). HTM-disabled aborts spend the whole budget at once — retrying a
// disabled _xbegin cannot succeed.
type AbortBudget struct {
	// Budget is the number of transactional attempts allowed; zero or
	// negative means fall back immediately (a pure software-path policy).
	Budget int
	// Inner paces retries within the budget.
	Inner RetryPolicy
}

// Decide implements RetryPolicy.
func (p AbortBudget) Decide(a Abort, randN func(uint64) uint64) Decision {
	if a.Attempt >= p.Budget || a.Disabled {
		return Decision{Fallback: true}
	}
	if p.Inner != nil {
		d := p.Inner.Decide(a, randN)
		d.Fallback = false // the budget, not the inner policy, ends the fast path
		return d
	}
	return Decision{}
}

// DelayedCAS is the paper's §4.1 software baseline as a policy: never use
// HTM; wait Delay cycles (to let a winner's invalidation arrive, the same
// role as TxCAS's intra-transaction delay) and resolve with a plain CAS.
// Jitter randomizes the wait by up to that many extra cycles.
type DelayedCAS struct {
	Delay  uint64
	Jitter uint64
}

// Decide implements RetryPolicy.
func (p DelayedCAS) Decide(a Abort, randN func(uint64) uint64) Decision {
	d := p.Delay
	if p.Jitter > 0 {
		d += randN(p.Jitter)
	}
	return Decision{Fallback: true, Delay: d}
}
