package machine

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

// Tests for the fault injector (inject.go): HTM disablement at _xbegin,
// the mid-run disable latch, probabilistic spurious aborts, cross-socket
// jitter, and — the property everything else rests on — seeded replay:
// equal (Config, program) pairs produce identical fault schedules.

func faulty(plan FaultPlan) Config {
	cfg := small()
	cfg.Faults = plan
	return cfg
}

func TestDisabledHTMAbortsAtXbegin(t *testing.T) {
	m := New(faulty(FaultPlan{DisableHTM: true}))
	a := m.AllocLine(8, 0)
	var ok bool
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			tx.Write(a, 99)
		})
	})
	m.Run()
	if ok {
		t.Fatal("transaction committed with HTM disabled")
	}
	if !st.Disabled || st.Conflict || st.Explicit || st.Capacity {
		t.Fatalf("abort status = %+v, want Disabled only", st)
	}
	if m.Peek(a) != 0 {
		t.Fatalf("refused transaction leaked a write: a=%d", m.Peek(a))
	}
	if m.Stats.TxStarted != 1 || m.Stats.TxAborts != 1 || m.Stats.TxAbortDisabled != 1 {
		t.Fatalf("stats = started %d aborts %d disabled %d, want 1/1/1",
			m.Stats.TxStarted, m.Stats.TxAborts, m.Stats.TxAbortDisabled)
	}
	if m.Stats.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", m.Stats.FaultsInjected)
	}
	if !m.HTMDisabled() {
		t.Fatal("HTMDisabled() = false with DisableHTM set")
	}
}

func TestFallbackCASCountsAndKeepsSemantics(t *testing.T) {
	m := New(faulty(FaultPlan{DisableHTM: true}))
	a := m.AllocLine(8, 0)
	var first, second bool
	m.Go(0, func(p *Proc) {
		first = p.FallbackCAS(a, 0, 7)
		second = p.FallbackCAS(a, 0, 8) // stale expected value must fail
	})
	m.Run()
	if !first || second {
		t.Fatalf("FallbackCAS results = %v,%v, want true,false", first, second)
	}
	if m.Peek(a) != 7 {
		t.Fatalf("a = %d, want 7", m.Peek(a))
	}
	if m.Stats.CASFallbacks != 2 {
		t.Fatalf("CASFallbacks = %d, want 2", m.Stats.CASFallbacks)
	}
}

// DisableHTMAfter latches: transactions before the trip point run as
// usual, every one after aborts at _xbegin, permanently.
func TestDisableHTMAfterLatches(t *testing.T) {
	const trip = 3
	m := New(faulty(FaultPlan{DisableHTMAfter: trip}))
	a := m.AllocLine(8, 0)
	var commits, disabled int
	m.Go(0, func(p *Proc) {
		for i := 0; i < 6; i++ {
			ok, st := p.Transaction(func(tx *Tx) {
				tx.Write(a, tx.Read(a)+1)
			})
			switch {
			case ok:
				commits++
			case st.Disabled:
				disabled++
			}
		}
	})
	m.Run()
	if commits != trip || disabled != 6-trip {
		t.Fatalf("commits=%d disabled=%d, want %d and %d", commits, disabled, trip, 6-trip)
	}
	if m.Peek(a) != trip {
		t.Fatalf("a = %d, want %d", m.Peek(a), trip)
	}
	if !m.HTMDisabled() {
		t.Fatal("HTMDisabled() = false after the trip point")
	}
}

// With SpuriousAbortProb=1 every transaction draws an injected abort; a
// long-running transaction is killed mid-flight with no flags set (the
// interrupt signature) and its writes discarded.
func TestSpuriousAbortProbKillsTransactions(t *testing.T) {
	m := New(faulty(FaultPlan{SpuriousAbortProb: 1}))
	a := m.AllocLine(8, 0)
	var ok bool
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			tx.Write(a, 1)
			tx.Delay(1000) // longer than the injector's 5..155-cycle window
		})
	})
	m.Run()
	if ok {
		t.Fatal("transaction committed under p=1 spurious aborts")
	}
	if st.Conflict || st.Explicit || st.Capacity || st.Disabled {
		t.Fatalf("abort status = %+v, want the flagless spurious signature", st)
	}
	if m.Peek(a) != 0 {
		t.Fatalf("aborted write leaked: a=%d", m.Peek(a))
	}
	if m.Stats.TxAbortSpurious == 0 || m.Stats.FaultsInjected == 0 {
		t.Fatalf("spurious=%d injected=%d, want both nonzero",
			m.Stats.TxAbortSpurious, m.Stats.FaultsInjected)
	}
}

// CapacityLines overrides the config's speculative bound.
func TestCapacityLinesOverride(t *testing.T) {
	m := New(faulty(FaultPlan{CapacityLines: 2}))
	lines := []Addr{m.AllocLine(8, 0), m.AllocLine(8, 0), m.AllocLine(8, 0)}
	var ok bool
	var st AbortStatus
	m.Go(0, func(p *Proc) {
		ok, st = p.Transaction(func(tx *Tx) {
			for _, a := range lines {
				tx.Write(a, 1)
			}
		})
	})
	m.Run()
	if ok || !st.Capacity {
		t.Fatalf("3-line tx under a 2-line injected cap: ok=%v st=%+v, want capacity abort", ok, st)
	}
}

// crossSocketTraffic bounces a line homed on socket 1 between a writer on
// socket 0 and a writer on socket 1.
func crossSocketTraffic(m *Machine) {
	a := m.Alloc(8, 1)
	remote := m.Config().CoresPerSocket // first core of socket 1
	for _, core := range []int{0, remote} {
		core := core
		m.Go(core, func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.CAS(a, p.Read(a), uint64(core+1))
			}
		})
	}
	m.Run()
}

func TestCrossSocketJitter(t *testing.T) {
	m := New(faulty(FaultPlan{CrossSocketJitter: 40}))
	crossSocketTraffic(m)
	if m.Stats.JitteredHops == 0 || m.Stats.JitterCycles == 0 {
		t.Fatalf("jitter never fired: hops=%d cycles=%d", m.Stats.JitteredHops, m.Stats.JitterCycles)
	}

	quiet := New(small())
	crossSocketTraffic(quiet)
	if quiet.Stats.JitteredHops != 0 {
		t.Fatalf("jitter fired with an empty plan: hops=%d", quiet.Stats.JitteredHops)
	}
}

// memRecorder captures the full telemetry stream — counters and timeline
// events in arrival order — for replay comparison.
type memRecorder struct {
	mu  sync.Mutex
	log []memEvent
}

type memEvent struct {
	kind string
	a    uint64
	b    uint64
	c    uint64
}

func (r *memRecorder) append(e memEvent) {
	r.mu.Lock()
	r.log = append(r.log, e)
	r.mu.Unlock()
}

func (r *memRecorder) Inc(c obs.Counter)              { r.append(memEvent{"inc", uint64(c), 0, 0}) }
func (r *memRecorder) Add(c obs.Counter, d uint64)    { r.append(memEvent{"add", uint64(c), d, 0}) }
func (r *memRecorder) Observe(s obs.Series, v uint64) { r.append(memEvent{"obs", uint64(s), v, 0}) }
func (r *memRecorder) Event(k obs.EventKind, lane int32, arg uint64) {
	r.append(memEvent{"ev", uint64(k), uint64(int64(lane)), arg})
}

// faultReplayRun executes one seeded faulty workload — contended
// transactions across sockets under spurious aborts, a mid-run HTM
// disablement, and jitter — and returns the stats and full event log.
func faultReplayRun(t *testing.T) (Stats, []memEvent) {
	t.Helper()
	cfg := faulty(FaultPlan{
		SpuriousAbortProb: 0.3,
		DisableHTMAfter:   200,
		CrossSocketJitter: 25,
		Seed:              42,
	})
	m := New(cfg)
	rec := &memRecorder{}
	m.SetRecorder(rec)
	a := m.Alloc(8, 1)
	per := m.Config().CoresPerSocket
	for _, core := range []int{0, 1, per, per + 1} {
		core := core
		m.Go(core, func(p *Proc) {
			for i := 0; i < 40; i++ {
				committed := false
				for try := 0; try < 4 && !committed; try++ {
					committed, _ = p.Transaction(func(tx *Tx) {
						tx.Write(a, tx.Read(a)+1)
						tx.Delay(20)
					})
				}
				if !committed {
					for {
						old := p.Read(a)
						if p.FallbackCAS(a, old, old+1) {
							break
						}
						p.Delay(10)
					}
				}
			}
		})
	}
	m.Run()
	if !m.HTMDisabled() {
		t.Fatal("workload never reached the DisableHTMAfter trip point")
	}
	if m.Stats.FaultsInjected == 0 || m.Stats.CASFallbacks == 0 {
		t.Fatalf("workload not faulty enough: injected=%d fallbacks=%d",
			m.Stats.FaultsInjected, m.Stats.CASFallbacks)
	}
	if m.Peek(a) != 4*40 {
		t.Fatalf("lost updates under faults: a=%d, want %d", m.Peek(a), 4*40)
	}
	return m.Stats, rec.log
}

// The ISSUE's determinism gate: a seeded injector replays an identical
// abort/event sequence — not just equal totals — across two runs.
func TestSeededFaultReplayIsIdentical(t *testing.T) {
	stats1, log1 := faultReplayRun(t)
	stats2, log2 := faultReplayRun(t)
	if stats1 != stats2 {
		t.Fatalf("stats diverged across identical runs:\n  %+v\n  %+v", stats1, stats2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("event counts diverged: %d vs %d", len(log1), len(log2))
	}
	if !reflect.DeepEqual(log1, log2) {
		for i := range log1 {
			if log1[i] != log2[i] {
				t.Fatalf("event %d diverged: %+v vs %+v", i, log1[i], log2[i])
			}
		}
	}
	// The log must actually contain injected-fault events.
	n := 0
	for _, e := range log1 {
		if e.kind == "ev" && obs.EventKind(e.a) == obs.EvFaultInject {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no EvFaultInject events in the replayed log")
	}
}

// A different injector seed changes the fault schedule while thread timing
// stays legal: the run still completes and still injects.
func TestFaultSeedVariesSchedule(t *testing.T) {
	base := faulty(FaultPlan{SpuriousAbortProb: 0.5, Seed: 1})
	other := base
	other.Faults.Seed = 2
	counts := make([]uint64, 0, 2)
	for _, cfg := range []Config{base, other} {
		m := New(cfg)
		a := m.AllocLine(8, 0)
		m.Go(0, func(p *Proc) {
			for i := 0; i < 60; i++ {
				p.Transaction(func(tx *Tx) {
					tx.Write(a, tx.Read(a)+1)
					tx.Delay(200)
				})
			}
		})
		m.Run()
		if m.Stats.FaultsInjected == 0 {
			t.Fatal("seeded run injected nothing at p=0.5")
		}
		counts = append(counts, m.Stats.FaultsInjected)
	}
	// Not asserting inequality of totals (they could coincide); the
	// schedules differ, which the distinct streams make overwhelmingly
	// likely to show up in the totals. Log if they coincide for diagnosis.
	if counts[0] == counts[1] {
		t.Logf("note: both seeds injected %d faults (schedules may still differ)", counts[0])
	}
}
