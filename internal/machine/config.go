package machine

// Config holds the timing and topology parameters of a simulated machine.
//
// Latencies are in cycles. The defaults approximate a dual-socket Intel
// server in the spirit of the paper's evaluation platform: ~20-cycle
// on-chip message hops (the paper cites 15-30 cycles), a 5x penalty for
// crossing the socket interconnect, and 2.5 cycles per nanosecond (2.5 GHz).
type Config struct {
	// Sockets is the number of NUMA nodes.
	Sockets int
	// CoresPerSocket is the number of hardware threads per socket, each
	// modeled with a private cache.
	CoresPerSocket int

	// HopCycles is the latency of one coherence message between two
	// endpoints on the same socket.
	HopCycles uint64
	// NUMAFactor multiplies HopCycles for cross-socket messages.
	NUMAFactor uint64
	// DirOccupancy is the directory's per-message processing time; it
	// serializes back-to-back handling of requests.
	DirOccupancy uint64
	// CacheOccupancy is a cache controller's per-message processing time.
	CacheOccupancy uint64
	// HitCycles is the latency of a load/store that hits in the private
	// cache with sufficient permissions.
	HitCycles uint64
	// RMWHold is how long a core keeps a line locked (stalling incoming
	// coherence requests) while executing an atomic read-modify-write.
	RMWHold uint64
	// AbortCycles is the cost of restoring the checkpoint after an abort.
	AbortCycles uint64
	// CommitCycles is the cost of clearing transactional marks at commit.
	CommitCycles uint64

	// TrippedWriterFix enables the microarchitectural change of paper §3.4.1:
	// a core blocked in _xend with a single pending GetM stalls an incoming
	// Fwd-GetS until the transaction commits, instead of aborting.
	TrippedWriterFix bool

	// SpuriousAbortEvery, if nonzero, aborts roughly every Nth hardware
	// transaction for an implementation-specific reason (modeling
	// interrupts and other non-conflict aborts real HTM suffers, §2).
	// The abort reason carries neither the conflict nor the explicit
	// flag, exercising callers' retry paths. Zero disables injection.
	SpuriousAbortEvery int

	// TxCapacityLines, if nonzero, bounds a transaction's footprint: a
	// transactional access that would grow the combined read/write set
	// beyond this many cache lines aborts, as real HTM does when its
	// speculative state overflows the L1. Zero means unbounded. TxCAS
	// touches one line, so the paper's workloads never hit this; the
	// limit exists for fidelity and for studying larger transactions.
	TxCapacityLines int

	// Faults configures the seeded fault injector (see inject.go): random
	// spurious aborts, a tightened capacity bound, persistent or mid-run
	// HTM disablement, and cross-socket latency jitter. The zero value
	// injects nothing.
	Faults FaultPlan

	// CyclesPerNS converts simulated cycles to reported nanoseconds.
	CyclesPerNS float64

	// Seed perturbs every proc's deterministic random stream, so that
	// repeated experiments sample different (but each fully reproducible)
	// executions.
	Seed uint64
}

// Default returns the baseline configuration used by the reproduction:
// two sockets of 44 hardware threads, matching the paper's dual
// Xeon E5-2699 v4 (22 cores x 2 hyperthreads per socket).
func Default() Config {
	return Config{
		Sockets:          2,
		CoresPerSocket:   44,
		HopCycles:        20,
		NUMAFactor:       5,
		DirOccupancy:     2,
		CacheOccupancy:   1,
		HitCycles:        2,
		RMWHold:          20,
		AbortCycles:      12,
		CommitCycles:     4,
		TrippedWriterFix: false,
		CyclesPerNS:      2.5,
	}
}

// NumCores returns the total number of simulated hardware threads.
func (c Config) NumCores() int { return c.Sockets * c.CoresPerSocket }

// SocketOf returns the socket that core id belongs to.
func (c Config) SocketOf(core int) int { return core / c.CoresPerSocket }

// NSPerOp converts a cycle count to nanoseconds under this configuration.
func (c Config) NSPerOp(cycles float64) float64 { return cycles / c.CyclesPerNS }
