package machine

import "repro/internal/obs"

// This file implements the machine's fault injector: a seeded,
// deterministic source of the HTM failure modes real deployments see but
// the paper's model assumes away. Real RTM aborts for reasons no coherence
// argument predicts (interrupts, ring transitions, power events), loses
// capacity whenever the footprint leaves L1, and — since Intel's microcode
// updates that disable TSX outright — can stop committing forever. The
// injector reproduces all of these on the simulated machine so retry and
// fallback policies (repro/internal/machine/policy) can be tested against
// them, and cross-socket latency jitter so symmetric lockstep cannot hide
// timing-dependent bugs.
//
// Determinism: the injector draws from its own xorshift stream seeded by
// FaultPlan.Seed (derived from Config.Seed when zero) and is consulted
// only from engine context, so a given (Config, program) pair replays an
// identical fault schedule — the property the seeded-replay tests assert.

// FaultPlan configures the fault injector. The zero value injects nothing;
// every field composes with the others and with the legacy deterministic
// knobs (Config.SpuriousAbortEvery, Config.TxCapacityLines).
type FaultPlan struct {
	// Seed perturbs the injector's random stream independently of
	// Config.Seed, so fault schedules can vary while thread timing stays
	// fixed (and vice versa). Zero derives the stream from Config.Seed.
	Seed uint64

	// SpuriousAbortProb aborts each started transaction with this
	// probability, at a random point inside its window, for a reason
	// carrying no conflict/explicit/capacity flag — exactly what an
	// interrupt-induced abort looks like through _xbegin. Values are
	// clamped to [0, 1].
	SpuriousAbortProb float64

	// CapacityLines, if nonzero, overrides Config.TxCapacityLines: the
	// injector's way of shrinking speculative capacity mid-experiment
	// (e.g. modeling a hyperthread sibling halving the L1 share).
	CapacityLines int

	// DisableHTM makes every transaction abort immediately at _xbegin
	// with AbortStatus.Disabled set — the TSX-disabled-by-microcode
	// scenario. Software must complete on its fallback path.
	DisableHTM bool

	// DisableHTMAfter, if nonzero, disables HTM permanently once this
	// many transactions have started: the microcode update lands mid-run
	// and every later transaction aborts at _xbegin.
	DisableHTMAfter uint64

	// CrossSocketJitter adds a uniformly random 0..N-cycle penalty to
	// every cross-socket message hop, modeling interconnect congestion.
	// Intra-socket hops are never jittered.
	CrossSocketJitter uint64
}

// enabled reports whether the plan injects anything at all.
func (f FaultPlan) enabled() bool {
	return f.SpuriousAbortProb > 0 || f.CapacityLines > 0 ||
		f.DisableHTM || f.DisableHTMAfter > 0 || f.CrossSocketJitter > 0
}

// Fault kinds carried in an EvFaultInject event arg (obs.EvFaultInject).
const (
	// FaultSpurious is an injected interrupt-style abort.
	FaultSpurious uint64 = iota + 1
	// FaultDisabled is an _xbegin refused because HTM is disabled.
	FaultDisabled
)

// injector is the per-machine fault state. A nil *injector means the plan
// is empty, keeping the common no-faults path a single nil check.
type injector struct {
	m    *Machine
	plan FaultPlan
	rng  uint64

	txSeen   uint64 // transactions started (for DisableHTMAfter)
	disabled bool   // latched once DisableHTM(After) trips
}

func newInjector(m *Machine, plan FaultPlan) *injector {
	if !plan.enabled() {
		return nil
	}
	if plan.SpuriousAbortProb < 0 {
		plan.SpuriousAbortProb = 0
	}
	if plan.SpuriousAbortProb > 1 {
		plan.SpuriousAbortProb = 1
	}
	seed := plan.Seed
	if seed == 0 {
		seed = m.cfg.Seed ^ 0xA5A5A5A55A5A5A5A
	}
	// Same scrambling as Proc rngs, with a distinct salt so the injector
	// never mirrors a thread's stream.
	seed = (seed + 1) * 0xBF58476D1CE4E5B9
	if seed == 0 {
		seed = 1
	}
	return &injector{
		m:        m,
		plan:     plan,
		rng:      seed,
		disabled: plan.DisableHTM,
	}
}

// randN returns a deterministic pseudo-random number in [0, n). Engine
// context only.
func (j *injector) randN(n uint64) uint64 {
	x := j.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	j.rng = x
	return (x * 0x2545F4914F6CDD1D) % n
}

// htmDisabled reports whether _xbegin must refuse to start a transaction.
// It latches the DisableHTMAfter trip point so disablement is persistent,
// as a microcode update would be.
func (j *injector) htmDisabled() bool {
	if j.disabled {
		return true
	}
	if j.plan.DisableHTMAfter > 0 && j.txSeen >= j.plan.DisableHTMAfter {
		j.disabled = true
	}
	return j.disabled
}

// capacityLines returns the effective speculative-state bound.
func (j *injector) capacityLines() int {
	if j.plan.CapacityLines > 0 {
		return j.plan.CapacityLines
	}
	return j.m.cfg.TxCapacityLines
}

// onTxBegin is called from beginTx after a transaction started; it draws
// the spurious-abort decision and, when it fires, schedules the abort at a
// random point inside the transaction's window.
func (j *injector) onTxBegin(c *cache) {
	j.txSeen++
	p := j.plan.SpuriousAbortProb
	if p <= 0 {
		return
	}
	// 53-bit draw against the probability; deterministic and unbiased
	// enough for an injector.
	const den = 1 << 53
	if float64(j.randN(den)) >= p*den {
		return
	}
	id := c.txn.id
	delay := 5 + j.randN(150)
	j.noteInjected(FaultSpurious, c.core)
	j.m.eng.Schedule(delay, func() {
		if t := c.txn; t != nil && t.id == id {
			j.m.Stats.TxAbortSpurious++
			j.m.obsInc(obs.TxAbortsSpurious)
			c.abortTx(AbortStatus{Nested: t.depth >= 2}, false, -1, 0)
		}
	})
}

// hopJitter returns the extra latency for one message hop between the two
// sockets (zero for intra-socket hops or when jitter is off).
func (j *injector) hopJitter(socketA, socketB int) uint64 {
	if socketA == socketB || j.plan.CrossSocketJitter == 0 {
		return 0
	}
	d := j.randN(j.plan.CrossSocketJitter + 1)
	if d > 0 {
		j.m.Stats.JitteredHops++
		j.m.Stats.JitterCycles += d
		j.m.obsInc(obs.FaultHopJitter)
	}
	return d
}

// noteInjected records one injected fault in the counters and on the
// timeline (EvFaultInject, arg = fault kind).
func (j *injector) noteInjected(kind uint64, core int) {
	j.m.Stats.FaultsInjected++
	j.m.obsInc(obs.FaultsInjected)
	j.m.obsEvent(obs.EvFaultInject, core, kind)
}

// HTMDisabled reports whether the injector has (or will have, from now on)
// every transaction abort at _xbegin. Harnesses use it to label runs; the
// per-abort signal software sees is AbortStatus.Disabled.
func (m *Machine) HTMDisabled() bool {
	return m.inj != nil && m.inj.htmDisabled()
}
