package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/queue/registry"
)

// ShardedThroughput measures the native (wall-clock, not simulated) queue
// library under the mixed workload, sweeping batch size across registry
// entries: the companion experiment to the sharded front-end. Each series
// is one (impl, batch) pair named "<impl>/k=<batch>" ("<impl>" alone for
// the single-op path), so tables and plots line the amortization curves up
// next to each other. Populates Output.Results.
//
// Unlike the figure workloads this runs real goroutines against the
// registry's queues, so its numbers depend on the host: treat them like
// cmd/sbqbench output (which shares the measurement shape), not like the
// simulated figures.
type ShardedThroughput struct {
	// Impls are registry entry names; default compares the best unsharded
	// FAA queue against its sharded composition.
	Impls []string
	// BatchSizes sweeps EnqueueBatch/DequeueBatch sizes; 0 is the
	// single-op path. Default {0, 1, 8, 64}.
	BatchSizes []int
	// Shards pins the front-end's shard count; 0 keeps the entry default
	// (GOMAXPROCS).
	Shards int
}

// Name implements Workload.
func (ShardedThroughput) Name() string { return "sharded" }

func (w ShardedThroughput) run(o Options) Output { return Output{Results: runSharded(w, o)} }

func runSharded(w ShardedThroughput, o Options) []Result {
	o = o.withDefaults()
	impls := w.Impls
	if len(impls) == 0 {
		impls = []string{"FAA-Queue", "Sharded-FAA"}
	}
	batches := w.BatchSizes
	if len(batches) == 0 {
		batches = []int{0, 1, 8, 64}
	}
	var out []Result
	for _, impl := range impls {
		for _, k := range batches {
			series := impl
			if k > 0 {
				series = fmt.Sprintf("%s/k=%d", impl, k)
			}
			for _, n := range o.ThreadCounts {
				var ns []float64
				for rep := 0; rep < o.Reps; rep++ {
					ns = append(ns, nativeMixedNS(impl, n, o.OpsPerThread, k, w.Shards))
				}
				s := stats.Summarize(ns)
				out = append(out, Result{Series: series, Threads: n, NSPerOp: s.Mean, StdNS: s.Stddev,
					Mops: 1e3 * float64(n) / s.Mean})
				o.progress("sharded %s %d threads: %.0f ns/op\n", series, n, s.Mean)
			}
		}
	}
	return out
}

// nativeMixedNS runs n producers against n consumers on the named registry
// entry and returns wall-clock ns per element normalized to one thread
// (the same normalization cmd/sbqbench applies, so the two agree). batch 0
// uses plain Enqueue/Dequeue; positive batch drives the batch surface.
func nativeMixedNS(impl string, n, ops, batch, shards int) float64 {
	inst, err := registry.Build(impl, registry.Config{
		Producers: n, Shards: shards, BatchHint: batch,
	})
	if err != nil {
		panic("harness: " + err.Error()) // impl names come from the closed caller set
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := inst.ProducerView(i)
			if batch > 0 {
				vs := make([]uint64, batch)
				for k := 0; k < ops; k += len(vs) {
					if rem := ops - k; rem < len(vs) {
						vs = vs[:rem]
					}
					for j := range vs {
						vs[j] = uint64(i+1)<<40 | uint64(k+j+1)
					}
					q.EnqueueBatch(vs)
				}
			} else {
				for k := 0; k < ops; k++ {
					q.Enqueue(uint64(i+1)<<40 | uint64(k+1))
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := inst.ConsumerView(i)
			got := 0
			if batch > 0 {
				dst := make([]uint64, batch)
				for got < ops {
					// Cap the request at the remaining quota: an overshoot
					// would starve another consumer of its share and spin
					// the run forever.
					want := dst
					if rem := ops - got; rem < len(dst) {
						want = dst[:rem]
					}
					if m := q.DequeueBatch(want); m > 0 {
						got += m
					} else {
						runtime.Gosched()
					}
				}
			} else {
				for got < ops {
					if _, ok := q.Dequeue(); ok {
						got++
					} else {
						runtime.Gosched()
					}
				}
			}
		}()
	}
	wg.Wait()
	total := 2 * n * ops
	return float64(time.Since(start).Nanoseconds()) * float64(2*n) / float64(total)
}
