package harness

import (
	"strings"
	"testing"
)

// TestShardedThroughputShape checks the native workload's output grid:
// one series per (impl, batch) with the documented naming, one result per
// thread count, positive measurements.
func TestShardedThroughputShape(t *testing.T) {
	w := ShardedThroughput{
		Impls:      []string{"FAA-Queue", "Sharded-FAA"},
		BatchSizes: []int{0, 8},
		Shards:     2,
	}
	o := Options{OpsPerThread: 200, Reps: 1, ThreadCounts: []int{1, 2}}
	out := Run(w, o)
	if got, want := len(out.Results), 2*2*2; got != want {
		t.Fatalf("got %d results, want %d", got, want)
	}
	series := map[string]int{}
	for _, r := range out.Results {
		series[r.Series]++
		if r.NSPerOp <= 0 || r.Mops <= 0 {
			t.Errorf("%s @ %d threads: non-positive measurement %+v", r.Series, r.Threads, r)
		}
	}
	for _, want := range []string{"FAA-Queue", "FAA-Queue/k=8", "Sharded-FAA", "Sharded-FAA/k=8"} {
		if series[want] != 2 {
			t.Errorf("series %q has %d points, want 2 (have %v)", want, series[want], series)
		}
	}
	if w.Name() != "sharded" {
		t.Errorf("Name() = %q", w.Name())
	}
}

// TestShardedThroughputDefaults exercises the zero-value workload with a
// reduced Options load, covering the default impl and batch lists.
func TestShardedThroughputDefaults(t *testing.T) {
	o := Options{OpsPerThread: 50, Reps: 1, ThreadCounts: []int{1}}
	out := Run(ShardedThroughput{}, o)
	// 2 default impls x 4 default batch sizes x 1 thread count.
	if got, want := len(out.Results), 8; got != want {
		t.Fatalf("got %d results, want %d", got, want)
	}
	sawBatchSeries := false
	for _, r := range out.Results {
		if strings.Contains(r.Series, "/k=") {
			sawBatchSeries = true
		}
	}
	if !sawBatchSeries {
		t.Error("no batch-suffixed series in default sweep")
	}
}
