package harness

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// Conformance: every deprecated Run* wrapper must produce output
// byte-for-byte equal to the corresponding field of Run. The simulator is
// deterministic for equal (Options, workload), so running each experiment
// twice and comparing with reflect.DeepEqual asserts both the delegation
// and the determinism it relies on.

func tiny() Options {
	return Options{OpsPerThread: 40, Reps: 1, ThreadCounts: []int{2, 8}}
}

func TestDeprecatedWrappersConform(t *testing.T) {
	o := tiny()
	vs := []Variant{SBQHTM, WFQueue}
	cases := []struct {
		name    string
		wrapper func() any
		direct  func() any
	}{
		{"RunFig1",
			func() any { return RunFig1(o) },
			func() any { return Run(Fig1{}, o).Results }},
		{"RunEnqueueOnly",
			func() any { return RunEnqueueOnly(vs, o) },
			func() any { return Run(EnqueueOnly{Variants: vs}, o).Results }},
		{"RunDequeueOnly",
			func() any { return RunDequeueOnly(vs, o) },
			func() any { return Run(DequeueOnly{Variants: vs}, o).Results }},
		{"RunMixed",
			func() any { return RunMixed(vs, o) },
			func() any { return Run(Mixed{Variants: vs}, o).Results }},
		{"RunDelaySweep",
			func() any { return RunDelaySweep([]float64{0, 270}, []int{8}, o) },
			func() any {
				return Run(DelaySweep{DelaysNS: []float64{0, 270}, ThreadCounts: []int{8}}, o).Results
			}},
		{"RunBasketSweep",
			func() any { return RunBasketSweep([]int{8, 44}, 8, o) },
			func() any { return Run(BasketSweep{BasketSizes: []int{8, 44}, Threads: 8}, o).Results }},
		{"RunFixAblation",
			func() any { return RunFixAblation(o) },
			func() any { return Run(FixAblation{}, o).Fix }},
		{"RunTelemetry",
			func() any { return RunTelemetry(vs, o) },
			func() any { return Run(Telemetry{Variants: vs}, o).Telemetry }},
		{"RunTrace",
			func() any { return RunTrace(SBQHTM, o) },
			func() any { return Run(TraceQueue{Variant: SBQHTM}, o).Trace }},
		{"RunTraceTxCAS",
			func() any { return RunTraceTxCAS(o) },
			func() any { return Run(TraceTxCAS{}, o).Trace }},
		{"RunFaultSweep",
			func() any {
				return RunFaultSweep(FaultSweep{Threads: 2, AbortProbs: []float64{0, 0.2}}, o)
			},
			func() any {
				return Run(FaultSweep{Threads: 2, AbortProbs: []float64{0, 0.2}}, o).Faults
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, d := c.wrapper(), c.direct()
			if !reflect.DeepEqual(w, d) {
				t.Errorf("%s diverged from Run:\nwrapper: %+v\ndirect:  %+v", c.name, w, d)
			}
		})
	}
}

// The fault sweep must be well-formed (one row per policy × scenario, in
// order, baseline slowdown 1.0) and its degradation bounded: even with HTM
// disabled outright, fallback-capable policies stay within a small constant
// factor of their fault-free baseline — the sweep's whole point is that the
// system degrades gracefully instead of livelocking.
func TestFaultSweepShape(t *testing.T) {
	w := FaultSweep{Threads: 4, AbortProbs: []float64{0, 0.5}}
	res := RunFaultSweep(w, tiny())

	policies := DefaultPolicies()
	scenariosPer := len(w.AbortProbs) + 1 // + the disabled endpoint
	if len(res) != len(policies)*scenariosPer {
		t.Fatalf("got %d rows, want %d policies x %d scenarios", len(res), len(policies), scenariosPer)
	}
	for i, r := range res {
		pol := policies[i/scenariosPer]
		if r.Policy != pol.Name {
			t.Fatalf("row %d policy %q, want %q (rows out of order)", i, r.Policy, pol.Name)
		}
		if r.NSPerOp <= 0 || r.Mops <= 0 {
			t.Errorf("%s/%s: nonpositive measurement %+v", r.Policy, r.Scenario, r)
		}
		switch i % scenariosPer {
		case 0: // fault-free baseline
			if r.Slowdown != 1 {
				t.Errorf("%s baseline slowdown = %.2f, want 1", r.Policy, r.Slowdown)
			}
			if r.FaultsInjected != 0 {
				t.Errorf("%s baseline injected %d faults", r.Policy, r.FaultsInjected)
			}
		case 1: // p=0.50
			if r.AbortProb != 0.5 || r.Disabled {
				t.Errorf("%s row %d mislabeled: %+v", r.Policy, i, r)
			}
			// delayed-cas never speculates, so nothing to inject into.
			if r.Policy != "delayed-cas" && r.FaultsInjected == 0 {
				t.Errorf("%s p=0.50: no faults injected", r.Policy)
			}
		case 2: // disabled endpoint
			if !r.Disabled {
				t.Errorf("%s row %d should be the disabled endpoint: %+v", r.Policy, i, r)
			}
			if r.Policy != "delayed-cas" && r.Fallbacks == 0 {
				t.Errorf("%s disabled: appends resolved without fallbacks?", r.Policy)
			}
			// Refused _xbegins still count as started-then-aborted, so the
			// abort rate pins at 1 for HTM-attempting policies; delayed-cas
			// never speculates and reports 0.
			want := 1.0
			if r.Policy == "delayed-cas" {
				want = 0
			}
			if r.AbortRate != want {
				t.Errorf("%s disabled: abort rate %.2f, want %.0f", r.Policy, r.AbortRate, want)
			}
			// The graceful-degradation gate: disabled HTM must not cost more
			// than a small constant factor over the fault-free baseline.
			if r.Slowdown > 8 {
				t.Errorf("%s disabled slowdown %.2fx exceeds bound 8x", r.Policy, r.Slowdown)
			}
		}
	}
}

// Options.Faults composes with the figure workloads: any experiment runs
// under a fault plan, and a disabled-HTM plan forces the TxCAS variants
// onto the fallback path without changing the result shape.
func TestFigureWorkloadsComposeWithFaults(t *testing.T) {
	o := tiny()
	o.Faults = machine.FaultPlan{DisableHTM: true}
	res := Run(EnqueueOnly{Variants: []Variant{SBQHTM, SBQCAS}}, o).Results
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for _, r := range res {
		if r.NSPerOp <= 0 {
			t.Errorf("nonpositive latency under faults: %+v", r)
		}
	}
}
