package harness

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
)

// TestRunOptionComposition is the smoke test for Run's option composition
// across tracks: one Options value carrying a fault plan is handed to both
// a simulated workload and the native ShardedThroughput workload.
//
//   - On the simulated track Options.Faults must reach every machine the
//     workload builds: the seeded plan below injects spurious aborts, so
//     the machine-level fault counters must come back nonzero.
//   - ShardedThroughput runs real goroutines against the native registry
//     queues — there is no simulated machine to inject faults into, so the
//     plan must compose harmlessly: same Options value, well-formed
//     throughput output, nothing to panic on.
func TestRunOptionComposition(t *testing.T) {
	o := Options{
		OpsPerThread: 60,
		Reps:         1,
		ThreadCounts: []int{2},
		Faults: machine.FaultPlan{
			SpuriousAbortProb: 0.5,
			Seed:              7,
		},
	}

	// Simulated side: the fault plan must be live.
	tel := Run(Telemetry{Variants: []Variant{SBQHTM}}, o)
	if len(tel.Telemetry) != 1 {
		t.Fatalf("Telemetry returned %d snapshots, want 1", len(tel.Telemetry))
	}
	injected := tel.Telemetry[0].Machine.Counter(obs.FaultsInjected)
	if injected == 0 {
		t.Fatalf("Options.Faults did not reach the simulated machine: faults_injected = 0\nmachine snapshot:\n%s",
			tel.Telemetry[0].Machine.String())
	}

	// Native side: the same Options must produce a well-formed grid —
	// every (impl, batch, threads) cell present, positive latency and
	// throughput, series named after the impl.
	w := ShardedThroughput{
		Impls:      []string{"FAA-Queue", "Sharded-FAA"},
		BatchSizes: []int{0, 8},
		Shards:     2,
	}
	out := Run(w, o)
	wantCells := len(w.Impls) * len(w.BatchSizes) * len(o.ThreadCounts)
	if len(out.Results) != wantCells {
		t.Fatalf("ShardedThroughput returned %d results, want %d", len(out.Results), wantCells)
	}
	seen := map[string]bool{}
	for _, r := range out.Results {
		if r.NSPerOp <= 0 || r.Mops <= 0 {
			t.Errorf("cell %s/%d threads: NSPerOp=%v Mops=%v, want positive",
				r.Series, r.Threads, r.NSPerOp, r.Mops)
		}
		if r.Threads != 2 {
			t.Errorf("cell %s: threads = %d, want 2", r.Series, r.Threads)
		}
		seen[r.Series] = true
	}
	for _, want := range []string{"FAA-Queue", "FAA-Queue/k=8", "Sharded-FAA", "Sharded-FAA/k=8"} {
		if !seen[want] {
			t.Errorf("missing series %q in output (have %v)", want, seen)
		}
	}
}
