package harness

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestRunTraceSBQ records a small mixed SBQ-HTM run and checks the trace
// carries both layers (queue ops, machine HTM/coherence), survives the
// Chrome round trip, and analyzes without error.
func TestRunTraceSBQ(t *testing.T) {
	tr := RunTrace(SBQHTM, Options{OpsPerThread: 60, ThreadCounts: []int{4}})
	if len(tr.Events) == 0 {
		t.Fatal("no events recorded")
	}
	if tr.Clock != "sim-ns" {
		t.Fatalf("clock = %q", tr.Clock)
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range tr.Events {
		kinds[e.Kind]++
	}
	for _, k := range []obs.EventKind{
		obs.EvEnqStart, obs.EvEnqEnd, obs.EvDeqStart, obs.EvDeqEnd,
		obs.EvTxBegin, obs.EvTxAbort, obs.EvBasketOpen, obs.EvBasketClose,
		obs.EvCohGetM,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events", k)
		}
	}
	if got, want := kinds[obs.EvEnqStart], 4*60; got != want {
		t.Errorf("enq_start = %d, want %d", got, want)
	}
	if tr.MetaInt("cores_per_socket", 0) <= 0 || len(tr.LaneCores()) != 8 {
		t.Errorf("meta incomplete: %v", tr.Meta)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d != %d", len(back.Events), len(tr.Events))
	}

	a := trace.Analyze(back, trace.AnalyzeOptions{})
	if a.Enq.Count == 0 || a.Baskets.Opened == 0 {
		t.Fatalf("analysis empty: enq=%d baskets=%d", a.Enq.Count, a.Baskets.Opened)
	}
	if a.Format() == "" {
		t.Fatal("empty report")
	}
}

// TestRunTraceTxCASChains records the §3.4.1 cross-socket TxCAS regime
// and checks the analyzer reconstructs a tripped-writer chain-length
// distribution from it — the acceptance bar for the tracing pipeline.
func TestRunTraceTxCASChains(t *testing.T) {
	tr := RunTraceTxCAS(Options{OpsPerThread: 80, ThreadCounts: []int{4}})
	a := trace.Analyze(tr, trace.AnalyzeOptions{})
	if a.Chains.TrippedAborts == 0 {
		t.Fatal("no tripped-writer aborts in the cross-socket TxCAS regime")
	}
	if a.Chains.Chains == 0 || len(a.Chains.Dist) == 0 {
		t.Fatalf("no chains reconstructed: %+v", a.Chains)
	}
	total := 0
	for length, n := range a.Chains.Dist {
		if length <= 0 || n <= 0 {
			t.Fatalf("bad distribution entry %d:%d", length, n)
		}
		total += length * n
	}
	if total != a.Chains.TrippedAborts {
		t.Fatalf("distribution accounts for %d of %d tripped aborts", total, a.Chains.TrippedAborts)
	}
}
