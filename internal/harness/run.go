package harness

import "repro/internal/trace"

// This file is the harness's single entry point. Experiments used to be
// eight separate Run* functions with diverging signatures; they are now
// typed Workload values executed through Run, so call sites compose the
// what (the workload) with the how much (Options) uniformly:
//
//	out := harness.Run(harness.EnqueueOnly{Variants: harness.AllVariants},
//		harness.Options{OpsPerThread: 200})
//	harness.WriteTable(os.Stdout, out.Results, "ns")
//
// The legacy Run* functions survive as thin deprecated wrappers that
// delegate here, so their outputs are byte-for-byte those of Run (the
// conformance tests in run_test.go assert exactly that).

// Workload is one experiment the harness can run: a figure or ablation of
// the paper, a telemetry/trace capture, or the fault sweep. The set is
// closed (run is unexported); each workload documents which Output fields
// it populates.
type Workload interface {
	// Name returns the workload's short CLI name (cmd/sbqsim's -fig).
	Name() string

	run(o Options) Output
}

// Output is the union result of Run. Every workload fills Results or one
// of the specialized fields; unused fields are zero.
type Output struct {
	// Results holds measured points for the figure workloads (Fig1,
	// EnqueueOnly, DequeueOnly, Mixed, DelaySweep, BasketSweep).
	Results []Result
	// Fix holds the tripped-writer ablation's rows (FixAblation).
	Fix []FixResult
	// Telemetry holds per-variant counter snapshots (Telemetry).
	Telemetry []TelemetrySnapshot
	// Trace holds the drained flight recorder (TraceQueue, TraceTxCAS).
	Trace *trace.Trace
	// Faults holds the abort-rate vs throughput curves (FaultSweep).
	Faults []FaultResult
}

// Run executes one workload under the given options. It is the only entry
// point; everything else in this package either builds inputs for it or
// formats its Output.
func Run(w Workload, o Options) Output { return w.run(o) }

// Fig1 measures per-operation latency of a contended FAA and a contended
// TxCAS as concurrency grows (paper Figure 1). Populates Output.Results.
type Fig1 struct{}

// Name implements Workload.
func (Fig1) Name() string { return "fig1" }

func (Fig1) run(o Options) Output { return Output{Results: runFig1(o)} }

// EnqueueOnly measures enqueue latency and aggregate throughput while
// producers fill an initially empty queue (paper Figure 5). Populates
// Output.Results.
type EnqueueOnly struct {
	Variants []Variant
}

// Name implements Workload.
func (EnqueueOnly) Name() string { return "enq" }

func (w EnqueueOnly) run(o Options) Output { return Output{Results: runEnqueueOnly(w.Variants, o)} }

// DequeueOnly measures dequeue latency on a queue pre-filled by concurrent
// producers (paper Figure 6). Populates Output.Results.
type DequeueOnly struct {
	Variants []Variant
}

// Name implements Workload.
func (DequeueOnly) Name() string { return "deq" }

func (w DequeueOnly) run(o Options) Output { return Output{Results: runDequeueOnly(w.Variants, o)} }

// Mixed measures the normalized duration of the producer/consumer benchmark
// of paper Figure 7 (producers on socket 0, consumers on socket 1).
// Populates Output.Results.
type Mixed struct {
	Variants []Variant
}

// Name implements Workload.
func (Mixed) Name() string { return "mixed" }

func (w Mixed) run(o Options) Output { return Output{Results: runMixed(w.Variants, o)} }

// DelaySweep measures TxCAS latency across intra-transaction delays (paper
// §4.1's tuning). Populates Output.Results.
type DelaySweep struct {
	// DelaysNS are the intra-transaction delays to sweep, in nanoseconds.
	DelaysNS []float64
	// ThreadCounts overrides Options.ThreadCounts for the sweep.
	ThreadCounts []int
}

// Name implements Workload.
func (DelaySweep) Name() string { return "delay" }

func (w DelaySweep) run(o Options) Output {
	return Output{Results: runDelaySweep(w.DelaysNS, w.ThreadCounts, o)}
}

// BasketSweep measures SBQ-HTM enqueue latency across basket sizes at a
// fixed thread count (§5.3.4). Populates Output.Results.
type BasketSweep struct {
	BasketSizes []int
	Threads     int
}

// Name implements Workload.
func (BasketSweep) Name() string { return "basket" }

func (w BasketSweep) run(o Options) Output {
	return Output{Results: runBasketSweep(w.BasketSizes, w.Threads, o)}
}

// FixAblation measures cross-socket TxCAS with and without the §3.4.1
// tripped-writer fix. Populates Output.Fix.
type FixAblation struct{}

// Name implements Workload.
func (FixAblation) Name() string { return "fix" }

func (FixAblation) run(o Options) Output { return Output{Fix: runFixAblation(o)} }

// Telemetry runs the mixed workload per variant with obs recorders at both
// layers (queue and machine). Populates Output.Telemetry.
type Telemetry struct {
	Variants []Variant
}

// Name implements Workload.
func (Telemetry) Name() string { return "telemetry" }

func (w Telemetry) run(o Options) Output { return Output{Telemetry: runTelemetry(w.Variants, o)} }

// TraceQueue runs one variant under the mixed workload with a flight
// recorder attached at both layers. Populates Output.Trace.
type TraceQueue struct {
	Variant Variant
}

// Name implements Workload.
func (TraceQueue) Name() string { return "trace" }

func (w TraceQueue) run(o Options) Output { return Output{Trace: runTrace(w.Variant, o)} }

// TraceTxCAS records the raw-TxCAS cross-socket configuration of the fix
// ablation (§3.4.1), dense in tripped-writer aborts. Populates
// Output.Trace.
type TraceTxCAS struct{}

// Name implements Workload.
func (TraceTxCAS) Name() string { return "trace-txcas" }

func (TraceTxCAS) run(o Options) Output { return Output{Trace: runTraceTxCAS(o)} }

// ---------------------------------------------------------------------------
// Deprecated wrappers. Each delegates to Run so its output is byte-for-byte
// the Output field of the corresponding workload.

// RunFig1 measures per-operation latency of a contended FAA and a contended
// TxCAS as concurrency grows (paper Figure 1).
//
// Deprecated: use Run(Fig1{}, o).Results.
func RunFig1(o Options) []Result { return Run(Fig1{}, o).Results }

// RunEnqueueOnly measures enqueue latency and aggregate throughput while
// producers fill an initially empty queue (paper Figure 5).
//
// Deprecated: use Run(EnqueueOnly{Variants: variants}, o).Results.
func RunEnqueueOnly(variants []Variant, o Options) []Result {
	return Run(EnqueueOnly{Variants: variants}, o).Results
}

// RunDequeueOnly measures dequeue latency on a queue pre-filled by
// concurrent producers (paper Figure 6).
//
// Deprecated: use Run(DequeueOnly{Variants: variants}, o).Results.
func RunDequeueOnly(variants []Variant, o Options) []Result {
	return Run(DequeueOnly{Variants: variants}, o).Results
}

// RunMixed measures the normalized duration of the mixed producer/consumer
// benchmark (paper Figure 7).
//
// Deprecated: use Run(Mixed{Variants: variants}, o).Results.
func RunMixed(variants []Variant, o Options) []Result {
	return Run(Mixed{Variants: variants}, o).Results
}

// RunDelaySweep measures TxCAS latency across intra-transaction delays
// (paper §4.1's tuning).
//
// Deprecated: use Run(DelaySweep{DelaysNS: delaysNS, ThreadCounts:
// threadCounts}, o).Results.
func RunDelaySweep(delaysNS []float64, threadCounts []int, o Options) []Result {
	return Run(DelaySweep{DelaysNS: delaysNS, ThreadCounts: threadCounts}, o).Results
}

// RunBasketSweep measures SBQ-HTM enqueue latency across basket sizes at a
// fixed thread count (§5.3.4).
//
// Deprecated: use Run(BasketSweep{BasketSizes: basketSizes, Threads:
// threads}, o).Results.
func RunBasketSweep(basketSizes []int, threads int, o Options) []Result {
	return Run(BasketSweep{BasketSizes: basketSizes, Threads: threads}, o).Results
}

// RunFixAblation measures cross-socket TxCAS with and without the §3.4.1
// microarchitectural fix.
//
// Deprecated: use Run(FixAblation{}, o).Fix.
func RunFixAblation(o Options) []FixResult { return Run(FixAblation{}, o).Fix }

// RunTelemetry runs a mixed producer/consumer workload for each variant
// with obs recorders attached at both layers and returns the snapshots.
//
// Deprecated: use Run(Telemetry{Variants: variants}, o).Telemetry.
func RunTelemetry(variants []Variant, o Options) []TelemetrySnapshot {
	return Run(Telemetry{Variants: variants}, o).Telemetry
}

// RunTrace runs one variant under the mixed cross-socket workload with a
// flight recorder attached at both layers and returns the drained trace.
//
// Deprecated: use Run(TraceQueue{Variant: v}, o).Trace.
func RunTrace(v Variant, o Options) *trace.Trace {
	return Run(TraceQueue{Variant: v}, o).Trace
}

// RunTraceTxCAS records the raw-TxCAS cross-socket configuration of the
// fix ablation (§3.4.1).
//
// Deprecated: use Run(TraceTxCAS{}, o).Trace.
func RunTraceTxCAS(o Options) *trace.Trace { return Run(TraceTxCAS{}, o).Trace }
