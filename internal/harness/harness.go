// Package harness runs the paper's evaluation experiments (§6) on the
// simulated machine and formats their results. Experiments are named by
// typed Workload values executed through the single entry point Run (see
// run.go); each regenerates one figure or ablation of the paper. cmd/sbqsim
// and the repository's bench_test.go are thin wrappers around it. The
// legacy per-figure Run* functions remain as deprecated wrappers over Run.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/simqueue"
	"repro/internal/stats"
)

// Result is one measured point: a queue (or primitive) at a thread count.
type Result struct {
	Series  string  // queue or primitive name
	Threads int     // concurrency level
	NSPerOp float64 // mean latency per operation
	Mops    float64 // aggregate throughput, millions of ops per second
	StdNS   float64 // stddev of NSPerOp across repetitions
}

// Options controls experiment scale. Zero values select defaults sized for
// interactive runs; the paper's 4e6 ops/thread is approximated in shape by
// far fewer simulated operations.
type Options struct {
	OpsPerThread int   // operations per thread per repetition (default 300)
	Reps         int   // repetitions with distinct seeds (default 3; paper uses 5)
	ThreadCounts []int // sweep points (default 1..44, paper's single-socket range)
	BasketSize   int   // SBQ basket capacity (default 44, as in the paper)
	Progress     io.Writer

	// Faults configures the fault injector of every machine the workload
	// builds (see machine.FaultPlan): spurious aborts, capacity squeeze,
	// HTM disablement, cross-socket jitter. The zero value injects nothing.
	Faults machine.FaultPlan
	// Policy, if non-nil, paces the retry/fallback loop of every TxCAS the
	// workload builds (see repro/internal/machine/policy). Nil keeps the
	// legacy tuned loop.
	Policy policy.RetryPolicy
}

func (o Options) withDefaults() Options {
	if o.OpsPerThread == 0 {
		o.OpsPerThread = 300
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if len(o.ThreadCounts) == 0 {
		o.ThreadCounts = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44}
	}
	if o.BasketSize == 0 {
		o.BasketSize = 44
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// Variant names a queue implementation under test.
type Variant string

// The queue variants of the paper's evaluation (§6.1).
const (
	SBQHTM     Variant = "SBQ-HTM"
	SBQCAS     Variant = "SBQ-CAS"
	BQOriginal Variant = "BQ-Original"
	WFQueue    Variant = "WF-Queue" // FAA-based stand-in, see DESIGN.md
	CCQueue    Variant = "CC-Queue"
	MSQueue    Variant = "MS-Queue" // extra baseline, not in the paper's figures
	// SBQHTMPart is SBQ-HTM with partitioned basket extraction — this
	// repository's implementation of the paper's §8 future work
	// ("designing a basket with scalable dequeue operations").
	SBQHTMPart Variant = "SBQ-HTM-PB"
	// LCRQV is the LCRQ of Morrison & Afek, the related-work predecessor
	// of WF-Queue; an optional extra baseline, not in the paper's figures.
	LCRQV Variant = "LCRQ"
)

// AllVariants is the figure 5-7 lineup.
var AllVariants = []Variant{BQOriginal, CCQueue, SBQCAS, SBQHTM, WFQueue}

// BuildQueue constructs the named variant for a machine with the given
// producer and total thread counts.
func BuildQueue(m *machine.Machine, v Variant, producers, threads, basketSize int) simqueue.Queue {
	return BuildQueueRec(m, v, producers, threads, basketSize, nil)
}

// BuildQueueRec is BuildQueue with a queue-level telemetry recorder
// attached where the variant supports one (the SBQ variants; the baseline
// queues predate the telemetry layer and report only machine-level
// counters). Machine-level telemetry is orthogonal: attach it with
// machine.SetRecorder.
func BuildQueueRec(m *machine.Machine, v Variant, producers, threads, basketSize int, rec obs.Recorder) simqueue.Queue {
	return buildQueue(m, v, producers, threads, basketSize, rec, core.DefaultOptions())
}

// buildQueue is BuildQueueRec with explicit TxCAS tuning; workloads route
// their Options.Policy through it (see Options.coreOptions).
func buildQueue(m *machine.Machine, v Variant, producers, threads, basketSize int, rec obs.Recorder, copt core.Options) simqueue.Queue {
	if producers < 1 {
		producers = 1
	}
	if basketSize < producers {
		basketSize = producers
	}
	switch v {
	case SBQHTM:
		return simqueue.NewSBQ(m, simqueue.SBQOptions{
			BasketSize: basketSize, Enqueuers: producers, Threads: threads,
			Primitive: core.Bind(threads, copt), Name: string(SBQHTM), Rec: rec,
		})
	case SBQHTMPart:
		return simqueue.NewSBQ(m, simqueue.SBQOptions{
			BasketSize: basketSize, Enqueuers: producers, Threads: threads,
			Primitive: core.Bind(threads, copt), Name: string(SBQHTMPart), Partitions: 2, Rec: rec,
		})
	case SBQCAS:
		return simqueue.NewSBQ(m, simqueue.SBQOptions{
			BasketSize: basketSize, Enqueuers: producers, Threads: threads,
			Append: simqueue.DelayedCAS(core.DefaultDelay), Name: string(SBQCAS), Rec: rec,
		})
	case BQOriginal:
		return simqueue.NewBQ(m, 0)
	case WFQueue:
		return simqueue.NewFAAQ(m, simqueue.FAAQOptions{Threads: threads})
	case CCQueue:
		return simqueue.NewCCQ(m, threads, 0)
	case MSQueue:
		return simqueue.NewMSQ(m, 0)
	case LCRQV:
		return simqueue.NewLCRQ(m, simqueue.LCRQOptions{})
	}
	panic("harness: unknown variant " + string(v))
}

func (o Options) newMachine(seed uint64) *machine.Machine {
	cfg := machine.Default()
	cfg.Seed = seed
	cfg.Faults = o.Faults
	return machine.New(cfg)
}

// coreOptions returns the TxCAS tuning for this experiment: the evaluated
// defaults, paced by o.Policy when one is set.
func (o Options) coreOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Policy = o.Policy
	return opt
}

// element returns the unique value thread tid enqueues as its i-th element.
func element(tid, i int) uint64 { return uint64(tid+1)<<32 | uint64(i+1) }

// ---------------------------------------------------------------------------
// Figure 1: TxCAS vs FAA latency.

// runFig1 measures per-operation latency of a contended FAA and a contended
// TxCAS as concurrency grows (paper Figure 1).
func runFig1(o Options) []Result {
	o = o.withDefaults()
	var out []Result
	for _, series := range []string{"FAA", "TxCAS"} {
		for _, n := range o.ThreadCounts {
			var ns []float64
			for rep := 0; rep < o.Reps; rep++ {
				m := o.newMachine(uint64(rep) + 1)
				if n > m.Config().CoresPerSocket {
					continue
				}
				a := m.AllocLine(8, 0)
				var cycles uint64
				for t := 0; t < n; t++ {
					m.Go(t, func(p *machine.Proc) {
						p.Delay(p.RandN(200))
						txc := core.New(o.coreOptions())
						start := p.Now()
						for i := 0; i < o.OpsPerThread; i++ {
							if series == "FAA" {
								p.FAA(a, 1)
							} else {
								old := p.Read(a)
								txc.Do(p, a, old, old+1)
							}
						}
						cycles += p.Now() - start
					})
				}
				m.Run()
				perOp := float64(cycles) / float64(n*o.OpsPerThread)
				ns = append(ns, m.Config().NSPerOp(perOp))
			}
			if len(ns) == 0 {
				continue
			}
			s := stats.Summarize(ns)
			out = append(out, Result{Series: series, Threads: n, NSPerOp: s.Mean, StdNS: s.Stddev,
				Mops: 1e3 * float64(n) / s.Mean})
			o.progress("fig1 %s %d threads: %.0f ns/op\n", series, n, s.Mean)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figures 5-7: queue workloads.

// runEnqueueOnly measures enqueue latency and aggregate throughput while
// producers fill an initially empty queue (paper Figure 5).
func runEnqueueOnly(variants []Variant, o Options) []Result {
	o = o.withDefaults()
	var out []Result
	for _, v := range variants {
		for _, n := range o.ThreadCounts {
			var ns []float64
			for rep := 0; rep < o.Reps; rep++ {
				m := o.newMachine(uint64(rep) + 1)
				if n > m.Config().CoresPerSocket {
					continue
				}
				q := buildQueue(m, v, n, n, o.BasketSize, nil, o.coreOptions())
				var cycles uint64
				for t := 0; t < n; t++ {
					t := t
					m.Go(t, func(p *machine.Proc) {
						p.Delay(p.RandN(200))
						start := p.Now()
						for i := 0; i < o.OpsPerThread; i++ {
							q.Enqueue(p, t, element(t, i))
						}
						cycles += p.Now() - start
					})
				}
				m.Run()
				perOp := float64(cycles) / float64(n*o.OpsPerThread)
				ns = append(ns, m.Config().NSPerOp(perOp))
			}
			if len(ns) == 0 {
				continue
			}
			s := stats.Summarize(ns)
			out = append(out, Result{Series: string(v), Threads: n, NSPerOp: s.Mean, StdNS: s.Stddev,
				Mops: 1e3 * float64(n) / s.Mean})
			o.progress("fig5 %s %d threads: %.0f ns/op\n", v, n, s.Mean)
		}
	}
	return out
}

// runDequeueOnly measures dequeue latency on a queue pre-filled by
// concurrent producers (paper Figure 6). Consumers are the measured
// threads; the queue never goes empty.
func runDequeueOnly(variants []Variant, o Options) []Result {
	o = o.withDefaults()
	var out []Result
	for _, v := range variants {
		for _, n := range o.ThreadCounts {
			var ns []float64
			for rep := 0; rep < o.Reps; rep++ {
				m := o.newMachine(uint64(rep) + 1)
				if n > m.Config().CoresPerSocket {
					continue
				}
				// Pre-fill with n producer threads (ids 0..n-1), per §6.1.
				fill := o.OpsPerThread + o.OpsPerThread/4 + 8
				q := buildQueue(m, v, n, 2*n, o.BasketSize, nil, o.coreOptions())
				for t := 0; t < n; t++ {
					t := t
					m.Go(t, func(p *machine.Proc) {
						for i := 0; i < fill; i++ {
							q.Enqueue(p, t, element(t, i))
						}
					})
				}
				m.Run()
				var cycles uint64
				for t := 0; t < n; t++ {
					tid := n + t
					m.Go(t, func(p *machine.Proc) {
						p.Delay(p.RandN(200))
						start := p.Now()
						for i := 0; i < o.OpsPerThread; i++ {
							q.Dequeue(p, tid)
						}
						cycles += p.Now() - start
					})
				}
				m.Run()
				perOp := float64(cycles) / float64(n*o.OpsPerThread)
				ns = append(ns, m.Config().NSPerOp(perOp))
			}
			if len(ns) == 0 {
				continue
			}
			s := stats.Summarize(ns)
			out = append(out, Result{Series: string(v), Threads: n, NSPerOp: s.Mean, StdNS: s.Stddev,
				Mops: 1e3 * float64(n) / s.Mean})
			o.progress("fig6 %s %d threads: %.0f ns/op\n", v, n, s.Mean)
		}
	}
	return out
}

// runMixed measures the normalized duration of a benchmark where producers
// (socket 0) enqueue and consumers (socket 1) dequeue the same number of
// elements from a half-full queue (paper Figure 7). Threads here counts
// both types together, matching the figure's x-axis.
func runMixed(variants []Variant, o Options) []Result {
	o = o.withDefaults()
	var out []Result
	for _, v := range variants {
		for _, total := range o.ThreadCounts {
			n := total / 2
			if n == 0 {
				continue
			}
			var ns []float64
			for rep := 0; rep < o.Reps; rep++ {
				m := o.newMachine(uint64(rep) + 1)
				if n > m.Config().CoresPerSocket {
					continue
				}
				cps := m.Config().CoresPerSocket
				q := buildQueue(m, v, n, 2*n, o.BasketSize, nil, o.coreOptions())
				prefill := o.OpsPerThread / 2
				for t := 0; t < n; t++ {
					t := t
					m.Go(t, func(p *machine.Proc) {
						for i := 0; i < prefill; i++ {
							q.Enqueue(p, t, element(t, i))
						}
					})
				}
				m.Run()
				start := m.Now()
				totalOps := 0
				for t := 0; t < n; t++ {
					t := t
					m.Go(t, func(p *machine.Proc) {
						p.Delay(p.RandN(200))
						for i := 0; i < o.OpsPerThread; i++ {
							q.Enqueue(p, t, element(t, prefill+i))
						}
					})
				}
				for t := 0; t < n; t++ {
					tid := n + t
					m.Go(cps+t, func(p *machine.Proc) {
						p.Delay(p.RandN(200))
						done := 0
						for done < o.OpsPerThread {
							if _, ok := q.Dequeue(p, tid); ok {
								done++
							} else {
								p.Delay(100)
							}
						}
					})
				}
				m.Run()
				totalOps = 2 * n * o.OpsPerThread
				perOp := float64(m.Now()-start) * float64(2*n) / float64(totalOps)
				ns = append(ns, m.Config().NSPerOp(perOp))
			}
			if len(ns) == 0 {
				continue
			}
			s := stats.Summarize(ns)
			out = append(out, Result{Series: string(v), Threads: 2 * n, NSPerOp: s.Mean, StdNS: s.Stddev,
				Mops: 1e3 * float64(2*n) / s.Mean})
			o.progress("fig7 %s %d threads: %.0f ns/op\n", v, 2*n, s.Mean)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Ablations.

// runDelaySweep measures TxCAS latency across intra-transaction delays
// (paper §4.1's tuning; the paper settles on ~270 ns).
func runDelaySweep(delaysNS []float64, threadCounts []int, o Options) []Result {
	o = o.withDefaults()
	var out []Result
	for _, dns := range delaysNS {
		for _, n := range threadCounts {
			var ns []float64
			for rep := 0; rep < o.Reps; rep++ {
				m := o.newMachine(uint64(rep) + 1)
				if n > m.Config().CoresPerSocket {
					continue
				}
				delay := uint64(dns * m.Config().CyclesPerNS)
				a := m.AllocLine(8, 0)
				var cycles uint64
				for t := 0; t < n; t++ {
					m.Go(t, func(p *machine.Proc) {
						p.Delay(p.RandN(200))
						opt := o.coreOptions()
						opt.Delay = delay
						txc := core.New(opt)
						start := p.Now()
						for i := 0; i < o.OpsPerThread; i++ {
							old := p.Read(a)
							txc.Do(p, a, old, old+1)
						}
						cycles += p.Now() - start
					})
				}
				m.Run()
				perOp := float64(cycles) / float64(n*o.OpsPerThread)
				ns = append(ns, m.Config().NSPerOp(perOp))
			}
			if len(ns) == 0 {
				continue
			}
			s := stats.Summarize(ns)
			out = append(out, Result{Series: fmt.Sprintf("delay=%.0fns", dns), Threads: n,
				NSPerOp: s.Mean, StdNS: s.Stddev, Mops: 1e3 * float64(n) / s.Mean})
			o.progress("delay %.0fns %d threads: %.0f ns/op\n", dns, n, s.Mean)
		}
	}
	return out
}

// runBasketSweep measures SBQ-HTM enqueue latency across basket sizes at a
// fixed thread count (the O(B/T) initialization amortization of §5.3.4).
func runBasketSweep(basketSizes []int, threads int, o Options) []Result {
	o = o.withDefaults()
	var out []Result
	for _, b := range basketSizes {
		o2 := o
		o2.BasketSize = b
		o2.ThreadCounts = []int{threads}
		res := runEnqueueOnly([]Variant{SBQHTM}, o2)
		for _, r := range res {
			r.Series = fmt.Sprintf("B=%d", b)
			out = append(out, r)
			o.progress("basket B=%d: %.0f ns/op\n", b, r.NSPerOp)
		}
	}
	return out
}

// FixResult reports the tripped-writer ablation (§3.4.1): TxCAS behavior
// with requesters on one socket and readers on the other, with and without
// the proposed microarchitectural fix.
type FixResult struct {
	Label          string
	Fix            bool
	PostAbortDelay uint64
	NSPerOp        float64
	TrippedWriters uint64
	FixStalls      uint64
	Aborts         uint64
	Commits        uint64
}

// runFixAblation measures cross-socket TxCAS with and without the §3.4.1
// microarchitectural fix. TxCASers run on both sockets, which is exactly
// the configuration §4.3 rules out on current hardware: the post-abort
// check reads from the remote socket land inside a committing writer's
// (long, cross-socket) xend drain window and trip it. The proposed fix
// stalls those reads until the transaction commits.
func runFixAblation(o Options) []FixResult {
	o = o.withDefaults()
	// The three regimes of §4.3's discussion. Intra-socket, a short
	// post-abort delay keeps check reads out of a committing writer's
	// drain window. Cross-socket that window is several times longer, so:
	// without the delay, check reads trip writers constantly; the
	// hardware fix stalls those reads instead; alternatively the delay
	// can be stretched to cross-socket latency, trading tripping for a
	// much slower TxCAS.
	configs := []struct {
		label string
		fix   bool
		pad   uint64
	}{
		{"no-delay", false, 0},
		{"no-delay+fix", true, 0},
		{"cross-socket-delay", false, 500},
	}
	var out []FixResult
	for _, cf := range configs {
		cfg := machine.Default()
		cfg.TrippedWriterFix = cf.fix
		cfg.Seed = 1
		cfg.Faults = o.Faults
		m := machine.New(cfg)
		a := m.AllocLine(8, 0)
		perSocket := 6
		var cycles uint64
		opt := o.coreOptions()
		opt.PostAbortDelay = cf.pad
		for s := 0; s < 2; s++ {
			for t := 0; t < perSocket; t++ {
				m.Go(s*cfg.CoresPerSocket+t, func(p *machine.Proc) {
					p.Delay(p.RandN(400))
					txc := core.New(opt)
					start := p.Now()
					for i := 0; i < o.OpsPerThread; i++ {
						old := p.Read(a)
						txc.Do(p, a, old, old+1)
					}
					cycles += p.Now() - start
				})
			}
		}
		m.Run()
		perOp := float64(cycles) / float64(2*perSocket*o.OpsPerThread)
		out = append(out, FixResult{
			Label:          cf.label,
			Fix:            cf.fix,
			PostAbortDelay: cf.pad,
			NSPerOp:        cfg.NSPerOp(perOp),
			TrippedWriters: m.Stats.TrippedWriters,
			FixStalls:      m.Stats.FixStalls,
			Aborts:         m.Stats.TxAborts,
			Commits:        m.Stats.TxCommits,
		})
		o.progress("%s: %.0f ns/op, tripped=%d stalls=%d aborts=%d commits=%d\n",
			cf.label, cfg.NSPerOp(perOp), m.Stats.TrippedWriters, m.Stats.FixStalls, m.Stats.TxAborts, m.Stats.TxCommits)
	}
	return out
}

// ---------------------------------------------------------------------------
// Output formatting.

// WriteTable renders results as an aligned table: one row per thread count,
// one column per series.
func WriteTable(w io.Writer, results []Result, metric string) {
	series := seriesOf(results)
	threads := threadsOf(results)
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[key(r.Series, r.Threads)] = r
	}
	fmt.Fprintf(w, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	for _, t := range threads {
		fmt.Fprintf(w, "%-8d", t)
		for _, s := range series {
			r, ok := byKey[key(s, t)]
			if !ok {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			switch metric {
			case "mops":
				fmt.Fprintf(w, " %14.2f", r.Mops)
			default:
				fmt.Fprintf(w, " %14.1f", r.NSPerOp)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders results as series,threads,ns_per_op,mops,std_ns rows.
func WriteCSV(w io.Writer, results []Result) {
	fmt.Fprintln(w, "series,threads,ns_per_op,mops,std_ns")
	for _, r := range results {
		fmt.Fprintf(w, "%s,%d,%.2f,%.4f,%.2f\n", r.Series, r.Threads, r.NSPerOp, r.Mops, r.StdNS)
	}
}

func key(s string, t int) string { return fmt.Sprintf("%s|%d", s, t) }

// Speedup returns how many times faster (in ns/op) series a is than
// series b at the given thread count — the paper's headline metric (e.g.
// SBQ-HTM vs WF-Queue at 44 threads). ok is false if either point is
// missing.
func Speedup(results []Result, a, b string, threads int) (float64, bool) {
	var ra, rb *Result
	for i := range results {
		r := &results[i]
		if r.Threads != threads {
			continue
		}
		switch r.Series {
		case a:
			ra = r
		case b:
			rb = r
		}
	}
	if ra == nil || rb == nil || ra.NSPerOp == 0 {
		return 0, false
	}
	return rb.NSPerOp / ra.NSPerOp, true
}

func seriesOf(results []Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		if !seen[r.Series] {
			seen[r.Series] = true
			out = append(out, r.Series)
		}
	}
	return out
}

func threadsOf(results []Result) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range results {
		if !seen[r.Threads] {
			seen[r.Threads] = true
			out = append(out, r.Threads)
		}
	}
	sort.Ints(out)
	return out
}

// Plot renders a crude ASCII line chart of NSPerOp against threads, one
// letter per series, for terminal-friendly figure reproduction.
func Plot(w io.Writer, results []Result, height int) {
	series := seriesOf(results)
	threads := threadsOf(results)
	if len(series) == 0 || len(threads) == 0 {
		return
	}
	if height <= 0 {
		height = 16
	}
	byKey := map[string]Result{}
	maxY := 0.0
	for _, r := range results {
		byKey[key(r.Series, r.Threads)] = r
		if r.NSPerOp > maxY {
			maxY = r.NSPerOp
		}
	}
	width := len(threads)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "abcdefghij"
	for si, s := range series {
		for xi, t := range threads {
			r, ok := byKey[key(s, t)]
			if !ok {
				continue
			}
			y := int((r.NSPerOp / maxY) * float64(height-1))
			row := height - 1 - y
			c := marks[si%len(marks)]
			if grid[row][xi] != ' ' {
				c = '*'
			}
			grid[row][xi] = c
		}
	}
	fmt.Fprintf(w, "ns/op (max %.0f)\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", row)
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, " threads %d..%d; ", threads[0], threads[len(threads)-1])
	for si, s := range series {
		fmt.Fprintf(w, "%c=%s ", marks[si%len(marks)], s)
	}
	fmt.Fprintln(w)
}
