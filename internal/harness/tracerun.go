package harness

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runTrace runs one variant under the mixed cross-socket workload of
// the telemetry workload with a flight recorder attached at both layers — the queue
// (operation, CAS, basket events on per-thread lanes) and the machine
// (coherence and HTM events on per-core lanes) — and returns the drained
// trace. Timestamps are simulated nanoseconds on the machine's own clock,
// so queue-level and machine-level events interleave exactly as the
// simulation ordered them.
//
// The trace carries the topology and lane→core pinning in its Meta, which
// is what the analyzer (trace.Analyze) and cmd/sbqtrace need to rebuild
// the paper's temporal figures: tripped-writer serialization chains (§3),
// abort cascades (§3.3), and the intra- vs cross-socket latency split
// (§4.3).
func runTrace(v Variant, o Options) *trace.Trace {
	o = o.withDefaults()
	m := o.newMachine(1)
	cfg := m.Config()
	n := 1
	for _, t := range o.ThreadCounts {
		if t > n && t <= cfg.CoresPerSocket {
			n = t
		}
	}

	// Size the ring so a full run fits without overwriting: queue ops emit
	// a handful of events each, and contended machine-layer traffic
	// (coherence requests, aborts) multiplies that. Capped: beyond the cap
	// the recorder falls back to flight-recorder semantics (oldest
	// overwritten, counted in Trace.Dropped).
	ringSize := 64 * (2 * n) * o.OpsPerThread
	if ringSize > 1<<21 {
		ringSize = 1 << 21
	}

	stats := obs.New()
	col := trace.New(
		trace.WithClock(func() uint64 { return uint64(cfg.NSPerOp(float64(m.Now()))) }),
		trace.WithClockName("sim-ns"),
		trace.WithRingSize(ringSize),
		trace.WithStats(stats),
	)
	m.SetRecorder(col)
	q := buildQueue(m, v, n, 2*n, o.BasketSize, col, o.coreOptions())

	// Producers on socket 0 (cores 0..n-1, tids 0..n-1); consumers on
	// socket 1 (cores cps..cps+n-1, tids n..2n-1), as in the paper's mixed
	// benchmark (§6.1). Queue lanes are tids; machine lanes are cores.
	laneCores := map[int32]int{}
	for t := 0; t < n; t++ {
		laneCores[int32(t)] = t
		laneCores[int32(n+t)] = cfg.CoresPerSocket + t
	}
	col.SetMeta("sockets", strconv.Itoa(cfg.Sockets))
	col.SetMeta("cores_per_socket", strconv.Itoa(cfg.CoresPerSocket))
	col.SetMeta("lane_cores", trace.FormatLaneCores(laneCores))
	col.SetMeta("variant", string(v))
	col.SetMeta("workload", "mixed")

	for t := 0; t < n; t++ {
		t := t
		m.Go(t, func(p *machine.Proc) {
			p.Delay(p.RandN(200))
			for i := 0; i < o.OpsPerThread; i++ {
				q.Enqueue(p, t, element(t, i))
			}
		})
	}
	for t := 0; t < n; t++ {
		tid := n + t
		m.Go(cfg.CoresPerSocket+t, func(p *machine.Proc) {
			p.Delay(p.RandN(200))
			done := 0
			for done < o.OpsPerThread {
				if _, ok := q.Dequeue(p, tid); ok {
					done++
				} else {
					p.Delay(50)
				}
			}
		})
	}
	m.Run()
	o.progress("trace %s %d threads done\n", v, 2*n)
	return col.Snapshot()
}

// runTraceTxCAS records the raw-TxCAS cross-socket configuration of the
// fix ablation (§3.4.1): TxCAS threads on both sockets share one counter
// line, with no post-abort delay and no tripped-writer fix. This is the
// regime where post-abort check reads from the remote socket land inside
// a committing writer's xend drain window and trip it, so the resulting
// trace is dense in tripped-writer aborts — the input the analyzer's
// chain reconstruction (§3) is made for.
func runTraceTxCAS(o Options) *trace.Trace {
	o = o.withDefaults()
	cfg := machine.Default()
	cfg.Seed = 1
	cfg.Faults = o.Faults
	m := machine.New(cfg)
	perSocket := 1
	for _, t := range o.ThreadCounts {
		if t > perSocket && t <= cfg.CoresPerSocket {
			perSocket = t
		}
	}

	// The contended regime emits far more events per operation than a queue
	// workload (every retry aborts, every abort cascades), so the ring gets
	// a larger per-op allowance before the cap.
	ringSize := 512 * (2 * perSocket) * o.OpsPerThread
	if ringSize > 1<<22 {
		ringSize = 1 << 22
	}
	stats := obs.New()
	col := trace.New(
		trace.WithClock(func() uint64 { return uint64(cfg.NSPerOp(float64(m.Now()))) }),
		trace.WithClockName("sim-ns"),
		trace.WithRingSize(ringSize),
		trace.WithStats(stats),
	)
	m.SetRecorder(col)
	col.SetMeta("sockets", strconv.Itoa(cfg.Sockets))
	col.SetMeta("cores_per_socket", strconv.Itoa(cfg.CoresPerSocket))
	col.SetMeta("variant", "TxCAS")
	col.SetMeta("workload", "txcas")

	a := m.AllocLine(8, 0)
	opt := o.coreOptions()
	opt.PostAbortDelay = 0
	for s := 0; s < 2; s++ {
		for t := 0; t < perSocket; t++ {
			m.Go(s*cfg.CoresPerSocket+t, func(p *machine.Proc) {
				p.Delay(p.RandN(400))
				txc := core.New(opt)
				for i := 0; i < o.OpsPerThread; i++ {
					old := p.Read(a)
					txc.Do(p, a, old, old+1)
				}
			})
		}
	}
	m.Run()
	o.progress("trace txcas %d threads done\n", 2*perSocket)
	return col.Snapshot()
}
