package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/machine"
	"repro/internal/obs"
)

// TelemetrySnapshot is the result of one instrumented variant run: the two
// telemetry layers, kept separate so queue-level events (operations,
// try_append outcomes, basket outcomes) are never conflated with the
// machine-level traffic they generate (coherence messages, HTM events, raw
// CAS outcomes).
type TelemetrySnapshot struct {
	Variant Variant
	Threads int // producers + consumers
	// Queue holds queue-level counters and the harness-observed per-op
	// latency histograms (simulated nanoseconds). The baseline queues
	// predate the telemetry layer, so for them only the latency series
	// are populated.
	Queue obs.Snapshot
	// Machine holds machine-level counters: coherence-message kinds, the
	// HTM abort-code breakdown, and hardware CAS outcomes.
	Machine obs.Snapshot
}

// runTelemetry runs a mixed producer/consumer workload for each variant
// with obs recorders attached at both layers and returns the snapshots.
// The thread count is the largest entry of o.ThreadCounts that fits on one
// socket; producers run on socket 0 and consumers on socket 1, as in the
// paper's mixed benchmark (§6.1).
//
// Unlike the figure workloads this measures no latency average — the
// point is the event mix. The queue is not pre-filled, so consumers race
// producers and the DeqEmpty/DeqRetries counters show how often they lose.
func runTelemetry(variants []Variant, o Options) []TelemetrySnapshot {
	o = o.withDefaults()
	var out []TelemetrySnapshot
	for _, v := range variants {
		m := o.newMachine(1)
		cfg := m.Config()
		n := 1
		for _, t := range o.ThreadCounts {
			if t > n && t <= cfg.CoresPerSocket {
				n = t
			}
		}

		machineStats := obs.New()
		m.SetRecorder(machineStats)
		queueStats := obs.New()
		q := buildQueue(m, v, n, 2*n, o.BasketSize, queueStats, o.coreOptions())

		toNS := func(cycles uint64) uint64 { return uint64(cfg.NSPerOp(float64(cycles))) }
		for t := 0; t < n; t++ {
			t := t
			m.Go(t, func(p *machine.Proc) {
				p.Delay(p.RandN(200))
				for i := 0; i < o.OpsPerThread; i++ {
					start := p.Now()
					q.Enqueue(p, t, element(t, i))
					queueStats.Observe(obs.EnqLatency, toNS(p.Now()-start))
				}
			})
		}
		for t := 0; t < n; t++ {
			tid := n + t
			m.Go(cfg.CoresPerSocket+t, func(p *machine.Proc) {
				p.Delay(p.RandN(200))
				done := 0
				for done < o.OpsPerThread {
					start := p.Now()
					_, ok := q.Dequeue(p, tid)
					queueStats.Observe(obs.DeqLatency, toNS(p.Now()-start))
					if ok {
						done++
					}
				}
			})
		}
		m.Run()

		out = append(out, TelemetrySnapshot{
			Variant: v, Threads: 2 * n,
			Queue:   queueStats.Snapshot(),
			Machine: machineStats.Snapshot(),
		})
		o.progress("telemetry %s %d threads done\n", v, 2*n)
	}
	return out
}

// WriteTelemetry renders telemetry snapshots as indented per-variant
// sections: queue-level counters and latency first, then the HTM
// abort-code breakdown and coherence traffic from the machine layer.
func WriteTelemetry(w io.Writer, snaps []TelemetrySnapshot) {
	for _, ts := range snaps {
		fmt.Fprintf(w, "%s @ %d threads:\n", ts.Variant, ts.Threads)
		queueCounters := ""
		if ts.Queue.Counter(obs.EnqOps)+ts.Queue.Counter(obs.DeqOps) > 0 {
			queueCounters = ts.Queue.FormatQueue()
		}
		sections := []string{
			queueCounters,
			ts.Queue.FormatLatency(),
			fmt.Sprintf("machine cas: attempts=%d failures=%d (%.1f%% failed)",
				ts.Machine.Counter(obs.CASAttempts), ts.Machine.Counter(obs.CASFailures),
				100*ts.Machine.CASFailureRate()),
			ts.Machine.FormatHTM(),
			ts.Machine.FormatCoherence(),
		}
		for _, sec := range sections {
			if sec == "" {
				continue
			}
			for _, line := range strings.Split(sec, "\n") {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
		fmt.Fprintln(w)
	}
}
