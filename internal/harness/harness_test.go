package harness

import (
	"strings"
	"testing"
)

func fast() Options {
	return Options{OpsPerThread: 80, Reps: 1, ThreadCounts: []int{2, 8, 24, 40}}
}

func get(results []Result, series string, threads int) (Result, bool) {
	for _, r := range results {
		if r.Series == series && r.Threads == threads {
			return r, true
		}
	}
	return Result{}, false
}

// Figure 1's qualitative content: FAA grows with contention, TxCAS stays
// roughly flat and wins at high thread counts.
func TestFig1Shapes(t *testing.T) {
	res := RunFig1(fast())
	faaLow, _ := get(res, "FAA", 2)
	faaHigh, ok := get(res, "FAA", 40)
	if !ok {
		t.Fatal("missing FAA result")
	}
	txLow, _ := get(res, "TxCAS", 2)
	txMid, _ := get(res, "TxCAS", 24)
	txHigh, _ := get(res, "TxCAS", 40)
	if faaHigh.NSPerOp < 4*faaLow.NSPerOp {
		t.Errorf("FAA not linear-ish: %.0f -> %.0f", faaLow.NSPerOp, faaHigh.NSPerOp)
	}
	if txHigh.NSPerOp > 2*txMid.NSPerOp {
		t.Errorf("TxCAS not flat: 24thr %.0f -> 40thr %.0f", txMid.NSPerOp, txHigh.NSPerOp)
	}
	if txLow.NSPerOp < faaLow.NSPerOp {
		t.Errorf("TxCAS should pay its delay at low concurrency: %.0f < %.0f", txLow.NSPerOp, faaLow.NSPerOp)
	}
	if txHigh.NSPerOp > faaHigh.NSPerOp {
		t.Errorf("TxCAS should win at 40 threads: %.0f vs %.0f", txHigh.NSPerOp, faaHigh.NSPerOp)
	}
}

// Figure 5's headline: SBQ-HTM enqueues scale; it beats the FAA-based
// queue at high concurrency.
func TestFig5Shapes(t *testing.T) {
	res := RunEnqueueOnly([]Variant{SBQHTM, WFQueue}, fast())
	sbqHigh, ok1 := get(res, string(SBQHTM), 40)
	wfHigh, ok2 := get(res, string(WFQueue), 40)
	if !ok1 || !ok2 {
		t.Fatal("missing results")
	}
	if sbqHigh.NSPerOp > wfHigh.NSPerOp {
		t.Errorf("SBQ-HTM (%.0f ns) did not beat WF-Queue (%.0f ns) at 40 threads", sbqHigh.NSPerOp, wfHigh.NSPerOp)
	}
	sbqMid, _ := get(res, string(SBQHTM), 24)
	if sbqHigh.NSPerOp > 2*sbqMid.NSPerOp {
		t.Errorf("SBQ-HTM enqueue not flat: 24thr %.0f -> 40thr %.0f", sbqMid.NSPerOp, sbqHigh.NSPerOp)
	}
}

// Figure 6's content: dequeues don't scale for anyone; WF-Queue is the
// fastest, SBQ within a small constant factor.
func TestFig6Shapes(t *testing.T) {
	res := RunDequeueOnly([]Variant{SBQHTM, WFQueue}, fast())
	sbq, ok1 := get(res, string(SBQHTM), 40)
	wf, ok2 := get(res, string(WFQueue), 40)
	if !ok1 || !ok2 {
		t.Fatal("missing results")
	}
	if sbq.NSPerOp < wf.NSPerOp {
		t.Logf("note: SBQ dequeue (%.0f) beat WF-Queue (%.0f); paper has WF ahead by ~1.4x", sbq.NSPerOp, wf.NSPerOp)
	}
	if sbq.NSPerOp > 4*wf.NSPerOp {
		t.Errorf("SBQ dequeue (%.0f ns) more than 4x WF-Queue (%.0f ns); paper reports ~1.4x", sbq.NSPerOp, wf.NSPerOp)
	}
}

func TestMixedRuns(t *testing.T) {
	o := Options{OpsPerThread: 60, Reps: 1, ThreadCounts: []int{8, 40}}
	res := RunMixed([]Variant{SBQHTM, WFQueue}, o)
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for _, r := range res {
		if r.NSPerOp <= 0 {
			t.Errorf("nonpositive duration for %s/%d", r.Series, r.Threads)
		}
	}
}

func TestFixAblation(t *testing.T) {
	res := RunFixAblation(Options{OpsPerThread: 80, Reps: 1})
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	noFix, withFix, longDelay := res[0], res[1], res[2]
	if noFix.Fix || !withFix.Fix || longDelay.Fix {
		t.Fatal("result order wrong")
	}
	if noFix.TrippedWriters == 0 {
		t.Error("cross-socket TxCAS without post-abort delay produced no tripped writers")
	}
	if withFix.FixStalls == 0 {
		t.Error("fix enabled but no stalls recorded")
	}
	if withFix.TrippedWriters >= noFix.TrippedWriters {
		t.Errorf("fix did not reduce tripped writers: %d -> %d", noFix.TrippedWriters, withFix.TrippedWriters)
	}
	if longDelay.TrippedWriters >= noFix.TrippedWriters {
		t.Errorf("stretching the post-abort delay did not reduce tripped writers: %d -> %d",
			noFix.TrippedWriters, longDelay.TrippedWriters)
	}
}

func TestDelaySweepRuns(t *testing.T) {
	res := RunDelaySweep([]float64{0, 270}, []int{8, 32}, Options{OpsPerThread: 60, Reps: 1})
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestBasketSweepRuns(t *testing.T) {
	res := RunBasketSweep([]int{8, 44}, 8, Options{OpsPerThread: 60, Reps: 1})
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestTableCSVAndPlot(t *testing.T) {
	res := []Result{
		{Series: "A", Threads: 1, NSPerOp: 10, Mops: 0.1},
		{Series: "A", Threads: 2, NSPerOp: 20, Mops: 0.1},
		{Series: "B", Threads: 1, NSPerOp: 30, Mops: 0.03},
	}
	var tb strings.Builder
	WriteTable(&tb, res, "ns")
	out := tb.String()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not rendered as '-':\n%s", out)
	}
	var csv strings.Builder
	WriteCSV(&csv, res)
	if !strings.HasPrefix(csv.String(), "series,threads,") {
		t.Errorf("csv header wrong: %q", csv.String())
	}
	if got := strings.Count(csv.String(), "\n"); got != 4 {
		t.Errorf("csv rows = %d, want 4", got)
	}
	var pb strings.Builder
	Plot(&pb, res, 8)
	if !strings.Contains(pb.String(), "a=A") {
		t.Errorf("plot legend missing:\n%s", pb.String())
	}
}

func TestSpeedup(t *testing.T) {
	res := []Result{
		{Series: "A", Threads: 44, NSPerOp: 100},
		{Series: "B", Threads: 44, NSPerOp: 160},
		{Series: "A", Threads: 8, NSPerOp: 50},
	}
	s, ok := Speedup(res, "A", "B", 44)
	if !ok || s != 1.6 {
		t.Fatalf("Speedup = %v,%v; want 1.6,true", s, ok)
	}
	if _, ok := Speedup(res, "A", "B", 8); ok {
		t.Fatal("Speedup reported ok with a missing point")
	}
	if _, ok := Speedup(res, "A", "C", 44); ok {
		t.Fatal("Speedup reported ok with an unknown series")
	}
}

func TestBuildQueueAllVariants(t *testing.T) {
	for _, v := range append(AllVariants, MSQueue, SBQHTMPart, LCRQV) {
		m := Options{}.newMachine(0)
		q := BuildQueue(m, v, 4, 8, 44)
		if q.Name() == "" {
			t.Errorf("variant %s has empty name", v)
		}
	}
}
