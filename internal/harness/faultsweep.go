package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/machine/policy"
	"repro/internal/stats"
)

// This file implements the fault sweep: abort-rate vs throughput curves for
// SBQ under injected HTM faults, one curve per retry/fallback policy. It is
// the experiment the paper cannot run — its HTM always eventually commits —
// and the one a production deployment needs: what does SBQ cost when
// transactions abort spuriously, and does it degrade gracefully (bounded
// slowdown, software fallback) when a microcode update turns HTM off?

// PolicySpec names one retry/fallback policy for the sweep. A nil Policy
// selects TxCAS's legacy tuned loop (jittered immediate retry with the
// MaxRetries-then-fallback progression).
type PolicySpec struct {
	Name   string
	Policy policy.RetryPolicy
}

// DefaultPolicies is the sweep's standard lineup: the legacy loop, the
// policy-engine equivalents of its regimes, Brown's bounded-attempts
// template, and the paper's §4.1 software delayed-CAS.
func DefaultPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "legacy", Policy: nil},
		{Name: "immediate", Policy: policy.ImmediateRetry{Jitter: core.DefaultRetryJitter}},
		{Name: "backoff", Policy: policy.ExponentialBackoff{Base: 64, Max: 4096}},
		{Name: "budget8", Policy: policy.AbortBudget{
			Budget: 8, Inner: policy.ImmediateRetry{Jitter: core.DefaultRetryJitter}}},
		{Name: "delayed-cas", Policy: policy.DelayedCAS{
			Delay: core.DefaultDelay, Jitter: core.DefaultDelayJitter}},
	}
}

// FaultSweep measures enqueue throughput of one variant at a fixed thread
// count across injected-fault scenarios — a spurious-abort probability
// curve plus the HTM-disabled endpoint — once per policy. Populates
// Output.Faults.
type FaultSweep struct {
	// Variant is the queue under test; default SBQHTM.
	Variant Variant
	// Threads is the producer count; default 8.
	Threads int
	// AbortProbs are the spurious-abort probabilities to sweep; default
	// {0, 0.05, 0.2, 0.5}. A leading 0 gives each policy its fault-free
	// baseline, which Slowdown is computed against.
	AbortProbs []float64
	// SkipDisabled omits the HTM-disabled endpoint.
	SkipDisabled bool
	// Policies is the policy lineup; default DefaultPolicies().
	Policies []PolicySpec
}

// Name implements Workload.
func (FaultSweep) Name() string { return "faults" }

func (w FaultSweep) run(o Options) Output { return Output{Faults: runFaultSweep(w, o)} }

// RunFaultSweep runs the fault sweep: for each policy, SBQ enqueue
// throughput across spurious-abort probabilities and (unless skipped) with
// HTM disabled outright.
func RunFaultSweep(w FaultSweep, o Options) []FaultResult { return Run(w, o).Faults }

// FaultResult is one (policy, fault scenario) point of the sweep.
type FaultResult struct {
	Policy   string
	Scenario string // "p=0.05" for a spurious-abort probability, "disabled"
	// AbortProb is the injected spurious-abort probability (0 for the
	// disabled scenario, where no transaction ever starts speculating).
	AbortProb float64
	// Disabled marks the HTM-disabled endpoint.
	Disabled bool
	Threads  int
	NSPerOp  float64
	Mops     float64
	// AbortRate is aborted/started hardware transactions, summed over reps.
	AbortRate float64
	// Fallbacks counts operations resolved by the software fallback CAS,
	// summed over reps; FaultsInjected counts injector-produced faults.
	Fallbacks      uint64
	FaultsInjected uint64
	// Slowdown is NSPerOp relative to this policy's first scenario (the
	// fault-free baseline when AbortProbs starts at 0).
	Slowdown float64
}

func runFaultSweep(w FaultSweep, o Options) []FaultResult {
	o = o.withDefaults()
	if w.Variant == "" {
		w.Variant = SBQHTM
	}
	if w.Threads == 0 {
		w.Threads = 8
	}
	if len(w.AbortProbs) == 0 {
		w.AbortProbs = []float64{0, 0.05, 0.2, 0.5}
	}
	if len(w.Policies) == 0 {
		w.Policies = DefaultPolicies()
	}

	type scenario struct {
		label    string
		prob     float64
		disabled bool
	}
	var scenarios []scenario
	for _, p := range w.AbortProbs {
		scenarios = append(scenarios, scenario{label: fmt.Sprintf("p=%.2f", p), prob: p})
	}
	if !w.SkipDisabled {
		scenarios = append(scenarios, scenario{label: "disabled", disabled: true})
	}

	var out []FaultResult
	for _, ps := range w.Policies {
		baseline := 0.0
		for _, sc := range scenarios {
			r := w.measure(ps, sc.prob, sc.disabled, o)
			r.Scenario = sc.label
			if baseline == 0 {
				baseline = r.NSPerOp
			}
			if baseline > 0 {
				r.Slowdown = r.NSPerOp / baseline
			}
			out = append(out, r)
			o.progress("faults %s %s: %.0f ns/op (x%.2f) abort-rate=%.2f fallbacks=%d\n",
				r.Policy, r.Scenario, r.NSPerOp, r.Slowdown, r.AbortRate, r.Fallbacks)
		}
	}
	return out
}

// measure runs the enqueue-only workload for one (policy, scenario) point.
func (w FaultSweep) measure(ps PolicySpec, prob float64, disabled bool, o Options) FaultResult {
	n := w.Threads
	var ns []float64
	var mstats machine.Stats
	for rep := 0; rep < o.Reps; rep++ {
		o2 := o
		o2.Faults.SpuriousAbortProb = prob
		o2.Faults.DisableHTM = o.Faults.DisableHTM || disabled
		m := o2.newMachine(uint64(rep) + 1)
		if n > m.Config().CoresPerSocket {
			n = m.Config().CoresPerSocket
		}
		copt := o.coreOptions()
		copt.Policy = ps.Policy
		q := buildQueue(m, w.Variant, n, n, o.BasketSize, nil, copt)
		var cycles uint64
		for t := 0; t < n; t++ {
			t := t
			m.Go(t, func(p *machine.Proc) {
				p.Delay(p.RandN(200))
				start := p.Now()
				for i := 0; i < o.OpsPerThread; i++ {
					q.Enqueue(p, t, element(t, i))
				}
				cycles += p.Now() - start
			})
		}
		m.Run()
		perOp := float64(cycles) / float64(n*o.OpsPerThread)
		ns = append(ns, m.Config().NSPerOp(perOp))
		mstats.TxStarted += m.Stats.TxStarted
		mstats.TxAborts += m.Stats.TxAborts
		mstats.CASFallbacks += m.Stats.CASFallbacks
		mstats.FaultsInjected += m.Stats.FaultsInjected
	}
	s := stats.Summarize(ns)
	r := FaultResult{
		Policy:    ps.Name,
		AbortProb: prob,
		Disabled:  disabled,
		Threads:   n,
		NSPerOp:   s.Mean,
		Mops:      1e3 * float64(n) / s.Mean,
		Fallbacks: mstats.CASFallbacks, FaultsInjected: mstats.FaultsInjected,
	}
	if mstats.TxStarted > 0 {
		r.AbortRate = float64(mstats.TxAborts) / float64(mstats.TxStarted)
	}
	return r
}

// WriteFaultSweep renders the sweep as one block per policy: a row per
// scenario with latency, throughput, slowdown, abort rate, and fallback
// counts.
func WriteFaultSweep(w io.Writer, results []FaultResult) {
	last := ""
	for _, r := range results {
		if r.Policy != last {
			if last != "" {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "policy %s (%d threads):\n", r.Policy, r.Threads)
			fmt.Fprintf(w, "  %-10s %10s %8s %9s %11s %10s %10s\n",
				"scenario", "ns/op", "mops", "slowdown", "abort-rate", "fallbacks", "injected")
			last = r.Policy
		}
		fmt.Fprintf(w, "  %-10s %10.1f %8.2f %8.2fx %10.1f%% %10d %10d\n",
			r.Scenario, r.NSPerOp, r.Mops, r.Slowdown, 100*r.AbortRate, r.Fallbacks, r.FaultsInjected)
	}
}
