// Package obs is the repository's observability layer: near-zero-overhead
// telemetry counters and coarse latency histograms shared by the native
// queues (repro/queue/*), the baskets (repro/basket), and the simulated
// track (repro/internal/machine, repro/internal/simqueue).
//
// The paper's whole argument is about which atomic operations fail and what
// that failure costs (§3, §6.1): CAS failure rates, basket occupancy, and
// HTM abort-code mixes are exactly the signals every performance change in
// this repository must be steered by. This package makes them first-class:
//
//   - Counter enumerates the event counters (CAS attempts/failures, basket
//     insert/extract outcomes, enqueue/dequeue retries, HTM abort codes,
//     coherence message kinds).
//   - Series enumerates the latency histograms (power-of-two buckets,
//     backed by repro/internal/stats.Histogram).
//   - Recorder is the interface instrumentation points call. Instrumented
//     code holds a nil Recorder when telemetry is off, so the disabled path
//     is a single nil check; Nop is an explicit no-op value for plumbing,
//     normalized to nil by every constructor (see Normalize).
//   - Stats is the concrete lock-free recorder: padded per-handle shards
//     aggregated by Snapshot.
//
// Typical wiring:
//
//	rec := obs.New()
//	q := sbq.New[uint64](sbq.WithEnqueuers(8), sbq.WithRecorder(rec))
//	... run workload ...
//	snap := rec.Snapshot()
//	fmt.Println(snap.FormatQueue())
package obs

// Counter identifies one monotonically increasing event counter.
type Counter uint8

// Queue- and basket-level counters.
const (
	// EnqOps and DeqOps count completed queue operations; DeqEmpty counts
	// dequeues that reported an empty queue.
	EnqOps Counter = iota
	DeqOps
	DeqEmpty
	// EnqRetries and DeqRetries count loop iterations beyond the first in
	// an operation (tail chasing, poisoned cells, drained rings, ...).
	EnqRetries
	DeqRetries
	// CASAttempts and CASFailures count the contended linking CAS of the
	// linked queues (try_append in SBQ terms); CASFallbacks counts TxCAS
	// operations resolved by the non-transactional fallback.
	CASAttempts
	CASFailures
	CASFallbacks
	// Basket insert/extract outcomes, recorded by the basket
	// implementations themselves.
	BasketInserts
	BasketInsertFails
	BasketExtracts
	BasketExtractFails

	// HTM counters (simulated track).
	TxStarts
	TxCommits
	TxAborts
	TxAbortsConflict
	TxAbortsExplicit
	TxAbortsNested
	TxAbortsCapacity
	TxAbortsSpurious
	TxTrippedWriters
	TxFixStalls

	// Coherence message counters (simulated track), one per protocol
	// message kind. CohGetS..CohDownAck must stay contiguous and in the
	// machine's MsgKind order.
	CohGetS
	CohGetM
	CohFwdGetS
	CohFwdGetM
	CohInv
	CohInvAck
	CohData
	CohDownAck

	// Fault-injection counters (simulated track). TxAbortsDisabled counts
	// transactions refused at _xbegin because HTM is disabled;
	// FaultsInjected counts injector-produced faults of any kind;
	// FaultHopJitter counts cross-socket hops that drew a nonzero jitter
	// penalty. Appended after the Coh block so CohGetS..CohDownAck keeps
	// its required contiguity.
	TxAbortsDisabled
	FaultsInjected
	FaultHopJitter

	// Batch and sharding counters (native track). EnqBatches/DeqBatches
	// count batch operations (EnqOps/DeqOps still count elements, so
	// ops/batches is the realized amortization factor k); DeqSteals
	// counts dequeues a sharded front-end satisfied from a non-home
	// shard.
	EnqBatches
	DeqBatches
	DeqSteals

	// DeqStealMisses counts full steal sweeps that found every shard
	// empty — the consumer-backoff trigger in repro/queue/sharded: after
	// enough consecutive misses a consumer spins (calibrated, no clock
	// reads) before its next round-robin sweep instead of thrashing the
	// shard heads.
	DeqStealMisses

	// Job-queue service counters (repro/service). SrvSubmits counts
	// accepted submissions; SrvLeases counts jobs handed to workers
	// (deliveries — SrvLeases/SrvSubmits > 1 means redelivery happened);
	// SrvRedeliveries counts deliveries beyond a job's first; SrvAcks and
	// SrvNacks count worker completions and explicit rejections;
	// SrvExpired counts leases the deadline scanner reclaimed; SrvDLQ
	// counts jobs routed to a dead-letter queue after exhausting their
	// retry budget; SrvRejects counts submissions refused by the
	// backpressure quota or the drain fence.
	SrvSubmits
	SrvLeases
	SrvRedeliveries
	SrvAcks
	SrvNacks
	SrvExpired
	SrvDLQ
	SrvRejects

	// Native software-TxCAS counters (repro/internal/txcas). TxSoftAborts
	// counts speculative attempts abandoned before issuing their CAS
	// because a competing winner published first — the native analogue of
	// a read-step HTM abort: the doomed atomic never reaches the line.
	// TxSharerHints counts failure reports that carried a concrete
	// last-writer identity, the paper's "failures identify sharers" signal
	// (§3) reproduced on real cores.
	TxSoftAborts
	TxSharerHints

	// NumCounters bounds the Counter enum; it is not a counter.
	NumCounters
)

var counterNames = [NumCounters]string{
	EnqOps:             "enq_ops",
	DeqOps:             "deq_ops",
	DeqEmpty:           "deq_empty",
	EnqRetries:         "enq_retries",
	DeqRetries:         "deq_retries",
	CASAttempts:        "cas_attempts",
	CASFailures:        "cas_failures",
	CASFallbacks:       "cas_fallbacks",
	BasketInserts:      "basket_inserts",
	BasketInsertFails:  "basket_insert_fails",
	BasketExtracts:     "basket_extracts",
	BasketExtractFails: "basket_extract_fails",
	TxStarts:           "tx_starts",
	TxCommits:          "tx_commits",
	TxAborts:           "tx_aborts",
	TxAbortsConflict:   "tx_aborts_conflict",
	TxAbortsExplicit:   "tx_aborts_explicit",
	TxAbortsNested:     "tx_aborts_nested",
	TxAbortsCapacity:   "tx_aborts_capacity",
	TxAbortsSpurious:   "tx_aborts_spurious",
	TxTrippedWriters:   "tx_tripped_writers",
	TxFixStalls:        "tx_fix_stalls",
	CohGetS:            "coh_gets",
	CohGetM:            "coh_getm",
	CohFwdGetS:         "coh_fwd_gets",
	CohFwdGetM:         "coh_fwd_getm",
	CohInv:             "coh_inv",
	CohInvAck:          "coh_inv_ack",
	CohData:            "coh_data",
	CohDownAck:         "coh_down_ack",
	TxAbortsDisabled:   "tx_aborts_disabled",
	FaultsInjected:     "faults_injected",
	FaultHopJitter:     "fault_hop_jitter",
	EnqBatches:         "enq_batches",
	DeqBatches:         "deq_batches",
	DeqSteals:          "deq_steals",
	DeqStealMisses:     "deq_steal_misses",
	SrvSubmits:         "srv_submits",
	SrvLeases:          "srv_leases",
	SrvRedeliveries:    "srv_redeliveries",
	SrvAcks:            "srv_acks",
	SrvNacks:           "srv_nacks",
	SrvExpired:         "srv_expired",
	SrvDLQ:             "srv_dlq",
	SrvRejects:         "srv_rejects",
	TxSoftAborts:       "tx_soft_aborts",
	TxSharerHints:      "tx_sharer_hints",
}

// String returns the counter's snake_case name.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "?"
}

// Series identifies one latency histogram.
type Series uint8

// The latency series. Values are always nanoseconds — wall-clock on the
// native track, simulated nanoseconds on the simulated track.
const (
	EnqLatency Series = iota
	DeqLatency

	// Service delivery latencies (repro/service): LeaseLatency is
	// submit-to-first-delivery, AckLatency is submit-to-successful-ack.
	// These are the tail-latency series the chaos harness reports p99/p999
	// from.
	LeaseLatency
	AckLatency

	// NumSeries bounds the Series enum; it is not a series.
	NumSeries
)

var seriesNames = [NumSeries]string{
	EnqLatency:   "enq_ns",
	DeqLatency:   "deq_ns",
	LeaseLatency: "lease_ns",
	AckLatency:   "ack_ns",
}

// String returns the series' snake_case name.
func (s Series) String() string {
	if s < NumSeries {
		return seriesNames[s]
	}
	return "?"
}

// Recorder receives telemetry events. Implementations must be safe for
// concurrent use. Instrumented code stores a Recorder field that is nil
// when telemetry is disabled and guards every call with a nil check, so
// the disabled fast path costs one predictable branch.
type Recorder interface {
	// Inc adds one to counter c.
	Inc(c Counter)
	// Add adds delta to counter c.
	Add(c Counter, delta uint64)
	// Observe records a nanosecond value in series s.
	Observe(s Series, ns uint64)
}

// Nop is a Recorder that records nothing. Constructors normalize it to a
// nil Recorder (see Normalize), so passing Nop{} is exactly as cheap as
// passing no recorder at all: the disabled path is a single nil check and
// these methods are never reached from hot paths.
type Nop struct{}

// Inc implements Recorder as a no-op.
func (Nop) Inc(Counter) {}

// Add implements Recorder as a no-op.
func (Nop) Add(Counter, uint64) {}

// Observe implements Recorder as a no-op.
func (Nop) Observe(Series, uint64) {}

// Normalize maps Nop (and nil) to nil so that instrumented code can treat
// "no recorder" uniformly as a nil field. Every constructor accepting a
// Recorder option passes it through Normalize.
func Normalize(r Recorder) Recorder {
	if r == nil {
		return nil
	}
	if _, ok := r.(Nop); ok {
		return nil
	}
	// A typed-nil *Stats arises naturally from `var s *Stats` at call
	// sites; treat it as off rather than letting it defeat nil checks.
	if s, ok := r.(*Stats); ok && s == nil {
		return nil
	}
	return r
}
