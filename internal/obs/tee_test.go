package obs

import "testing"

// capturingEvents is a counters+events recorder for testing tee fan-out.
type capturingEvents struct {
	Stats
	events []EventKind
}

func (c *capturingEvents) Event(k EventKind, _ int32, _ uint64) { c.events = append(c.events, k) }

func TestTeeNormalizesDisabledSides(t *testing.T) {
	st := New()
	if got := Tee(nil, nil); got != nil {
		t.Fatalf("Tee(nil, nil) = %v, want nil", got)
	}
	if got := Tee(Nop{}, (*Stats)(nil)); got != nil {
		t.Fatalf("Tee(Nop, typed-nil) = %v, want nil", got)
	}
	if got := Tee(st, nil); got != Recorder(st) {
		t.Fatalf("Tee(st, nil) = %v, want the live side unchanged", got)
	}
	if got := Tee(Nop{}, st); got != Recorder(st) {
		t.Fatalf("Tee(Nop, st) = %v, want the live side unchanged", got)
	}
}

func TestTeeFansOutCountersAndSeries(t *testing.T) {
	a, b := New(), New()
	rec := Tee(a, b)
	rec.Inc(EnqOps)
	rec.Add(CASFailures, 4)
	rec.Observe(EnqLatency, 128)

	for name, st := range map[string]*Stats{"a": a, "b": b} {
		snap := st.Snapshot()
		if snap.Counter(EnqOps) != 1 || snap.Counter(CASFailures) != 4 {
			t.Fatalf("%s: counters not fanned out: %+v", name, snap.Counters)
		}
		if snap.Series[EnqLatency].Count != 1 {
			t.Fatalf("%s: series not fanned out", name)
		}
	}
}

func TestTeeForwardsEvents(t *testing.T) {
	ev := &capturingEvents{}
	plain := New()

	// Either side event-capable → the tee is an EventRecorder.
	for _, rec := range []Recorder{Tee(ev, plain), Tee(plain, ev)} {
		er := Events(rec)
		if er == nil {
			t.Fatal("tee with an event-capable side lost EventRecorder capability")
		}
		er.Event(EvSrvSubmit, LaneDefault, 1)
	}
	if len(ev.events) != 2 {
		t.Fatalf("event-capable side got %d events, want 2", len(ev.events))
	}
	// Counters still reach both sides through the event-capable tee.
	Tee(ev, plain).Inc(SrvSubmits)
	if plain.Snapshot().Counter(SrvSubmits) != 1 || ev.Snapshot().Counter(SrvSubmits) != 1 {
		t.Fatal("counters did not fan out through the event tee")
	}

	// Neither side event-capable → no event interface.
	if er := Events(Tee(New(), New())); er != nil {
		t.Fatalf("counters-only tee claims events: %v", er)
	}
}
