package obs_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/queue/msq"
)

func TestStatsCountersAndSnapshot(t *testing.T) {
	s := obs.New()
	s.Inc(obs.CASAttempts)
	s.Add(obs.CASAttempts, 9)
	s.Inc(obs.CASFailures)
	s.Observe(obs.EnqLatency, 100)
	s.Observe(obs.EnqLatency, 200)

	snap := s.Snapshot()
	if got := snap.Counter(obs.CASAttempts); got != 10 {
		t.Errorf("cas_attempts = %d, want 10", got)
	}
	if got := snap.CASFailureRate(); got != 0.1 {
		t.Errorf("failure rate = %v, want 0.1", got)
	}
	h := snap.Series[obs.EnqLatency]
	if h.Count != 2 || h.Sum != 300 {
		t.Errorf("enq hist count=%d sum=%d", h.Count, h.Sum)
	}
}

func TestLocalShardsAggregate(t *testing.T) {
	s := obs.New()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		l := s.Local()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Inc(obs.EnqOps)
				l.Observe(obs.DeqLatency, uint64(i))
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Counter(obs.EnqOps); got != goroutines*per {
		t.Errorf("enq_ops = %d, want %d", got, goroutines*per)
	}
	if got := snap.Series[obs.DeqLatency].Count; got != goroutines*per {
		t.Errorf("deq hist count = %d, want %d", got, goroutines*per)
	}
}

func TestNormalize(t *testing.T) {
	if obs.Normalize(nil) != nil {
		t.Error("Normalize(nil) != nil")
	}
	if obs.Normalize(obs.Nop{}) != nil {
		t.Error("Normalize(Nop{}) != nil")
	}
	s := obs.New()
	if obs.Normalize(s) != obs.Recorder(s) {
		t.Error("Normalize(Stats) changed the recorder")
	}
}

func TestMergeAndFormat(t *testing.T) {
	a := obs.New()
	a.Inc(obs.TxStarts)
	a.Inc(obs.TxCommits)
	b := obs.New()
	b.Inc(obs.TxStarts)
	b.Inc(obs.TxAborts)
	b.Inc(obs.TxAbortsConflict)

	snap := a.Snapshot()
	snap.Merge(b.Snapshot())
	if snap.Counter(obs.TxStarts) != 2 {
		t.Fatalf("tx_starts = %d", snap.Counter(obs.TxStarts))
	}
	if snap.AbortRate() != 0.5 {
		t.Errorf("abort rate = %v", snap.AbortRate())
	}
	htm := snap.FormatHTM()
	if !strings.Contains(htm, "conflict=1") {
		t.Errorf("FormatHTM missing conflict breakdown: %q", htm)
	}
	if s := snap.FormatCoherence(); s != "" {
		t.Errorf("FormatCoherence with no messages = %q, want empty", s)
	}
}

func TestInstrumentObservesLatency(t *testing.T) {
	s := obs.New()
	q := obs.Instrument[uint64](msq.New[uint64](), s)
	q.Enqueue(1)
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	q.Dequeue() // empty
	snap := s.Snapshot()
	if snap.Series[obs.EnqLatency].Count != 1 {
		t.Errorf("enq observations = %d, want 1", snap.Series[obs.EnqLatency].Count)
	}
	if snap.Series[obs.DeqLatency].Count != 2 {
		t.Errorf("deq observations = %d, want 2", snap.Series[obs.DeqLatency].Count)
	}
}

func TestInstrumentNopUnwrapped(t *testing.T) {
	q := msq.New[uint64]()
	if got := obs.Instrument[uint64](q, obs.Nop{}); got != any(q) {
		t.Error("Instrument with Nop recorder did not return the queue unwrapped")
	}
	if got := obs.Instrument[uint64](q, nil); got != any(q) {
		t.Error("Instrument with nil recorder did not return the queue unwrapped")
	}
}
