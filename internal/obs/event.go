package obs

// This file defines the timeline-event extension of the observability
// layer. Counters (obs.Counter) say how much; events say when and why:
// each event is a point on a per-lane timeline, and the flight recorder in
// repro/internal/trace captures them into lock-free ring buffers for
// export as Chrome trace_event JSON and for reconstruction of the paper's
// temporal claims — §3's tripped-writer serialization chains and §4.3's
// cross-socket abort asymmetry — which aggregate counters cannot show.
//
// Instrumented code holds an EventRecorder field that is nil when tracing
// is off (mirroring the Recorder discipline), so the disabled path is one
// predictable nil check per event site.

// EventKind identifies one timeline event type.
type EventKind uint8

const (
	// Operation window events. EnqEnd/DeqEnd arg is 1 for a successful
	// operation, 0 for an empty dequeue.
	EvEnqStart EventKind = iota
	EvEnqEnd
	EvDeqStart
	EvDeqEnd

	// try_append CAS events (queue layer) and raw CAS events (machine
	// layer). Arg is the cache line on the machine layer, 0 natively.
	EvCASAttempt
	EvCASFailure
	EvCASFallback

	// HTM events (machine layer). EvTxAbort's arg packs the abort reason
	// bits, the conflicting requester core, and the conflicting line (see
	// AbortArg); begin/commit args are the transaction id.
	EvTxBegin
	EvTxCommit
	EvTxAbort

	// Basket lifecycle: a basket opens when its node is linked into the
	// queue and closes when its empty bit is set. Arg identifies the
	// basket (node address on the simulated track, a queue-local sequence
	// number natively).
	EvBasketOpen
	EvBasketClose

	// Coherence read/write ownership handoffs (machine layer,
	// machine.SetRecorder). Arg is the cache line.
	EvCohGetS
	EvCohGetM

	// EvFaultInject marks one injector-produced fault (machine layer). Arg
	// is the fault kind (machine.FaultSpurious, machine.FaultDisabled).
	EvFaultInject

	// Job-queue service lifecycle events (repro/service). Arg is the job
	// id throughout, so a trace viewer can follow one job from submit
	// through redeliveries to its ack or dead-lettering. They render as
	// instants in the Chrome export.
	EvSrvSubmit
	EvSrvLease
	EvSrvAck
	EvSrvNack
	EvSrvExpire
	EvSrvDLQ

	// NumEventKinds bounds the enum; it is not an event kind.
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	EvEnqStart:    "enq_start",
	EvEnqEnd:      "enq_end",
	EvDeqStart:    "deq_start",
	EvDeqEnd:      "deq_end",
	EvCASAttempt:  "cas_attempt",
	EvCASFailure:  "cas_failure",
	EvCASFallback: "cas_fallback",
	EvTxBegin:     "tx_begin",
	EvTxCommit:    "tx_commit",
	EvTxAbort:     "tx_abort",
	EvBasketOpen:  "basket_open",
	EvBasketClose: "basket_close",
	EvCohGetS:     "coh_gets",
	EvCohGetM:     "coh_getm",
	EvFaultInject: "fault_inject",
	EvSrvSubmit:   "srv_submit",
	EvSrvLease:    "srv_lease",
	EvSrvAck:      "srv_ack",
	EvSrvNack:     "srv_nack",
	EvSrvExpire:   "srv_expire",
	EvSrvDLQ:      "srv_dlq",
}

// String returns the event kind's snake_case name.
func (k EventKind) String() string {
	if k < NumEventKinds {
		return eventNames[k]
	}
	return "?"
}

// EventKindOf returns the kind with the given snake_case name (the inverse
// of String), for decoding exported traces.
func EventKindOf(name string) (EventKind, bool) {
	for k, n := range eventNames {
		if n == name {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Abort reason bits carried in an EvTxAbort arg.
const (
	AbortConflict uint8 = 1 << iota
	AbortExplicit
	AbortNested
	AbortCapacity
	AbortSpurious
	// AbortTripped marks a conflict abort that hit a writer already
	// draining its xend — the tripped-writer problem of paper §3.4.
	AbortTripped
	// AbortDisabled marks a transaction refused at _xbegin because HTM is
	// disabled (machine.FaultPlan.DisableHTM / DisableHTMAfter).
	AbortDisabled
)

const (
	abortReqShift  = 8
	abortLineShift = 16
)

// AbortArg packs an EvTxAbort payload: the reason bits, the conflicting
// requester core (or a negative value when unknown), and the conflicting
// cache line (0 when unknown). Lines occupy the top 48 bits, which covers
// the simulated machine's address space.
func AbortArg(reason uint8, requester int, line uint64) uint64 {
	arg := uint64(reason)
	if requester >= 0 && requester < 255 {
		arg |= uint64(requester+1) << abortReqShift
	}
	return arg | line<<abortLineShift
}

// AbortReason unpacks the reason bits of an EvTxAbort arg.
func AbortReason(arg uint64) uint8 { return uint8(arg) }

// AbortRequester unpacks the conflicting requester core of an EvTxAbort
// arg, or -1 when it was unknown.
func AbortRequester(arg uint64) int {
	r := int(arg>>abortReqShift) & 0xff
	return r - 1
}

// AbortLine unpacks the conflicting cache line of an EvTxAbort arg.
func AbortLine(arg uint64) uint64 { return arg >> abortLineShift }

// Lanes are int32 timeline identifiers. Queue-layer lanes are small
// non-negative integers (producer handle ids, simulated thread ids), or
// LaneDefault to use the emitting trace handle's own lane. Machine-layer
// events tag the emitting core through MachineLane, a disjoint namespace,
// so the two layers render as separate process groups in a trace viewer.
const (
	// LaneDefault asks the receiving EventRecorder to substitute its own
	// lane (each flight-recorder handle owns one).
	LaneDefault int32 = -1

	machineLaneBit int32 = 1 << 20
)

// MachineLane returns the lane tagging the given simulated core.
func MachineLane(core int) int32 { return machineLaneBit | int32(core) }

// IsMachineLane reports whether lane is a machine-layer core lane.
func IsMachineLane(lane int32) bool { return lane >= 0 && lane&machineLaneBit != 0 }

// LaneCore returns the core id of a machine-layer lane.
func LaneCore(lane int32) int { return int(lane &^ machineLaneBit) }

// EventRecorder extends Recorder with timeline events. The flight
// recorder (repro/internal/trace) implements it; plain Stats does not.
// Instrumentation derives an EventRecorder field from its configured
// Recorder via Events at construction time and nil-checks it per site, so
// counter-only telemetry pays nothing for the event hooks.
type EventRecorder interface {
	Recorder
	// Event records one timeline event on the given lane (LaneDefault for
	// the recorder's own lane) with a kind-specific argument.
	Event(k EventKind, lane int32, arg uint64)
}

// Events returns r as an EventRecorder, or nil when r is nil, a Nop, or a
// counters-only recorder. Constructors call it once so hot paths get the
// usual single-nil-check disabled path.
func Events(r Recorder) EventRecorder {
	if er, ok := Normalize(r).(EventRecorder); ok {
		return er
	}
	return nil
}
