package obs

import (
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// shard is one padded block of counters and histograms. Shards are written
// with uncontended atomics (each handle owns one) and read by Snapshot,
// which may run concurrently with writers.
type shard struct {
	_ [64]byte // keep neighboring shards off this shard's lines
	//lf:contended the hot per-handle event counters
	//lint:ignore padcheck single-writer shard: counters and hists share the owner's lines by design; the guard pads isolate the shard itself
	counters [NumCounters]atomic.Uint64
	hists    [NumSeries]histShard
	_        [64]byte
}

type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [stats.HistBuckets]atomic.Uint64
}

func (s *shard) inc(c Counter)           { s.counters[c].Add(1) }
func (s *shard) add(c Counter, d uint64) { s.counters[c].Add(d) }
func (s *shard) observe(se Series, v uint64) {
	h := &s.hists[se]
	h.buckets[stats.BucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Stats is the concrete Recorder: a base shard for callers that record
// through the Stats itself, plus any number of per-handle shards issued by
// Local. All shards are summed by Snapshot.
type Stats struct {
	base shard

	mu     sync.Mutex
	locals []*Local
}

// New returns an empty Stats recorder.
func New() *Stats { return &Stats{} }

// Inc implements Recorder on the shared base shard.
//
//lf:hotpath
func (s *Stats) Inc(c Counter) { s.base.inc(c) }

// Add implements Recorder on the shared base shard.
//
//lf:hotpath
func (s *Stats) Add(c Counter, d uint64) { s.base.add(c, d) }

// Observe implements Recorder on the shared base shard.
//
//lf:hotpath
func (s *Stats) Observe(se Series, v uint64) { s.base.observe(se, v) }

// Local issues a per-handle Recorder with its own padded shard, so that
// goroutines recording at high rates (e.g. one SBQ producer handle each)
// never contend on counter cache lines. The shard is included in every
// subsequent Snapshot of s.
func (s *Stats) Local() *Local {
	l := &Local{parent: s}
	s.mu.Lock()
	s.locals = append(s.locals, l)
	s.mu.Unlock()
	return l
}

// Snapshot sums all shards into a plain-value Snapshot. It is safe to call
// while recording continues; the result is a consistent-enough point-in-time
// view (counters are read individually, not under a global lock).
func (s *Stats) Snapshot() Snapshot {
	var out Snapshot
	s.mu.Lock()
	shards := make([]*shard, 0, len(s.locals)+1)
	shards = append(shards, &s.base)
	for _, l := range s.locals {
		shards = append(shards, &l.shard)
	}
	s.mu.Unlock()
	for _, sh := range shards {
		for c := Counter(0); c < NumCounters; c++ {
			out.Counters[c] += sh.counters[c].Load()
		}
		for se := Series(0); se < NumSeries; se++ {
			h := &sh.hists[se]
			dst := &out.Series[se]
			for i := range h.buckets {
				dst.Buckets[i] += h.buckets[i].Load()
			}
			dst.Count += h.count.Load()
			dst.Sum += h.sum.Load()
		}
	}
	return out
}

// Local is a per-handle Recorder issued by Stats.Local. It must be used by
// one goroutine at a time (the same discipline as an SBQ handle), though
// its writes are atomic so Snapshot may read it concurrently.
type Local struct {
	parent *Stats
	shard  shard
}

// Inc implements Recorder on the handle's private shard.
//
//lf:hotpath
func (l *Local) Inc(c Counter) { l.shard.inc(c) }

// Add implements Recorder on the handle's private shard.
//
//lf:hotpath
func (l *Local) Add(c Counter, d uint64) { l.shard.add(c, d) }

// Observe implements Recorder on the handle's private shard.
//
//lf:hotpath
func (l *Local) Observe(se Series, v uint64) { l.shard.observe(se, v) }

// Snapshot returns the parent Stats' aggregate snapshot (all shards, not
// just this handle's).
func (l *Local) Snapshot() Snapshot { return l.parent.Snapshot() }
