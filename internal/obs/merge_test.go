package obs

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// TestSnapshotMergeZeroAndEmpty covers the degenerate shapes: merging an
// empty snapshot is the identity, and merging into an empty one copies.
func TestSnapshotMergeZeroAndEmpty(t *testing.T) {
	src := New()
	src.Inc(CASAttempts)
	src.Add(CASFailures, 3)
	src.Observe(EnqLatency, 0) // zero value: bucket 0
	src.Observe(EnqLatency, 250)
	snap := src.Snapshot()

	before := snap
	snap.Merge(Snapshot{}) // empty into populated
	if snap != before {
		t.Fatal("merge with empty snapshot changed the receiver")
	}

	var empty Snapshot
	empty.Merge(before) // populated into empty
	if empty != before {
		t.Fatal("merge into empty snapshot is not a copy")
	}
	if empty.Series[EnqLatency].Buckets[0] != 1 {
		t.Fatalf("zero observation lost: %+v", empty.Series[EnqLatency])
	}
}

// TestSnapshotMergeAccumulates verifies counters add and every series
// histogram merges bucket-wise, including out-of-span values clamped into
// the last bucket.
func TestSnapshotMergeAccumulates(t *testing.T) {
	a, b := New(), New()
	a.Add(EnqOps, 10)
	b.Add(EnqOps, 5)
	b.Add(DeqOps, 7)
	a.Observe(DeqLatency, 100)
	b.Observe(DeqLatency, 100)
	b.Observe(DeqLatency, math.MaxUint64) // clamps to the last bucket

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Counter(EnqOps); got != 15 {
		t.Fatalf("EnqOps = %d, want 15", got)
	}
	if got := sa.Counter(DeqOps); got != 7 {
		t.Fatalf("DeqOps = %d, want 7", got)
	}
	h := sa.Series[DeqLatency]
	if h.Count != 3 {
		t.Fatalf("series count = %d, want 3", h.Count)
	}
	if h.Buckets[stats.BucketOf(100)] != 2 {
		t.Fatalf("bucket(100) = %d, want 2", h.Buckets[stats.BucketOf(100)])
	}
	if h.Buckets[stats.HistBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h.Buckets[stats.HistBuckets-1])
	}

	// Merge is not idempotent: a second merge adds again.
	sa.Merge(sb)
	if got := sa.Counter(EnqOps); got != 20 {
		t.Fatalf("after second merge EnqOps = %d, want 20", got)
	}
}

// TestSnapshotMergeAdditivityAcrossTenants models the export layer's
// invariant: when every per-tenant recorder is tee'd into one global
// recorder, the merge of the per-tenant snapshots equals the global
// snapshot, counter for counter and bucket for bucket.
func TestSnapshotMergeAdditivityAcrossTenants(t *testing.T) {
	global := New()
	tenants := []*Stats{New(), New(), New()}
	for i, ts := range tenants {
		rec := Tee(ts, global)
		rec.Add(SrvSubmits, uint64(10*(i+1)))
		rec.Inc(SrvAcks)
		rec.Observe(LeaseLatency, uint64(1<<uint(i+4)))
		rec.Observe(AckLatency, uint64(100*(i+1)))
	}

	var merged Snapshot
	for _, ts := range tenants {
		merged.Merge(ts.Snapshot())
	}
	if got, want := merged, global.Snapshot(); got != want {
		t.Fatalf("merged per-tenant snapshots != global snapshot:\n got %+v\nwant %+v", got, want)
	}
	if merged.Counter(SrvSubmits) != 60 || merged.Counter(SrvAcks) != 3 {
		t.Fatalf("unexpected merged counters: submits=%d acks=%d",
			merged.Counter(SrvSubmits), merged.Counter(SrvAcks))
	}
}

// TestSnapshotRateZeroDenominator pins the division-by-zero contract the
// export layer's derived gauges rely on: zero denominator → rate 0, never
// NaN/Inf, even with a nonzero numerator.
func TestSnapshotRateZeroDenominator(t *testing.T) {
	var s Snapshot
	if got := s.Rate(CASFailures, CASAttempts); got != 0 {
		t.Fatalf("Rate on empty snapshot = %v, want 0", got)
	}
	s.Counters[CASFailures] = 7 // numerator without denominator
	got := s.Rate(CASFailures, CASAttempts)
	if got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Rate with zero denominator = %v, want 0", got)
	}
	if got := s.CASFailureRate(); got != 0 {
		t.Fatalf("CASFailureRate with zero attempts = %v, want 0", got)
	}
	if got := s.AbortRate(); got != 0 {
		t.Fatalf("AbortRate with zero starts = %v, want 0", got)
	}
	s.Counters[CASAttempts] = 14
	if got := s.CASFailureRate(); got != 0.5 {
		t.Fatalf("CASFailureRate = %v, want 0.5", got)
	}
}
