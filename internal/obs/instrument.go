package obs

import (
	"time"

	"repro/queue"
)

// Instrument wraps q so that every operation's wall-clock latency is
// observed into r's EnqLatency/DeqLatency histograms. Counters are NOT
// recorded here — the queue implementations record their own (pass the
// same Recorder to the queue's WithRecorder option to get both).
//
// With a nil (or Nop) recorder the queue is returned unwrapped, so an
// uninstrumented pipeline pays nothing.
func Instrument[T any](q queue.Queue[T], r Recorder) queue.Queue[T] {
	if r = Normalize(r); r == nil {
		return q
	}
	return &instrumented[T]{q: q, r: r}
}

type instrumented[T any] struct {
	q queue.Queue[T]
	r Recorder
}

//lf:hotpath
func (w *instrumented[T]) Enqueue(v T) {
	start := time.Now()
	w.q.Enqueue(v)
	w.r.Observe(EnqLatency, uint64(time.Since(start).Nanoseconds()))
}

//lf:hotpath
func (w *instrumented[T]) Dequeue() (T, bool) {
	start := time.Now()
	v, ok := w.q.Dequeue()
	w.r.Observe(DeqLatency, uint64(time.Since(start).Nanoseconds()))
	return v, ok
}
