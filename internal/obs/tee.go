package obs

// Tee fans telemetry out to two recorders, so one instrumentation site can
// feed several aggregation scopes at once — e.g. a queue shard recording
// into its own Stats, its tenant's Stats, and the process-wide Stats that
// the chaos harness or /metrics exporter reads. Scopes compose by chaining:
// Tee(shard, Tee(tenant, global)).
//
// Both sides are Normalized; when either is nil the other is returned
// as-is, so a disabled scope costs nothing and a fully disabled tee is a
// plain nil Recorder (preserving the single-nil-check discipline at
// instrumentation sites). When either side implements EventRecorder the
// result does too, forwarding events to every event-capable side, so
// tracing keeps working through a tee.
func Tee(a, b Recorder) Recorder {
	a, b = Normalize(a), Normalize(b)
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	ea, eaOK := a.(EventRecorder)
	eb, ebOK := b.(EventRecorder)
	if eaOK || ebOK {
		return &teeEvents{tee{a, b}, ea, eb}
	}
	return &tee{a, b}
}

type tee struct{ a, b Recorder }

// Inc implements Recorder on both sides.
//
//lf:hotpath
func (t *tee) Inc(c Counter) {
	t.a.Inc(c)
	t.b.Inc(c)
}

// Add implements Recorder on both sides.
//
//lf:hotpath
func (t *tee) Add(c Counter, d uint64) {
	t.a.Add(c, d)
	t.b.Add(c, d)
}

// Observe implements Recorder on both sides.
//
//lf:hotpath
func (t *tee) Observe(s Series, v uint64) {
	t.a.Observe(s, v)
	t.b.Observe(s, v)
}

// teeEvents is the event-capable tee: counters go to both sides, events to
// each side that can take them (ea/eb are pre-resolved at construction so
// the per-event cost is a nil check, not a type assertion).
type teeEvents struct {
	tee
	ea, eb EventRecorder
}

// Event implements EventRecorder on every event-capable side.
//
//lf:hotpath
func (t *teeEvents) Event(k EventKind, lane int32, arg uint64) {
	if t.ea != nil {
		t.ea.Event(k, lane, arg)
	}
	if t.eb != nil {
		t.eb.Event(k, lane, arg)
	}
}
