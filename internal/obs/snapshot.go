package obs

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Snapshot is a point-in-time aggregation of a Stats recorder: one value
// per Counter and one stats.Histogram per Series. It is a plain value type;
// tests and tools may also build Snapshots directly.
type Snapshot struct {
	Counters [NumCounters]uint64
	Series   [NumSeries]stats.Histogram
}

// Counter returns the value of counter c.
func (s Snapshot) Counter(c Counter) uint64 { return s.Counters[c] }

// Merge adds o's counters and histograms into s.
func (s *Snapshot) Merge(o Snapshot) {
	for c := range s.Counters {
		s.Counters[c] += o.Counters[c]
	}
	for se := range s.Series {
		s.Series[se].Merge(o.Series[se])
	}
}

// Rate returns num/den as a fraction in [0,1], or 0 when den is zero.
func (s Snapshot) Rate(num, den Counter) float64 {
	d := s.Counters[den]
	if d == 0 {
		return 0
	}
	return float64(s.Counters[num]) / float64(d)
}

// CASFailureRate returns the fraction of CAS attempts that failed — the
// paper's central per-queue signal (§3, §6.1).
func (s Snapshot) CASFailureRate() float64 { return s.Rate(CASFailures, CASAttempts) }

// TxSoftAbortRate returns the fraction of contended try_appends the native
// TxCAS engine resolved by soft abort (no CAS issued) rather than a failed
// CAS: soft-aborts / (soft-aborts + failures). It is the profit-from-
// failure conversion rate on real cores.
func (s Snapshot) TxSoftAbortRate() float64 {
	den := s.Counters[TxSoftAborts] + s.Counters[CASFailures]
	if den == 0 {
		return 0
	}
	return float64(s.Counters[TxSoftAborts]) / float64(den)
}

// AbortRate returns the fraction of started transactions that aborted.
func (s Snapshot) AbortRate() float64 { return s.Rate(TxAborts, TxStarts) }

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// FormatQueue renders the queue-level counters (ops, retries, CAS, basket
// outcomes) as one or two lines. Zero groups are omitted.
func (s Snapshot) FormatQueue() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops: enq=%d deq=%d empty=%d retries: enq=%d deq=%d",
		s.Counters[EnqOps], s.Counters[DeqOps], s.Counters[DeqEmpty],
		s.Counters[EnqRetries], s.Counters[DeqRetries])
	if s.Counters[CASAttempts] > 0 {
		fmt.Fprintf(&b, "\ncas: attempts=%d failures=%d (%s failed)",
			s.Counters[CASAttempts], s.Counters[CASFailures], pct(s.CASFailureRate()))
		if s.Counters[CASFallbacks] > 0 {
			fmt.Fprintf(&b, " fallbacks=%d", s.Counters[CASFallbacks])
		}
	}
	if s.Counters[TxSoftAborts]+s.Counters[TxSharerHints] > 0 {
		fmt.Fprintf(&b, "\ntxcas: soft-aborts=%d (%s of conflicts) sharer-hints=%d",
			s.Counters[TxSoftAborts], pct(s.TxSoftAbortRate()), s.Counters[TxSharerHints])
	}
	if s.Counters[BasketInserts]+s.Counters[BasketInsertFails]+
		s.Counters[BasketExtracts]+s.Counters[BasketExtractFails] > 0 {
		fmt.Fprintf(&b, "\nbasket: insert=%d/fail=%d extract=%d/fail=%d",
			s.Counters[BasketInserts], s.Counters[BasketInsertFails],
			s.Counters[BasketExtracts], s.Counters[BasketExtractFails])
	}
	if s.Counters[EnqBatches]+s.Counters[DeqBatches]+s.Counters[DeqSteals]+
		s.Counters[DeqStealMisses] > 0 {
		fmt.Fprintf(&b, "\nbatch: enq=%d deq=%d steals=%d steal-misses=%d",
			s.Counters[EnqBatches], s.Counters[DeqBatches], s.Counters[DeqSteals],
			s.Counters[DeqStealMisses])
	}
	return b.String()
}

// FormatService renders the job-queue service counters (repro/service), or
// "" when none were recorded.
func (s Snapshot) FormatService() string {
	var total uint64
	for c := SrvSubmits; c <= SrvRejects; c++ {
		total += s.Counters[c]
	}
	if total == 0 {
		return ""
	}
	return fmt.Sprintf("service: submits=%d leases=%d redeliveries=%d acks=%d nacks=%d expired=%d dlq=%d rejects=%d",
		s.Counters[SrvSubmits], s.Counters[SrvLeases], s.Counters[SrvRedeliveries],
		s.Counters[SrvAcks], s.Counters[SrvNacks], s.Counters[SrvExpired],
		s.Counters[SrvDLQ], s.Counters[SrvRejects])
}

// FormatHTM renders the HTM abort-code breakdown, or "" when no
// transactions were recorded.
func (s Snapshot) FormatHTM() string {
	if s.Counters[TxStarts] == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "htm: started=%d commits=%d aborts=%d (%s)",
		s.Counters[TxStarts], s.Counters[TxCommits], s.Counters[TxAborts], pct(s.AbortRate()))
	fmt.Fprintf(&b, "\n     abort codes: conflict=%d explicit=%d nested=%d capacity=%d spurious=%d tripped-writers=%d fix-stalls=%d",
		s.Counters[TxAbortsConflict], s.Counters[TxAbortsExplicit], s.Counters[TxAbortsNested],
		s.Counters[TxAbortsCapacity], s.Counters[TxAbortsSpurious],
		s.Counters[TxTrippedWriters], s.Counters[TxFixStalls])
	if s.Counters[TxAbortsDisabled] > 0 {
		fmt.Fprintf(&b, " disabled=%d", s.Counters[TxAbortsDisabled])
	}
	if s.Counters[FaultsInjected]+s.Counters[FaultHopJitter] > 0 {
		fmt.Fprintf(&b, "\n     faults: injected=%d jittered-hops=%d",
			s.Counters[FaultsInjected], s.Counters[FaultHopJitter])
	}
	return b.String()
}

// FormatCoherence renders the coherence-message breakdown, or "" when no
// messages were recorded.
func (s Snapshot) FormatCoherence() string {
	var total uint64
	for c := CohGetS; c <= CohDownAck; c++ {
		total += s.Counters[c]
	}
	if total == 0 {
		return ""
	}
	parts := make([]string, 0, int(CohDownAck-CohGetS)+1)
	for c := CohGetS; c <= CohDownAck; c++ {
		if v := s.Counters[c]; v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", strings.TrimPrefix(c.String(), "coh_"), v))
		}
	}
	return "coherence msgs: " + strings.Join(parts, " ")
}

// FormatLatency renders the non-empty latency series, or "" when none.
func (s Snapshot) FormatLatency() string {
	var lines []string
	for se := Series(0); se < NumSeries; se++ {
		if h := s.Series[se]; h.Count > 0 {
			lines = append(lines, fmt.Sprintf("%s: %s", se, h))
		}
	}
	return strings.Join(lines, "\n")
}

// String renders every non-empty section of the snapshot.
func (s Snapshot) String() string {
	var sections []string
	for _, sec := range []string{s.FormatQueue(), s.FormatService(), s.FormatLatency(), s.FormatHTM(), s.FormatCoherence()} {
		if sec != "" {
			sections = append(sections, sec)
		}
	}
	return strings.Join(sections, "\n")
}
