package export

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

func testCollection(t *testing.T) (*Collection, *obs.Stats, *obs.Stats) {
	t.Helper()
	c := NewCollection()
	base := time.Unix(1000, 0)
	c.now = func() time.Time { base = base.Add(time.Second); return base }
	a, b := obs.New(), obs.New()
	c.AddSnapshot(Labels{"tenant": "alpha", "queue": "Sharded-FAA"}, a.Snapshot)
	c.AddSnapshot(Labels{"tenant": "beta", "queue": "SBQ"}, b.Snapshot)
	return c, a, b
}

func scrape(t *testing.T, c *Collection) *Scrape {
	t.Helper()
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse of own output: %v\n%s", err, b.String())
	}
	return s
}

func TestWriteRoundTrip(t *testing.T) {
	c, a, b := testCollection(t)
	a.Add(obs.SrvSubmits, 100)
	a.Add(obs.CASAttempts, 50)
	a.Add(obs.CASFailures, 10)
	b.Add(obs.SrvSubmits, 7)
	a.Observe(obs.LeaseLatency, 0)
	a.Observe(obs.LeaseLatency, 5)
	a.Observe(obs.LeaseLatency, 1000)

	s := scrape(t, c)
	alpha := Labels{"tenant": "alpha", "queue": "Sharded-FAA"}
	if v, ok := s.Value("sbq_srv_submits_total", alpha); !ok || v != 100 {
		t.Fatalf("alpha submits = %v,%v want 100", v, ok)
	}
	if got := s.Sum("sbq_srv_submits_total"); got != 107 {
		t.Fatalf("Sum(submits) = %v, want 107", got)
	}
	if s.Types["sbq_srv_submits_total"] != "counter" {
		t.Fatalf("submits TYPE = %q", s.Types["sbq_srv_submits_total"])
	}
	if s.Types["sbq_lease_ns"] != "histogram" {
		t.Fatalf("lease TYPE = %q", s.Types["sbq_lease_ns"])
	}
	if v, ok := s.Value("sbq_lease_ns_count", alpha); !ok || v != 3 {
		t.Fatalf("lease count = %v,%v want 3", v, ok)
	}
	if v, ok := s.Value("sbq_lease_ns_sum", alpha); !ok || v != 1005 {
		t.Fatalf("lease sum = %v,%v want 1005", v, ok)
	}
	// le="0" catches the zero observation; le="7" catches 0 and 5.
	withLE := func(le string) Labels {
		l := Labels{"le": le}
		for k, v := range alpha {
			l[k] = v
		}
		return l
	}
	if v, _ := s.Value("sbq_lease_ns_bucket", withLE("0")); v != 1 {
		t.Fatalf("bucket le=0 = %v, want 1", v)
	}
	if v, _ := s.Value("sbq_lease_ns_bucket", withLE("7")); v != 2 {
		t.Fatalf("bucket le=7 = %v, want 2", v)
	}
	if v, _ := s.Value("sbq_lease_ns_bucket", withLE("+Inf")); v != 3 {
		t.Fatalf("bucket le=+Inf = %v, want 3", v)
	}
	// CAS failure rate gauge appears for alpha (attempts > 0) only.
	if v, ok := s.Value(CASFailureRateName, alpha); !ok || math.Abs(v-0.2) > 1e-9 {
		t.Fatalf("cas failure rate = %v,%v want 0.2", v, ok)
	}
	if _, ok := s.Value(CASFailureRateName, Labels{"tenant": "beta", "queue": "SBQ"}); ok {
		t.Fatal("beta has a CAS rate gauge despite zero attempts")
	}
}

func TestWriteOmitsZeroSeries(t *testing.T) {
	c, a, _ := testCollection(t)
	a.Inc(obs.EnqOps)
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "sbq_enq_ops_total") {
		t.Fatalf("live counter missing:\n%s", out)
	}
	for _, absent := range []string{"sbq_deq_ops_total", "sbq_ack_ns", "tenant=\"beta\""} {
		if strings.Contains(out, absent) {
			t.Fatalf("zero-valued %s leaked into output:\n%s", absent, out)
		}
	}
}

func TestWriteEscapesLabels(t *testing.T) {
	c := NewCollection()
	st := obs.New()
	st.Inc(obs.EnqOps)
	c.AddSnapshot(Labels{"tenant": "a\"b\\c\nd"}, st.Snapshot)
	s := scrape(t, c)
	if v, ok := s.Value("sbq_enq_ops_total", Labels{"tenant": "a\"b\\c\nd"}); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %v %v", v, ok)
	}
}

func TestHistogramBucketBoundsMatchStats(t *testing.T) {
	// Every value must land at-or-under its emitted inclusive bound.
	c := NewCollection()
	st := obs.New()
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 38} {
		st.Observe(obs.EnqLatency, v)
	}
	c.AddSnapshot(nil, st.Snapshot)
	s := scrape(t, c)
	for _, v := range []uint64{0, 1, 3, 7, 1023} {
		le := uint64(1)<<uint(stats.BucketOf(v)) - 1
		got, ok := s.Value("sbq_enq_ns_bucket", Labels{"le": strings.TrimSpace(formatValue(float64(le)))})
		if !ok {
			t.Fatalf("no bucket for le=%d", le)
		}
		var want float64
		for _, x := range []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 38} {
			if x <= le {
				want++
			}
		}
		if got != want {
			t.Fatalf("cumulative at le=%d = %v, want %v", le, got, want)
		}
	}
}

func TestGauges(t *testing.T) {
	c := NewCollection()
	depth := 3.0
	c.AddGauges(func() []Sample {
		return []Sample{{Name: "sbqd_tenant_depth", Labels: Labels{"tenant": "a"}, Value: depth}}
	})
	s := scrape(t, c)
	if v, ok := s.Value("sbqd_tenant_depth", Labels{"tenant": "a"}); !ok || v != 3 {
		t.Fatalf("gauge = %v,%v", v, ok)
	}
	depth = 1 // gauges may go down; no monotonicity violation
	s2 := scrape(t, c)
	if viol := CheckMonotonic(s, s2); len(viol) != 0 {
		t.Fatalf("gauge decrease flagged as violation: %v", viol)
	}
}

func TestServeHTTP(t *testing.T) {
	c, a, _ := testCollection(t)
	a.Inc(obs.EnqOps)
	rr := httptest.NewRecorder()
	c.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if got := rr.Header().Get("Content-Type"); got != ContentType {
		t.Fatalf("content type %q", got)
	}
	if _, err := Parse(rr.Body); err != nil {
		t.Fatalf("served page does not parse: %v", err)
	}
}

func TestScrapeToScrapeMonotonic(t *testing.T) {
	c, a, b := testCollection(t)
	a.Add(obs.SrvSubmits, 10)
	a.Observe(obs.AckLatency, 100)
	first := scrape(t, c)

	a.Add(obs.SrvSubmits, 5)
	b.Inc(obs.SrvSubmits) // new label set appearing is fine
	a.Observe(obs.AckLatency, 200)
	second := scrape(t, c)
	if viol := CheckMonotonic(first, second); len(viol) != 0 {
		t.Fatalf("unexpected violations: %v", viol)
	}
	// Reversed order must be detected.
	if viol := CheckMonotonic(second, first); len(viol) == 0 {
		t.Fatal("reversed scrapes produced no violations")
	}
}
