package export

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

func snapWith(f func(r obs.Recorder)) obs.Snapshot {
	st := obs.New()
	f(st)
	return st.Snapshot()
}

// TestWindowDeltaCorrectness is the satellite coverage for delta arithmetic
// across counter-monotonic windows: priming, exact counter and histogram
// differences over several advances, and per-second rates.
func TestWindowDeltaCorrectness(t *testing.T) {
	st := obs.New()
	var w Window
	t0 := time.Unix(0, 0)

	st.Add(obs.SrvSubmits, 10)
	st.Observe(obs.LeaseLatency, 100)
	d := w.Advance(t0, st.Snapshot())
	if !d.First || d.Elapsed != 0 {
		t.Fatalf("priming delta: %+v", d)
	}
	if d.Snapshot.Counters[obs.SrvSubmits] != 10 {
		t.Fatalf("priming delta = lifetime snapshot, got %d", d.Snapshot.Counters[obs.SrvSubmits])
	}
	if d.Rate(obs.SrvSubmits) != 0 {
		t.Fatal("zero-width window must rate to 0")
	}

	st.Add(obs.SrvSubmits, 30)
	st.Add(obs.CASAttempts, 100)
	st.Add(obs.CASFailures, 25)
	st.Observe(obs.LeaseLatency, 100)
	st.Observe(obs.LeaseLatency, 5000)
	d = w.Advance(t0.Add(2*time.Second), st.Snapshot())
	if d.First || d.Reset {
		t.Fatalf("steady delta flagged: %+v", d)
	}
	if got := d.Snapshot.Counters[obs.SrvSubmits]; got != 30 {
		t.Fatalf("windowed submits = %d, want 30", got)
	}
	if got := d.Rate(obs.SrvSubmits); got != 15 {
		t.Fatalf("rate = %v, want 15/s", got)
	}
	if got := d.CASFailureRate(); got != 0.25 {
		t.Fatalf("windowed CAS failure rate = %v, want 0.25", got)
	}
	h := d.Snapshot.Series[obs.LeaseLatency]
	if h.Count != 2 || h.Sum != 5100 {
		t.Fatalf("windowed histogram: count=%d sum=%d, want 2/5100", h.Count, h.Sum)
	}

	// A third window sees only what happened after the second.
	st.Inc(obs.SrvSubmits)
	d = w.Advance(t0.Add(4*time.Second), st.Snapshot())
	if got := d.Snapshot.Counters[obs.SrvSubmits]; got != 1 {
		t.Fatalf("third window submits = %d, want 1", got)
	}
	if got := d.Snapshot.Counters[obs.CASAttempts]; got != 0 {
		t.Fatalf("third window attempts = %d, want 0", got)
	}
}

func TestWindowReset(t *testing.T) {
	var w Window
	t0 := time.Unix(0, 0)
	w.Advance(t0, snapWith(func(r obs.Recorder) { r.Add(obs.SrvAcks, 50) }))
	// Source restarted: counters smaller than before.
	d := w.Advance(t0.Add(time.Second), snapWith(func(r obs.Recorder) { r.Add(obs.SrvAcks, 3) }))
	if !d.Reset {
		t.Fatal("reset not detected")
	}
	if got := d.Snapshot.Counters[obs.SrvAcks]; got != 3 {
		t.Fatalf("reset delta re-baselines at the new lifetime value, got %d", got)
	}
	// The window re-primes on the post-reset values.
	d = w.Advance(t0.Add(2*time.Second), snapWith(func(r obs.Recorder) { r.Add(obs.SrvAcks, 5) }))
	if d.Reset || d.Snapshot.Counters[obs.SrvAcks] != 2 {
		t.Fatalf("post-reset delta: %+v", d.Snapshot.Counters[obs.SrvAcks])
	}
}

func TestDeltaRatios(t *testing.T) {
	var d Delta
	if got := d.Ratio(obs.SrvAcks, obs.SrvSubmits); got != 0 {
		t.Fatalf("empty ratio = %v", got)
	}
	if got := d.StealMissRatio(); got != 0 || math.IsNaN(got) {
		t.Fatalf("empty steal-miss ratio = %v", got)
	}
	d.Snapshot.Counters[obs.DeqSteals] = 30
	d.Snapshot.Counters[obs.DeqStealMisses] = 10
	if got := d.StealMissRatio(); got != 0.25 {
		t.Fatalf("steal-miss ratio = %v, want 0.25", got)
	}
	d.Snapshot.Counters[obs.TxStarts] = 8
	d.Snapshot.Counters[obs.TxAborts] = 2
	if got := d.AbortRate(); got != 0.25 {
		t.Fatalf("abort rate = %v, want 0.25", got)
	}
}
