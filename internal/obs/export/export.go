// Package export turns the repository's internal observability state
// (repro/internal/obs counters, histograms, and snapshots) into a live
// telemetry plane: a windowed delta/rate engine (Window, Delta), a
// dependency-free Prometheus text-exposition (format 0.0.4) writer
// (Collection), and a parser/validator for the same format (Parse,
// CheckMonotonic) shared by the sbqtop dashboard and the CI metrics-smoke
// job.
//
// Everything here runs on the scrape side: sources are read through
// obs.Stats.Snapshot (atomic loads only), so exporting never adds work to
// queue hot paths. Scrape-side allocation is fine and unavoidable.
package export

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// ContentType is the Content-Type of Prometheus text exposition 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// namespace prefixes every exported metric name.
const namespace = "sbq"

// Labels is one metric's label set. Rendering is canonical (sorted by key),
// so equal maps produce byte-identical label strings.
type Labels map[string]string

// Sample is one gauge observation: a metric name, a label set, and a value.
// Gauge callbacks return these; the parser also produces them.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// LabeledSnapshot pairs an obs.Snapshot with the label set identifying its
// scope (tenant, queue, shard, ...).
type LabeledSnapshot struct {
	Labels Labels
	Snap   obs.Snapshot
}

// SnapshotSet produces labeled snapshots at scrape time. Returning the set
// per scrape (rather than registering fixed sources) lets dynamic scopes —
// tenants created on first submit, backends swapped mid-run — appear in the
// next scrape without re-registration.
type SnapshotSet func() []LabeledSnapshot

// GaugeSet produces gauge samples at scrape time (depths, in-flight counts,
// readiness — anything that can go down as well as up).
type GaugeSet func() []Sample

// CounterName returns counter c's exposition name (sbq_<name>_total).
func CounterName(c obs.Counter) string { return namespace + "_" + c.String() + "_total" }

// SeriesName returns series s's exposition histogram name (sbq_<name>).
func SeriesName(s obs.Series) string { return namespace + "_" + s.String() }

// The derived windowed-rate gauges the writer emits per snapshot source.
const (
	CASFailureRateName = namespace + "_cas_failure_rate"
	AbortRateName      = namespace + "_abort_rate"
	StealMissRateName  = namespace + "_steal_miss_rate"
)

// Collection aggregates snapshot and gauge sources and renders them as one
// Prometheus text-format page. It keeps a Window per snapshot label set, so
// each scrape also carries windowed derived rates (CAS-failure, abort,
// steal-miss) computed over the interval since the previous scrape — the
// paper's failure-rate signals without any PromQL. Safe for concurrent use;
// scrapes are serialized.
type Collection struct {
	mu      sync.Mutex
	snaps   []SnapshotSet
	gauges  []GaugeSet
	windows map[string]*Window
	now     func() time.Time
}

// NewCollection returns an empty Collection.
func NewCollection() *Collection {
	return &Collection{windows: make(map[string]*Window), now: time.Now}
}

// AddSnapshots registers a scrape-time snapshot producer.
func (c *Collection) AddSnapshots(s SnapshotSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps = append(c.snaps, s)
}

// AddSnapshot registers a single fixed-label snapshot source.
func (c *Collection) AddSnapshot(labels Labels, fn func() obs.Snapshot) {
	c.AddSnapshots(func() []LabeledSnapshot {
		return []LabeledSnapshot{{Labels: labels, Snap: fn()}}
	})
}

// AddGauges registers a scrape-time gauge producer.
func (c *Collection) AddGauges(g GaugeSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauges = append(c.gauges, g)
}

// ServeHTTP renders the collection as a Prometheus scrape response.
func (c *Collection) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_, _ = io.WriteString(w, b.String())
}

// Write renders one scrape in exposition format 0.0.4: every nonzero
// counter as a *_total family, every non-empty latency series as a
// histogram family (cumulative le buckets on the power-of-two bounds of
// repro/internal/stats), registered gauges, and the windowed derived-rate
// gauges. Zero-valued counters and empty histograms are omitted, so a
// series that has appeared once can only keep appearing (scrape-to-scrape
// monotonicity is checkable; see CheckMonotonic).
func (c *Collection) Write(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := c.now()
	var sources []LabeledSnapshot
	for _, set := range c.snaps {
		sources = append(sources, set()...)
	}
	var gaugeSamples []Sample
	for _, g := range c.gauges {
		gaugeSamples = append(gaugeSamples, g()...)
	}
	// Advance each source's window and derive the rate gauges.
	for _, src := range sources {
		key := renderLabels(src.Labels)
		win := c.windows[key]
		if win == nil {
			win = &Window{}
			c.windows[key] = win
		}
		d := win.Advance(now, src.Snap)
		for _, rg := range []struct {
			name string
			den  uint64
			val  float64
		}{
			{CASFailureRateName, d.Snapshot.Counters[obs.CASAttempts], d.CASFailureRate()},
			{AbortRateName, d.Snapshot.Counters[obs.TxStarts], d.AbortRate()},
			{StealMissRateName, d.Snapshot.Counters[obs.DeqSteals] + d.Snapshot.Counters[obs.DeqStealMisses], d.StealMissRatio()},
		} {
			if rg.den > 0 {
				gaugeSamples = append(gaugeSamples, Sample{Name: rg.name, Labels: src.Labels, Value: rg.val})
			}
		}
	}

	bw := &errWriter{w: w}
	for ct := obs.Counter(0); ct < obs.NumCounters; ct++ {
		writeCounterFamily(bw, ct, sources)
	}
	for se := obs.Series(0); se < obs.NumSeries; se++ {
		writeHistogramFamily(bw, se, sources)
	}
	writeGaugeFamilies(bw, gaugeSamples)
	return bw.err
}

// errWriter latches the first write error so the formatting code stays
// check-free.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

func writeCounterFamily(w *errWriter, ct obs.Counter, sources []LabeledSnapshot) {
	name := CounterName(ct)
	wrote := false
	for _, src := range sources {
		v := src.Snap.Counters[ct]
		if v == 0 {
			continue
		}
		if !wrote {
			w.printf("# HELP %s Total %s events.\n# TYPE %s counter\n", name, ct, name)
			wrote = true
		}
		w.printf("%s%s %s\n", name, renderLabels(src.Labels), strconv.FormatUint(v, 10))
	}
}

func writeHistogramFamily(w *errWriter, se obs.Series, sources []LabeledSnapshot) {
	name := SeriesName(se)
	wrote := false
	for _, src := range sources {
		h := src.Snap.Series[se]
		if h.Count == 0 {
			continue
		}
		if !wrote {
			w.printf("# HELP %s Latency histogram %s (nanoseconds, power-of-two buckets).\n# TYPE %s histogram\n", name, se, name)
			wrote = true
		}
		labels := src.Labels
		var cum uint64
		// Bucket i of stats.Histogram holds integer values v with
		// bits.Len64(v) == i, i.e. v <= 2^i - 1, so the inclusive
		// upper bound le="2^i-1" is exact. The final (clamping) bucket
		// is unbounded and folds into +Inf.
		for i := 0; i < stats.HistBuckets-1; i++ {
			cum += h.Buckets[i]
			le := uint64(1)<<uint(i) - 1
			w.printf("%s_bucket%s %d\n", name, renderLabelsLE(labels, strconv.FormatUint(le, 10)), cum)
		}
		w.printf("%s_bucket%s %d\n", name, renderLabelsLE(labels, "+Inf"), h.Count)
		w.printf("%s_sum%s %s\n", name, renderLabels(labels), strconv.FormatUint(h.Sum, 10))
		w.printf("%s_count%s %d\n", name, renderLabels(labels), h.Count)
	}
}

func writeGaugeFamilies(w *errWriter, samples []Sample) {
	byName := make(map[string][]Sample)
	var names []string
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			names = append(names, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	sort.Strings(names)
	for _, name := range names {
		w.printf("# TYPE %s gauge\n", name)
		for _, s := range byName[name] {
			w.printf("%s%s %s\n", name, renderLabels(s.Labels), formatValue(s.Value))
		}
	}
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderLabels renders a label set canonically: keys sorted, values
// escaped, empty set rendered as "".
func renderLabels(l Labels) string { return renderLabelsLE(l, "") }

func renderLabelsLE(l Labels, le string) string {
	if len(l) == 0 && le == "" {
		return ""
	}
	keys := make([]string, 0, len(l)+1)
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
