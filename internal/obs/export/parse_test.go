package export

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *Scrape {
	t.Helper()
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"bad name":           `9metric 1`,
		"missing value":      `metric{a="b"}`,
		"bad value":          `metric 1.2.3`,
		"unquoted label":     `metric{a=b} 1`,
		"unterminated label": `metric{a="b} 1`,
		"bad escape":         `metric{a="\q"} 1`,
		"duplicate label":    `metric{a="1",a="2"} 1`,
		"duplicate sample":   "metric{a=\"b\"} 1\nmetric{a=\"b\"} 2",
		"bad type":           `# TYPE metric stopwatch`,
		"type after sample":  "metric 1\n# TYPE metric counter",
		"bad timestamp":      `metric 1 soon`,
		"missing +Inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1",
		"inf != count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\nh_sum 1",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestParseAcceptsValidCorpus(t *testing.T) {
	s := mustParse(t, `
# HELP m Total things.
# TYPE m counter
m{tenant="a",queue="Q"} 12
m{tenant="b"} 3
# TYPE g gauge
g 1.5e3
g{x="esc\"a\\pe\n"} -2
# TYPE h histogram
h_bucket{le="0"} 1
h_bucket{le="7"} 4
h_bucket{le="+Inf"} 6
h_sum 120
h_count 6
untyped_metric 4 1700000000
`)
	if v, ok := s.Value("m", Labels{"tenant": "a", "queue": "Q"}); !ok || v != 12 {
		t.Fatalf("m{a} = %v,%v", v, ok)
	}
	if got := s.Sum("m"); got != 15 {
		t.Fatalf("Sum(m) = %v", got)
	}
	if v, ok := s.Value("g", Labels{"x": "esc\"a\\pe\n"}); !ok || v != -2 {
		t.Fatalf("escaped gauge = %v,%v", v, ok)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	s := mustParse(t, `
# TYPE h histogram
h_bucket{t="a",le="10"} 0
h_bucket{t="a",le="100"} 90
h_bucket{t="a",le="1000"} 99
h_bucket{t="a",le="+Inf"} 100
h_count{t="a"} 100
h_sum{t="a"} 9000
`)
	// p50 falls in the (10,100] bucket: 10 + (50/90)*90 = 60.
	if got, ok := s.Quantile("h", Labels{"t": "a"}, 0.5); !ok || math.Abs(got-60) > 1e-9 {
		t.Fatalf("p50 = %v,%v want 60", got, ok)
	}
	// p99 lands exactly at the (100,1000] bucket's edge.
	if got, ok := s.Quantile("h", Labels{"t": "a"}, 0.99); !ok || got > 1000 || got <= 100 {
		t.Fatalf("p99 = %v,%v want in (100,1000]", got, ok)
	}
	// p999 is in the unbounded bucket: floor reported.
	if got, ok := s.Quantile("h", Labels{"t": "a"}, 0.999); !ok || got != 1000 {
		t.Fatalf("p999 = %v,%v want 1000", got, ok)
	}
	if _, ok := s.Quantile("h", Labels{"t": "missing"}, 0.5); ok {
		t.Fatal("quantile over no matching buckets reported ok")
	}
}

func TestCheckMonotonicDetects(t *testing.T) {
	prev := mustParse(t, "# TYPE c counter\nc{t=\"a\"} 10\nc{t=\"b\"} 5\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 30\n# TYPE g gauge\ng 9")
	cur := mustParse(t, "# TYPE c counter\nc{t=\"a\"} 8\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 20\n# TYPE g gauge\ng 1")
	viol := CheckMonotonic(prev, cur)
	if len(viol) != 5 { // c{a} decreased, c{b} missing, h_bucket/_count/_sum decreased
		t.Fatalf("violations = %v", viol)
	}
	for _, v := range viol {
		if strings.HasPrefix(v, "g") {
			t.Fatalf("gauge flagged: %v", v)
		}
	}
	if viol := CheckMonotonic(prev, prev); len(viol) != 0 {
		t.Fatalf("self-comparison violations: %v", viol)
	}
}
