package export

import (
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Window tracks successive snapshots of one monotonically growing source
// (an obs.Stats scoped to a process, tenant, or shard) and yields the
// difference between consecutive observations. It is the delta/rate engine
// behind the exporter's derived gauges and sbqtop's refresh loop: absolute
// counters answer "how much ever", windows answer "how fast right now",
// which is the signal the paper's retry/fallback tuning runs on (§3, §6.1).
//
// A Window is not safe for concurrent use; callers serialize Advance (the
// Collection does so under its scrape lock).
type Window struct {
	prev   obs.Snapshot
	prevAt time.Time
	primed bool
}

// Advance records snap as the newest observation and returns the delta
// since the previous one. The first call baselines against zero, so the
// returned delta equals the lifetime snapshot with First set. A source
// restart (any counter or histogram count moving backwards) re-baselines
// against zero and sets Reset, mirroring Prometheus counter-reset handling
// rather than producing huge unsigned wraparounds.
func (w *Window) Advance(now time.Time, snap obs.Snapshot) Delta {
	d := Delta{Snapshot: snap, First: !w.primed}
	if w.primed {
		d.Elapsed = now.Sub(w.prevAt)
		if wentBackwards(w.prev, snap) {
			d.Reset = true
		} else {
			d.Snapshot = diffSnapshot(w.prev, snap)
		}
	}
	w.prev, w.prevAt, w.primed = snap, now, true
	return d
}

// Delta is the windowed difference between two snapshots of one source.
type Delta struct {
	// Snapshot holds the counter and histogram increments observed inside
	// the window (the full lifetime values when First or Reset is set).
	Snapshot obs.Snapshot
	// Elapsed is the wall-clock width of the window (zero when First).
	Elapsed time.Duration
	// First marks the priming observation of a fresh Window.
	First bool
	// Reset marks a detected counter reset (source restarted mid-window).
	Reset bool
}

// Rate returns counter c's per-second rate over the window, or 0 when the
// window has no width.
func (d Delta) Rate(c obs.Counter) float64 {
	secs := d.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(d.Snapshot.Counters[c]) / secs
}

// Ratio returns num/den over the window, 0 on a zero denominator.
func (d Delta) Ratio(num, den obs.Counter) float64 { return d.Snapshot.Rate(num, den) }

// CASFailureRate returns the windowed fraction of CAS attempts that failed.
func (d Delta) CASFailureRate() float64 { return d.Snapshot.CASFailureRate() }

// AbortRate returns the windowed fraction of transactions that aborted.
func (d Delta) AbortRate() float64 { return d.Snapshot.AbortRate() }

// StealMissRatio returns the windowed fraction of steal activity that came
// up empty: misses / (steals + misses), 0 when there was none.
func (d Delta) StealMissRatio() float64 {
	steals := d.Snapshot.Counters[obs.DeqSteals]
	misses := d.Snapshot.Counters[obs.DeqStealMisses]
	if steals+misses == 0 {
		return 0
	}
	return float64(misses) / float64(steals+misses)
}

func wentBackwards(prev, cur obs.Snapshot) bool {
	for c := range cur.Counters {
		if cur.Counters[c] < prev.Counters[c] {
			return true
		}
	}
	for s := range cur.Series {
		if cur.Series[s].Count < prev.Series[s].Count {
			return true
		}
	}
	return false
}

func diffSnapshot(prev, cur obs.Snapshot) obs.Snapshot {
	var d obs.Snapshot
	for c := range cur.Counters {
		d.Counters[c] = cur.Counters[c] - prev.Counters[c]
	}
	for s := range cur.Series {
		d.Series[s] = diffHistogram(prev.Series[s], cur.Series[s])
	}
	return d
}

func diffHistogram(prev, cur stats.Histogram) stats.Histogram {
	var d stats.Histogram
	for i := range cur.Buckets {
		// Individual buckets cannot shrink on a monotonic source; clamp
		// defensively so a torn read never wraps around.
		if cur.Buckets[i] > prev.Buckets[i] {
			d.Buckets[i] = cur.Buckets[i] - prev.Buckets[i]
		}
	}
	d.Count = cur.Count - prev.Count
	d.Sum = cur.Sum - prev.Sum
	return d
}
