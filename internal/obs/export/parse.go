package export

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is one parsed exposition page: every sample point plus the
// declared family types. It backs the sbqtop dashboard, the chaos harness's
// ledger cross-check, and the CI metrics-smoke validator.
type Scrape struct {
	Points []Sample
	// Types maps family name → declared TYPE (counter, gauge, histogram).
	Types map[string]string

	byKey map[string]float64
}

// Parse reads a Prometheus text-exposition (0.0.4) page, validating syntax
// strictly enough for CI: metric-name and label grammar, quoted/escaped
// label values, float-parseable sample values, TYPE declarations preceding
// their family's samples, no duplicate (name, labels) points, and — for
// families declared histogram — cumulative buckets that are non-decreasing
// in le with the +Inf bucket equal to _count.
func Parse(r io.Reader) (*Scrape, error) {
	s := &Scrape{Types: make(map[string]string), byKey: make(map[string]float64)}
	seenSample := make(map[string]bool) // family → sample already seen
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := s.parseComment(line, seenSample); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		p, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := p.Name + renderLabels(p.Labels)
		if _, dup := s.byKey[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		s.byKey[key] = p.Value
		s.Points = append(s.Points, p)
		seenSample[familyOf(p.Name)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.checkHistograms(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Scrape) parseComment(line string, seenSample map[string]bool) error {
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := s.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if seenSample[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		s.Types[name] = typ
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var p Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return p, fmt.Errorf("missing metric name in %q", line)
	}
	p.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return p, fmt.Errorf("%s: %w", p.Name, err)
		}
		p.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return p, fmt.Errorf("%s: want value [timestamp], got %q", p.Name, rest)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return p, fmt.Errorf("%s: bad value %q", p.Name, fields[0])
	}
	p.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return p, fmt.Errorf("%s: bad timestamp %q", p.Name, fields[1])
		}
	}
	return p, nil
}

func parseLabels(s string) (end int, labels Labels, err error) {
	labels = Labels{}
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, nil, fmt.Errorf("bad label name at %q", s[i:])
		}
		name := s[start:i]
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("label %s: missing '='", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
	}
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf strips the histogram/summary sample suffixes off a sample name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// checkHistograms validates every declared-histogram family: per label set
// the cumulative buckets are non-decreasing in le order and the +Inf bucket
// matches _count.
func (s *Scrape) checkHistograms() error {
	for fam, typ := range s.Types {
		if typ != "histogram" {
			continue
		}
		groups := make(map[string][]lePoint)
		for _, p := range s.Points {
			if p.Name != fam+"_bucket" {
				continue
			}
			le, ok := p.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", fam)
			}
			bound, err := parseFloat(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", fam, le)
			}
			key := renderLabels(withoutLE(p.Labels))
			groups[key] = append(groups[key], lePoint{bound, p.Value, key})
		}
		for key, pts := range groups {
			sort.Slice(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
			prev := -1.0
			for i, pt := range pts {
				if i > 0 && pt.cum < prev {
					return fmt.Errorf("%s%s: cumulative bucket decreases at le=%g", fam, key, pt.le)
				}
				prev = pt.cum
			}
			last := pts[len(pts)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("%s%s: missing +Inf bucket", fam, key)
			}
			if cnt, ok := s.byKey[fam+"_count"+key]; ok && cnt != last.cum {
				return fmt.Errorf("%s%s: +Inf bucket %g != _count %g", fam, key, last.cum, cnt)
			}
		}
	}
	return nil
}

type lePoint struct {
	le  float64
	cum float64
	key string
}

func withoutLE(l Labels) Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

// Value returns the sample with the given name and exact label set.
func (s *Scrape) Value(name string, labels Labels) (float64, bool) {
	v, ok := s.byKey[name+renderLabels(labels)]
	return v, ok
}

// Sum adds up every label set of one family (e.g. a counter summed across
// tenants).
func (s *Scrape) Sum(name string) float64 {
	var total float64
	for _, p := range s.Points {
		if p.Name == name {
			total += p.Value
		}
	}
	return total
}

// Quantile estimates the q-th quantile of the histogram family name,
// restricted to points whose labels include sel, by merging the matching
// cumulative buckets and interpolating linearly inside the containing
// bucket (the parse-side mirror of stats.Histogram.Quantile). The second
// return is false when no matching buckets exist or they are empty.
func (s *Scrape) Quantile(name string, sel Labels, q float64) (float64, bool) {
	merged := make(map[float64]float64)
	for _, p := range s.Points {
		if p.Name != name+"_bucket" || !matches(p.Labels, sel) {
			continue
		}
		le, ok := p.Labels["le"]
		if !ok {
			continue
		}
		bound, err := parseFloat(le)
		if err != nil {
			continue
		}
		merged[bound] += p.Value
	}
	if len(merged) == 0 {
		return 0, false
	}
	pts := make([]lePoint, 0, len(merged))
	for le, cum := range merged {
		pts = append(pts, lePoint{le: le, cum: cum})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
	total := pts[len(pts)-1].cum
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	var lower float64
	var seen float64
	for _, pt := range pts {
		inBucket := pt.cum - seen
		if inBucket > 0 && pt.cum >= rank {
			if math.IsInf(pt.le, 1) {
				return lower, true // unbounded bucket: report its floor
			}
			frac := (rank - seen) / inBucket
			return lower + frac*(pt.le-lower), true
		}
		seen = pt.cum
		if !math.IsInf(pt.le, 1) {
			lower = pt.le
		}
	}
	return lower, true
}

func matches(labels, sel Labels) bool {
	for k, v := range sel {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// CheckMonotonic compares two scrapes of the same target taken in order and
// returns a list of violations: any counter sample, histogram bucket,
// _count, or _sum that decreased or disappeared between prev and cur.
// (The writer omits zero-valued counters, so a series that has appeared can
// only keep appearing; a vanished series means a reset.) Gauges are exempt.
func CheckMonotonic(prev, cur *Scrape) []string {
	var violations []string
	for _, p := range prev.Points {
		if !monotonicFamily(prev, p.Name) {
			continue
		}
		key := p.Name + renderLabels(p.Labels)
		c, ok := cur.byKey[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present at %g, then missing", key, p.Value))
			continue
		}
		if c < p.Value {
			violations = append(violations, fmt.Sprintf("%s: decreased %g -> %g", key, p.Value, c))
		}
	}
	return violations
}

// monotonicFamily reports whether a sample name belongs to a family whose
// values must not decrease between scrapes.
func monotonicFamily(s *Scrape, name string) bool {
	if typ, ok := s.Types[name]; ok {
		return typ == "counter"
	}
	fam := familyOf(name)
	if fam != name {
		return s.Types[fam] == "histogram"
	}
	return false
}
