package spin

import (
	"testing"
	"time"
)

func TestPerNSPositive(t *testing.T) {
	if r := PerNS(); r <= 0 {
		t.Fatalf("PerNS() = %v, want > 0", r)
	}
	// Calibration is cached: a second call must agree exactly.
	if a, b := PerNS(), PerNS(); a != b {
		t.Fatalf("PerNS not cached: %v != %v", a, b)
	}
}

func TestItersFor(t *testing.T) {
	if n := ItersFor(0); n != 0 {
		t.Fatalf("ItersFor(0) = %d, want 0", n)
	}
	if n := ItersFor(-time.Second); n != 0 {
		t.Fatalf("ItersFor(-1s) = %d, want 0", n)
	}
	if n := ItersFor(time.Nanosecond); n < 1 {
		t.Fatalf("ItersFor(1ns) = %d, want >= 1", n)
	}
	if a, b := ItersFor(time.Microsecond), ItersFor(10*time.Microsecond); b < a {
		t.Fatalf("ItersFor not monotone: 1us=%d 10us=%d", a, b)
	}
}

func TestForReturns(t *testing.T) {
	// Just prove For terminates promptly for a small wait.
	done := make(chan struct{})
	go func() { For(5 * time.Microsecond); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("For(5us) did not return within 1s")
	}
}
