// Package spin provides clock-free calibrated busy-waiting for the native
// queues and the sharded front-end's consumer backoff.
//
// Sub-microsecond waits cannot go through time.Sleep (it cannot resolve
// them) or a time.Now polling loop (a clock read costs tens of
// nanoseconds, comparable to the whole wait). Instead the package
// calibrates a pure spin loop against the monotonic clock once per
// process, then waits by iteration count: the hot path performs no clock
// reads at all. repro/queue/sbq's delayed-CAS try_append introduced the
// technique; this package hoists it so repro/queue/sharded (steal backoff)
// and any future caller share one calibration.
package spin

import (
	"sync"
	"sync/atomic"
	"time"
)

// sink defeats dead-code elimination of the spin loop. It is shared by
// every spinning goroutine, so the accesses are atomic; the loop body
// itself touches only locals.
var sink atomic.Uint64

// Iters runs n dependent iterations. noinline keeps the loop's cost
// stable between the calibration probe and real waits.
//
//go:noinline
func Iters(n uint64) {
	s := sink.Load()
	for i := uint64(0); i < n; i++ {
		s += i ^ (s >> 1)
	}
	sink.Store(s)
}

var cal struct {
	once  sync.Once
	perNS float64 // spin iterations per nanosecond
}

// PerNS returns the calibrated spin-iterations-per-nanosecond rate,
// measuring Iters against the monotonic clock on first use. It takes the
// fastest of several probes: preemption or a frequency ramp can only make
// a probe slower, never faster, so the minimum is the closest estimate of
// the loop's steady-state rate.
func PerNS() float64 {
	cal.once.Do(func() {
		const probe = 1 << 17
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			Iters(probe)
			if el := time.Since(start); el > 0 && el < best {
				best = el
			}
		}
		cal.perNS = float64(probe) / float64(best.Nanoseconds())
	})
	return cal.perNS
}

// For busy-waits approximately d using calibrated iterations; zero and
// negative durations return immediately. The wait itself reads no clocks.
func For(d time.Duration) {
	Iters(ItersFor(d))
}

// ItersFor converts a duration to calibrated loop iterations (at least 1
// for any positive duration).
func ItersFor(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	n := float64(d.Nanoseconds()) * PerNS()
	if n < 1 {
		return 1
	}
	return uint64(n)
}
