package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"
)

// This file reconstructs per-job lifecycle spans from the service-layer
// events (obs.EvSrv*, arg = job id): submit → lease → (nack/expiry)* →
// ack/DLQ. Counters say a redelivery happened; spans say to which job,
// after which failure, and how long each phase took — the service-level
// mirror of the paper's temporal reconstructions.

// jobsChromeSchema marks the job-lane Chrome export. Unlike ChromeSchema
// it is a visualization-only format (one lane per job); ReadChrome refuses
// it by design.
const jobsChromeSchema = "sbqtrace/jobs/v1"

// chromePIDJobs is the trace_event process grouping job lanes.
const chromePIDJobs = 3

// JobSpan is one job's reconstructed lifecycle: its EvSrv* events in time
// order plus derived classification.
type JobSpan struct {
	ID     uint64
	Events []Event
	// Submitted reports that the span starts with EvSrvSubmit (false for
	// jobs whose submit predates the trace window).
	Submitted bool
	// Leases counts deliveries; Leases-1 is the job's redelivery count.
	Leases int
	// Outcome is EvSrvAck or EvSrvDLQ for settled jobs, 0 for jobs still
	// open when the trace was cut.
	Outcome obs.EventKind
}

// settleTS returns the timestamp of the settling event, ok=false when the
// job never settled inside the trace.
func (s *JobSpan) settleTS() (uint64, bool) {
	if s.Outcome == 0 || len(s.Events) == 0 {
		return 0, false
	}
	return s.Events[len(s.Events)-1].TS, true
}

// JobSpanStats aggregates every reconstructed span of one trace.
type JobSpanStats struct {
	// Jobs counts distinct job ids with at least one EvSrv* event.
	Jobs int
	// Acked/Dead/Open partition settled-vs-not; Orphans counts jobs whose
	// submit fell outside the trace window (ring overwrote it or the
	// recorder attached late).
	Acked, Dead, Open, Orphans int
	// CompleteAcked counts acked jobs with the full submit→lease→ack
	// chain inside the trace — equal to Acked on a drop-free trace.
	CompleteAcked int
	// Redeliveries is Σ max(Leases-1, 0), comparable to the SrvRedeliveries
	// counter and the chaos ledger's redelivery count.
	Redeliveries int
	// Phase latency split (trace-clock ns): submit→first lease (time
	// queued), final lease→settle (final processing attempt), and
	// submit→settle (end-to-end).
	SubmitToLease  stats.Histogram
	LeaseToSettle  stats.Histogram
	SubmitToSettle stats.Histogram
	// RetryDepth is the retry-chain depth distribution: redeliveries per
	// job (0 = first delivery stuck) over jobs with at least one lease.
	RetryDepth map[int]int
	MaxRetry   int
	// DLQPaths counts dead-lettered jobs by lifecycle signature, e.g.
	// "submit→lease→expire→lease→nack→dlq".
	DLQPaths map[string]int

	// Spans holds every span, sorted by job id.
	Spans []JobSpan
}

// maxDLQPaths bounds the distinct path signatures kept; pathological
// traces overflow into the "…other" key.
const maxDLQPaths = 64

// AnalyzeJobs reconstructs per-job spans from a trace's service events.
// Traces without service events yield a zero-valued result.
func AnalyzeJobs(t *Trace) *JobSpanStats {
	byID := map[uint64][]Event{}
	for _, e := range t.Events {
		switch e.Kind {
		case obs.EvSrvSubmit, obs.EvSrvLease, obs.EvSrvAck, obs.EvSrvNack, obs.EvSrvExpire, obs.EvSrvDLQ:
			byID[e.Arg] = append(byID[e.Arg], e)
		}
	}
	js := &JobSpanStats{RetryDepth: map[int]int{}, DLQPaths: map[string]int{}}
	js.Jobs = len(byID)
	js.Spans = make([]JobSpan, 0, len(byID))
	for id, evs := range byID {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].TS != evs[j].TS {
				return evs[i].TS < evs[j].TS
			}
			// Same-nanosecond events sort in lifecycle order: the recorder
			// guarantees happens-before (submit precedes the enqueue that
			// makes a lease possible), so a TS tie can only be clock
			// granularity, and lifecycle order is the true order.
			return lifecycleRank(evs[i].Kind) < lifecycleRank(evs[j].Kind)
		})
		span := JobSpan{ID: id, Events: evs}
		var submitTS, firstLeaseTS, lastLeaseTS uint64
		for _, e := range evs {
			switch e.Kind {
			case obs.EvSrvSubmit:
				submitTS = e.TS
			case obs.EvSrvLease:
				if span.Leases == 0 {
					firstLeaseTS = e.TS
				}
				lastLeaseTS = e.TS
				span.Leases++
			case obs.EvSrvAck:
				span.Outcome = obs.EvSrvAck
			case obs.EvSrvDLQ:
				span.Outcome = obs.EvSrvDLQ
			}
		}
		span.Submitted = evs[0].Kind == obs.EvSrvSubmit

		if !span.Submitted {
			js.Orphans++
		}
		switch span.Outcome {
		case obs.EvSrvAck:
			js.Acked++
			if span.Submitted && span.Leases > 0 && evs[len(evs)-1].Kind == obs.EvSrvAck {
				js.CompleteAcked++
			}
		case obs.EvSrvDLQ:
			js.Dead++
			js.DLQPaths[clampPath(js.DLQPaths, pathSignature(evs))]++
		default:
			js.Open++
		}
		if span.Leases > 0 {
			depth := span.Leases - 1
			js.Redeliveries += depth
			js.RetryDepth[depth]++
			if depth > js.MaxRetry {
				js.MaxRetry = depth
			}
		}
		if settle, ok := span.settleTS(); ok && span.Submitted {
			js.SubmitToSettle.Observe(settle - submitTS)
			if span.Leases > 0 {
				js.SubmitToLease.Observe(firstLeaseTS - submitTS)
				js.LeaseToSettle.Observe(settle - lastLeaseTS)
			}
		}
		js.Spans = append(js.Spans, span)
	}
	sort.Slice(js.Spans, func(i, j int) bool { return js.Spans[i].ID < js.Spans[j].ID })
	return js
}

func pathSignature(evs []Event) string {
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = strings.TrimPrefix(e.Kind.String(), "srv_")
	}
	return strings.Join(parts, "→")
}

func clampPath(paths map[string]int, sig string) string {
	if _, ok := paths[sig]; ok || len(paths) < maxDLQPaths {
		return sig
	}
	return "…other"
}

// Format renders the span statistics as a report section.
func (js *JobSpanStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== job lifecycle spans (service) ==\n")
	if js.Jobs == 0 {
		fmt.Fprintf(&b, "no service events recorded\n")
		return b.String()
	}
	fmt.Fprintf(&b, "jobs=%d acked=%d (complete-chain=%d) dlq=%d open=%d orphans=%d redeliveries=%d\n",
		js.Jobs, js.Acked, js.CompleteAcked, js.Dead, js.Open, js.Orphans, js.Redeliveries)
	if js.SubmitToLease.Count > 0 {
		fmt.Fprintf(&b, "  submit→first-lease: %s\n", js.SubmitToLease)
	}
	if js.LeaseToSettle.Count > 0 {
		fmt.Fprintf(&b, "  final-lease→settle: %s\n", js.LeaseToSettle)
	}
	if js.SubmitToSettle.Count > 0 {
		fmt.Fprintf(&b, "  submit→settle:      %s\n", js.SubmitToSettle)
	}
	if len(js.RetryDepth) > 0 {
		depths := make([]int, 0, len(js.RetryDepth))
		maxCount := 0
		for d, c := range js.RetryDepth {
			depths = append(depths, d)
			if c > maxCount {
				maxCount = c
			}
		}
		sort.Ints(depths)
		fmt.Fprintf(&b, "retry-chain depth (redeliveries per job):\n")
		for _, d := range depths {
			c := js.RetryDepth[d]
			fmt.Fprintf(&b, "  depth=%-3d %6d %s\n", d, c, histBar(c, maxCount, 40))
		}
	}
	if len(js.DLQPaths) > 0 {
		type pc struct {
			path  string
			count int
		}
		paths := make([]pc, 0, len(js.DLQPaths))
		for p, c := range js.DLQPaths {
			paths = append(paths, pc{p, c})
		}
		sort.Slice(paths, func(i, j int) bool {
			if paths[i].count != paths[j].count {
				return paths[i].count > paths[j].count
			}
			return paths[i].path < paths[j].path
		})
		fmt.Fprintf(&b, "dead-letter paths:\n")
		for _, p := range paths {
			fmt.Fprintf(&b, "  %6d× %s\n", p.count, p.path)
		}
	}
	return b.String()
}

// lifecycleRank orders same-timestamp events of one job by lifecycle
// stage: a submit can never truly follow a lease of the same job, and a
// settle can never precede the delivery it settles.
func lifecycleRank(k obs.EventKind) int {
	switch k {
	case obs.EvSrvSubmit:
		return 0
	case obs.EvSrvLease:
		return 1
	case obs.EvSrvNack, obs.EvSrvExpire:
		return 2
	default: // ack, dlq
		return 3
	}
}

// jobPhaseName names the span phase a job is in after event kind k.
func jobPhaseName(k obs.EventKind) string {
	switch k {
	case obs.EvSrvSubmit:
		return "queued"
	case obs.EvSrvLease:
		return "leased"
	case obs.EvSrvNack:
		return "requeued(nack)"
	case obs.EvSrvExpire:
		return "requeued(expired)"
	}
	return k.String()
}

// WriteJobsChrome exports the reconstructed job spans as Chrome
// trace_event JSON with one lane per job: each lifecycle phase between
// consecutive events renders as a complete slice and the settling event as
// an instant, so a viewer shows every job's queued/leased/retry timeline
// stacked under one "jobs" process. This is a visualization export (schema
// sbqtrace/jobs/v1); ReadChrome does not accept it.
func (js *JobSpanStats) WriteJobsChrome(w io.Writer, t *Trace) error {
	f := chromeFile{DisplayTimeUnit: "ns", OtherData: map[string]string{
		"schema": jobsChromeSchema,
		"clock":  t.Clock,
	}}
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePIDJobs,
		Args: map[string]any{"name": "jobs"},
	})
	for _, span := range js.Spans {
		tid := int(span.ID)
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePIDJobs, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("job %d (leases=%d)", span.ID, span.Leases)},
		})
		for i, e := range span.Events {
			last := i == len(span.Events)-1
			if last {
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: e.Kind.String(), Cat: "job", Ph: "i", S: "t",
					TS: usOf(e.TS), PID: chromePIDJobs, TID: tid,
					Args: map[string]any{"job": span.ID},
				})
				continue
			}
			dur := usOf(span.Events[i+1].TS - e.TS)
			if dur == 0 {
				dur = 0.001 // minimum visible width: 1ns
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: jobPhaseName(e.Kind), Cat: "job", Ph: "X",
				TS: usOf(e.TS), Dur: dur, PID: chromePIDJobs, TID: tid,
				Args: map[string]any{"job": span.ID, "event": e.Kind.String()},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
