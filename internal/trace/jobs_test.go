package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

func srvEvent(ts uint64, k obs.EventKind, job uint64) Event {
	return Event{TS: ts, Kind: k, Lane: 0, Arg: job}
}

func jobsTrace() *Trace {
	return &Trace{
		Clock: "wall-ns",
		Lanes: map[int32]string{0: "svc"},
		Events: []Event{
			// Job 1: clean submit→lease→ack.
			srvEvent(10, obs.EvSrvSubmit, 1),
			srvEvent(20, obs.EvSrvLease, 1),
			srvEvent(50, obs.EvSrvAck, 1),
			// Job 2: nack, expiry, nack → DLQ after 3 deliveries.
			srvEvent(10, obs.EvSrvSubmit, 2),
			srvEvent(20, obs.EvSrvLease, 2),
			srvEvent(30, obs.EvSrvNack, 2),
			srvEvent(40, obs.EvSrvLease, 2),
			srvEvent(60, obs.EvSrvExpire, 2),
			srvEvent(70, obs.EvSrvLease, 2),
			srvEvent(80, obs.EvSrvNack, 2),
			srvEvent(81, obs.EvSrvDLQ, 2),
			// Job 3: leased but still open at the trace cut.
			srvEvent(15, obs.EvSrvSubmit, 3),
			srvEvent(25, obs.EvSrvLease, 3),
			// Job 4: orphan — submit fell outside the window.
			srvEvent(30, obs.EvSrvLease, 4),
			srvEvent(90, obs.EvSrvAck, 4),
			// Non-service noise must be ignored.
			{TS: 5, Kind: obs.EvEnqStart, Lane: 1},
			{TS: 6, Kind: obs.EvEnqEnd, Lane: 1, Arg: 1},
		},
	}
}

func TestAnalyzeJobsReconstruction(t *testing.T) {
	js := AnalyzeJobs(jobsTrace())
	if js.Jobs != 4 {
		t.Fatalf("Jobs = %d, want 4", js.Jobs)
	}
	if js.Acked != 2 || js.Dead != 1 || js.Open != 1 || js.Orphans != 1 {
		t.Fatalf("partition acked=%d dead=%d open=%d orphans=%d", js.Acked, js.Dead, js.Open, js.Orphans)
	}
	// Job 4 acked without a submit, so only job 1 has the complete chain.
	if js.CompleteAcked != 1 {
		t.Fatalf("CompleteAcked = %d, want 1", js.CompleteAcked)
	}
	// Job 2 had 3 leases → 2 redeliveries; everyone else had 1 lease.
	if js.Redeliveries != 2 {
		t.Fatalf("Redeliveries = %d, want 2", js.Redeliveries)
	}
	if js.RetryDepth[0] != 3 || js.RetryDepth[2] != 1 || js.MaxRetry != 2 {
		t.Fatalf("RetryDepth = %v max=%d", js.RetryDepth, js.MaxRetry)
	}
	wantPath := "submit→lease→nack→lease→expire→lease→nack→dlq"
	if js.DLQPaths[wantPath] != 1 {
		t.Fatalf("DLQPaths = %v, want %q", js.DLQPaths, wantPath)
	}
	// Phase split: settled-and-submitted jobs are 1 (10→20→50) and
	// 2 (10→20, last lease 70 → settle 81).
	if js.SubmitToLease.Count != 2 || js.SubmitToLease.Sum != 20 {
		t.Fatalf("SubmitToLease n=%d sum=%d", js.SubmitToLease.Count, js.SubmitToLease.Sum)
	}
	if js.LeaseToSettle.Count != 2 || js.LeaseToSettle.Sum != 30+11 {
		t.Fatalf("LeaseToSettle n=%d sum=%d", js.LeaseToSettle.Count, js.LeaseToSettle.Sum)
	}
	if js.SubmitToSettle.Count != 2 || js.SubmitToSettle.Sum != 40+71 {
		t.Fatalf("SubmitToSettle n=%d sum=%d", js.SubmitToSettle.Count, js.SubmitToSettle.Sum)
	}

	out := js.Format()
	for _, want := range []string{"jobs=4", "complete-chain=1", "dead-letter paths", wantPath} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeJobsEmptyTrace(t *testing.T) {
	js := AnalyzeJobs(&Trace{Clock: "sim-ns"})
	if js.Jobs != 0 || js.Redeliveries != 0 {
		t.Fatalf("empty trace produced spans: %+v", js)
	}
	if !strings.Contains(js.Format(), "no service events") {
		t.Fatalf("empty Format: %q", js.Format())
	}
}

func TestAnalysisSurfacesDrops(t *testing.T) {
	tr := jobsTrace()
	tr.Dropped = 123
	a := Analyze(tr, AnalyzeOptions{})
	if a.Dropped != 123 {
		t.Fatalf("Analysis.Dropped = %d", a.Dropped)
	}
	out := a.Format()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "123 events were dropped") {
		t.Fatalf("dropped warning missing:\n%s", out)
	}
	if !strings.Contains(out, "job lifecycle spans") {
		t.Fatalf("job section missing from analysis:\n%s", out)
	}

	tr.Dropped = 0
	if out := Analyze(tr, AnalyzeOptions{}).Format(); strings.Contains(out, "WARNING") {
		t.Fatal("drop-free trace still warns")
	}
	if DroppedWarning(0) != "" {
		t.Fatal("DroppedWarning(0) nonempty")
	}
}

func TestWriteJobsChrome(t *testing.T) {
	tr := jobsTrace()
	js := AnalyzeJobs(tr)
	var b strings.Builder
	if err := js.WriteJobsChrome(&b, tr); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if f.OtherData["schema"] != jobsChromeSchema {
		t.Fatalf("schema = %q", f.OtherData["schema"])
	}
	lanes := map[int]bool{}
	slices := 0
	for _, e := range f.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			lanes[e.TID] = true
		}
		if e.Ph == "X" {
			slices++
			if e.Dur <= 0 {
				t.Fatalf("slice with nonpositive duration: %+v", e)
			}
		}
	}
	if len(lanes) != 4 {
		t.Fatalf("job lanes = %d, want 4", len(lanes))
	}
	// Job 2 alone contributes 7 phase slices; there must be plenty overall.
	if slices < 10 {
		t.Fatalf("phase slices = %d", slices)
	}
	// The visualization schema must be refused by the lossless reader.
	if _, err := ReadChrome(strings.NewReader(b.String())); err == nil {
		t.Fatal("ReadChrome accepted the jobs visualization export")
	}
}
