package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// sampleTrace builds a trace exercising every export path: paired ops,
// an unmatched end, machine-lane instants, a packed abort arg, and Meta.
func sampleTrace() *Trace {
	return &Trace{
		Events: []Event{
			{TS: 100, Kind: obs.EvEnqStart, Lane: 0},
			{TS: 150, Kind: obs.EvCASAttempt, Lane: 0, Arg: 7},
			{TS: 200, Kind: obs.EvTxBegin, Lane: obs.MachineLane(2), Arg: 9},
			{TS: 250, Kind: obs.EvTxAbort, Lane: obs.MachineLane(2),
				Arg: obs.AbortArg(obs.AbortConflict|obs.AbortTripped, 5, 0x40)},
			{TS: 300, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
			{TS: 400, Kind: obs.EvDeqStart, Lane: 1},
			{TS: 500, Kind: obs.EvDeqEnd, Lane: 1, Arg: 0},
			{TS: 600, Kind: obs.EvBasketOpen, Lane: 1, Arg: 0xbeef},
			{TS: 700, Kind: obs.EvDeqEnd, Lane: 3}, // unmatched end
		},
		Lanes: map[int32]string{0: "main", 1: "prod-1", 3: "cons-0"},
		Epoch: 2, Dropped: 11, Clock: "sim-ns",
		Meta: map[string]string{"variant": "sbq-txcas", "sockets": "2"},
	}
}

func TestChromeRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	// The export must be well-formed trace_event JSON.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := generic["traceEvents"].([]any); !ok {
		t.Fatal("export lacks a traceEvents array")
	}

	got, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Clock != orig.Clock || got.Epoch != orig.Epoch || got.Dropped != orig.Dropped {
		t.Errorf("header = %q/%d/%d, want %q/%d/%d",
			got.Clock, got.Epoch, got.Dropped, orig.Clock, orig.Epoch, orig.Dropped)
	}
	for k, v := range orig.Meta {
		if got.Meta[k] != v {
			t.Errorf("meta %q = %q, want %q", k, got.Meta[k], v)
		}
	}
	for l, name := range orig.Lanes {
		if got.Lanes[l] != name {
			t.Errorf("lane %d = %q, want %q", l, got.Lanes[l], name)
		}
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("got %d events, want %d:\n%v", len(got.Events), len(orig.Events), got.Events)
	}
	for i, e := range orig.Events {
		if got.Events[i] != e {
			t.Errorf("event %d = %v, want %v", i, got.Events[i], e)
		}
	}
}

func TestChromeAbortDecoration(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Perfetto users see decoded abort fields without knowing the packing.
	for _, want := range []string{`"reason": "conflict+tripped"`, `"requester": 5`, `"line": "0x40"`} {
		if !strings.Contains(s, want) {
			t.Errorf("export missing %s", want)
		}
	}
	// Swimlane grouping metadata.
	for _, want := range []string{`"process_name"`, `"thread_name"`, `"prod-1"`} {
		if !strings.Contains(s, want) {
			t.Errorf("export missing %s metadata", want)
		}
	}
}

func TestReadChromeRejectsForeign(t *testing.T) {
	if _, err := ReadChrome(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Error("accepted a trace without the sbqtrace schema marker")
	}
	if _, err := ReadChrome(strings.NewReader(`not json`)); err == nil {
		t.Error("accepted malformed JSON")
	}
}
