package trace

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// fakeClock is a deterministic, monotonically increasing test clock.
type fakeClock struct{ t atomic.Uint64 }

func (f *fakeClock) now() uint64 { return f.t.Add(1) }

func TestRecordAndSnapshot(t *testing.T) {
	clk := &fakeClock{}
	c := New(WithClock(clk.now))
	h := c.Handle("worker-0")

	c.Event(obs.EvEnqStart, obs.LaneDefault, 0)
	h.Event(obs.EvCASAttempt, obs.LaneDefault, 42)
	h.Event(obs.EvCohGetM, obs.MachineLane(3), 0x1000)

	tr := c.Snapshot()
	if tr.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", tr.Epoch)
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(tr.Events), tr.Events)
	}
	// Time-sorted merge across rings.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].TS < tr.Events[i-1].TS {
			t.Fatalf("events not sorted: %v", tr.Events)
		}
	}
	// LaneDefault resolves to the emitting handle's lane.
	if tr.Events[0].Lane != 0 || tr.Events[0].Kind != obs.EvEnqStart {
		t.Errorf("collector event = %v, want lane 0 enq_start", tr.Events[0])
	}
	if tr.Events[1].Lane != h.Lane() || tr.Events[1].Arg != 42 {
		t.Errorf("handle event = %v, want lane %d arg 42", tr.Events[1], h.Lane())
	}
	// Explicit machine lanes pass through untouched.
	if got := tr.Events[2].Lane; got != obs.MachineLane(3) {
		t.Errorf("machine lane = %d, want %d", got, obs.MachineLane(3))
	}
	if tr.Lanes[0] != "main" || tr.Lanes[h.Lane()] != "worker-0" {
		t.Errorf("lanes = %v", tr.Lanes)
	}
}

func TestSnapshotEpochCut(t *testing.T) {
	clk := &fakeClock{}
	c := New(WithClock(clk.now))

	c.Event(obs.EvEnqStart, obs.LaneDefault, 1)
	tr1 := c.Snapshot()
	c.Event(obs.EvEnqEnd, obs.LaneDefault, 2)
	tr2 := c.Snapshot()

	if len(tr1.Events) != 1 || tr1.Events[0].Kind != obs.EvEnqStart {
		t.Fatalf("epoch 1 = %v, want the single enq_start", tr1.Events)
	}
	if len(tr2.Events) != 1 || tr2.Events[0].Kind != obs.EvEnqEnd {
		t.Fatalf("epoch 2 = %v, want the single enq_end", tr2.Events)
	}
	if tr2.Epoch != tr1.Epoch+1 {
		t.Fatalf("epochs = %d, %d; want consecutive", tr1.Epoch, tr2.Epoch)
	}
	// Nothing left: a third snapshot is empty.
	if tr3 := c.Snapshot(); len(tr3.Events) != 0 || tr3.Dropped != 0 {
		t.Fatalf("epoch 3 = %v dropped=%d, want empty", tr3.Events, tr3.Dropped)
	}
}

func TestRingWraparound(t *testing.T) {
	clk := &fakeClock{}
	const size = 8
	c := New(WithClock(clk.now), WithRingSize(size))

	const total = 3*size + 5
	for i := 0; i < total; i++ {
		c.Event(obs.EvCASAttempt, obs.LaneDefault, uint64(i))
	}
	tr := c.Snapshot()
	if len(tr.Events) != size {
		t.Fatalf("got %d events, want the last %d", len(tr.Events), size)
	}
	if tr.Dropped != total-size {
		t.Fatalf("dropped = %d, want %d", tr.Dropped, total-size)
	}
	// Flight-recorder semantics: the survivors are the newest events.
	for i, e := range tr.Events {
		if want := uint64(total - size + i); e.Arg != want {
			t.Fatalf("event %d arg = %d, want %d", i, e.Arg, want)
		}
	}
}

func TestRingSizeRounding(t *testing.T) {
	r := newRing(5)
	if len(r.slots) != 8 {
		t.Errorf("ring size for 5 = %d, want 8", len(r.slots))
	}
	r = newRing(0)
	if len(r.slots) != DefaultRingSize {
		t.Errorf("ring size for 0 = %d, want %d", len(r.slots), DefaultRingSize)
	}
}

// TestConcurrentDrain hammers one collector from several writers while a
// reader snapshots concurrently, then verifies full accounting: every
// reserved slot is either drained exactly once or counted in Dropped, and
// no drained event is torn (its payload matches what some writer wrote).
func TestConcurrentDrain(t *testing.T) {
	clk := &fakeClock{}
	c := New(WithClock(clk.now), WithRingSize(64))

	const writers = 4
	const perWriter = 10_000
	handles := make([]*Handle, writers)
	for i := range handles {
		handles[i] = c.Handle("w")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var traces []*Trace
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				traces = append(traces, c.Snapshot())
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := handles[w]
			for i := 0; i < perWriter; i++ {
				// Arg encodes (writer, seq) so torn reads are detectable.
				h.Event(obs.EvCASAttempt, obs.LaneDefault, uint64(w)<<32|uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	traces = append(traces, c.Snapshot())

	collected, dropped := uint64(0), uint64(0)
	nextSeq := map[int32]uint64{}
	for _, tr := range traces {
		dropped += tr.Dropped
		for _, e := range tr.Events {
			if e.Kind != obs.EvCASAttempt {
				t.Fatalf("torn event kind: %v", e)
			}
			w := int32(e.Arg >> 32)
			seq := e.Arg & 0xffffffff
			if w < 0 || int(w) >= writers {
				t.Fatalf("torn event writer: %v", e)
			}
			if lane := handles[w].Lane(); e.Lane != lane {
				t.Fatalf("event %v on lane %d, want %d (torn meta)", e, e.Lane, lane)
			}
			// Per-ring drains preserve program order per writer.
			if seq < nextSeq[w] {
				t.Fatalf("writer %d seq %d after %d: out of order", w, seq, nextSeq[w])
			}
			nextSeq[w] = seq + 1
			collected++
		}
	}
	if total := uint64(writers * perWriter); collected+dropped != total {
		t.Fatalf("collected %d + dropped %d != written %d", collected, dropped, total)
	}
	if collected == 0 {
		t.Fatal("no events survived; accounting vacuous")
	}
}

func TestWithStatsForwarding(t *testing.T) {
	st := obs.New()
	c := New(WithStats(st))
	c.Inc(obs.EnqOps)
	c.Add(obs.CASFailures, 3)
	c.Observe(obs.EnqLatency, 100)
	h := c.Handle("w")
	h.Inc(obs.DeqOps)

	snap := st.Snapshot()
	if snap.Counters[obs.EnqOps] != 1 || snap.Counters[obs.CASFailures] != 3 || snap.Counters[obs.DeqOps] != 1 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Series[obs.EnqLatency].Count != 1 {
		t.Errorf("series count = %d, want 1", snap.Series[obs.EnqLatency].Count)
	}
}

func TestEventsHelper(t *testing.T) {
	if obs.Events(nil) != nil {
		t.Error("Events(nil) != nil")
	}
	if obs.Events(obs.Nop{}) != nil {
		t.Error("Events(Nop) != nil")
	}
	if obs.Events(obs.New()) != nil {
		t.Error("Events(Stats) != nil: counters-only recorder must not trace")
	}
	c := New()
	if obs.Events(c) == nil {
		t.Error("Events(Collector) == nil, want the collector")
	}
	// A collector without WithStats still works as a plain Recorder.
	c.Inc(obs.EnqOps)
}

func TestMetaAndLaneCores(t *testing.T) {
	c := New()
	c.SetMeta("sockets", "2")
	c.SetMeta("variant", "sbq-txcas")
	m := map[int32]int{0: 0, 1: 1, 5: 9}
	c.SetMeta("lane_cores", FormatLaneCores(m))
	tr := c.Snapshot()

	if got := tr.MetaInt("sockets", -1); got != 2 {
		t.Errorf("sockets = %d, want 2", got)
	}
	if got := tr.MetaInt("absent", 7); got != 7 {
		t.Errorf("absent meta = %d, want default 7", got)
	}
	if tr.Meta["variant"] != "sbq-txcas" {
		t.Errorf("variant = %q", tr.Meta["variant"])
	}
	got := tr.LaneCores()
	if len(got) != len(m) {
		t.Fatalf("lane_cores = %v, want %v", got, m)
	}
	for l, core := range m {
		if got[l] != core {
			t.Errorf("lane %d core = %d, want %d", l, got[l], core)
		}
	}
}

func TestAbortArgPacking(t *testing.T) {
	arg := obs.AbortArg(obs.AbortConflict|obs.AbortTripped, 6, 0x2a40)
	if r := obs.AbortReason(arg); r != obs.AbortConflict|obs.AbortTripped {
		t.Errorf("reason = %#x", r)
	}
	if req := obs.AbortRequester(arg); req != 6 {
		t.Errorf("requester = %d, want 6", req)
	}
	if line := obs.AbortLine(arg); line != 0x2a40 {
		t.Errorf("line = %#x, want 0x2a40", line)
	}
	// Unknown requester round-trips as -1.
	if req := obs.AbortRequester(obs.AbortArg(obs.AbortExplicit, -1, 0)); req != -1 {
		t.Errorf("unknown requester = %d, want -1", req)
	}
}

func TestMachineLanes(t *testing.T) {
	l := obs.MachineLane(11)
	if !obs.IsMachineLane(l) {
		t.Error("machine lane not recognised")
	}
	if obs.LaneCore(l) != 11 {
		t.Errorf("core = %d, want 11", obs.LaneCore(l))
	}
	if obs.IsMachineLane(3) || obs.IsMachineLane(obs.LaneDefault) {
		t.Error("queue lanes misclassified as machine lanes")
	}
}

func TestEventKindNames(t *testing.T) {
	for k := obs.EventKind(0); k < obs.NumEventKinds; k++ {
		name := k.String()
		if name == "?" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := obs.EventKindOf(name)
		if !ok || back != k {
			t.Fatalf("EventKindOf(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := obs.EventKindOf("bogus"); ok {
		t.Error("EventKindOf accepted a bogus name")
	}
}
