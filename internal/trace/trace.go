// Package trace is the repository's flight recorder: lock-free,
// cache-line-padded ring buffers of fixed-size binary events behind the
// obs.EventRecorder extension point, drained on demand into a merged,
// time-sorted Trace and exported as Chrome trace_event JSON
// (chrome://tracing / Perfetto render per-lane swimlanes).
//
// Counters (repro/internal/obs) answer how much; the paper's core claims
// are temporal — §3's tripped-writer serialization chains and §4.3's
// cross-socket abort asymmetry are statements about who invalidated whom,
// in what order — and only an event timeline can reconstruct them. The
// analyzer half of this package (analyze.go) rebuilds those figures from
// a drained trace; cmd/sbqtrace is its CLI.
//
// Recording discipline mirrors the queues' handle discipline: a Collector
// issues per-handle rings (Collector.Handle), each meant for one hot
// goroutine, though rings tolerate multiple writers (slots are seqlock-
// published) so a queue-wide shared handle is merely less precise, never
// unsafe. The Collector itself is a Handle-backed EventRecorder, so it
// can be passed directly to machine.SetRecorder or a queue's WithRecorder
// option. With tracing off, instrumented code holds a nil
// obs.EventRecorder and pays one branch per event site.
//
// Snapshotting is epoch-based: each Snapshot call opens a new epoch by
// cutting every ring at its current reservation cursor; events published
// after the cut belong to the next epoch and are left in place. Rings
// overwrite their oldest entries when full (flight-recorder semantics);
// overwritten and torn entries are counted in Trace.Dropped, never
// silently lost.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultRingSize is the per-handle ring capacity (events) when
// WithRingSize is not given. At 32 bytes per slot this is 512 KiB per
// handle — roughly the last half-million events of each lane.
const DefaultRingSize = 1 << 14

// Event is one drained flight-recorder event. TS is in the collector's
// clock domain (wall nanoseconds by default, simulated nanoseconds when
// the harness supplies the machine clock).
type Event struct {
	TS   uint64
	Arg  uint64
	Kind obs.EventKind
	Lane int32
}

// String renders the event for debugging output.
func (e Event) String() string {
	return fmt.Sprintf("t=%d lane=%d %s arg=%#x", e.TS, e.Lane, e.Kind, e.Arg)
}

// slot is one ring entry. All fields are atomics so concurrent writers
// and the draining reader stay race-free; seq is the seqlock word: 0
// while a writer owns the slot, position+1 once the payload is published.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Uint64
	arg  atomic.Uint64
	meta atomic.Uint64 // kind in the low byte, lane (as uint32) above it
}

func packMeta(k obs.EventKind, lane int32) uint64 {
	return uint64(k) | uint64(uint32(lane))<<32
}

func unpackMeta(m uint64) (obs.EventKind, int32) {
	return obs.EventKind(m & 0xff), int32(uint32(m >> 32))
}

// ring is a fixed-size overwrite-oldest event buffer. Writers reserve a
// position with one FAA on head, then publish through the slot's seqlock;
// the reader (Collector.Snapshot) validates seq around its copy and skips
// entries that were overwritten or still in flight.
type ring struct {
	//lf:contended every event reserves a slot with an FAA on this cursor
	head atomic.Uint64
	_    [56]byte

	slots []slot
	mask  uint64
}

func newRing(size int) *ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	// Round up to a power of two so reservation is a mask, not a modulo.
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

func (r *ring) record(ts uint64, k obs.EventKind, lane int32, arg uint64) {
	pos := r.head.Add(1) - 1
	s := &r.slots[pos&r.mask]
	s.seq.Store(0) // take the slot: readers skip it until republished
	s.ts.Store(ts)
	s.arg.Store(arg)
	s.meta.Store(packMeta(k, lane))
	s.seq.Store(pos + 1)
}

// drain copies the published events in [from, cut) that are still live
// into out, returning the updated slice and how many entries were lost to
// overwriting or torn by racing writers.
func (r *ring) drain(out []Event, from, cut uint64) ([]Event, uint64) {
	lo := from
	if size := uint64(len(r.slots)); cut > size && lo < cut-size {
		lo = cut - size // older entries are already overwritten
	}
	collected := uint64(0)
	for pos := lo; pos < cut; pos++ {
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			continue // overwritten, or a writer still owns the slot
		}
		ts, arg, meta := s.ts.Load(), s.arg.Load(), s.meta.Load()
		if s.seq.Load() != pos+1 {
			continue // torn: overwritten mid-copy
		}
		k, lane := unpackMeta(meta)
		out = append(out, Event{TS: ts, Arg: arg, Kind: k, Lane: lane})
		collected++
	}
	return out, (cut - from) - collected
}

// Option configures a Collector.
type Option func(*Collector)

// WithClock sets the timestamp source. The default is monotonic wall
// nanoseconds since the collector's creation; simulated-track harnesses
// pass the machine's cycle clock scaled to nanoseconds.
func WithClock(clock func() uint64) Option {
	return func(c *Collector) { c.clock = clock }
}

// WithRingSize sets the per-handle ring capacity in events (rounded up to
// a power of two).
func WithRingSize(n int) Option {
	return func(c *Collector) { c.ringSize = n }
}

// WithStats chains a counters recorder: every Inc/Add/Observe received by
// the collector or its handles is forwarded to it, so one wiring point
// yields both the counter snapshot and the event timeline.
func WithStats(r obs.Recorder) Option {
	return func(c *Collector) { c.stats = obs.Normalize(r) }
}

// WithClockName labels the clock domain recorded in drained traces
// ("wall-ns" by default; harnesses use "sim-ns").
func WithClockName(name string) Option {
	return func(c *Collector) { c.clockName = name }
}

// Collector owns the flight recorder: it issues per-handle rings, carries
// the shared clock, and drains everything into consistent snapshots. It
// implements obs.EventRecorder through a built-in handle (lane 0,
// labelled "main"), so it can be attached anywhere a Recorder goes.
type Collector struct {
	clock     func() uint64
	clockName string
	ringSize  int
	stats     obs.Recorder

	mu      sync.Mutex
	handles []*Handle
	epoch   uint64
	meta    map[string]string

	base *Handle
}

// New returns a Collector configured by opts.
func New(opts ...Option) *Collector {
	c := &Collector{ringSize: DefaultRingSize, clockName: "wall-ns", meta: map[string]string{}}
	for _, opt := range opts {
		opt(c)
	}
	if c.clock == nil {
		start := time.Now()
		c.clock = func() uint64 { return uint64(time.Since(start)) }
	}
	c.base = c.Handle("main")
	return c
}

// Handle issues a new recording handle with its own ring and lane. Like a
// queue handle it is meant for one goroutine at a time, but concurrent
// use is safe (events may interleave arbitrarily within the ring).
func (c *Collector) Handle(label string) *Handle {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := &Handle{c: c, lane: int32(len(c.handles)), label: label, ring: newRing(c.ringSize)}
	c.handles = append(c.handles, h)
	return h
}

// SetMeta attaches a key/value pair carried by every subsequent Snapshot
// (topology, lane-to-core mappings, workload labels — see Trace.Meta).
func (c *Collector) SetMeta(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.meta[key] = value
}

// Inc implements obs.Recorder by forwarding to the chained stats recorder.
func (c *Collector) Inc(ct obs.Counter) { c.base.Inc(ct) }

// Add implements obs.Recorder by forwarding to the chained stats recorder.
func (c *Collector) Add(ct obs.Counter, d uint64) { c.base.Add(ct, d) }

// Observe implements obs.Recorder by forwarding to the chained stats
// recorder.
func (c *Collector) Observe(s obs.Series, v uint64) { c.base.Observe(s, v) }

// Event implements obs.EventRecorder on the collector's built-in handle.
//
//lf:hotpath
func (c *Collector) Event(k obs.EventKind, lane int32, arg uint64) { c.base.Event(k, lane, arg) }

// Snapshot opens a new epoch and drains every ring up to its cut,
// returning the merged, time-sorted trace. It is safe to call while
// recording continues: events published after the cut are left for the
// next snapshot.
func (c *Collector) Snapshot() *Trace {
	c.mu.Lock()
	c.epoch++
	tr := &Trace{
		Epoch: c.epoch,
		Clock: c.clockName,
		Lanes: map[int32]string{},
		Meta:  map[string]string{},
	}
	for k, v := range c.meta {
		tr.Meta[k] = v
	}
	type cutPoint struct {
		h   *Handle
		cut uint64
	}
	cuts := make([]cutPoint, 0, len(c.handles))
	for _, h := range c.handles {
		cuts = append(cuts, cutPoint{h, h.ring.head.Load()})
		tr.Lanes[h.lane] = h.label
	}
	// Drained cursors are guarded by mu; the ring reads themselves only
	// touch published slots, so writers are never blocked.
	for _, cp := range cuts {
		var dropped uint64
		tr.Events, dropped = cp.h.ring.drain(tr.Events, cp.h.drained, cp.cut)
		cp.h.drained = cp.cut
		tr.Dropped += dropped
	}
	c.mu.Unlock()
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].TS < tr.Events[j].TS })
	return tr
}

// Handle is one recording lane: a private ring plus the collector's clock
// and chained counters. It implements obs.EventRecorder.
type Handle struct {
	c       *Collector
	lane    int32
	label   string
	ring    *ring
	drained uint64 // snapshot cursor; guarded by c.mu
}

// Lane returns the handle's lane id.
func (h *Handle) Lane() int32 { return h.lane }

// Inc implements obs.Recorder by forwarding to the chained stats recorder.
//
//lf:hotpath
func (h *Handle) Inc(ct obs.Counter) {
	if r := h.c.stats; r != nil {
		r.Inc(ct)
	}
}

// Add implements obs.Recorder by forwarding to the chained stats recorder.
//
//lf:hotpath
func (h *Handle) Add(ct obs.Counter, d uint64) {
	if r := h.c.stats; r != nil {
		r.Add(ct, d)
	}
}

// Observe implements obs.Recorder by forwarding to the chained stats
// recorder.
//
//lf:hotpath
func (h *Handle) Observe(s obs.Series, v uint64) {
	if r := h.c.stats; r != nil {
		r.Observe(s, v)
	}
}

// Event records one event in the handle's ring. obs.LaneDefault resolves
// to the handle's own lane.
//
//lf:hotpath
func (h *Handle) Event(k obs.EventKind, lane int32, arg uint64) {
	if lane == obs.LaneDefault {
		lane = h.lane
	}
	h.ring.record(h.c.clock(), k, lane, arg)
}

// Trace is one drained epoch: the merged, TS-sorted events of every ring,
// lane labels, and the recording metadata analysis needs.
type Trace struct {
	Events []Event
	// Lanes labels the collector-issued handle lanes. Machine-layer core
	// lanes (obs.MachineLane) are self-describing and not listed here.
	Lanes map[int32]string
	// Epoch is the snapshot generation that produced this trace.
	Epoch uint64
	// Dropped counts ring entries lost to overwriting before the drain.
	Dropped uint64
	// Clock names the timestamp domain: "wall-ns" or "sim-ns".
	Clock string
	// Meta carries harness-provided context. Reserved keys:
	//   sockets, cores_per_socket  — simulated topology
	//   lane_cores                 — "lane:core,..." queue-lane pinning
	//   variant, workload          — workload labels
	Meta map[string]string
}

// MetaInt returns the named Meta entry as an int, or def when absent or
// malformed.
func (t *Trace) MetaInt(key string, def int) int {
	var n int
	if _, err := fmt.Sscanf(t.Meta[key], "%d", &n); err != nil {
		return def
	}
	return n
}

// LaneCores decodes the lane_cores Meta entry into a lane→core map.
func (t *Trace) LaneCores() map[int32]int {
	out := map[int32]int{}
	s := t.Meta["lane_cores"]
	for len(s) > 0 {
		var lane, core int
		var rest string
		if n, _ := fmt.Sscanf(s, "%d:%d,%s", &lane, &core, &rest); n >= 2 {
			out[int32(lane)] = core
			if n == 3 {
				s = rest
				continue
			}
		}
		break
	}
	return out
}

// FormatLaneCores encodes a lane→core map for Trace.Meta["lane_cores"].
func FormatLaneCores(m map[int32]int) string {
	lanes := make([]int, 0, len(m))
	for l := range m {
		lanes = append(lanes, int(l))
	}
	sort.Ints(lanes)
	s := ""
	for i, l := range lanes {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d:%d", l, m[int32(l)])
	}
	return s
}
