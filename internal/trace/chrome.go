package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/obs"
)

// ChromeSchema versions the exported JSON so the analyzer can refuse
// files it does not understand.
const ChromeSchema = "sbqtrace/v1"

// Chrome trace_event process ids: queue-layer lanes render under one
// process group, machine-layer core lanes under another, so Perfetto
// shows the two layers as separate swimlane blocks.
const (
	chromePIDQueue   = 1
	chromePIDMachine = 2
)

// chromeEvent is one entry of the trace_event "traceEvents" array.
// Timestamps and durations are in microseconds (the format's unit);
// fractional values keep nanosecond precision.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

func usOf(ns uint64) float64 { return float64(ns) / 1e3 }
func nsOf(us float64) uint64 { return uint64(math.Round(us * 1e3)) }

func kindCat(k obs.EventKind) string {
	switch k {
	case obs.EvTxBegin, obs.EvTxCommit, obs.EvTxAbort:
		return "htm"
	case obs.EvCohGetS, obs.EvCohGetM:
		return "coh"
	case obs.EvBasketOpen, obs.EvBasketClose:
		return "basket"
	case obs.EvCASAttempt, obs.EvCASFailure, obs.EvCASFallback:
		return "cas"
	default:
		return "queue"
	}
}

func chromeLane(lane int32) (pid, tid int) {
	if obs.IsMachineLane(lane) {
		return chromePIDMachine, obs.LaneCore(lane)
	}
	return chromePIDQueue, int(lane)
}

// opEnd maps an op-start kind to its end kind.
func opEnd(k obs.EventKind) (obs.EventKind, bool) {
	switch k {
	case obs.EvEnqStart:
		return obs.EvEnqEnd, true
	case obs.EvDeqStart:
		return obs.EvDeqEnd, true
	}
	return 0, false
}

func opName(k obs.EventKind) string {
	if k == obs.EvEnqStart {
		return "enq"
	}
	return "deq"
}

// WriteChrome exports the trace as Chrome trace_event JSON. Operation
// start/end pairs on the same lane become complete ("X") slices so the
// viewer draws per-op duration bars; everything else becomes thread-
// scoped instant events. The export is lossless: raw kind and argument
// values ride in each event's args, and ReadChrome inverts the mapping.
func (t *Trace) WriteChrome(w io.Writer) error {
	f := chromeFile{DisplayTimeUnit: "ns", OtherData: map[string]string{}}
	for k, v := range t.Meta {
		f.OtherData[k] = v
	}
	f.OtherData["schema"] = ChromeSchema
	f.OtherData["clock"] = t.Clock
	f.OtherData["epoch"] = fmt.Sprint(t.Epoch)
	f.OtherData["dropped"] = fmt.Sprint(t.Dropped)

	// Process and thread name metadata.
	f.TraceEvents = append(f.TraceEvents,
		chromeEvent{Name: "process_name", Ph: "M", PID: chromePIDQueue,
			Args: map[string]any{"name": "queue"}},
		chromeEvent{Name: "process_name", Ph: "M", PID: chromePIDMachine,
			Args: map[string]any{"name": "machine"}},
	)
	lanes := make([]int32, 0, len(t.Lanes))
	for l := range t.Lanes {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	for _, l := range lanes {
		pid, tid := chromeLane(l)
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": t.Lanes[l], "lane": l},
		})
	}

	// Pair op start/end events per (lane, op) so concurrent lanes never
	// steal each other's ends; mismatches fall back to instants.
	type openOp struct{ idx int } // index into f.TraceEvents of the open X slice
	type opKey struct {
		lane int32
		kind obs.EventKind
	}
	open := map[opKey][]openOp{}
	startTS := map[int]uint64{}

	for _, e := range t.Events {
		pid, tid := chromeLane(e.Lane)
		if endKind, ok := opEnd(e.Kind); ok {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: opName(e.Kind), Cat: "queue", Ph: "X",
				TS: usOf(e.TS), PID: pid, TID: tid,
				Args: map[string]any{"sk": int(e.Kind), "ek": int(endKind), "sa": e.Arg, "l": e.Lane},
			})
			idx := len(f.TraceEvents) - 1
			k := opKey{e.Lane, e.Kind}
			open[k] = append(open[k], openOp{idx})
			startTS[idx] = e.TS
			continue
		}
		if e.Kind == obs.EvEnqEnd || e.Kind == obs.EvDeqEnd {
			sk := obs.EvEnqStart
			if e.Kind == obs.EvDeqEnd {
				sk = obs.EvDeqStart
			}
			k := opKey{e.Lane, sk}
			if stack := open[k]; len(stack) > 0 {
				op := stack[len(stack)-1]
				open[k] = stack[:len(stack)-1]
				ce := &f.TraceEvents[op.idx]
				ce.Dur = usOf(e.TS - startTS[op.idx])
				if ce.Dur == 0 {
					ce.Dur = 0.001 // minimum visible width: 1ns
				}
				ce.Args["ea"] = e.Arg
				continue
			}
			// Unmatched end: keep it as an instant so nothing is lost.
		}
		args := map[string]any{"k": int(e.Kind), "a": e.Arg, "l": e.Lane}
		if e.Kind == obs.EvTxAbort {
			args["reason"] = abortReasonString(obs.AbortReason(e.Arg))
			if req := obs.AbortRequester(e.Arg); req >= 0 {
				args["requester"] = req
			}
			if line := obs.AbortLine(e.Arg); line != 0 {
				args["line"] = fmt.Sprintf("%#x", line)
			}
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Cat: kindCat(e.Kind), Ph: "i", S: "t",
			TS: usOf(e.TS), PID: pid, TID: tid, Args: args,
		})
	}
	// Unmatched starts stay as zero-duration slices; give them the
	// minimum width so viewers render them.
	for _, stack := range open {
		for _, op := range stack {
			if f.TraceEvents[op.idx].Dur == 0 {
				f.TraceEvents[op.idx].Dur = 0.001
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

func abortReasonString(r uint8) string {
	s := ""
	add := func(bit uint8, name string) {
		if r&bit != 0 {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(obs.AbortConflict, "conflict")
	add(obs.AbortExplicit, "explicit")
	add(obs.AbortNested, "nested")
	add(obs.AbortCapacity, "capacity")
	add(obs.AbortSpurious, "spurious")
	add(obs.AbortTripped, "tripped")
	add(obs.AbortDisabled, "disabled")
	if s == "" {
		s = "none"
	}
	return s
}

func asUint64(v any) (uint64, bool) {
	switch x := v.(type) {
	case float64:
		return uint64(x), true
	case json.Number:
		n, err := x.Int64()
		if err != nil {
			return 0, false
		}
		return uint64(n), true
	}
	return 0, false
}

// ReadChrome parses a trace previously exported by WriteChrome back into
// a Trace. It refuses files without the sbqtrace schema marker: the
// analyzer's reconstructions depend on the raw kind/arg values WriteChrome
// embeds, which arbitrary trace_event files do not carry.
func ReadChrome(r io.Reader) (*Trace, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parsing trace_event JSON: %w", err)
	}
	if got := f.OtherData["schema"]; got != ChromeSchema {
		return nil, fmt.Errorf("trace: unsupported schema %q (want %q)", got, ChromeSchema)
	}
	t := &Trace{Clock: f.OtherData["clock"], Lanes: map[int32]string{}, Meta: map[string]string{}}
	for k, v := range f.OtherData {
		switch k {
		case "schema", "clock", "epoch", "dropped":
		default:
			t.Meta[k] = v
		}
	}
	fmt.Sscanf(f.OtherData["epoch"], "%d", &t.Epoch)
	fmt.Sscanf(f.OtherData["dropped"], "%d", &t.Dropped)

	for _, ce := range f.TraceEvents {
		switch ce.Ph {
		case "M":
			if ce.Name == "thread_name" {
				if lv, ok := asUint64(ce.Args["lane"]); ok {
					if name, ok := ce.Args["name"].(string); ok {
						t.Lanes[int32(uint32(lv))] = name
					}
				}
			}
		case "X":
			lane, lok := asUint64(ce.Args["l"])
			sk, skok := asUint64(ce.Args["sk"])
			ek, ekok := asUint64(ce.Args["ek"])
			if !lok || !skok || !ekok {
				continue
			}
			sa, _ := asUint64(ce.Args["sa"])
			start := nsOf(ce.TS)
			t.Events = append(t.Events, Event{TS: start, Arg: sa,
				Kind: obs.EventKind(sk), Lane: int32(uint32(lane))})
			if ea, ok := asUint64(ce.Args["ea"]); ok {
				t.Events = append(t.Events, Event{TS: start + nsOf(ce.Dur), Arg: ea,
					Kind: obs.EventKind(ek), Lane: int32(uint32(lane))})
			}
		case "i", "I":
			lane, lok := asUint64(ce.Args["l"])
			k, kok := asUint64(ce.Args["k"])
			if !lok || !kok {
				continue
			}
			a, _ := asUint64(ce.Args["a"])
			t.Events = append(t.Events, Event{TS: nsOf(ce.TS), Arg: a,
				Kind: obs.EventKind(k), Lane: int32(uint32(lane))})
		}
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].TS < t.Events[j].TS })
	return t, nil
}
