package trace

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func trippedAbort(ts uint64, core int) Event {
	return Event{TS: ts, Kind: obs.EvTxAbort, Lane: obs.MachineLane(core),
		Arg: obs.AbortArg(obs.AbortConflict|obs.AbortTripped, -1, 0x100)}
}

func TestAnalyzeChains(t *testing.T) {
	tr := &Trace{Events: []Event{
		// Chain of 3 (gaps 100 ≤ window) then, after a long gap, a chain of 2.
		trippedAbort(100, 0),
		trippedAbort(200, 1),
		trippedAbort(300, 2),
		trippedAbort(10_000, 3),
		trippedAbort(10_100, 4),
		// A non-tripped conflict abort must not join any chain.
		{TS: 150, Kind: obs.EvTxAbort, Lane: obs.MachineLane(5),
			Arg: obs.AbortArg(obs.AbortConflict, -1, 0x100)},
	}}
	// Events must be TS-sorted as Snapshot guarantees.
	sortEvents(tr)
	a := Analyze(tr, AnalyzeOptions{ChainWindow: 2000})
	cs := a.Chains
	if cs.TrippedAborts != 5 || cs.Chains != 2 || cs.Max != 3 {
		t.Fatalf("chains = %+v", cs)
	}
	if cs.Dist[3] != 1 || cs.Dist[2] != 1 {
		t.Fatalf("dist = %v", cs.Dist)
	}
	if cs.Mean != 2.5 {
		t.Fatalf("mean = %v, want 2.5", cs.Mean)
	}
}

func sortEvents(tr *Trace) {
	for i := 1; i < len(tr.Events); i++ {
		for j := i; j > 0 && tr.Events[j].TS < tr.Events[j-1].TS; j-- {
			tr.Events[j], tr.Events[j-1] = tr.Events[j-1], tr.Events[j]
		}
	}
}

func TestAnalyzeCascades(t *testing.T) {
	const line = 0x2a40
	conflict := func(ts uint64, core, requester int) Event {
		return Event{TS: ts, Kind: obs.EvTxAbort, Lane: obs.MachineLane(core),
			Arg: obs.AbortArg(obs.AbortConflict, requester, line)}
	}
	tr := &Trace{Events: []Event{
		{TS: 50, Kind: obs.EvCohGetM, Lane: obs.MachineLane(0), Arg: line},
		conflict(60, 1, 0),   // root: attributed to core 0's GetM
		conflict(70, 2, 1),   // child of the abort at t=60 (same line, diff core)
		conflict(80, 3, 2),   // grandchild
		conflict(900, 4, -1), // outside CascadeWindow of t=80: a new root
	}}
	a := Analyze(tr, AnalyzeOptions{CascadeWindow: 100})
	cs := a.Cascade
	if cs.Aborts != 4 {
		t.Fatalf("aborts = %d, want 4", cs.Aborts)
	}
	if cs.Roots != 2 || cs.MaxDepth != 2 {
		t.Fatalf("cascade = %+v", cs)
	}
	if cs.DepthDist[0] != 2 || cs.DepthDist[1] != 1 || cs.DepthDist[2] != 1 {
		t.Fatalf("depth dist = %v", cs.DepthDist)
	}
	if len(cs.Deepest) != 3 {
		t.Fatalf("deepest tree = %v, want 3 nodes", cs.Deepest)
	}
}

func TestAnalyzeOpsSocketSplit(t *testing.T) {
	// Topology: 4 cores per socket. Lane 0 runs on core 0 (socket 0),
	// lane 1 on core 5 (socket 1).
	tr := &Trace{
		Meta: map[string]string{
			"cores_per_socket": "4",
			"lane_cores":       FormatLaneCores(map[int32]int{0: 0, 1: 5}),
		},
		Events: []Event{
			// Op A on lane 0: a cross-socket conflict lands on core 0
			// mid-window (requester core 5 → socket 1).
			{TS: 1000, Kind: obs.EvEnqStart, Lane: 0},
			{TS: 1500, Kind: obs.EvTxAbort, Lane: obs.MachineLane(0),
				Arg: obs.AbortArg(obs.AbortConflict, 5, 0x40)},
			{TS: 2000, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
			// Op B on lane 0: clean.
			{TS: 3000, Kind: obs.EvEnqStart, Lane: 0},
			{TS: 3400, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
			// Op C on lane 0: intra-socket conflict (requester core 1).
			{TS: 5000, Kind: obs.EvEnqStart, Lane: 0},
			{TS: 5200, Kind: obs.EvTxAbort, Lane: obs.MachineLane(0),
				Arg: obs.AbortArg(obs.AbortConflict, 1, 0x40)},
			{TS: 5600, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
			// Empty dequeue on lane 1, clean.
			{TS: 1000, Kind: obs.EvDeqStart, Lane: 1},
			{TS: 1100, Kind: obs.EvDeqEnd, Lane: 1, Arg: 0},
		},
	}
	sortEvents(tr)
	a := Analyze(tr, AnalyzeOptions{})
	if a.Enq.Count != 3 || a.Enq.Empty != 0 {
		t.Fatalf("enq = %+v", a.Enq)
	}
	if a.Enq.Cross.Count != 1 || a.Enq.Intra.Count != 1 || a.Enq.Clean.Count != 1 {
		t.Fatalf("enq split cross=%d intra=%d clean=%d, want 1/1/1",
			a.Enq.Cross.Count, a.Enq.Intra.Count, a.Enq.Clean.Count)
	}
	if a.Enq.All.Count != 3 {
		t.Fatalf("enq all = %d, want 3", a.Enq.All.Count)
	}
	if a.Deq.Count != 1 || a.Deq.Empty != 1 || a.Deq.Clean.Count != 1 {
		t.Fatalf("deq = %+v", a.Deq)
	}
}

func TestAnalyzeBaskets(t *testing.T) {
	tr := &Trace{Events: []Event{
		{TS: 100, Kind: obs.EvBasketOpen, Lane: 0, Arg: 7},
		{TS: 600, Kind: obs.EvBasketClose, Lane: 1, Arg: 7},
		{TS: 700, Kind: obs.EvBasketOpen, Lane: 0, Arg: 8}, // never closes
		// Two successful enqueues for the ops/basket ratio.
		{TS: 110, Kind: obs.EvEnqStart, Lane: 0},
		{TS: 120, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
		{TS: 130, Kind: obs.EvEnqStart, Lane: 0},
		{TS: 140, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
	}}
	sortEvents(tr)
	a := Analyze(tr, AnalyzeOptions{})
	bs := a.Baskets
	if bs.Opened != 2 || bs.Closed != 1 {
		t.Fatalf("baskets = %+v", bs)
	}
	if bs.Lifetime.Count != 1 {
		t.Fatalf("lifetime count = %d, want 1", bs.Lifetime.Count)
	}
	if bs.OpsPerBasket != 1 {
		t.Fatalf("ops/basket = %v, want 1", bs.OpsPerBasket)
	}
}

func TestAnalysisFormat(t *testing.T) {
	tr := &Trace{
		Clock: "sim-ns",
		Meta: map[string]string{
			"cores_per_socket": "4",
			"lane_cores":       FormatLaneCores(map[int32]int{0: 0}),
		},
		Events: []Event{
			trippedAbort(100, 0),
			trippedAbort(200, 1),
			{TS: 1000, Kind: obs.EvEnqStart, Lane: 0},
			{TS: 2000, Kind: obs.EvEnqEnd, Lane: 0, Arg: 1},
			{TS: 500, Kind: obs.EvBasketOpen, Lane: 0, Arg: 1},
			{TS: 900, Kind: obs.EvBasketClose, Lane: 0, Arg: 1},
		},
	}
	sortEvents(tr)
	out := Analyze(tr, AnalyzeOptions{}).Format()
	for _, want := range []string{
		"tripped-writer serialization chains",
		"tripped aborts=2 chains=1",
		"abort cascades",
		"enqueue latency breakdown",
		"basket lifecycle",
		"opened=1 closed=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Empty traces must not panic or divide by zero.
	if out := Analyze(&Trace{}, AnalyzeOptions{}).Format(); out == "" {
		t.Error("empty-trace report is empty")
	}
}
