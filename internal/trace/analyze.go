package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"
)

// This file reconstructs the paper's temporal figures from a drained
// trace: §3's tripped-writer serialization chains, the abort-cascade
// trees behind §3.3's concurrent-failure argument, §4.3's intra- vs
// cross-socket conflict asymmetry as a per-op latency split, and the
// basket lifetime/occupancy statistics of §5.3. cmd/sbqtrace is the CLI.

// AnalyzeOptions tunes event attribution.
type AnalyzeOptions struct {
	// ChainWindow is the largest gap (trace-clock ns) between two
	// tripped-writer aborts that still chains them (default 2000).
	ChainWindow uint64
	// CascadeWindow is how far back (ns) a conflict abort searches for
	// the invalidation that caused it (default 1000).
	CascadeWindow uint64
	// CoresPerSocket overrides the trace's recorded topology.
	CoresPerSocket int
}

func (o AnalyzeOptions) withDefaults(t *Trace) AnalyzeOptions {
	if o.ChainWindow == 0 {
		o.ChainWindow = 2000
	}
	if o.CascadeWindow == 0 {
		o.CascadeWindow = 1000
	}
	if o.CoresPerSocket == 0 {
		o.CoresPerSocket = t.MetaInt("cores_per_socket", 0)
	}
	return o
}

// ChainStats is the tripped-writer serialization chain distribution (§3):
// maximal runs of tripped-writer aborts each within ChainWindow of its
// predecessor. Chain length k means k writers were tripped back-to-back —
// the serialization the paper's Figure 2 narrative describes.
type ChainStats struct {
	TrippedAborts int
	Chains        int
	Dist          map[int]int // chain length → count
	Max           int
	Mean          float64
}

// CascadeStats describes abort-cascade trees: each conflict abort is
// attributed to the nearest preceding ownership transfer (GetM) or abort
// on the same cache line from a different core within CascadeWindow.
type CascadeStats struct {
	Aborts    int // conflict aborts considered
	Roots     int // cascade trees
	MaxDepth  int
	DepthDist map[int]int // node depth → count
	Deepest   []string    // rendered deepest tree, one line per node
}

// OpStats summarizes one operation type's latency, split by conflict
// exposure: ops whose window saw a conflict abort on their own core are
// classified intra- or cross-socket by the conflicting requester's
// socket (§4.3); the rest are clean.
type OpStats struct {
	Count  int
	Empty  int // unsuccessful dequeues
	All    stats.Histogram
	Clean  stats.Histogram
	Intra  stats.Histogram
	Cross  stats.Histogram
	Uniden int // conflicted ops whose requester socket was unknown
}

// BasketStats summarizes basket lifecycle events.
type BasketStats struct {
	Opened       int
	Closed       int
	Lifetime     stats.Histogram // open→close, ns, for paired ids
	OpsPerBasket float64         // successful enqueues per opened basket
}

// Analysis is the full reconstruction.
type Analysis struct {
	Opt     AnalyzeOptions
	Clock   string
	Chains  ChainStats
	Cascade CascadeStats
	Enq     OpStats
	Deq     OpStats
	Baskets BasketStats
	Jobs    *JobSpanStats
	// Dropped is the trace's ring-overwrite loss. Nonzero drops mean every
	// figure below is reconstructed from a truncated event stream.
	Dropped uint64
}

// Analyze reconstructs chain, cascade, latency, basket, and job-span
// statistics from a drained trace.
func Analyze(t *Trace, opt AnalyzeOptions) *Analysis {
	opt = opt.withDefaults(t)
	a := &Analysis{Opt: opt, Clock: t.Clock, Dropped: t.Dropped}
	a.Chains = analyzeChains(t, opt)
	a.Cascade = analyzeCascades(t, opt)
	a.Enq, a.Deq = analyzeOps(t, opt)
	a.Baskets = analyzeBaskets(t, a.Enq.Count)
	a.Jobs = AnalyzeJobs(t)
	return a
}

func analyzeChains(t *Trace, opt AnalyzeOptions) ChainStats {
	cs := ChainStats{Dist: map[int]int{}}
	var prev uint64
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		cs.Chains++
		cs.Dist[run]++
		if run > cs.Max {
			cs.Max = run
		}
		run = 0
	}
	for _, e := range t.Events {
		if e.Kind != obs.EvTxAbort || obs.AbortReason(e.Arg)&obs.AbortTripped == 0 {
			continue
		}
		cs.TrippedAborts++
		if run > 0 && e.TS-prev > opt.ChainWindow {
			flush()
		}
		run++
		prev = e.TS
	}
	flush()
	if cs.Chains > 0 {
		cs.Mean = float64(cs.TrippedAborts) / float64(cs.Chains)
	}
	return cs
}

// cascadeNode is one abort in a cascade tree.
type cascadeNode struct {
	ev       Event
	children []int
	depth    int
}

func analyzeCascades(t *Trace, opt AnalyzeOptions) CascadeStats {
	cs := CascadeStats{DepthDist: map[int]int{}}
	// lastTouch[line] = index (into nodes) of the latest abort on that
	// line, and separately the latest GetM event, for attribution.
	type touch struct {
		ts   uint64
		node int // -1 for a GetM with no node
		core int
	}
	lastAbort := map[uint64]touch{}
	lastGetM := map[uint64]touch{}
	var nodes []cascadeNode
	parents := map[int]int{} // node → parent node

	for _, e := range t.Events {
		switch e.Kind {
		case obs.EvCohGetM:
			core := -1
			if obs.IsMachineLane(e.Lane) {
				core = obs.LaneCore(e.Lane)
			}
			lastGetM[e.Arg] = touch{ts: e.TS, node: -1, core: core}
		case obs.EvTxAbort:
			if obs.AbortReason(e.Arg)&obs.AbortConflict == 0 {
				continue
			}
			line := obs.AbortLine(e.Arg)
			if line == 0 {
				continue
			}
			core := -1
			if obs.IsMachineLane(e.Lane) {
				core = obs.LaneCore(e.Lane)
			}
			idx := len(nodes)
			nodes = append(nodes, cascadeNode{ev: e})
			// Prefer chaining to an earlier abort on the same line (the
			// cascade proper); fall back to the triggering GetM.
			if ta, ok := lastAbort[line]; ok && e.TS-ta.ts <= opt.CascadeWindow && ta.core != core {
				parents[idx] = ta.node
				nodes[ta.node].children = append(nodes[ta.node].children, idx)
			} else if tg, ok := lastGetM[line]; ok && e.TS-tg.ts <= opt.CascadeWindow && tg.core != core {
				// GetM-rooted: the abort is a root, but only counts as a
				// cascade of depth 0.
			}
			lastAbort[line] = touch{ts: e.TS, node: idx, core: core}
		}
	}
	cs.Aborts = len(nodes)
	// Depths.
	var depth func(i int) int
	depth = func(i int) int {
		if p, ok := parents[i]; ok {
			return depth(p) + 1
		}
		return 0
	}
	deepestIdx, deepestDepth := -1, -1
	for i := range nodes {
		d := depth(i)
		nodes[i].depth = d
		cs.DepthDist[d]++
		if d == 0 {
			cs.Roots++
		}
		if d > cs.MaxDepth {
			cs.MaxDepth = d
		}
		if d > deepestDepth {
			deepestDepth, deepestIdx = d, i
		}
	}
	// Render the deepest cascade's tree (root → leaf path plus siblings).
	if deepestIdx >= 0 && deepestDepth > 0 {
		root := deepestIdx
		for {
			p, ok := parents[root]
			if !ok {
				break
			}
			root = p
		}
		var render func(i, indent int)
		render = func(i, indent int) {
			e := nodes[i].ev
			core := "?"
			if obs.IsMachineLane(e.Lane) {
				core = fmt.Sprint(obs.LaneCore(e.Lane))
			}
			cs.Deepest = append(cs.Deepest, fmt.Sprintf("%s- t=%-8d core=%-3s %s line=%#x",
				strings.Repeat("  ", indent), e.TS, core,
				abortReasonString(obs.AbortReason(e.Arg)), obs.AbortLine(e.Arg)))
			for _, c := range nodes[i].children {
				render(c, indent+1)
			}
		}
		render(root, 0)
	}
	return cs
}

func analyzeOps(t *Trace, opt AnalyzeOptions) (enq, deq OpStats) {
	laneCore := t.LaneCores()
	socketOf := func(core int) int {
		if opt.CoresPerSocket <= 0 || core < 0 {
			return -1
		}
		return core / opt.CoresPerSocket
	}

	// Conflict aborts per core, time-sorted (trace events already are).
	type abort struct {
		ts        uint64
		reqSocket int
	}
	aborts := map[int][]abort{}
	for _, e := range t.Events {
		if e.Kind != obs.EvTxAbort || !obs.IsMachineLane(e.Lane) {
			continue
		}
		if obs.AbortReason(e.Arg)&obs.AbortConflict == 0 {
			continue
		}
		core := obs.LaneCore(e.Lane)
		aborts[core] = append(aborts[core], abort{e.TS, socketOf(obs.AbortRequester(e.Arg))})
	}

	classify := func(st *OpStats, lane int32, start, end uint64, ok bool) {
		st.Count++
		if !ok {
			st.Empty++
		}
		lat := end - start
		st.All.Observe(lat)
		core, known := laneCore[lane]
		if !known {
			st.Clean.Observe(lat)
			return
		}
		mySocket := socketOf(core)
		conflicted, cross, unident := false, false, false
		for _, ab := range aborts[core] {
			if ab.ts < start {
				continue
			}
			if ab.ts > end {
				break
			}
			conflicted = true
			switch {
			case ab.reqSocket < 0:
				unident = true
			case ab.reqSocket != mySocket:
				cross = true
			}
		}
		switch {
		case !conflicted:
			st.Clean.Observe(lat)
		case cross:
			st.Cross.Observe(lat)
		case unident:
			st.Uniden++
			st.Intra.Observe(lat)
		default:
			st.Intra.Observe(lat)
		}
	}

	// Pair start/end per lane (one simulated thread per lane, so a plain
	// last-start map suffices; native shared-lane traces degrade to
	// whole-lane pairing, which Format flags via mismatch counts).
	openEnq := map[int32]uint64{}
	openDeq := map[int32]uint64{}
	for _, e := range t.Events {
		switch e.Kind {
		case obs.EvEnqStart:
			openEnq[e.Lane] = e.TS
		case obs.EvEnqEnd:
			if s, ok := openEnq[e.Lane]; ok {
				delete(openEnq, e.Lane)
				classify(&enq, e.Lane, s, e.TS, e.Arg != 0)
			}
		case obs.EvDeqStart:
			openDeq[e.Lane] = e.TS
		case obs.EvDeqEnd:
			if s, ok := openDeq[e.Lane]; ok {
				delete(openDeq, e.Lane)
				classify(&deq, e.Lane, s, e.TS, e.Arg != 0)
			}
		}
	}
	return enq, deq
}

func analyzeBaskets(t *Trace, enqOps int) BasketStats {
	bs := BasketStats{}
	openTS := map[uint64]uint64{}
	for _, e := range t.Events {
		switch e.Kind {
		case obs.EvBasketOpen:
			bs.Opened++
			openTS[e.Arg] = e.TS
		case obs.EvBasketClose:
			bs.Closed++
			if s, ok := openTS[e.Arg]; ok {
				delete(openTS, e.Arg)
				bs.Lifetime.Observe(e.TS - s)
			}
		}
	}
	if bs.Opened > 0 {
		bs.OpsPerBasket = float64(enqOps) / float64(bs.Opened)
	}
	return bs
}

// histBar renders count as a proportional bar.
func histBar(count, max int, width int) string {
	if max == 0 {
		return ""
	}
	n := count * width / max
	if n == 0 && count > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// DroppedWarning renders the loud ring-overflow banner, or "" when the
// trace is complete. Every front-end presenting an analysis (sbqtrace, the
// chaos report) prints it, because silently truncated rings skew chain,
// cascade, and span figures.
func DroppedWarning(dropped uint64) string {
	if dropped == 0 {
		return ""
	}
	return fmt.Sprintf("WARNING: %d events were dropped (ring overwrote them before the drain).\n"+
		"         Chains, cascades, latency splits, and job spans below are\n"+
		"         reconstructed from a TRUNCATED stream; grow the ring\n"+
		"         (trace.WithRingSize) for complete figures.", dropped)
}

// Format renders the analysis as the sbqtrace report.
func (a *Analysis) Format() string {
	var b strings.Builder
	unit := "ns"
	if a.Clock == "sim-ns" {
		unit = "sim-ns"
	}

	if w := DroppedWarning(a.Dropped); w != "" {
		fmt.Fprintf(&b, "%s\n\n", w)
	}

	fmt.Fprintf(&b, "== tripped-writer serialization chains (§3) ==\n")
	fmt.Fprintf(&b, "tripped aborts=%d chains=%d mean-length=%.2f max=%d (window %d%s)\n",
		a.Chains.TrippedAborts, a.Chains.Chains, a.Chains.Mean, a.Chains.Max, a.Opt.ChainWindow, unit)
	if len(a.Chains.Dist) > 0 {
		lengths := make([]int, 0, len(a.Chains.Dist))
		maxCount := 0
		for l, c := range a.Chains.Dist {
			lengths = append(lengths, l)
			if c > maxCount {
				maxCount = c
			}
		}
		sort.Ints(lengths)
		for _, l := range lengths {
			c := a.Chains.Dist[l]
			fmt.Fprintf(&b, "  len=%-3d %6d %s\n", l, c, histBar(c, maxCount, 40))
		}
	}

	fmt.Fprintf(&b, "\n== abort cascades (§3.3) ==\n")
	fmt.Fprintf(&b, "conflict aborts=%d roots=%d max-depth=%d (window %d%s)\n",
		a.Cascade.Aborts, a.Cascade.Roots, a.Cascade.MaxDepth, a.Opt.CascadeWindow, unit)
	if len(a.Cascade.DepthDist) > 0 {
		depths := make([]int, 0, len(a.Cascade.DepthDist))
		for d := range a.Cascade.DepthDist {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		for _, d := range depths {
			fmt.Fprintf(&b, "  depth=%-3d %6d\n", d, a.Cascade.DepthDist[d])
		}
	}
	if len(a.Cascade.Deepest) > 0 {
		fmt.Fprintf(&b, "deepest cascade:\n")
		for _, line := range a.Cascade.Deepest {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}

	opSection := func(name string, st OpStats) {
		fmt.Fprintf(&b, "\n== %s latency breakdown (§4.3 split) ==\n", name)
		if st.Count == 0 {
			fmt.Fprintf(&b, "no %s operations recorded\n", name)
			return
		}
		fmt.Fprintf(&b, "ops=%d empty=%d\n", st.Count, st.Empty)
		rows := []struct {
			label string
			h     stats.Histogram
		}{
			{"all", st.All}, {"clean", st.Clean},
			{"intra-socket conflict", st.Intra}, {"cross-socket conflict", st.Cross},
		}
		for _, r := range rows {
			if r.h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-22s %s\n", r.label+":", r.h)
		}
		if st.Uniden > 0 {
			fmt.Fprintf(&b, "  (%d conflicted ops had an unidentified requester; counted intra)\n", st.Uniden)
		}
	}
	opSection("enqueue", a.Enq)
	opSection("dequeue", a.Deq)

	if a.Jobs != nil && a.Jobs.Jobs > 0 {
		fmt.Fprintf(&b, "\n%s", a.Jobs.Format())
	}

	fmt.Fprintf(&b, "\n== basket lifecycle (§5.3) ==\n")
	fmt.Fprintf(&b, "opened=%d closed=%d ops/basket=%.2f\n",
		a.Baskets.Opened, a.Baskets.Closed, a.Baskets.OpsPerBasket)
	if a.Baskets.Lifetime.Count > 0 {
		fmt.Fprintf(&b, "lifetime: %s\n", a.Baskets.Lifetime)
	}
	return b.String()
}
