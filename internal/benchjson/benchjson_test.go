package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func sample(ns float64) *File {
	f := New()
	f.CreatedAt = "2026-01-01T00:00:00Z"
	f.Results = []Result{
		{Impl: "SBQ-DCAS", Workload: "mixed", Threads: 4, Ops: 1000, NSPerOp: ns},
		{Impl: "MS-Queue", Workload: "mixed", Threads: 4, Ops: 1000, NSPerOp: 2 * ns},
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sample(100)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Results) != 2 || got.Results[0] != f.Results[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadRejectsForeignSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("want parse error")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	old, new := sample(100), sample(100)
	new.Results[0].NSPerOp = 125 // 25% slower: regression
	new.Results[1].NSPerOp = 150 // 25% faster: improvement, not flagged
	rep := Diff(old, new, 0.10)
	if len(rep.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(rep.Deltas))
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Impl != "MS-Queue" && regs[0].Impl != "SBQ-DCAS" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Impl != "SBQ-DCAS" || regs[0].Ratio != 1.25 {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
	out := rep.Format()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "(improved)") {
		t.Fatalf("format missing markers:\n%s", out)
	}
	if !strings.Contains(out, "1 regression(s)") {
		t.Fatalf("format missing verdict:\n%s", out)
	}
}

func TestDiffWithinNoise(t *testing.T) {
	old, new := sample(100), sample(100)
	new.Results[0].NSPerOp = 105 // 5% slower: within the 10% threshold
	rep := Diff(old, new, 0)     // 0 selects DefaultThreshold
	if rep.Threshold != DefaultThreshold {
		t.Fatalf("threshold = %v", rep.Threshold)
	}
	if n := len(rep.Regressions()); n != 0 {
		t.Fatalf("regressions = %d, want 0", n)
	}
	if !strings.Contains(rep.Format(), "no regressions") {
		t.Fatalf("format:\n%s", rep.Format())
	}
}

func TestDiffUnmatchedCellsAndEnv(t *testing.T) {
	old, new := sample(100), sample(100)
	old.Results = append(old.Results, Result{Impl: "LCRQ", Workload: "mixed", Threads: 8, NSPerOp: 50})
	new.Results = append(new.Results, Result{Impl: "FAAQ", Workload: "mixed", Threads: 8, NSPerOp: 60})
	new.NumCPU = old.NumCPU + 1
	rep := Diff(old, new, 0.10)
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0].Impl != "LCRQ" {
		t.Fatalf("only-old = %+v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0].Impl != "FAAQ" {
		t.Fatalf("only-new = %+v", rep.OnlyNew)
	}
	if !rep.EnvDiffer {
		t.Fatal("EnvDiffer should be set")
	}
	out := rep.Format()
	if !strings.Contains(out, "baseline only") || !strings.Contains(out, "no baseline") ||
		!strings.Contains(out, "environments differ") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old, new := sample(100), sample(100)
	old.Results[0].NSPerOp = 0
	rep := Diff(old, new, 0.10)
	for _, d := range rep.Deltas {
		if d.OldNSPerOp == 0 && (d.Regressed || d.Ratio != 0) {
			t.Fatalf("zero baseline mishandled: %+v", d)
		}
	}
}
