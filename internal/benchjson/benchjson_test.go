package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func sample(ns float64) *File {
	f := New()
	f.CreatedAt = "2026-01-01T00:00:00Z"
	f.Results = []Result{
		{Impl: "SBQ-DCAS", Workload: "mixed", Threads: 4, Ops: 1000, NSPerOp: ns},
		{Impl: "MS-Queue", Workload: "mixed", Threads: 4, Ops: 1000, NSPerOp: 2 * ns},
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sample(100)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Results) != 2 || got.Results[0] != f.Results[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadRejectsForeignSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("want parse error")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	old, new := sample(100), sample(100)
	new.Results[0].NSPerOp = 125 // 25% slower: regression
	new.Results[1].NSPerOp = 150 // 25% faster: improvement, not flagged
	rep := Diff(old, new, 0.10)
	if len(rep.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(rep.Deltas))
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Impl != "MS-Queue" && regs[0].Impl != "SBQ-DCAS" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Impl != "SBQ-DCAS" || regs[0].Ratio != 1.25 {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
	out := rep.Format()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "(improved)") {
		t.Fatalf("format missing markers:\n%s", out)
	}
	if !strings.Contains(out, "1 regression(s)") {
		t.Fatalf("format missing verdict:\n%s", out)
	}
}

func TestDiffWithinNoise(t *testing.T) {
	old, new := sample(100), sample(100)
	new.Results[0].NSPerOp = 105 // 5% slower: within the 10% threshold
	rep := Diff(old, new, 0)     // 0 selects DefaultThreshold
	if rep.Threshold != DefaultThreshold {
		t.Fatalf("threshold = %v", rep.Threshold)
	}
	if n := len(rep.Regressions()); n != 0 {
		t.Fatalf("regressions = %d, want 0", n)
	}
	if !strings.Contains(rep.Format(), "no regressions") {
		t.Fatalf("format:\n%s", rep.Format())
	}
}

func TestDiffUnmatchedCellsAndEnv(t *testing.T) {
	old, new := sample(100), sample(100)
	old.Results = append(old.Results, Result{Impl: "LCRQ", Workload: "mixed", Threads: 8, NSPerOp: 50})
	new.Results = append(new.Results, Result{Impl: "FAAQ", Workload: "mixed", Threads: 8, NSPerOp: 60})
	new.NumCPU = old.NumCPU + 1
	rep := Diff(old, new, 0.10)
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0].Impl != "LCRQ" {
		t.Fatalf("only-old = %+v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0].Impl != "FAAQ" {
		t.Fatalf("only-new = %+v", rep.OnlyNew)
	}
	if !rep.EnvDiffer {
		t.Fatal("EnvDiffer should be set")
	}
	out := rep.Format()
	if !strings.Contains(out, "baseline only") || !strings.Contains(out, "no baseline") ||
		!strings.Contains(out, "environments differ") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTxCASCells(t *testing.T) {
	// Cells measured under different speculation windows are distinct:
	// a -txcas sweep must not collapse into one baseline key.
	a := Result{Impl: "SBQ-TxCAS", Workload: "mixed", Threads: 4, NSPerOp: 100}
	b := a
	b.TxWindowNS = 270
	if a.key() == b.key() {
		t.Fatalf("window ignored by key: %q", a.key())
	}
	if got := b.label(); !strings.Contains(got, "w=270ns") {
		t.Fatalf("label = %q, want window dimension", got)
	}
	if got := a.label(); strings.Contains(got, "w=") {
		t.Fatalf("default-window label = %q, want no window dimension", got)
	}

	// Telemetry counters round-trip but never affect the comparison: two
	// runs with identical ns/op and wildly different counters diff clean.
	old, new := sample(100), sample(100)
	old.Results[0].Impl, new.Results[0].Impl = "SBQ-TxCAS", "SBQ-TxCAS"
	new.Results[0].CASAttempts = 5000
	new.Results[0].CASFailures = 40
	new.Results[0].TxSoftAborts = 960
	new.Results[0].TxSharerHints = 960
	new.Results[0].CASFailureRate = 0.008
	var buf bytes.Buffer
	if err := new.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0] != new.Results[0] {
		t.Fatalf("telemetry fields did not round-trip: %+v", got.Results[0])
	}
	rep := Diff(old, new, 0.10)
	if len(rep.Regressions()) != 0 || len(rep.OnlyNew) != 0 || len(rep.OnlyOld) != 0 {
		t.Fatalf("telemetry leaked into comparison: %+v", rep)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old, new := sample(100), sample(100)
	old.Results[0].NSPerOp = 0
	rep := Diff(old, new, 0.10)
	for _, d := range rep.Deltas {
		if d.OldNSPerOp == 0 && (d.Regressed || d.Ratio != 0) {
			t.Fatalf("zero baseline mishandled: %+v", d)
		}
	}
}
