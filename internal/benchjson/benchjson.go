// Package benchjson defines the schema-versioned JSON record emitted by
// cmd/sbqbench (-bench-json) and the comparison logic behind its -diff
// mode and the CI benchmark smoke job. The format is deliberately small:
// one file per benchmark invocation, one result per (impl, workload,
// threads) cell, environment fields so baselines from different machines
// are never silently compared as equals.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// Schema identifies the file format; readers reject files with a
// different schema string rather than misinterpreting them.
const Schema = "sbqbench/v1"

// DefaultThreshold is the relative slowdown -diff flags as a regression
// when no explicit threshold is given. Wall-clock benchmarks on shared
// machines are noisy; 10% keeps the report-only signal usable.
const DefaultThreshold = 0.10

// Result is one measured cell.
type Result struct {
	Impl     string `json:"impl"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	// Batch is the batch size driven through EnqueueBatch/DequeueBatch;
	// zero means the single-operation path (plain Enqueue/Dequeue), which
	// also keeps pre-batch baseline files comparable: their cells decode
	// with Batch zero and match new single-op runs.
	Batch int `json:"batch,omitempty"`
	// Shards is the explicit shard count the queue was built with; zero
	// means the entry's default (or an unsharded entry).
	Shards int `json:"shards,omitempty"`
	// Pooled reports whether the queue ran in pooled-node mode
	// (WithNodePool: reclaim-backed freelists, zero steady-state
	// allocations) rather than leaning on the garbage collector. False —
	// the GC mode every pre-pooling baseline measured — is omitted, so
	// old files decode to comparable cells.
	Pooled bool `json:"pooled,omitempty"`
	// TxWindowNS is the TxCAS speculation window in nanoseconds for cells
	// measured with an explicit -txcas sweep value; zero means the entry's
	// default window (or a non-TxCAS entry), so pre-TxCAS baselines decode
	// to comparable cells.
	TxWindowNS int64   `json:"txcas_window_ns,omitempty"`
	Ops        int     `json:"ops_per_thread"`
	NSPerOp    float64 `json:"ns_per_op"`
	// Telemetry counters, recorded when the run was invoked with -stats;
	// zero otherwise. They identify where a speedup comes from — the TxCAS
	// entries must show soft aborts displacing issued-and-failed CASes (the
	// paper's §3 profit) — and are ignored by Diff, which compares ns/op.
	CASAttempts   uint64 `json:"cas_attempts,omitempty"`
	CASFailures   uint64 `json:"cas_failures,omitempty"`
	TxSoftAborts  uint64 `json:"tx_soft_aborts,omitempty"`
	TxSharerHints uint64 `json:"tx_sharer_hints,omitempty"`
	// CASFailureRate is CASFailures / CASAttempts for the cell (0 when no
	// attempts were recorded).
	CASFailureRate float64 `json:"cas_failure_rate,omitempty"`
}

// key identifies the cell a result belongs to, for baseline matching.
func (r Result) key() string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%t|%d", r.Impl, r.Workload, r.Threads, r.Batch, r.Shards, r.Pooled, r.TxWindowNS)
}

// label renders the workload cell for tables: the workload name plus the
// batch/shard/pooled dimensions when they are set.
func (r Result) label() string {
	l := r.Workload
	if r.Batch > 0 {
		l += fmt.Sprintf("/k=%d", r.Batch)
	}
	if r.Shards > 0 {
		l += fmt.Sprintf("/s=%d", r.Shards)
	}
	if r.Pooled {
		l += "/pooled"
	}
	if r.TxWindowNS > 0 {
		l += fmt.Sprintf("/w=%dns", r.TxWindowNS)
	}
	return l
}

// File is one benchmark invocation's record.
type File struct {
	Schema    string   `json:"schema"`
	CreatedAt string   `json:"created_at,omitempty"` // RFC 3339, filled by the writer's caller
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Results   []Result `json:"results"`
}

// New returns a File stamped with the current environment.
func New() *File {
	return &File{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Write serializes f as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read parses a benchjson file, rejecting other schemas.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchjson: schema %q is not %q", f.Schema, Schema)
	}
	return &f, nil
}

// Delta is one compared cell.
type Delta struct {
	Result             // the new measurement
	OldNSPerOp float64 // baseline ns/op
	Ratio      float64 // new/old; >1 is slower
	Regressed  bool    // Ratio exceeds 1+threshold
}

// Report is the outcome of comparing a new file against a baseline.
type Report struct {
	Threshold float64
	Deltas    []Delta  // cells present in both files, baseline order preserved where possible
	OnlyOld   []Result // baseline cells the new run did not measure
	OnlyNew   []Result // new cells with no baseline
	EnvDiffer bool     // environment fields differ between the files
}

// Regressions returns the deltas flagged as regressed.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Diff compares a new run against a baseline. threshold <= 0 selects
// DefaultThreshold. The comparison is report-only by design: wall-clock
// numbers regress for many reasons besides the code under test, so the
// caller decides what (if anything) fails.
func Diff(old, new *File, threshold float64) *Report {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &Report{Threshold: threshold}
	rep.EnvDiffer = old.GoVersion != new.GoVersion || old.GOOS != new.GOOS ||
		old.GOARCH != new.GOARCH || old.NumCPU != new.NumCPU

	oldByKey := map[string]Result{}
	for _, r := range old.Results {
		oldByKey[r.key()] = r
	}
	newSeen := map[string]bool{}
	for _, r := range new.Results {
		newSeen[r.key()] = true
		o, ok := oldByKey[r.key()]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, r)
			continue
		}
		d := Delta{Result: r, OldNSPerOp: o.NSPerOp}
		if o.NSPerOp > 0 {
			d.Ratio = r.NSPerOp / o.NSPerOp
			d.Regressed = d.Ratio > 1+threshold
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, r := range old.Results {
		if !newSeen[r.key()] {
			rep.OnlyOld = append(rep.OnlyOld, r)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].key() < rep.Deltas[j].key() })
	return rep
}

// Format renders the report as an aligned, human-readable table with a
// one-line verdict, suitable for CI logs.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-14s %8s %12s %12s %8s\n", "impl", "workload", "threads", "old ns/op", "new ns/op", "ratio")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSION"
		} else if d.Ratio > 0 && d.Ratio < 1-r.Threshold {
			mark = "  (improved)"
		}
		fmt.Fprintf(&b, "%-14s %-14s %8d %12.1f %12.1f %7.2fx%s\n",
			d.Impl, d.label(), d.Threads, d.OldNSPerOp, d.NSPerOp, d.Ratio, mark)
	}
	for _, o := range r.OnlyOld {
		fmt.Fprintf(&b, "%-14s %-14s %8d   baseline only (not measured in new run)\n", o.Impl, o.label(), o.Threads)
	}
	for _, n := range r.OnlyNew {
		fmt.Fprintf(&b, "%-14s %-14s %8d   new cell (no baseline)\n", n.Impl, n.label(), n.Threads)
	}
	if r.EnvDiffer {
		b.WriteString("note: environments differ between baseline and new run; ratios are indicative only\n")
	}
	if n := len(r.Regressions()); n > 0 {
		fmt.Fprintf(&b, "%d regression(s) beyond %.0f%% (report-only)\n", n, 100*r.Threshold)
	} else {
		fmt.Fprintf(&b, "no regressions beyond %.0f%%\n", 100*r.Threshold)
	}
	return b.String()
}
