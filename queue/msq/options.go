package msq

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	rec    obs.Recorder
	pooled bool
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts, linking-CAS attempts and failures, and
// retries. A nil or obs.Nop recorder disables telemetry at the cost of one
// nil check per event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}

// WithNodePool enables pooled-node mode: nodes recycle through a
// reclaim-backed freelist (per-P via sync.Pool) with epoch-deferred
// reuse, so steady-state enqueue/dequeue allocate nothing and the queue
// stops leaning on the garbage collector under sustained load. The
// trade is one guard acquire/announce per operation.
func WithNodePool() Option {
	return func(o *options) { o.pooled = true }
}
