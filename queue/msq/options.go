package msq

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	rec obs.Recorder
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts, linking-CAS attempts and failures, and
// retries. A nil or obs.Nop recorder disables telemetry at the cost of one
// nil check per event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}
