// Package msq implements the Michael-Scott lock-free MPMC queue, the
// classic CAS-based design the baskets queue builds on. Its enqueue
// blindly retries a contended CAS on the tail node's next pointer — the
// non-scalable behavior the paper's introduction starts from.
package msq

import (
	"sync/atomic"

	"repro/internal/obs"
)

type node[T any] struct {
	v    T
	next atomic.Pointer[node[T]]
}

// Queue is a Michael-Scott queue. The zero value is not usable; call New.
type Queue[T any] struct {
	//lf:contended swung by every dequeuer
	head atomic.Pointer[node[T]]
	_    [56]byte
	//lf:contended every enqueuer races the linking CAS and then swings tail
	tail atomic.Pointer[node[T]]
	_    [56]byte
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	s := &node[T]{}
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v, retrying its linking CAS until it wins.
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	n := &node[T]{v: v}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		q.event(obs.EvCASAttempt, 0)
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.event(obs.EvEnqEnd, 1)
			return
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		q.event(obs.EvCASFailure, 0)
	}
}

// Dequeue removes the oldest element.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.v
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		q.event(obs.EvCASAttempt, 0)
		if q.head.CompareAndSwap(head, next) {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		q.event(obs.EvCASFailure, 0)
	}
}
