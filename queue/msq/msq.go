// Package msq implements the Michael-Scott lock-free MPMC queue, the
// classic CAS-based design the baskets queue builds on. Its enqueue
// blindly retries a contended CAS on the tail node's next pointer — the
// non-scalable behavior the paper's introduction starts from.
//
// WithNodePool switches the queue to pooled-node mode: nodes recycle
// through a reclaim.Pool freelist instead of churning the garbage
// collector, with epoch guards (announce-and-verify on head/tail, node
// stamps increasing along the list) deferring reuse until no in-flight
// operation can still touch a retired node. The steady state then
// allocates nothing per operation — the invariant the allocfree
// analyzer and queuetest's AllocsPerRun gates enforce.
package msq

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/reclaim"
)

type node[T any] struct {
	// stamp orders nodes along the list (each node's stamp is its
	// predecessor's plus one), so protecting a node's stamp protects
	// everything reachable forward of it. Atomic because a stale reader
	// may race a pooled node's re-stamping; see reclaim's protocol note.
	stamp atomic.Uint64
	v     T
	next  atomic.Pointer[node[T]]
}

// Queue is a Michael-Scott queue. The zero value is not usable; call New.
type Queue[T any] struct {
	//lf:contended swung by every dequeuer
	head atomic.Pointer[node[T]]
	_    [56]byte
	//lf:contended every enqueuer races the linking CAS and then swings tail
	tail atomic.Pointer[node[T]]
	_    [56]byte
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder

	// epoch/pool are non-nil in pooled-node mode (WithNodePool).
	epoch *reclaim.Epoch
	pool  *reclaim.Pool[node[T]]
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	if o.pooled {
		q.epoch = reclaim.NewEpoch()
		q.pool = reclaim.NewPool(q.epoch, func() *node[T] { return &node[T]{} }, func(n *node[T]) {
			var zero T
			n.v = zero // drop element references while parked in the freelist
			n.next.Store(nil)
		})
	}
	s := &node[T]{}
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// getNode returns a fresh or recycled node with next already nil.
func (q *Queue[T]) getNode() *node[T] {
	if p := q.pool; p != nil {
		return p.Get()
	}
	//lint:ignore allocfree GC mode allocates one node per enqueue by design; WithNodePool is the zero-alloc configuration the gates enforce
	return &node[T]{}
}

// Enqueue appends v, retrying its linking CAS until it wins.
//
//lf:hotpath
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	n := q.getNode()
	n.v = v
	n.next.Store(nil)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		tail := q.tail.Load()
		if g != nil {
			g.Protect(tail.stamp.Load())
		}
		next := tail.next.Load()
		if tail != q.tail.Load() {
			// Doubles as the announce-and-verify re-load: once it
			// passes, tail is pinned against reuse.
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		n.stamp.Store(tail.stamp.Load() + 1)
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		q.event(obs.EvCASAttempt, 0)
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			if g != nil {
				q.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, 1)
			return
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		q.event(obs.EvCASFailure, 0)
	}
}

// Dequeue removes the oldest element.
//
//lf:hotpath
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		head := q.head.Load()
		if g != nil {
			g.Protect(head.stamp.Load())
		}
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			// Announce-and-verify re-load; past here head (and next,
			// whose stamp exceeds head's) are pinned against reuse.
			continue
		}
		if next == nil {
			if g != nil {
				q.epoch.Release(g)
			}
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.v
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		q.event(obs.EvCASAttempt, 0)
		if q.head.CompareAndSwap(head, next) {
			if q.pool != nil {
				stamp := head.stamp.Load()
				q.epoch.Release(g)
				g = nil
				q.pool.Retire(stamp, head)
			} else if g != nil {
				q.epoch.Release(g)
			}
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		q.event(obs.EvCASFailure, 0)
	}
}
