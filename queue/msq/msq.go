// Package msq implements the Michael-Scott lock-free MPMC queue, the
// classic CAS-based design the baskets queue builds on. Its enqueue
// blindly retries a contended CAS on the tail node's next pointer — the
// non-scalable behavior the paper's introduction starts from.
package msq

import (
	"sync/atomic"

	"repro/internal/obs"
)

type node[T any] struct {
	v    T
	next atomic.Pointer[node[T]]
}

// Queue is a Michael-Scott queue. The zero value is not usable; call New.
type Queue[T any] struct {
	//lf:contended swung by every dequeuer
	head atomic.Pointer[node[T]]
	_    [56]byte
	//lf:contended every enqueuer races the linking CAS and then swings tail
	tail atomic.Pointer[node[T]]
	_    [56]byte
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec}
	s := &node[T]{}
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v, retrying its linking CAS until it wins.
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	n := &node[T]{v: v}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			return
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
	}
}

// Dequeue removes the oldest element.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			return zero, false
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.v
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		if q.head.CompareAndSwap(head, next) {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			return v, true
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
	}
}
