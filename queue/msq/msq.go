// Package msq implements the Michael-Scott lock-free MPMC queue, the
// classic CAS-based design the baskets queue builds on. Its enqueue
// blindly retries a contended CAS on the tail node's next pointer — the
// non-scalable behavior the paper's introduction starts from.
package msq

import "sync/atomic"

type node[T any] struct {
	v    T
	next atomic.Pointer[node[T]]
}

// Queue is a Michael-Scott queue. The zero value is not usable; call New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]]
	tail atomic.Pointer[node[T]]
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	s := &node[T]{}
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v, retrying its linking CAS until it wins.
func (q *Queue[T]) Enqueue(v T) {
	n := &node[T]{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// Dequeue removes the oldest element.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return zero, false
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.v
		if q.head.CompareAndSwap(head, next) {
			return v, true
		}
	}
}
