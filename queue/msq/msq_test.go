package msq_test

import (
	"testing"

	"repro/queue"
	"repro/queue/msq"
	"repro/queue/queuetest"
)

func factory() queuetest.Factory {
	return queuetest.Shared(func(int) queue.Queue[uint64] { return msq.New[uint64]() })
}

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, factory())
}

func TestAlternating(t *testing.T) {
	q := msq.New[int]()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("round %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestTwoInFlight(t *testing.T) {
	q := msq.New[int]()
	for i := 0; i < 50; i++ {
		q.Enqueue(2 * i)
		q.Enqueue(2*i + 1)
		v1, ok1 := q.Dequeue()
		v2, ok2 := q.Dequeue()
		if !ok1 || !ok2 || v1 != 2*i || v2 != 2*i+1 {
			t.Fatalf("round %d: got (%d,%v) (%d,%v)", i, v1, ok1, v2, ok2)
		}
	}
}
