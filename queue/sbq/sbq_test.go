package sbq_test

import (
	"sync"
	"testing"
	"time"

	"repro/basket"
	"repro/queue"
	"repro/queue/queuetest"
	"repro/queue/sbq"
)

// factory hands each producer goroutine its own handle, as SBQ requires.
func factory(mk func(enqueuers int) *sbq.Queue[uint64]) queuetest.Factory {
	return func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
		q := mk(producers)
		handles := make([]queue.Queue[uint64], producers)
		var mu sync.Mutex
		prod := func(i int) queue.Queue[uint64] {
			mu.Lock()
			defer mu.Unlock()
			if handles[i] == nil {
				handles[i] = q.NewHandle()
			}
			return handles[i]
		}
		cons := func(int) queue.Queue[uint64] { return queueView[uint64]{q} }
		return prod, cons
	}
}

// queueView adapts the consumer side (Dequeue-only) to queue.Queue.
type queueView[T any] struct{ q *sbq.Queue[T] }

func (v queueView[T]) Enqueue(T) { panic("consumer view cannot enqueue") }
func (v queueView[T]) Dequeue() (T, bool) {
	return v.q.Dequeue()
}

func TestConformancePlainCAS(t *testing.T) {
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.New[uint64](sbq.WithEnqueuers(e))
	}))
}

func TestConformanceDelayedCAS(t *testing.T) {
	if testing.Short() {
		t.Skip("delayed CAS is slow by design")
	}
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.NewDelayedCAS[uint64](e, 200*time.Nanosecond)
	}))
}

func TestConformanceClosingStackBasket(t *testing.T) {
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.NewWithOptions[uint64](e, 0, func() basket.Basket[uint64] {
			return basket.NewClosingStack[uint64]()
		})
	}))
}

func TestConformancePartitionedBasket(t *testing.T) {
	// The §8 future-work extension: partitioned extraction must preserve
	// queue linearizability.
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.NewWithOptions[uint64](e, 0, func() basket.Basket[uint64] {
			return basket.New[uint64](basket.WithCapacity(e), basket.WithBound(e), basket.WithPartitions(2))
		})
	}))
}

func TestSequentialFIFO(t *testing.T) {
	q := sbq.New[int](sbq.WithEnqueuers(1))
	h := q.NewHandle()
	for i := 0; i < 500; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < 500; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("index %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
}

func TestHandleLimit(t *testing.T) {
	q := sbq.New[int](sbq.WithEnqueuers(1))
	q.NewHandle()
	defer func() {
		if recover() == nil {
			t.Error("excess handle did not panic")
		}
	}()
	q.NewHandle()
}

func TestBadEnqueuersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero enqueuers did not panic")
		}
	}()
	sbq.New[int](sbq.WithEnqueuers(0))
}

func TestBadBasketTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched WithBasket element type did not panic")
		}
	}()
	sbq.New[int](sbq.WithBasket(func() basket.Basket[string] {
		return basket.NewClosingStack[string]()
	}))
}

func TestNodeReuseKeepsElements(t *testing.T) {
	// Hammer one producer against one consumer so failed appends and node
	// reuse happen, and verify no element is lost or duplicated.
	q := sbq.New[uint64](sbq.WithEnqueuers(2))
	h1, h2 := q.NewHandle(), q.NewHandle()
	const per = 5000
	var wg sync.WaitGroup
	for i, h := range []*sbq.Handle[uint64]{h1, h2} {
		i, h := i, h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				h.Enqueue(uint64(i+1)<<32 | uint64(k))
			}
		}()
	}
	seen := make(map[uint64]bool, 2*per)
	var mu sync.Mutex
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := 0
			for got < per {
				if v, ok := q.Dequeue(); ok {
					mu.Lock()
					if seen[v] {
						t.Errorf("duplicate %#x", v)
					}
					seen[v] = true
					mu.Unlock()
					got++
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != 2*per {
		t.Fatalf("saw %d of %d elements", len(seen), 2*per)
	}
}
