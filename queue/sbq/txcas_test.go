package sbq_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/txcas"
	"repro/queue/queuetest"
	"repro/queue/sbq"
)

func TestConformanceTxCAS(t *testing.T) {
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.New[uint64](sbq.WithEnqueuers(e), sbq.WithTxCAS())
	}))
}

func TestConformanceTxCASPooled(t *testing.T) {
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.New[uint64](sbq.WithEnqueuers(e), sbq.WithTxCAS(), sbq.WithNodePool())
	}))
}

func TestConformanceTxCASPolicy(t *testing.T) {
	queuetest.RunAll(t, factory(func(e int) *sbq.Queue[uint64] {
		return sbq.New[uint64](sbq.WithEnqueuers(e),
			sbq.WithTxCAS(txcas.WithPolicy(policy.ImmediateRetry{Jitter: 64})))
	}))
}

// TestTxCASTelemetry drives contending enqueuers through the TxCAS append
// and checks the engine's accounting discipline: every conflict resolves
// as either a counted CAS failure or a soft abort, never both, and soft
// aborts carry sharer hints.
func TestTxCASTelemetry(t *testing.T) {
	rec := obs.New()
	const enq, per = 4, 2000
	q := sbq.New[uint64](
		sbq.WithEnqueuers(enq),
		sbq.WithTxCAS(txcas.WithWindow(2*time.Microsecond)),
		sbq.WithRecorder(rec),
	)
	var wg sync.WaitGroup
	for i := 0; i < enq; i++ {
		wg.Add(1)
		h := q.NewHandle()
		go func(base uint64) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Enqueue(base + uint64(j))
			}
		}(uint64(i * per))
	}
	wg.Wait()
	drain(t, q, enq*per)

	snap := rec.Snapshot()
	if got := snap.Counter(obs.EnqOps); got != enq*per {
		t.Fatalf("EnqOps=%d, want %d", got, enq*per)
	}
	// Every element landed, so the linking CASes that were issued and won
	// plus the appends absorbed by baskets account for all ops; the engine
	// must have recorded at least one attempt (the first link).
	if snap.Counter(obs.CASAttempts) == 0 {
		t.Fatal("no CAS attempts recorded in TxCAS mode")
	}
	// Soft aborts may or may not occur depending on scheduling; when they
	// do, each must have carried a sharer hint (the winner had published).
	soft := snap.Counter(obs.TxSoftAborts)
	hints := snap.Counter(obs.TxSharerHints)
	if soft > 0 && hints == 0 {
		t.Errorf("TxSoftAborts=%d but TxSharerHints=0: soft aborts must harvest the published winner", soft)
	}
	t.Logf("txcas telemetry: attempts=%d failures=%d soft=%d hints=%d",
		snap.Counter(obs.CASAttempts), snap.Counter(obs.CASFailures), soft, hints)
}

// TestDeprecatedWithAppendPolicy pins the deprecated wrapper to its
// documented replacement: it must route through the TxCAS engine with a
// zero window, so appends succeed and policy fallback decisions are
// honored as plain delayed CASes.
func TestDeprecatedWithAppendPolicy(t *testing.T) {
	rec := obs.New()
	q := sbq.New[uint64](
		sbq.WithEnqueuers(2),
		sbq.WithAppendPolicy(policy.DelayedCAS{Delay: 25}),
		sbq.WithRecorder(rec),
	)
	h0, h1 := q.NewHandle(), q.NewHandle()
	const per = 200
	for i := 0; i < per; i++ {
		h0.Enqueue(uint64(i))
		h1.Enqueue(uint64(per + i))
	}
	drain(t, q, 2*per)
	snap := rec.Snapshot()
	// DelayedCAS always answers Fallback, so every linking CAS is counted
	// as a fallback resolution by the engine.
	if snap.Counter(obs.CASFallbacks) == 0 {
		t.Error("WithAppendPolicy(DelayedCAS) recorded no fallback CASes; wrapper is not routing through the engine")
	}
	if snap.Counter(obs.CASAttempts) < snap.Counter(obs.CASFallbacks) {
		t.Error("fallback CASes not counted as attempts")
	}
}
