// Package sbq implements the paper's scalable baskets queue natively in
// Go: the modular baskets queue of §5.2 (Algorithms 2-6) with a pluggable
// basket (§5.2.1) and a pluggable try_append CAS strategy.
//
// Go exposes no hardware transactional memory and its runtime would abort
// transactional sections, so the native SBQ cannot use the HTM TxCAS; it
// ships with plain and delayed CAS (the SBQ-CAS variant the paper
// evaluates to isolate TxCAS's contribution, §6.1) and, via WithTxCAS,
// the software TxCAS of repro/internal/txcas: contending enqueuers watch
// a publication gate during a calibrated speculation window and abandon
// doomed linking CASes before issuing them, harvesting the winner's
// identity from the failure — the paper's profit-from-failure effect
// approximated on real cores. The HTM-backed SBQ runs on the repository's
// simulated machine (repro/internal/simqueue).
//
// The basket must guarantee the property of §5.3.2: once the basket is
// indicated empty, every future Extract fails. Both baskets in
// repro/basket satisfy it.
//
// Threads interact with the queue through handles: each producer goroutine
// needs its own Handle (carrying its basket cell index and its reusable
// node); consumers may share one or use handles too. Memory reclamation is
// delegated to Go's garbage collector by default; WithNodePool switches to
// pooled-node mode, where nodes (and their baskets, re-armed via
// basket.Resettable) recycle through a reclaim.Pool under epoch guards —
// the native analogue of the paper's epoch scheme, which is otherwise
// reproduced on the simulator where memory is manual.
//
// Queues are built with functional options:
//
//	q := sbq.New[uint64](
//		sbq.WithEnqueuers(8),
//		sbq.WithAppendDelay(270*time.Nanosecond),
//		sbq.WithRecorder(rec),
//	)
package sbq

import (
	"sync/atomic"
	"time"

	"repro/basket"
	"repro/internal/obs"
	"repro/internal/txcas"
	"repro/reclaim"
)

// node is a queue node: a basket plus a link and a position index.
type node[T any] struct {
	basket basket.Basket[T]
	next   atomic.Pointer[node[T]]
	// index is the node's position in the list (predecessor's plus one);
	// it doubles as the pooled-mode reclamation stamp. Atomic because a
	// stale reader may race a pooled node's re-stamping (see reclaim's
	// protocol note).
	index atomic.Uint64
	// retired arbitrates the head- and tail-side passes that may
	// concurrently discover the node is behind both pointers; only the
	// CAS winner retires it.
	retired atomic.Bool
}

// appendFn attempts CAS(next, nil, n) and reports success. PlainCAS and
// delayed-CAS strategies are selected through WithAppendDelay.
type appendFn[T any] func(next *atomic.Pointer[node[T]], n *node[T]) bool

// Queue is the scalable baskets queue.
type Queue[T any] struct {
	//lf:contended swung by every dequeuer's advanceNode catch-up CAS
	head atomic.Pointer[node[T]]
	_    [56]byte
	//lf:contended every enqueuer races the linking CAS and then swings tail
	tail atomic.Pointer[node[T]]
	_    [56]byte

	// gate is the TxCAS-mode publication channel for the linking CAS
	// (nil engine = unused). One gate serves every node's next field:
	// exactly one list node has a nil next at any moment, so the family
	// is one-shot in the sense txcas.Gate requires — any win published
	// while a contender holds a nil-next snapshot dooms that contender's
	// CAS, whichever node the winner linked. (Gate carries its own
	// padding; see internal/txcas.)
	gate txcas.Gate

	enqueuers int
	tryCAS    appendFn[T]
	// eng is non-nil in TxCAS mode (WithTxCAS): tryAppend then routes the
	// linking CAS through txcas.GuardedCAS and the engine owns the CAS
	// telemetry, so soft aborts genuinely reduce measured attempts and
	// failures.
	eng       *txcas.Engine
	newBasket func() basket.Basket[T]
	rec       obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector). Producer events land on lane=handle id;
	// dequeues use the collector handle's own lane (obs.LaneDefault).
	ev obs.EventRecorder

	producers atomic.Int64 // handles issued

	// epoch/pool are non-nil in pooled-node mode (WithNodePool). A node
	// is retired by whichever of the head and tail pointers passes it
	// last (both passes consult the other pointer's position; the
	// retired flag arbitrates the race where they tie), so neither
	// pointer ever dangles at a retired node and the announce-and-verify
	// protocol on head/tail snapshots is sound.
	epoch *reclaim.Epoch
	pool  *reclaim.Pool[node[T]]
}

// New returns a queue configured by opts. With no options it sizes itself
// for GOMAXPROCS producer handles, uses the scalable basket, a plain-CAS
// try_append, and no telemetry.
func New[T any](opts ...Option) *Queue[T] {
	o := buildOptions[T](opts)
	q := &Queue[T]{enqueuers: o.enqueuers, rec: o.rec, ev: obs.Events(o.rec)}
	if o.newBasket != nil {
		q.newBasket = o.newBasket.(func() basket.Basket[T])
	} else {
		enqueuers, rec := o.enqueuers, o.rec
		q.newBasket = func() basket.Basket[T] {
			return basket.New[T](
				basket.WithCapacity(enqueuers),
				basket.WithBound(enqueuers),
				basket.WithRecorder(rec),
			)
		}
	}
	if o.txcasOn {
		// Native TxCAS mode: the engine is built with the queue's recorder
		// first so WithTxCAS options can override it; tryCAS stays nil —
		// tryAppend routes the linking CAS through GuardedCAS directly
		// (the engine needs the handle id and the gate, which the appendFn
		// shape cannot carry).
		q.eng = txcas.NewEngine(append([]txcas.Option{txcas.WithRecorder(o.rec)}, o.txcasOpts...)...)
	} else if o.appendDelay > 0 {
		// Calibrate once at construction so the hot path runs a fixed
		// iteration count (see spin.go for why the loop never reads the
		// clock).
		iters := spinItersFor(o.appendDelay)
		//lf:hotpath invoked by every tryAppend
		q.tryCAS = func(next *atomic.Pointer[node[T]], n *node[T]) bool {
			spinIters(iters)
			return next.CompareAndSwap(nil, n)
		}
	} else {
		//lf:hotpath invoked by every tryAppend
		q.tryCAS = func(next *atomic.Pointer[node[T]], n *node[T]) bool {
			return next.CompareAndSwap(nil, n)
		}
	}
	if o.pooled {
		if _, ok := q.newBasket().(basket.Resettable); !ok {
			panic("sbq: WithNodePool requires a basket implementing basket.Resettable")
		}
		q.epoch = reclaim.NewEpoch()
		q.pool = reclaim.NewPool(q.epoch, func() *node[T] { return &node[T]{basket: q.newBasket()} }, func(n *node[T]) {
			n.next.Store(nil)
			n.retired.Store(false)
			n.basket.(basket.Resettable).Reset()
		})
	}
	sentinel := &node[T]{basket: q.newBasket()}
	// The sentinel's basket must read as exhausted.
	for {
		if _, ok := sentinel.basket.Extract(); !ok {
			break
		}
	}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// getNode returns a fresh or recycled node with an open, empty basket.
func (q *Queue[T]) getNode() *node[T] {
	if p := q.pool; p != nil {
		return p.Get()
	}
	//lint:ignore allocfree GC mode allocates one node (and basket) per appended node by design; WithNodePool is the zero-alloc configuration the gates enforce
	return &node[T]{basket: q.newBasket()}
}

// protect pins src's current node against pooled reuse (announce-and-
// verify; sound because neither list pointer ever dangles at a retired
// node) and returns it. With a nil guard it is a plain load.
func (q *Queue[T]) protect(src *atomic.Pointer[node[T]], g *reclaim.Guard) *node[T] {
	n := src.Load()
	if g == nil {
		return n
	}
	for {
		g.Protect(n.index.Load())
		again := src.Load()
		if again == n {
			return n
		}
		n = again
	}
}

// passedIndex reads ptr's current position with the verify re-load, so
// the result is a sound lower bound even if the loaded node is freed and
// re-stamped between the two loads (an ABA re-install can only make the
// read conservative, never inflated).
func (q *Queue[T]) passedIndex(ptr *atomic.Pointer[node[T]]) uint64 {
	for {
		n := ptr.Load()
		idx := n.index.Load()
		if ptr.Load() == n {
			return idx
		}
	}
}

// maybeRetire retires n — which the caller's pointer CAS just passed —
// if the other pointer has passed it too (its position exceeds n's).
func (q *Queue[T]) maybeRetire(n *node[T], otherIdx uint64) {
	if idx := n.index.Load(); idx < otherIdx && n.retired.CompareAndSwap(false, true) {
		q.pool.Retire(idx, n)
	}
}

// retireRange runs maybeRetire over [from, to) after the caller's CAS
// moved ptr from from to to; the caller's guard still pins the range.
func (q *Queue[T]) retireRange(ptr *atomic.Pointer[node[T]], from, to *node[T]) {
	if q.pool == nil {
		return
	}
	other := &q.head
	if ptr == &q.head {
		other = &q.tail
	}
	limit := q.passedIndex(other)
	for s := from; s != to; {
		next := s.next.Load()
		q.maybeRetire(s, limit)
		s = next
	}
}

// NewDelayedCAS returns a queue whose try_append delays before its CAS,
// the paper's SBQ-CAS configuration.
//
// Deprecated: use New with WithEnqueuers and WithAppendDelay.
func NewDelayedCAS[T any](enqueuers int, delay time.Duration) *Queue[T] {
	return New[T](WithEnqueuers(enqueuers), WithAppendDelay(delay))
}

// NewWithOptions returns a queue with producer-handle count, try_append
// delay (zero for plain CAS), and an optional basket constructor (nil
// selects the scalable basket).
//
// Deprecated: use New with WithEnqueuers, WithAppendDelay and WithBasket.
func NewWithOptions[T any](enqueuers int, appendDelay time.Duration, newBasket func() basket.Basket[T]) *Queue[T] {
	opts := []Option{WithEnqueuers(enqueuers), WithAppendDelay(appendDelay)}
	if newBasket != nil {
		opts = append(opts, WithBasket(newBasket))
	}
	return New[T](opts...)
}

// Handle is a per-goroutine view of the queue. Producer handles own a
// basket cell index and the node-reuse slot of §5.2.2. A Handle must not
// be shared between goroutines.
type Handle[T any] struct {
	q        *Queue[T]
	id       int // basket cell index for this producer
	reserved *node[T]
}

// NewHandle issues a producer handle. At most Enqueuers handles may be
// issued; more panic. Consumers may also use handles (the id is unused on
// the dequeue path), or call Queue.Dequeue directly.
func (q *Queue[T]) NewHandle() *Handle[T] {
	id := int(q.producers.Add(1)) - 1
	if id >= q.enqueuers {
		panic("sbq: more producer handles than configured enqueuers")
	}
	return &Handle[T]{q: q, id: id}
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, lane int32, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, lane, arg)
	}
}

// tryAppend is Algorithm 4.
type appendStatus int

const (
	appendSuccess appendStatus = iota
	appendFailure
	appendBadTail
)

func (q *Queue[T]) tryAppend(tail, n *node[T], lane int32) appendStatus {
	if tail.next.Load() != nil {
		return appendBadTail
	}
	if e := q.eng; e != nil {
		// TxCAS mode: the engine records the CAS attempt/failure counters
		// and timeline events itself — a soft abort must *not* count as an
		// issued CAS; that reduction is the measurable profit (§3).
		if txcas.GuardedCAS(e, &q.gate, int(lane), &tail.next, nil, n).OK {
			return appendSuccess
		}
		return appendFailure
	}
	if r := q.rec; r != nil {
		r.Inc(obs.CASAttempts)
	}
	q.event(obs.EvCASAttempt, lane, 0)
	if q.tryCAS(&tail.next, n) {
		return appendSuccess
	}
	if r := q.rec; r != nil {
		r.Inc(obs.CASFailures)
	}
	q.event(obs.EvCASFailure, lane, 0)
	return appendFailure
}

// advance is Algorithm 6: advance *ptr to at least n. Retried CASes are
// charged to the recorder so the §3 accounting covers pointer catch-up,
// not just appends. In pooled mode the winning CAS owns retirement of
// the nodes it jumped over (those the other pointer has also passed).
func (q *Queue[T]) advance(ptr *atomic.Pointer[node[T]], n *node[T]) {
	r := q.rec
	for {
		old := ptr.Load()
		if old.index.Load() >= n.index.Load() {
			return
		}
		if r != nil {
			r.Inc(obs.CASAttempts)
		}
		if ptr.CompareAndSwap(old, n) {
			q.retireRange(ptr, old, n)
			return
		}
		if r != nil {
			r.Inc(obs.CASFailures)
		}
	}
}

// Enqueue is Algorithm 3: append a fresh node carrying the element in this
// handle's basket cell, or — profiting from the failed CAS — drop the
// element into the basket of the node that won.
//
//lf:hotpath
func (h *Handle[T]) Enqueue(v T) {
	q := h.q
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	lane := int32(h.id)
	q.event(obs.EvEnqStart, lane, 0)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	t := q.protect(&q.tail, g)
	n := h.reserved
	if n == nil {
		n = q.getNode()
	} else {
		n.basket.ResetOwn(h.id) // undo the previous insertion (§5.2.2)
	}
	n.basket.Insert(h.id, v)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		n.index.Store(t.index.Load() + 1)
		switch q.tryAppend(t, n, lane) {
		case appendSuccess:
			if q.tail.CompareAndSwap(t, n) && q.pool != nil {
				// We passed t; retire it if the head has too.
				q.maybeRetire(t, q.passedIndex(&q.head))
			}
			h.reserved = nil
			if g != nil {
				q.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, lane, 1)
			return
		case appendFailure:
			t = t.next.Load()
			if t.basket.Insert(h.id, v) {
				h.reserved = n // keep the unappended node for reuse
				if g != nil {
					q.epoch.Release(g)
				}
				q.event(obs.EvEnqEnd, lane, 1)
				return
			}
		}
		// BAD_TAIL or basket refusal: find the real tail, catch the
		// queue's tail pointer up, and retry.
		for {
			nx := t.next.Load()
			if nx == nil {
				break
			}
			t = nx
		}
		q.advance(&q.tail, t)
	}
}

// EnqueueBatch appends vs in order with ONE linking CAS: the handle
// builds a private chain of len(vs) nodes — each carrying one element in
// this handle's basket cell — links it fully before publication, and
// appends the whole chain where a single Enqueue appends one node. This
// is the basket-as-batch reading of §5: the paper's basket amortizes the
// serialized handoff over the k enqueuers whose CASs happened to fail
// together; the batch amortizes it over the k elements one producer
// already grouped. The chain's interior baskets are ordinary open
// baskets, so concurrent enqueuers whose CAS fails against the chain
// still profit by joining them.
//
// Unlike a failed single Enqueue, a failed chain CAS does not drop into
// the winner's basket (a basket holds at most one element per inserter
// id); it re-finds the tail and retries the whole chain.
//
//lf:hotpath
func (h *Handle[T]) EnqueueBatch(vs []T) {
	k := len(vs)
	if k == 0 {
		return
	}
	if k == 1 {
		h.Enqueue(vs[0])
		return
	}
	q := h.q
	if r := q.rec; r != nil {
		r.Add(obs.EnqOps, uint64(k))
		r.Inc(obs.EnqBatches)
	}
	lane := int32(h.id)
	q.event(obs.EvEnqStart, lane, uint64(k))
	// Build the private chain directly through the nodes' next links —
	// no scratch slice, so the batch path stays allocation-free in
	// pooled mode.
	var first, last *node[T]
	for _, v := range vs {
		n := h.reserved
		if n != nil {
			h.reserved = nil
			n.basket.ResetOwn(h.id) // undo the previous insertion (§5.2.2)
			n.next.Store(nil)
		} else {
			n = q.getNode()
		}
		n.basket.Insert(h.id, v)
		if first == nil {
			first = n
		} else {
			last.next.Store(n)
		}
		last = n
	}
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	t := q.protect(&q.tail, g)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		idx := t.index.Load()
		for n := first; n != nil; n = n.next.Load() {
			idx++
			n.index.Store(idx)
		}
		if q.tryAppend(t, first, lane) == appendSuccess {
			q.advance(&q.tail, last)
			if g != nil {
				q.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, lane, uint64(k))
			return
		}
		// Chain CAS lost or BAD_TAIL: find the real tail, catch the
		// queue's tail pointer up, and retry the whole chain.
		for {
			nx := t.next.Load()
			if nx == nil {
				break
			}
			t = nx
		}
		q.advance(&q.tail, t)
	}
}

// Dequeue is Algorithm 5: find the first node with a non-exhausted basket
// and extract from it.
//
//lf:hotpath
func (h *Handle[T]) Dequeue() (T, bool) { return h.q.Dequeue() }

// DequeueBatch fills a prefix of dst; see Queue.DequeueBatch.
//
//lf:hotpath
func (h *Handle[T]) DequeueBatch(dst []T) int { return h.q.DequeueBatch(dst) }

// Dequeue removes and returns the oldest element. Unlike Enqueue it needs
// no per-thread state and may be called on the queue directly.
//
//lf:hotpath
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, obs.LaneDefault, 0)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	h := q.protect(&q.head, g)
	var v T
	var ok bool
	rounds := 0
	for {
		rounds++
		for h.basket.Empty() {
			nx := h.next.Load()
			if nx == nil {
				break
			}
			h = nx
		}
		v, ok = h.basket.Extract()
		if ok || h.next.Load() == nil {
			break
		}
	}
	q.advance(&q.head, h)
	if g != nil {
		q.epoch.Release(g)
	}
	if r := q.rec; r != nil {
		if ok {
			r.Inc(obs.DeqOps)
		} else {
			r.Inc(obs.DeqEmpty)
		}
		if rounds > 1 {
			r.Add(obs.DeqRetries, uint64(rounds-1))
		}
	}
	if !ok {
		q.event(obs.EvDeqEnd, obs.LaneDefault, 0)
		return zero, false
	}
	q.event(obs.EvDeqEnd, obs.LaneDefault, 1)
	return v, true
}

// DequeueBatch fills a prefix of dst in queue order and returns how many
// elements were written. It amortizes the dequeue side's serialized
// work: the node walk resumes in place between extractions and the head
// pointer is caught up ONCE per batch (one advanceNode CAS loop instead
// of one per element). Returns 0 when the queue appeared empty.
//
//lf:hotpath
func (q *Queue[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	q.event(obs.EvDeqStart, obs.LaneDefault, uint64(len(dst)))
	if r := q.rec; r != nil {
		r.Inc(obs.DeqBatches)
	}
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	h := q.protect(&q.head, g)
	got := 0
	rounds := 0
	for got < len(dst) {
		rounds++
		for h.basket.Empty() {
			nx := h.next.Load()
			if nx == nil {
				goto drained
			}
			h = nx
		}
		if v, ok := h.basket.Extract(); ok {
			dst[got] = v
			got++
		} else if h.next.Load() == nil {
			break
		}
	}
drained:
	q.advance(&q.head, h)
	if g != nil {
		q.epoch.Release(g)
	}
	if r := q.rec; r != nil {
		if got > 0 {
			r.Add(obs.DeqOps, uint64(got))
		} else {
			r.Inc(obs.DeqEmpty)
		}
		if rounds > got+1 {
			r.Add(obs.DeqRetries, uint64(rounds-got-1))
		}
	}
	q.event(obs.EvDeqEnd, obs.LaneDefault, uint64(got))
	return got
}
