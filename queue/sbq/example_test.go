package sbq_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/basket"
	"repro/queue/sbq"
)

// The basic pattern: one handle per producer goroutine, shared dequeues.
func Example() {
	const producers = 2
	q := sbq.New[int](sbq.WithEnqueuers(producers))

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h := q.NewHandle()
		base := (p + 1) * 10
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				h.Enqueue(base + i)
			}
		}()
	}
	wg.Wait()

	var got []int
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		got = append(got, v)
	}
	sort.Ints(got)
	fmt.Println(got)
	// Output: [10 11 12 20 21 22]
}

// Plugging a custom basket: the partitioned basket trades strict
// single-counter extraction for lower dequeue contention.
func ExampleWithBasket() {
	q := sbq.New[string](
		sbq.WithEnqueuers(4),
		sbq.WithBasket(func() basket.Basket[string] {
			return basket.New[string](basket.WithCapacity(4), basket.WithPartitions(2))
		}),
	)
	h := q.NewHandle()
	h.Enqueue("a")
	h.Enqueue("b")
	v1, _ := q.Dequeue()
	v2, _ := q.Dequeue()
	_, ok := q.Dequeue()
	fmt.Println(v1, v2, ok)
	// Output: a b false
}
