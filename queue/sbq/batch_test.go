package sbq_test

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/queue/sbq"
)

func TestBatchSequentialFIFO(t *testing.T) {
	q := sbq.New[int](sbq.WithEnqueuers(1))
	h := q.NewHandle()
	h.EnqueueBatch(nil) // empty batch is a no-op
	h.EnqueueBatch([]int{0, 1, 2})
	h.Enqueue(3) // singles and batches interleave
	h.EnqueueBatch([]int{4, 5, 6, 7})
	dst := make([]int, 16)
	if n := q.DequeueBatch(dst); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], i)
		}
	}
	if n := q.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d, want 0", n)
	}
	if n := q.DequeueBatch(nil); n != 0 {
		t.Fatalf("DequeueBatch with empty dst = %d, want 0", n)
	}
}

// TestBatchChainVisibleToSingles interleaves chain appends with single
// enqueues from another handle: singles must land after (or between)
// published chains, never inside one, and everything must drain in a
// per-producer FIFO order.
func TestBatchChainVisibleToSingles(t *testing.T) {
	q := sbq.New[uint64](sbq.WithEnqueuers(2))
	ha, hb := q.NewHandle(), q.NewHandle()
	var wg sync.WaitGroup
	const rounds, k = 100, 8
	wg.Add(2)
	go func() {
		defer wg.Done()
		vs := make([]uint64, k)
		for r := 0; r < rounds; r++ {
			for i := range vs {
				vs[i] = 1<<32 | uint64(r*k+i+1)
			}
			ha.EnqueueBatch(vs)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			hb.Enqueue(2<<32 | uint64(r+1))
		}
	}()
	wg.Wait()
	lastA, lastB := uint64(0), uint64(0)
	total := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		total++
		switch v >> 32 {
		case 1:
			if seq := v & 0xffffffff; seq <= lastA {
				t.Fatalf("producer A out of order: %d after %d", seq, lastA)
			} else {
				lastA = seq
			}
		case 2:
			if seq := v & 0xffffffff; seq <= lastB {
				t.Fatalf("producer B out of order: %d after %d", seq, lastB)
			} else {
				lastB = seq
			}
		}
	}
	if total != rounds*k+rounds {
		t.Fatalf("drained %d of %d elements", total, rounds*k+rounds)
	}
}

// TestBatchConcurrentChains races several chain-appending producers.
func TestBatchConcurrentChains(t *testing.T) {
	const producers, batches, k = 4, 50, 8
	q := sbq.New[uint64](sbq.WithEnqueuers(producers))
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			vs := make([]uint64, k)
			for b := 0; b < batches; b++ {
				for i := range vs {
					vs[i] = uint64(p+1)<<32 | uint64(b*k+i+1)
				}
				h.EnqueueBatch(vs)
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]bool{}
	last := make([]uint64, producers+1)
	dst := make([]uint64, 32)
	for {
		n := q.DequeueBatch(dst)
		if n == 0 {
			break
		}
		for _, v := range dst[:n] {
			if seen[v] {
				t.Fatalf("duplicate element %#x", v)
			}
			seen[v] = true
			p, seq := v>>32, v&0xffffffff
			if seq <= last[p] {
				t.Fatalf("producer %d out of order: %d after %d", p, seq, last[p])
			}
			last[p] = seq
		}
	}
	if len(seen) != producers*batches*k {
		t.Fatalf("drained %d of %d elements", len(seen), producers*batches*k)
	}
}

// TestBatchTelemetry: one chain append charges one EnqBatches and k
// EnqOps; a full-batch drain charges one DeqBatches and k DeqOps.
func TestBatchTelemetry(t *testing.T) {
	rec := obs.New()
	q := sbq.New[uint64](sbq.WithEnqueuers(1), sbq.WithRecorder(rec))
	h := q.NewHandle()
	vs := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	h.EnqueueBatch(vs)
	dst := make([]uint64, 8)
	if n := h.DequeueBatch(dst); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	snap := rec.Snapshot()
	if got := snap.Counter(obs.EnqOps); got != 8 {
		t.Errorf("EnqOps = %d, want 8", got)
	}
	if got := snap.Counter(obs.EnqBatches); got != 1 {
		t.Errorf("EnqBatches = %d, want 1", got)
	}
	if got := snap.Counter(obs.DeqOps); got != 8 {
		t.Errorf("DeqOps = %d, want 8", got)
	}
	if got := snap.Counter(obs.DeqBatches); got != 1 {
		t.Errorf("DeqBatches = %d, want 1", got)
	}
}

// TestBatchReservedNodeReuse: a failed single append parks a node on the
// handle (§5.2.2); a following batch must fold that node in without
// losing or duplicating its undone element.
func TestBatchReservedNodeReuse(t *testing.T) {
	const producers = 2
	q := sbq.New[uint64](sbq.WithEnqueuers(producers))
	ha, hb := q.NewHandle(), q.NewHandle()
	// Force contention so one handle likely parks a reserved node: run
	// the two handles through many small interleaved rounds.
	var wg sync.WaitGroup
	for _, h := range []*sbq.Handle[uint64]{ha, hb} {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Enqueue(uint64(i))
			}
		}()
	}
	wg.Wait()
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}
	// Whatever reserved state the race left behind, a batch enqueue must
	// deliver exactly its own elements.
	ha.EnqueueBatch([]uint64{101, 102, 103})
	hb.EnqueueBatch([]uint64{201, 202})
	got := map[uint64]int{}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		got[v]++
	}
	for _, want := range []uint64{101, 102, 103, 201, 202} {
		if got[want] != 1 {
			t.Fatalf("element %d delivered %d times, want 1 (got %v)", want, got[want], got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("drained %d distinct elements, want 5: %v", len(got), got)
	}
}
