package sbq_test

import (
	"testing"
	"time"

	"repro/basket"
	"repro/queue/sbq"
)

// The deprecated positional constructors are thin aliases over
// New(...Option); these tests pin each alias to the behavior of its
// documented replacement so the compatibility surface cannot rot
// unnoticed.

func drain(t *testing.T, q *sbq.Queue[uint64], want int) {
	t.Helper()
	got := 0
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
		got++
	}
	if got != want {
		t.Fatalf("drained %d of %d elements", got, want)
	}
}

func TestDeprecatedNewDelayedCAS(t *testing.T) {
	q := sbq.NewDelayedCAS[uint64](2, 50*time.Nanosecond)
	h0, h1 := q.NewHandle(), q.NewHandle()
	const per = 100
	for i := 0; i < per; i++ {
		h0.Enqueue(uint64(i))
		h1.Enqueue(uint64(per + i))
	}
	drain(t, q, 2*per)
}

func TestDeprecatedNewWithOptionsDefaultBasket(t *testing.T) {
	// nil basket constructor selects the scalable basket, as New does.
	q := sbq.NewWithOptions[uint64](2, 0, nil)
	h := q.NewHandle()
	for i := 0; i < 50; i++ {
		h.Enqueue(uint64(i))
	}
	for i := 0; i < 50; i++ {
		v, ok := q.Dequeue()
		if !ok || v != uint64(i) {
			t.Fatalf("position %d: got %d,%v", i, v, ok)
		}
	}
}

func TestDeprecatedNewWithOptionsCustomBasket(t *testing.T) {
	built := 0
	q := sbq.NewWithOptions[uint64](1, 0, func() basket.Basket[uint64] {
		built++
		return basket.NewClosingStack[uint64]()
	})
	if built == 0 {
		t.Fatal("custom basket constructor never invoked")
	}
	h := q.NewHandle()
	for i := 0; i < 20; i++ {
		h.Enqueue(uint64(i))
	}
	drain(t, q, 20)
}
