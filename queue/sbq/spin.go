package sbq

import (
	"time"

	"repro/internal/spin"
)

// The delayed-CAS try_append needs sub-microsecond busy-waits with no
// clock reads on the hot path. The calibrated spin loop that provides
// them was hoisted to repro/internal/spin (the sharded front-end's
// consumer backoff shares it); this file keeps sbq's thin adapters over
// it, including the cycle-denominated conversion retry policies use.

// spinIters runs n dependent calibrated-loop iterations.
func spinIters(n uint64) { spin.Iters(n) }

// calibrateSpin returns the calibrated spin-iterations-per-nanosecond
// rate (measured once per process; see repro/internal/spin).
func calibrateSpin() float64 { return spin.PerNS() }

// cyclesPerNS is the simulated track's clock convention (2.5 GHz). Retry
// policies denominate delays in simulated cycles; the native track converts
// through this constant so one policy value means the same wall time on
// both tracks.
const cyclesPerNS = 2.5

// spinForCycles busy-waits for a cycle-denominated delay using a
// pre-computed iterations-per-cycle rate (see WithAppendPolicy).
func spinForCycles(cycles uint64, itersPerCycle float64) {
	n := float64(cycles) * itersPerCycle
	if n < 1 {
		n = 1
	}
	spin.Iters(uint64(n))
}

// spinItersFor converts a duration to calibrated loop iterations.
func spinItersFor(d time.Duration) uint64 { return spin.ItersFor(d) }
