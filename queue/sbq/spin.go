package sbq

import (
	"sync"
	"sync/atomic"
	"time"
)

// The delayed-CAS try_append needs sub-microsecond busy-waits. time.Sleep
// cannot resolve them and polling time.Now/time.Since in the wait loop
// spends more time reading the clock than waiting (a clock read costs tens
// of nanoseconds — the paper's whole delay is ~270ns). Instead the package
// calibrates a pure spin loop against the monotonic clock once, then waits
// by iteration count.

// spinSink defeats dead-code elimination of the spin loop. It is shared
// by every spinning goroutine, so the accesses are atomic; the loop body
// itself touches only locals.
var spinSink atomic.Uint64

// spinIters runs n dependent iterations. noinline keeps the loop's cost
// stable between the calibration probe and real waits.
//
//go:noinline
func spinIters(n uint64) {
	s := spinSink.Load()
	for i := uint64(0); i < n; i++ {
		s += i ^ (s >> 1)
	}
	spinSink.Store(s)
}

var spinCal struct {
	once  sync.Once
	perNS float64 // spin iterations per nanosecond
}

// calibrateSpin measures spinIters against the monotonic clock. It takes
// the fastest of several probes: preemption or a frequency ramp can only
// make a probe slower, never faster, so the minimum is the closest estimate
// of the loop's steady-state rate.
func calibrateSpin() float64 {
	spinCal.once.Do(func() {
		const probe = 1 << 17
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			spinIters(probe)
			if el := time.Since(start); el > 0 && el < best {
				best = el
			}
		}
		spinCal.perNS = float64(probe) / float64(best.Nanoseconds())
	})
	return spinCal.perNS
}

// cyclesPerNS is the simulated track's clock convention (2.5 GHz). Retry
// policies denominate delays in simulated cycles; the native track converts
// through this constant so one policy value means the same wall time on
// both tracks.
const cyclesPerNS = 2.5

// spinForCycles busy-waits for a cycle-denominated delay using a
// pre-computed iterations-per-cycle rate (see WithAppendPolicy).
func spinForCycles(cycles uint64, itersPerCycle float64) {
	n := float64(cycles) * itersPerCycle
	if n < 1 {
		n = 1
	}
	spinIters(uint64(n))
}

// spinItersFor converts a duration to calibrated loop iterations.
func spinItersFor(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	n := float64(d.Nanoseconds()) * calibrateSpin()
	if n < 1 {
		return 1
	}
	return uint64(n)
}
