package sbq

import (
	"runtime"
	"time"

	"repro/basket"
	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/txcas"
)

// Option configures a Queue built with New. The element type appears only
// in WithBasket; every other option is type-free, so call sites read:
//
//	q := sbq.New[string](
//		sbq.WithEnqueuers(8),
//		sbq.WithAppendDelay(270*time.Nanosecond),
//		sbq.WithRecorder(rec),
//	)
type Option func(*options)

type options struct {
	enqueuers   int
	appendDelay time.Duration
	txcasOn     bool
	txcasOpts   []txcas.Option
	rec         obs.Recorder
	// newBasket holds a func() basket.Basket[T]; it is typed any because
	// Option is not generic (Go cannot infer a generic option's type
	// parameter from a value-free call like WithEnqueuers(8)). New[T]
	// checks the element type and panics on mismatch.
	newBasket any
	pooled    bool
}

// WithNodePool enables pooled-node mode: nodes recycle through a
// reclaim-backed freelist (per-P via sync.Pool) with epoch-deferred
// reuse, and their baskets are re-armed in place via basket.Resettable,
// so steady-state enqueue/dequeue allocate nothing and the queue stops
// leaning on the garbage collector under sustained load. The basket
// (default or WithBasket) must implement basket.Resettable; New panics
// otherwise. The trade is one guard acquire/announce per operation.
func WithNodePool() Option {
	return func(o *options) { o.pooled = true }
}

// WithEnqueuers sets the number of producer handles the queue will issue
// (each producer goroutine needs its own Handle). Baskets are sized from
// it. The default is GOMAXPROCS; explicit non-positive values panic in New.
func WithEnqueuers(n int) Option {
	return func(o *options) { o.enqueuers = n }
}

// WithAppendDelay makes try_append busy-wait for d before its CAS — the
// paper's SBQ-CAS configuration (§6.1), which paces contending enqueuers so
// one CAS wins while the others join its basket. The paper tunes d ≈ 270ns.
//
// The wait is a calibrated spin, not a clock poll: at first use the package
// times a fixed spin loop against the monotonic clock (taking the fastest
// of several probes so preemption cannot inflate the estimate) and converts
// d to loop iterations. The delay loop itself therefore never reads the
// wall clock — re-reading it each iteration (the obvious implementation)
// costs tens of nanoseconds per read and distorts a ~270ns delay beyond
// recognition. Zero or negative d selects a plain immediate CAS.
func WithAppendDelay(d time.Duration) Option {
	return func(o *options) { o.appendDelay = d }
}

// WithTxCAS routes try_append through the native software-TxCAS engine
// (repro/internal/txcas): contending enqueuers watch the queue's
// publication gate during a calibrated speculation window and abandon
// CASes a published winner has already doomed — the paper's
// profit-from-failure effect (§3) on real cores: the loser still joins the
// winner's basket, but its doomed atomic never lands on the contended
// line, and the failure report identifies the winner. opts tune the
// engine: txcas.WithWindow (default the §4.1 ~270ns), txcas.WithPolicy to
// pace attempts with a repro/internal/machine/policy RetryPolicy fed real
// conflict signal, txcas.WithBudget for the speculation bound. The
// queue's recorder is attached automatically, so soft aborts and sharer
// hints land in the same snapshot as the CAS counters.
//
// WithTxCAS supersedes WithAppendDelay/WithAppendPolicy's spin-only
// pacing and takes precedence over both when combined.
func WithTxCAS(opts ...txcas.Option) Option {
	return func(o *options) {
		o.txcasOn = true
		o.txcasOpts = append(o.txcasOpts, opts...)
	}
}

// WithAppendPolicy paces try_append with a retry policy from
// repro/internal/machine/policy, the same policy values the simulated track
// accepts — so an experiment can run one policy on both tracks. Natively a
// failed linking CAS is permanent (another node is linked; SBQ profits from
// the failure instead of retrying), so only the pre-attempt decision is
// consulted: the policy's Decision.Delay (in simulated cycles, converted at
// 2.5 cycles/ns) becomes a calibrated spin before the single CAS, and the
// Fallback flag is ignored because the native CAS already is the software
// path. policy.DelayedCAS{Delay: 675} therefore reproduces
// WithAppendDelay(270 * time.Nanosecond).
//
// Deprecated: use WithTxCAS(txcas.WithPolicy(p), txcas.WithWindow(0)) —
// the unified CAS-primitive surface, which this wrapper now forwards to.
// Append success/failure is decided identically: a fallback decision spins
// the decided delay and issues the plain CAS exactly as before; a delay
// decision's spin becomes the speculation window, which can only convert
// an already-doomed CAS into a cheaper soft abort.
func WithAppendPolicy(p policy.RetryPolicy) Option {
	return WithTxCAS(txcas.WithPolicy(p), txcas.WithWindow(0))
}

// WithBasket overrides the basket constructor (the default is the scalable
// basket sized to the enqueuer count, wired to the queue's recorder). The
// basket must satisfy the §5.3.2 property: once indicated empty, every
// future Extract fails.
func WithBasket[T any](mk func() basket.Basket[T]) Option {
	return func(o *options) { o.newBasket = mk }
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts, try_append CAS attempts and failures, and
// retries; the default basket reports insert/extract outcomes into the same
// recorder. A nil or obs.Nop recorder disables telemetry — the disabled
// path costs one nil check per event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}

func buildOptions[T any](opts []Option) options {
	o := options{enqueuers: -1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.enqueuers == -1 {
		o.enqueuers = runtime.GOMAXPROCS(0)
	}
	if o.enqueuers <= 0 {
		panic("sbq: enqueuers must be positive")
	}
	if o.newBasket != nil {
		if _, ok := o.newBasket.(func() basket.Basket[T]); !ok {
			panic("sbq: WithBasket element type does not match the queue's")
		}
	}
	return o
}
