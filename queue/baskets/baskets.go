// Package baskets implements the original baskets queue (Hoffman, Shalev
// & Shavit; the paper's BQ-Original baseline): a Michael-Scott-style
// linked queue whose enqueuers, on a failed linking CAS, push their node
// into an implicit LIFO basket between the stale tail and its successors
// instead of chasing the new tail.
//
// The original C algorithm tags next pointers with a "deleted" bit;
// dequeuers set it to claim a node, and setting it simultaneously closes
// the predecessor's basket to further insertions — the property that makes
// the queue linearizable. Go's garbage collector forbids pointer tagging,
// so each next field holds an atomically replaced edge record (pointer +
// deleted flag); retired records are garbage collected, or recycled
// through reclaim pools in pooled-node mode (WithNodePool).
//
// Pooled-mode reclamation: nodes carry structural stamps (each node's
// stamp is its predecessor's plus one; basket members share a stamp, so
// stamps are non-strictly increasing along every traversal). Operations
// pin their head/tail snapshot with the announce-and-verify protocol;
// the verify is sound because q.head/q.tail never point at a retired
// node — a dequeuer helps the tail past head before closing a basket,
// and tail CASes only ever move it forward. A node is retired by the
// winner of the head CAS that passes it (together with its final,
// deleted edge); an edge is retired by the winner of the CAS that
// replaces it, under its from-node's stamp.
package baskets

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/reclaim"
)

type node[T any] struct {
	// stamp orders nodes along the list; atomic because a stale reader
	// may race a pooled node's re-stamping (see reclaim's protocol note).
	stamp atomic.Uint64
	v     T
	next  atomic.Pointer[edge[T]]
}

// edge is an atomically-replaced (pointer, deleted) pair. Its fields are
// written only before publication (the CAS installing it) and are
// immutable afterwards; stale readers of a recycled edge are excluded by
// the same stamp protection as nodes (an edge shares its from-node's
// stamp).
type edge[T any] struct {
	to      *node[T]
	deleted bool
}

// Queue is an original-style baskets queue.
type Queue[T any] struct {
	//lf:contended swung by every dequeuer
	head atomic.Pointer[node[T]]
	_    [56]byte
	//lf:contended every enqueuer races the linking CAS and then swings tail
	tail atomic.Pointer[node[T]]
	_    [56]byte
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder

	// epoch/nodes/edges are non-nil in pooled-node mode (WithNodePool).
	epoch *reclaim.Epoch
	nodes *reclaim.Pool[node[T]]
	edges *reclaim.Pool[edge[T]]
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	if o.pooled {
		q.epoch = reclaim.NewEpoch()
		q.nodes = reclaim.NewPool(q.epoch, func() *node[T] { return &node[T]{} }, func(n *node[T]) {
			var zero T
			n.v = zero // drop element references while parked in the freelist
			n.next.Store(nil)
		})
		q.edges = reclaim.NewPool(q.epoch, func() *edge[T] { return &edge[T]{} }, func(e *edge[T]) {
			e.to = nil
			e.deleted = false
		})
	}
	s := &node[T]{}
	s.next.Store(&edge[T]{})
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// getNode returns a fresh or recycled node with v zero and next nil.
func (q *Queue[T]) getNode() *node[T] {
	if p := q.nodes; p != nil {
		return p.Get()
	}
	//lint:ignore allocfree GC mode allocates one node per enqueue by design; WithNodePool is the zero-alloc configuration the gates enforce
	return &node[T]{}
}

// getEdge returns a fresh or recycled empty edge record.
func (q *Queue[T]) getEdge() *edge[T] {
	if p := q.edges; p != nil {
		return p.Get()
	}
	//lint:ignore allocfree GC mode allocates edge records per CAS attempt by design; WithNodePool is the zero-alloc configuration the gates enforce
	return &edge[T]{}
}

// retireEdge defers w — just CASed out of from.next by the caller — for
// recycling under from's stamp (readers of w announced at most that).
func (q *Queue[T]) retireEdge(from *node[T], w *edge[T]) {
	if p := q.edges; p != nil {
		p.Retire(from.stamp.Load(), w)
	}
}

// retireNode defers n — the caller's head CAS just passed it — together
// with its final (deleted, never again replaced) edge record.
func (q *Queue[T]) retireNode(n *node[T]) {
	if q.nodes == nil {
		return
	}
	stamp := n.stamp.Load()
	if w := n.next.Load(); w != nil {
		q.edges.Retire(stamp, w)
	}
	q.nodes.Retire(stamp, n)
}

// protect pins src's current node against pooled reuse (announce-and-
// verify; see the package comment for why the verify is sound) and
// returns it. With a nil guard it is a plain load.
func (q *Queue[T]) protect(src *atomic.Pointer[node[T]], g *reclaim.Guard) *node[T] {
	n := src.Load()
	if g == nil {
		return n
	}
	for {
		g.Protect(n.stamp.Load())
		again := src.Load()
		if again == n {
			return n
		}
		n = again
	}
}

// Enqueue appends v. If the linking CAS fails, the enqueuer joins the
// basket at the same predecessor: the failure itself proves the presence
// of concurrent enqueuers, so their elements may enter in any order.
//
//lf:hotpath
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	n := q.getNode()
	n.v = v
	en := q.getEdge() // n's own next edge; mutable until n is published
	n.next.Store(en)
	link := q.getEdge() // the edge the CAS installs; mutable until published
	link.to = n
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		tail := q.protect(&q.tail, g)
		w := tail.next.Load()
		if w.deleted {
			q.fixTail(tail)
			continue
		}
		n.stamp.Store(tail.stamp.Load() + 1)
		if w.to == nil {
			// Reset n's own edge: a failed basket attempt on an earlier
			// tail may have left it pointing at that basket's successor,
			// and linking n as the new last node with a stale forward
			// edge would corrupt later traversals.
			en.to = nil
			if r := q.rec; r != nil {
				r.Inc(obs.CASAttempts)
			}
			q.event(obs.EvCASAttempt, 0)
			if tail.next.CompareAndSwap(w, link) {
				q.retireEdge(tail, w)
				q.tail.CompareAndSwap(tail, n)
				if g != nil {
					q.epoch.Release(g)
				}
				q.event(obs.EvEnqEnd, 1)
				return
			}
			if r := q.rec; r != nil {
				r.Inc(obs.CASFailures)
			}
			q.event(obs.EvCASFailure, 0)
			// Failed: a winner linked concurrently. Push into the basket
			// between tail and its (growing) chain of concurrent nodes.
			for {
				w = tail.next.Load()
				if w.deleted || w.to == nil {
					break // basket closed by a dequeuer; start over
				}
				en.to = w.to // n is unpublished; its edge mutates in place
				if tail.next.CompareAndSwap(w, link) {
					q.retireEdge(tail, w)
					if r := q.rec; r != nil {
						r.Inc(obs.BasketInserts)
					}
					if g != nil {
						q.epoch.Release(g)
					}
					q.event(obs.EvEnqEnd, 1)
					return
				}
				if r := q.rec; r != nil {
					r.Inc(obs.BasketInsertFails)
				}
			}
		} else {
			q.fixTail(tail)
		}
	}
}

// fixTail advances the queue's tail pointer to the last linked node.
func (q *Queue[T]) fixTail(tail *node[T]) {
	last := tail
	for {
		w := last.next.Load()
		if w.to == nil {
			break
		}
		last = w.to
	}
	if last != tail {
		q.tail.CompareAndSwap(tail, last)
	}
}

// Dequeue claims the node after head by marking head's next edge deleted —
// which closes head's basket — then swings head forward.
//
//lf:hotpath
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		head := q.protect(&q.head, g)
		w := head.next.Load()
		if w.deleted {
			if q.head.CompareAndSwap(head, w.to) {
				q.retireNode(head)
			}
			continue
		}
		if w.to == nil {
			if g != nil {
				q.epoch.Release(g)
			}
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		if q.tail.Load() == head {
			q.tail.CompareAndSwap(head, w.to)
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		q.event(obs.EvCASAttempt, 0)
		del := q.getEdge()
		del.to, del.deleted = w.to, true
		if head.next.CompareAndSwap(w, del) {
			q.retireEdge(head, w)
			v := w.to.v
			if q.head.CompareAndSwap(head, w.to) {
				q.retireNode(head)
			}
			if g != nil {
				q.epoch.Release(g)
			}
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		if p := q.edges; p != nil {
			p.Put(del) // lost the delete race; del was never published
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		q.event(obs.EvCASFailure, 0)
	}
}
