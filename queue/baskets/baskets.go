// Package baskets implements the original baskets queue (Hoffman, Shalev
// & Shavit; the paper's BQ-Original baseline): a Michael-Scott-style
// linked queue whose enqueuers, on a failed linking CAS, push their node
// into an implicit LIFO basket between the stale tail and its successors
// instead of chasing the new tail.
//
// The original C algorithm tags next pointers with a "deleted" bit;
// dequeuers set it to claim a node, and setting it simultaneously closes
// the predecessor's basket to further insertions — the property that makes
// the queue linearizable. Go's garbage collector forbids pointer tagging,
// so each next field holds an atomically replaced edge record (pointer +
// deleted flag); retired records are garbage collected.
package baskets

import (
	"sync/atomic"

	"repro/internal/obs"
)

type node[T any] struct {
	v    T
	next atomic.Pointer[edge[T]]
}

// edge is an atomically-replaced (pointer, deleted) pair.
type edge[T any] struct {
	to      *node[T]
	deleted bool
}

// Queue is an original-style baskets queue.
type Queue[T any] struct {
	//lf:contended swung by every dequeuer
	head atomic.Pointer[node[T]]
	_    [56]byte
	//lf:contended every enqueuer races the linking CAS and then swings tail
	tail atomic.Pointer[node[T]]
	_    [56]byte
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	s := &node[T]{}
	s.next.Store(&edge[T]{})
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v. If the linking CAS fails, the enqueuer joins the
// basket at the same predecessor: the failure itself proves the presence
// of concurrent enqueuers, so their elements may enter in any order.
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	n := &node[T]{v: v}
	n.next.Store(&edge[T]{})
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		tail := q.tail.Load()
		w := tail.next.Load()
		if w.deleted {
			q.fixTail(tail)
			continue
		}
		if w.to == nil {
			if r := q.rec; r != nil {
				r.Inc(obs.CASAttempts)
			}
			q.event(obs.EvCASAttempt, 0)
			if tail.next.CompareAndSwap(w, &edge[T]{to: n}) {
				q.tail.CompareAndSwap(tail, n)
				q.event(obs.EvEnqEnd, 1)
				return
			}
			if r := q.rec; r != nil {
				r.Inc(obs.CASFailures)
			}
			q.event(obs.EvCASFailure, 0)
			// Failed: a winner linked concurrently. Push into the basket
			// between tail and its (growing) chain of concurrent nodes.
			for {
				w = tail.next.Load()
				if w.deleted || w.to == nil {
					break // basket closed by a dequeuer; start over
				}
				n.next.Store(&edge[T]{to: w.to})
				if tail.next.CompareAndSwap(w, &edge[T]{to: n}) {
					if r := q.rec; r != nil {
						r.Inc(obs.BasketInserts)
					}
					q.event(obs.EvEnqEnd, 1)
					return
				}
				if r := q.rec; r != nil {
					r.Inc(obs.BasketInsertFails)
				}
			}
		} else {
			q.fixTail(tail)
		}
	}
}

// fixTail advances the queue's tail pointer to the last linked node.
func (q *Queue[T]) fixTail(tail *node[T]) {
	last := tail
	for {
		w := last.next.Load()
		if w.to == nil {
			break
		}
		last = w.to
	}
	if last != tail {
		q.tail.CompareAndSwap(tail, last)
	}
}

// Dequeue claims the node after head by marking head's next edge deleted —
// which closes head's basket — then swings head forward.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		head := q.head.Load()
		w := head.next.Load()
		if w.deleted {
			q.head.CompareAndSwap(head, w.to)
			continue
		}
		if w.to == nil {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		if q.tail.Load() == head {
			q.tail.CompareAndSwap(head, w.to)
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASAttempts)
		}
		q.event(obs.EvCASAttempt, 0)
		if head.next.CompareAndSwap(w, &edge[T]{to: w.to, deleted: true}) {
			v := w.to.v
			q.head.CompareAndSwap(head, w.to)
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		if r := q.rec; r != nil {
			r.Inc(obs.CASFailures)
		}
		q.event(obs.EvCASFailure, 0)
	}
}
