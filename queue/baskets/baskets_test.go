package baskets_test

import (
	"sync"
	"testing"

	"repro/queue"
	"repro/queue/baskets"
	"repro/queue/queuetest"
)

func factory() queuetest.Factory {
	return queuetest.Shared(func(int) queue.Queue[uint64] { return baskets.New[uint64]() })
}

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, factory())
}

func TestAlternating(t *testing.T) {
	q := baskets.New[int]()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("round %d: got %d,%v", i, v, ok)
		}
	}
}

// Concurrent enqueuers whose CASs collide land in a basket; every element
// must still come out exactly once.
func TestBasketBurst(t *testing.T) {
	q := baskets.New[int]()
	const writers = 16
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(w*per + i)
			}
		}()
	}
	wg.Wait()
	seen := make([]bool, writers*per)
	n := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		n++
	}
	if n != writers*per {
		t.Fatalf("drained %d of %d", n, writers*per)
	}
}
