package baskets

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	rec    obs.Recorder
	pooled bool
}

// WithNodePool enables pooled-node mode: nodes and edge records recycle
// through reclaim-backed freelists (per-P via sync.Pool) with
// epoch-deferred reuse, so steady-state enqueue/dequeue allocate nothing
// and the queue stops leaning on the garbage collector under sustained
// load. The trade is one guard acquire/announce per operation.
func WithNodePool() Option {
	return func(o *options) { o.pooled = true }
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts, linking-CAS attempts and failures, basket
// joins (obs.BasketInserts when a failed CAS turns into a basket
// insertion), and retries. A nil or obs.Nop recorder disables telemetry at
// the cost of one nil check per event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}
