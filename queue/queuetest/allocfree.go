package queuetest

// This file is the dynamic half of the repository's zero-alloc hot-path
// invariant: internal/lint's hotpath+allocfree analyzers prove statically
// that no allocation construct sits on an //lf:hotpath-reachable path,
// and CheckAllocFree proves at runtime that a pooled-mode queue's steady
// state performs zero heap allocations — single operations and batches
// alike. CI runs the gate registry-wide with GOGC=off (the alloc-gates
// job), so a queue that quietly starts leaning on the allocator fails
// the build, not just a benchmark.

import (
	"runtime/debug"
	"testing"
)

// allocWarmup is the number of steady-state operations driven before
// measuring: enough to prime every layer of the pooling machinery —
// per-P sync.Pool chains, the reclaim retired list's link records, and
// the amortized Collect cadence (one scan per 64 retires) — so the
// measured window exercises reuse, not first-touch growth.
const allocWarmup = 4096

// allocRuns is the number of measured rounds per AllocsPerRun gate.
const allocRuns = 200

// CheckAllocFree gates the steady state of a pooled-mode queue at zero
// heap allocations per operation. It drives one producer and one
// consumer view (the single-threaded steady state: every enqueue's node
// is retired by the matching dequeue and recycled), warms the pools up,
// then measures enqueue/dequeue pairs and EnqueueBatch/DequeueBatch
// rounds with testing.AllocsPerRun. GC is disabled for the duration so a
// collection pause cannot clear the sync.Pool freelists mid-measurement;
// under the race detector the check skips itself (instrumentation
// allocates).
//
// The factory must build the queue in pooled mode (registry
// Config.Pooled, or the implementation's WithNodePool option); a GC-mode
// queue allocates one node per enqueue by design and fails this gate.
func CheckAllocFree(t *testing.T, f BatchFactory) {
	t.Helper()
	if RaceEnabled {
		t.Skip("race-detector instrumentation distorts allocation accounting")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	prod, cons := f(1)
	p, c := prod(0), cons(0)

	for i := 0; i < allocWarmup; i++ {
		p.Enqueue(uint64(i))
		if _, ok := c.Dequeue(); !ok {
			t.Fatalf("warmup dequeue %d reported empty after an enqueue", i)
		}
	}
	const k = 8
	vs := make([]uint64, k)
	dst := make([]uint64, k)
	for i := 0; i < allocWarmup/k; i++ {
		for j := range vs {
			vs[j] = uint64(i*k + j)
		}
		p.EnqueueBatch(vs)
		for got := 0; got < k; {
			n := c.DequeueBatch(dst[got:])
			if n == 0 {
				t.Fatalf("warmup batch round %d ran dry at %d of %d", i, got, k)
			}
			got += n
		}
	}

	if avg := testing.AllocsPerRun(allocRuns, func() {
		p.Enqueue(7)
		if _, ok := c.Dequeue(); !ok {
			t.Fatal("steady-state dequeue reported empty after an enqueue")
		}
	}); avg != 0 {
		t.Errorf("enqueue/dequeue pair allocates %.2f objects per op in steady state, want 0", avg)
	}

	if avg := testing.AllocsPerRun(allocRuns, func() {
		p.EnqueueBatch(vs)
		for got := 0; got < k; {
			n := c.DequeueBatch(dst[got:])
			if n == 0 {
				t.Fatalf("steady-state batch ran dry at %d of %d", got, k)
			}
			got += n
		}
	}); avg != 0 {
		t.Errorf("EnqueueBatch/DequeueBatch round (k=%d) allocates %.2f objects per round in steady state, want 0", k, avg)
	}
}
