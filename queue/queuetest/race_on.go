//go:build race

package queuetest

// RaceEnabled reports whether the binary was built with the race
// detector, whose instrumentation distorts allocation accounting; the
// allocation gates skip themselves under it.
const RaceEnabled = true
