package queuetest

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"testing"
)

// Stress hammers one queue instance with concurrent producers and
// consumers under the given GOMAXPROCS setting and verifies exactly-once
// delivery of the full multiset. It records no histories and runs no
// linearizability checker, so it stays fast enough to run under -race,
// where the memory-model instrumentation is the point: a missing
// happens-before edge between an Enqueue publish and a Dequeue read shows
// up as a race report, not a wrong value.
//
// GOMAXPROCS is restored on return. The setting is process-global, so
// Stress must not run in parallel with other tests.
func Stress(t *testing.T, f Factory, procs, producers, consumers, perProducer int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	prodView, consView := f(producers)
	want := producers * perProducer
	got := make([]map[uint64]int, consumers)

	// Label worker goroutines so a CPU profile taken over the suite (e.g.
	// go test -cpuprofile) splits samples by queue under test and role.
	labels := func(role string) pprof.LabelSet {
		return pprof.Labels("queue", t.Name(), "role", role)
	}

	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(producers)
	for pi := 0; pi < producers; pi++ {
		pi := pi
		wg.Add(1)
		go pprof.Do(context.Background(), labels("producer"), func(context.Context) {
			defer wg.Done()
			defer done.Done()
			q := prodView(pi)
			for i := 0; i < perProducer; i++ {
				q.Enqueue(value(pi, i))
			}
		})
	}
	producersDone := make(chan struct{})
	go func() { done.Wait(); close(producersDone) }()
	for ci := 0; ci < consumers; ci++ {
		ci := ci
		wg.Add(1)
		go pprof.Do(context.Background(), labels("consumer"), func(context.Context) {
			defer wg.Done()
			q := consView(ci)
			seen := make(map[uint64]int, want/consumers+1)
			for {
				if v, ok := q.Dequeue(); ok {
					seen[v]++
					continue
				}
				select {
				case <-producersDone:
					// Producers are finished; one more sweep drains
					// anything published since our last empty answer.
					for {
						v, ok := q.Dequeue()
						if !ok {
							got[ci] = seen
							return
						}
						seen[v]++
					}
				default:
					runtime.Gosched()
				}
			}
		})
	}
	wg.Wait()

	merged := make(map[uint64]int, want)
	total := 0
	for _, seen := range got {
		for v, n := range seen {
			merged[v] += n
			total += n
		}
	}
	if total != want {
		t.Fatalf("delivered %d of %d elements", total, want)
	}
	for pi := 0; pi < producers; pi++ {
		for i := 0; i < perProducer; i++ {
			if n := merged[value(pi, i)]; n != 1 {
				t.Fatalf("element %#x delivered %d times", value(pi, i), n)
			}
		}
	}
}

// StressShapes runs Stress at GOMAXPROCS 1, 2, and NumCPU: the single-P
// schedule exercises goroutine preemption points, 2 is the smallest truly
// parallel setting, and NumCPU is the machine's natural width.
func StressShapes(t *testing.T, f Factory) {
	t.Helper()
	per := 2000
	if testing.Short() {
		per = 300
	}
	procs := []int{1, 2, runtime.NumCPU()}
	if procs[2] <= 2 {
		procs = procs[:2] // NumCPU adds nothing on tiny machines
	}
	for _, p := range procs {
		p := p
		t.Run(fmt.Sprintf("procs=%d", p), func(t *testing.T) {
			Stress(t, f, p, 4, 4, per)
		})
	}
}
