package queuetest

import (
	"repro/queue"
	"repro/queue/registry"
)

// FromRegistry adapts a registry builder into a Factory, so the whole
// conformance suite can be table-driven over registry.Names().
func FromRegistry(b registry.Builder) Factory {
	return func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
		inst := b(registry.Config{Producers: producers})
		return func(i int) queue.Queue[uint64] { return inst.ProducerView(i) },
			func(i int) queue.Queue[uint64] { return inst.ConsumerView(i) }
	}
}

// FromRegistryBatch adapts a registry builder into a BatchFactory with a
// zero Config (beyond the producer count the suite chooses per check).
func FromRegistryBatch(b registry.Builder) BatchFactory {
	return FromRegistryConfig(b, registry.Config{})
}

// FromRegistryConfig adapts a registry builder into a BatchFactory, using
// cfg as the build template: the suite overwrites Producers per check and
// leaves the rest (Shards, BatchHint, Recorder) as given — the way to pin
// an explicit shard count so multi-shard paths get covered even when
// GOMAXPROCS is 1.
func FromRegistryConfig(b registry.Builder, cfg registry.Config) BatchFactory {
	return func(producers int) (func(int) queue.BatchQueue[uint64], func(int) queue.BatchQueue[uint64]) {
		c := cfg
		c.Producers = producers
		inst := b(c)
		return inst.ProducerView, inst.ConsumerView
	}
}
