package queuetest

import (
	"repro/queue"
	"repro/queue/registry"
)

// FromRegistry adapts a registry builder into a Factory, so the whole
// conformance suite can be table-driven over registry.Names().
func FromRegistry(b registry.Builder) Factory {
	return func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
		inst := b(registry.Config{Producers: producers})
		return inst.Producer, inst.Consumer
	}
}
