package queuetest

import (
	"runtime"
	"sync"
	"testing"

	"repro/queue"
)

// BatchFactory builds one queue instance and hands out batch-capable
// per-goroutine views of it, mirroring Factory for the queue.BatchQueue
// surface. Registry entries always satisfy it (their views are upgraded
// through queue.AsBatch when the implementation has no native batch path),
// so batch conformance is table-driven over the whole registry.
type BatchFactory func(producers int) (producerView func(i int) queue.BatchQueue[uint64], consumerView func(i int) queue.BatchQueue[uint64])

// CheckBatchSequential drives the batch surface on one goroutine through
// one producer view: empty batches are no-ops, intra-batch FIFO order is
// preserved (also across batches and interleaved singles, which a single
// producer is entitled to under both ordering contracts), partial dequeues
// report honest counts, and oversized batches survive internal segment
// boundaries.
func CheckBatchSequential(t *testing.T, f BatchFactory) {
	t.Helper()
	prod, cons := f(1)
	p, c := prod(0), cons(0)

	// Empty in, empty out.
	p.EnqueueBatch(nil)
	p.EnqueueBatch([]uint64{})
	if n := c.DequeueBatch(make([]uint64, 4)); n != 0 {
		t.Fatalf("DequeueBatch on fresh queue = %d, want 0", n)
	}
	if n := c.DequeueBatch(nil); n != 0 {
		t.Fatalf("DequeueBatch with nil dst = %d, want 0", n)
	}

	// Batches, singles, batches: one producer's elements drain in order.
	p.EnqueueBatch([]uint64{1, 2, 3})
	p.Enqueue(4)
	p.EnqueueBatch([]uint64{5})
	p.EnqueueBatch([]uint64{6, 7, 8, 9})
	next := uint64(1)
	dst := make([]uint64, 4)
	for next <= 9 {
		n := c.DequeueBatch(dst)
		if n == 0 {
			t.Fatalf("queue ran dry at element %d of 9", next)
		}
		for _, v := range dst[:n] {
			if v != next {
				t.Fatalf("got %d, want %d (intra-batch FIFO)", v, next)
			}
			next++
		}
	}

	// Partial dequeue: a short dst fills exactly; the remainder reports an
	// honest count against a dst longer than the queue.
	p.EnqueueBatch([]uint64{10, 11, 12})
	short := make([]uint64, 2)
	if n := c.DequeueBatch(short); n != 2 || short[0] != 10 || short[1] != 11 {
		t.Fatalf("short DequeueBatch = %d %v, want 2 [10 11]", n, short)
	}
	long := make([]uint64, 8)
	if n := c.DequeueBatch(long); n != 1 || long[0] != 12 {
		t.Fatalf("long DequeueBatch = %d (first %d), want 1 (12)", n, long[0])
	}

	// Oversized batch: bigger than any internal segment (faaq segments
	// hold 1024 cells), so the claim spans boundaries.
	const big = 3000
	vs := make([]uint64, big)
	for i := range vs {
		vs[i] = uint64(i + 100)
	}
	p.EnqueueBatch(vs)
	next = 100
	bigDst := make([]uint64, 256)
	for next < 100+big {
		n := c.DequeueBatch(bigDst)
		if n == 0 {
			t.Fatalf("queue ran dry at element %d of the oversized batch", next)
		}
		for _, v := range bigDst[:n] {
			if v != next {
				t.Fatalf("oversized batch: got %d, want %d", v, next)
			}
			next++
		}
	}
	if n := c.DequeueBatch(dst); n != 0 {
		t.Fatalf("drained queue still returned %d elements", n)
	}
}

// CheckBatchConcurrent races batch producers against batch consumers and
// verifies exactly-once delivery plus per-consumer per-producer FIFO — the
// strongest batch property shared by TotalFIFO and PerProducerFIFO
// entries (total FIFO implies it).
func CheckBatchConcurrent(t *testing.T, f BatchFactory, producers, consumers, k, perProducer int) {
	t.Helper()
	prodView, consView := f(producers)

	var wg, done sync.WaitGroup
	done.Add(producers)
	for pi := 0; pi < producers; pi++ {
		pi := pi
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer done.Done()
			q := prodView(pi)
			vs := make([]uint64, k)
			for seq := 0; seq < perProducer; {
				n := k
				if perProducer-seq < n {
					n = perProducer - seq
				}
				for i := 0; i < n; i++ {
					vs[i] = value(pi, seq+i)
				}
				q.EnqueueBatch(vs[:n])
				seq += n
			}
		}()
	}
	producersDone := make(chan struct{})
	go func() { done.Wait(); close(producersDone) }()

	type consumerOut struct {
		seen map[uint64]int
		err  string
	}
	outs := make([]consumerOut, consumers)
	for ci := 0; ci < consumers; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := consView(ci)
			seen := map[uint64]int{}
			last := make([]uint64, producers)
			dst := make([]uint64, k)
			consume := func(n int) bool {
				for _, v := range dst[:n] {
					seen[v]++
					pi := int(v>>32) - 1
					if pi < 0 || pi >= producers {
						outs[ci].err = "element from unknown producer"
						return false
					}
					if seq := v & 0xffffffff; seq <= last[pi] {
						outs[ci].err = "per-producer order violated within one consumer"
						return false
					} else {
						last[pi] = seq
					}
				}
				return true
			}
			for {
				if n := q.DequeueBatch(dst); n > 0 {
					if !consume(n) {
						return
					}
					continue
				}
				select {
				case <-producersDone:
					for {
						n := q.DequeueBatch(dst)
						if n == 0 {
							outs[ci].seen = seen
							return
						}
						if !consume(n) {
							return
						}
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()

	merged := map[uint64]int{}
	for ci, out := range outs {
		if out.err != "" {
			t.Fatalf("consumer %d: %s", ci, out.err)
		}
		for v, n := range out.seen {
			merged[v] += n
		}
	}
	for pi := 0; pi < producers; pi++ {
		for i := 0; i < perProducer; i++ {
			if n := merged[value(pi, i)]; n != 1 {
				t.Fatalf("element %#x delivered %d times, want 1", value(pi, i), n)
			}
		}
	}
	if len(merged) != producers*perProducer {
		t.Fatalf("delivered %d of %d elements", len(merged), producers*perProducer)
	}
}

// CheckConcurrentRelaxed is CheckConcurrent's counterpart for entries with
// the PerProducerFIFO contract: it verifies exactly-once delivery and that
// each consumer observes each producer's elements in enqueue order, but
// runs no linearizability checker — cross-producer reordering is the
// contract, not a bug.
func CheckConcurrentRelaxed(t *testing.T, f Factory, producers, consumers, perProducer int) {
	t.Helper()
	prodView, consView := f(producers)

	var wg, done sync.WaitGroup
	done.Add(producers)
	for pi := 0; pi < producers; pi++ {
		pi := pi
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer done.Done()
			q := prodView(pi)
			for i := 0; i < perProducer; i++ {
				q.Enqueue(value(pi, i))
			}
		}()
	}
	producersDone := make(chan struct{})
	go func() { done.Wait(); close(producersDone) }()

	type consumerOut struct {
		seen map[uint64]int
		err  string
	}
	outs := make([]consumerOut, consumers)
	for ci := 0; ci < consumers; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := consView(ci)
			seen := map[uint64]int{}
			last := make([]uint64, producers)
			consume := func(v uint64) bool {
				seen[v]++
				pi := int(v>>32) - 1
				if pi < 0 || pi >= producers {
					outs[ci].err = "element from unknown producer"
					return false
				}
				if seq := v & 0xffffffff; seq <= last[pi] {
					outs[ci].err = "per-producer order violated within one consumer"
					return false
				} else {
					last[pi] = seq
				}
				return true
			}
			for {
				if v, ok := q.Dequeue(); ok {
					if !consume(v) {
						return
					}
					continue
				}
				select {
				case <-producersDone:
					for {
						v, ok := q.Dequeue()
						if !ok {
							outs[ci].seen = seen
							return
						}
						if !consume(v) {
							return
						}
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()

	merged := map[uint64]int{}
	for ci, out := range outs {
		if out.err != "" {
			t.Fatalf("consumer %d: %s", ci, out.err)
		}
		for v, n := range out.seen {
			merged[v] += n
		}
	}
	for pi := 0; pi < producers; pi++ {
		for i := 0; i < perProducer; i++ {
			if n := merged[value(pi, i)]; n != 1 {
				t.Fatalf("element %#x delivered %d times, want 1", value(pi, i), n)
			}
		}
	}
	if len(merged) != producers*perProducer {
		t.Fatalf("delivered %d of %d elements", len(merged), producers*perProducer)
	}
}
