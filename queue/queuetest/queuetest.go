// Package queuetest provides a conformance suite for the native queue
// implementations: sequential FIFO checks, concurrent exactly-once
// delivery, and full linearizability checking of recorded histories via
// the aspect-oriented method of paper §5.3.2 (VFresh/VRepeat/VOrd/VWit).
//
// Timestamps come from a shared atomic counter, which gives every
// operation interval a place in one total order — exactly what the
// checker requires.
package queuetest

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/linearize"
	"repro/queue"
)

// Factory builds one queue instance for a test run and hands out
// per-goroutine views of it. producers tells the factory how many
// producer views will be requested (SBQ sizes its baskets from it).
type Factory func(producers int) (producerView func(i int) queue.Queue[uint64], consumerView func(i int) queue.Queue[uint64])

// Shared adapts a single shared queue instance into a Factory.
func Shared(mk func(producers int) queue.Queue[uint64]) Factory {
	return func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
		q := mk(producers)
		view := func(int) queue.Queue[uint64] { return q }
		return view, view
	}
}

func value(tid, seq int) uint64 { return uint64(tid+1)<<32 | uint64(seq+1) }

// CheckSequential verifies FIFO order and emptiness on one goroutine.
func CheckSequential(t *testing.T, f Factory) {
	t.Helper()
	prod, cons := f(1)
	p, c := prod(0), cons(0)
	if _, ok := c.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	const n = 200
	for i := 0; i < n; i++ {
		p.Enqueue(value(0, i))
	}
	for i := 0; i < n; i++ {
		v, ok := c.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d reported empty", i)
		}
		if v != value(0, i) {
			t.Fatalf("position %d: got %#x want %#x", i, v, value(0, i))
		}
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
}

// CheckConcurrent runs producers and consumers concurrently, verifies
// exactly-once delivery, and checks the recorded history for
// linearizability violations.
func CheckConcurrent(t *testing.T, f Factory, producers, consumers, perProducer int) {
	t.Helper()
	prodView, consView := f(producers)
	var clock atomic.Uint64
	tick := func() uint64 { return clock.Add(1) }

	histories := make([][]linearize.Op, producers+consumers)
	var produced atomic.Int64
	var delivered atomic.Int64
	want := int64(producers * perProducer)

	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		pi := pi
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := prodView(pi)
			h := histories[pi][:0]
			for i := 0; i < perProducer; i++ {
				start := tick()
				q.Enqueue(value(pi, i))
				h = append(h, linearize.Op{Kind: linearize.Enq, Value: value(pi, i), Start: start, End: tick(), Thread: pi})
			}
			histories[pi] = h
			produced.Add(int64(perProducer))
		}()
	}
	for ci := 0; ci < consumers; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := consView(ci)
			idx := producers + ci
			var h []linearize.Op
			for {
				if delivered.Load() >= want && produced.Load() >= want {
					break
				}
				start := tick()
				v, ok := q.Dequeue()
				end := tick()
				if ok {
					h = append(h, linearize.Op{Kind: linearize.Deq, Value: v, Start: start, End: end, Thread: idx})
					delivered.Add(1)
				} else {
					h = append(h, linearize.Op{Kind: linearize.Deq, Empty: true, Start: start, End: end, Thread: idx})
				}
			}
			histories[idx] = h
		}()
	}
	wg.Wait()
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered %d of %d elements", got, want)
	}
	var all []linearize.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	if v := linearize.Check(all); v != nil {
		t.Fatalf("history not linearizable: %v", v)
	}
}

// CheckDrainMultiset enqueues concurrently, then drains sequentially and
// verifies the exact multiset of elements comes back.
func CheckDrainMultiset(t *testing.T, f Factory, producers, perProducer int) {
	t.Helper()
	prodView, consView := f(producers)
	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		pi := pi
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := prodView(pi)
			for i := 0; i < perProducer; i++ {
				q.Enqueue(value(pi, i))
			}
		}()
	}
	wg.Wait()
	q := consView(0)
	seen := make(map[uint64]bool, producers*perProducer)
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate element %#x", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("drained %d of %d elements", len(seen), producers*perProducer)
	}
}

// RunAll runs the whole conformance suite over a set of concurrency
// shapes. Callers with -short get a reduced load.
func RunAll(t *testing.T, f Factory) {
	t.Helper()
	t.Run("Sequential", func(t *testing.T) { CheckSequential(t, f) })
	per := 2000
	if testing.Short() {
		per = 300
	}
	shapes := []struct {
		name string
		p, c int
	}{
		{"p1c1", 1, 1},
		{"p4c4", 4, 4},
		{"p8c2", 8, 2},
		{"p2c8", 2, 8},
	}
	for _, s := range shapes {
		s := s
		t.Run("Concurrent/"+s.name, func(t *testing.T) {
			CheckConcurrent(t, f, s.p, s.c, per)
		})
	}
	t.Run("DrainMultiset", func(t *testing.T) { CheckDrainMultiset(t, f, 8, per) })
}
