package queue_test

import (
	"testing"

	"repro/queue"
)

// sliceQueue is a minimal single-goroutine Queue with no batch support.
type sliceQueue struct{ vs []uint64 }

func (q *sliceQueue) Enqueue(v uint64) { q.vs = append(q.vs, v) }

func (q *sliceQueue) Dequeue() (uint64, bool) {
	if len(q.vs) == 0 {
		return 0, false
	}
	v := q.vs[0]
	q.vs = q.vs[1:]
	return v, true
}

// enqBatcher adds only the native batch-enqueue capability, recording
// whether it was used.
type enqBatcher struct {
	sliceQueue
	nativeEnq int
}

func (q *enqBatcher) EnqueueBatch(vs []uint64) {
	q.nativeEnq++
	q.vs = append(q.vs, vs...)
}

// fullBatcher implements the whole BatchQueue surface.
type fullBatcher struct {
	enqBatcher
	nativeDeq int
}

func (q *fullBatcher) DequeueBatch(dst []uint64) int {
	q.nativeDeq++
	n := copy(dst, q.vs)
	q.vs = q.vs[n:]
	return n
}

func TestAsBatchLoopFallback(t *testing.T) {
	b := queue.AsBatch[uint64](&sliceQueue{})
	b.EnqueueBatch([]uint64{1, 2, 3})
	b.Enqueue(4)
	dst := make([]uint64, 8)
	if n := b.DequeueBatch(dst); n != 4 {
		t.Fatalf("DequeueBatch = %d, want 4", n)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d (batch order must be FIFO)", i, dst[i], want)
		}
	}
	if n := b.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d, want 0", n)
	}
	b.EnqueueBatch(nil) // empty batch is a no-op
	if _, ok := b.Dequeue(); ok {
		t.Fatal("empty EnqueueBatch enqueued something")
	}
}

func TestAsBatchPartialCapability(t *testing.T) {
	q := &enqBatcher{}
	b := queue.AsBatch[uint64](q)
	b.EnqueueBatch([]uint64{7, 8})
	if q.nativeEnq != 1 {
		t.Fatalf("native EnqueueBatch used %d times, want 1", q.nativeEnq)
	}
	dst := make([]uint64, 2)
	if n := b.DequeueBatch(dst); n != 2 || dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("DequeueBatch = %d %v, want 2 [7 8]", n, dst)
	}
}

func TestAsBatchIdentityOnNative(t *testing.T) {
	q := &fullBatcher{}
	b := queue.AsBatch[uint64](q)
	if b != queue.BatchQueue[uint64](q) {
		t.Fatal("AsBatch wrapped a queue that already implements BatchQueue")
	}
	b.EnqueueBatch([]uint64{1})
	if n := b.DequeueBatch(make([]uint64, 1)); n != 1 {
		t.Fatalf("DequeueBatch = %d, want 1", n)
	}
	if q.nativeEnq != 1 || q.nativeDeq != 1 {
		t.Fatalf("native methods used %d/%d times, want 1/1", q.nativeEnq, q.nativeDeq)
	}
}

// deqBatcher adds only the native batch-dequeue capability: the inverse
// of enqBatcher, so each half of the capability split is covered.
type deqBatcher struct {
	sliceQueue
	nativeDeq int
}

func (q *deqBatcher) DequeueBatch(dst []uint64) int {
	q.nativeDeq++
	n := copy(dst, q.vs)
	q.vs = q.vs[n:]
	return n
}

func TestAsBatchDequeueOnlyCapability(t *testing.T) {
	q := &deqBatcher{}
	b := queue.AsBatch[uint64](q)
	b.EnqueueBatch([]uint64{5, 6, 7}) // looped: no native enqueue half
	dst := make([]uint64, 3)
	if n := b.DequeueBatch(dst); n != 3 || dst[0] != 5 || dst[2] != 7 {
		t.Fatalf("DequeueBatch = %d %v, want 3 [5 6 7]", n, dst)
	}
	if q.nativeDeq != 1 {
		t.Fatalf("native DequeueBatch used %d times, want 1", q.nativeDeq)
	}
}

// hiccupQueue reports empty on every other dequeue even while holding
// elements, modelling the transient empty a concurrent queue's failed
// probe produces mid-batch.
type hiccupQueue struct {
	sliceQueue
	calls int
}

func (q *hiccupQueue) Dequeue() (uint64, bool) {
	q.calls++
	if q.calls%2 == 0 {
		return 0, false
	}
	return q.sliceQueue.Dequeue()
}

func TestAsBatchPartialFailureMidBatch(t *testing.T) {
	q := &hiccupQueue{}
	b := queue.AsBatch[uint64](q)
	b.EnqueueBatch([]uint64{1, 2, 3, 4})

	// The fallback loop must stop at the first failed dequeue and report
	// the short count; a short batch is not an emptiness guarantee, and
	// no element may be lost or duplicated across the failure.
	dst := make([]uint64, 4)
	var got []uint64
	rounds := 0
	for len(got) < 4 {
		rounds++
		if rounds > 16 {
			t.Fatalf("drained only %v after %d rounds", got, rounds-1)
		}
		got = append(got, dst[:b.DequeueBatch(dst)]...)
	}
	if rounds < 2 {
		t.Fatalf("hiccup never split a batch (drained in %d round); the partial-failure path went unexercised", rounds)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("drained %v, want [1 2 3 4] in order", got)
		}
	}
}

func TestAsBatchNilQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsBatch(nil) did not panic; wrapping nil defers the failure to first use")
		}
	}()
	queue.AsBatch[uint64](nil)
}

func TestAsBatchDstSmallerThanQueue(t *testing.T) {
	b := queue.AsBatch[uint64](&sliceQueue{})
	b.EnqueueBatch([]uint64{1, 2, 3, 4, 5})
	dst := make([]uint64, 2)
	if n := b.DequeueBatch(dst); n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("DequeueBatch = %d %v, want 2 [1 2]", n, dst)
	}
	if n := b.DequeueBatch(make([]uint64, 0)); n != 0 {
		t.Fatalf("DequeueBatch with empty dst = %d, want 0", n)
	}
}
