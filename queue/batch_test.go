package queue_test

import (
	"testing"

	"repro/queue"
)

// sliceQueue is a minimal single-goroutine Queue with no batch support.
type sliceQueue struct{ vs []uint64 }

func (q *sliceQueue) Enqueue(v uint64) { q.vs = append(q.vs, v) }

func (q *sliceQueue) Dequeue() (uint64, bool) {
	if len(q.vs) == 0 {
		return 0, false
	}
	v := q.vs[0]
	q.vs = q.vs[1:]
	return v, true
}

// enqBatcher adds only the native batch-enqueue capability, recording
// whether it was used.
type enqBatcher struct {
	sliceQueue
	nativeEnq int
}

func (q *enqBatcher) EnqueueBatch(vs []uint64) {
	q.nativeEnq++
	q.vs = append(q.vs, vs...)
}

// fullBatcher implements the whole BatchQueue surface.
type fullBatcher struct {
	enqBatcher
	nativeDeq int
}

func (q *fullBatcher) DequeueBatch(dst []uint64) int {
	q.nativeDeq++
	n := copy(dst, q.vs)
	q.vs = q.vs[n:]
	return n
}

func TestAsBatchLoopFallback(t *testing.T) {
	b := queue.AsBatch[uint64](&sliceQueue{})
	b.EnqueueBatch([]uint64{1, 2, 3})
	b.Enqueue(4)
	dst := make([]uint64, 8)
	if n := b.DequeueBatch(dst); n != 4 {
		t.Fatalf("DequeueBatch = %d, want 4", n)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d (batch order must be FIFO)", i, dst[i], want)
		}
	}
	if n := b.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d, want 0", n)
	}
	b.EnqueueBatch(nil) // empty batch is a no-op
	if _, ok := b.Dequeue(); ok {
		t.Fatal("empty EnqueueBatch enqueued something")
	}
}

func TestAsBatchPartialCapability(t *testing.T) {
	q := &enqBatcher{}
	b := queue.AsBatch[uint64](q)
	b.EnqueueBatch([]uint64{7, 8})
	if q.nativeEnq != 1 {
		t.Fatalf("native EnqueueBatch used %d times, want 1", q.nativeEnq)
	}
	dst := make([]uint64, 2)
	if n := b.DequeueBatch(dst); n != 2 || dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("DequeueBatch = %d %v, want 2 [7 8]", n, dst)
	}
}

func TestAsBatchIdentityOnNative(t *testing.T) {
	q := &fullBatcher{}
	b := queue.AsBatch[uint64](q)
	if b != queue.BatchQueue[uint64](q) {
		t.Fatal("AsBatch wrapped a queue that already implements BatchQueue")
	}
	b.EnqueueBatch([]uint64{1})
	if n := b.DequeueBatch(make([]uint64, 1)); n != 1 {
		t.Fatalf("DequeueBatch = %d, want 1", n)
	}
	if q.nativeEnq != 1 || q.nativeDeq != 1 {
		t.Fatalf("native methods used %d/%d times, want 1/1", q.nativeEnq, q.nativeDeq)
	}
}

func TestAsBatchDstSmallerThanQueue(t *testing.T) {
	b := queue.AsBatch[uint64](&sliceQueue{})
	b.EnqueueBatch([]uint64{1, 2, 3, 4, 5})
	dst := make([]uint64, 2)
	if n := b.DequeueBatch(dst); n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("DequeueBatch = %d %v, want 2 [1 2]", n, dst)
	}
	if n := b.DequeueBatch(make([]uint64, 0)); n != 0 {
		t.Fatalf("DequeueBatch with empty dst = %d, want 0", n)
	}
}
