package ccq

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	combineLimit int
	rec          obs.Recorder
	pooled       bool
}

// WithCombineLimit bounds the batch one combiner serves before handing the
// role over. Values around 2-3x the thread count work well; the default is
// 64. n must be positive.
func WithCombineLimit(n int) Option {
	return func(o *options) { o.combineLimit = n }
}

// WithNodePool enables pooled-node mode: dequeued sequential-queue nodes
// recycle through a combiner-owned freelist instead of churning the
// garbage collector. No epoch protection is needed — only the current
// combiner ever touches the sequential queue, and the combiner-role
// handoff (an atomic store/load pair on the request's wait word) orders
// one combiner's freelist writes before the next combiner's reads.
func WithNodePool() Option {
	return func(o *options) { o.pooled = true }
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts. A combining queue has no contended CAS on
// its operation path — each operation is one SWAP — so no CAS counters are
// emitted. A nil or obs.Nop recorder disables telemetry at the cost of one
// nil check per event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}
