package ccq_test

import (
	"sync"
	"testing"

	"repro/queue"
	"repro/queue/ccq"
	"repro/queue/queuetest"
)

func factory() queuetest.Factory {
	return queuetest.Shared(func(int) queue.Queue[uint64] { return ccq.New[uint64]() })
}

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, factory())
}

func TestCombinerHandoff(t *testing.T) {
	// A tiny combine limit forces frequent combiner handoffs.
	q := ccq.New[int](ccq.WithCombineLimit(1))
	const writers = 8
	const per = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(w*per + i)
			}
		}()
	}
	wg.Wait()
	seen := make([]bool, writers*per)
	n := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		n++
	}
	if n != writers*per {
		t.Fatalf("drained %d of %d", n, writers*per)
	}
}

func TestEmptyDequeue(t *testing.T) {
	q := ccq.New[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	q.Enqueue(1)
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
}
