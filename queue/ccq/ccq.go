// Package ccq implements a combining MPMC queue in the style of Fatourou
// & Kallimanis's CC-Queue (the paper's CC-Queue baseline): threads SWAP a
// request node onto a global combining list and spin locally; the thread
// at the list head becomes the combiner and serially applies a batch of
// pending operations to a sequential queue.
//
// Combining replaces per-operation contended CAS/FAA with one SWAP per
// operation plus the combiner's serial work — which is why, as the paper
// observes, it cannot beat the nonblocking FAA-only queues.
package ccq

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// request is a combining-list node. Ownership rotates: an operation leaves
// its spare node at the list tail and takes the node it announced in.
type request[T any] struct {
	wait  atomic.Uint32
	done  bool
	isEnq bool
	arg   T
	ret   T
	ok    bool
	next  atomic.Pointer[request[T]]
}

// snode is a sequential-queue node; only the combiner touches the list.
type snode[T any] struct {
	v    T
	next *snode[T]
}

// Queue is a CC-Synch combining queue.
type Queue[T any] struct {
	tail atomic.Pointer[request[T]] // combining-list tail (SWAP target)

	// Sequential queue; combiner-only.
	qhead *snode[T]
	qtail *snode[T]

	// sfree is the combiner-owned freelist of pooled-node mode
	// (WithNodePool); nil head otherwise. Like qhead/qtail it is only
	// touched while holding the combiner role, whose handoff (the atomic
	// wait store/load pair) orders one combiner's writes before the next
	// combiner's reads.
	sfree  *snode[T]
	pooled bool

	// CombineLimit bounds the batch one combiner serves before handing
	// the role over.
	combineLimit int

	rec obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder

	spare sync.Pool // *request[T] spares for threads' first operations
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts (see WithCombineLimit and
// WithRecorder).
func New[T any](opts ...Option) *Queue[T] {
	o := options{combineLimit: 64}
	for _, opt := range opts {
		opt(&o)
	}
	if o.combineLimit <= 0 {
		panic("ccq: combine limit must be positive")
	}
	q := &Queue[T]{combineLimit: o.combineLimit, rec: o.rec, ev: obs.Events(o.rec), pooled: o.pooled}
	dummy := &request[T]{} // wait==0: first arrival combines immediately
	q.tail.Store(dummy)
	s := &snode[T]{}
	q.qhead, q.qtail = s, s
	q.spare.New = func() any { return new(request[T]) }
	return q
}

// apply runs the CC-Synch protocol for one operation.
func (q *Queue[T]) apply(isEnq bool, arg T) (T, bool) {
	mine := q.spare.Get().(*request[T])
	mine.wait.Store(1)
	mine.done = false
	mine.next.Store(nil)

	prev := q.tail.Swap(mine)
	prev.isEnq = isEnq
	prev.arg = arg
	prev.next.Store(mine)

	// Spin locally until served or handed the combiner role.
	for spins := 0; prev.wait.Load() != 0; spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
	if prev.done {
		ret, ok := prev.ret, prev.ok
		q.spare.Put(prev)
		return ret, ok
	}

	// Combiner: serve pending requests starting with our own.
	cur := prev
	for served := 0; served < q.combineLimit; served++ {
		next := cur.next.Load()
		if next == nil {
			break
		}
		q.applySequential(cur)
		cur.done = true
		cur.wait.Store(0)
		cur = next
	}
	// Hand the combiner role to cur's owner (or leave the list idle).
	cur.wait.Store(0)
	ret, ok := prev.ret, prev.ok
	// prev was served (it is our own request, first in the batch); its
	// node now belongs to us.
	q.spare.Put(prev)
	return ret, ok
}

// getSNode returns a fresh or recycled sequential-queue node with next
// already nil. Combiner-only.
func (q *Queue[T]) getSNode() *snode[T] {
	if n := q.sfree; n != nil {
		q.sfree = n.next
		n.next = nil
		return n
	}
	//lint:ignore allocfree GC mode allocates one node per enqueue by design; WithNodePool recycles dequeued nodes through the combiner-owned freelist
	return &snode[T]{}
}

// applySequential executes one announced operation on the sequential queue.
func (q *Queue[T]) applySequential(r *request[T]) {
	if r.isEnq {
		n := q.getSNode()
		n.v = r.arg
		q.qtail.next = n
		q.qtail = n
		r.ok = true
		return
	}
	next := q.qhead.next
	if next == nil {
		var zero T
		r.ret, r.ok = zero, false
		return
	}
	old := q.qhead
	q.qhead = next
	r.ret, r.ok = next.v, true
	if q.pooled {
		// old was the sentinel; next takes over that role. Scrub the
		// recycled node so parked nodes hold no element references.
		var zero T
		old.v = zero
		old.next = q.sfree
		q.sfree = old
	}
}

// Enqueue appends v through the combiner.
//
//lf:hotpath
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	q.apply(true, v)
	q.event(obs.EvEnqEnd, 1)
}

// Dequeue removes the oldest element through the combiner.
//
//lf:hotpath
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	v, ok := q.apply(false, zero)
	if r := q.rec; r != nil {
		if ok {
			r.Inc(obs.DeqOps)
		} else {
			r.Inc(obs.DeqEmpty)
		}
	}
	var okArg uint64
	if ok {
		okArg = 1
	}
	q.event(obs.EvDeqEnd, okArg)
	return v, ok
}
