package sharded

import (
	"runtime"

	"repro/internal/obs"
	"repro/queue"
	"repro/queue/faaq"
)

// Option configures a Queue built with New. Unlike repro/queue/sbq's
// type-free options, Option is generic: the shard builder needs the
// element type, and the front-end is constructed far from hot paths
// where the extra type argument in call sites is harmless.
type Option[T any] func(*options[T])

type options[T any] struct {
	shards    int
	producers int
	rec       obs.Recorder
	build     func(shard, producersPerShard int) Shard[T]
	// perShard is derived, not set by options.
	perShard int
}

// WithShards sets the shard count. The default is GOMAXPROCS — one
// shard per potentially parallel producer, the contention-minimizing
// production setting. Non-positive values panic in New.
func WithShards[T any](n int) Option[T] {
	return func(o *options[T]) { o.shards = n }
}

// WithProducers sets the total number of producer views the caller will
// request across all shards (default GOMAXPROCS). Each shard builder is
// told its slice of them, ceil(producers/shards), so sub-queues with
// per-producer state (SBQ baskets) size correctly.
func WithProducers[T any](n int) Option[T] {
	return func(o *options[T]) { o.producers = n }
}

// WithShardBuilder overrides how each shard's sub-queue is built. The
// builder receives the shard index and the number of per-shard producer
// views that will be requested of it. The default builds one faaq queue
// per shard, wired to the front-end's recorder.
func WithShardBuilder[T any](b func(shard, producersPerShard int) Shard[T]) Option[T] {
	return func(o *options[T]) { o.build = b }
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs).
// The front-end itself reports only deq_steals — per-element counters
// come from the shards, so default shards share this recorder and a
// custom WithShardBuilder decides its own wiring (sharing one recorder
// across shards keeps EnqOps/DeqOps meaning what they mean unsharded).
func WithRecorder[T any](r obs.Recorder) Option[T] {
	return func(o *options[T]) { o.rec = obs.Normalize(r) }
}

func buildOptions[T any](opts []Option[T]) options[T] {
	var o options[T]
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards == 0 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	if o.shards <= 0 {
		panic("sharded: shard count must be positive")
	}
	if o.producers == 0 {
		o.producers = runtime.GOMAXPROCS(0)
	}
	if o.producers <= 0 {
		panic("sharded: producer count must be positive")
	}
	o.perShard = (o.producers + o.shards - 1) / o.shards
	if o.build == nil {
		rec := o.rec
		o.build = func(int, int) Shard[T] {
			q := queue.AsBatch[T](faaq.New[T](faaq.WithRecorder(rec)))
			shared := func(int) queue.BatchQueue[T] { return q }
			return Shard[T]{Producer: shared, Consumer: shared}
		}
	}
	return o
}
