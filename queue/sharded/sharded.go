// Package sharded is the production front-end of the repository's queue
// library: it composes N independent sub-queues ("shards") behind one
// batch-capable surface, with per-producer shard affinity on the enqueue
// side and work-stealing on the dequeue side.
//
// BENCH_PR4.json showed the linked queues collapsing 3-5x from 1 to 4
// threads while the FAA queue stayed near-flat: past a few producers the
// single contended word, not the algorithm, is the ceiling. Sharding
// splits that word N ways. Batching (repro/queue's BatchQueue surface)
// then amortizes what contention remains: a producer's EnqueueBatch is
// one sub-queue batch operation — one FAA for a faaq shard, one linking
// CAS for an sbq shard — regardless of k. The combination is the
// paper's §5 insight run forwards: instead of recovering a basket from
// the k CASs that failed, the caller hands the basket in and no CAS
// needs to fail at all.
//
// # Ordering
//
// The front-end deliberately relaxes total FIFO to per-producer FIFO:
// elements of one producer are dequeued in enqueue order (each producer
// is pinned to one shard, and each shard is FIFO), but elements of
// different producers may be reordered even when their enqueues did not
// overlap. Registry entries built on this package declare
// registry.PerProducerFIFO so conformance suites check the right
// contract.
//
// # Views
//
// Like SBQ, the queue hands out per-goroutine views: Producer(i) pins
// producer i to shard i % N (its sub-view may carry per-producer state,
// e.g. an SBQ handle, so it must not be shared); Consumer(i) prefers
// shard i % N and steals from the others round-robin when its home
// shard runs dry. Both views implement queue.BatchQueue.
//
// Consumers that keep finding every shard empty back off between sweeps
// (calibrated spin, no clock reads — see the stealBackoff constants), so
// large consumer counts polling a drained queue stop thrashing the shard
// head lines; obs.DeqStealMisses counts the empty sweeps.
package sharded

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/spin"
	"repro/queue"
)

// Shard is one sub-queue as the front-end consumes it: per-role view
// functions, the same shape repro/queue/registry's Instance hands out.
// Producer(i) is called with per-shard producer indices (0 ..
// producersPerShard-1); Consumer views must be safe to share.
type Shard[T any] struct {
	Producer func(i int) queue.BatchQueue[T]
	Consumer func(i int) queue.BatchQueue[T]
}

// Queue composes N shards. It is not itself a queue.Queue — obtain views
// with Producer and Consumer.
type Queue[T any] struct {
	shards []Shard[T]
	rec    obs.Recorder
}

// New builds a front-end from opts. With no options it composes
// GOMAXPROCS faaq shards.
func New[T any](opts ...Option[T]) *Queue[T] {
	o := buildOptions(opts)
	q := &Queue[T]{shards: make([]Shard[T], o.shards), rec: o.rec}
	for s := range q.shards {
		q.shards[s] = o.build(s, o.perShard)
	}
	return q
}

// NumShards returns the shard count.
func (q *Queue[T]) NumShards() int { return len(q.shards) }

// Producer returns the view for producer i, pinned to shard i % N. Each
// returned view must be used by at most one goroutine at a time. The
// view's dequeue side steals like a Consumer view's, so a goroutine that
// both produces and consumes needs only one view.
func (q *Queue[T]) Producer(i int) queue.BatchQueue[T] {
	n := len(q.shards)
	home := i % n
	v := &view[T]{q: q, home: home, cons: q.consViews(i)}
	v.enq = q.shards[home].Producer(i / n)
	return v
}

// Consumer returns the view for consumer i: dequeues drain shard i % N
// first and steal round-robin from the rest. Enqueues on a consumer view
// go to the home shard's consumer view (which may reject them, e.g. SBQ
// consumer views panic), mirroring the underlying entry's contract.
func (q *Queue[T]) Consumer(i int) queue.BatchQueue[T] {
	home := i % len(q.shards)
	cons := q.consViews(i)
	return &view[T]{q: q, home: home, enq: cons[home], cons: cons}
}

// consViews materializes consumer view i of every shard.
func (q *Queue[T]) consViews(i int) []queue.BatchQueue[T] {
	cons := make([]queue.BatchQueue[T], len(q.shards))
	for s := range q.shards {
		cons[s] = q.shards[s].Consumer(i)
	}
	return cons
}

// Steal-backoff tuning. A consumer whose last stealBackoffAfter full
// sweeps (home shard plus every steal target) all came back empty spins a
// calibrated, clock-free window before its next sweep; the window doubles
// per additional miss up to stealBackoffCap iterations (a few microseconds
// on current hardware). Without this, high consumer counts on a drained
// queue thrash every shard's head line in lockstep — the same
// contention-collapse shape the paper measures on the single contended
// word, reproduced across N of them.
const (
	stealBackoffAfter = 2
	stealBackoffBase  = 1 << 6
	stealBackoffCap   = 1 << 12
)

// view is one goroutine's handle on the front-end.
type view[T any] struct {
	q    *Queue[T]
	home int
	enq  queue.BatchQueue[T]   // home-shard enqueue target
	cons []queue.BatchQueue[T] // per-shard dequeue views, indexed by shard
	// misses counts consecutive full sweeps that found every shard empty.
	// Views are documented as single-goroutine, but registry consumer
	// views may be shared, so the counter is atomic; the clamped races are
	// harmless (at worst a slightly longer or shorter backoff window).
	misses atomic.Uint32
}

// stealPause backs off before a steal sweep once stealBackoffAfter
// consecutive sweeps came back empty: pure calibrated spin, no clock
// reads (see repro/internal/spin).
//
//lf:hotpath
func (v *view[T]) stealPause() {
	m := v.misses.Load()
	if m < stealBackoffAfter {
		return
	}
	shift := m - stealBackoffAfter
	w := uint64(stealBackoffBase) << shift
	if shift > 6 || w > stealBackoffCap {
		w = stealBackoffCap
	}
	spin.Iters(w)
}

// miss records one empty full sweep.
//
//lf:hotpath
func (v *view[T]) miss() {
	if v.misses.Load() < 32 { // clamp: the window is capped anyway
		v.misses.Add(1)
	}
	if r := v.q.rec; r != nil {
		r.Inc(obs.DeqStealMisses)
	}
}

// hit resets the backoff after a successful dequeue. The load-then-store
// keeps the common non-backoff path write-free.
//
//lf:hotpath
func (v *view[T]) hit() {
	if v.misses.Load() != 0 {
		v.misses.Store(0)
	}
}

// Enqueue appends v to the home shard.
//
//lf:hotpath
func (v *view[T]) Enqueue(x T) { v.enq.Enqueue(x) }

// EnqueueBatch appends vs to the home shard as one sub-queue batch: the
// whole batch stays on one shard, so intra-batch FIFO order is exactly
// the shard's FIFO order.
//
//lf:hotpath
func (v *view[T]) EnqueueBatch(vs []T) { v.enq.EnqueueBatch(vs) }

// Dequeue drains the home shard, stealing from the other shards
// round-robin when it is dry. ok=false means every shard appeared empty
// during the scan.
//
//lf:hotpath
func (v *view[T]) Dequeue() (T, bool) {
	if x, ok := v.cons[v.home].Dequeue(); ok {
		v.hit()
		return x, true
	}
	v.stealPause()
	n := len(v.cons)
	for d := 1; d < n; d++ {
		if x, ok := v.cons[(v.home+d)%n].Dequeue(); ok {
			if r := v.q.rec; r != nil {
				r.Inc(obs.DeqSteals)
			}
			v.hit()
			return x, true
		}
	}
	v.miss()
	var zero T
	return zero, false
}

// DequeueBatch fills dst from the home shard first, then widens the
// scan shard by shard until dst is full or every shard has been tried.
// Elements stolen from one shard land in dst contiguously, so each
// producer's elements stay in order within the batch.
//
//lf:hotpath
func (v *view[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	got := v.cons[v.home].DequeueBatch(dst)
	if got == 0 {
		v.stealPause()
	}
	n := len(v.cons)
	for d := 1; d < n && got < len(dst); d++ {
		stolen := v.cons[(v.home+d)%n].DequeueBatch(dst[got:])
		if stolen > 0 {
			got += stolen
			if r := v.q.rec; r != nil {
				r.Add(obs.DeqSteals, uint64(stolen))
			}
		}
	}
	if got == 0 {
		v.miss()
	} else {
		v.hit()
	}
	return got
}
