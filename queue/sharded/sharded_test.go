package sharded_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/queue"
	"repro/queue/sharded"
)

func newQ(shards, producers int, rec obs.Recorder) *sharded.Queue[uint64] {
	return sharded.New[uint64](
		sharded.WithShards[uint64](shards),
		sharded.WithProducers[uint64](producers),
		sharded.WithRecorder[uint64](rec),
	)
}

func TestSequentialFIFOOneProducer(t *testing.T) {
	q := newQ(3, 1, nil)
	p := q.Producer(0)
	c := q.Consumer(0)
	if _, ok := c.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	const n = 500
	for i := 0; i < n; i++ {
		p.Enqueue(uint64(i + 1))
	}
	for i := 0; i < n; i++ {
		v, ok := c.Dequeue()
		if !ok || v != uint64(i+1) {
			t.Fatalf("position %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
}

// TestWorkStealing pins all elements to producer 0's shard, then drains
// through a consumer whose home is a DIFFERENT shard: every element must
// arrive via the steal path, and deq_steals must account for all of
// them.
func TestWorkStealing(t *testing.T) {
	rec := obs.New()
	q := newQ(4, 4, rec)
	p := q.Producer(0) // home shard 0
	const n = 100
	for i := 0; i < n; i++ {
		p.Enqueue(uint64(i + 1))
	}
	c := q.Consumer(1) // home shard 1: always dry, must steal
	for i := 0; i < n; i++ {
		v, ok := c.Dequeue()
		if !ok || v != uint64(i+1) {
			t.Fatalf("position %d: got %d,%v (stealing must preserve shard FIFO)", i, v, ok)
		}
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
	if got := rec.Snapshot().Counter(obs.DeqSteals); got != n {
		t.Fatalf("deq_steals = %d, want %d", got, n)
	}
}

// TestWorkStealingBatch is the batch analogue: a batch dequeue with a
// dry home shard must fill from the others and count the steals.
func TestWorkStealingBatch(t *testing.T) {
	rec := obs.New()
	q := newQ(3, 3, rec)
	q.Producer(0).EnqueueBatch([]uint64{1, 2, 3})
	q.Producer(1).EnqueueBatch([]uint64{4, 5})
	dst := make([]uint64, 10)
	got := q.Consumer(2).DequeueBatch(dst) // home shard 2 is empty
	if got != 5 {
		t.Fatalf("DequeueBatch = %d, want 5", got)
	}
	if got := rec.Snapshot().Counter(obs.DeqSteals); got != 5 {
		t.Fatalf("deq_steals = %d, want 5", got)
	}
	// Each shard's run must be contiguous and in order in dst.
	seen := map[uint64]bool{}
	for _, v := range dst[:5] {
		seen[v] = true
	}
	for v := uint64(1); v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("element %d missing from batch %v", v, dst[:5])
		}
	}
}

// TestShardAffinity checks the producer→shard pinning: with S shards,
// producers i and i+S share a shard, producers i and i+1 do not (their
// elements interleave freely but never share a sub-queue's FIFO).
func TestShardAffinity(t *testing.T) {
	q := newQ(2, 4, nil)
	// Producers 0 and 2 → shard 0; producers 1 and 3 → shard 1.
	q.Producer(0).Enqueue(100)
	q.Producer(2).Enqueue(102)
	q.Producer(1).Enqueue(101)
	q.Producer(3).Enqueue(103)
	c := q.Consumer(0) // home shard 0
	v1, _ := c.Dequeue()
	v2, _ := c.Dequeue()
	if v1 != 100 || v2 != 102 {
		t.Fatalf("home-shard drain = %d,%d, want 100,102 (producers 0 and 2 share shard 0)", v1, v2)
	}
	v3, _ := c.Dequeue()
	v4, _ := c.Dequeue()
	if v3 != 101 || v4 != 103 {
		t.Fatalf("steal drain = %d,%d, want 101,103", v3, v4)
	}
}

// TestPerProducerFIFOConcurrent is the front-end's ordering contract
// under real concurrency: exactly-once delivery, and each consumer sees
// each producer's elements in increasing sequence order.
func TestPerProducerFIFOConcurrent(t *testing.T) {
	const shards, producers, consumers, per = 3, 6, 4, 2000
	q := newQ(shards, producers, nil)
	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer done.Done()
			v := q.Producer(p)
			vs := make([]uint64, 8)
			seq := 0
			for seq < per {
				k := len(vs)
				if per-seq < k {
					k = per - seq
				}
				for i := 0; i < k; i++ {
					vs[i] = uint64(p+1)<<32 | uint64(seq+i+1)
				}
				if k == 1 {
					v.Enqueue(vs[0])
				} else {
					v.EnqueueBatch(vs[:k])
				}
				seq += k
			}
		}()
	}
	producersDone := make(chan struct{})
	go func() { done.Wait(); close(producersDone) }()

	type result struct {
		count int
		last  []uint64
		err   string
	}
	results := make([]result, consumers)
	for c := 0; c < consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := q.Consumer(c)
			last := make([]uint64, producers+1)
			count := 0
			dst := make([]uint64, 16)
			check := func(n int) bool {
				for _, x := range dst[:n] {
					p, seq := x>>32, x&0xffffffff
					if seq <= last[p] {
						results[c].err = "per-producer order violated"
						return false
					}
					last[p] = seq
					count++
				}
				return true
			}
			for {
				n := v.DequeueBatch(dst)
				if n > 0 {
					if !check(n) {
						return
					}
					continue
				}
				select {
				case <-producersDone:
					for {
						n := v.DequeueBatch(dst)
						if n == 0 {
							results[c].count = count
							results[c].last = last
							return
						}
						if !check(n) {
							return
						}
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for c, r := range results {
		if r.err != "" {
			t.Fatalf("consumer %d: %s", c, r.err)
		}
		total += r.count
	}
	if total != producers*per {
		t.Fatalf("delivered %d of %d elements", total, producers*per)
	}
}

// TestConsumerViewEnqueueRoutesToShard: consumer views of shareable
// sub-queues accept enqueues (to the home shard), preserving the
// underlying entry's contract.
func TestConsumerViewEnqueue(t *testing.T) {
	q := newQ(2, 2, nil)
	c := q.Consumer(1)
	c.Enqueue(7)
	if v, ok := c.Dequeue(); !ok || v != 7 {
		t.Fatalf("got %d,%v, want 7,true", v, ok)
	}
}

func TestDefaultsAndPanics(t *testing.T) {
	q := sharded.New[uint64]()
	if q.NumShards() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default shards = %d, want GOMAXPROCS=%d", q.NumShards(), runtime.GOMAXPROCS(0))
	}
	for _, bad := range []func(){
		func() { sharded.New[int](sharded.WithShards[int](-1)) },
		func() { sharded.New[int](sharded.WithProducers[int](-2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad option did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestCustomShardBuilder wires a custom sub-queue and checks the
// builder sees correct per-shard producer counts.
func TestCustomShardBuilder(t *testing.T) {
	var mu sync.Mutex
	perShardSeen := map[int]int{}
	q := sharded.New[uint64](
		sharded.WithShards[uint64](3),
		sharded.WithProducers[uint64](7), // ceil(7/3) = 3 per shard
		sharded.WithShardBuilder[uint64](func(shard, perShard int) sharded.Shard[uint64] {
			mu.Lock()
			perShardSeen[shard] = perShard
			mu.Unlock()
			var inner sliceQueue
			b := queue.AsBatch[uint64](&inner)
			view := func(int) queue.BatchQueue[uint64] { return b }
			return sharded.Shard[uint64]{Producer: view, Consumer: view}
		}),
	)
	for s := 0; s < 3; s++ {
		if perShardSeen[s] != 3 {
			t.Fatalf("shard %d told %d producers, want 3", s, perShardSeen[s])
		}
	}
	q.Producer(6).Enqueue(42) // producer 6 → shard 0, per-shard index 2
	if v, ok := q.Consumer(0).Dequeue(); !ok || v != 42 {
		t.Fatalf("got %d,%v, want 42,true", v, ok)
	}
}

// sliceQueue is a trivial queue for the custom-builder test; the test
// uses it single-threaded.
type sliceQueue struct {
	mu sync.Mutex
	vs []uint64
}

func (q *sliceQueue) Enqueue(v uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.vs = append(q.vs, v)
}

func (q *sliceQueue) Dequeue() (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.vs) == 0 {
		return 0, false
	}
	v := q.vs[0]
	q.vs = q.vs[1:]
	return v, true
}

// TestStealBackoffMisses drives a consumer against a drained queue: every
// full sweep must count one deq_steal_miss, the view must keep returning
// not-ok promptly (the backoff is bounded), and a successful dequeue must
// reset the miss streak so steady-state consumption pays no backoff.
func TestStealBackoffMisses(t *testing.T) {
	rec := obs.New()
	q := newQ(4, 4, rec)
	c := q.Consumer(0)

	const sweeps = 10
	for i := 0; i < sweeps; i++ {
		if _, ok := c.Dequeue(); ok {
			t.Fatal("empty queue returned an element")
		}
	}
	if got := rec.Snapshot().Counter(obs.DeqStealMisses); got != sweeps {
		t.Fatalf("deq_steal_misses = %d, want %d", got, sweeps)
	}

	// A hit resets the streak: the next miss streak starts from scratch.
	q.Producer(0).Enqueue(42)
	if v, ok := c.Dequeue(); !ok || v != 42 {
		t.Fatalf("dequeue after refill: got %d,%v", v, ok)
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("queue should be empty again")
	}
	if got := rec.Snapshot().Counter(obs.DeqStealMisses); got != sweeps+1 {
		t.Fatalf("deq_steal_misses after hit = %d, want %d", got, sweeps+1)
	}
}

// TestStealBackoffBatch mirrors TestStealBackoffMisses on the batch
// surface: empty DequeueBatch sweeps count misses, non-empty ones reset.
func TestStealBackoffBatch(t *testing.T) {
	rec := obs.New()
	q := newQ(2, 2, rec)
	c := q.Consumer(0)
	dst := make([]uint64, 8)

	for i := 0; i < 5; i++ {
		if n := c.DequeueBatch(dst); n != 0 {
			t.Fatalf("empty queue returned %d elements", n)
		}
	}
	if got := rec.Snapshot().Counter(obs.DeqStealMisses); got != 5 {
		t.Fatalf("deq_steal_misses = %d, want 5", got)
	}
	q.Producer(0).EnqueueBatch([]uint64{1, 2, 3})
	if n := c.DequeueBatch(dst); n != 3 {
		t.Fatalf("DequeueBatch = %d, want 3", n)
	}
	if got := rec.Snapshot().Counter(obs.DeqStealMisses); got != 5 {
		t.Fatalf("deq_steal_misses grew on a successful batch: %d", got)
	}
}
