package registry_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/queue"
	"repro/queue/queuetest"
	"repro/queue/registry"
)

// TestConformance runs the conformance suite over every registered queue:
// one table, no per-implementation switch. Per-package tests keep the
// heavier RunAll shapes; this table uses a reduced load so the whole
// registry stays cheap under go test ./...
//
// The concurrent check is picked from the entry's declared ordering
// contract: TotalFIFO entries run the linearizability checker,
// PerProducerFIFO entries (the sharded front-ends) run the relaxed check —
// exactly-once plus per-consumer per-producer order.
func TestConformance(t *testing.T) {
	names := registry.Names()
	if len(names) < 8 {
		t.Fatalf("registry unexpectedly small: %v", names)
	}
	for _, name := range names {
		e, ok := registry.LookupEntry(name)
		if !ok {
			t.Fatalf("LookupEntry(%q) failed after Names listed it", name)
		}
		// Pin Shards to 3 so the sharded entries cover multi-shard routing
		// and work-stealing even where GOMAXPROCS is 1; unsharded entries
		// ignore the field.
		f := queuetest.FromRegistryConfig(e.Build, registry.Config{Shards: 3})
		single := queuetest.FromRegistry(e.Build)
		t.Run(name, func(t *testing.T) {
			queuetest.CheckSequential(t, single)
			per := 500
			if testing.Short() {
				per = 100
			}
			switch e.Ordering {
			case registry.TotalFIFO:
				queuetest.CheckConcurrent(t, single, 4, 4, per)
			case registry.PerProducerFIFO:
				relaxed := func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
					p, c := f(producers)
					return func(i int) queue.Queue[uint64] { return p(i) },
						func(i int) queue.Queue[uint64] { return c(i) }
				}
				queuetest.CheckConcurrentRelaxed(t, relaxed, 4, 4, per)
			default:
				t.Fatalf("entry %q has unknown ordering %v", name, e.Ordering)
			}
			queuetest.CheckDrainMultiset(t, single, 8, per)
		})
	}
}

// TestBatchConformance drives the batch surface of every entry — native
// (faaq, sbq, sharded) and AsBatch-upgraded alike — through the sequential
// and concurrent batch checks.
func TestBatchConformance(t *testing.T) {
	for _, name := range registry.Names() {
		e, ok := registry.LookupEntry(name)
		if !ok {
			t.Fatalf("LookupEntry(%q) failed after Names listed it", name)
		}
		f := queuetest.FromRegistryConfig(e.Build, registry.Config{Shards: 3, BatchHint: 8})
		t.Run(name, func(t *testing.T) {
			queuetest.CheckBatchSequential(t, f)
			per := 400
			if testing.Short() {
				per = 80
			}
			queuetest.CheckBatchConcurrent(t, f, 4, 4, 8, per)
		})
	}
}

// TestAllocFree gates every entry's pooled-node mode at zero steady-state
// heap allocations, single and batch operations alike — the dynamic half
// of the zero-alloc hot-path invariant (the static half is lfcheck's
// hotpath+allocfree analyzers). CI's alloc-gates job runs this test with
// GOGC=off; under -race it skips itself.
func TestAllocFree(t *testing.T) {
	for _, name := range registry.Names() {
		e, ok := registry.LookupEntry(name)
		if !ok {
			t.Fatalf("LookupEntry(%q) failed after Names listed it", name)
		}
		// Shards pinned to 2 so the sharded entries gate the multi-shard
		// routing path, not a degenerate single-shard build.
		f := queuetest.FromRegistryConfig(e.Build, registry.Config{Pooled: true, Shards: 2})
		t.Run(name, func(t *testing.T) {
			queuetest.CheckAllocFree(t, f)
		})
	}
}

// TestPooledConformance re-runs the conformance checks over every entry
// in pooled-node mode: node recycling under epoch guards must preserve
// exactly-once delivery and the entry's ordering contract, not just
// allocation counts.
func TestPooledConformance(t *testing.T) {
	for _, name := range registry.Names() {
		e, ok := registry.LookupEntry(name)
		if !ok {
			t.Fatalf("LookupEntry(%q) failed after Names listed it", name)
		}
		cfg := registry.Config{Pooled: true, Shards: 3}
		f := queuetest.FromRegistryConfig(e.Build, cfg)
		single := queuetest.FromRegistryConfig(e.Build, cfg)
		t.Run(name, func(t *testing.T) {
			asFactory := func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
				p, c := single(producers)
				return func(i int) queue.Queue[uint64] { return p(i) },
					func(i int) queue.Queue[uint64] { return c(i) }
			}
			queuetest.CheckSequential(t, asFactory)
			per := 500
			if testing.Short() {
				per = 100
			}
			switch e.Ordering {
			case registry.TotalFIFO:
				queuetest.CheckConcurrent(t, asFactory, 4, 4, per)
			case registry.PerProducerFIFO:
				relaxed := func(producers int) (func(int) queue.Queue[uint64], func(int) queue.Queue[uint64]) {
					p, c := f(producers)
					return func(i int) queue.Queue[uint64] { return p(i) },
						func(i int) queue.Queue[uint64] { return c(i) }
				}
				queuetest.CheckConcurrentRelaxed(t, relaxed, 4, 4, per)
			default:
				t.Fatalf("entry %q has unknown ordering %v", name, e.Ordering)
			}
			queuetest.CheckBatchSequential(t, f)
			queuetest.CheckBatchConcurrent(t, f, 4, 4, 8, per)
		})
	}
}

// TestPooledStress runs the stress shapes over every entry in pooled-node
// mode. Under -race (the CI test job) this is the suite that shakes out
// missing happens-before edges in the retire/advance interplay of the
// reclaim-backed pools.
func TestPooledStress(t *testing.T) {
	for _, name := range registry.Names() {
		e, ok := registry.LookupEntry(name)
		if !ok {
			t.Fatalf("LookupEntry(%q) failed after Names listed it", name)
		}
		f := queuetest.FromRegistry(func(cfg registry.Config) registry.Instance {
			cfg.Pooled = true
			return e.Build(cfg)
		})
		t.Run(name, func(t *testing.T) {
			queuetest.StressShapes(t, f)
		})
	}
}

// TestStress runs the queuetest stress variant — exactly-once delivery
// under churn, no history recording — over every registry entry at
// GOMAXPROCS 1, 2, and NumCPU. Its value multiplies under -race (the CI
// test job), where scheduler-width changes shake out missing
// happens-before edges.
func TestStress(t *testing.T) {
	for _, name := range registry.Names() {
		b, ok := registry.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed after Names listed it", name)
		}
		f := queuetest.FromRegistry(b)
		t.Run(name, func(t *testing.T) {
			queuetest.StressShapes(t, f)
		})
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := registry.Build("no-such-queue", registry.Config{}); err == nil {
		t.Fatal("Build on an unknown name did not error")
	}
}

// TestOrderingContracts pins each entry's declared contract: the sharded
// front-ends are the only relaxed entries, and Ordering strings stay
// stable (they appear in logs and bench records).
func TestOrderingContracts(t *testing.T) {
	relaxed := map[string]bool{"Sharded-FAA": true, "Sharded-SBQ": true}
	for _, name := range registry.Names() {
		e, _ := registry.LookupEntry(name)
		want := registry.TotalFIFO
		if relaxed[name] {
			want = registry.PerProducerFIFO
		}
		if e.Ordering != want {
			t.Errorf("%s: ordering %v, want %v", name, e.Ordering, want)
		}
	}
	if registry.TotalFIFO.String() != "total-fifo" || registry.PerProducerFIFO.String() != "per-producer-fifo" {
		t.Errorf("Ordering strings drifted: %q, %q", registry.TotalFIFO, registry.PerProducerFIFO)
	}
}

// TestRecorderThreading verifies that a recorder handed to Build reaches
// the queue's telemetry hooks for every entry. The front-end must not
// double-count: sharded entries thread the recorder into their sub-queues,
// so EnqOps/DeqOps still count elements exactly once.
func TestRecorderThreading(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			st := obs.New()
			inst, err := registry.Build(name, registry.Config{Producers: 2, Shards: 2, Recorder: st})
			if err != nil {
				t.Fatal(err)
			}
			p0, p1 := inst.ProducerView(0), inst.ProducerView(1)
			c := inst.ConsumerView(0)
			const per = 200
			for i := 0; i < per; i++ {
				p0.Enqueue(uint64(1)<<32 | uint64(i))
				p1.Enqueue(uint64(2)<<32 | uint64(i))
			}
			got := 0
			for {
				if _, ok := c.Dequeue(); !ok {
					break
				}
				got++
			}
			if got != 2*per {
				t.Fatalf("drained %d of %d", got, 2*per)
			}
			snap := st.Snapshot()
			if snap.Counter(obs.EnqOps) != 2*per {
				t.Errorf("EnqOps = %d, want %d", snap.Counter(obs.EnqOps), 2*per)
			}
			if snap.Counter(obs.DeqOps) != 2*per {
				t.Errorf("DeqOps = %d, want %d", snap.Counter(obs.DeqOps), 2*per)
			}
			if snap.Counter(obs.DeqEmpty) == 0 {
				t.Error("DeqEmpty never incremented on the draining dequeue")
			}
		})
	}
}

// TestBatchRecorderThreading checks the batch counters registry-wide:
// driving k elements per EnqueueBatch must report EnqOps in elements, and
// entries with a native batch path must report fewer batches than
// elements (the amortization the counters exist to expose).
func TestBatchRecorderThreading(t *testing.T) {
	native := map[string]bool{
		"FAA-Queue": true, "SBQ-CAS": true, "SBQ-DCAS": true, "SBQ-PB": true,
		"SBQ-TxCAS": true, "Sharded-FAA": true, "Sharded-SBQ": true,
	}
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			st := obs.New()
			inst, err := registry.Build(name, registry.Config{Producers: 1, Shards: 2, BatchHint: 8, Recorder: st})
			if err != nil {
				t.Fatal(err)
			}
			p := inst.ProducerView(0)
			const rounds, k = 10, 8
			vs := make([]uint64, k)
			for r := 0; r < rounds; r++ {
				for i := range vs {
					vs[i] = uint64(r*k + i + 1)
				}
				p.EnqueueBatch(vs)
			}
			c := inst.ConsumerView(0)
			dst := make([]uint64, k)
			got := 0
			for {
				n := c.DequeueBatch(dst)
				if n == 0 {
					break
				}
				got += n
			}
			if got != rounds*k {
				t.Fatalf("drained %d of %d", got, rounds*k)
			}
			snap := st.Snapshot()
			if snap.Counter(obs.EnqOps) != rounds*k {
				t.Errorf("EnqOps = %d, want %d (elements, not batches)", snap.Counter(obs.EnqOps), rounds*k)
			}
			if native[name] {
				if b := snap.Counter(obs.EnqBatches); b != rounds {
					t.Errorf("EnqBatches = %d, want %d", b, rounds)
				}
				if b := snap.Counter(obs.DeqBatches); b == 0 || b > uint64(rounds*k) {
					t.Errorf("DeqBatches = %d, want within (0, %d]", b, rounds*k)
				}
			}
		})
	}
}

// TestDeprecatedSurface keeps the deprecated wrappers' behavior pinned:
// Producer/Consumer return the same views as ProducerView/ConsumerView,
// and Shared hands out AsBatch-upgraded views. This test lives in the
// defining package's _test package, where deprecated uses are exempt from
// the lint table.
func TestDeprecatedSurface(t *testing.T) {
	inst, err := registry.Build("FAA-Queue", registry.Config{Producers: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst.Producer(0).Enqueue(11)
	if v, ok := inst.Consumer(0).Dequeue(); !ok || v != 11 {
		t.Fatalf("deprecated views: got %d,%v, want 11,true", v, ok)
	}

	sh := registry.Shared(queue.AsBatch[uint64](sliceQueue{new([]uint64)}))
	sh.ProducerView(0).EnqueueBatch([]uint64{1, 2, 3})
	dst := make([]uint64, 4)
	if n := sh.ConsumerView(0).DequeueBatch(dst); n != 3 || dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("Shared batch views: got %d %v, want 3 [1 2 3 _]", n, dst)
	}
}

// sliceQueue is a minimal single-threaded queue.Queue for the Shared test.
type sliceQueue struct{ vs *[]uint64 }

func (q sliceQueue) Enqueue(v uint64) { *q.vs = append(*q.vs, v) }
func (q sliceQueue) Dequeue() (uint64, bool) {
	if len(*q.vs) == 0 {
		return 0, false
	}
	v := (*q.vs)[0]
	*q.vs = (*q.vs)[1:]
	return v, true
}

// TestConfigValidate is the table for Config.Validate and its enforcement
// in Build: zero values are documented defaults and must stay valid, while
// negative counts must produce a named-field error instead of a panic deep
// inside a constructor.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     registry.Config
		wantErr string // substring; "" means valid
	}{
		{"zero value is the default config", registry.Config{}, ""},
		{"explicit positives", registry.Config{Producers: 4, Shards: 2, BatchHint: 8}, ""},
		{"zero shards selects the entry default", registry.Config{Producers: 1, Shards: 0}, ""},
		{"zero batch hint means unknown", registry.Config{BatchHint: 0}, ""},
		{"negative producers", registry.Config{Producers: -1}, "Producers"},
		{"negative shards", registry.Config{Shards: -3}, "Shards"},
		{"negative batch hint", registry.Config{BatchHint: -8}, "BatchHint"},
		{"zero tx window selects the engine default", registry.Config{TxWindow: 0}, ""},
		{"explicit tx window", registry.Config{TxWindow: 270 * time.Nanosecond}, ""},
		{"negative tx window", registry.Config{TxWindow: -time.Microsecond}, "TxWindow"},
		{"first bad field wins", registry.Config{Producers: -1, Shards: -1}, "Producers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.wantErr)
			}
			// Build must reject the same config without reaching the
			// builder (which might panic), for every registered entry.
			if _, berr := registry.Build("FAA-Queue", tc.cfg); berr == nil ||
				!strings.Contains(berr.Error(), tc.wantErr) {
				t.Fatalf("Build() = %v, want error mentioning %q", berr, tc.wantErr)
			}
		})
	}
}

// TestBuildTxCASWindow builds the TxCAS entry with an explicit speculation
// window and checks the queue works and reports engine telemetry — the
// path sbqbench's -txcas sweep drives.
func TestBuildTxCASWindow(t *testing.T) {
	for _, w := range []time.Duration{0, time.Microsecond} {
		st := obs.New()
		inst, err := registry.Build("SBQ-TxCAS", registry.Config{Producers: 1, Recorder: st, TxWindow: w})
		if err != nil {
			t.Fatal(err)
		}
		p, c := inst.ProducerView(0), inst.ConsumerView(0)
		const n = 100
		for i := uint64(0); i < n; i++ {
			p.Enqueue(i)
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := c.Dequeue(); !ok || v != i {
				t.Fatalf("window %v: dequeue %d = (%d, %v)", w, i, v, ok)
			}
		}
		if st.Snapshot().Counter(obs.CASAttempts) == 0 {
			t.Errorf("window %v: no CAS attempts recorded through the engine", w)
		}
	}
}

// TestBuildSharded negative shard counts used to panic inside
// sharded.buildOptions; they must now surface as Build errors.
func TestBuildShardedNegativeShards(t *testing.T) {
	if _, err := registry.Build("Sharded-FAA", registry.Config{Producers: 2, Shards: -1}); err == nil {
		t.Fatal("Build(Sharded-FAA, Shards: -1) succeeded, want error")
	}
}

// TestShardRecorder verifies per-shard telemetry routing: with a
// ShardRecorder installed, each shard's queue counters land in that
// shard's recorder, the per-shard sum accounts for every element, and the
// front-end's own steal counters still go to the global Recorder.
func TestShardRecorder(t *testing.T) {
	for _, name := range []string{"Sharded-FAA", "Sharded-SBQ"} {
		t.Run(name, func(t *testing.T) {
			const shards, ops = 4, 64
			global := obs.New()
			perShard := make([]*obs.Stats, shards)
			for i := range perShard {
				perShard[i] = obs.New()
			}
			inst, err := registry.Build(name, registry.Config{
				Producers: 1,
				Shards:    shards,
				Recorder:  global,
				ShardRecorder: func(shard int) obs.Recorder {
					return obs.Tee(perShard[shard], global)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			p, c := inst.ProducerView(0), inst.ConsumerView(0)
			for i := uint64(0); i < ops; i++ {
				p.Enqueue(i)
			}
			got := 0
			for {
				if _, ok := c.Dequeue(); !ok {
					break
				}
				got++
			}
			if got != ops {
				t.Fatalf("dequeued %d of %d", got, ops)
			}
			var merged obs.Snapshot
			active := 0
			for _, st := range perShard {
				snap := st.Snapshot()
				if snap.Counter(obs.EnqOps) > 0 {
					active++
				}
				merged.Merge(snap)
			}
			if merged.Counter(obs.EnqOps) != ops || merged.Counter(obs.DeqOps) != ops {
				t.Fatalf("per-shard sums enq=%d deq=%d, want %d",
					merged.Counter(obs.EnqOps), merged.Counter(obs.DeqOps), ops)
			}
			if active == 0 {
				t.Fatal("no shard recorded any enqueue")
			}
			g := global.Snapshot()
			if g.Counter(obs.EnqOps) != ops {
				t.Fatalf("global enq = %d, want %d (tee through ShardRecorder)", g.Counter(obs.EnqOps), ops)
			}
		})
	}
}

// TestShardRecorderNilFallsBack pins the compatibility contract: without a
// ShardRecorder, sharded entries route shard telemetry to Recorder exactly
// as before.
func TestShardRecorderNilFallsBack(t *testing.T) {
	global := obs.New()
	inst, err := registry.Build("Sharded-FAA", registry.Config{Shards: 2, Recorder: global})
	if err != nil {
		t.Fatal(err)
	}
	inst.ProducerView(0).Enqueue(7)
	if _, ok := inst.ConsumerView(0).Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	snap := global.Snapshot()
	if snap.Counter(obs.EnqOps) != 1 || snap.Counter(obs.DeqOps) != 1 {
		t.Fatalf("global counters enq=%d deq=%d", snap.Counter(obs.EnqOps), snap.Counter(obs.DeqOps))
	}
}
