package registry_test

import (
	"testing"

	"repro/internal/obs"
	"repro/queue/queuetest"
	"repro/queue/registry"
)

// TestConformance runs the conformance suite over every registered queue:
// one table, no per-implementation switch. Per-package tests keep the
// heavier RunAll shapes; this table uses a reduced load so the whole
// registry stays cheap under go test ./...
func TestConformance(t *testing.T) {
	names := registry.Names()
	if len(names) < 6 {
		t.Fatalf("registry unexpectedly small: %v", names)
	}
	for _, name := range names {
		b, ok := registry.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed after Names listed it", name)
		}
		f := queuetest.FromRegistry(b)
		t.Run(name, func(t *testing.T) {
			queuetest.CheckSequential(t, f)
			per := 500
			if testing.Short() {
				per = 100
			}
			queuetest.CheckConcurrent(t, f, 4, 4, per)
			queuetest.CheckDrainMultiset(t, f, 8, per)
		})
	}
}

// TestStress runs the queuetest stress variant — exactly-once delivery
// under churn, no history recording — over every registry entry at
// GOMAXPROCS 1, 2, and NumCPU. Its value multiplies under -race (the CI
// test job), where scheduler-width changes shake out missing
// happens-before edges.
func TestStress(t *testing.T) {
	for _, name := range registry.Names() {
		b, ok := registry.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed after Names listed it", name)
		}
		f := queuetest.FromRegistry(b)
		t.Run(name, func(t *testing.T) {
			queuetest.StressShapes(t, f)
		})
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := registry.Build("no-such-queue", registry.Config{}); err == nil {
		t.Fatal("Build on an unknown name did not error")
	}
}

// TestRecorderThreading verifies that a recorder handed to Build reaches
// the queue's telemetry hooks for every entry.
func TestRecorderThreading(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			st := obs.New()
			inst, err := registry.Build(name, registry.Config{Producers: 2, Recorder: st})
			if err != nil {
				t.Fatal(err)
			}
			p0, p1 := inst.Producer(0), inst.Producer(1)
			c := inst.Consumer(0)
			const per = 200
			for i := 0; i < per; i++ {
				p0.Enqueue(uint64(1)<<32 | uint64(i))
				p1.Enqueue(uint64(2)<<32 | uint64(i))
			}
			got := 0
			for {
				if _, ok := c.Dequeue(); !ok {
					break
				}
				got++
			}
			if got != 2*per {
				t.Fatalf("drained %d of %d", got, 2*per)
			}
			snap := st.Snapshot()
			if snap.Counter(obs.EnqOps) != 2*per {
				t.Errorf("EnqOps = %d, want %d", snap.Counter(obs.EnqOps), 2*per)
			}
			if snap.Counter(obs.DeqOps) != 2*per {
				t.Errorf("DeqOps = %d, want %d", snap.Counter(obs.DeqOps), 2*per)
			}
			if snap.Counter(obs.DeqEmpty) == 0 {
				t.Error("DeqEmpty never incremented on the draining dequeue")
			}
		})
	}
}
