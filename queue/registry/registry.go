// Package registry names the repository's native queue implementations and
// builds them uniformly, so benchmarks, tools, and conformance tests share
// one queue-selection table instead of each keeping its own switch.
//
// Entries are uint64-element queues (the element type every harness in this
// repository drives). Each builder receives a Config — producer count,
// shard count, batch hint, and an optional telemetry recorder — and returns
// an Instance handing out per-producer and per-consumer views:
// implementations whose producers need private state (SBQ handles own a
// basket cell) return distinct views per producer index, the rest return
// the shared queue. Views are batch-capable (queue.BatchQueue); entries
// whose implementation has no native batch path are upgraded through
// queue.AsBatch, so callers can always drive EnqueueBatch/DequeueBatch and
// get at worst the looped equivalent.
//
// Entries also declare their ordering contract: the classic queues are
// TotalFIFO (linearizable against a sequential FIFO spec), while the
// sharded front-ends relax to PerProducerFIFO. Conformance suites read the
// contract through LookupEntry and pick the matching checker.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/queue"
)

// Config parameterizes a build.
type Config struct {
	// Producers is the number of distinct producer views the caller will
	// request (SBQ sizes baskets from it; sharded entries derive per-shard
	// producer counts from it). Zero means one.
	Producers int
	// Shards is the shard count for entries that compose a sharded
	// front-end (see repro/queue/sharded). Zero lets the entry pick its
	// default (GOMAXPROCS); unsharded entries ignore it.
	Shards int
	// BatchHint is the batch size the caller intends to drive through
	// EnqueueBatch/DequeueBatch, or zero when unknown. It is advisory:
	// entries may use it to pre-size internal buffers, and harnesses
	// thread the swept batch size through it so a build sees the same
	// shape it will be measured under.
	BatchHint int
	// Recorder, when non-nil, is threaded into the queue's telemetry hooks
	// (see repro/internal/obs).
	Recorder obs.Recorder
	// ShardRecorder, when non-nil, supplies the recorder for shard i of a
	// sharded entry, so callers can aggregate queue telemetry per shard
	// (the /metrics exporter labels each shard's CAS-failure and retry
	// counters with it). Returning obs.Tee(shardStats, cfg.Recorder)-style
	// recorders gives both scopes. Unsharded entries ignore it; sharded
	// entries fall back to Recorder when it is nil. The sharded front-end's
	// own counters (steals, steal misses) always go to Recorder — they are
	// a property of the front-end, not of any one shard.
	ShardRecorder func(shard int) obs.Recorder
	// Pooled selects pooled-node mode (each implementation's WithNodePool
	// option): nodes recycle through reclaim-backed freelists with
	// epoch-deferred reuse instead of leaning on the garbage collector,
	// and steady-state operations allocate nothing — the configuration
	// queuetest's CheckAllocFree gates enforce registry-wide.
	Pooled bool
	// TxWindow overrides the speculation window of TxCAS-mode entries
	// (SBQ-TxCAS): how long a contending enqueuer watches the publication
	// gate before issuing its linking CAS (see repro/internal/txcas).
	// Zero selects the engine default (the paper's ~270ns §4.1 delay);
	// entries without a TxCAS engine ignore it. sbqbench threads its
	// -txcas sweep dimension through this field.
	TxWindow time.Duration
}

// Validate reports whether the configuration is buildable. Zero values are
// always valid — they select the documented defaults (one producer, the
// entry's shard default, unknown batch size) — but negative counts used to
// fall through to unhelpful panics deep inside the constructors (e.g.
// repro/queue/sharded's "shard count must be positive"), far from the
// caller that produced them. Build rejects such configs up front with this
// error instead.
func (cfg Config) Validate() error {
	if cfg.Producers < 0 {
		return fmt.Errorf("registry: Producers must be >= 0 (0 selects the default of one), got %d", cfg.Producers)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("registry: Shards must be >= 0 (0 selects the entry's default), got %d", cfg.Shards)
	}
	if cfg.BatchHint < 0 {
		return fmt.Errorf("registry: BatchHint must be >= 0 (0 means unknown), got %d", cfg.BatchHint)
	}
	if cfg.TxWindow < 0 {
		return fmt.Errorf("registry: TxWindow must be >= 0 (0 selects the engine default), got %v", cfg.TxWindow)
	}
	return nil
}

// Ordering is the dequeue-order contract a registry entry guarantees.
type Ordering int

const (
	// TotalFIFO entries are linearizable against the sequential FIFO
	// spec: all the classic single-queue implementations.
	TotalFIFO Ordering = iota
	// PerProducerFIFO entries preserve each producer's enqueue order but
	// may interleave different producers arbitrarily — even when their
	// enqueues did not overlap. The sharded front-ends live here.
	PerProducerFIFO
)

// String returns the contract's conventional name.
func (o Ordering) String() string {
	switch o {
	case TotalFIFO:
		return "total-fifo"
	case PerProducerFIFO:
		return "per-producer-fifo"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Instance is a built queue exposed as per-role views. ProducerView(i) must
// be called with 0 <= i < Config.Producers and each returned view used by
// at most one goroutine at a time; ConsumerView views are safe to share
// unless the entry documents otherwise.
//
// The view funcs are unexported fields reached through methods so the old
// field-style surface (Producer/Consumer) could be kept as deprecated
// wrappers: construct an Instance with Views or Batched.
type Instance struct {
	producer func(i int) queue.BatchQueue[uint64]
	consumer func(i int) queue.BatchQueue[uint64]
}

// Views builds an Instance from per-role view constructors.
func Views(producer, consumer func(i int) queue.BatchQueue[uint64]) Instance {
	return Instance{producer: producer, consumer: consumer}
}

// ProducerView returns the batch-capable view for producer i.
func (in Instance) ProducerView(i int) queue.BatchQueue[uint64] { return in.producer(i) }

// ConsumerView returns the batch-capable view for consumer i.
func (in Instance) ConsumerView(i int) queue.BatchQueue[uint64] { return in.consumer(i) }

// Producer returns the view for producer i.
//
// Deprecated: use ProducerView, which returns the batch-capable view.
func (in Instance) Producer(i int) queue.Queue[uint64] { return in.producer(i) }

// Consumer returns the view for consumer i.
//
// Deprecated: use ConsumerView, which returns the batch-capable view.
func (in Instance) Consumer(i int) queue.Queue[uint64] { return in.consumer(i) }

// Builder constructs a queue for one registry entry.
type Builder func(cfg Config) Instance

// Entry is one registered implementation: how to build it and what
// ordering contract the built queue honors.
type Entry struct {
	Build    Builder
	Ordering Ordering
}

var (
	mu      sync.RWMutex
	entries = map[string]Entry{}
)

// RegisterEntry adds a named entry. Registering a duplicate name panics:
// the registry is assembled from package init functions where a collision
// is a programming error. A nil Build also panics.
func RegisterEntry(name string, e Entry) {
	if e.Build == nil {
		panic("registry: entry " + name + " has no builder")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := entries[name]; dup {
		panic("registry: duplicate queue name " + name)
	}
	entries[name] = e
}

// Register adds a named builder with the default TotalFIFO contract.
func Register(name string, b Builder) {
	RegisterEntry(name, Entry{Build: b})
}

// Names returns the registered names, sorted for stable iteration order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupEntry returns the full entry for name.
func LookupEntry(name string) (Entry, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := entries[name]
	return e, ok
}

// Lookup returns the builder for name.
func Lookup(name string) (Builder, bool) {
	e, ok := LookupEntry(name)
	return e.Build, ok
}

// Build constructs the named queue, erroring on unknown names (with the
// known names in the message, since the caller is usually a CLI flag) and
// on invalid configurations (see Config.Validate).
func Build(name string, cfg Config) (Instance, error) {
	if err := cfg.Validate(); err != nil {
		return Instance{}, err
	}
	b, ok := Lookup(name)
	if !ok {
		return Instance{}, fmt.Errorf("registry: unknown queue %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// Batched wraps a single thread-safe batch-capable queue as an Instance:
// every view is the queue itself. Upgrade a plain queue.Queue first with
// queue.AsBatch.
func Batched(q queue.BatchQueue[uint64]) Instance {
	view := func(int) queue.BatchQueue[uint64] { return q }
	return Views(view, view)
}

// Shared wraps a single thread-safe queue as an Instance: every view is the
// queue itself.
//
// Deprecated: use Batched(queue.AsBatch(q)), which hands out batch-capable
// views.
func Shared(q queue.Queue[uint64]) Instance {
	return Batched(queue.AsBatch(q))
}
