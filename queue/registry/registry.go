// Package registry names the repository's native queue implementations and
// builds them uniformly, so benchmarks, tools, and conformance tests share
// one queue-selection table instead of each keeping its own switch.
//
// Entries are uint64-element queues (the element type every harness in this
// repository drives). Each builder receives a Config — producer count and
// an optional telemetry recorder — and returns an Instance handing out
// per-producer and per-consumer views: implementations whose producers need
// private state (SBQ handles own a basket cell) return distinct views per
// producer index, the rest return the shared queue.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/queue"
)

// Config parameterizes a build.
type Config struct {
	// Producers is the number of distinct producer views the caller will
	// request (SBQ sizes baskets from it). Zero means one.
	Producers int
	// Recorder, when non-nil, is threaded into the queue's telemetry hooks
	// (see repro/internal/obs).
	Recorder obs.Recorder
}

// Instance is a built queue exposed as per-role views. Producer(i) must be
// called with 0 <= i < Config.Producers and each returned view used by at
// most one goroutine at a time; Consumer views are safe to share.
type Instance struct {
	Producer func(i int) queue.Queue[uint64]
	Consumer func(i int) queue.Queue[uint64]
}

// Builder constructs a queue for one registry entry.
type Builder func(cfg Config) Instance

var (
	mu       sync.RWMutex
	builders = map[string]Builder{}
)

// Register adds a named builder. Registering a duplicate name panics: the
// registry is assembled from package init functions where a collision is a
// programming error.
func Register(name string, b Builder) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := builders[name]; dup {
		panic("registry: duplicate queue name " + name)
	}
	builders[name] = b
}

// Names returns the registered names, sorted for stable iteration order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the builder for name.
func Lookup(name string) (Builder, bool) {
	mu.RLock()
	defer mu.RUnlock()
	b, ok := builders[name]
	return b, ok
}

// Build constructs the named queue, erroring on unknown names (with the
// known names in the message, since the caller is usually a CLI flag).
func Build(name string, cfg Config) (Instance, error) {
	b, ok := Lookup(name)
	if !ok {
		return Instance{}, fmt.Errorf("registry: unknown queue %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// Shared wraps a single thread-safe queue as an Instance: every view is the
// queue itself.
func Shared(q queue.Queue[uint64]) Instance {
	view := func(int) queue.Queue[uint64] { return q }
	return Instance{Producer: view, Consumer: view}
}
