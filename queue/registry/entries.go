package registry

import (
	"sync"
	"time"

	"repro/basket"
	"repro/queue"
	"repro/queue/baskets"
	"repro/queue/ccq"
	"repro/queue/faaq"
	"repro/queue/lcrq"
	"repro/queue/msq"
	"repro/queue/sbq"
)

// DelayedCASDelay is the try_append delay of the SBQ-DCAS entry, the
// paper's tuned ~270ns (§6.1).
const DelayedCASDelay = 270 * time.Nanosecond

func init() {
	Register("MS-Queue", func(cfg Config) Instance {
		return Shared(msq.New[uint64](msq.WithRecorder(cfg.Recorder)))
	})
	Register("BQ-Original", func(cfg Config) Instance {
		return Shared(baskets.New[uint64](baskets.WithRecorder(cfg.Recorder)))
	})
	Register("FAA-Queue", func(cfg Config) Instance {
		return Shared(faaq.New[uint64](faaq.WithRecorder(cfg.Recorder)))
	})
	Register("LCRQ", func(cfg Config) Instance {
		return Shared(lcrq.New[uint64](lcrq.WithRecorder(cfg.Recorder)))
	})
	Register("CC-Queue", func(cfg Config) Instance {
		return Shared(ccq.New[uint64](ccq.WithRecorder(cfg.Recorder)))
	})
	Register("SBQ-CAS", sbqEntry(func(int, Config) sbq.Option {
		return sbq.WithAppendDelay(0)
	}))
	Register("SBQ-DCAS", sbqEntry(func(int, Config) sbq.Option {
		return sbq.WithAppendDelay(DelayedCASDelay)
	}))
	// SBQ-PB: the §8 partitioned-basket extension, extraction split across
	// producers/4 counters.
	Register("SBQ-PB", sbqEntry(func(producers int, cfg Config) sbq.Option {
		return sbq.WithBasket(func() basket.Basket[uint64] {
			return basket.New[uint64](
				basket.WithCapacity(producers),
				basket.WithPartitions(producers/4),
				basket.WithRecorder(cfg.Recorder),
			)
		})
	}))
}

// sbqEntry builds an SBQ instance: producer views are lazily-issued handles
// (one basket cell each), the consumer view wraps Queue.Dequeue. extra
// options receive the resolved producer count and the build Config.
func sbqEntry(extra ...func(producers int, cfg Config) sbq.Option) Builder {
	return func(cfg Config) Instance {
		producers := cfg.Producers
		if producers < 1 {
			producers = 1
		}
		opts := []sbq.Option{
			sbq.WithEnqueuers(producers),
			sbq.WithRecorder(cfg.Recorder),
		}
		for _, e := range extra {
			opts = append(opts, e(producers, cfg))
		}
		return sbqInstance(sbq.New[uint64](opts...))
	}
}

func sbqInstance(q *sbq.Queue[uint64]) Instance {
	var hmu sync.Mutex
	handles := map[int]queue.Queue[uint64]{}
	return Instance{
		Producer: func(i int) queue.Queue[uint64] {
			hmu.Lock()
			defer hmu.Unlock()
			if h, ok := handles[i]; ok {
				return h
			}
			h := q.NewHandle()
			handles[i] = h
			return h
		},
		Consumer: func(int) queue.Queue[uint64] { return sbqConsumer{q} },
	}
}

// sbqConsumer adapts the dequeue side of an SBQ to queue.Queue.
type sbqConsumer struct{ q *sbq.Queue[uint64] }

func (c sbqConsumer) Enqueue(uint64)          { panic("registry: SBQ consumer view cannot enqueue") }
func (c sbqConsumer) Dequeue() (uint64, bool) { return c.q.Dequeue() }
