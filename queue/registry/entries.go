package registry

import (
	"runtime"
	"sync"
	"time"

	"repro/basket"
	"repro/internal/obs"
	"repro/internal/txcas"
	"repro/queue"
	"repro/queue/baskets"
	"repro/queue/ccq"
	"repro/queue/faaq"
	"repro/queue/lcrq"
	"repro/queue/msq"
	"repro/queue/sbq"
	"repro/queue/sharded"
)

// DelayedCASDelay is the try_append delay of the SBQ-DCAS entry, the
// paper's tuned ~270ns (§6.1).
const DelayedCASDelay = 270 * time.Nanosecond

func init() {
	Register("MS-Queue", func(cfg Config) Instance {
		opts := []msq.Option{msq.WithRecorder(cfg.Recorder)}
		if cfg.Pooled {
			opts = append(opts, msq.WithNodePool())
		}
		return Batched(queue.AsBatch(msq.New[uint64](opts...)))
	})
	Register("BQ-Original", func(cfg Config) Instance {
		opts := []baskets.Option{baskets.WithRecorder(cfg.Recorder)}
		if cfg.Pooled {
			opts = append(opts, baskets.WithNodePool())
		}
		return Batched(queue.AsBatch(baskets.New[uint64](opts...)))
	})
	// faaq and sbq implement the batch surface natively: one FAA claims a
	// whole enqueue batch on faaq, one linking CAS appends a private chain
	// on sbq, so AsBatch is an identity upgrade for them.
	Register("FAA-Queue", func(cfg Config) Instance {
		opts := []faaq.Option{faaq.WithRecorder(cfg.Recorder)}
		if cfg.Pooled {
			opts = append(opts, faaq.WithNodePool())
		}
		return Batched(queue.AsBatch(faaq.New[uint64](opts...)))
	})
	Register("LCRQ", func(cfg Config) Instance {
		opts := []lcrq.Option{lcrq.WithRecorder(cfg.Recorder)}
		if cfg.Pooled {
			opts = append(opts, lcrq.WithNodePool())
		}
		return Batched(queue.AsBatch(lcrq.New[uint64](opts...)))
	})
	Register("CC-Queue", func(cfg Config) Instance {
		opts := []ccq.Option{ccq.WithRecorder(cfg.Recorder)}
		if cfg.Pooled {
			opts = append(opts, ccq.WithNodePool())
		}
		return Batched(queue.AsBatch(ccq.New[uint64](opts...)))
	})
	Register("SBQ-CAS", sbqEntry(func(int, Config) sbq.Option {
		return sbq.WithAppendDelay(0)
	}))
	Register("SBQ-DCAS", sbqEntry(func(int, Config) sbq.Option {
		return sbq.WithAppendDelay(DelayedCASDelay)
	}))
	// SBQ-TxCAS: the linking CAS runs through the native software-TxCAS
	// engine (repro/internal/txcas) — contenders watch the queue's
	// publication gate during the speculation window (Config.TxWindow;
	// default the paper's ~270ns §4.1 delay) and abandon doomed CASes as
	// soft aborts instead of issuing them.
	Register("SBQ-TxCAS", sbqEntry(func(_ int, cfg Config) sbq.Option {
		if cfg.TxWindow > 0 {
			return sbq.WithTxCAS(txcas.WithWindow(cfg.TxWindow))
		}
		return sbq.WithTxCAS()
	}))
	// SBQ-PB: the §8 partitioned-basket extension, extraction split across
	// producers/4 counters.
	Register("SBQ-PB", sbqEntry(func(producers int, cfg Config) sbq.Option {
		return sbq.WithBasket(func() basket.Basket[uint64] {
			return basket.New[uint64](
				basket.WithCapacity(producers),
				basket.WithPartitions(producers/4),
				basket.WithRecorder(cfg.Recorder),
			)
		})
	}))
	// The sharded front-ends relax total FIFO to per-producer FIFO (see
	// repro/queue/sharded): conformance suites must read the contract via
	// LookupEntry and skip the linearizability checker.
	RegisterEntry("Sharded-FAA", Entry{
		Ordering: PerProducerFIFO,
		Build: func(cfg Config) Instance {
			q := sharded.New[uint64](shardedOptions(cfg)...)
			return Views(q.Producer, q.Consumer)
		},
	})
	RegisterEntry("Sharded-SBQ", Entry{
		Ordering: PerProducerFIFO,
		Build: func(cfg Config) Instance {
			opts := append(shardedOptions(cfg),
				sharded.WithShardBuilder[uint64](func(shard, perShard int) sharded.Shard[uint64] {
					inst := sbqEntry()(Config{Producers: perShard, Recorder: shardRec(cfg, shard), Pooled: cfg.Pooled})
					return sharded.Shard[uint64]{
						Producer: inst.ProducerView,
						Consumer: inst.ConsumerView,
					}
				}))
			q := sharded.New[uint64](opts...)
			return Views(q.Producer, q.Consumer)
		},
	})
}

// shardedOptions translates a Config into sharded front-end options. The
// default shard count is GOMAXPROCS (the contention-minimizing production
// setting), matching the package's own default.
func shardedOptions(cfg Config) []sharded.Option[uint64] {
	shards := cfg.Shards
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	producers := cfg.Producers
	if producers < 1 {
		producers = 1
	}
	opts := []sharded.Option[uint64]{
		sharded.WithShards[uint64](shards),
		sharded.WithProducers[uint64](producers),
		sharded.WithRecorder[uint64](cfg.Recorder),
	}
	if cfg.Pooled || cfg.ShardRecorder != nil {
		// The default shard builder constructs GC-mode faaq shards wired to
		// the front-end recorder; pooled builds swap in WithNodePool shards,
		// and per-shard recorders route each shard's telemetry through
		// shardRec. Entries with their own WithShardBuilder (Sharded-SBQ)
		// append it after these options, overriding this builder.
		opts = append(opts, sharded.WithShardBuilder[uint64](func(shard, _ int) sharded.Shard[uint64] {
			fopts := []faaq.Option{faaq.WithRecorder(shardRec(cfg, shard))}
			if cfg.Pooled {
				fopts = append(fopts, faaq.WithNodePool())
			}
			q := queue.AsBatch(faaq.New[uint64](fopts...))
			shared := func(int) queue.BatchQueue[uint64] { return q }
			return sharded.Shard[uint64]{Producer: shared, Consumer: shared}
		}))
	}
	return opts
}

// shardRec resolves the recorder for one shard of a sharded entry.
func shardRec(cfg Config, shard int) obs.Recorder {
	if cfg.ShardRecorder != nil {
		return cfg.ShardRecorder(shard)
	}
	return cfg.Recorder
}

// sbqEntry builds an SBQ instance: producer views are lazily-issued handles
// (one basket cell each), the consumer view wraps the queue's dequeue side.
// extra options receive the resolved producer count and the build Config.
func sbqEntry(extra ...func(producers int, cfg Config) sbq.Option) Builder {
	return func(cfg Config) Instance {
		producers := cfg.Producers
		if producers < 1 {
			producers = 1
		}
		opts := []sbq.Option{
			sbq.WithEnqueuers(producers),
			sbq.WithRecorder(cfg.Recorder),
		}
		if cfg.Pooled {
			opts = append(opts, sbq.WithNodePool())
		}
		for _, e := range extra {
			opts = append(opts, e(producers, cfg))
		}
		return sbqInstance(sbq.New[uint64](opts...))
	}
}

func sbqInstance(q *sbq.Queue[uint64]) Instance {
	var hmu sync.Mutex
	handles := map[int]queue.BatchQueue[uint64]{}
	return Views(
		func(i int) queue.BatchQueue[uint64] {
			hmu.Lock()
			defer hmu.Unlock()
			if h, ok := handles[i]; ok {
				return h
			}
			h := q.NewHandle()
			handles[i] = h
			return h
		},
		func(int) queue.BatchQueue[uint64] { return sbqConsumer{q} },
	)
}

// sbqConsumer adapts the dequeue side of an SBQ to queue.BatchQueue: the
// dequeue half is native (including the one-advance-per-batch DequeueBatch),
// the enqueue half panics because SBQ enqueues need a Handle.
type sbqConsumer struct{ q *sbq.Queue[uint64] }

func (c sbqConsumer) Enqueue(uint64) { panic("registry: SBQ consumer view cannot enqueue") }
func (c sbqConsumer) EnqueueBatch([]uint64) {
	panic("registry: SBQ consumer view cannot enqueue")
}
func (c sbqConsumer) Dequeue() (uint64, bool)       { return c.q.Dequeue() }
func (c sbqConsumer) DequeueBatch(dst []uint64) int { return c.q.DequeueBatch(dst) }
