package queue

// This file is the batch extension of the queue API. The paper's basket
// *is* a batch — §5 groups concurrently failed CASs into one basket,
// amortizing the serialized FAA/CAS handoff over k elements — and the
// batch interfaces below let callers hand the queue that grouping
// explicitly instead of reconstructing it from contention.
//
// # Migration notes
//
// The batch surface is additive. Existing Queue[T] implementations and
// call sites keep working unchanged:
//
//   - New code that wants batch operations asks for a BatchQueue[T] and
//     upgrades any Queue[T] with AsBatch, which is the identity on queues
//     that already implement the batch methods natively (faaq, sbq
//     handles, the sharded front-end) and a loop otherwise.
//   - Implementations add batch support by implementing BatchEnqueuer[T]
//     and/or BatchDequeuer[T]; AsBatch picks up each capability
//     independently, so a queue can provide a native batch enqueue while
//     inheriting the looped dequeue (or vice versa).
//   - repro/queue/registry hands out batch-capable views from every
//     entry: Instance.ProducerView/ConsumerView replace the deprecated
//     Instance.Producer/Consumer plain views.

// BatchEnqueuer is the enqueue half of the batch capability: append all
// of vs in one operation, preserving slice order (vs[0] is dequeued
// before vs[1]). An empty batch is a no-op. Implementations must not
// retain or modify vs after returning.
type BatchEnqueuer[T any] interface {
	EnqueueBatch(vs []T)
}

// BatchDequeuer is the dequeue half of the batch capability: fill a
// prefix of dst in queue order and return how many elements were
// written. A return of 0 means the queue appeared empty (or dst was
// empty); a short count is not an emptiness guarantee — like a false
// Dequeue it only means no more elements were observed at that moment.
type BatchDequeuer[T any] interface {
	DequeueBatch(dst []T) int
}

// BatchQueue is a queue with first-class batch operations on both sides.
// Hot implementations amortize one contended atomic over the whole
// batch: one FAA claims k cells in faaq, one linking CAS appends a
// k-node chain in sbq.
type BatchQueue[T any] interface {
	Queue[T]
	BatchEnqueuer[T]
	BatchDequeuer[T]
}

// AsBatch upgrades q to a BatchQueue. Queues that already implement the
// full batch surface are returned as-is; otherwise the result delegates
// each batch method to the native implementation when q provides that
// capability and to an element-at-a-time loop when it does not. Single
// Enqueue/Dequeue always delegate to q directly, so an AsBatch-wrapped
// view can be used anywhere the plain view was.
//
// AsBatch panics on a nil queue: wrapping nil would defer the failure
// to the first operation, far from the construction-site bug.
func AsBatch[T any](q Queue[T]) BatchQueue[T] {
	if q == nil {
		panic("queue: AsBatch requires a non-nil queue")
	}
	if b, ok := q.(BatchQueue[T]); ok {
		return b
	}
	return batched[T]{q}
}

// batched adapts a Queue to BatchQueue, preferring native capabilities.
type batched[T any] struct {
	Queue[T]
}

// EnqueueBatch implements BatchEnqueuer.
//
//lf:hotpath
func (b batched[T]) EnqueueBatch(vs []T) {
	if be, ok := b.Queue.(BatchEnqueuer[T]); ok {
		be.EnqueueBatch(vs)
		return
	}
	for _, v := range vs {
		b.Enqueue(v)
	}
}

// DequeueBatch implements BatchDequeuer.
//
//lf:hotpath
func (b batched[T]) DequeueBatch(dst []T) int {
	if bd, ok := b.Queue.(BatchDequeuer[T]); ok {
		return bd.DequeueBatch(dst)
	}
	got := 0
	for got < len(dst) {
		v, ok := b.Dequeue()
		if !ok {
			break
		}
		dst[got] = v
		got++
	}
	return got
}
