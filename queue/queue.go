// Package queue defines the multi-producer/multi-consumer FIFO queue
// interface shared by this repository's native Go implementations:
//
//   - repro/queue/msq: the Michael-Scott lock-free queue
//   - repro/queue/baskets: the original baskets queue
//   - repro/queue/sbq: the scalable baskets queue (the paper's SBQ) with
//     pluggable baskets and append strategies
//   - repro/queue/faaq: an FAA-based infinite-array queue (the fast path
//     of Yang & Mellor-Crummey's wait-free queue)
//   - repro/queue/ccq: a CC-Synch combining queue
//
// These are the paper's algorithms on real Go atomics. Go exposes no
// hardware transactional memory, so the native SBQ ships with CAS-based
// try_append strategies (the paper's SBQ-CAS variant); the HTM-backed
// TxCAS lives in the simulated track (see DESIGN.md). Memory reclamation
// is delegated to the Go garbage collector, which provides the safety the
// paper's epoch scheme provides in C; the epoch scheme itself is
// implemented faithfully on the simulator.
//
// Beyond the single-element Queue interface, batch.go defines the
// optional batch capability (BatchEnqueuer, BatchDequeuer, BatchQueue)
// and the AsBatch adapter that upgrades any Queue to it; repro/queue/
// sharded composes several queues into a production front-end with
// per-producer shard affinity and work-stealing dequeue. See batch.go's
// migration notes.
package queue

// Queue is a linearizable MPMC FIFO queue.
//
// Implementations with per-thread state (notably SBQ) hand out one Queue
// view per goroutine; see each package's constructor.
type Queue[T any] interface {
	// Enqueue appends v to the queue.
	Enqueue(v T)
	// Dequeue removes and returns the oldest element, or ok=false if the
	// queue appeared empty.
	Dequeue() (v T, ok bool)
}
