package lcrq_test

import (
	"sync"
	"testing"

	"repro/queue"
	"repro/queue/lcrq"
	"repro/queue/queuetest"
)

func factory() queuetest.Factory {
	return queuetest.Shared(func(int) queue.Queue[uint64] { return lcrq.New[uint64]() })
}

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, factory())
}

func TestRingBoundaryCrossing(t *testing.T) {
	q := lcrq.New[int]()
	n := lcrq.RingSize*3 + 17
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("index %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestRefillCycles(t *testing.T) {
	q := lcrq.New[int]()
	for round := 0; round < 8; round++ {
		for i := 0; i < lcrq.RingSize/2; i++ {
			q.Enqueue(round*1000 + i)
		}
		for i := 0; i < lcrq.RingSize/2; i++ {
			v, ok := q.Dequeue()
			if !ok || v != round*1000+i {
				t.Fatalf("round %d index %d: got %d,%v", round, i, v, ok)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatalf("round %d: queue should be empty", round)
		}
	}
}

// Force ring closing by overfilling a single ring without dequeues.
func TestRingClosesAndSucceeds(t *testing.T) {
	q := lcrq.New[int]()
	n := lcrq.RingSize * 4
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d reported empty", i)
		}
		if v != i {
			t.Fatalf("index %d: got %d (FIFO broken across ring boundary)", i, v)
		}
	}
}

func TestConcurrentChurn(t *testing.T) {
	q := lcrq.New[uint64]()
	const writers = 8
	per := 5000
	if testing.Short() {
		per = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(uint64(w+1)<<32 | uint64(i+1))
			}
		}()
	}
	seen := make(map[uint64]bool, writers*per)
	var mu sync.Mutex
	got := 0
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if got >= writers*per {
					mu.Unlock()
					return
				}
				mu.Unlock()
				if v, ok := q.Dequeue(); ok {
					mu.Lock()
					if seen[v] {
						t.Errorf("duplicate %#x", v)
					}
					seen[v] = true
					got++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if got != writers*per {
		t.Fatalf("delivered %d of %d", got, writers*per)
	}
}
