package lcrq

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	ringSize int
	rec      obs.Recorder
	pooled   bool
}

// WithNodePool enables pooled mode: rings and slot records recycle
// through reclaim-backed freelists (per-P via sync.Pool) with
// epoch-deferred reuse, so steady-state operations allocate nothing and
// the queue stops leaning on the garbage collector under sustained
// load. The trade is one guard acquire/announce per operation.
func WithNodePool() Option {
	return func(o *options) { o.pooled = true }
}

// WithRingSize sets the number of cells per CRQ (default RingSize). Larger
// rings amortize ring turnover; smaller rings bound the memory a drained
// ring pins. n must be positive.
func WithRingSize(n int) Option {
	return func(o *options) { o.ringSize = n }
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts, per-slot CAS attempts and failures, and
// ring turnover retries. A nil or obs.Nop recorder disables telemetry at
// the cost of one nil check per event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}
