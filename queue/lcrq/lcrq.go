// Package lcrq implements an LCRQ-style queue after Morrison & Afek's
// "Fast Concurrent Queues for x86 Processors" (PPoPP 2013) — the FAA-only
// queue the paper's related-work section credits as the predecessor of
// its fastest baseline. A queue is a linked list of bounded Concurrent
// Ring Queues (CRQs); operations claim ring slots with fetch-and-add, and
// a ring that livelocks or fills is closed and succeeded by a fresh one.
//
// The original relies on a double-width CAS to update a cell's
// (safe, index, value) triple atomically. Go has no DWCAS, so each cell
// holds an atomically replaced slot record instead (one small allocation
// per update, absorbed by the GC) — the standard translation of
// tagged-word algorithms into Go used throughout this repository.
package lcrq

import (
	"sync/atomic"

	"repro/internal/obs"
)

// RingSize is the default number of cells per CRQ (see WithRingSize).
const RingSize = 256

// slot is a cell's immutable state record.
type slot[T any] struct {
	idx  uint64
	val  *T
	safe bool
}

type cell[T any] struct {
	s atomic.Pointer[slot[T]]
	_ [40]byte
}

const closedBit = uint64(1) << 63

// crq is one bounded ring.
type crq[T any] struct {
	//lf:contended FAAed by every dequeuer on this ring
	head atomic.Uint64
	_    [56]byte
	//lf:contended FAAed by every enqueuer on this ring
	tail  atomic.Uint64 // high bit: closed
	_     [56]byte
	next  atomic.Pointer[crq[T]]
	size  uint64
	rec   obs.Recorder
	cells []cell[T]
}

func newCRQ[T any](startIdx, size uint64, rec obs.Recorder) *crq[T] {
	q := &crq[T]{size: size, rec: rec, cells: make([]cell[T], size)}
	q.head.Store(startIdx)
	q.tail.Store(startIdx)
	for i := range q.cells {
		s := &slot[T]{idx: startIdx + uint64(i), safe: true}
		q.cells[i].s.Store(s)
	}
	return q
}

// enqueue attempts to place v; it reports false if the ring closed.
func (q *crq[T]) enqueue(v *T) bool {
	for tries := uint64(0); ; tries++ {
		t := q.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		c := &q.cells[t%q.size]
		s := c.s.Load()
		if s.val == nil && s.idx <= t && (s.safe || q.head.Load() <= t) {
			if r := q.rec; r != nil {
				r.Inc(obs.CASAttempts)
			}
			if c.s.CompareAndSwap(s, &slot[T]{idx: t, val: v, safe: true}) {
				return true
			}
			if r := q.rec; r != nil {
				r.Inc(obs.CASFailures)
			}
		}
		// Starvation or a full ring: close and let the LCRQ append a
		// fresh ring.
		if t-q.head.Load() >= q.size || tries > 4*q.size {
			q.close()
			return false
		}
	}
}

func (q *crq[T]) close() {
	for {
		t := q.tail.Load()
		if t&closedBit != 0 {
			return
		}
		//lint:ignore casloop monotonic flag-set: a failed CAS means tail moved or the bit is already set, both of which converge
		if q.tail.CompareAndSwap(t, t|closedBit) {
			return
		}
	}
}

// dequeue attempts to take the oldest element; ok=false means the ring is
// (transiently) empty.
func (q *crq[T]) dequeue() (*T, bool) {
	for {
		h := q.head.Add(1) - 1
		c := &q.cells[h%q.size]
		for {
			s := c.s.Load()
			if s.val != nil && s.idx == h {
				// Take the value; re-arm the cell for index h+size.
				if r := q.rec; r != nil {
					r.Inc(obs.CASAttempts)
				}
				if c.s.CompareAndSwap(s, &slot[T]{idx: h + q.size, safe: s.safe}) {
					return s.val, true
				}
				if r := q.rec; r != nil {
					r.Inc(obs.CASFailures)
				}
				continue
			}
			// The cell's enqueuer has not arrived (or belongs to an older
			// epoch): mark the cell unsafe for index h so a late enqueuer
			// cannot publish into a slot we have logically passed.
			if s.idx <= h+q.size {
				var next *slot[T]
				if s.val == nil {
					next = &slot[T]{idx: h + q.size, safe: s.safe}
				} else {
					next = &slot[T]{idx: s.idx, val: s.val, safe: false}
				}
				if !c.s.CompareAndSwap(s, next) {
					continue
				}
			}
			break
		}
		// Empty check: if the ring holds nothing ahead of h, give up.
		if tail := q.tail.Load() &^ closedBit; tail <= h+1 {
			q.fixState()
			return nil, false
		}
	}
}

// fixState repairs head > tail after an empty dequeue burst, as in the
// original algorithm, so later enqueues are not spuriously starved.
func (q *crq[T]) fixState() {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if t&closedBit != 0 || t >= h {
			return
		}
		//lint:ignore casloop monotonic repair: a failed CAS means another thread advanced tail, which is the goal
		if q.tail.CompareAndSwap(t, h) {
			return
		}
	}
}

// Queue is an LCRQ: a list of CRQs with head and tail ring pointers.
type Queue[T any] struct {
	//lf:contended read by every dequeuer, swung when a ring drains
	head atomic.Pointer[crq[T]]
	_    [56]byte
	//lf:contended read by every enqueuer, swung when a ring closes
	tail atomic.Pointer[crq[T]]
	_    [56]byte
	size uint64
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	o := options{ringSize: RingSize}
	for _, opt := range opts {
		opt(&o)
	}
	if o.ringSize <= 0 {
		panic("lcrq: ring size must be positive")
	}
	q := &Queue[T]{size: uint64(o.ringSize), rec: o.rec, ev: obs.Events(o.rec)}
	r := newCRQ[T](0, q.size, q.rec)
	q.head.Store(r)
	q.tail.Store(r)
	return q
}

// Enqueue appends v.
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		r := q.tail.Load()
		if next := r.next.Load(); next != nil {
			q.tail.CompareAndSwap(r, next)
			continue
		}
		if r.enqueue(&v) {
			q.event(obs.EvEnqEnd, 1)
			return
		}
		// Ring closed: append a successor and retry there.
		nr := newCRQ[T](0, q.size, q.rec)
		nr.enqueue(&v)
		q.event(obs.EvCASAttempt, 0)
		if r.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(r, nr)
			q.event(obs.EvEnqEnd, 1)
			return
		}
		q.event(obs.EvCASFailure, 0)
	}
}

// Dequeue removes the oldest element.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		r := q.head.Load()
		if v, ok := r.dequeue(); ok {
			if rec := q.rec; rec != nil {
				rec.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return *v, true
		}
		// Ring drained. If it has no successor the queue is empty;
		// otherwise retire it and move on.
		next := r.next.Load()
		if next == nil {
			if rec := q.rec; rec != nil {
				rec.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		// Re-check after observing next: an enqueue may have slipped in.
		if v, ok := r.dequeue(); ok {
			if rec := q.rec; rec != nil {
				rec.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return *v, true
		}
		q.head.CompareAndSwap(r, next)
	}
}
