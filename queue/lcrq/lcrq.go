// Package lcrq implements an LCRQ-style queue after Morrison & Afek's
// "Fast Concurrent Queues for x86 Processors" (PPoPP 2013) — the FAA-only
// queue the paper's related-work section credits as the predecessor of
// its fastest baseline. A queue is a linked list of bounded Concurrent
// Ring Queues (CRQs); operations claim ring slots with fetch-and-add, and
// a ring that livelocks or fills is closed and succeeded by a fresh one.
//
// The original relies on a double-width CAS to update a cell's
// (safe, index, value) triple atomically. Go has no DWCAS, so each cell
// holds an atomically replaced slot record instead (one small allocation
// per update, absorbed by the GC) — the standard translation of
// tagged-word algorithms into Go used throughout this repository.
package lcrq

import "sync/atomic"

// RingSize is the number of cells per CRQ.
const RingSize = 256

// slot is a cell's immutable state record.
type slot[T any] struct {
	idx  uint64
	val  *T
	safe bool
}

type cell[T any] struct {
	s atomic.Pointer[slot[T]]
	_ [40]byte
}

const closedBit = uint64(1) << 63

// crq is one bounded ring.
type crq[T any] struct {
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64 // high bit: closed
	_     [56]byte
	next  atomic.Pointer[crq[T]]
	cells [RingSize]cell[T]
}

func newCRQ[T any](startIdx uint64) *crq[T] {
	q := &crq[T]{}
	q.head.Store(startIdx)
	q.tail.Store(startIdx)
	for i := range q.cells {
		s := &slot[T]{idx: startIdx + uint64(i), safe: true}
		q.cells[i].s.Store(s)
	}
	return q
}

// enqueue attempts to place v; it reports false if the ring closed.
func (q *crq[T]) enqueue(v *T) bool {
	for tries := 0; ; tries++ {
		t := q.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		c := &q.cells[t%RingSize]
		s := c.s.Load()
		if s.val == nil && s.idx <= t && (s.safe || q.head.Load() <= t) {
			if c.s.CompareAndSwap(s, &slot[T]{idx: t, val: v, safe: true}) {
				return true
			}
		}
		// Starvation or a full ring: close and let the LCRQ append a
		// fresh ring.
		if t-q.head.Load() >= RingSize || tries > 4*RingSize {
			q.close()
			return false
		}
	}
}

func (q *crq[T]) close() {
	for {
		t := q.tail.Load()
		if t&closedBit != 0 {
			return
		}
		if q.tail.CompareAndSwap(t, t|closedBit) {
			return
		}
	}
}

// dequeue attempts to take the oldest element; ok=false means the ring is
// (transiently) empty.
func (q *crq[T]) dequeue() (*T, bool) {
	for {
		h := q.head.Add(1) - 1
		c := &q.cells[h%RingSize]
		for {
			s := c.s.Load()
			if s.val != nil && s.idx == h {
				// Take the value; re-arm the cell for index h+RingSize.
				if c.s.CompareAndSwap(s, &slot[T]{idx: h + RingSize, safe: s.safe}) {
					return s.val, true
				}
				continue
			}
			// The cell's enqueuer has not arrived (or belongs to an older
			// epoch): mark the cell unsafe for index h so a late enqueuer
			// cannot publish into a slot we have logically passed.
			if s.idx <= h+RingSize {
				var next *slot[T]
				if s.val == nil {
					next = &slot[T]{idx: h + RingSize, safe: s.safe}
				} else {
					next = &slot[T]{idx: s.idx, val: s.val, safe: false}
				}
				if !c.s.CompareAndSwap(s, next) {
					continue
				}
			}
			break
		}
		// Empty check: if the ring holds nothing ahead of h, give up.
		if tail := q.tail.Load() &^ closedBit; tail <= h+1 {
			q.fixState()
			return nil, false
		}
	}
}

// fixState repairs head > tail after an empty dequeue burst, as in the
// original algorithm, so later enqueues are not spuriously starved.
func (q *crq[T]) fixState() {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if t&closedBit != 0 || t >= h {
			return
		}
		if q.tail.CompareAndSwap(t, h) {
			return
		}
	}
}

// Queue is an LCRQ: a list of CRQs with head and tail ring pointers.
type Queue[T any] struct {
	head atomic.Pointer[crq[T]]
	tail atomic.Pointer[crq[T]]
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	r := newCRQ[T](0)
	q.head.Store(r)
	q.tail.Store(r)
	return q
}

// Enqueue appends v.
func (q *Queue[T]) Enqueue(v T) {
	for {
		r := q.tail.Load()
		if next := r.next.Load(); next != nil {
			q.tail.CompareAndSwap(r, next)
			continue
		}
		if r.enqueue(&v) {
			return
		}
		// Ring closed: append a successor and retry there.
		nr := newCRQ[T](0)
		nr.enqueue(&v)
		if r.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(r, nr)
			return
		}
	}
}

// Dequeue removes the oldest element.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	for {
		r := q.head.Load()
		if v, ok := r.dequeue(); ok {
			return *v, true
		}
		// Ring drained. If it has no successor the queue is empty;
		// otherwise retire it and move on.
		next := r.next.Load()
		if next == nil {
			return zero, false
		}
		// Re-check after observing next: an enqueue may have slipped in.
		if v, ok := r.dequeue(); ok {
			return *v, true
		}
		q.head.CompareAndSwap(r, next)
	}
}
