// Package lcrq implements an LCRQ-style queue after Morrison & Afek's
// "Fast Concurrent Queues for x86 Processors" (PPoPP 2013) — the FAA-only
// queue the paper's related-work section credits as the predecessor of
// its fastest baseline. A queue is a linked list of bounded Concurrent
// Ring Queues (CRQs); operations claim ring slots with fetch-and-add, and
// a ring that livelocks or fills is closed and succeeded by a fresh one.
//
// The original relies on a double-width CAS to update a cell's
// (safe, index, value) triple atomically. Go has no DWCAS, so each cell
// holds an atomically replaced slot record instead — the standard
// translation of tagged-word algorithms into Go used throughout this
// repository. Slot records hold their element BY VALUE, so Enqueue never
// forces its argument to escape; in GC mode replaced records are one
// small garbage-collected allocation per update, and in pooled mode
// (WithNodePool) records and rings both recycle through reclaim pools.
//
// Pooled-mode reclamation uses the epoch's clock discipline
// (reclaim.Epoch.Now) rather than per-item structural stamps: an
// operation announces the clock's current position once, before loading
// any shared pointer, and every ring and record it can subsequently
// reach is protected — a pointer loaded after the announce refers to a
// then-live item, and items are stamped with NextStamp() AT RETIRE
// TIME, strictly after they become unreachable (a replaced record after
// its CAS, a drained ring after the head pointer moves past it and the
// tail pointer is helped off it), so their stamps exceed the
// announcement. Structural stamps would deadlock here: a record retired
// under its ring's fixed generation can never satisfy "stamp below
// every announcement" while an operation on that same ring announces
// that generation, so nothing would ever recycle.
package lcrq

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/reclaim"
)

// RingSize is the default number of cells per CRQ (see WithRingSize).
const RingSize = 256

// slot is a cell's immutable state record: fields are written only
// before the CAS that publishes the record and never after.
type slot[T any] struct {
	idx  uint64
	val  T
	has  bool
	safe bool
}

type cell[T any] struct {
	s atomic.Pointer[slot[T]]
	_ [40]byte
}

const closedBit = uint64(1) << 63

// pools is the shared reclamation state of pooled mode; nil otherwise.
type pools[T any] struct {
	epoch *reclaim.Epoch
	rings *reclaim.Pool[crq[T]]
	slots *reclaim.Pool[slot[T]]
}

// crq is one bounded ring.
type crq[T any] struct {
	//lf:contended FAAed by every dequeuer on this ring
	head atomic.Uint64
	_    [56]byte
	//lf:contended FAAed by every enqueuer on this ring
	tail  atomic.Uint64 // high bit: closed
	_     [56]byte
	next  atomic.Pointer[crq[T]]
	size  uint64
	rec   obs.Recorder
	pl    *pools[T] // nil in GC mode
	cells []cell[T]
}

// newCRQ allocates a ring with all cells armed for their first epoch.
// Amortized over size operations in GC mode; the pool-miss constructor
// in pooled mode.
//
//lf:coldpath
func newCRQ[T any](size uint64, rec obs.Recorder, pl *pools[T]) *crq[T] {
	q := &crq[T]{size: size, rec: rec, pl: pl, cells: make([]cell[T], size)}
	for i := range q.cells {
		s := &slot[T]{idx: uint64(i), safe: true}
		q.cells[i].s.Store(s)
	}
	return q
}

// rearm resets a ring (and, in place, the records still installed in its
// cells — unreachable along with the ring) for reuse from index 0. Only
// called on rings no guarded operation can still reach.
func (q *crq[T]) rearm() {
	q.head.Store(0)
	q.tail.Store(0)
	q.next.Store(nil)
	for i := range q.cells {
		s := q.cells[i].s.Load()
		*s = slot[T]{idx: uint64(i), safe: true}
	}
}

// getSlot returns a zeroed record for the next CAS attempt.
func (q *crq[T]) getSlot() *slot[T] {
	if pl := q.pl; pl != nil {
		return pl.slots.Get()
	}
	//lint:ignore allocfree GC mode allocates one record per slot update by design; WithNodePool is the zero-alloc configuration the gates enforce
	return &slot[T]{}
}

// putSlot recycles a record whose publishing CAS lost (never visible).
func (q *crq[T]) putSlot(s *slot[T]) {
	if pl := q.pl; pl != nil {
		pl.slots.Put(s)
	}
}

// retireSlot defers a record the caller's CAS just replaced. The stamp
// is drawn from the epoch clock at retire time — after the CAS made the
// record unreachable — so it exceeds the announcement of every
// operation that could still hold a pointer to it (the clock
// discipline; see the package comment).
func (q *crq[T]) retireSlot(s *slot[T]) {
	if pl := q.pl; pl != nil {
		pl.slots.Retire(pl.epoch.NextStamp(), s)
	}
}

// enqueue attempts to place v; it reports false if the ring closed.
func (q *crq[T]) enqueue(v T) bool {
	for tries := uint64(0); ; tries++ {
		t := q.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		c := &q.cells[t%q.size]
		s := c.s.Load()
		if !s.has && s.idx <= t && (s.safe || q.head.Load() <= t) {
			if r := q.rec; r != nil {
				r.Inc(obs.CASAttempts)
			}
			ns := q.getSlot()
			ns.idx, ns.val, ns.has, ns.safe = t, v, true, true
			if c.s.CompareAndSwap(s, ns) {
				q.retireSlot(s)
				return true
			}
			q.putSlot(ns)
			if r := q.rec; r != nil {
				r.Inc(obs.CASFailures)
			}
		}
		// Starvation or a full ring: close and let the LCRQ append a
		// fresh ring.
		if t-q.head.Load() >= q.size || tries > 4*q.size {
			q.close()
			return false
		}
	}
}

func (q *crq[T]) close() {
	for {
		t := q.tail.Load()
		if t&closedBit != 0 {
			return
		}
		//lint:ignore casloop monotonic flag-set: a failed CAS means tail moved or the bit is already set, both of which converge
		if q.tail.CompareAndSwap(t, t|closedBit) {
			return
		}
	}
}

// dequeue attempts to take the oldest element; ok=false means the ring is
// (transiently) empty.
func (q *crq[T]) dequeue() (T, bool) {
	var zero T
	for {
		h := q.head.Add(1) - 1
		c := &q.cells[h%q.size]
		for {
			s := c.s.Load()
			if s.has && s.idx == h {
				// Take the value; re-arm the cell for index h+size.
				if r := q.rec; r != nil {
					r.Inc(obs.CASAttempts)
				}
				ns := q.getSlot()
				ns.idx, ns.safe = h+q.size, s.safe
				if c.s.CompareAndSwap(s, ns) {
					v := s.val // copy out; the caller's guard pins s
					q.retireSlot(s)
					return v, true
				}
				q.putSlot(ns)
				if r := q.rec; r != nil {
					r.Inc(obs.CASFailures)
				}
				continue
			}
			// The cell's enqueuer has not arrived (or belongs to an older
			// epoch): mark the cell unsafe for index h so a late enqueuer
			// cannot publish into a slot we have logically passed.
			if s.idx <= h+q.size {
				ns := q.getSlot()
				if !s.has {
					ns.idx, ns.safe = h+q.size, s.safe
				} else {
					ns.idx, ns.val, ns.has, ns.safe = s.idx, s.val, true, false
				}
				if !c.s.CompareAndSwap(s, ns) {
					q.putSlot(ns)
					continue
				}
				q.retireSlot(s)
			}
			break
		}
		// Empty check: if the ring holds nothing ahead of h, give up.
		if tail := q.tail.Load() &^ closedBit; tail <= h+1 {
			q.fixState()
			return zero, false
		}
	}
}

// fixState repairs head > tail after an empty dequeue burst, as in the
// original algorithm, so later enqueues are not spuriously starved.
func (q *crq[T]) fixState() {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if t&closedBit != 0 || t >= h {
			return
		}
		//lint:ignore casloop monotonic repair: a failed CAS means another thread advanced tail, which is the goal
		if q.tail.CompareAndSwap(t, h) {
			return
		}
	}
}

// Queue is an LCRQ: a list of CRQs with head and tail ring pointers.
type Queue[T any] struct {
	//lf:contended read by every dequeuer, swung when a ring drains
	head atomic.Pointer[crq[T]]
	_    [56]byte
	//lf:contended read by every enqueuer, swung when a ring closes
	tail atomic.Pointer[crq[T]]
	_    [56]byte
	size uint64
	rec  obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder
	pl *pools[T] // non-nil in pooled mode (WithNodePool)
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	o := options{ringSize: RingSize}
	for _, opt := range opts {
		opt(&o)
	}
	if o.ringSize <= 0 {
		panic("lcrq: ring size must be positive")
	}
	q := &Queue[T]{size: uint64(o.ringSize), rec: o.rec, ev: obs.Events(o.rec)}
	if o.pooled {
		pl := &pools[T]{epoch: reclaim.NewEpoch()}
		pl.rings = reclaim.NewPool(pl.epoch, func() *crq[T] { return newCRQ(q.size, q.rec, pl) }, func(r *crq[T]) { r.rearm() })
		pl.slots = reclaim.NewPool(pl.epoch, func() *slot[T] { return &slot[T]{} }, func(s *slot[T]) { *s = slot[T]{} })
		q.pl = pl
	}
	r := q.getRing()
	q.head.Store(r)
	q.tail.Store(r)
	return q
}

// getRing returns a fresh or recycled ring armed from index 0 (the
// pool's reset hook rearms recycled rings before they are handed out).
func (q *Queue[T]) getRing() *crq[T] {
	if pl := q.pl; pl != nil {
		return pl.rings.Get()
	}
	//lint:ignore allocfree GC mode allocates one ring per turnover (amortized over RingSize operations) by design; WithNodePool is the zero-alloc configuration the gates enforce
	return newCRQ[T](q.size, q.rec, nil)
}

// acquireGuard returns an announced guard in pooled mode (nil
// otherwise). Announcing the epoch clock's current position BEFORE any
// shared pointer is loaded protects every ring and record the operation
// can reach — retire-time stamps are strictly larger (see the package
// comment) — so one announcement covers the whole operation, with no
// per-ring re-announce or verify loop.
func (q *Queue[T]) acquireGuard() *reclaim.Guard {
	pl := q.pl
	if pl == nil {
		return nil
	}
	g := pl.epoch.Acquire()
	g.Protect(pl.epoch.Now())
	return g
}

// Enqueue appends v.
//
//lf:hotpath
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	g := q.acquireGuard()
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		r := q.tail.Load()
		if next := r.next.Load(); next != nil {
			q.tail.CompareAndSwap(r, next)
			continue
		}
		if r.enqueue(v) {
			if g != nil {
				q.pl.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, 1)
			return
		}
		// Ring closed: append a successor and retry there.
		nr := q.getRing()
		nr.enqueue(v)
		q.event(obs.EvCASAttempt, 0)
		if r.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(r, nr)
			if g != nil {
				q.pl.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, 1)
			return
		}
		if pl := q.pl; pl != nil {
			pl.rings.Put(nr) // lost the append race; nr was never published
		}
		q.event(obs.EvCASFailure, 0)
	}
}

// Dequeue removes the oldest element.
//
//lf:hotpath
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	g := q.acquireGuard()
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		r := q.head.Load()
		if v, ok := r.dequeue(); ok {
			if g != nil {
				q.pl.epoch.Release(g)
			}
			if rec := q.rec; rec != nil {
				rec.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		// Ring drained. If it has no successor the queue is empty;
		// otherwise retire it and move on.
		next := r.next.Load()
		if next == nil {
			if g != nil {
				q.pl.epoch.Release(g)
			}
			if rec := q.rec; rec != nil {
				rec.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		// Re-check after observing next: an enqueue may have slipped in.
		if v, ok := r.dequeue(); ok {
			if g != nil {
				q.pl.epoch.Release(g)
			}
			if rec := q.rec; rec != nil {
				rec.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		if q.head.CompareAndSwap(r, next) {
			if pl := q.pl; pl != nil {
				// Help the tail pointer past r before retiring it, so
				// q.tail never points at a retired ring — the retire-time
				// stamp below must postdate r's unreachability.
				if q.tail.Load() == r {
					q.tail.CompareAndSwap(r, next)
				}
				pl.rings.Retire(pl.epoch.NextStamp(), r)
			}
		}
	}
}
