// Package faaq implements an FAA-based "infinite array" MPMC queue:
// enqueuers and dequeuers each claim a cell with one fetch-and-add on a
// global counter and resolve enqueue/dequeue races per cell with an
// atomic state protocol.
//
// This is the fast path of Yang & Mellor-Crummey's wait-free queue (the
// paper's fastest baseline, WF-Queue), without the wait-free helping slow
// path: the paper notes operations make progress in practice, so the
// contended-FAA cost profile — the property SBQ is compared against — is
// the fast path's. Progress here is lock-free rather than wait-free; see
// DESIGN.md for the substitution rationale.
//
// WithNodePool switches the queue to pooled-segment mode: segments
// recycle through a reclaim.Pool with epoch guards pinning each
// operation's cache snapshot (segment ids are the stamps — every segment
// reachable forward of the snapshot has a larger id). A segment is
// retired by whichever cache advance passes it last, so neither side's
// in-flight walks nor the other cache's standing pointer can reach a
// recycled segment. The steady state then allocates nothing per
// operation.
package faaq

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/reclaim"
)

// SegSize is the number of cells per segment.
const SegSize = 1024

// Cell states.
const (
	cellEmpty uint32 = iota // no one has arrived
	cellFull                // enqueuer published a value
	cellTaken               // dequeuer claimed (possibly poisoning) the cell
)

type cell[T any] struct {
	state atomic.Uint32
	v     T
}

type segment[T any] struct {
	// id is the index of cells[0] divided by SegSize; it doubles as the
	// reclamation stamp (ids grow along the list, so protecting a
	// snapshot's id protects everything reachable forward of it). Atomic
	// because a stale reader may race a pooled segment's re-stamping;
	// see reclaim's protocol note.
	id   atomic.Uint64
	next atomic.Pointer[segment[T]]
	// retired arbitrates the two cache advances (enqueue- and
	// dequeue-side) that may concurrently discover the segment is fully
	// passed; only the CAS winner retires it.
	retired atomic.Bool
	cells   [SegSize]cell[T]
}

// Queue is an FAA-based queue. Old segments are reclaimed by the garbage
// collector once head traffic moves past them, or recycled through a
// freelist in pooled-segment mode (WithNodePool).
type Queue[T any] struct {
	//lf:contended FAAed by every enqueuer
	enqIdx atomic.Uint64
	_      [56]byte
	//lf:contended FAAed by every dequeuer
	deqIdx atomic.Uint64
	_      [56]byte
	// enqSeg/deqSeg cache the segments serving the current indices; they
	// lag safely because segments are found by walking next pointers.
	//lf:contended read by every enqueuer, CASed forward at segment boundaries
	enqSeg atomic.Pointer[segment[T]]
	_      [56]byte
	//lf:contended read by every dequeuer, CASed forward at segment boundaries
	deqSeg atomic.Pointer[segment[T]]
	_      [56]byte
	rec    obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder

	// epoch/pool are non-nil in pooled-segment mode (WithNodePool).
	epoch *reclaim.Epoch
	pool  *reclaim.Pool[segment[T]]
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	if o.pooled {
		q.epoch = reclaim.NewEpoch()
		q.pool = reclaim.NewPool(q.epoch, func() *segment[T] { return &segment[T]{} }, func(s *segment[T]) {
			s.next.Store(nil)
			s.retired.Store(false)
			s.cells = [SegSize]cell[T]{} // drop element references; re-arm states
		})
	}
	s := &segment[T]{}
	q.enqSeg.Store(s)
	q.deqSeg.Store(s)
	return q
}

// getSegment returns a fresh or recycled segment stamped with id, next
// nil and all cells empty.
func (q *Queue[T]) getSegment(id uint64) *segment[T] {
	var s *segment[T]
	if p := q.pool; p != nil {
		s = p.Get()
	} else {
		//lint:ignore allocfree GC mode allocates one segment per SegSize enqueues by design; WithNodePool is the zero-alloc configuration the gates enforce
		s = &segment[T]{}
	}
	s.id.Store(id)
	return s
}

// snapshot loads the current cache segment and, in pooled mode, pins it
// (and everything reachable forward of it) with the announce-and-verify
// protocol before the caller claims an index from the cache's counter.
func (q *Queue[T]) snapshot(cache *atomic.Pointer[segment[T]], g *reclaim.Guard) *segment[T] {
	seg := cache.Load()
	if g == nil {
		return seg
	}
	for {
		g.Protect(seg.id.Load())
		again := cache.Load()
		if again == seg {
			return seg
		}
		seg = again
	}
}

// findCell returns the cell with global index idx, walking (and extending)
// the segment list from start. start must have been loaded from the cache
// BEFORE idx was claimed: the cache trails its counter, so a pre-claim
// snapshot can never overshoot idx's segment; the snapshot keeps older
// segments alive against the GC (or, pooled, against reuse via the
// caller's guard) while we walk.
func (q *Queue[T]) findCell(cache *atomic.Pointer[segment[T]], start *segment[T], idx uint64) *cell[T] {
	c, _ := q.findCellSeg(cache, start, idx)
	return c
}

// findCellSeg is findCell, also returning idx's segment so batch loops
// over ascending indices can resume the walk where the last one ended.
func (q *Queue[T]) findCellSeg(cache *atomic.Pointer[segment[T]], start *segment[T], idx uint64) (*cell[T], *segment[T]) {
	seg := start
	for seg.id.Load() != idx/SegSize {
		next := seg.next.Load()
		if next == nil {
			n := q.getSegment(seg.id.Load() + 1)
			//lint:ignore casloop helping loop: a failed extend-CAS means another thread appended the segment we need
			if seg.next.CompareAndSwap(nil, n) {
				next = n
			} else {
				if p := q.pool; p != nil {
					p.Put(n) // lost the extend race; n was never published
				}
				next = seg.next.Load()
			}
		}
		seg = next
	}
	// Advance the cache monotonically; it stays behind the counter
	// because idx was claimed from it. The winning CAS owns retirement
	// of the segments it jumped over.
	for {
		cur := cache.Load()
		if cur.id.Load() >= seg.id.Load() {
			break
		}
		//lint:ignore casloop monotonic cache advance: a failed CAS means the cache moved forward, shrinking the remaining gap
		if cache.CompareAndSwap(cur, seg) {
			q.retireRange(cache, cur, seg)
			break
		}
	}
	return &seg.cells[idx%SegSize], seg
}

// retireRange retires the segments in [from, to) that the OTHER side's
// cache has also passed; the rest are left for that side's next advance
// (each side passes a segment exactly once, and the retired flag
// arbitrates the one race where both pass it simultaneously). Called by
// the winner of the cache-advance CAS from from to to, whose guard still
// pins the range.
func (q *Queue[T]) retireRange(cache *atomic.Pointer[segment[T]], from, to *segment[T]) {
	if q.pool == nil {
		return
	}
	other := &q.deqSeg
	if cache == &q.deqSeg {
		other = &q.enqSeg
	}
	// Verify the limit read like an announcement: a cache never points at
	// a retired segment, but between the pointer load and the id load the
	// segment could be retired, freed and re-stamped higher, which would
	// inflate the limit and retire segments the other side still needs.
	// The re-load bounds limit by an id the cache really held (an ABA
	// re-install can only make the read conservative, never inflated).
	var limit uint64
	for {
		o := other.Load()
		limit = o.id.Load()
		if other.Load() == o {
			break
		}
	}
	for s := from; s != to; {
		next := s.next.Load()
		//lint:ignore casloop one-shot arbitration CAS per segment (never retried) inside a walk bounded by the jumped-over range
		if id := s.id.Load(); id < limit && s.retired.CompareAndSwap(false, true) {
			q.pool.Retire(id, s)
		}
		s = next
	}
}

// Enqueue claims a cell with one FAA and publishes v; if a fast dequeuer
// already poisoned the cell, it claims the next one.
//
//lf:hotpath
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		seg := q.snapshot(&q.enqSeg, g) // snapshot before the claim; see findCell
		idx := q.enqIdx.Add(1) - 1
		c := q.findCell(&q.enqSeg, seg, idx)
		c.v = v
		q.event(obs.EvCASAttempt, idx)
		if c.state.CompareAndSwap(cellEmpty, cellFull) {
			if g != nil {
				q.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, 1)
			return
		}
		q.event(obs.EvCASFailure, idx)
		// Poisoned by an overtaking dequeuer; retry at a fresh index.
	}
}

// Dequeue claims a cell with one FAA and takes its value, poisoning cells
// whose enqueuer has not arrived.
//
//lf:hotpath
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		if q.deqIdx.Load() >= q.enqIdx.Load() {
			if g != nil {
				q.epoch.Release(g)
			}
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		seg := q.snapshot(&q.deqSeg, g) // snapshot before the claim; see findCell
		idx := q.deqIdx.Add(1) - 1
		c := q.findCell(&q.deqSeg, seg, idx)
		if c.state.Swap(cellTaken) == cellFull {
			v := c.v // copy out while the guard still pins the segment
			if g != nil {
				q.epoch.Release(g)
			}
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return v, true
		}
		// The enqueuer of this cell has not arrived; it will see the
		// poison and move on. Claim the next cell.
	}
}

// EnqueueBatch publishes vs in order, claiming len(vs) consecutive cells
// with ONE fetch-and-add — the batch analogue of the paper's basket:
// where §5 amortizes the serialized handoff over the k operations that
// happened to collide, the batch amortizes it over the k elements the
// caller already grouped. Cells poisoned by overtaking dequeuers are
// rare; when one is hit, the not-yet-published suffix of the batch moves
// wholesale to a fresh contiguous claim so intra-batch FIFO order is
// preserved (already-claimed later cells are simply abandoned to the
// dequeuers' poison path, like a single Enqueue's failed cell).
//
//lf:hotpath
func (q *Queue[T]) EnqueueBatch(vs []T) {
	if len(vs) == 0 {
		return
	}
	if r := q.rec; r != nil {
		r.Add(obs.EnqOps, uint64(len(vs)))
		r.Inc(obs.EnqBatches)
	}
	q.event(obs.EvEnqStart, uint64(len(vs)))
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	rest := vs
	for {
		seg := q.snapshot(&q.enqSeg, g) // snapshot before the claim; see findCell
		n := uint64(len(rest))
		base := q.enqIdx.Add(n) - n
		publishedAll := true
		for j := uint64(0); j < n; j++ {
			var c *cell[T]
			c, seg = q.findCellSeg(&q.enqSeg, seg, base+j)
			c.v = rest[j]
			q.event(obs.EvCASAttempt, base+j)
			if !c.state.CompareAndSwap(cellEmpty, cellFull) {
				// A dequeuer overtook this cell. Re-claim the whole
				// unpublished suffix (this element included) at fresh
				// indices; cells j+1..n-1 of this claim stay empty and
				// will be poisoned by dequeuers in their own time.
				q.event(obs.EvCASFailure, base+j)
				if r := q.rec; r != nil {
					r.Add(obs.EnqRetries, n-j)
				}
				rest = rest[j:]
				publishedAll = false
				break
			}
		}
		if publishedAll {
			if g != nil {
				q.epoch.Release(g)
			}
			q.event(obs.EvEnqEnd, uint64(len(vs)))
			return
		}
	}
}

// DequeueBatch fills a prefix of dst in queue order, claiming each block
// of cells with ONE fetch-and-add. The claim is bounded by the published
// index, so an over-large dst does not poison unwritten cells beyond
// what concurrent single dequeues would. Returns the number of elements
// written; 0 means the queue appeared empty.
//
//lf:hotpath
func (q *Queue[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	q.event(obs.EvDeqStart, uint64(len(dst)))
	if r := q.rec; r != nil {
		r.Inc(obs.DeqBatches)
	}
	var g *reclaim.Guard
	if q.epoch != nil {
		g = q.epoch.Acquire()
	}
	got := 0
	for got < len(dst) {
		d, e := q.deqIdx.Load(), q.enqIdx.Load()
		if d >= e {
			break // appeared empty
		}
		n := uint64(len(dst) - got)
		if avail := e - d; avail < n {
			n = avail
		}
		seg := q.snapshot(&q.deqSeg, g) // snapshot before the claim; see findCell
		base := q.deqIdx.Add(n) - n
		misses := uint64(0)
		for j := uint64(0); j < n; j++ {
			var c *cell[T]
			c, seg = q.findCellSeg(&q.deqSeg, seg, base+j)
			if c.state.Swap(cellTaken) == cellFull {
				dst[got] = c.v
				got++
			} else {
				// Poisoned an unpublished cell; its enqueuer retries
				// elsewhere, we just got fewer elements than claimed.
				misses++
			}
		}
		if r := q.rec; r != nil && misses > 0 {
			r.Add(obs.DeqRetries, misses)
		}
	}
	if g != nil {
		q.epoch.Release(g)
	}
	if r := q.rec; r != nil {
		if got > 0 {
			r.Add(obs.DeqOps, uint64(got))
		} else {
			r.Inc(obs.DeqEmpty)
		}
	}
	q.event(obs.EvDeqEnd, uint64(got))
	return got
}
