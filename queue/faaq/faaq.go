// Package faaq implements an FAA-based "infinite array" MPMC queue:
// enqueuers and dequeuers each claim a cell with one fetch-and-add on a
// global counter and resolve enqueue/dequeue races per cell with an
// atomic state protocol.
//
// This is the fast path of Yang & Mellor-Crummey's wait-free queue (the
// paper's fastest baseline, WF-Queue), without the wait-free helping slow
// path: the paper notes operations make progress in practice, so the
// contended-FAA cost profile — the property SBQ is compared against — is
// the fast path's. Progress here is lock-free rather than wait-free; see
// DESIGN.md for the substitution rationale.
package faaq

import (
	"sync/atomic"

	"repro/internal/obs"
)

// SegSize is the number of cells per segment.
const SegSize = 1024

// Cell states.
const (
	cellEmpty uint32 = iota // no one has arrived
	cellFull                // enqueuer published a value
	cellTaken               // dequeuer claimed (possibly poisoning) the cell
)

type cell[T any] struct {
	state atomic.Uint32
	v     T
}

type segment[T any] struct {
	id    uint64 // index of cells[0]
	next  atomic.Pointer[segment[T]]
	cells [SegSize]cell[T]
}

// Queue is an FAA-based queue. Old segments are reclaimed by the garbage
// collector once head traffic moves past them.
type Queue[T any] struct {
	//lf:contended FAAed by every enqueuer
	enqIdx atomic.Uint64
	_      [56]byte
	//lf:contended FAAed by every dequeuer
	deqIdx atomic.Uint64
	_      [56]byte
	// enqSeg/deqSeg cache the segments serving the current indices; they
	// lag safely because segments are found by walking next pointers.
	//lf:contended read by every enqueuer, CASed forward at segment boundaries
	enqSeg atomic.Pointer[segment[T]]
	_      [56]byte
	//lf:contended read by every dequeuer, CASed forward at segment boundaries
	deqSeg atomic.Pointer[segment[T]]
	_      [56]byte
	rec    obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	s := &segment[T]{}
	q.enqSeg.Store(s)
	q.deqSeg.Store(s)
	return q
}

// findCell returns the cell with global index idx, walking (and extending)
// the segment list from start. start must have been loaded from the cache
// BEFORE idx was claimed: the cache trails its counter, so a pre-claim
// snapshot can never overshoot idx's segment, and holding the snapshot
// keeps older segments alive against the GC while we walk.
func findCell[T any](cache *atomic.Pointer[segment[T]], start *segment[T], idx uint64) *cell[T] {
	seg := start
	for seg.id != idx/SegSize {
		next := seg.next.Load()
		if next == nil {
			n := &segment[T]{id: seg.id + 1}
			//lint:ignore casloop helping loop: a failed extend-CAS means another thread appended the segment we need
			if seg.next.CompareAndSwap(nil, n) {
				next = n
			} else {
				next = seg.next.Load()
			}
		}
		seg = next
	}
	// Advance the cache monotonically; it stays behind the counter
	// because idx was claimed from it.
	for {
		cur := cache.Load()
		//lint:ignore casloop monotonic cache advance: a failed CAS means the cache moved forward, shrinking the remaining gap
		if cur.id >= seg.id || cache.CompareAndSwap(cur, seg) {
			break
		}
	}
	return &seg.cells[idx%SegSize]
}

// Enqueue claims a cell with one FAA and publishes v; if a fast dequeuer
// already poisoned the cell, it claims the next one.
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		seg := q.enqSeg.Load() // snapshot before the claim; see findCell
		idx := q.enqIdx.Add(1) - 1
		c := findCell(&q.enqSeg, seg, idx)
		c.v = v
		q.event(obs.EvCASAttempt, idx)
		if c.state.CompareAndSwap(cellEmpty, cellFull) {
			q.event(obs.EvEnqEnd, 1)
			return
		}
		q.event(obs.EvCASFailure, idx)
		// Poisoned by an overtaking dequeuer; retry at a fresh index.
	}
}

// Dequeue claims a cell with one FAA and takes its value, poisoning cells
// whose enqueuer has not arrived.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		if q.deqIdx.Load() >= q.enqIdx.Load() {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		seg := q.deqSeg.Load() // snapshot before the claim; see findCell
		idx := q.deqIdx.Add(1) - 1
		c := findCell(&q.deqSeg, seg, idx)
		if c.state.Swap(cellTaken) == cellFull {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return c.v, true
		}
		// The enqueuer of this cell has not arrived; it will see the
		// poison and move on. Claim the next cell.
	}
}
