// Package faaq implements an FAA-based "infinite array" MPMC queue:
// enqueuers and dequeuers each claim a cell with one fetch-and-add on a
// global counter and resolve enqueue/dequeue races per cell with an
// atomic state protocol.
//
// This is the fast path of Yang & Mellor-Crummey's wait-free queue (the
// paper's fastest baseline, WF-Queue), without the wait-free helping slow
// path: the paper notes operations make progress in practice, so the
// contended-FAA cost profile — the property SBQ is compared against — is
// the fast path's. Progress here is lock-free rather than wait-free; see
// DESIGN.md for the substitution rationale.
package faaq

import (
	"sync/atomic"

	"repro/internal/obs"
)

// SegSize is the number of cells per segment.
const SegSize = 1024

// Cell states.
const (
	cellEmpty uint32 = iota // no one has arrived
	cellFull                // enqueuer published a value
	cellTaken               // dequeuer claimed (possibly poisoning) the cell
)

type cell[T any] struct {
	state atomic.Uint32
	v     T
}

type segment[T any] struct {
	id    uint64 // index of cells[0]
	next  atomic.Pointer[segment[T]]
	cells [SegSize]cell[T]
}

// Queue is an FAA-based queue. Old segments are reclaimed by the garbage
// collector once head traffic moves past them.
type Queue[T any] struct {
	//lf:contended FAAed by every enqueuer
	enqIdx atomic.Uint64
	_      [56]byte
	//lf:contended FAAed by every dequeuer
	deqIdx atomic.Uint64
	_      [56]byte
	// enqSeg/deqSeg cache the segments serving the current indices; they
	// lag safely because segments are found by walking next pointers.
	//lf:contended read by every enqueuer, CASed forward at segment boundaries
	enqSeg atomic.Pointer[segment[T]]
	_      [56]byte
	//lf:contended read by every dequeuer, CASed forward at segment boundaries
	deqSeg atomic.Pointer[segment[T]]
	_      [56]byte
	rec    obs.Recorder // nil unless WithRecorder attached telemetry
	// ev is the timeline extension of rec (nil unless the recorder is a
	// flight-recorder collector); events land on the collector handle's
	// own lane (obs.LaneDefault).
	ev obs.EventRecorder
}

// event records one timeline event, if a flight recorder is attached.
func (q *Queue[T]) event(k obs.EventKind, arg uint64) {
	if ev := q.ev; ev != nil {
		ev.Event(k, obs.LaneDefault, arg)
	}
}

// New returns an empty queue configured by opts.
func New[T any](opts ...Option) *Queue[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{rec: o.rec, ev: obs.Events(o.rec)}
	s := &segment[T]{}
	q.enqSeg.Store(s)
	q.deqSeg.Store(s)
	return q
}

// findCell returns the cell with global index idx, walking (and extending)
// the segment list from start. start must have been loaded from the cache
// BEFORE idx was claimed: the cache trails its counter, so a pre-claim
// snapshot can never overshoot idx's segment, and holding the snapshot
// keeps older segments alive against the GC while we walk.
func findCell[T any](cache *atomic.Pointer[segment[T]], start *segment[T], idx uint64) *cell[T] {
	c, _ := findCellSeg(cache, start, idx)
	return c
}

// findCellSeg is findCell, also returning idx's segment so batch loops
// over ascending indices can resume the walk where the last one ended.
func findCellSeg[T any](cache *atomic.Pointer[segment[T]], start *segment[T], idx uint64) (*cell[T], *segment[T]) {
	seg := start
	for seg.id != idx/SegSize {
		next := seg.next.Load()
		if next == nil {
			n := &segment[T]{id: seg.id + 1}
			//lint:ignore casloop helping loop: a failed extend-CAS means another thread appended the segment we need
			if seg.next.CompareAndSwap(nil, n) {
				next = n
			} else {
				next = seg.next.Load()
			}
		}
		seg = next
	}
	// Advance the cache monotonically; it stays behind the counter
	// because idx was claimed from it.
	for {
		cur := cache.Load()
		//lint:ignore casloop monotonic cache advance: a failed CAS means the cache moved forward, shrinking the remaining gap
		if cur.id >= seg.id || cache.CompareAndSwap(cur, seg) {
			break
		}
	}
	return &seg.cells[idx%SegSize], seg
}

// Enqueue claims a cell with one FAA and publishes v; if a fast dequeuer
// already poisoned the cell, it claims the next one.
func (q *Queue[T]) Enqueue(v T) {
	if r := q.rec; r != nil {
		r.Inc(obs.EnqOps)
	}
	q.event(obs.EvEnqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.EnqRetries)
			}
		}
		seg := q.enqSeg.Load() // snapshot before the claim; see findCell
		idx := q.enqIdx.Add(1) - 1
		c := findCell(&q.enqSeg, seg, idx)
		c.v = v
		q.event(obs.EvCASAttempt, idx)
		if c.state.CompareAndSwap(cellEmpty, cellFull) {
			q.event(obs.EvEnqEnd, 1)
			return
		}
		q.event(obs.EvCASFailure, idx)
		// Poisoned by an overtaking dequeuer; retry at a fresh index.
	}
}

// Dequeue claims a cell with one FAA and takes its value, poisoning cells
// whose enqueuer has not arrived.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	q.event(obs.EvDeqStart, 0)
	for first := true; ; first = false {
		if !first {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqRetries)
			}
		}
		if q.deqIdx.Load() >= q.enqIdx.Load() {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqEmpty)
			}
			q.event(obs.EvDeqEnd, 0)
			return zero, false
		}
		seg := q.deqSeg.Load() // snapshot before the claim; see findCell
		idx := q.deqIdx.Add(1) - 1
		c := findCell(&q.deqSeg, seg, idx)
		if c.state.Swap(cellTaken) == cellFull {
			if r := q.rec; r != nil {
				r.Inc(obs.DeqOps)
			}
			q.event(obs.EvDeqEnd, 1)
			return c.v, true
		}
		// The enqueuer of this cell has not arrived; it will see the
		// poison and move on. Claim the next cell.
	}
}

// EnqueueBatch publishes vs in order, claiming len(vs) consecutive cells
// with ONE fetch-and-add — the batch analogue of the paper's basket:
// where §5 amortizes the serialized handoff over the k operations that
// happened to collide, the batch amortizes it over the k elements the
// caller already grouped. Cells poisoned by overtaking dequeuers are
// rare; when one is hit, the not-yet-published suffix of the batch moves
// wholesale to a fresh contiguous claim so intra-batch FIFO order is
// preserved (already-claimed later cells are simply abandoned to the
// dequeuers' poison path, like a single Enqueue's failed cell).
func (q *Queue[T]) EnqueueBatch(vs []T) {
	if len(vs) == 0 {
		return
	}
	if r := q.rec; r != nil {
		r.Add(obs.EnqOps, uint64(len(vs)))
		r.Inc(obs.EnqBatches)
	}
	q.event(obs.EvEnqStart, uint64(len(vs)))
	rest := vs
	for {
		seg := q.enqSeg.Load() // snapshot before the claim; see findCell
		n := uint64(len(rest))
		base := q.enqIdx.Add(n) - n
		publishedAll := true
		for j := uint64(0); j < n; j++ {
			var c *cell[T]
			c, seg = findCellSeg(&q.enqSeg, seg, base+j)
			c.v = rest[j]
			q.event(obs.EvCASAttempt, base+j)
			if !c.state.CompareAndSwap(cellEmpty, cellFull) {
				// A dequeuer overtook this cell. Re-claim the whole
				// unpublished suffix (this element included) at fresh
				// indices; cells j+1..n-1 of this claim stay empty and
				// will be poisoned by dequeuers in their own time.
				q.event(obs.EvCASFailure, base+j)
				if r := q.rec; r != nil {
					r.Add(obs.EnqRetries, n-j)
				}
				rest = rest[j:]
				publishedAll = false
				break
			}
		}
		if publishedAll {
			q.event(obs.EvEnqEnd, uint64(len(vs)))
			return
		}
	}
}

// DequeueBatch fills a prefix of dst in queue order, claiming each block
// of cells with ONE fetch-and-add. The claim is bounded by the published
// index, so an over-large dst does not poison unwritten cells beyond
// what concurrent single dequeues would. Returns the number of elements
// written; 0 means the queue appeared empty.
func (q *Queue[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	q.event(obs.EvDeqStart, uint64(len(dst)))
	if r := q.rec; r != nil {
		r.Inc(obs.DeqBatches)
	}
	got := 0
	for got < len(dst) {
		d, e := q.deqIdx.Load(), q.enqIdx.Load()
		if d >= e {
			break // appeared empty
		}
		n := uint64(len(dst) - got)
		if avail := e - d; avail < n {
			n = avail
		}
		seg := q.deqSeg.Load() // snapshot before the claim; see findCell
		base := q.deqIdx.Add(n) - n
		misses := uint64(0)
		for j := uint64(0); j < n; j++ {
			var c *cell[T]
			c, seg = findCellSeg(&q.deqSeg, seg, base+j)
			if c.state.Swap(cellTaken) == cellFull {
				dst[got] = c.v
				got++
			} else {
				// Poisoned an unpublished cell; its enqueuer retries
				// elsewhere, we just got fewer elements than claimed.
				misses++
			}
		}
		if r := q.rec; r != nil && misses > 0 {
			r.Add(obs.DeqRetries, misses)
		}
	}
	if r := q.rec; r != nil {
		if got > 0 {
			r.Add(obs.DeqOps, uint64(got))
		} else {
			r.Inc(obs.DeqEmpty)
		}
	}
	q.event(obs.EvDeqEnd, uint64(got))
	return got
}
