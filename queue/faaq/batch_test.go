package faaq_test

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/queue/faaq"
)

func TestBatchSequentialFIFO(t *testing.T) {
	q := faaq.New[int]()
	q.EnqueueBatch(nil) // empty batch is a no-op
	q.EnqueueBatch([]int{0, 1, 2})
	q.EnqueueBatch([]int{3})
	q.Enqueue(4) // singles and batches interleave
	q.EnqueueBatch([]int{5, 6})
	dst := make([]int, 16)
	if n := q.DequeueBatch(dst); n != 7 {
		t.Fatalf("DequeueBatch = %d, want 7", n)
	}
	for i := 0; i < 7; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], i)
		}
	}
	if n := q.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d, want 0", n)
	}
	if n := q.DequeueBatch(nil); n != 0 {
		t.Fatalf("DequeueBatch with empty dst = %d, want 0", n)
	}
}

// TestBatchSegmentCrossing drives one batch across several segment
// boundaries: the single FAA claims a contiguous block spanning
// segments, so the cell walk must extend the list correctly.
func TestBatchSegmentCrossing(t *testing.T) {
	q := faaq.New[int]()
	n := faaq.SegSize*2 + 37
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	q.EnqueueBatch(vs)
	dst := make([]int, n+10)
	if got := q.DequeueBatch(dst); got != n {
		t.Fatalf("DequeueBatch = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], i)
		}
	}
}

func TestBatchPartialDequeue(t *testing.T) {
	q := faaq.New[int]()
	q.EnqueueBatch([]int{1, 2, 3})
	dst := make([]int, 2)
	if n := q.DequeueBatch(dst); n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("DequeueBatch = %d %v, want 2 [1 2]", n, dst)
	}
	// dst larger than what's left: partial fill, honest count.
	big := make([]int, 10)
	if n := q.DequeueBatch(big); n != 1 || big[0] != 3 {
		t.Fatalf("DequeueBatch = %d %v..., want 1 [3]", n, big[0])
	}
}

// TestBatchConcurrentExactlyOnce hammers batch producers against batch
// consumers and verifies exactly-once delivery plus intra-batch order
// per producer.
func TestBatchConcurrentExactlyOnce(t *testing.T) {
	q := faaq.New[uint64]()
	const producers, batches, k = 4, 50, 16
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			vs := make([]uint64, k)
			for b := 0; b < batches; b++ {
				for i := range vs {
					vs[i] = uint64(p+1)<<32 | uint64(b*k+i+1)
				}
				q.EnqueueBatch(vs)
			}
		}()
	}
	want := producers * batches * k
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var cwg sync.WaitGroup
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			dst := make([]uint64, k)
			for {
				n := q.DequeueBatch(dst)
				if n == 0 {
					select {
					case <-done:
						if n = q.DequeueBatch(dst); n == 0 {
							return
						}
					default:
						continue
					}
				}
				mu.Lock()
				for _, v := range dst[:n] {
					if seen[v] {
						mu.Unlock()
						t.Errorf("duplicate element %#x", v)
						return
					}
					seen[v] = true
				}
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	// Final drain from the test goroutine.
	dst := make([]uint64, 64)
	for {
		n := q.DequeueBatch(dst)
		if n == 0 {
			break
		}
		for _, v := range dst[:n] {
			if seen[v] {
				t.Fatalf("duplicate element %#x", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != want {
		t.Fatalf("delivered %d of %d elements", len(seen), want)
	}
}

// TestBatchTelemetry verifies the batch counters: EnqOps/DeqOps count
// elements while EnqBatches/DeqBatches count operations, so their ratio
// is the realized amortization factor.
func TestBatchTelemetry(t *testing.T) {
	rec := obs.New()
	q := faaq.New[uint64](faaq.WithRecorder(rec))
	vs := make([]uint64, 8)
	for i := range vs {
		vs[i] = uint64(i + 1)
	}
	q.EnqueueBatch(vs)
	dst := make([]uint64, 8)
	if n := q.DequeueBatch(dst); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	snap := rec.Snapshot()
	if got := snap.Counter(obs.EnqOps); got != 8 {
		t.Errorf("EnqOps = %d, want 8", got)
	}
	if got := snap.Counter(obs.EnqBatches); got != 1 {
		t.Errorf("EnqBatches = %d, want 1", got)
	}
	if got := snap.Counter(obs.DeqOps); got != 8 {
		t.Errorf("DeqOps = %d, want 8", got)
	}
	if got := snap.Counter(obs.DeqBatches); got != 1 {
		t.Errorf("DeqBatches = %d, want 1", got)
	}
}
