package faaq

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	rec obs.Recorder
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts and per-cell races lost (counted as
// retries — an FAA queue has no CAS on its claim path to fail). A nil or
// obs.Nop recorder disables telemetry at the cost of one nil check per
// event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}
