package faaq

import "repro/internal/obs"

// Option configures a Queue built with New.
type Option func(*options)

type options struct {
	rec    obs.Recorder
	pooled bool
}

// WithNodePool enables pooled-segment mode: segments recycle through a
// reclaim-backed freelist (per-P via sync.Pool) with epoch-deferred
// reuse, so steady-state operations allocate nothing and the queue stops
// leaning on the garbage collector under sustained load. The trade is
// one guard acquire/announce per operation and an amortized segment
// scrub per SegSize dequeues.
func WithNodePool() Option {
	return func(o *options) { o.pooled = true }
}

// WithRecorder attaches a telemetry recorder (see repro/internal/obs): the
// queue reports operation counts and per-cell races lost (counted as
// retries — an FAA queue has no CAS on its claim path to fail). A nil or
// obs.Nop recorder disables telemetry at the cost of one nil check per
// event site.
func WithRecorder(r obs.Recorder) Option {
	return func(o *options) { o.rec = obs.Normalize(r) }
}
