package faaq_test

import (
	"testing"

	"repro/queue"
	"repro/queue/faaq"
	"repro/queue/queuetest"
)

func factory() queuetest.Factory {
	return queuetest.Shared(func(int) queue.Queue[uint64] { return faaq.New[uint64]() })
}

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, factory())
}

func TestSegmentBoundaryCrossing(t *testing.T) {
	q := faaq.New[int]()
	n := faaq.SegSize*3 + 17
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("index %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestRefillAfterDrain(t *testing.T) {
	q := faaq.New[int]()
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			q.Enqueue(round*100 + i)
		}
		for i := 0; i < 100; i++ {
			v, ok := q.Dequeue()
			if !ok || v != round*100+i {
				t.Fatalf("round %d index %d: got %d,%v", round, i, v, ok)
			}
		}
	}
}
