// Quickstart: create a scalable baskets queue, hand each producer
// goroutine a handle, and drain it from consumers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/queue/sbq"
)

func main() {
	const producers = 4
	const consumers = 2
	const perProducer = 10_000
	const want = producers * perProducer

	// SBQ sizes each node's basket from the producer count; every
	// producer goroutine needs its own handle (it owns one basket cell).
	q := sbq.New[string](sbq.WithEnqueuers(producers))

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h := q.NewHandle() // create in the parent; handles must not be shared
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				h.Enqueue(fmt.Sprintf("producer-%d message-%d", p, i))
			}
		}()
	}

	var delivered atomic.Int64
	var seen sync.Map
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for delivered.Load() < want {
				if v, ok := q.Dequeue(); ok {
					if _, dup := seen.LoadOrStore(v, true); dup {
						panic("duplicate delivery: " + v)
					}
					delivered.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("delivered %d messages exactly once across %d consumers\n",
		delivered.Load(), consumers)
}
