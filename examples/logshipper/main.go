// Logshipper: the paper's motivating producer-heavy shape. Many request
// handlers emit log events into one MPMC queue; a small pool of shippers
// drains, batches, and "ships" them. Enqueue throughput is the bottleneck
// here — exactly the workload where SBQ's enqueues shine (Figure 5) —
// while dequeues are few and batched.
//
//	go run ./examples/logshipper
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/queue/sbq"
)

type event struct {
	at    time.Time
	level uint8
	msg   string
}

const (
	handlers       = 8
	shippers       = 2
	eventsPerConn  = 5_000
	shipBatch      = 256
	totalEvents    = handlers * eventsPerConn
	flushThreshold = 128
)

func main() {
	q := sbq.New[event](sbq.WithEnqueuers(handlers))

	var wg sync.WaitGroup
	start := time.Now()

	// Request handlers: hot path is a single Enqueue per log call.
	for hId := 0; hId < handlers; hId++ {
		h := q.NewHandle()
		hId := hId
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < eventsPerConn; i++ {
				lvl := uint8(i % 4)
				h.Enqueue(event{
					at:    time.Now(),
					level: lvl,
					msg:   fmt.Sprintf("conn=%d req=%d served", hId, i),
				})
			}
		}()
	}

	// Shippers: drain into batches, flush when full.
	var shipped atomic.Int64
	var batches atomic.Int64
	var byLevel [4]atomic.Int64
	for s := 0; s < shippers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]event, 0, shipBatch)
			flush := func() {
				if len(batch) == 0 {
					return
				}
				// A real shipper would POST the batch; we account it.
				batches.Add(1)
				for _, e := range batch {
					byLevel[e.level].Add(1)
				}
				shipped.Add(int64(len(batch)))
				batch = batch[:0]
			}
			for shipped.Load() < totalEvents {
				e, ok := q.Dequeue()
				if !ok {
					flush() // queue drained: ship what we have
					continue
				}
				batch = append(batch, e)
				if len(batch) >= flushThreshold {
					flush()
				}
			}
			flush()
		}()
	}

	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("shipped %d events in %d batches in %v (%.1f Kevents/s)\n",
		shipped.Load(), batches.Load(), elapsed.Round(time.Millisecond),
		float64(shipped.Load())/elapsed.Seconds()/1e3)
	for lvl := range byLevel {
		fmt.Printf("  level %d: %d events\n", lvl, byLevel[lvl].Load())
	}
}
