// Pipeline: a three-stage parallel processing pipeline (parse -> hash ->
// aggregate) connected by the library's MPMC queues instead of channels.
//
// Queues beat channels for this shape when stages have many workers on
// each side: a channel serializes on one mutex, while SBQ's enqueues
// profit from contention (the paper's producer-heavy sweet spot).
//
//	go run ./examples/pipeline
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/queue/sbq"
)

type record struct {
	id      int
	payload []byte
}

type digest struct {
	id  int
	sum [32]byte
}

const (
	records   = 50_000
	parsers   = 4
	hashers   = 4
	reducers  = 2
	batchSize = 64
)

func main() {
	// Stage queues. Each producing stage gets handles for its workers.
	parsed := sbq.New[record](sbq.WithEnqueuers(parsers))
	hashed := sbq.New[digest](sbq.WithEnqueuers(hashers))

	var wg sync.WaitGroup

	// Stage 1: parsers synthesize records.
	var parsedCount atomic.Int64
	for w := 0; w < parsers; w++ {
		h := parsed.NewHandle()
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < records; i += parsers {
				var payload [16]byte
				binary.LittleEndian.PutUint64(payload[:8], uint64(i))
				binary.LittleEndian.PutUint64(payload[8:], uint64(i)*2654435761)
				h.Enqueue(record{id: i, payload: payload[:]})
				parsedCount.Add(1)
			}
		}()
	}

	// Stage 2: hashers consume records and produce digests.
	var hashedCount atomic.Int64
	for w := 0; w < hashers; w++ {
		h := hashed.NewHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hashedCount.Load() < records {
				r, ok := parsed.Dequeue()
				if !ok {
					continue
				}
				h.Enqueue(digest{id: r.id, sum: sha256.Sum256(r.payload)})
				hashedCount.Add(1)
			}
		}()
	}

	// Stage 3: reducers fold digests into a running xor (order-free).
	var reduced atomic.Int64
	acc := make([][32]byte, reducers)
	for w := 0; w < reducers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for reduced.Load() < records {
				d, ok := hashed.Dequeue()
				if !ok {
					continue
				}
				for i := range acc[w] {
					acc[w][i] ^= d.sum[i]
				}
				reduced.Add(1)
			}
		}()
	}

	wg.Wait()
	var final [32]byte
	for _, a := range acc {
		for i := range final {
			final[i] ^= a[i]
		}
	}
	fmt.Printf("pipeline processed %d records through %d+%d+%d workers\n",
		reduced.Load(), parsers, hashers, reducers)
	fmt.Printf("aggregate digest: %x\n", final[:8])
}
