// Simlab: using the simulated machine directly to study a synchronization
// primitive — here, comparing a test-and-set spinlock against a
// ticket lock under contention, the same way the paper studies TxCAS.
//
// The machine API (repro/internal/machine) gives you cores, coherent
// memory, atomics, and HTM; programs are plain Go functions over Proc.
//
//	go run ./examples/simlab
package main

import (
	"fmt"

	"repro/internal/machine"
)

func main() {
	for _, threads := range []int{2, 8, 24, 44} {
		tas := spinlockBench(threads)
		ticket := ticketBench(threads)
		fmt.Printf("%2d threads: test-and-set lock %6.0f ns/crit, ticket lock %6.0f ns/crit\n",
			threads, tas, ticket)
	}
	fmt.Println("\nBoth serialize, but the ticket lock's FIFO handoff keeps latency")
	fmt.Println("predictable while TAS suffers from coherence storms - the same")
	fmt.Println("dynamics paper figure 2a shows for contended CAS.")
}

// spinlockBench measures a critical section guarded by a test-and-set
// lock: every acquisition attempt is a contended RMW.
func spinlockBench(threads int) float64 {
	cfg := machine.Default()
	m := machine.New(cfg)
	lock := m.AllocLine(8, 0)
	counter := m.AllocLine(8, 0)
	const ops = 40
	var cycles uint64
	for t := 0; t < threads; t++ {
		m.Go(t, func(p *machine.Proc) {
			p.Delay(p.RandN(100))
			start := p.Now()
			for i := 0; i < ops; i++ {
				// test-and-test-and-set with backoff
				for {
					if p.Read(lock) == 0 && p.Swap(lock, 1) == 0 {
						break
					}
					p.Delay(20 + p.RandN(40))
				}
				p.Write(counter, p.Read(counter)+1) // critical section
				p.Write(lock, 0)
			}
			cycles += p.Now() - start
		})
	}
	m.Run()
	if got := m.Peek(counter); got != uint64(threads*ops) {
		panic(fmt.Sprintf("lost updates: %d != %d", got, threads*ops))
	}
	return cfg.NSPerOp(float64(cycles) / float64(threads*ops))
}

// ticketBench measures the same critical section under a ticket lock: one
// FAA to take a ticket, local spinning on now-serving.
func ticketBench(threads int) float64 {
	cfg := machine.Default()
	m := machine.New(cfg)
	next := m.AllocLine(8, 0)    // ticket dispenser
	serving := m.AllocLine(8, 0) // now serving
	counter := m.AllocLine(8, 0)
	const ops = 40
	var cycles uint64
	for t := 0; t < threads; t++ {
		m.Go(t, func(p *machine.Proc) {
			p.Delay(p.RandN(100))
			start := p.Now()
			for i := 0; i < ops; i++ {
				ticket := p.FAA(next, 1)
				for p.Read(serving) != ticket {
					p.Delay(30)
				}
				p.Write(counter, p.Read(counter)+1) // critical section
				p.Write(serving, ticket+1)
			}
			cycles += p.Now() - start
		})
	}
	m.Run()
	if got := m.Peek(counter); got != uint64(threads*ops) {
		panic(fmt.Sprintf("lost updates: %d != %d", got, threads*ops))
	}
	return cfg.NSPerOp(float64(cycles) / float64(threads*ops))
}
