// Command sbqd is the job-queue daemon: repro/service behind an HTTP
// front-end, with a chaos mode for CI and soak testing.
//
// Serve mode (default) runs until SIGINT/SIGTERM, then drains gracefully:
//
//	sbqd -addr :8080 -queue Sharded-FAA -lease-ttl 30s -snapshot /var/lib/sbqd/checkpoint.json
//
// The service surface (see service.Handler) includes GET /metrics
// (Prometheus text 0.0.4), /healthz, and /readyz. -admin-addr binds those
// on a second listener together with the Go diagnostics — /debug/pprof/*
// and /debug/vars — so the operational plane can stay off the job API's
// port. -log/-log-level/-log-every control the structured lifecycle log.
//
// Chaos mode runs the in-process fault-injection harness instead of
// serving, prints the report, and exits nonzero on any invariant
// violation; -metrics-addr exposes the run to live scrapers (sbqtop, the
// CI metrics-smoke job):
//
//	sbqd -chaos -profile short -trace-out trace.json -metrics-addr 127.0.0.1:9091
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/queue/registry"
	"repro/service"
	"repro/service/chaos"
)

func main() {
	fs := flag.NewFlagSet("sbqd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address (serve mode)")
		adminAddr   = fs.String("admin-addr", "", "separate admin listen address for /metrics, /healthz, /readyz, /debug/pprof, /debug/vars (\"\" = none)")
		queueName   = fs.String("queue", service.DefaultQueue, "registry queue entry backing each tenant")
		shards      = fs.Int("shards", 0, "shard count (0 = the entry's default)")
		lanes       = fs.Int("lanes", 0, "producer lanes per tenant (0 = default)")
		retryBudget = fs.Int("retry-budget", 0, "delivery attempts before dead-lettering (0 = default)")
		maxInFlight = fs.Int64("max-inflight", 0, "per-tenant depth quota (0 = default, negative = unlimited)")
		maxTenants  = fs.Int("max-tenants", 0, "cap on auto-created tenants (0 = default, negative = unlimited)")
		snapshot    = fs.String("snapshot", "", "checkpoint path for graceful shutdown + restore")
		seed        = fs.Uint64("seed", 0, "backoff jitter seed (0 = default)")

		chaosMode   = fs.Bool("chaos", false, "run the chaos harness instead of serving")
		profile     = fs.String("profile", "short", "chaos profile: short or standard")
		traceOut    = fs.String("trace-out", "", "chaos: write a Chrome trace here")
		swapTo      = fs.String("swap-to", "", "chaos: override the mid-run swap target entry (\"none\" disables)")
		restart     = fs.Bool("restart", true, "chaos: run the mid-run restart scenario (off keeps counters scrape-monotonic)")
		duration    = fs.Duration("duration", 0, "chaos: override the profile's submit-phase length (0 = profile default)")
		metricsAddr = fs.String("metrics-addr", "", "chaos: admin listener for live /metrics scraping (\":0\" picks a port)")
	)
	timings := cliflag.ServiceTimings(fs, cliflag.Timings{
		LeaseTTL:     30 * time.Second,
		DrainTimeout: 10 * time.Second,
	})
	logCfg := cliflag.LogFlags(fs, cliflag.LogConfig{Format: "text", Level: "info", Every: 100})
	fs.Parse(os.Args[1:])

	if _, ok := registry.LookupEntry(*queueName); !ok {
		fmt.Fprintf(os.Stderr, "sbqd: unknown queue %q (have %v)\n", *queueName, registry.Names())
		os.Exit(2)
	}

	if *chaosMode {
		os.Exit(runChaos(chaosOpts{
			profile: *profile, queue: *queueName, swapTo: *swapTo,
			traceOut: *traceOut, seed: *seed, restart: *restart,
			duration: *duration, metricsAddr: *metricsAddr,
		}, timings))
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: %v\n", err)
		os.Exit(2)
	}
	os.Exit(serve(*addr, *adminAddr, service.Config{
		Queue:        *queueName,
		Shards:       *shards,
		Lanes:        *lanes,
		LeaseTTL:     timings.LeaseTTL,
		ScanInterval: timings.ScanInterval,
		RetryBudget:  *retryBudget,
		MaxInFlight:  *maxInFlight,
		MaxTenants:   *maxTenants,
		SnapshotPath: *snapshot,
		Seed:         *seed,
		Logger:       logger,
		LogEvery:     logCfg.Every,
	}, timings.DrainTimeout))
}

// adminHandler is the operational surface served on -admin-addr: the
// service's own health/metrics routes plus the Go runtime diagnostics.
// The job API (POST /v1/*) deliberately stays off this mux, so the admin
// port can be firewalled separately from the data plane.
func adminHandler(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	sh := svc.Handler()
	mux.Handle("GET /metrics", sh)
	mux.Handle("GET /healthz", sh)
	mux.Handle("GET /readyz", sh)
	mux.Handle("GET /v1/stats", sh)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func serve(addr, adminAddr string, cfg service.Config, drainTimeout time.Duration) int {
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: %v\n", err)
		return 1
	}
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if adminAddr != "" {
		admin := &http.Server{Addr: adminAddr, Handler: adminHandler(svc)}
		go func() {
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sbqd: admin: %v\n", err)
			}
		}()
		defer admin.Close()
		fmt.Fprintf(os.Stderr, "sbqd: admin plane on %s (/metrics, /debug/pprof, /debug/vars)\n", adminAddr)
	}
	fmt.Fprintf(os.Stderr, "sbqd: serving on %s (queue=%s lease-ttl=%s)\n",
		addr, cfg.Queue, cfg.LeaseTTL)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "sbqd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "sbqd: draining...")

	// Drain the service first (workers keep settling over HTTP while it
	// drains), then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: drain: %v (unsettled work checkpointed)\n", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	_ = srv.Shutdown(hctx)
	fmt.Fprintln(os.Stderr, "sbqd: stopped")
	return 0
}

// chaosOpts carries the chaos-mode flag values into runChaos.
type chaosOpts struct {
	profile, queue, swapTo, traceOut, metricsAddr string
	seed                                          uint64
	restart                                       bool
	duration                                      time.Duration
}

func runChaos(o chaosOpts, t *cliflag.Timings) int {
	var p chaos.Profile
	switch o.profile {
	case "short":
		p = chaos.ShortProfile()
	case "standard":
		p = chaos.StandardProfile()
	default:
		fmt.Fprintf(os.Stderr, "sbqd: unknown chaos profile %q (have short, standard)\n", o.profile)
		return 2
	}
	p.Queue = o.queue
	p.TraceOut = o.traceOut
	p.Restart = o.restart
	p.MetricsAddr = o.metricsAddr
	if o.duration > 0 {
		p.Duration = o.duration
	}
	if o.seed != 0 {
		p.Seed = o.seed
	}
	switch o.swapTo {
	case "":
	case "none":
		p.SwapTo = ""
	default:
		p.SwapTo = o.swapTo
	}
	// Flag defaults are serve-shaped (30s TTL, 10s drain); values moved
	// off the default override the profile's own timings.
	if t.LeaseTTL != 30*time.Second {
		p.LeaseTTL = t.LeaseTTL
	}
	if t.DrainTimeout != 10*time.Second {
		p.DrainTimeout = t.DrainTimeout
	}

	rep, err := chaos.Run(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: chaos: %v\n", err)
		return 1
	}
	fmt.Println(rep)
	if !rep.Ok() {
		return 1
	}
	return 0
}
