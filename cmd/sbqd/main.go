// Command sbqd is the job-queue daemon: repro/service behind an HTTP
// front-end, with a chaos mode for CI and soak testing.
//
// Serve mode (default) runs until SIGINT/SIGTERM, then drains gracefully:
//
//	sbqd -addr :8080 -queue Sharded-FAA -lease-ttl 30s -snapshot /var/lib/sbqd/checkpoint.json
//
// Chaos mode runs the in-process fault-injection harness instead of
// serving, prints the report, and exits nonzero on any invariant
// violation:
//
//	sbqd -chaos -profile short -trace-out trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/queue/registry"
	"repro/service"
	"repro/service/chaos"
)

func main() {
	fs := flag.NewFlagSet("sbqd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address (serve mode)")
		queueName   = fs.String("queue", service.DefaultQueue, "registry queue entry backing each tenant")
		shards      = fs.Int("shards", 0, "shard count (0 = the entry's default)")
		lanes       = fs.Int("lanes", 0, "producer lanes per tenant (0 = default)")
		retryBudget = fs.Int("retry-budget", 0, "delivery attempts before dead-lettering (0 = default)")
		maxInFlight = fs.Int64("max-inflight", 0, "per-tenant depth quota (0 = default, negative = unlimited)")
		maxTenants  = fs.Int("max-tenants", 0, "cap on auto-created tenants (0 = default, negative = unlimited)")
		snapshot    = fs.String("snapshot", "", "checkpoint path for graceful shutdown + restore")
		seed        = fs.Uint64("seed", 0, "backoff jitter seed (0 = default)")

		chaosMode = fs.Bool("chaos", false, "run the chaos harness instead of serving")
		profile   = fs.String("profile", "short", "chaos profile: short or standard")
		traceOut  = fs.String("trace-out", "", "chaos: write a Chrome trace here")
		swapTo    = fs.String("swap-to", "", "chaos: override the mid-run swap target entry (\"none\" disables)")
	)
	timings := cliflag.ServiceTimings(fs, cliflag.Timings{
		LeaseTTL:     30 * time.Second,
		DrainTimeout: 10 * time.Second,
	})
	fs.Parse(os.Args[1:])

	if _, ok := registry.LookupEntry(*queueName); !ok {
		fmt.Fprintf(os.Stderr, "sbqd: unknown queue %q (have %v)\n", *queueName, registry.Names())
		os.Exit(2)
	}

	if *chaosMode {
		os.Exit(runChaos(*profile, *queueName, *swapTo, *traceOut, *seed, timings))
	}
	os.Exit(serve(*addr, service.Config{
		Queue:        *queueName,
		Shards:       *shards,
		Lanes:        *lanes,
		LeaseTTL:     timings.LeaseTTL,
		ScanInterval: timings.ScanInterval,
		RetryBudget:  *retryBudget,
		MaxInFlight:  *maxInFlight,
		MaxTenants:   *maxTenants,
		SnapshotPath: *snapshot,
		Seed:         *seed,
	}, timings.DrainTimeout))
}

func serve(addr string, cfg service.Config, drainTimeout time.Duration) int {
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: %v\n", err)
		return 1
	}
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sbqd: serving on %s (queue=%s lease-ttl=%s)\n",
		addr, cfg.Queue, cfg.LeaseTTL)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "sbqd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "sbqd: draining...")

	// Drain the service first (workers keep settling over HTTP while it
	// drains), then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: drain: %v (unsettled work checkpointed)\n", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	_ = srv.Shutdown(hctx)
	fmt.Fprintln(os.Stderr, "sbqd: stopped")
	return 0
}

func runChaos(profileName, queueName, swapTo, traceOut string, seed uint64, t *cliflag.Timings) int {
	var p chaos.Profile
	switch profileName {
	case "short":
		p = chaos.ShortProfile()
	case "standard":
		p = chaos.StandardProfile()
	default:
		fmt.Fprintf(os.Stderr, "sbqd: unknown chaos profile %q (have short, standard)\n", profileName)
		return 2
	}
	p.Queue = queueName
	p.TraceOut = traceOut
	if seed != 0 {
		p.Seed = seed
	}
	switch swapTo {
	case "":
	case "none":
		p.SwapTo = ""
	default:
		p.SwapTo = swapTo
	}
	// Flag defaults are serve-shaped (30s TTL, 10s drain); values moved
	// off the default override the profile's own timings.
	if t.LeaseTTL != 30*time.Second {
		p.LeaseTTL = t.LeaseTTL
	}
	if t.DrainTimeout != 10*time.Second {
		p.DrainTimeout = t.DrainTimeout
	}

	rep, err := chaos.Run(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbqd: chaos: %v\n", err)
		return 1
	}
	fmt.Println(rep)
	if !rep.Ok() {
		return 1
	}
	return 0
}
