// Command sbqtrace records and analyzes flight-recorder traces of the
// simulated track. A recorded trace is Chrome trace_event JSON — load it
// in chrome://tracing or https://ui.perfetto.dev to see per-core and
// per-thread swimlanes — and the analyzer rebuilds the paper's temporal
// figures from the same file:
//
//	tripped-writer serialization chains (§3) — how many writers each
//	    remote read serializes in a row;
//	abort-cascade trees (§3.3) — which abort (or GetM) triggered which;
//	per-op latency split by intra- vs cross-socket conflicts (§4.3);
//	basket lifetime and occupancy (§5.3).
//
// Usage:
//
//	sbqtrace -record -out trace.json                   record (mixed SBQ-HTM workload)
//	sbqtrace -record -workload txcas -out trace.json   record the §3.4.1 cross-socket
//	                                                   TxCAS regime (dense in tripped
//	                                                   writers)
//	sbqtrace -record -faults p=0.2,jitter=40 ...       record under injected HTM
//	                                                   faults (see -faults spec)
//	sbqtrace trace.json                                analyze a recorded trace
//	sbqtrace -record trace-and-analyze.json -analyze   record, write, and analyze
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflag"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/trace"
)

func main() {
	record := flag.Bool("record", false, "record a new trace from the simulated track")
	analyze := flag.Bool("analyze", false, "with -record: also analyze the recorded trace")
	out := flag.String("out", "", "with -record: write Chrome trace_event JSON here (default stdout)")
	workload := flag.String("workload", "mixed", "with -record: mixed (producers/consumers across sockets) or txcas (§3.4.1 raw-TxCAS regime)")
	variant := flag.String("variant", string(harness.SBQHTM), "with -record -workload mixed: queue variant")
	threads := flag.Int("threads", 8, "with -record: threads per side (producers=consumers, or TxCASers per socket)")
	ops := flag.Int("ops", 300, "with -record: operations per thread")
	faults := cliflag.Faults(flag.CommandLine)
	chainWindow := flag.Uint64("chain-window", 0, "chain gap threshold in trace time units (0 = default)")
	cascadeWindow := flag.Uint64("cascade-window", 0, "cascade attribution window in trace time units (0 = default)")
	jobsOut := flag.String("jobs-out", "", "write a job-lane Chrome trace (one swimlane per job) here")
	flag.Parse()

	if *record {
		doRecord(*workload, *variant, *threads, *ops, faults.Plan, *out, *analyze, *chainWindow, *cascadeWindow)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sbqtrace [-flags] trace.json  |  sbqtrace -record [-flags]")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadChrome(f)
	if err != nil {
		fatal(err)
	}
	report(tr, *chainWindow, *cascadeWindow)
	if *jobsOut != "" {
		writeJobs(tr, *jobsOut)
	}
}

func writeJobs(tr *trace.Trace, path string) {
	js := trace.AnalyzeJobs(tr)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := js.WriteJobsChrome(f, tr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d job lanes (load in chrome://tracing or ui.perfetto.dev)\n",
		path, js.Jobs)
}

func doRecord(workload, variant string, threads, ops int, faults machine.FaultPlan, out string, analyze bool, cw, caw uint64) {
	o := harness.Options{
		OpsPerThread: ops,
		ThreadCounts: []int{threads},
		Progress:     os.Stderr,
		Faults:       faults,
	}
	var tr *trace.Trace
	switch workload {
	case "mixed":
		tr = harness.Run(harness.TraceQueue{Variant: harness.Variant(variant)}, o).Trace
	case "txcas":
		tr = harness.Run(harness.TraceTxCAS{}, o).Trace
	default:
		fmt.Fprintf(os.Stderr, "sbqtrace: unknown workload %q (want mixed or txcas)\n", workload)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "recorded %d events (%d dropped)\n", len(tr.Events), tr.Dropped)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteChrome(w); err != nil {
		fatal(err)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", out)
	}
	if analyze {
		report(tr, cw, caw)
	}
}

func report(tr *trace.Trace, chainWindow, cascadeWindow uint64) {
	a := trace.Analyze(tr, trace.AnalyzeOptions{
		ChainWindow:   chainWindow,
		CascadeWindow: cascadeWindow,
	})
	fmt.Printf("trace: %d events, epoch %d, %d dropped, clock %s\n", len(tr.Events), tr.Epoch, tr.Dropped, tr.Clock)
	if v := tr.Meta["variant"]; v != "" {
		fmt.Printf("variant: %s  workload: %s\n", v, tr.Meta["workload"])
	}
	if w := trace.DroppedWarning(tr.Dropped); w != "" {
		// Also on stderr so a redirected report still screams in the log.
		fmt.Fprintln(os.Stderr, w)
	}
	fmt.Println()
	fmt.Print(a.Format())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbqtrace:", err)
	os.Exit(1)
}
