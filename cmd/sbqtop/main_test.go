package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/export"
	"repro/service"
)

// scrapeService stands up a real service, applies load, and returns the
// rendered /metrics page — the same bytes sbqtop would fetch.
func scrapeService(t *testing.T) (*service.Service, string) {
	t.Helper()
	svc, err := service.New(service.Config{
		SnapshotPath: filepath.Join(t.TempDir(), "snap.json"),
		Shards:       2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := svc.Submit("alpha", nil); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	l, ok, err := svc.Lease("alpha")
	if err != nil || !ok {
		t.Fatalf("Lease: ok=%v err=%v", ok, err)
	}
	if err := svc.Ack(l.Token); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	rr := httptest.NewRecorder()
	svc.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	return svc, rr.Body.String()
}

func TestRenderFrame(t *testing.T) {
	_, page := scrapeService(t)
	cur, err := export.Parse(strings.NewReader(page))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	var b strings.Builder
	render(&b, cur, nil, 0, "test")
	frame := b.String()
	for _, want := range []string{"READY", "alpha", "TENANT", "DEPTH", "LEASE ms"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// First frame has no previous scrape: rates render as "-".
	if !strings.Contains(frame, "-") {
		t.Fatalf("first frame should show \"-\" rates:\n%s", frame)
	}

	// Second frame against the first: submit rate = 0 (no new load), but
	// the quantile columns carry real numbers.
	var b2 strings.Builder
	render(&b2, cur, cur, time.Second, "test")
	if !strings.Contains(b2.String(), "0.0") {
		t.Fatalf("steady-state frame shows no zero rate:\n%s", b2.String())
	}
}

func TestValidateFiles(t *testing.T) {
	svc, first := scrapeService(t)
	// More load, then a second scrape: strictly more counted events.
	if _, err := svc.Submit("alpha", nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rr := httptest.NewRecorder()
	svc.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	second := rr.Body.String()

	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.prom"), filepath.Join(dir, "b.prom")
	writeFile(t, a, first)
	writeFile(t, b, second)

	var out strings.Builder
	if code := validateFiles(&out, a, b); code != 0 {
		t.Fatalf("forward validation failed (%d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Fatalf("no ok summary:\n%s", out.String())
	}

	// Reversed order: counters appear to decrease — must fail loudly.
	out.Reset()
	if code := validateFiles(&out, b, a); code == 0 {
		t.Fatalf("reversed scrapes validated:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "monotonicity") {
		t.Fatalf("failure does not name monotonicity:\n%s", out.String())
	}

	// Syntactic garbage must fail parse validation.
	bad := filepath.Join(dir, "bad.prom")
	writeFile(t, bad, "sbq_srv_submits_total{tenant=\"x} 1\n")
	out.Reset()
	if code := validateFiles(&out, a, bad); code == 0 {
		t.Fatalf("invalid exposition validated:\n%s", out.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
