// Command sbqtop is a live terminal dashboard over a sbqd /metrics
// endpoint — top(1) for the job queue. It polls the Prometheus text
// exposition, diffs consecutive scrapes, and renders per-tenant depth and
// backpressure, submit/ack throughput, lease and ack latency quantiles
// (p50/p99/p999, straight from the exposition histograms), and the
// paper's hot-path failure signals (CAS-failure and steal-miss rates).
//
//	sbqtop                                   poll localhost sbqd every 2s
//	sbqtop -url http://host:9091/metrics -interval 1s
//	sbqtop -once                             print one frame and exit
//
// Validate mode is the CI half: it checks two scrape files of the same
// target for exposition validity and scrape-to-scrape counter
// monotonicity, exiting nonzero on any violation:
//
//	sbqtop -validate first.prom second.prom
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/service"
)

func main() {
	fs := flag.NewFlagSet("sbqtop", flag.ExitOnError)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080/metrics", "sbqd metrics endpoint to poll")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		once     = fs.Bool("once", false, "print a single frame and exit (no screen clearing)")
		validate = fs.Bool("validate", false, "validate two scrape files (args: first.prom second.prom) and exit")
	)
	fs.Parse(os.Args[1:])

	if *validate {
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "sbqtop: -validate needs exactly two scrape files (taken in order)")
			os.Exit(2)
		}
		os.Exit(validateFiles(os.Stdout, fs.Arg(0), fs.Arg(1)))
	}
	os.Exit(watch(*url, *interval, *once))
}

// validateFiles parses both scrapes strictly and checks counter/histogram
// monotonicity from first to second.
func validateFiles(w io.Writer, first, second string) int {
	scrapes := make([]*export.Scrape, 2)
	for i, path := range []string{first, second} {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(w, "sbqtop: %v\n", err)
			return 1
		}
		sc, err := export.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(w, "sbqtop: %s: invalid exposition: %v\n", path, err)
			return 1
		}
		scrapes[i] = sc
	}
	if vs := export.CheckMonotonic(scrapes[0], scrapes[1]); len(vs) > 0 {
		fmt.Fprintf(w, "sbqtop: %d monotonicity violations %s -> %s:\n", len(vs), first, second)
		for _, v := range vs {
			fmt.Fprintf(w, "  %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(w, "sbqtop: ok: %d then %d samples, counters monotonic\n",
		len(scrapes[0].Points), len(scrapes[1].Points))
	return 0
}

func watch(url string, interval time.Duration, once bool) int {
	var prev *export.Scrape
	var prevT time.Time
	for {
		cur, err := fetch(url)
		now := time.Now()
		if err != nil {
			if once {
				fmt.Fprintf(os.Stderr, "sbqtop: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "sbqtop: %v (retrying in %s)\n", err, interval)
		} else {
			if !once {
				fmt.Print("\x1b[H\x1b[2J") // home + clear
			}
			render(os.Stdout, cur, prev, now.Sub(prevT), url)
			prev, prevT = cur, now
		}
		if once {
			return 0
		}
		time.Sleep(interval)
	}
}

func fetch(url string) (*export.Scrape, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	sc, err := export.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: bad exposition: %w", url, err)
	}
	return sc, nil
}

// tenantRow is one tenant's frame state, assembled from the scrape.
type tenantRow struct {
	name, queue string
}

// tenants lists the scrape's tenants with their current queue backend,
// discovered from the always-exported depth gauge.
func tenants(sc *export.Scrape) []tenantRow {
	var rows []tenantRow
	for _, p := range sc.Points {
		if p.Name == service.MetricTenantDepth {
			rows = append(rows, tenantRow{name: p.Labels["tenant"], queue: p.Labels["queue"]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// render writes one dashboard frame. prev may be nil (first frame: rates
// show as "-"); dt is the time since prev was scraped.
func render(w io.Writer, cur, prev *export.Scrape, dt time.Duration, source string) {
	ready, _ := cur.Value(service.MetricReady, nil)
	inflight, _ := cur.Value(service.MetricInFlight, nil)
	nTenants, _ := cur.Value(service.MetricTenants, nil)

	state := "READY"
	if ready != 1 {
		state = "NOT READY"
	}
	fmt.Fprintf(w, "sbqtop %s — %s  tenants=%.0f  inflight-leases=%.0f\n\n",
		source, state, nTenants, inflight)

	rows := tenants(cur)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no tenants yet (depth gauges absent)")
		return
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "TENANT\tQUEUE\tDEPTH\tQUEUED\tLEASED\tDELAYED\tDEAD\tSUB/s\tACK/s\t")
	for _, t := range rows {
		sel := export.Labels{"tenant": t.name, "queue": t.queue}
		g := func(name string) string {
			v, ok := cur.Value(name, sel)
			if !ok {
				return "-"
			}
			return fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			t.name, t.queue,
			g(service.MetricTenantDepth), g(service.MetricTenantQueued),
			g(service.MetricTenantLeased), g(service.MetricTenantDelayed),
			g(service.MetricTenantDead),
			rate(cur, prev, export.CounterName(obs.SrvSubmits), t.name, dt),
			rate(cur, prev, export.CounterName(obs.SrvAcks), t.name, dt))
	}
	tw.Flush()

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "TENANT\tLEASE ms p50/p99/p999\tACK ms p50/p99/p999\tCAS-FAIL%\tSTEAL-MISS%\t")
	for _, t := range rows {
		sel := export.Labels{"tenant": t.name}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t\n",
			t.name,
			quantiles(cur, export.SeriesName(obs.LeaseLatency), sel),
			quantiles(cur, export.SeriesName(obs.AckLatency), sel),
			pct(cur, export.CASFailureRateName, sel),
			pct(cur, export.StealMissRateName, sel))
	}
	tw.Flush()
}

// rate renders the per-second delta of counter name for one tenant, "-"
// on the first frame or when the counter has not appeared yet.
func rate(cur, prev *export.Scrape, name, tenant string, dt time.Duration) string {
	if prev == nil || dt <= 0 {
		return "-"
	}
	sel := export.Labels{"tenant": tenant}
	c, ok := cur.Value(name, sel)
	if !ok {
		return "-"
	}
	p, _ := prev.Value(name, sel) // absent before: counted from 0
	return fmt.Sprintf("%.1f", (c-p)/dt.Seconds())
}

// quantiles renders "p50/p99/p999" of histogram name in milliseconds.
func quantiles(sc *export.Scrape, name string, sel export.Labels) string {
	var parts [3]string
	for i, q := range []float64{0.50, 0.99, 0.999} {
		v, ok := sc.Quantile(name, sel, q)
		if !ok {
			return "-"
		}
		parts[i] = fmt.Sprintf("%.1f", v/1e6)
	}
	return strings.Join(parts[:], "/")
}

// pct renders a windowed-rate gauge as a percentage, "-" when the window
// had no events in the denominator (the writer omits the gauge then).
func pct(sc *export.Scrape, name string, sel export.Labels) string {
	v, ok := sc.Value(name, sel)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*v)
}
