// Command sbqbench benchmarks the native Go queue implementations on real
// hardware: the companion to the simulated-track figures. Go has no HTM,
// so SBQ runs in its CAS configurations; these numbers characterize the
// adoptable library on contemporary hardware rather than reproducing the
// paper's HTM results (cmd/sbqsim does that).
//
// Queue selection comes from repro/queue/registry, the same table the
// benchmarks and conformance tests use.
//
//	sbqbench -workload enqueue|dequeue|mixed -threads 1,2,4,8 -ops 200000
//	sbqbench -impl SBQ-DCAS -stats        # print telemetry snapshots
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/queue/registry"
)

func main() {
	workload := flag.String("workload", "enqueue", "enqueue, dequeue, or mixed")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default 1,2,4,...,NumCPU)")
	ops := flag.Int("ops", 100_000, "operations per thread")
	only := flag.String("impl", "", "run a single implementation by name")
	stats := flag.Bool("stats", false, "print a telemetry snapshot (CAS failure rates, retries, basket outcomes) per run")
	flag.Parse()

	if *only != "" {
		if _, ok := registry.Lookup(*only); !ok {
			fmt.Fprintf(os.Stderr, "sbqbench: unknown impl %q (have %s)\n", *only, strings.Join(registry.Names(), ", "))
			os.Exit(2)
		}
	}

	var threadCounts []int
	if *threadsFlag == "" {
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			threadCounts = append(threadCounts, n)
		}
	} else {
		for _, s := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "sbqbench: bad thread count %q\n", s)
				os.Exit(2)
			}
			threadCounts = append(threadCounts, n)
		}
	}
	sort.Ints(threadCounts)

	fmt.Printf("workload=%s ops/thread=%d GOMAXPROCS=%d\n\n", *workload, *ops, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s", "impl")
	for _, n := range threadCounts {
		fmt.Printf(" %9dT", n)
	}
	fmt.Println("   [ns/op]")
	type statRun struct {
		threads int
		snap    obs.Snapshot
	}
	for _, name := range registry.Names() {
		if *only != "" && name != *only {
			continue
		}
		var snaps []statRun
		fmt.Printf("%-12s", name)
		for _, n := range threadCounts {
			var rec *obs.Stats
			if *stats {
				rec = obs.New()
			}
			ns := runOne(name, rec, *workload, n, *ops)
			fmt.Printf(" %10.1f", ns)
			if rec != nil {
				snaps = append(snaps, statRun{n, rec.Snapshot()})
			}
		}
		fmt.Println()
		for _, sr := range snaps {
			fmt.Printf("\n  %s @ %d threads:\n", name, sr.threads)
			for _, line := range strings.Split(strings.TrimRight(sr.snap.FormatQueue(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		if len(snaps) > 0 {
			fmt.Println()
		}
	}
}

// runOne measures one (impl, workload, threads) cell and returns ns per
// operation normalized to one thread.
func runOne(name string, rec obs.Recorder, workload string, threads, ops int) float64 {
	producers, consumers := threads, threads
	switch workload {
	case "enqueue":
		consumers = 0
	case "dequeue":
		producers = 0
	case "mixed":
	default:
		fmt.Fprintf(os.Stderr, "sbqbench: unknown workload %q\n", workload)
		os.Exit(2)
	}
	nProd := producers
	if nProd == 0 {
		nProd = threads // prefill threads double as producers
	}
	inst, err := registry.Build(name, registry.Config{Producers: nProd, Recorder: rec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbqbench:", err)
		os.Exit(2)
	}

	// Prefill for dequeue/mixed so consumers rarely see empty.
	prefill := 0
	switch workload {
	case "dequeue":
		prefill = threads*ops + 1024
	case "mixed":
		prefill = threads * ops / 2
	}
	if prefill > 0 {
		var wg sync.WaitGroup
		per := prefill / nProd
		for i := 0; i < nProd; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := inst.Producer(i)
				for k := 0; k < per; k++ {
					q.Enqueue(uint64(i+1)<<32 | uint64(k+1))
				}
			}()
		}
		wg.Wait()
	}

	var wg sync.WaitGroup
	start := time.Now()
	total := 0
	if workload != "dequeue" {
		for i := 0; i < producers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := inst.Producer(i)
				for k := 0; k < ops; k++ {
					q.Enqueue(uint64(i+1)<<40 | uint64(k+1))
				}
			}()
		}
		total += producers * ops
	}
	if workload != "enqueue" {
		for i := 0; i < consumers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := inst.Consumer(i)
				got := 0
				for got < ops {
					if _, ok := q.Dequeue(); ok {
						got++
					} else {
						runtime.Gosched()
					}
				}
			}()
		}
		total += consumers * ops
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) * float64(threads) / float64(total)
}
