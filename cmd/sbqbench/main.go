// Command sbqbench benchmarks the native Go queue implementations on real
// hardware: the companion to the simulated-track figures. Go has no HTM,
// so SBQ runs in its CAS configurations; these numbers characterize the
// adoptable library on contemporary hardware rather than reproducing the
// paper's HTM results (cmd/sbqsim does that).
//
//	sbqbench -workload enqueue|dequeue|mixed -threads 1,2,4,8 -ops 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/queue"
	"repro/queue/baskets"
	"repro/queue/ccq"
	"repro/queue/faaq"
	"repro/queue/lcrq"
	"repro/queue/msq"
	"repro/queue/sbq"
)

type impl struct {
	name string
	// build returns per-producer views and a shared consumer view.
	build func(producers int) (func(i int) queue.Queue[uint64], queue.Queue[uint64])
}

func shared(q queue.Queue[uint64]) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
	return func(int) queue.Queue[uint64] { return q }, q
}

type sbqConsumer struct{ q *sbq.Queue[uint64] }

func (c sbqConsumer) Enqueue(uint64)          { panic("consumer view") }
func (c sbqConsumer) Dequeue() (uint64, bool) { return c.q.Dequeue() }

func impls() []impl {
	return []impl{
		{"MS-Queue", func(int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			return shared(msq.New[uint64]())
		}},
		{"BQ-Original", func(int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			return shared(baskets.New[uint64]())
		}},
		{"FAA-Queue", func(int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			return shared(faaq.New[uint64]())
		}},
		{"LCRQ", func(int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			return shared(lcrq.New[uint64]())
		}},
		{"CC-Queue", func(int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			return shared(ccq.New[uint64](0))
		}},
		{"SBQ-CAS", func(p int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			q := sbq.New[uint64](p)
			var mu sync.Mutex
			handles := map[int]queue.Queue[uint64]{}
			view := func(i int) queue.Queue[uint64] {
				mu.Lock()
				defer mu.Unlock()
				if h, ok := handles[i]; ok {
					return h
				}
				h := q.NewHandle()
				handles[i] = h
				return h
			}
			return view, sbqConsumer{q}
		}},
		{"SBQ-DCAS", func(p int) (func(int) queue.Queue[uint64], queue.Queue[uint64]) {
			q := sbq.NewDelayedCAS[uint64](p, 270*time.Nanosecond)
			var mu sync.Mutex
			handles := map[int]queue.Queue[uint64]{}
			view := func(i int) queue.Queue[uint64] {
				mu.Lock()
				defer mu.Unlock()
				if h, ok := handles[i]; ok {
					return h
				}
				h := q.NewHandle()
				handles[i] = h
				return h
			}
			return view, sbqConsumer{q}
		}},
	}
}

func main() {
	workload := flag.String("workload", "enqueue", "enqueue, dequeue, or mixed")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default 1,2,4,...,NumCPU)")
	ops := flag.Int("ops", 100_000, "operations per thread")
	only := flag.String("impl", "", "run a single implementation by name")
	flag.Parse()

	var threadCounts []int
	if *threadsFlag == "" {
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			threadCounts = append(threadCounts, n)
		}
	} else {
		for _, s := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "sbqbench: bad thread count %q\n", s)
				os.Exit(2)
			}
			threadCounts = append(threadCounts, n)
		}
	}
	sort.Ints(threadCounts)

	fmt.Printf("workload=%s ops/thread=%d GOMAXPROCS=%d\n\n", *workload, *ops, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s", "impl")
	for _, n := range threadCounts {
		fmt.Printf(" %9dT", n)
	}
	fmt.Println("   [ns/op]")
	for _, im := range impls() {
		if *only != "" && im.name != *only {
			continue
		}
		fmt.Printf("%-12s", im.name)
		for _, n := range threadCounts {
			ns := runOne(im, *workload, n, *ops)
			fmt.Printf(" %10.1f", ns)
		}
		fmt.Println()
	}
}

func runOne(im impl, workload string, threads, ops int) float64 {
	producers, consumers := threads, threads
	switch workload {
	case "enqueue":
		consumers = 0
	case "dequeue":
		producers = 0
	case "mixed":
	default:
		fmt.Fprintf(os.Stderr, "sbqbench: unknown workload %q\n", workload)
		os.Exit(2)
	}
	nProd := producers
	if nProd == 0 {
		nProd = threads // prefill threads double as producers
	}
	prodView, consView := im.build(nProd)

	// Prefill for dequeue/mixed so consumers rarely see empty.
	prefill := 0
	switch workload {
	case "dequeue":
		prefill = threads*ops + 1024
	case "mixed":
		prefill = threads * ops / 2
	}
	if prefill > 0 {
		var wg sync.WaitGroup
		per := prefill / nProd
		for i := 0; i < nProd; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := prodView(i)
				for k := 0; k < per; k++ {
					q.Enqueue(uint64(i+1)<<32 | uint64(k+1))
				}
			}()
		}
		wg.Wait()
	}

	var wg sync.WaitGroup
	start := time.Now()
	total := 0
	if workload != "dequeue" {
		for i := 0; i < producers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := prodView(i)
				for k := 0; k < ops; k++ {
					q.Enqueue(uint64(i+1)<<40 | uint64(k+1))
				}
			}()
		}
		total += producers * ops
	}
	if workload != "enqueue" {
		for i := 0; i < consumers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := 0
				for got < ops {
					if _, ok := consView.Dequeue(); ok {
						got++
					} else {
						runtime.Gosched()
					}
				}
			}()
		}
		total += consumers * ops
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) * float64(threads) / float64(total)
}
