// Command sbqbench benchmarks the native Go queue implementations on real
// hardware: the companion to the simulated-track figures. Go has no HTM,
// so SBQ runs in its CAS configurations; these numbers characterize the
// adoptable library on contemporary hardware rather than reproducing the
// paper's HTM results (cmd/sbqsim does that).
//
// Queue selection comes from repro/queue/registry, the same table the
// benchmarks and conformance tests use.
//
//	sbqbench -workload enqueue|dequeue|mixed -threads 1,2,4,8 -ops 200000
//	sbqbench -impl SBQ-DCAS -stats        # print telemetry snapshots
//	sbqbench -queue Sharded-FAA -shards 4 # sharded front-end, explicit shard count
//	sbqbench -batch 1,8,64                # sweep EnqueueBatch/DequeueBatch sizes
//	sbqbench -pooled both                 # sweep GC mode and pooled-node mode
//	sbqbench -txcas 0,270ns,5us           # sweep TxCAS speculation windows
//	sbqbench -bench-json out.json         # also write a schema-versioned record
//	sbqbench -diff old.json new.json      # compare two records (report-only)
//	sbqbench -diff -diff-enforce b.json n.json  # exit 1 on regressions
//
// -batch 0 (the default) measures the single-operation path; positive
// sizes drive the batch surface with that k, amortizing the shared-word
// operation over the batch on the natively batch-capable queues (FAA-Queue,
// the SBQ family, and the sharded front-ends).
//
// -pooled selects node reclamation: "false" (the default; nodes are
// garbage-collected), "true" (WithNodePool: reclaim-backed freelists,
// zero steady-state allocations — the configuration the alloc gates
// enforce), or "both" to measure the two modes side by side.
//
// -txcas sweeps the software-TxCAS speculation window (how long a
// contending enqueuer watches the publication gate before issuing its
// linking CAS; see repro/internal/txcas) across the listed durations on
// the TxCAS-mode entries. 0 selects the engine default (the paper's
// ~270ns §4.1 delay); entries without a TxCAS engine ignore the flag.
// With -stats, each result cell also records the engine's CAS/soft-abort
// counters in the bench-json output, so baselines document the
// CAS-failure-rate reduction alongside ns/op.
//
// Worker goroutines carry pprof labels (queue=<impl>, role=<producer|
// consumer|prefill>), so a CPU profile taken during a run attributes
// samples per implementation and role.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchjson"
	"repro/internal/cliflag"
	"repro/internal/obs"
	"repro/queue/registry"
)

func main() {
	workload := flag.String("workload", "enqueue", "enqueue, dequeue, or mixed")
	threads := cliflag.Threads(flag.CommandLine, "comma-separated thread counts (default 1,2,4,...,NumCPU)")
	ops := flag.Int("ops", 100_000, "operations per thread")
	only := flag.String("impl", "", "comma-separated subset of implementations to run (default all): "+strings.Join(registry.Names(), ", "))
	flag.StringVar(only, "queue", "", "alias for -impl")
	batches := cliflag.Batches(flag.CommandLine, "comma-separated batch sizes; 0 = single-op path (default 0)")
	txWindows := cliflag.Durations(flag.CommandLine, "txcas",
		"comma-separated TxCAS speculation windows swept on the TxCAS entries (e.g. 0,270ns,5us); 0 = engine default; other entries ignore it")
	shards := flag.Int("shards", 0, "shard count for the sharded front-end entries; 0 = entry default (GOMAXPROCS)")
	pooled := flag.String("pooled", "false", `node reclamation mode: "false" (GC), "true" (WithNodePool), or "both" to sweep`)
	stats := flag.Bool("stats", false, "print a telemetry snapshot (CAS failure rates, retries, basket outcomes) per run")
	benchJSON := flag.String("bench-json", "", "write results as schema-versioned JSON to this file")
	diff := flag.Bool("diff", false, "compare two bench-json files: sbqbench -diff old.json new.json")
	diffThreshold := flag.Float64("diff-threshold", benchjson.DefaultThreshold, "relative slowdown flagged as a regression by -diff")
	diffEnforce := flag.Bool("diff-enforce", false, "exit 1 when -diff flags regressions beyond the threshold (report-only otherwise)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: sbqbench -diff old.json new.json")
			os.Exit(2)
		}
		runDiff(flag.Arg(0), flag.Arg(1), *diffThreshold, *diffEnforce)
		return
	}

	var pooledModes []bool
	switch *pooled {
	case "false":
		pooledModes = []bool{false}
	case "true":
		pooledModes = []bool{true}
	case "both":
		pooledModes = []bool{false, true}
	default:
		fmt.Fprintf(os.Stderr, "sbqbench: -pooled must be false, true, or both (got %q)\n", *pooled)
		os.Exit(2)
	}

	var onlySet map[string]bool
	if *only != "" {
		onlySet = map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			n = strings.TrimSpace(n)
			if _, ok := registry.Lookup(n); !ok {
				fmt.Fprintf(os.Stderr, "sbqbench: unknown impl %q (have %s)\n", n, strings.Join(registry.Names(), ", "))
				os.Exit(2)
			}
			onlySet[n] = true
		}
	}

	threadCounts := threads.Counts
	if len(threadCounts) == 0 {
		threadCounts = cliflag.PowersOfTwo(runtime.NumCPU())
	}
	sort.Ints(threadCounts)

	batchSizes := batches.Sizes
	if len(batchSizes) == 0 {
		batchSizes = []int{0} // single-op path, comparable with old baselines
	}

	fmt.Printf("workload=%s ops/thread=%d GOMAXPROCS=%d", *workload, *ops, runtime.GOMAXPROCS(0))
	if *shards > 0 {
		fmt.Printf(" shards=%d", *shards)
	}
	fmt.Print("\n\n")
	fmt.Printf("%-20s", "impl")
	for _, n := range threadCounts {
		fmt.Printf(" %9dT", n)
	}
	fmt.Println("   [ns/op]")
	type statRun struct {
		threads int
		snap    obs.Snapshot
	}
	record := benchjson.New()
	record.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	for _, name := range registry.Names() {
		if onlySet != nil && !onlySet[name] {
			continue
		}
		// The window sweep applies only to TxCAS-mode entries; everything
		// else runs the single zero cell (entry default, dimension unset).
		windows := []time.Duration{0}
		if len(txWindows.Durations) > 0 && strings.Contains(name, "TxCAS") {
			windows = txWindows.Durations
		}
		for _, pm := range pooledModes {
			for _, k := range batchSizes {
				for _, w := range windows {
					var snaps []statRun
					label := name
					if k > 0 {
						label = fmt.Sprintf("%s/k=%d", name, k)
					}
					if pm {
						label += "/pooled"
					}
					if w > 0 {
						label += fmt.Sprintf("/w=%v", w)
					}
					fmt.Printf("%-20s", label)
					for _, n := range threadCounts {
						// The interface must stay untyped-nil when stats are off: a
						// typed-nil *obs.Stats would pass the queues' nil checks and
						// crash on the first Inc.
						var rec obs.Recorder
						var snap *obs.Stats
						if *stats {
							snap = obs.New()
							rec = snap
						}
						ns := runOne(name, rec, *workload, n, *ops, k, *shards, pm, w)
						fmt.Printf(" %10.1f", ns)
						res := benchjson.Result{
							Impl: name, Workload: *workload, Threads: n, Batch: k, Shards: *shards,
							Pooled: pm, TxWindowNS: w.Nanoseconds(), Ops: *ops, NSPerOp: ns,
						}
						if snap != nil {
							s := snap.Snapshot()
							res.CASAttempts = s.Counter(obs.CASAttempts)
							res.CASFailures = s.Counter(obs.CASFailures)
							res.TxSoftAborts = s.Counter(obs.TxSoftAborts)
							res.TxSharerHints = s.Counter(obs.TxSharerHints)
							if res.CASAttempts > 0 {
								res.CASFailureRate = float64(res.CASFailures) / float64(res.CASAttempts)
							}
							snaps = append(snaps, statRun{n, s})
						}
						record.Results = append(record.Results, res)
					}
					fmt.Println()
					for _, sr := range snaps {
						fmt.Printf("\n  %s @ %d threads:\n", label, sr.threads)
						for _, line := range strings.Split(strings.TrimRight(sr.snap.FormatQueue(), "\n"), "\n") {
							fmt.Printf("    %s\n", line)
						}
					}
					if len(snaps) > 0 {
						fmt.Println()
					}
				}
			}
		}
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbqbench:", err)
			os.Exit(1)
		}
		if err := record.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "sbqbench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %s (%d results, schema %s)\n", *benchJSON, len(record.Results), benchjson.Schema)
	}
}

// runDiff compares two bench-json files and prints the report. Without
// enforce the exit code is 0 even when regressions are flagged —
// wall-clock benchmarks regress for many reasons besides the code under
// test; with enforce (the CI smoke gate, run with a threshold calibrated
// far above runner noise) flagged regressions exit 1.
func runDiff(oldPath, newPath string, threshold float64, enforce bool) {
	read := func(path string) *benchjson.File {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbqbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		b, err := benchjson.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbqbench:", err)
			os.Exit(1)
		}
		return b
	}
	rep := benchjson.Diff(read(oldPath), read(newPath), threshold)
	fmt.Print(rep.Format())
	if enforce && len(rep.Regressions()) > 0 {
		os.Exit(1)
	}
}

// runOne measures one (impl, workload, threads, batch, pooled, txWindow)
// cell and returns ns per element normalized to one thread. batch 0 drives
// the single-op path; positive batch drives EnqueueBatch/DequeueBatch with
// that k (ops still counts elements, so numbers across batch sizes
// compare per element). pooled selects WithNodePool reclamation. txWindow
// overrides the TxCAS speculation window (0 = entry default; non-TxCAS
// entries ignore it).
func runOne(name string, rec obs.Recorder, workload string, threads, ops, batch, shards int, pooled bool, txWindow time.Duration) float64 {
	producers, consumers := threads, threads
	switch workload {
	case "enqueue":
		consumers = 0
	case "dequeue":
		producers = 0
	case "mixed":
	default:
		fmt.Fprintf(os.Stderr, "sbqbench: unknown workload %q\n", workload)
		os.Exit(2)
	}
	nProd := producers
	if nProd == 0 {
		nProd = threads // prefill threads double as producers
	}
	inst, err := registry.Build(name, registry.Config{
		Producers: nProd, Shards: shards, BatchHint: batch, Recorder: rec, Pooled: pooled,
		TxWindow: txWindow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbqbench:", err)
		os.Exit(2)
	}

	// Prefill for dequeue/mixed so consumers rarely see empty.
	prefill := 0
	switch workload {
	case "dequeue":
		prefill = threads*ops + 1024
	case "mixed":
		prefill = threads * ops / 2
	}
	// Label worker goroutines so CPU profiles split samples by queue and
	// role (go tool pprof -tagfocus queue=SBQ-DCAS, etc.).
	labeled := func(role string, f func()) func() {
		return func() {
			pprof.Do(context.Background(), pprof.Labels("queue", name, "role", role), func(context.Context) { f() })
		}
	}
	if prefill > 0 {
		var wg sync.WaitGroup
		per := prefill / nProd
		for i := 0; i < nProd; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				labeled("prefill", func() {
					q := inst.ProducerView(i)
					for k := 0; k < per; k++ {
						q.Enqueue(uint64(i+1)<<32 | uint64(k+1))
					}
				})()
			}()
		}
		wg.Wait()
	}

	var wg sync.WaitGroup
	start := time.Now()
	total := 0
	if workload != "dequeue" {
		for i := 0; i < producers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				labeled("producer", func() {
					q := inst.ProducerView(i)
					if batch > 0 {
						vs := make([]uint64, batch)
						for k := 0; k < ops; k += len(vs) {
							if rem := ops - k; rem < len(vs) {
								vs = vs[:rem]
							}
							for j := range vs {
								vs[j] = uint64(i+1)<<40 | uint64(k+j+1)
							}
							q.EnqueueBatch(vs)
						}
					} else {
						for k := 0; k < ops; k++ {
							q.Enqueue(uint64(i+1)<<40 | uint64(k+1))
						}
					}
				})()
			}()
		}
		total += producers * ops
	}
	if workload != "enqueue" {
		for i := 0; i < consumers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				labeled("consumer", func() {
					q := inst.ConsumerView(i)
					got := 0
					if batch > 0 {
						dst := make([]uint64, batch)
						for got < ops {
							// Cap the request at the remaining quota: an
							// overshoot would starve another consumer of its
							// share and spin the run forever.
							want := dst
							if rem := ops - got; rem < len(dst) {
								want = dst[:rem]
							}
							if n := q.DequeueBatch(want); n > 0 {
								got += n
							} else {
								runtime.Gosched()
							}
						}
					} else {
						for got < ops {
							if _, ok := q.Dequeue(); ok {
								got++
							} else {
								runtime.Gosched()
							}
						}
					}
				})()
			}()
		}
		total += consumers * ops
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) * float64(threads) / float64(total)
}
