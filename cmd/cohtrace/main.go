// Command cohtrace reproduces the coherence-dynamics diagrams of the
// paper's Figures 2 and 3 as message-level traces from the simulator.
//
//	cohtrace -scenario cas      Figure 2a: contended standard CAS — every
//	                            operation, including failures, acquires
//	                            exclusive ownership in turn (serialized).
//	cohtrace -scenario htm      Figure 2b: HTM-based CAS — one write's
//	                            invalidations abort all readers at once
//	                            (failures are concurrent).
//	cohtrace -scenario tripped  Figure 3: a remote read aborts a writer
//	                            that is draining its xend (tripped writer).
//	cohtrace -scenario fixed    Figure 3 with the §3.4.1 microarchitectural
//	                            fix: the read is stalled and the writer
//	                            commits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/obs"
)

func main() {
	scenario := flag.String("scenario", "cas", "cas, htm, tripped, or fixed")
	contenders := flag.Int("n", 3, "number of contending cores (cas/htm)")
	flag.Parse()

	switch *scenario {
	case "cas":
		standardCAS(*contenders)
	case "htm":
		htmCAS(*contenders)
	case "tripped":
		tripped(false)
	case "fixed":
		tripped(true)
	default:
		fmt.Fprintf(os.Stderr, "cohtrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func newMachine(fix bool) (*machine.Machine, *machine.Tracer, *obs.Stats) {
	cfg := machine.Default()
	cfg.TrippedWriterFix = fix
	m := machine.New(cfg)
	tr := &machine.Tracer{}
	m.Tracer = tr
	rec := obs.New()
	m.SetRecorder(rec)
	return m, tr, rec
}

// dumpSnapshot prints the telemetry aggregated over the whole scenario —
// the trace above it shows the order of events, the snapshot the totals.
func dumpSnapshot(rec *obs.Stats) {
	snap := rec.Snapshot()
	fmt.Println("\ntelemetry snapshot:")
	for _, sec := range []string{snap.FormatHTM(), snap.FormatCoherence()} {
		if sec != "" {
			fmt.Println(sec)
		}
	}
}

// standardCAS reproduces Figure 2a: n cores, all holding the line Shared,
// CAS different values into it. Watch the Fwd-GetM chain serialize every
// attempt — including the failing ones.
func standardCAS(n int) {
	m, tr, rec := newMachine(false)
	a := m.AllocLine(8, 0)
	tr.Filter = machine.LineOf(a)
	results := make([]bool, n)
	times := make([]uint64, n)
	for c := 0; c < n; c++ {
		c := c
		m.Go(c, func(p *machine.Proc) {
			p.Read(a) // start in Shared, like the figure
			p.Delay(500 - p.Now())
			start := p.Now()
			results[c] = p.CAS(a, 0, uint64(c)+1)
			times[c] = p.Now() - start
		})
	}
	m.Run()
	fmt.Println("Figure 2a: standard CAS under contention (all cores start in S)")
	fmt.Println()
	tr.Dump(os.Stdout)
	fmt.Println()
	for c := 0; c < n; c++ {
		fmt.Printf("C%d: CAS %s after %d cycles\n", c, mark(results[c]), times[c])
	}
	fmt.Println("\nEvery CAS - successful or not - acquired M ownership in turn:")
	fmt.Printf("Fwd-GetM chain length %d, total Data handoffs %d.\n",
		tr.Count(machine.MsgFwdGetM), tr.Count(machine.MsgData))
	dumpSnapshot(rec)
}

// htmCAS reproduces Figure 2b: the same contention pattern with
// transactional CASs. The winner's single GetM fans invalidations out to
// every reader concurrently; the losers abort within a constant number of
// message delays.
func htmCAS(n int) {
	m, tr, rec := newMachine(false)
	a := m.AllocLine(8, 0)
	tr.Filter = machine.LineOf(a)
	results := make([]bool, n)
	times := make([]uint64, n)
	for c := 0; c < n; c++ {
		c := c
		m.Go(c, func(p *machine.Proc) {
			p.Read(a)
			p.Delay(500 - p.Now())
			start := p.Now()
			ok, _ := p.Transaction(func(tx *machine.Tx) {
				v := tx.Read(a)
				if v != 0 {
					tx.Abort(1)
				}
				// Stagger writes slightly so exactly one write fires first,
				// as in the figure (C1 writes, C2/C3 are still reading).
				tx.Delay(uint64(c) * 40)
				tx.Write(a, uint64(c)+1)
			})
			results[c] = ok
			times[c] = p.Now() - start
		})
	}
	m.Run()
	fmt.Println("Figure 2b: HTM-based CAS under contention (all cores start in S)")
	fmt.Println()
	tr.Dump(os.Stdout)
	fmt.Println()
	for c := 0; c < n; c++ {
		fmt.Printf("C%d: transaction %s after %d cycles\n", c, commitMark(results[c]), times[c])
	}
	fmt.Println("\nThe winner's GetM triggered back-to-back invalidations; every")
	fmt.Printf("failing transaction aborted on Inv receipt (Inv count %d), with no\n", tr.Count(machine.MsgInv))
	fmt.Println("ownership handoffs to the losers.")
	dumpSnapshot(rec)
}

// tripped reproduces Figure 3: C1's transactional write is draining (its
// GetM is collecting invalidation acks) when a remote core's read arrives
// as a Fwd-GetS. Without the fix, the read trips the writer; with it, the
// read is stalled until the commit.
func tripped(fix bool) {
	m, tr, rec := newMachine(fix)
	a := m.AllocLine(8, 0)
	tr.Filter = machine.LineOf(a)
	cps := m.Config().CoresPerSocket
	// Seed sharers so the writer's GetM needs acknowledgments: that is
	// the drain window the read lands in. One sharer is remote, so the
	// window is a cross-socket round trip wide.
	for c := 2; c < 6; c++ {
		m.Go(c, func(p *machine.Proc) { p.Read(a) })
	}
	m.Go(cps+1, func(p *machine.Proc) { p.Read(a) })

	var committed bool
	var reader uint64
	m.Go(0, func(p *machine.Proc) { // C1 in the figure
		p.Delay(3000 - p.Now())
		committed, _ = p.Transaction(func(tx *machine.Tx) {
			tx.Read(a)
			tx.Write(a, 42)
		})
	})
	m.Go(cps, func(p *machine.Proc) { // Ck in the figure: remote reader
		p.Delay(3000 + 24)
		reader = p.Read(a)
	})
	m.Run()

	if fix {
		fmt.Println("Figure 3 with the §3.4.1 fix: the Fwd-GetS is stalled at the writer")
	} else {
		fmt.Println("Figure 3: tripped writer — a remote read aborts a draining transaction")
	}
	fmt.Println()
	tr.Dump(os.Stdout)
	fmt.Println()
	fmt.Printf("writer transaction: %s\n", commitMark(committed))
	fmt.Printf("remote reader observed: %d\n", reader)
	fmt.Printf("tripped writers: %d, fix stalls: %d\n", m.Stats.TrippedWriters, m.Stats.FixStalls)
	dumpSnapshot(rec)
}

func mark(ok bool) string {
	if ok {
		return "succeeded"
	}
	return "FAILED"
}

func commitMark(ok bool) string {
	if ok {
		return "committed"
	}
	return "ABORTED"
}
