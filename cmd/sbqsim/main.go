// Command sbqsim regenerates the paper's figures on the simulated machine.
//
// Usage:
//
//	sbqsim -fig 1            TxCAS vs FAA latency (Figure 1)
//	sbqsim -fig 5            enqueue-only latency & throughput (Figure 5)
//	sbqsim -fig 6            dequeue-only latency (Figure 6)
//	sbqsim -fig 7            mixed-workload duration (Figure 7)
//	sbqsim -fig delay        intra-transaction delay sweep (§4.1)
//	sbqsim -fig basket       basket size sweep (§5.3.4)
//	sbqsim -fig fix          tripped-writer fix ablation (§3.4.1/§4.3)
//	sbqsim -fig ext          partitioned-basket dequeue extension (§8 future work)
//	sbqsim -fig obs          telemetry snapshots: CAS failure rates, HTM abort codes
//	sbqsim -fig all          everything
//
// Flags -ops, -reps, -threads and -csv control scale and output format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 5, 6, 7, delay, basket, fix, ext, obs, all")
	ops := flag.Int("ops", 300, "operations per thread per repetition")
	reps := flag.Int("reps", 3, "repetitions (distinct seeds)")
	threadList := flag.String("threads", "", "comma-separated thread counts (default 1..44 sweep)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	plot := flag.Bool("plot", true, "render ASCII plots alongside tables")
	verbose := flag.Bool("v", false, "print per-point progress")
	flag.Parse()

	o := harness.Options{OpsPerThread: *ops, Reps: *reps}
	if *verbose {
		o.Progress = os.Stderr
	}
	if *threadList != "" {
		for _, s := range strings.Split(*threadList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "sbqsim: bad thread count %q\n", s)
				os.Exit(2)
			}
			o.ThreadCounts = append(o.ThreadCounts, n)
		}
	}

	emit := func(title string, results []harness.Result) {
		if *csv {
			harness.WriteCSV(os.Stdout, results)
			return
		}
		fmt.Printf("== %s ==\n", title)
		harness.WriteTable(os.Stdout, results, "ns")
		if *plot {
			harness.Plot(os.Stdout, results, 16)
		}
		fmt.Println()
	}

	run := func(name string) {
		switch name {
		case "1":
			emit("Figure 1: TxCAS vs FAA latency [ns/op]", harness.RunFig1(o))
		case "5":
			res := harness.RunEnqueueOnly(harness.AllVariants, o)
			emit("Figure 5: enqueue-only latency [ns/op]", res)
			if !*csv {
				fmt.Println("== Figure 5: enqueue throughput [Mops/s] ==")
				harness.WriteTable(os.Stdout, res, "mops")
				if s, ok := harness.Speedup(res, string(harness.SBQHTM), string(harness.WFQueue), 44); ok {
					fmt.Printf("\nSBQ-HTM vs WF-Queue at 44 threads: %.2fx (paper: 1.6x)\n", s)
				}
				fmt.Println()
			}
		case "6":
			emit("Figure 6: dequeue-only latency [ns/op]", harness.RunDequeueOnly(harness.AllVariants, o))
		case "7":
			res := harness.RunMixed(harness.AllVariants, o)
			emit("Figure 7: mixed workload normalized duration [ns/op]", res)
			if !*csv {
				if s, ok := harness.Speedup(res, string(harness.SBQHTM), string(harness.WFQueue), 44); ok {
					fmt.Printf("SBQ-HTM vs WF-Queue at 44 threads: %.2fx (paper: 1.16x)\n\n", s)
				}
			}
		case "delay":
			res := harness.RunDelaySweep([]float64{0, 67, 135, 270, 540}, []int{4, 16, 32, 44}, o)
			emit("§4.1 ablation: TxCAS intra-transaction delay [ns/op]", res)
		case "basket":
			res := harness.RunBasketSweep([]int{8, 16, 24, 44, 64, 88}, 8, o)
			emit("§5.3.4 ablation: SBQ-HTM enqueue latency vs basket size (8 threads)", res)
		case "ext":
			res := harness.RunDequeueOnly([]harness.Variant{harness.SBQHTM, harness.SBQHTMPart, harness.WFQueue}, o)
			emit("§8 future-work extension: partitioned-basket dequeue latency [ns/op]", res)
		case "obs":
			variants := append([]harness.Variant{}, harness.AllVariants...)
			variants = append(variants, harness.SBQHTMPart)
			snaps := harness.RunTelemetry(variants, o)
			fmt.Println("== Telemetry: per-queue CAS failure rates, HTM abort codes, coherence traffic ==")
			harness.WriteTelemetry(os.Stdout, snaps)
		case "fix":
			rows := harness.RunFixAblation(o)
			fmt.Println("== §3.4.1/§4.3 ablation: cross-socket TxCAS, tripped-writer fix ==")
			fmt.Printf("%-20s %10s %10s %10s %10s %10s\n", "config", "ns/op", "tripped", "stalls", "aborts", "commits")
			for _, r := range rows {
				fmt.Printf("%-20s %10.0f %10d %10d %10d %10d\n", r.Label, r.NSPerOp, r.TrippedWriters, r.FixStalls, r.Aborts, r.Commits)
			}
			fmt.Println()
		default:
			fmt.Fprintf(os.Stderr, "sbqsim: unknown figure %q\n", name)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, f := range []string{"1", "5", "6", "7", "delay", "basket", "fix", "ext", "obs"} {
			run(f)
		}
		return
	}
	run(*fig)
}
