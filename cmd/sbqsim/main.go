// Command sbqsim regenerates the paper's figures on the simulated machine.
//
// Usage:
//
//	sbqsim -fig 1            TxCAS vs FAA latency (Figure 1)
//	sbqsim -fig 5            enqueue-only latency & throughput (Figure 5)
//	sbqsim -fig 6            dequeue-only latency (Figure 6)
//	sbqsim -fig 7            mixed-workload duration (Figure 7)
//	sbqsim -fig delay        intra-transaction delay sweep (§4.1)
//	sbqsim -fig basket       basket size sweep (§5.3.4)
//	sbqsim -fig fix          tripped-writer fix ablation (§3.4.1/§4.3)
//	sbqsim -fig ext          partitioned-basket dequeue extension (§8 future work)
//	sbqsim -fig obs          telemetry snapshots: CAS failure rates, HTM abort codes
//	sbqsim -fig faults       abort-rate vs throughput per retry/fallback policy
//	sbqsim -fig sharded      native sharded front-end, batch-size sweep
//	sbqsim -fig all          everything
//
// Flags -ops, -reps, -threads and -csv control scale and output format.
// -faults injects HTM faults (spurious aborts, capacity squeeze, HTM
// disablement, cross-socket jitter) into whichever figure runs, e.g.
//
//	sbqsim -fig 5 -faults disable        every variant on its software path
//	sbqsim -fig 7 -faults p=0.1,jitter=40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflag"
	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 5, 6, 7, delay, basket, fix, ext, obs, faults, sharded, all")
	ops := flag.Int("ops", 300, "operations per thread per repetition")
	reps := flag.Int("reps", 3, "repetitions (distinct seeds)")
	threads := cliflag.Threads(flag.CommandLine, "comma-separated thread counts (default 1..44 sweep)")
	faults := cliflag.Faults(flag.CommandLine)
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	plot := flag.Bool("plot", true, "render ASCII plots alongside tables")
	verbose := flag.Bool("v", false, "print per-point progress")
	flag.Parse()

	o := harness.Options{
		OpsPerThread: *ops,
		Reps:         *reps,
		ThreadCounts: threads.Counts,
		Faults:       faults.Plan,
	}
	if *verbose {
		o.Progress = os.Stderr
	}

	emit := func(title string, results []harness.Result) {
		if *csv {
			harness.WriteCSV(os.Stdout, results)
			return
		}
		fmt.Printf("== %s ==\n", title)
		harness.WriteTable(os.Stdout, results, "ns")
		if *plot {
			harness.Plot(os.Stdout, results, 16)
		}
		fmt.Println()
	}

	run := func(name string) {
		switch name {
		case "1":
			emit("Figure 1: TxCAS vs FAA latency [ns/op]", harness.Run(harness.Fig1{}, o).Results)
		case "5":
			res := harness.Run(harness.EnqueueOnly{Variants: harness.AllVariants}, o).Results
			emit("Figure 5: enqueue-only latency [ns/op]", res)
			if !*csv {
				fmt.Println("== Figure 5: enqueue throughput [Mops/s] ==")
				harness.WriteTable(os.Stdout, res, "mops")
				if s, ok := harness.Speedup(res, string(harness.SBQHTM), string(harness.WFQueue), 44); ok {
					fmt.Printf("\nSBQ-HTM vs WF-Queue at 44 threads: %.2fx (paper: 1.6x)\n", s)
				}
				fmt.Println()
			}
		case "6":
			emit("Figure 6: dequeue-only latency [ns/op]",
				harness.Run(harness.DequeueOnly{Variants: harness.AllVariants}, o).Results)
		case "7":
			res := harness.Run(harness.Mixed{Variants: harness.AllVariants}, o).Results
			emit("Figure 7: mixed workload normalized duration [ns/op]", res)
			if !*csv {
				if s, ok := harness.Speedup(res, string(harness.SBQHTM), string(harness.WFQueue), 44); ok {
					fmt.Printf("SBQ-HTM vs WF-Queue at 44 threads: %.2fx (paper: 1.16x)\n\n", s)
				}
			}
		case "delay":
			res := harness.Run(harness.DelaySweep{
				DelaysNS: []float64{0, 67, 135, 270, 540}, ThreadCounts: []int{4, 16, 32, 44}}, o).Results
			emit("§4.1 ablation: TxCAS intra-transaction delay [ns/op]", res)
		case "basket":
			res := harness.Run(harness.BasketSweep{
				BasketSizes: []int{8, 16, 24, 44, 64, 88}, Threads: 8}, o).Results
			emit("§5.3.4 ablation: SBQ-HTM enqueue latency vs basket size (8 threads)", res)
		case "ext":
			res := harness.Run(harness.DequeueOnly{Variants: []harness.Variant{
				harness.SBQHTM, harness.SBQHTMPart, harness.WFQueue}}, o).Results
			emit("§8 future-work extension: partitioned-basket dequeue latency [ns/op]", res)
		case "obs":
			variants := append([]harness.Variant{}, harness.AllVariants...)
			variants = append(variants, harness.SBQHTMPart)
			snaps := harness.Run(harness.Telemetry{Variants: variants}, o).Telemetry
			fmt.Println("== Telemetry: per-queue CAS failure rates, HTM abort codes, coherence traffic ==")
			harness.WriteTelemetry(os.Stdout, snaps)
		case "fix":
			rows := harness.Run(harness.FixAblation{}, o).Fix
			fmt.Println("== §3.4.1/§4.3 ablation: cross-socket TxCAS, tripped-writer fix ==")
			fmt.Printf("%-20s %10s %10s %10s %10s %10s\n", "config", "ns/op", "tripped", "stalls", "aborts", "commits")
			for _, r := range rows {
				fmt.Printf("%-20s %10.0f %10d %10d %10d %10d\n", r.Label, r.NSPerOp, r.TrippedWriters, r.FixStalls, r.Aborts, r.Commits)
			}
			fmt.Println()
		case "faults":
			res := harness.Run(harness.FaultSweep{}, o).Faults
			fmt.Println("== Fault sweep: SBQ-HTM enqueue under injected aborts, per retry/fallback policy ==")
			harness.WriteFaultSweep(os.Stdout, res)
			fmt.Println()
		case "sharded":
			st := harness.ShardedThroughput{}
			ns := o
			if len(ns.ThreadCounts) == 0 {
				// Native wall-clock run: default to a small goroutine sweep
				// rather than the simulator's 1..44 core range.
				ns.ThreadCounts = []int{1, 2, 4}
			}
			res := harness.Run(st, ns).Results
			emit("Sharded front-end: native mixed throughput, batch-size sweep [ns/op]", res)
		default:
			fmt.Fprintf(os.Stderr, "sbqsim: unknown figure %q\n", name)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, f := range []string{"1", "5", "6", "7", "delay", "basket", "fix", "ext", "obs", "faults", "sharded"} {
			run(f)
		}
		return
	}
	run(*fig)
}
