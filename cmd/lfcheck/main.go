// Lfcheck is the repository's lock-free-code lint suite: a multichecker
// over the analyzers in repro/internal/lint, runnable standalone
//
//	go run ./cmd/lfcheck ./...
//
// or as a go vet tool (the mode CI uses, which also covers _test.go
// files):
//
//	go build -o /tmp/lfcheck ./cmd/lfcheck
//	go vet -vettool=/tmp/lfcheck ./...
//
// See README.md "Static analysis" and DESIGN.md appendix C for what each
// analyzer enforces and how to suppress a finding.
package main

import (
	"os"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	os.Exit(driver.Main(lint.Analyzers(), os.Args[1:]))
}
