package basket

import (
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
)

// basketIDs issues process-unique basket identities for the lifecycle
// timeline (EvBasketOpen/EvBasketClose pair on the same id).
var basketIDs atomic.Uint64

// Option configures a basket built with New. Options are value-free of the
// element type, so call sites read naturally:
//
//	b := basket.New[string](basket.WithCapacity(8), basket.WithPartitions(2))
type Option func(*options)

type options struct {
	capacity   int
	bound      int
	partitions int
	rec        obs.Recorder
}

// WithCapacity sets the number of inserter cells. The paper's evaluation
// fixes it at the machine's thread count; the default is GOMAXPROCS.
func WithCapacity(n int) Option { return func(o *options) { o.capacity = n } }

// WithBound restricts extraction to the first n cells (the live-enqueuer
// count of paper §6.1). It defaults to the capacity.
func WithBound(n int) Option { return func(o *options) { o.bound = n } }

// WithPartitions splits extraction across k counters (the §8 future-work
// extension). k <= 1 selects the paper's single-counter scalable basket;
// larger k is clamped to the bound.
func WithPartitions(k int) Option { return func(o *options) { o.partitions = k } }

// WithRecorder attaches a telemetry recorder: the basket reports insert and
// extract outcomes (obs.BasketInserts, obs.BasketInsertFails,
// obs.BasketExtracts, obs.BasketExtractFails). A nil or obs.Nop recorder
// disables recording at the cost of a single nil check per operation.
func WithRecorder(r obs.Recorder) Option { return func(o *options) { o.rec = obs.Normalize(r) } }

// New builds a basket from options: the scalable basket of Algorithms 8-9
// by default, or its partitioned-extraction extension when WithPartitions
// selects more than one partition.
func New[T any](opts ...Option) Basket[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.capacity == 0 {
		o.capacity = runtime.GOMAXPROCS(0)
	}
	if o.capacity <= 0 {
		panic("basket: capacity must be positive")
	}
	if o.bound <= 0 || o.bound > o.capacity {
		o.bound = o.capacity
	}
	ev := obs.Events(o.rec)
	var id uint64
	if ev != nil {
		id = basketIDs.Add(1)
		ev.Event(obs.EvBasketOpen, obs.LaneDefault, id)
	}
	if o.partitions > 1 {
		b := NewPartitioned[T](o.capacity, o.bound, o.partitions)
		b.rec = o.rec
		b.ev, b.id = ev, id
		return b
	}
	b := NewScalable[T](o.capacity, o.bound)
	b.rec = o.rec
	b.ev, b.id = ev, id
	return b
}
