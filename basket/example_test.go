package basket_test

import (
	"fmt"
	"sort"

	"repro/basket"
)

// A basket is an unordered set with per-inserter cells: inserts are
// synchronization-free across distinct ids, extraction drains in arbitrary
// order, and exhaustion closes the basket.
func ExampleScalable() {
	b := basket.NewScalable[string](4, 4)
	b.Insert(0, "red")
	b.Insert(2, "blue")

	var got []string
	for {
		v, ok := b.Extract()
		if !ok {
			break
		}
		got = append(got, v)
	}
	sort.Strings(got)
	fmt.Println(got, b.Empty())
	// Output: [blue red] true
}

// The closing stack models the original baskets queue's basket: the first
// extraction closes it to further insertions, the property that makes the
// original queue linearizable.
func ExampleClosingStack() {
	b := basket.NewClosingStack[int]()
	b.Insert(0, 1)
	b.Insert(0, 2)
	v, _ := b.Extract()
	inserted := b.Insert(0, 3)
	fmt.Println(v, inserted)
	// Output: 2 false
}
